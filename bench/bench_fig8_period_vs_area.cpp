// Fig. 8: clock period versus total cell area of the baseline synthesis.
// The curve falls steeply near the minimum period and flattens out; the
// paper picks the relaxed (low-performance) constraint at the point where
// the curve becomes linear (10 ns there).

#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Fig. 8 — clock period vs total cell area (baseline)",
                     "Fig. 8");

  core::TuningFlow flow(bench::standardConfig());
  const double minPeriod = flow.findMinPeriod().value_or(4.8);
  std::printf("minimum feasible period: %.3f ns\n\n", minPeriod);

  // Sweep from the minimum to ~4.3x (the paper's 2.41 -> 10+ ns range).
  std::vector<double> factors = {1.0, 1.04, 1.1, 1.2, 1.35, 1.5,
                                 1.7, 2.0,  2.4, 2.9, 3.5,  4.15, 5.0};
  std::printf("%12s %14s %10s %10s %9s\n", "period [ns]", "area [um^2]",
              "gates", "buffers", "met");
  bench::printRule();
  double previousArea = -1.0;
  double kneePeriod = 0.0;
  for (double factor : factors) {
    const double period = minPeriod * factor;
    const core::DesignMeasurement m = flow.synthesizeBaseline(period);
    std::printf("%12.3f %14.0f %10zu %10zu %9s\n", period, m.area(),
                m.synthesis.design.gateCount(), m.synthesis.buffersInserted,
                m.success() ? "yes" : "NO");
    if (previousArea > 0.0 && kneePeriod == 0.0) {
      // Knee: the first period where area stops improving by more than 1%.
      if (previousArea - m.area() < 0.01 * previousArea) kneePeriod = period;
    }
    previousArea = m.area();
  }
  bench::printRule();
  std::printf("curve knee (area change < 1%% per step): ~%.2f ns\n",
              kneePeriod);
  std::printf("paper: knee at 10 ns = 4.15x the 2.41 ns minimum; ours at "
              "%.2fx the minimum\n",
              kneePeriod > 0.0 ? kneePeriod / minPeriod : 0.0);
  return 0;
}
