// Fig. 12: path depths of the worst-case paths to each unique endpoint at
// the high-performance clock, baseline vs the sigma-ceiling restriction.
// Expected effect: the restricted design uses *more* cells per path
// (buffering and recreated logic functions), shifting the depth histogram
// to the right (section VII.A).

#include <vector>

#include "bench_common.hpp"

namespace {

std::vector<std::size_t> depthHistogram(
    const std::vector<sct::core::PathRecord>& paths, std::size_t buckets) {
  std::vector<std::size_t> histogram(buckets, 0);
  for (const auto& record : paths) {
    ++histogram[std::min(record.depth, buckets - 1)];
  }
  return histogram;
}

double meanDepth(const std::vector<sct::core::PathRecord>& paths) {
  double sum = 0.0;
  for (const auto& record : paths) sum += static_cast<double>(record.depth);
  return paths.empty() ? 0.0 : sum / static_cast<double>(paths.size());
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 12 — worst-case path depth per unique endpoint",
                     "Fig. 12 (high-performance clock)");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const bench::TunedPair pair = bench::sigmaCeilingPair(flow, clocks.highPerf);
  std::printf("clock %.3f ns; sigma ceiling %.3g\n\n", clocks.highPerf,
              pair.ceiling);

  constexpr std::size_t kBuckets = 65;
  const auto base = depthHistogram(pair.baseline.paths, kBuckets);
  const auto tuned = depthHistogram(pair.tuned.paths, kBuckets);

  std::printf("%8s %10s %10s\n", "depth", "baseline", "tuned");
  bench::printRule();
  for (std::size_t d = 0; d < kBuckets; ++d) {
    if (base[d] == 0 && tuned[d] == 0) continue;
    std::printf("%8zu %10zu %10zu\n", d, base[d], tuned[d]);
  }
  bench::printRule();
  std::printf("endpoints: baseline %zu, tuned %zu\n",
              pair.baseline.paths.size(), pair.tuned.paths.size());
  std::printf("mean depth: baseline %.2f, tuned %.2f (expected: tuned >= "
              "baseline)\n",
              meanDepth(pair.baseline.paths), meanDepth(pair.tuned.paths));
  std::printf("gates: baseline %zu, tuned %zu; buffers inserted: %zu vs %zu\n",
              pair.baseline.synthesis.design.gateCount(),
              pair.tuned.synthesis.design.gateCount(),
              pair.baseline.synthesis.buffersInserted,
              pair.tuned.synthesis.buffersInserted);
  return 0;
}
