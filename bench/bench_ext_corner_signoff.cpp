// Extension experiment: design-level corner signoff. The paper validates
// corner transfer on three extracted paths (Fig. 15); here the *entire*
// TT-synthesized design (baseline and tuned) is re-verified at the FF and
// SS corner libraries: arrival times and design sigma must scale by the
// corner factor, and the tuned design's sigma advantage must persist at
// every corner.

#include "bench_common.hpp"
#include "variation/path_stats.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Extension — full-design corner signoff",
                     "Fig. 15 / section VII.C lifted to the whole design");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));

  std::printf("TT synthesis at %.3f ns; signoff across corner libraries\n\n",
              period);
  std::printf("%8s %8s | %12s %12s | %12s %12s | %10s\n", "corner", "factor",
              "base arr", "base sigma", "tuned arr", "tuned sigma",
              "reduction");
  bench::printRule();

  double ttBaseArrival = 0.0;
  double ttBaseSigma = 0.0;
  for (const charlib::ProcessCorner& corner : charlib::ProcessCorner::all()) {
    const liberty::Library cornerLib =
        flow.characterizer().characterizeNominal(corner);
    const auto mcLibs = flow.characterizer().characterizeMonteCarlo(
        corner, flow.config().mcLibraryCount, flow.config().mcSeed);
    const statlib::StatLibrary cornerStat =
        statlib::buildStatLibrary(mcLibs);

    auto signoff = [&](core::DesignMeasurement& m) {
      netlist::Design design = m.synthesis.design;  // copy, then rebind
      if (!synth::rebindDesign(design, cornerLib)) {
        return std::pair{0.0, 0.0};
      }
      sta::ClockSpec clock = flow.config().clock;
      clock.period = period;
      sta::TimingAnalyzer sta(design, cornerLib, clock);
      sta.analyze();
      double worstArrival = 0.0;
      for (const sta::Endpoint& ep : sta.endpoints()) {
        worstArrival = std::max(worstArrival, ep.arrival);
      }
      const variation::PathStatistics stats(cornerStat);
      const double sigma = stats.designStats(sta.endpointWorstPaths()).sigma;
      return std::pair{worstArrival, sigma};
    };

    const auto [baseArr, baseSigma] = signoff(baseline);
    const auto [tunedArr, tunedSigma] = signoff(tuned);
    if (corner.process == "TT") {
      ttBaseArrival = baseArr;
      ttBaseSigma = baseSigma;
    }
    std::printf("%8s %8.2f | %12.4f %12.4f | %12.4f %12.4f | %9.1f%%\n",
                corner.process.c_str(), corner.delayFactor, baseArr,
                baseSigma, tunedArr, tunedSigma,
                100.0 * (baseSigma - tunedSigma) / baseSigma);
  }
  bench::printRule();
  (void)ttBaseArrival;
  (void)ttBaseSigma;
  std::printf("expected: per corner, arrival and sigma scale by the *same* "
              "factor (slightly above\nthe raw corner factor, since slews "
              "recomputed at the corner compound the slew-\ndependent delay "
              "terms), and the tuned design keeps a similar relative sigma\n"
              "advantage at every corner — tuning once at TT is enough "
              "(section VII.C).\n");
  return 0;
}
