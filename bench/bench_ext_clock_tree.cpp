// Extension experiment (the paper's section VIII future work): the effect
// of library tuning on the *clock tree*. Builds a balanced buffered clock
// tree over the MCU's flip-flops with the baseline library and with tuned
// constraints at several sigma ceilings, and reports insertion delay,
// per-sink insertion sigma and skew sigma.

#include "bench_common.hpp"
#include "clocktree/clock_tree.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Extension — library tuning applied to the clock tree",
                     "section VIII future work ('the effectiveness of the "
                     "method on the clock tree')");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const core::DesignMeasurement baseline =
      flow.synthesizeBaseline(clocks.highPerf);
  std::printf("design: %zu gates, %.3f ns clock\n\n",
              baseline.synthesis.design.gateCount(), clocks.highPerf);

  std::printf("%-22s %8s %8s %10s %11s %11s %11s %11s\n", "library", "bufs",
              "levels", "area", "insertion", "ins sigma", "sib skew",
              "worst skew");
  bench::printRule();

  auto report = [&](const char* label,
                    const tuning::LibraryConstraints* constraints) {
    const auto tree = clocktree::buildClockTree(
        baseline.synthesis.design, flow.nominalLibrary(), flow.statLibrary(),
        constraints);
    if (!tree) {
      std::printf("%-22s %8s (no usable clock buffers)\n", label, "-");
      return;
    }
    std::printf("%-22s %8zu %8zu %10.0f %10.4f %10.5f %10.5f %10.5f\n", label,
                tree->bufferCount(), tree->levels.size(), tree->bufferArea(),
                tree->insertionDelay(), tree->insertionSigma(),
                tree->siblingSkewSigma(), tree->worstSkewSigma());
  };

  report("baseline", nullptr);
  for (double ceiling : {0.02, 0.01, 0.005, 0.002}) {
    const auto constraints = flow.tune(
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    char label[64];
    std::snprintf(label, sizeof label, "sigma ceiling %.3g", ceiling);
    report(label, &constraints);
  }
  bench::printRule();
  std::printf("expected: tighter ceilings confine buffers to low-sigma "
              "windows (lighter loads, larger\nbuffers) -> insertion and "
              "skew sigma shrink, paid with more buffers/levels and area.\n"
              "At an extreme ceiling the buffer family is tuned away "
              "entirely and no tree can be built.\n");
  return 0;
}
