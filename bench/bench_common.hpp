#pragma once
// Shared configuration and formatting for the experiment harnesses. Every
// bench binary regenerates one table or figure of the paper; absolute
// numbers differ from the paper's testbed (our substrate is a simulator)
// but the reported shapes are the reproduction targets (see EXPERIMENTS.md).

#include <cstdio>
#include <string>

#include "core/flow.hpp"

namespace sct::bench {

/// Full-size flow: 304-cell library, 50 Monte-Carlo instances, ~20k-gate
/// microcontroller — the paper's setup.
inline core::FlowConfig standardConfig() {
  core::FlowConfig config;
  config.mcLibraryCount = 50;
  config.mcSeed = 2014;
  return config;
}

/// The paper's four timing constraints (Table 1): 2.41 (high performance,
/// the minimum achievable period), 2.5 (close-to-maximum check), 4 (medium)
/// and 10 ns (low performance / relaxed knee). Our library and synthesizer
/// have their own speed, so the set is derived from the measured minimum
/// period with the paper's ratios.
struct ClockSet {
  double highPerf = 0.0;
  double closeToMax = 0.0;
  double medium = 0.0;
  double low = 0.0;
};

inline ClockSet paperClockSet(core::TuningFlow& flow) {
  const double minPeriod = flow.findMinPeriod().value_or(4.8);
  ClockSet set;
  set.highPerf = minPeriod;
  set.closeToMax = minPeriod * (2.5 / 2.41);
  set.medium = minPeriod * (4.0 / 2.41);
  set.low = minPeriod * (10.0 / 2.41);
  return set;
}

/// Baseline + sigma-ceiling-tuned designs at one clock period, with the
/// ceiling chosen by the paper's Fig. 10 rule (best sigma reduction under a
/// 10% area increase). Used by the Fig. 9/12/13/14 benches.
struct TunedPair {
  core::DesignMeasurement baseline;
  core::DesignMeasurement tuned;
  double ceiling = 0.0;
};

inline TunedPair sigmaCeilingPair(core::TuningFlow& flow, double period) {
  TunedPair pair;
  pair.baseline = flow.synthesizeBaseline(period);
  auto sweep = flow.sweepMethod(tuning::TuningMethod::kSigmaCeiling, period,
                                pair.baseline);
  const auto* best = core::TuningFlow::bestUnderAreaCap(sweep, 10.0);
  if (best == nullptr) best = &sweep.front();
  pair.ceiling = best->parameter;
  for (auto& point : sweep) {
    if (&point == best) {
      pair.tuned = std::move(point.measurement);
      break;
    }
  }
  return pair;
}

inline void printHeader(const char* title, const char* paperRef) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("==============================================================\n");
}

inline void printRule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace sct::bench
