// Ablation: how many paths per endpoint should the design-sigma aggregate
// (eq. (11)) include? The paper uses the worst path per unique endpoint
// (m paths); this bench widens the population to the K latest paths per
// endpoint and checks that the headline comparison (baseline vs tuned) is
// insensitive to K — near-critical sibling paths inflate the absolute
// aggregate but not the conclusion.

#include <cmath>

#include "bench_common.hpp"
#include "variation/path_stats.hpp"

namespace {

double designSigmaK(const sct::core::TuningFlow& flow,
                    const sct::synth::SynthesisResult& result, double period,
                    const sct::liberty::Library& lib,
                    const sct::statlib::StatLibrary& stat, std::size_t k) {
  sct::sta::ClockSpec clock = flow.config().clock;
  clock.period = period;
  sct::sta::TimingAnalyzer sta(result.design, lib, clock);
  sta.analyze();
  const sct::variation::PathStatistics stats(stat);
  double varSum = 0.0;
  for (const sct::sta::Endpoint& ep : sta.endpoints()) {
    for (const sct::sta::TimingPath& path : sta.kWorstPathsTo(ep, k)) {
      const double sigma = stats.pathStats(path).sigma;
      varSum += sigma * sigma;
    }
  }
  return std::sqrt(varSum);
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Ablation — K paths per endpoint in eq. (11)",
                     "section V aggregation choice");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  const core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  const liberty::Library& lib = flow.nominalLibrary();
  const statlib::StatLibrary& stat = flow.statLibrary();

  std::printf("clock %.3f ns; sigma ceiling 0.02\n\n", period);
  std::printf("%6s %16s %16s %14s\n", "K", "baseline sigma", "tuned sigma",
              "reduction");
  bench::printRule();
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const double base =
        designSigmaK(flow, baseline.synthesis, period, lib, stat, k);
    const double tun =
        designSigmaK(flow, tuned.synthesis, period, lib, stat, k);
    std::printf("%6zu %16.4f %16.4f %13.1f%%\n", k, base, tun,
                100.0 * (base - tun) / base);
  }
  bench::printRule();
  std::printf("expected: the aggregate grows with K (more RSS terms) but "
              "the relative reduction is\nstable — the paper's one-path-per-"
              "endpoint choice does not bias the conclusion.\n");
  return 0;
}
