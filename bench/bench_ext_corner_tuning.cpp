// Extension experiment: tuning at different PVT corners. Section VII.C
// argues that because local sigma scales with the mean across corners, the
// tuning "can also be applied in combination with these PVT corners". This
// bench makes the mechanism explicit by tuning statistical libraries built
// at FF/TT/SS: because sigma (and therefore its slopes) scales with the
// corner's delay factor, any *fixed* bound tightens at SS and relaxes at
// FF; scaling the bound by the corner factor restores the TT windows
// exactly — which is why the paper can tune once and transfer the result.

#include "bench_common.hpp"
#include "statlib/stat_library.hpp"

namespace {

/// Fraction of the full LUT area the windows keep, averaged over cells.
double meanWindowFraction(const sct::statlib::StatLibrary& stat,
                          const sct::tuning::LibraryConstraints& constraints) {
  double sum = 0.0;
  std::size_t cells = 0;
  for (const sct::statlib::StatCell* cell : stat.cells()) {
    if (cell->arcs().empty()) continue;
    const auto window = constraints.window(cell->name(), "Z");
    const sct::statlib::StatLut lut = cell->maxSigmaLutForPin("Z");
    if (lut.empty()) continue;
    ++cells;
    if (!window || window->maxLoad < window->minLoad) continue;
    std::size_t inside = 0;
    for (std::size_t r = 0; r < lut.rows(); ++r) {
      for (std::size_t c = 0; c < lut.cols(); ++c) {
        if (window->allows(lut.slewAxis()[r], lut.loadAxis()[c])) ++inside;
      }
    }
    sum += static_cast<double>(inside) /
           static_cast<double>(lut.rows() * lut.cols());
  }
  return cells > 0 ? sum / static_cast<double>(cells) : 0.0;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Extension — tuning across PVT corners",
                     "section VII.C: applying the method per corner");

  const charlib::Characterizer characterizer;
  std::printf("%8s %14s | %-22s %-22s %-22s\n", "corner", "corner factor",
              "strength-load 0.03", "sigma ceiling 0.02", "scaled ceiling");
  bench::printRule();
  for (const charlib::ProcessCorner& corner : charlib::ProcessCorner::all()) {
    const auto instances =
        characterizer.characterizeMonteCarlo(corner, 30, 2014);
    const statlib::StatLibrary stat = statlib::buildStatLibrary(instances);

    const auto slope = tuning::tuneLibrary(
        stat, tuning::TuningConfig::forMethod(
                  tuning::TuningMethod::kCellStrengthLoadSlope, 0.03));
    const auto fixedCeiling = tuning::tuneLibrary(
        stat, tuning::TuningConfig::forMethod(
                  tuning::TuningMethod::kSigmaCeiling, 0.02));
    // Ceiling scaled by the corner's delay factor: recovers TT-like windows.
    const auto scaledCeiling = tuning::tuneLibrary(
        stat, tuning::TuningConfig::forMethod(
                  tuning::TuningMethod::kSigmaCeiling,
                  0.02 * corner.delayFactor));
    std::printf("%8s %14.2f | kept %5.1f%% of LUTs    kept %5.1f%% of LUTs"
                "    kept %5.1f%% of LUTs\n",
                corner.process.c_str(), corner.delayFactor,
                100.0 * meanWindowFraction(stat, slope),
                100.0 * meanWindowFraction(stat, fixedCeiling),
                100.0 * meanWindowFraction(stat, scaledCeiling));
  }
  bench::printRule();
  std::printf("expected: fixed bounds (slope or ceiling) tighten at SS and "
              "relax at FF because\nsigma scales with the corner factor; "
              "scaling the ceiling by that factor restores the\nTT windows "
              "exactly — the paper's 'scales by an identical factor' "
              "conclusion expressed\nin window terms.\n");
  return 0;
}
