// Fig. 9: cell-usage histograms of the baseline synthesis and the marked
// tuning method (sigma ceiling) at (a) the high-performance clock and
// (b) the relaxed 10ns-equivalent clock. Only cells used more than 100
// times are listed, as in the paper. The paper's observations to look for:
//  - basic cells (NAND/NOR/INV/flip-flops) dominate;
//  - tighter timing uses a larger variety of simple cells, relaxed timing
//    uses more dedicated cells (adders);
//  - the tuned design uses more inverters (buffering) and shifts to higher
//    drive strengths of the same function (e.g. NR2B_1 -> NR2B_2/3).

#include <algorithm>
#include <map>
#include <vector>

#include "bench_common.hpp"

namespace {

using Usage = std::map<std::string, std::size_t>;

void printHistogram(const Usage& baseline, const Usage& tuned,
                    std::size_t minCount) {
  // Union of cells above the threshold in either design.
  std::vector<std::string> names;
  for (const auto& [name, count] : baseline) {
    if (count > minCount) names.push_back(name);
  }
  for (const auto& [name, count] : tuned) {
    if (count > minCount && !baseline.contains(name)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  std::printf("%-12s %10s %10s\n", "cell", "baseline", "tuned");
  sct::bench::printRule();
  for (const std::string& name : names) {
    const auto b = baseline.find(name);
    const auto t = tuned.find(name);
    std::printf("%-12s %10zu %10zu\n", name.c_str(),
                b != baseline.end() ? b->second : 0,
                t != tuned.end() ? t->second : 0);
  }
}

std::size_t inverterCount(const Usage& usage) {
  std::size_t n = 0;
  for (const auto& [name, count] : usage) {
    if (name.rfind("IV_", 0) == 0) n += count;
  }
  return n;
}

double usageMeanStrength(const Usage& usage) {
  double weighted = 0.0;
  std::size_t total = 0;
  for (const auto& [name, count] : usage) {
    const std::size_t underscore = name.rfind('_');
    const double s =
        sct::liberty::parseStrengthSuffix(name.substr(underscore + 1));
    if (s > 0.0) {
      weighted += s * static_cast<double>(count);
      total += count;
    }
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0.0;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 9 — cell use, baseline vs tuned (cells > 100 uses)",
                     "Fig. 9 (a) high performance, (b) relaxed");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);

  for (const auto& [label, period] :
       {std::pair{"(a) high performance", clocks.highPerf},
        std::pair{"(b) relaxed / low performance", clocks.low}}) {
    std::printf("\n=== %s: %.3f ns ===\n", label, period);
    const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);

    // Pick the sigma-ceiling parameter as in Table 3: the best sigma
    // reduction with <10% area increase.
    const auto sweep = flow.sweepMethod(tuning::TuningMethod::kSigmaCeiling,
                                        period, baseline);
    const auto* best = core::TuningFlow::bestUnderAreaCap(sweep, 10.0);
    if (best == nullptr) {
      std::printf("no feasible sigma-ceiling point under the area cap\n");
      continue;
    }
    std::printf("tuned with sigma ceiling %.3g (sigma -%.1f%%, area %+.1f%%)\n\n",
                best->parameter, best->sigmaReductionPct,
                best->areaIncreasePct);
    const Usage baseUsage = baseline.synthesis.cellUsage();
    const Usage tunedUsage = best->measurement.synthesis.cellUsage();
    printHistogram(baseUsage, tunedUsage, 100);

    bench::printRule();
    std::printf("inverter cells:   baseline %6zu   tuned %6zu\n",
                inverterCount(baseUsage), inverterCount(tunedUsage));
    std::printf("mean drive strength: baseline %.2f   tuned %.2f\n",
                usageMeanStrength(baseUsage), usageMeanStrength(tunedUsage));
    std::printf("distinct cells used: baseline %zu   tuned %zu\n",
                baseUsage.size(), tunedUsage.size());
  }
  return 0;
}
