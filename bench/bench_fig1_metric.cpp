// Fig. 1 + Fig. 3: the metric discussion (coefficient of variation vs
// standard deviation) and the bilinear interpolation procedure.
//
// Fig. 1's argument: two delay distributions can share a coefficient of
// variation (0.02) while having a 10x different standard deviation; the
// narrow one is preferable, so sigma — not CV — is the selection metric.

#include <cmath>

#include "bench_common.hpp"
#include "numeric/interp.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Fig. 1 — variability (CV) is not the right metric",
                     "Fig. 1 and section III");

  // Reconstruct the two distributions of Fig. 1 by sampling.
  numeric::Rng rng(1);
  numeric::RunningStats narrow;
  numeric::RunningStats wide;
  for (int i = 0; i < 100000; ++i) {
    narrow.add(rng.normal(0.5, 0.01));
    wide.add(rng.normal(5.0, 0.1));
  }
  std::printf("%-18s %10s %10s %14s\n", "distribution", "mean", "sigma",
              "variability");
  bench::printRule();
  std::printf("%-18s %10.4f %10.4f %14.4f\n", "left (narrow)", narrow.mean(),
              narrow.stddev(), narrow.summary().variability());
  std::printf("%-18s %10.4f %10.4f %14.4f\n", "right (wide)", wide.mean(),
              wide.stddev(), wide.summary().variability());
  bench::printRule();
  std::printf("identical variability (%.3f vs %.3f) but sigma differs 10x\n"
              "=> the tuner selects on sigma (section III conclusion)\n\n",
              narrow.summary().variability(), wide.summary().variability());

  // Fig. 3: bilinear interpolation worked example (eqs. (2)-(4)).
  bench::printHeader("Fig. 3 — bilinear interpolation of a LUT entry",
                     "Fig. 3, eqs. (2)-(4)");
  const numeric::Axis slew = {0.1, 0.2};
  const numeric::Axis load = {0.001, 0.002};
  numeric::Grid2d q(2, 2);
  q.at(0, 0) = 0.10;  // Q11 (Si,   Lj)
  q.at(0, 1) = 0.14;  // Q21 (Si,   Lj+1)
  q.at(1, 0) = 0.12;  // Q12 (Si+1, Lj)
  q.at(1, 1) = 0.18;  // Q22 (Si+1, Lj+1)
  const double s = 0.150;
  const double l = 0.0017;
  const double tl = (l - load[0]) / (load[1] - load[0]);
  const double p1 = (1 - tl) * q.at(0, 0) + tl * q.at(0, 1);
  const double p2 = (1 - tl) * q.at(1, 0) + tl * q.at(1, 1);
  const double ts = (s - slew[0]) / (slew[1] - slew[0]);
  const double manual = (1 - ts) * p1 + ts * p2;
  const double x = numeric::bilinear(slew, load, q, s, l);
  std::printf("query: S = %.3f ns, L = %.4f pF\n", s, l);
  std::printf("eq.(2) P1 = %.6f   eq.(3) P2 = %.6f   eq.(4) X = %.6f\n", p1,
              p2, manual);
  std::printf("library lookup X = %.6f  (match: %s)\n", x,
              std::abs(x - manual) < 1e-12 ? "yes" : "NO");
  return 0;
}
