// Load-test harness for the sctuned daemon (DESIGN.md §14): spins up an
// in-process server on a Unix socket, drives it with N concurrent clients x
// M requests across three mixes, and compares against a sequential
// CLI-style flow loop (fresh TuningFlow per request, warm disk cache —
// what `for p in ...; do sctune flow ...; done` costs without the daemon):
//
//   sequential     M duplicate-heavy flow requests, no daemon
//   warm/dup-heavy N clients x M requests over a small distinct-job set —
//                  the response cache + single-flight sweet spot
//   cold           all-distinct flow requests (every one computes)
//   overload       more concurrent sessions than the admission bound allows
//                  on a deliberately tiny server — overload must degrade to
//                  fast kBusy rejections, not unbounded queueing
//
// Emits google-benchmark-compatible JSON (per-request wall ns as real_time,
// p50/p95/p99 as separate entries) so scripts/bench_to_json.py can fold a
// run into BENCH_perf.json, and prints the dedup counters from the daemon's
// health snapshot. Exits nonzero when the duplicate-heavy mix fails the
// >=5x-over-sequential throughput criterion or coalescing never happened.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "core/flow_job.hpp"
#include "obs/metrics.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sct;
using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 Clock::now() - start)
                                 .count());
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// The duplicate-heavy request mix: a handful of distinct jobs, every
/// client cycling through them, so most requests repeat a recent one.
std::vector<server::FlowRequest> distinctJobs(std::size_t count,
                                              double basePeriod) {
  std::vector<server::FlowRequest> jobs(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs[i].job.profile = "small";
    jobs[i].job.period = basePeriod + 0.5 * static_cast<double>(i);
    jobs[i].job.method = "sigma-ceiling";
    jobs[i].job.value = 0.02;
    jobs[i].job.mcCount = 6;
    jobs[i].job.lintMode = "off";
  }
  return jobs;
}

struct BenchRecord {
  std::string name;
  double realTimeNs = 0.0;
  std::int64_t iterations = 0;
};

struct Harness {
  std::vector<BenchRecord> records;

  void add(const std::string& name, double ns, std::int64_t iters) {
    records.push_back({name, ns, iters});
    std::printf("%-36s %14.0f ns/req  (%lld reqs)\n", name.c_str(), ns,
                static_cast<long long>(iters));
  }

  void writeJson(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z", &tm);
    std::fprintf(out,
                 "{\n  \"context\": {\n    \"date\": \"%s\",\n"
                 "    \"num_cpus\": %u\n  },\n  \"benchmarks\": [\n",
                 date, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < records.size(); ++i) {
      const BenchRecord& r = records[i];
      std::fprintf(out,
                   "    {\n      \"name\": \"%s\",\n"
                   "      \"run_type\": \"iteration\",\n"
                   "      \"real_time\": %.17g,\n"
                   "      \"cpu_time\": %.17g,\n"
                   "      \"time_unit\": \"ns\",\n"
                   "      \"iterations\": %lld\n    }%s\n",
                   r.name.c_str(), r.realTimeNs, r.realTimeNs,
                   static_cast<long long>(r.iterations),
                   i + 1 < records.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut;
  std::size_t clients = 8;
  std::size_t requestsPerClient = 25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonOut = argv[++i];
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requestsPerClient = std::stoul(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_server [--json out.json] [--clients N] "
                   "[--requests M]\n");
      return 1;
    }
  }

  const fs::path root = fs::temp_directory_path() / "sct_bench_server";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string cacheDir = (root / "cache").string();
  obs::setMetricsEnabled(true);

  Harness harness;
  const std::vector<server::FlowRequest> jobs = distinctJobs(4, 8.0);

  // -- sequential CLI-style baseline (duplicate-heavy, no daemon) ----------
  // One warm-up pass fills the disk cache so the loop measures the steady
  // state a shell loop of `sctune flow` would see, not first-compute cost.
  {
    for (const server::FlowRequest& request : jobs) {
      core::FlowConfig config = core::makeFlowConfig(request.job);
      config.cacheDir = cacheDir;
      core::TuningFlow flow(std::move(config));
      (void)core::runFlowJob(flow, request.job);
    }
    const std::size_t total = clients * requestsPerClient;
    std::vector<double> latencies;
    latencies.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      const auto start = Clock::now();
      core::FlowConfig config = core::makeFlowConfig(jobs[i % jobs.size()].job);
      config.cacheDir = cacheDir;
      core::TuningFlow flow(std::move(config));
      const core::FlowJobResult result =
          core::runFlowJob(flow, jobs[i % jobs.size()].job);
      if (!result.success) {
        std::fprintf(stderr, "sequential flow failed: %s\n",
                     result.summary.c_str());
        return 1;
      }
      latencies.push_back(nsSince(start));
    }
    harness.add("SV_SequentialFlowLoop", mean(latencies),
                static_cast<std::int64_t>(total));
  }
  const double sequentialNs = harness.records.back().realTimeNs;

  // -- the daemon under the same duplicate-heavy mix -----------------------
  server::ServerConfig config;
  config.socketPath = (root / "sctuned.sock").string();
  config.sessionThreads = std::max<std::size_t>(clients, 4);
  config.maxQueuedSessions = 16;
  config.service.cacheDir = cacheDir;
  server::Server daemon(config);
  daemon.start();

  double daemonNs = 0.0;
  {
    std::vector<std::vector<double>> perClient(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto wallStart = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        server::Client client =
            server::Client::connectUnix(config.socketPath);
        perClient[c].reserve(requestsPerClient);
        for (std::size_t i = 0; i < requestsPerClient; ++i) {
          const auto start = Clock::now();
          const server::Response response =
              client.flow(jobs[(c + i) % jobs.size()]);
          if (response.status != server::Status::kOk) {
            std::fprintf(stderr, "daemon flow failed: %s\n",
                         response.summary.c_str());
            std::exit(1);
          }
          perClient[c].push_back(nsSince(start));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double wallNs = nsSince(wallStart);

    std::vector<double> latencies;
    for (const auto& batch : perClient) {
      latencies.insert(latencies.end(), batch.begin(), batch.end());
    }
    const std::int64_t total = static_cast<std::int64_t>(latencies.size());
    // Throughput uses wall time across all clients; latency percentiles use
    // the per-request distribution.
    harness.add("SV_DaemonFlowDupHeavy",
                wallNs / static_cast<double>(total), total);
    harness.add("SV_DaemonFlowDupHeavy_p50", percentile(latencies, 0.50),
                total);
    harness.add("SV_DaemonFlowDupHeavy_p95", percentile(latencies, 0.95),
                total);
    harness.add("SV_DaemonFlowDupHeavy_p99", percentile(latencies, 0.99),
                total);
    daemonNs = wallNs / static_cast<double>(total);
  }

  // -- cold mix: every request distinct, every one computes ----------------
  {
    const std::vector<server::FlowRequest> cold = distinctJobs(4, 14.0);
    server::Client client = server::Client::connectUnix(config.socketPath);
    std::vector<double> latencies;
    for (const server::FlowRequest& request : cold) {
      const auto start = Clock::now();
      const server::Response response = client.flow(request);
      if (response.status != server::Status::kOk) {
        std::fprintf(stderr, "cold flow failed: %s\n",
                     response.summary.c_str());
        return 1;
      }
      latencies.push_back(nsSince(start));
    }
    harness.add("SV_DaemonFlowCold", mean(latencies),
                static_cast<std::int64_t>(latencies.size()));
  }

  // Dedup counters out of the daemon's own health snapshot.
  std::uint64_t cacheHits = 0;
  std::uint64_t coalesced = 0;
  {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    cacheHits = snapshot.counterValue("server.cache.hits");
    coalesced = snapshot.counterValue("server.singleflight.coalesced");
    std::printf("server.cache.hits=%llu singleflight.coalesced=%llu "
                "singleflight.leader=%llu\n",
                static_cast<unsigned long long>(cacheHits),
                static_cast<unsigned long long>(coalesced),
                static_cast<unsigned long long>(
                    snapshot.counterValue("server.singleflight.leader")));
  }
  daemon.stop();

  // -- overload: a tiny server must reject fast, not queue forever ---------
  {
    server::ServerConfig tiny;
    tiny.socketPath = (root / "tiny.sock").string();
    tiny.sessionThreads = 2;
    tiny.maxQueuedSessions = 0;
    server::Server small(tiny);
    small.start();

    constexpr std::size_t kOverloadClients = 24;
    std::vector<double> latencies(kOverloadClients);
    std::vector<server::Status> statuses(kOverloadClients);
    std::vector<std::thread> threads;
    threads.reserve(kOverloadClients);
    for (std::size_t c = 0; c < kOverloadClients; ++c) {
      threads.emplace_back([&, c] {
        const auto start = Clock::now();
        server::Client client = server::Client::connectUnix(tiny.socketPath);
        server::PingRequest request;
        request.sleepMillis = 100;
        const server::Response response = client.ping(request);
        latencies[c] = nsSince(start);
        statuses[c] = response.status;
      });
    }
    for (std::thread& thread : threads) thread.join();
    small.stop();

    std::size_t busy = 0;
    for (const server::Status status : statuses) {
      if (status == server::Status::kBusy) {
        ++busy;
      } else if (status != server::Status::kOk) {
        std::fprintf(stderr, "overload: unexpected status %u\n",
                     static_cast<unsigned>(status));
        return 1;
      }
    }
    harness.add("SV_DaemonOverloadPing_p99", percentile(latencies, 0.99),
                static_cast<std::int64_t>(kOverloadClients));
    std::printf("overload: %zu/%zu rejected busy, %llu at the accept gate\n",
                busy, kOverloadClients,
                static_cast<unsigned long long>(small.busyRejects()));
    if (busy == 0) {
      std::fprintf(stderr, "FAIL: overload produced no busy rejections\n");
      return 1;
    }
  }

  const double speedup = sequentialNs / daemonNs;
  std::printf("duplicate-heavy speedup vs sequential: %.1fx\n", speedup);
  if (!jsonOut.empty()) harness.writeJson(jsonOut);

  if (cacheHits == 0 || coalesced + cacheHits == 0) {
    std::fprintf(stderr, "FAIL: dedup counters never moved\n");
    return 1;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: %.1fx < 5x over the sequential loop\n",
                 speedup);
    return 1;
  }
  fs::remove_all(root);
  return 0;
}
