// Ablation: sensitivity of the tuning result to the wire-load model. The
// paper synthesizes pre-layout (section VIII notes place-and-route as
// future work), so estimated wire capacitance is part of the operating
// point the tuner sees. This bench re-runs the baseline-vs-sigma-ceiling
// comparison under small/medium/large wire-load models: the sigma-reduction
// conclusion must be robust to the estimate; heavier wires push more cells
// into the high-sigma LUT region and make tuning bite harder.

#include "bench_common.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Ablation — wire-load model sensitivity",
                     "pre-layout estimation robustness (section VIII context)");

  const struct {
    const char* name;
    sta::WireLoadModel model;
  } models[] = {
      {"small (default)", sta::WireLoadModel::small()},
      {"medium", sta::WireLoadModel::medium()},
      {"large", sta::WireLoadModel::large()},
  };

  std::printf("%-18s %12s %14s %14s %12s %12s %6s\n", "wire load",
              "minP [ns]", "base sigma", "tuned sigma", "dSigma [%]",
              "dArea [%]", "met");
  bench::printRule();
  for (const auto& entry : models) {
    core::FlowConfig config = bench::standardConfig();
    config.clock.wireLoad = entry.model;
    core::TuningFlow flow(config);
    const auto minPeriod = flow.findMinPeriod();
    if (!minPeriod) {
      std::printf("%-18s no feasible period\n", entry.name);
      continue;
    }
    const core::DesignMeasurement baseline =
        flow.synthesizeBaseline(*minPeriod);
    const core::DesignMeasurement tuned = flow.synthesizeTuned(
        *minPeriod,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        0.02));
    std::printf("%-18s %12.3f %14.4f %14.4f %+12.1f %+12.1f %6s\n",
                entry.name, *minPeriod, baseline.sigma(), tuned.sigma(),
                100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma(),
                100.0 * (tuned.area() - baseline.area()) / baseline.area(),
                tuned.success() ? "yes" : "NO");
  }
  bench::printRule();
  std::printf("expected: the reduction holds under every model; heavier "
              "wires (more load per net)\nraise the baseline sigma and the "
              "minimum period, and give the window restriction more\nto "
              "cut.\n");
  return 0;
}
