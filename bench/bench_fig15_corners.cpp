// Fig. 15: Monte-Carlo simulation (N=200) of a short (~3 cells), medium
// (~18 cells) and long (~57 cells) path extracted from the baseline design,
// at the fast, typical and slow corners. The paper's validation: moving to
// another corner scales mean AND sigma by the same factor, so tuning
// results transfer across PVT corners.

#include <cmath>

#include "bench_common.hpp"
#include "variation/monte_carlo.hpp"

namespace {

const sct::sta::TimingPath* pickByDepth(
    const std::vector<sct::sta::TimingPath>& paths, std::size_t target) {
  const sct::sta::TimingPath* best = nullptr;
  for (const auto& path : paths) {
    if (path.depth() == 0) continue;
    if (best == nullptr ||
        std::llabs(static_cast<long long>(path.depth()) -
                   static_cast<long long>(target)) <
            std::llabs(static_cast<long long>(best->depth()) -
                       static_cast<long long>(target))) {
      best = &path;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 15 — corner Monte Carlo on extracted paths",
                     "Fig. 15 (short=3, medium=18, long=57 cells; N=200)");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const core::DesignMeasurement baseline =
      flow.synthesizeBaseline(clocks.highPerf);
  const auto paths = flow.tracePaths(baseline.synthesis, clocks.highPerf);

  const variation::PathMonteCarlo mc(flow.characterizer());
  for (const auto& [label, target] :
       {std::pair{"short", std::size_t{3}}, std::pair{"medium", std::size_t{18}},
        std::pair{"long", std::size_t{57}}}) {
    const sta::TimingPath* path = pickByDepth(paths, target);
    if (path == nullptr) continue;
    const std::string endpointLabel =
        sta::endpointName(baseline.synthesis.design, path->endpoint);
    std::printf("\n%s path: %zu cells (endpoint %s)\n", label, path->depth(),
                endpointLabel.c_str());
    std::printf("%8s %12s %12s %14s %14s\n", "corner", "mean [ns]",
                "sigma [ns]", "mean/typ", "sigma/typ");
    bench::printRule();
    variation::PathMcConfig config;
    config.trials = 200;
    config.seed = 77;
    config.corner = charlib::ProcessCorner::typical();
    const auto typical = mc.simulate(*path, config);
    for (const charlib::ProcessCorner& corner :
         charlib::ProcessCorner::all()) {
      config.corner = corner;
      const auto result = mc.simulate(*path, config);
      std::printf("%8s %12.4f %12.5f %14.3f %14.3f\n",
                  corner.process.c_str(), result.summary.mean,
                  result.summary.sigma,
                  result.summary.mean / typical.summary.mean,
                  result.summary.sigma / typical.summary.sigma);
    }
    std::printf("expected: the two ratio columns match per corner "
                "(mean and sigma scale together)\n");
  }
  return 0;
}
