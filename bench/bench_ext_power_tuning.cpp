// Extension experiment (section III's generalization hook): tune the
// library on *transition-power* sigma instead of delay sigma, and compare
// what each metric does to the design's delay spread and dynamic-power
// spread. The method is the paper's (windows from largest low-sigma
// rectangles); only the LUT being thresholded changes.

#include "bench_common.hpp"
#include "power/power_stats.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Extension — power-sigma library tuning",
                     "section III: 'other properties, such as transition "
                     "power'");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const power::PowerModel powerModel(flow.characterizer().model());
  const double activity = 0.15;

  auto evaluate = [&](const char* label,
                      const tuning::LibraryConstraints* constraints) {
    synth::Synthesizer synth(flow.nominalLibrary(), constraints);
    sta::ClockSpec clock = flow.config().clock;
    clock.period = period;
    synth::SynthesisResult run = synth.run(flow.subject(), clock);
    const core::DesignMeasurement m = flow.measure(std::move(run), period);
    sta::TimingAnalyzer sta(m.synthesis.design, flow.nominalLibrary(), clock);
    sta.analyze();
    const power::DesignPower p = power::analyzeDesignPower(
        m.synthesis.design, sta, flow.characterizer(), powerModel, activity);
    std::printf("%-26s %9s %11.4f %11.1f %12.1f %12.3f\n", label,
                m.success() ? "ok" : "FAIL", m.sigma(), m.area() / 1000.0,
                p.meanPower, p.sigmaPower);
    return std::pair{m.sigma(), p.sigmaPower};
  };

  std::printf("clock %.3f ns, activity %.2f\n\n", period, activity);
  std::printf("%-26s %9s %11s %11s %12s %12s\n", "tuner", "status",
              "dly sig", "area[k]", "P mean[uW]", "P sig[uW]");
  bench::printRule();
  const auto [baseDly, basePow] = evaluate("baseline", nullptr);

  // Delay-sigma tuning (the paper's method).
  const auto delayConstraints = flow.tune(
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  evaluate("delay sigma ceiling 0.02", &delayConstraints);

  // Power-sigma tuning at a few energy ceilings [fJ].
  for (double ceiling : {2.0, 1.0, 0.5}) {
    const auto powerConstraints = power::tuneLibraryOnPower(
        flow.characterizer(), powerModel, ceiling);
    char label[64];
    std::snprintf(label, sizeof label, "power sigma ceiling %.1f fJ", ceiling);
    evaluate(label, &powerConstraints);
  }
  bench::printRule();
  std::printf("baseline: delay sigma %.4f ns, power sigma %.3f uW\n", baseDly,
              basePow);
  std::printf("expected: each metric reduces its own spread most; both "
              "correlate (weak cells are\nbad for both), so power tuning "
              "also helps delay sigma and vice versa.\n");
  return 0;
}
