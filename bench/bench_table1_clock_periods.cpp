// Table 1: clock periods for the different timing constraints.
// The high-performance period is found exactly as in the paper: reduce the
// clock period until synthesis fails to close timing (bisection). The
// low-performance period is cross-checked against the knee of the
// period-vs-area curve (Fig. 8).

#include "bench_common.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Table 1 — clock periods for different constraints",
                     "Table 1 (paper: 2.41 / 2.5 / 4 / 10 ns)");

  core::TuningFlow flow(bench::standardConfig());
  const auto minPeriod = flow.findMinPeriod();
  if (!minPeriod) {
    std::printf("ERROR: no feasible period found\n");
    return 1;
  }
  const bench::ClockSet clocks = bench::paperClockSet(flow);

  std::printf("%-28s %12s %18s\n", "constraint", "paper [ns]", "measured [ns]");
  bench::printRule();
  std::printf("%-28s %12s %18.3f\n", "High performance (min)", "2.41",
              clocks.highPerf);
  std::printf("%-28s %12s %18.3f\n", "Close to maximum check", "2.50",
              clocks.closeToMax);
  std::printf("%-28s %12s %18.3f\n", "Medium performance", "4.00",
              clocks.medium);
  std::printf("%-28s %12s %18.3f\n", "Low performance", "10.00", clocks.low);
  bench::printRule();

  // Verify the protocol: feasible at the minimum, infeasible 5% below it.
  const auto atMin = flow.synthesizeBaseline(clocks.highPerf);
  const auto below = flow.synthesizeBaseline(clocks.highPerf * 0.95);
  std::printf("check: synthesis at min period      -> %s (wns %+.3f ns)\n",
              atMin.success() ? "MET" : "FAILED", atMin.synthesis.worstSlack);
  std::printf("check: synthesis 5%% below min       -> %s (wns %+.3f ns)\n",
              below.success() ? "MET" : "FAILED", below.synthesis.worstSlack);
  std::printf("design: %zu gates, area %.0f um^2 at the minimum period\n",
              atMin.synthesis.design.gateCount(), atMin.area());
  return 0;
}
