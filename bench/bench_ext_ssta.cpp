// Extension experiment: block-based SSTA (Clark's max over all paths per
// endpoint) versus the paper's per-path statistics (worst path per endpoint,
// eqs. (5)-(11)). Shows where the paper's per-path view differs from the
// full statistical maximum — the per-path sigma ignores near-critical
// sibling paths, SSTA does not — and what each predicts for timing yield at
// the high-performance clock, baseline vs tuned.

#include <algorithm>

#include "bench_common.hpp"
#include "variation/path_stats.hpp"
#include "variation/ssta.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Extension — statistical STA vs per-path statistics",
                     "section V alternative: Clark-max block SSTA");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;

  auto analyzeOne = [&](const char* label,
                        const core::DesignMeasurement& m) {
    sta::ClockSpec clock = flow.config().clock;
    clock.period = period;
    sta::TimingAnalyzer sta(m.synthesis.design, flow.nominalLibrary(), clock);
    sta.analyze();
    const variation::SstaResult ssta =
        variation::runSsta(m.synthesis.design, sta, flow.statLibrary());

    // Paper view: worst mean+3sigma over per-endpoint worst paths.
    double worstPath3Sigma = 0.0;
    for (const core::PathRecord& record : m.paths) {
      worstPath3Sigma =
          std::max(worstPath3Sigma, record.mean + 3.0 * record.sigma);
    }
    std::printf("%-18s %13.4f %13.4f %14.4f %14.5f %14.3g\n", label,
                worstPath3Sigma,
                ssta.designArrival.mean + 3.0 * ssta.designArrival.sigma,
                ssta.designArrival.mean, ssta.designArrival.sigma,
                ssta.expectedFailures);

    // Per-endpoint comparison: how often does SSTA sigma differ from the
    // worst-path sigma by more than 10%?
    std::size_t wider = 0;
    std::size_t comparable = 0;
    std::size_t index = 0;
    for (const variation::SstaEndpoint& ep : ssta.endpoints) {
      const core::PathRecord& record = m.paths[index++];
      if (record.sigma <= 0.0 || ep.arrival.sigma <= 0.0) continue;
      ++comparable;
      if (ep.arrival.mean > record.mean * 1.02) ++wider;
    }
    std::printf("%-18s   endpoints where the statistical max exceeds the "
                "worst path mean by >2%%: %zu / %zu\n",
                "", wider, comparable);
  };

  std::printf("clock %.3f ns (effective %.3f ns)\n\n", period,
              period - flow.config().clock.uncertainty);
  std::printf("%-18s %13s %13s %14s %14s %14s\n", "design", "path m+3s",
              "SSTA m+3s", "SSTA mean", "SSTA sigma", "E[failures]");
  bench::printRule();
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  analyzeOne("baseline", baseline);
  const core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  analyzeOne("sigma ceiling 0.02", tuned);
  bench::printRule();
  std::printf("reading: SSTA's statistical max inflates the critical-delay "
              "mean slightly above the\nworst single path (near-critical "
              "siblings) and its failure expectation gives a direct\n"
              "timing-yield estimate; the tuned design improves both views "
              "consistently.\n");
  return 0;
}
