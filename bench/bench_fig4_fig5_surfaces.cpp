// Fig. 4: sigma-delay surfaces of one inverter across drive strengths —
// higher drive strength means lower overall sigma and a flatter gradient;
// the slew range is shared while the load range grows with strength.
// Fig. 5: sigma surfaces of the drive-strength-6 cluster — cells of equal
// strength are similar but not identical (e.g. NR4_6 vs IV_6).

#include "bench_common.hpp"
#include "statlib/stat_library.hpp"

namespace {

void printSurface(const sct::statlib::StatCell& cell) {
  const sct::statlib::StatLut lut = cell.maxSigmaLut();
  std::printf("\ncell %s (strength %g): sigma LUT [ns], rows = slew, cols = "
              "load up to %.4f pF\n",
              cell.name().c_str(), cell.driveStrength(),
              lut.loadAxis().back());
  std::printf("%8s |", "slew\\load");
  for (double l : lut.loadAxis()) std::printf(" %8.4f", l);
  std::printf("\n");
  for (std::size_t r = 0; r < lut.rows(); ++r) {
    std::printf("%8.3f |", lut.slewAxis()[r]);
    for (std::size_t c = 0; c < lut.cols(); ++c) {
      std::printf(" %8.5f", lut.sigma().at(r, c));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 4 — inverter sigma surfaces across drive strengths",
                     "Fig. 4");
  core::TuningFlow flow(bench::standardConfig());
  const statlib::StatLibrary& stat = flow.statLibrary();

  for (const char* name : {"IV_1", "IV_4", "IV_12", "IV_32"}) {
    const statlib::StatCell* cell = stat.findCell(name);
    if (cell != nullptr) printSurface(*cell);
  }

  std::printf("\nsummary (max sigma per cell — must fall with strength):\n");
  for (const char* name : {"IV_0P5", "IV_1", "IV_2", "IV_4", "IV_8", "IV_16",
                           "IV_32"}) {
    const statlib::StatCell* cell = stat.findCell(name);
    if (cell == nullptr) continue;
    std::printf("  %-8s max sigma = %.5f ns, max load = %.4f pF\n", name,
                cell->maxSigmaLut().sigma().maxValue(),
                cell->maxSigmaLut().loadAxis().back());
  }

  bench::printHeader("Fig. 5 — sigma surfaces of the drive-strength-6 cluster",
                     "Fig. 5");
  const auto clusters = stat.strengthClusters();
  const auto it = clusters.find(6.0);
  if (it == clusters.end()) {
    std::printf("no strength-6 cluster?\n");
    return 1;
  }
  std::printf("%zu cells with drive strength 6; max sigma per cell:\n",
              it->second.size());
  for (const statlib::StatCell* cell : it->second) {
    const statlib::StatLut lut = cell->maxSigmaLut();
    if (lut.empty()) continue;
    std::printf("  %-10s max sigma = %.5f ns  load range = %.4f pF  origin "
                "sigma = %.5f ns\n",
                cell->name().c_str(), lut.sigma().maxValue(),
                lut.loadAxis().back(), lut.sigma().at(0, 0));
  }
  printSurface(*stat.findCell("NR4_6"));
  printSurface(*stat.findCell("IV_6"));
  return 0;
}
