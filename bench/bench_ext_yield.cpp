// Extension experiment: parametric timing yield versus clock period. The
// paper's motivation (section III): reducing local variation lets the
// designer shrink the clock-uncertainty guard band and therefore the clock
// period. This bench makes that quantitative — yield(period) curves for the
// baseline and the tuned design, and the period each needs for a 99% yield
// target.
//
// Note: both designs are synthesized once at the high-performance clock and
// then *evaluated* across periods (the netlist does not change with the
// evaluation period), so the curves isolate the statistical effect.

#include "bench_common.hpp"
#include "variation/ssta.hpp"

namespace {

double yieldAt(const sct::core::TuningFlow& flow,
               const sct::synth::SynthesisResult& result, double period,
               const sct::liberty::Library& library,
               const sct::statlib::StatLibrary& stat) {
  sct::sta::ClockSpec clock = flow.config().clock;
  clock.period = period;
  sct::sta::TimingAnalyzer sta(result.design, library, clock);
  if (!sta.analyze()) return 0.0;
  return sct::variation::runSsta(result.design, sta, stat).timingYield;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Extension — timing yield vs clock period",
                     "section III motivation made quantitative");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  const core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  const liberty::Library& lib = flow.nominalLibrary();
  const statlib::StatLibrary& stat = flow.statLibrary();

  std::printf("designs synthesized at %.3f ns; yield evaluated across "
              "periods\n\n",
              period);
  std::printf("%14s %16s %16s\n", "period [ns]", "baseline yield",
              "tuned yield");
  bench::printRule();
  double baseline99 = 0.0;
  double tuned99 = 0.0;
  for (double factor = 0.90; factor <= 1.081; factor += 0.015) {
    const double p = period * factor;
    const double yb =
        yieldAt(flow, baseline.synthesis, p, lib, stat);
    const double yt = yieldAt(flow, tuned.synthesis, p, lib, stat);
    std::printf("%14.3f %16.4f %16.4f\n", p, yb, yt);
    if (baseline99 == 0.0 && yb >= 0.99) baseline99 = p;
    if (tuned99 == 0.0 && yt >= 0.99) tuned99 = p;
  }
  bench::printRule();
  if (baseline99 > 0.0 && tuned99 > 0.0) {
    std::printf("period for 99%% timing yield: baseline %.3f ns, tuned %.3f "
                "ns -> %.1f%% faster clock\n",
                baseline99, tuned99,
                100.0 * (baseline99 - tuned99) / baseline99);
  }
  std::printf("expected: the tuned design's yield curve sits left of the "
              "baseline's — the same\nrobustness can be had at a shorter "
              "clock period (the paper's guard-band argument).\n");
  return 0;
}
