// Performance microbenchmarks (google-benchmark) of the computational
// kernels: bilinear interpolation, largest-rectangle extraction (reference
// vs production), statistical-library construction, full-design STA and
// Monte-Carlo path simulation. The four parallelized kernels (MC
// characterization, stat-library merge, tuning, path MC) carry a "threads"
// argument: 0 is the serial fallback, N pins the pool to N workers. Outputs
// are bit-identical across the thread axis; only wall-clock changes.
// scripts/run_benchmarks.sh turns a run into BENCH_perf.json.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "charlib/characterizer.hpp"
#include "core/flow.hpp"
#include "core/flow_job.hpp"
#include "evo/tuner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "numeric/interp.hpp"
#include "numeric/rng.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "tuning/rectangle.hpp"
#include "tuning/restriction.hpp"
#include "netlist/simulate.hpp"
#include "synth/pattern_map.hpp"
#include "variation/monte_carlo.hpp"
#include "variation/ssta.hpp"

namespace {

using namespace sct;

charlib::CharacterizationConfig smallCharConfig() {
  charlib::CharacterizationConfig config;
  config.slewAxis = {0.002, 0.05, 0.2, 0.6};
  config.loadFractions = {0.01, 0.1, 0.4, 1.0};
  return config;
}

void BM_BilinearLookup(benchmark::State& state) {
  const numeric::Axis slew = {0.002, 0.008, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
  const numeric::Axis load = {0.001, 0.002, 0.004, 0.008,
                              0.016, 0.032, 0.048, 0.06};
  numeric::Grid2d grid(8, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      grid.at(r, c) = 0.01 + 0.1 * slew[r] + 4.0 * load[c];
    }
  }
  numeric::Rng rng(1);
  double sink = 0.0;
  for (auto _ : state) {
    sink += numeric::bilinear(slew, load, grid, rng.uniform(0.0, 0.6),
                              rng.uniform(0.0, 0.06));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_BilinearLookup);

void BM_BatchedBilinear(benchmark::State& state) {
  // One shared axis search fanned across a batch of `n` SoA grids (the MC
  // characterization inner loop); compare against n x BM_BilinearLookup for
  // the per-instance win.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const numeric::Axis slew = {0.002, 0.008, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
  const numeric::Axis load = {0.001, 0.002, 0.004, 0.008,
                              0.016, 0.032, 0.048, 0.06};
  numeric::GridBatch batch(8, 8, n);
  numeric::Rng fill(3);
  for (double& v : batch.flat()) v = fill.uniform(0.0, 0.4);
  std::vector<double> out(n);
  numeric::Rng rng(1);
  for (auto _ : state) {
    numeric::batchedBilinear(slew, load, batch, rng.uniform(0.0, 0.6),
                             rng.uniform(0.0, 0.06), out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchedBilinear)->Arg(8)->Arg(64)->Arg(512);

tuning::BinaryLut randomLut(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  tuning::BinaryLut lut(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) lut.set(r, c, rng.uniform() < 0.7);
  }
  return lut;
}

void BM_LargestRectangle(benchmark::State& state) {
  const auto lut = randomLut(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuning::largestRectangle(lut));
  }
}
BENCHMARK(BM_LargestRectangle)->Arg(8)->Arg(16)->Arg(32);

void BM_LargestRectangleReference(benchmark::State& state) {
  const auto lut = randomLut(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuning::largestRectangleReference(lut));
  }
}
BENCHMARK(BM_LargestRectangleReference)->Arg(8)->Arg(16);

void BM_CharacterizeLibrary(benchmark::State& state) {
  const charlib::Characterizer chr(smallCharConfig());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chr.characterizeNominal(charlib::ProcessCorner::typical()));
  }
}
BENCHMARK(BM_CharacterizeLibrary);

// Thread counts exercised by the threaded kernel variants: serial fallback,
// then powers of two up to a typical desktop core count.
#define SCT_THREAD_ARGS ->ArgName("threads")->Arg(0)->Arg(2)->Arg(4)->Arg(8)

void BM_CharacterizeMonteCarlo(benchmark::State& state) {
  const charlib::Characterizer chr(smallCharConfig());
  parallel::setThreadCount(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 50, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50);
}
BENCHMARK(BM_CharacterizeMonteCarlo) SCT_THREAD_ARGS;

void BM_BuildStatLibrary(benchmark::State& state) {
  const charlib::Characterizer chr(smallCharConfig());
  const auto libs = chr.characterizeMonteCarlo(
      charlib::ProcessCorner::typical(),
      static_cast<std::size_t>(state.range(0)), 5);
  parallel::setThreadCount(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(statlib::buildStatLibrary(libs));
  }
}
BENCHMARK(BM_BuildStatLibrary)
    ->ArgNames({"libs", "threads"})
    ->Args({10, 0})
    ->Args({25, 0})
    ->Args({25, 2})
    ->Args({25, 4})
    ->Args({25, 8});

void BM_TuneLibrary(benchmark::State& state) {
  const charlib::Characterizer chr(smallCharConfig());
  const auto libs =
      chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 20, 5);
  const statlib::StatLibrary stat = statlib::buildStatLibrary(libs);
  const auto config =
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02);
  parallel::setThreadCount(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuning::tuneLibrary(stat, config));
  }
}
BENCHMARK(BM_TuneLibrary) SCT_THREAD_ARGS;

void BM_FullDesignSta(benchmark::State& state) {
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  sta::ClockSpec clock;
  clock.period = 8.0;
  static const synth::SynthesisResult result = [&] {
    synth::Synthesizer synth(lib);
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    sta::ClockSpec c;
    c.period = 8.0;
    return synth.run(netlist::generateMcu(small), c);
  }();
  sta::TimingAnalyzer analyzer(result.design, lib, clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(result.design.gateCount()));
}
BENCHMARK(BM_FullDesignSta);

// Shared mapped MCU for the synthesis-loop benchmarks (built once).
const synth::SynthesisResult& mappedMcu(const liberty::Library& lib) {
  static const synth::SynthesisResult result = [&] {
    synth::Synthesizer synth(lib);
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    sta::ClockSpec c;
    c.period = 8.0;
    return synth.run(netlist::generateMcu(small), c);
  }();
  return result;
}

void BM_LevelBatchedSta(benchmark::State& state) {
  // Full-design analyze with the level-batched propagation toggled:
  // batched=0 is the scalar per-instance sweep, batched=1 drains each level
  // through one flat arc-evaluation loop. Same bits either way.
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult& result = mappedMcu(lib);
  sta::TimingAnalyzer analyzer(result.design, lib, clock);
  analyzer.setLevelBatchedPropagation(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(result.design.gateCount()));
}
BENCHMARK(BM_LevelBatchedSta)->ArgName("batched")->Arg(0)->Arg(1);

void BM_SynthesisOptimize(benchmark::State& state) {
  // The whole mapping + optimization flow at MCU size; incremental=0 forces
  // a full re-analysis per optimization pass (the pre-incremental
  // behaviour), incremental=1 uses the notify/update API.
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  static const netlist::Design subject = [] {
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    return netlist::generateMcu(small);
  }();
  const synth::Synthesizer synth(lib);
  sta::ClockSpec clock;
  clock.period = 8.0;
  synth::SynthesisOptions options;
  options.incrementalSta = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.run(subject, clock, options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(subject.gateCount()));
}
BENCHMARK(BM_SynthesisOptimize)->ArgName("incremental")->Arg(0)->Arg(1);

void BM_SynthesisConstrained(benchmark::State& state) {
  // Window-constrained mapping: every legality query hits the constraint
  // lookup. compiled=0 pays the two-map string path per query, compiled=1
  // answers from the slot-interned CompiledConstraintView; results are
  // bit-identical either way (asserted by synth_test).
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  static const statlib::StatLibrary stat = statlib::buildStatLibrary(
      chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 10, 7));
  static const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      stat,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kCellLoadSlope,
                                      0.03));
  static const netlist::Design subject = [] {
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    return netlist::generateMcu(small);
  }();
  const synth::Synthesizer synth(lib, &constraints);
  sta::ClockSpec clock;
  clock.period = 8.0;
  synth::SynthesisOptions options;
  options.compiledConstraintWindows = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.run(subject, clock, options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(subject.gateCount()));
}
BENCHMARK(BM_SynthesisConstrained)->ArgName("compiled")->Arg(0)->Arg(1);

void BM_IncrementalSta(benchmark::State& state) {
  // Steady-state cost of one sizing move: rebind a cell, notify, update.
  // Compare against BM_FullDesignSta — the from-scratch analysis of the
  // same design — for the per-move speedup.
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  sta::ClockSpec clock;
  clock.period = 8.0;
  static netlist::Design design = mappedMcu(lib).design;
  static const synth::Synthesizer synth(lib);

  // A mid-levelization instance whose function family has ≥2 members; the
  // iteration toggles it between the weakest and strongest sibling.
  static const netlist::InstIndex victim = [] {
    netlist::InstIndex pick = netlist::kNoInst;
    for (netlist::InstIndex i = 0; i < design.instanceCount(); ++i) {
      const auto& inst = design.instance(i);
      if (!inst.alive || inst.cell == nullptr) continue;
      if (netlist::isSequential(inst.op)) continue;
      if (synth.family(inst.op).size() >= 2) pick = i;
    }
    return pick;
  }();
  if (victim == netlist::kNoInst) {
    state.SkipWithError("no swappable instance in the mapped MCU");
    return;
  }
  const auto& family = synth.family(design.instance(victim).op);

  sta::TimingAnalyzer analyzer(design, lib, clock);
  analyzer.analyze();
  bool strong = false;
  for (auto _ : state) {
    design.bindCell(victim, strong ? family.back() : family.front());
    strong = !strong;
    analyzer.notifyCellSwap(victim);
    benchmark::DoNotOptimize(analyzer.update());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalSta);

void BM_MonteCarloPath(benchmark::State& state) {
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  sta::ClockSpec clock;
  clock.period = 8.0;
  static const synth::SynthesisResult result = [&] {
    synth::Synthesizer synth(lib);
    netlist::Design chain("chain");
    netlist::NetlistBuilder b(chain);
    netlist::NetIndex n = b.dff(b.inputPort("in"), netlist::PrimOp::kDff);
    for (int i = 0; i < 20; ++i) n = b.inv(n);
    b.outputPort("out", b.dff(n, netlist::PrimOp::kDff));
    sta::ClockSpec c;
    c.period = 8.0;
    return synth.run(chain, c);
  }();
  sta::TimingAnalyzer analyzer(result.design, lib, clock);
  analyzer.analyze();
  const auto paths = analyzer.endpointWorstPaths();
  const sta::TimingPath* longest = &paths.front();
  for (const auto& p : paths) {
    if (p.depth() > longest->depth()) longest = &p;
  }
  const variation::PathMonteCarlo mc(chr);
  variation::PathMcConfig config;
  config.trials = 200;
  parallel::setThreadCount(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.simulate(*longest, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_MonteCarloPath) SCT_THREAD_ARGS;

void BM_Ssta(benchmark::State& state) {
  static const charlib::Characterizer chr(smallCharConfig());
  static const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  static const statlib::StatLibrary stat = statlib::buildStatLibrary(
      chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 15, 3));
  sta::ClockSpec clock;
  clock.period = 8.0;
  static const synth::SynthesisResult result = [&] {
    synth::Synthesizer synth(lib);
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    sta::ClockSpec c;
    c.period = 8.0;
    return synth.run(netlist::generateMcu(small), c);
  }();
  sta::TimingAnalyzer analyzer(result.design, lib, clock);
  analyzer.analyze();
  for (auto _ : state) {
    benchmark::DoNotOptimize(variation::runSsta(result.design, analyzer, stat));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(result.design.gateCount()));
}
BENCHMARK(BM_Ssta);

void BM_LogicSimulationStep(benchmark::State& state) {
  static const netlist::Design mcu = [] {
    netlist::McuConfig small;
    small.registers = 16;
    small.timers = 2;
    small.dmaChannels = 1;
    small.gpioWidth = 32;
    small.cacheTagEntries = 32;
    small.macUnits = 1;
    return netlist::generateMcu(small);
  }();
  netlist::Simulator sim(mcu);
  sim.reset();
  sim.setInputBus("sram_rdata", 0xDEADBEEF);
  sim.setInput("uart_rx", false);
  sim.setInput("ext_stall", false);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(mcu.gateCount()));
}
BENCHMARK(BM_LogicSimulationStep);

// Cold vs warm end-to-end flow: the warm variant serves characterization,
// stat-merge, tuning and synthesis out of the content-addressed artifact
// store, so the pair measures the resumable-stage speedup directly.
core::FlowConfig flowBenchConfig(const std::string& cacheDir) {
  core::FlowConfig config;
  config.characterization = smallCharConfig();
  config.mcLibraryCount = 10;
  config.mcu.registers = 16;
  config.mcu.timers = 2;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 32;
  config.mcu.cacheTagEntries = 32;
  config.mcu.macUnits = 1;
  config.cacheDir = cacheDir;
  return config;
}

const std::string& flowBenchCacheDir() {
  static const std::string dir =
      (std::filesystem::temp_directory_path() / "sct_bench_flow_cache")
          .string();
  return dir;
}

void BM_FlowColdCache(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(flowBenchCacheDir());  // force recompute
    state.ResumeTiming();
    core::TuningFlow flow(flowBenchConfig(flowBenchCacheDir()));
    benchmark::DoNotOptimize(flow.synthesizeBaseline(8.0));
  }
  std::filesystem::remove_all(flowBenchCacheDir());
}
BENCHMARK(BM_FlowColdCache)->Unit(benchmark::kMillisecond);

void BM_FlowWarmCache(benchmark::State& state) {
  std::filesystem::remove_all(flowBenchCacheDir());
  {
    core::TuningFlow seed(flowBenchConfig(flowBenchCacheDir()));
    benchmark::DoNotOptimize(seed.synthesizeBaseline(8.0));
  }
  for (auto _ : state) {
    core::TuningFlow flow(flowBenchConfig(flowBenchCacheDir()));
    benchmark::DoNotOptimize(flow.synthesizeBaseline(8.0));
  }
  std::filesystem::remove_all(flowBenchCacheDir());
}
BENCHMARK(BM_FlowWarmCache)->Unit(benchmark::kMillisecond);

// Warm flow with the in-memory artifact tier disabled (the CLI's
// --no-mem-cache): every stage probe decodes from the disk file again.
// Compare against BM_FlowWarmCache — the delta is what the memory tier buys
// a single-shot invocation.
void BM_FlowWarmCacheNoMem(benchmark::State& state) {
  std::filesystem::remove_all(flowBenchCacheDir());
  {
    core::TuningFlow seed(flowBenchConfig(flowBenchCacheDir()));
    benchmark::DoNotOptimize(seed.synthesizeBaseline(8.0));
  }
  for (auto _ : state) {
    core::FlowConfig config = flowBenchConfig(flowBenchCacheDir());
    config.memCacheBytes = 0;
    core::TuningFlow flow(std::move(config));
    benchmark::DoNotOptimize(flow.synthesizeBaseline(8.0));
  }
  std::filesystem::remove_all(flowBenchCacheDir());
}
BENCHMARK(BM_FlowWarmCacheNoMem)->Unit(benchmark::kMillisecond);

// Observability overhead pair (DESIGN.md §12): the same uncached flow with
// everything off vs tracing + metrics on. The CI obs-overhead job fails if
// the traced variant regresses more than the budget over the off variant.
void BM_FlowObsOff(benchmark::State& state) {
  obs::setTracingEnabled(false);
  obs::setMetricsEnabled(false);
  for (auto _ : state) {
    core::TuningFlow flow(flowBenchConfig(""));
    benchmark::DoNotOptimize(flow.synthesizeBaseline(8.0));
  }
}
BENCHMARK(BM_FlowObsOff)->Unit(benchmark::kMillisecond);

void BM_FlowTraced(benchmark::State& state) {
  obs::setTracingEnabled(true);
  obs::setMetricsEnabled(true);
  for (auto _ : state) {
    core::TuningFlow flow(flowBenchConfig(""));
    benchmark::DoNotOptimize(flow.synthesizeBaseline(8.0));
    obs::clearTrace();
  }
  obs::setTracingEnabled(false);
  obs::setMetricsEnabled(false);
}
BENCHMARK(BM_FlowTraced)->Unit(benchmark::kMillisecond);

void BM_PatternMapping(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    netlist::Design mcu = netlist::generateMcu();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        synth::mapPatterns(mcu, [](netlist::PrimOp) { return true; }));
  }
}
BENCHMARK(BM_PatternMapping);

void BM_EvolveGeneration(benchmark::State& state) {
  // One seeded NSGA-II round at small-profile MCU size: 20 paper-sweep
  // seeds + random init + one offspring batch, every candidate a full
  // constrain/synthesize/measure evaluation fanned out on the pool.
  core::FlowJob flowJob;
  flowJob.profile = "small";
  flowJob.period = 4.0;
  flowJob.lintMode = "off";
  evo::EvolveJob job;
  job.flow = flowJob;
  job.params.population = 4;
  job.params.generations = 1;
  for (auto _ : state) {
    core::TuningFlow flow(core::makeFlowConfig(flowJob));
    benchmark::DoNotOptimize(evo::runEvolveJob(flow, job));
  }
}
BENCHMARK(BM_EvolveGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
