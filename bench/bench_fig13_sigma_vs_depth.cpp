// Fig. 13: path timing spread (sigma) against path depth for the baseline
// and the sigma-ceiling design. The paper's finding: there is *no direct
// relation* between depth and sigma — the local variation of a path is
// dictated by which cells it uses and at which operating points, not by how
// many. The bench reports per-depth sigma ranges and the depth-sigma
// correlation coefficient.

#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "numeric/statistics.hpp"

namespace {

double correlation(const std::vector<sct::core::PathRecord>& paths) {
  // Pearson correlation between depth and sigma.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  const double n = static_cast<double>(paths.size());
  for (const auto& r : paths) {
    const double x = static_cast<double>(r.depth);
    const double y = r.sigma;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  return (vx > 0 && vy > 0) ? cov / std::sqrt(vx * vy) : 0.0;
}

void report(const char* label,
            const std::vector<sct::core::PathRecord>& paths) {
  std::map<std::size_t, sct::numeric::RunningStats> byDepth;
  for (const auto& r : paths) byDepth[r.depth].add(r.sigma);
  std::printf("\n%s (%zu endpoint paths)\n", label, paths.size());
  std::printf("%8s %8s %12s %12s %12s\n", "depth", "paths", "min sig",
              "mean sig", "max sig");
  sct::bench::printRule();
  for (const auto& [depth, stats] : byDepth) {
    if (stats.count() < 3 && depth > 1) continue;  // keep the table readable
    std::printf("%8zu %8zu %12.5f %12.5f %12.5f\n", depth, stats.count(),
                stats.min(), stats.mean(), stats.max());
  }
  std::printf("depth-sigma Pearson correlation: %.3f\n", correlation(paths));
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 13 — path sigma vs path depth",
                     "Fig. 13 (high-performance clock)");
  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const bench::TunedPair pair = bench::sigmaCeilingPair(flow, clocks.highPerf);
  std::printf("clock %.3f ns; sigma ceiling %.3g\n", clocks.highPerf,
              pair.ceiling);

  report("baseline", pair.baseline.paths);
  report("sigma ceiling", pair.tuned.paths);

  bench::printRule();
  std::printf("paper's observation: large per-depth sigma spread, no direct "
              "depth->sigma law;\nthe tuned design's sigma is lower at every "
              "depth.\n");
  return 0;
}
