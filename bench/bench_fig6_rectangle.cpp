// Fig. 6 + Algorithm 1: largest-rectangle extraction on a binary LUT. Shows
// the binary table, the extracted rectangle and the sigma threshold taken
// from the rectangle corner furthest from the origin, on a real cell of the
// statistical library.

#include "bench_common.hpp"
#include "tuning/rectangle.hpp"
#include "tuning/slope.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Fig. 6 — largest rectangle in a binary LUT",
                     "Fig. 6, Algorithm 1, section VI.B");

  core::TuningFlow flow(bench::standardConfig());
  const statlib::StatLibrary& stat = flow.statLibrary();
  const statlib::StatCell* cell = stat.findCell("IV_1");
  const statlib::StatLut lut = cell->maxSigmaLut();

  for (double threshold : {0.04, 0.02, 0.01, 0.005}) {
    const tuning::BinaryLut binary =
        tuning::BinaryLut::thresholdBelow(lut.sigma(), threshold);
    const auto rect = tuning::largestRectangle(binary);
    const auto ref = tuning::largestRectangleReference(binary);

    std::printf("\nIV_1, sigma threshold %.3f ns -> binary LUT "
                "(1 = acceptable, * = inside rectangle):\n",
                threshold);
    for (std::size_t r = 0; r < binary.rows(); ++r) {
      std::printf("  ");
      for (std::size_t c = 0; c < binary.cols(); ++c) {
        const bool inRect = rect && rect->contains(r, c);
        std::printf("%c", inRect ? '*' : (binary.test(r, c) ? '1' : '0'));
      }
      std::printf("\n");
    }
    if (rect) {
      std::printf("  rectangle rows [%zu..%zu] x cols [%zu..%zu], area %zu "
                  "(reference agrees: %s)\n",
                  rect->rowLo, rect->rowHi, rect->colLo, rect->colHi,
                  rect->area(), (ref && *ref == *rect) ? "yes" : "NO");
      std::printf("  extracted sigma at far corner = %.5f ns\n",
                  lut.sigma().at(rect->rowHi, rect->colHi));
      std::printf("  window: slew <= %.3f ns, load <= %.4f pF\n",
                  lut.slewAxis()[rect->rowHi], lut.loadAxis()[rect->colHi]);
    } else {
      std::printf("  no acceptable entry -> cell unusable at this threshold\n");
    }
  }
  return 0;
}
