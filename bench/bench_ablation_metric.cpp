// Ablation (section III design decision): tune on the *coefficient of
// variation* instead of the standard deviation. The paper argues sigma is
// the right metric (Fig. 1); this ablation implements a CV-ceiling tuner
// and compares the resulting windows and design sigma against the sigma
// ceiling at matched area cost.

#include "bench_common.hpp"
#include "tuning/rectangle.hpp"

namespace {

/// CV-based restriction: binary LUT from sigma/mean <= ceiling (instead of
/// sigma <= threshold), then the same largest-rectangle window extraction.
sct::tuning::LibraryConstraints tuneByCv(const sct::statlib::StatLibrary& stat,
                                         double cvCeiling) {
  using namespace sct;
  tuning::LibraryConstraints constraints;
  for (const statlib::StatCell* cell : stat.cells()) {
    if (cell->arcs().empty()) continue;
    tuning::CellConstraint constraint;
    constraint.sigmaThreshold = cvCeiling;
    bool usable = true;
    for (const std::string& pin : cell->outputPins()) {
      const statlib::StatLut lut = cell->maxSigmaLutForPin(pin);
      numeric::Grid2d cv(lut.rows(), lut.cols());
      for (std::size_t r = 0; r < lut.rows(); ++r) {
        for (std::size_t c = 0; c < lut.cols(); ++c) {
          const double mean = lut.mean().at(r, c);
          cv.at(r, c) = mean > 0.0 ? lut.sigma().at(r, c) / mean : 0.0;
        }
      }
      const auto rect = tuning::largestRectangle(
          tuning::BinaryLut::thresholdBelow(cv, cvCeiling));
      if (!rect) {
        usable = false;
        break;
      }
      tuning::PinWindow window;
      window.minSlew = rect->rowLo == 0 ? 0.0 : lut.slewAxis()[rect->rowLo];
      window.maxSlew = lut.slewAxis()[rect->rowHi];
      window.minLoad = rect->colLo == 0 ? 0.0 : lut.loadAxis()[rect->colLo];
      window.maxLoad = lut.loadAxis()[rect->colHi];
      constraint.pinWindows.emplace(pin, window);
    }
    if (usable) {
      constraints.setCell(cell->name(), std::move(constraint));
    } else {
      constraints.markUnusable(cell->name());
    }
  }
  return constraints;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Ablation — sigma ceiling vs CV (variability) ceiling",
                     "section III / Fig. 1 design decision");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  std::printf("clock %.3f ns; baseline sigma %.4f ns, area %.0f um^2\n\n",
              period, baseline.sigma(), baseline.area());

  std::printf("%-26s %12s %12s %12s %6s\n", "tuner", "sigma [ns]",
              "dSigma [%]", "dArea [%]", "met");
  bench::printRule();

  for (double ceiling : {0.03, 0.02, 0.01}) {
    const auto tuned = flow.synthesizeTuned(
        period,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    std::printf("%-20s %5.3g %12.4f %+12.1f %+12.1f %6s\n", "sigma ceiling",
                ceiling, tuned.sigma(),
                100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma(),
                100.0 * (tuned.area() - baseline.area()) / baseline.area(),
                tuned.success() ? "yes" : "NO");
  }
  for (double cv : {0.10, 0.06, 0.03}) {
    const tuning::LibraryConstraints constraints =
        tuneByCv(flow.statLibrary(), cv);
    synth::Synthesizer synth(flow.nominalLibrary(), &constraints);
    sta::ClockSpec clock = flow.config().clock;
    clock.period = period;
    const core::DesignMeasurement tuned =
        flow.measure(synth.run(flow.subject(), clock), period);
    std::printf("%-20s %5.3g %12.4f %+12.1f %+12.1f %6s\n", "CV ceiling", cv,
                tuned.sigma(),
                100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma(),
                100.0 * (tuned.area() - baseline.area()) / baseline.area(),
                tuned.success() ? "yes" : "NO");
  }
  bench::printRule();
  std::printf("expected: at matched area cost the CV tuner keeps high-sigma "
              "regions of slow cells\n(same CV, bigger sigma — Fig. 1) and "
              "reduces design sigma less per area point.\n");
  return 0;
}
