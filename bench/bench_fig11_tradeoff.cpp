// Fig. 11: sigma-reduction vs area-increase trade-off of the sigma-ceiling
// method at the high-performance clock, across a fine ceiling sweep. The
// paper's point: within a single method the bound parameter trades sigma
// against area.

#include "bench_common.hpp"

int main() {
  using namespace sct;
  bench::printHeader(
      "Fig. 11 — sigma vs area trade-off of the sigma-ceiling method",
      "Fig. 11 (high-performance clock)");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  std::printf("clock %.3f ns; baseline sigma %.4f ns, area %.0f um^2\n\n",
              period, baseline.sigma(), baseline.area());

  std::printf("%10s %14s %14s %12s %12s %6s\n", "ceiling", "sigma [ns]",
              "area [um^2]", "dSigma [%]", "dArea [%]", "met");
  bench::printRule();
  // Finer sweep than Table 2 to expose the whole trade-off curve.
  for (double ceiling : {0.08, 0.06, 0.05, 0.04, 0.03, 0.025, 0.02, 0.015,
                         0.012, 0.01, 0.008, 0.006}) {
    const core::DesignMeasurement tuned = flow.synthesizeTuned(
        period,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    const double dSigma =
        100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma();
    const double dArea =
        100.0 * (tuned.area() - baseline.area()) / baseline.area();
    std::printf("%10.3f %14.4f %14.0f %+12.1f %+12.1f %6s\n", ceiling,
                tuned.sigma(), tuned.area(), dSigma, dArea,
                tuned.success() ? "yes" : "NO");
  }
  bench::printRule();
  std::printf("expected shape: monotone sigma reduction as the ceiling "
              "tightens, paid with rising area\n");
  return 0;
}
