// Fig. 16: Monte-Carlo (N=200) of the same short/medium/long extracted
// paths, once with global+local variation and once with local variation
// only. The paper's finding: the local share of the total variation is
// large for short paths and decays with depth (65% / 37% / 6% for 3 / 18 /
// 57 cells) — because local mismatch averages out along a path (sqrt(n))
// while the global shift accumulates linearly.

#include "bench_common.hpp"
#include "numeric/statistics.hpp"
#include "variation/monte_carlo.hpp"

namespace {

const sct::sta::TimingPath* pickByDepth(
    const std::vector<sct::sta::TimingPath>& paths, std::size_t target) {
  const sct::sta::TimingPath* best = nullptr;
  for (const auto& path : paths) {
    if (path.depth() == 0) continue;
    const auto diff = [&](const sct::sta::TimingPath& p) {
      return p.depth() > target ? p.depth() - target : target - p.depth();
    };
    if (best == nullptr || diff(path) < diff(*best)) best = &path;
  }
  return best;
}

void histogram(const char* label, const std::vector<double>& samples) {
  // 10-bin text histogram.
  double lo = samples.front();
  double hi = samples.front();
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (hi <= lo) hi = lo + 1e-9;
  std::size_t bins[10] = {};
  for (double s : samples) {
    auto b = static_cast<std::size_t>((s - lo) / (hi - lo) * 10.0);
    ++bins[std::min<std::size_t>(b, 9)];
  }
  std::printf("  %-14s [%.4f .. %.4f] ", label, lo, hi);
  for (std::size_t b : bins) {
    std::printf("%c", b == 0 ? '.' : (b < 10 ? '0' + static_cast<char>(b)
                                             : '#'));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 16 — global+local vs local-only Monte Carlo",
                     "Fig. 16 (N=200; paper local shares 65%/37%/6%)");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const core::DesignMeasurement baseline =
      flow.synthesizeBaseline(clocks.highPerf);
  const auto paths = flow.tracePaths(baseline.synthesis, clocks.highPerf);
  const variation::PathMonteCarlo mc(flow.characterizer());

  std::printf("\n%8s %7s %12s %12s %12s %14s\n", "path", "cells",
              "sig(G+L)", "sig(L)", "local share", "paper share");
  bench::printRule();
  struct Probe {
    const char* label;
    std::size_t depth;
    const char* paperShare;
  };
  for (const Probe& probe :
       {Probe{"short", 3, "65%"}, Probe{"medium", 18, "37%"},
        Probe{"long", 57, "6%"}}) {
    const sta::TimingPath* path = pickByDepth(paths, probe.depth);
    if (path == nullptr) continue;
    variation::PathMcConfig both;
    both.trials = 200;
    both.seed = 99;
    both.includeGlobal = true;
    variation::PathMcConfig localOnly = both;
    localOnly.includeGlobal = false;
    const auto rBoth = mc.simulate(*path, both);
    const auto rLocal = mc.simulate(*path, localOnly);
    std::printf("%8s %7zu %12.5f %12.5f %11.1f%% %14s\n", probe.label,
                path->depth(), rBoth.summary.sigma, rLocal.summary.sigma,
                100.0 * rLocal.summary.sigma / rBoth.summary.sigma,
                probe.paperShare);
  }
  bench::printRule();

  // Histograms for the medium path, like the paper's plots.
  const sta::TimingPath* medium = pickByDepth(paths, 18);
  if (medium != nullptr) {
    std::printf("\nmedium path delay histograms (10 bins):\n");
    variation::PathMcConfig config;
    config.trials = 200;
    config.seed = 99;
    config.includeGlobal = true;
    histogram("global+local", mc.simulate(*medium, config).samples);
    config.includeGlobal = false;
    histogram("local only", mc.simulate(*medium, config).samples);
  }
  std::printf("\nexpected shape: local share decays with path depth "
              "(sqrt(n) vs n accumulation)\n");
  return 0;
}
