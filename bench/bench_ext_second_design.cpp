// Extension experiment: does the library tuning generalize beyond the
// paper's microcontroller? Runs the sigma-ceiling sweep on a structurally
// different subject — a DSP/FIR datapath (wide arithmetic, deep regular
// pipelines, little control) — and compares the sigma/area trade-off
// against the MCU's.

#include "bench_common.hpp"
#include "netlist/dsp.hpp"

namespace {

void sweepDesign(sct::core::TuningFlow& flow, const char* label,
                 const sct::netlist::Design& subject) {
  using namespace sct;
  synth::Synthesizer baselineSynth(flow.nominalLibrary());
  sta::ClockSpec clock = flow.config().clock;
  const auto minPeriod =
      baselineSynth.findMinPeriod(subject, clock, 0.5, 20.0, 0.05);
  if (!minPeriod) {
    std::printf("%s: no feasible period\n", label);
    return;
  }
  clock.period = *minPeriod;
  const core::DesignMeasurement baseline =
      flow.measure(baselineSynth.run(subject, clock), clock.period);
  std::printf("\n%s: %zu gates, min period %.3f ns, baseline sigma %.4f ns, "
              "area %.0f um^2\n",
              label, baseline.synthesis.design.gateCount(), *minPeriod,
              baseline.sigma(), baseline.area());
  std::printf("%10s %12s %12s %6s\n", "ceiling", "dSigma [%]", "dArea [%]",
              "met");
  sct::bench::printRule();
  for (double ceiling : {0.04, 0.03, 0.02, 0.01}) {
    const auto constraints = flow.tune(
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    synth::Synthesizer tunedSynth(flow.nominalLibrary(), &constraints);
    const core::DesignMeasurement tuned =
        flow.measure(tunedSynth.run(subject, clock), clock.period);
    std::printf("%10.3f %+12.1f %+12.1f %6s\n", ceiling,
                100.0 * (baseline.sigma() - tuned.sigma()) / baseline.sigma(),
                100.0 * (tuned.area() - baseline.area()) / baseline.area(),
                tuned.success() ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Extension — generalization to a second design (DSP)",
                     "beyond section VII's single microcontroller");

  core::TuningFlow flow(bench::standardConfig());
  sweepDesign(flow, "MCU (paper's vehicle)", flow.subject());
  sweepDesign(flow, "DSP/FIR core", netlist::generateDsp());

  bench::printRule();
  std::printf("expected: both designs show the same trade-off direction "
              "(monotone sigma reduction,\nrising area at aggressive "
              "ceilings). The DSP's headroom is smaller: its regular\n"
              "adder/multiplier fabric already operates most cells near "
              "their low-sigma region, so\nthe ceilings bite later — the "
              "method generalizes, with design-dependent magnitude.\n");
  return 0;
}
