// Fig. 14: mean + 3*sigma path delay per path, paths sorted by depth, for
// (a) the baseline and (b) the sigma-ceiling design at the high-performance
// clock. The paper's reading:
//  - some medium-depth paths have mean+3sigma above the effective period
//    (timing failures once local variation is added);
//  - after tuning the population is more homogeneous and the worst-case
//    value drops (2.23 -> 2.19 ns in the paper).

#include <algorithm>
#include <vector>

#include "bench_common.hpp"

namespace {

struct Row {
  std::size_t depth;
  double mean;
  double sigma;
};

void report(const char* label, const std::vector<sct::core::PathRecord>& paths,
            double effectivePeriod) {
  std::vector<Row> rows;
  rows.reserve(paths.size());
  for (const auto& r : paths) {
    if (r.depth == 0) continue;
    rows.push_back({r.depth, r.mean, r.sigma});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.depth < b.depth;
  });

  // Summarize in depth bands (the figure plots every path; a table keeps
  // the same information readable).
  std::printf("\n%s: %zu paths, effective period %.3f ns\n", label,
              rows.size(), effectivePeriod);
  std::printf("%12s %8s %12s %12s %14s %9s\n", "depth band", "paths",
              "mean [ns]", "3sig [ns]", "worst m+3s", "violations");
  sct::bench::printRule();
  const std::size_t bands[][2] = {{1, 2},  {3, 5},   {6, 10},  {11, 20},
                                  {21, 35}, {36, 50}, {51, 100}};
  double worstOverall = 0.0;
  std::size_t violations = 0;
  for (const auto& band : bands) {
    double meanSum = 0.0;
    double sigSum = 0.0;
    double worst = 0.0;
    std::size_t count = 0;
    std::size_t bandViolations = 0;
    for (const Row& row : rows) {
      if (row.depth < band[0] || row.depth > band[1]) continue;
      ++count;
      meanSum += row.mean;
      sigSum += row.sigma;
      const double m3s = row.mean + 3.0 * row.sigma;
      worst = std::max(worst, m3s);
      if (m3s > effectivePeriod) ++bandViolations;
    }
    if (count == 0) continue;
    worstOverall = std::max(worstOverall, worst);
    violations += bandViolations;
    std::printf("%5zu..%-5zu %8zu %12.4f %12.4f %14.4f %9zu\n", band[0],
                band[1], count, meanSum / static_cast<double>(count),
                3.0 * sigSum / static_cast<double>(count), worst,
                bandViolations);
  }
  sct::bench::printRule();
  std::printf("worst mean+3sigma: %.4f ns; paths above effective period: "
              "%zu\n",
              worstOverall, violations);
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader("Fig. 14 — mean + 3 sigma path delay per path depth",
                     "Fig. 14 (a) baseline, (b) sigma ceiling");
  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const bench::TunedPair pair = bench::sigmaCeilingPair(flow, clocks.highPerf);
  const double effective = clocks.highPerf - flow.config().clock.uncertainty;
  std::printf("clock %.3f ns (guard band %.2f ns -> effective %.3f ns); "
              "sigma ceiling %.3g\n",
              clocks.highPerf, flow.config().clock.uncertainty, effective,
              pair.ceiling);

  report("(a) baseline", pair.baseline.paths, effective);
  report("(b) sigma ceiling", pair.tuned.paths, effective);
  return 0;
}
