// Ablation (section V.B design decision): the paper assumes the pairwise
// cell-delay correlation rho = 0 (eq. (10)); eq. (9) supports any uniform
// rho. This bench sweeps rho and reports how design sigma and the headline
// sigma reduction shift — the *ranking* of tuned vs baseline should be
// robust to the assumption.

#include "bench_common.hpp"
#include "variation/path_stats.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Ablation — path convolution correlation rho",
                     "eqs. (9)-(10), section V.B");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  const core::DesignMeasurement tuned = flow.synthesizeTuned(
      period,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  const auto basePaths = flow.tracePaths(baseline.synthesis, period);
  const auto tunedPaths = flow.tracePaths(tuned.synthesis, period);

  std::printf("clock %.3f ns; sigma ceiling 0.02\n\n", period);
  std::printf("%8s %16s %16s %14s\n", "rho", "baseline sig", "tuned sig",
              "reduction");
  bench::printRule();
  for (double rho : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    const variation::PathStatistics stats(flow.statLibrary(), rho);
    const double baseSigma = stats.designStats(basePaths).sigma;
    const double tunedSigma = stats.designStats(tunedPaths).sigma;
    std::printf("%8.2f %16.4f %16.4f %13.1f%%\n", rho, baseSigma, tunedSigma,
                100.0 * (baseSigma - tunedSigma) / baseSigma);
  }
  bench::printRule();
  std::printf("expected: absolute sigma grows with rho, but the tuned design "
              "stays better by a\nsimilar relative margin — the rho = 0 "
              "assumption does not drive the conclusion.\n");
  return 0;
}
