// Fig. 7: the combined sigma-delay surface of all cells in the TT1P1V25C
// statistical library. The paper plots every cell's LUT in one surface; we
// report the per-index envelope (min / mean / max sigma across all 304
// cells) plus summary statistics, which carries the same information: where
// the library as a whole is flat and where it blows up.
// Also validates the Fig. 2 construction (statistical library from 50
// Monte-Carlo library instances).

#include "bench_common.hpp"
#include "numeric/statistics.hpp"

int main() {
  using namespace sct;
  bench::printHeader(
      "Fig. 7 — all cell-delay sigma LUTs of the statistical library",
      "Fig. 7 (and the Fig. 2 statistical-library construction)");

  core::TuningFlow flow(bench::standardConfig());
  const statlib::StatLibrary& stat = flow.statLibrary();
  std::printf("statistical library: %zu cells, built from %zu MC library "
              "instances\n\n",
              stat.size(), stat.sampleCount());

  // Envelope across all cells, per table index (all tables are 8x8 with
  // strength-normalized load axes).
  std::size_t rows = 0;
  std::size_t cols = 0;
  for (const statlib::StatCell* cell : stat.cells()) {
    const statlib::StatLut lut = cell->maxSigmaLut();
    if (!lut.empty()) {
      rows = lut.rows();
      cols = lut.cols();
      break;
    }
  }
  std::vector<numeric::RunningStats> envelope(rows * cols);
  std::size_t timedCells = 0;
  for (const statlib::StatCell* cell : stat.cells()) {
    const statlib::StatLut lut = cell->maxSigmaLut();
    if (lut.empty()) continue;
    ++timedCells;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        envelope[r * cols + c].add(lut.sigma().at(r, c));
      }
    }
  }
  std::printf("%zu timed cells; sigma envelope per LUT index [ns]\n",
              timedCells);
  std::printf("(rows = slew index, cols = relative-load index)\n\n");
  std::printf("max over cells:\n");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      std::printf(" %8.5f", envelope[r * cols + c].max());
    }
    std::printf("\n");
  }
  std::printf("mean over cells:\n");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      std::printf(" %8.5f", envelope[r * cols + c].mean());
    }
    std::printf("\n");
  }
  std::printf("min over cells:\n");
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      std::printf(" %8.5f", envelope[r * cols + c].min());
    }
    std::printf("\n");
  }

  // Library-wide summary (the "surface height" of Fig. 7).
  numeric::RunningStats all;
  for (const statlib::StatCell* cell : stat.cells()) {
    const statlib::StatLut lut = cell->maxSigmaLut();
    if (lut.empty()) continue;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) all.add(lut.sigma().at(r, c));
    }
  }
  bench::printRule();
  std::printf("library sigma range: %.5f .. %.5f ns (mean %.5f)\n", all.min(),
              all.max(), all.mean());
  std::printf("Table 2 context: ceilings 0.04/0.03/0.02/0.01 ns progressively "
              "cut into this range\n");
  return 0;
}
