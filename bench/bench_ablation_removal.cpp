// Ablation (section VI design decision): the paper restricts each cell's
// LUT *window* instead of removing whole cells (the prior library-tuning
// approaches [4][5][6]). This bench implements whole-cell removal — drop a
// cell entirely when any sigma entry exceeds the ceiling — and compares it
// against the window restriction at the same ceilings.

#include "bench_common.hpp"

namespace {

/// Whole-cell pruning: a cell survives only if its *entire* sigma LUT is
/// below the ceiling (no per-window second chance).
sct::tuning::LibraryConstraints pruneWholeCells(
    const sct::statlib::StatLibrary& stat, double ceiling) {
  using namespace sct;
  tuning::LibraryConstraints constraints;
  for (const statlib::StatCell* cell : stat.cells()) {
    if (cell->arcs().empty()) continue;
    const statlib::StatLut lut = cell->maxSigmaLut();
    if (lut.sigma().maxValue() > ceiling) {
      constraints.markUnusable(cell->name());
    }
    // Surviving cells stay fully unconstrained (no window).
  }
  return constraints;
}

}  // namespace

int main() {
  using namespace sct;
  bench::printHeader(
      "Ablation — LUT-window restriction vs whole-cell removal",
      "section VI (contrast with removal-based tuning [4][5][6])");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double period = clocks.highPerf;
  const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
  std::printf("clock %.3f ns; baseline sigma %.4f ns, area %.0f um^2\n\n",
              period, baseline.sigma(), baseline.area());

  std::printf("%-22s %8s %10s %12s %12s %6s\n", "tuner", "ceiling", "removed",
              "dSigma [%]", "dArea [%]", "met");
  bench::printRule();
  for (double ceiling : {0.04, 0.03, 0.02, 0.01}) {
    // Window restriction (the paper's method).
    const auto window = flow.synthesizeTuned(
        period,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    const auto windowConstraints = flow.tune(
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        ceiling));
    std::printf("%-22s %8.3f %10zu %+12.1f %+12.1f %6s\n", "window (paper)",
                ceiling, windowConstraints.unusableCellCount(),
                100.0 * (baseline.sigma() - window.sigma()) / baseline.sigma(),
                100.0 * (window.area() - baseline.area()) / baseline.area(),
                window.success() ? "yes" : "NO");

    // Whole-cell removal.
    const tuning::LibraryConstraints pruned =
        pruneWholeCells(flow.statLibrary(), ceiling);
    synth::Synthesizer synth(flow.nominalLibrary(), &pruned);
    sta::ClockSpec clock = flow.config().clock;
    clock.period = period;
    synth::SynthesisResult run = synth.run(flow.subject(), clock);
    if (run.design.gateCount() == 0 || run.area == 0.0) {
      std::printf("%-22s %8.3f %10zu %12s %12s %6s\n", "whole-cell removal",
                  ceiling, pruned.unusableCellCount(), "-", "-",
                  "UNMAPPABLE");
      continue;
    }
    const core::DesignMeasurement removal =
        flow.measure(std::move(run), period);
    std::printf("%-22s %8.3f %10zu %+12.1f %+12.1f %6s\n", "whole-cell removal",
                ceiling, pruned.unusableCellCount(),
                100.0 * (baseline.sigma() - removal.sigma()) /
                    baseline.sigma(),
                100.0 * (removal.area() - baseline.area()) / baseline.area(),
                removal.success() ? "yes" : "NO");
  }
  bench::printRule();
  std::printf("expected: removal throws away whole cells whose low-load "
              "region was fine, so it\neither keeps high-sigma survivors "
              "(weak reduction) or guts the library (area/\ntiming blow-up). "
              "The window restriction dominates at every ceiling — the "
              "paper's\nfiner-grained-tuning claim.\n");
  return 0;
}
