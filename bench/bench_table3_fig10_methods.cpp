// Table 2 + Table 3 + Fig. 10: the full tuning-method evaluation.
// For each of the five tuning methods and each of the four clock
// constraints, the Table 2 parameter sweep is run; Fig. 10 reports, per
// method and clock, the highest sigma reduction achievable with an area
// increase below 10%, and Table 3 the constraint parameter that won.
//
// Paper reference points (shape targets, not absolute):
//  - sigma ceiling: 37% sigma reduction at 7% area (high performance) and
//    32% at 4% (low performance);
//  - the two strength-clustered methods: ~31% at roughly baseline area;
//  - relaxed timing yields a larger absolute design sigma;
//  - overly aggressive bounds make synthesis unfeasible or blow up area.

#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace sct;
  bench::printHeader("Table 2/3 + Fig. 10 — tuning methods x clock periods",
                     "Tables 2-3, Fig. 10");

  core::TuningFlow flow(bench::standardConfig());
  const bench::ClockSet clocks = bench::paperClockSet(flow);
  const double periods[] = {clocks.highPerf, clocks.closeToMax, clocks.medium,
                            clocks.low};
  const char* periodLabels[] = {"high (2.41ns-eq)", "check (2.5ns-eq)",
                                "medium (4ns-eq)", "low (10ns-eq)"};

  std::printf("\nTable 2 — constraint parameters used during threshold "
              "extraction\n");
  std::printf("  load slope bounds : 1, 0.05, 0.03, 0.01   (default 1)\n");
  std::printf("  slew slope bounds : 1, 0.05, 0.03, 0.01   (default 0.06)\n");
  std::printf("  sigma ceiling     : 0.04, 0.03, 0.02, 0.01 (default 100)\n");

  for (std::size_t p = 0; p < 4; ++p) {
    const double period = periods[p];
    const core::DesignMeasurement baseline = flow.synthesizeBaseline(period);
    std::printf("\n=== %s = %.3f ns ===\n", periodLabels[p], period);
    std::printf("baseline: sigma %.4f ns, area %.0f um^2 (met=%d)\n\n",
                baseline.sigma(), baseline.area(),
                baseline.synthesis.timingMet);

    std::printf("%-20s | %s\n", "method",
                "sweep results [param: dSigma%% / dArea%% (ok|FAIL)]");
    bench::printRule();
    for (tuning::TuningMethod method : tuning::kAllTuningMethods) {
      const auto points = flow.sweepMethod(method, period, baseline);
      std::printf("%-20s |", std::string(tuning::toString(method)).c_str());
      for (const auto& point : points) {
        std::printf(" [%.3g: %+.1f/%+.1f %s]", point.parameter,
                    point.sigmaReductionPct, point.areaIncreasePct,
                    point.measurement.success() ? "ok" : "FAIL");
      }
      std::printf("\n");

      const auto* best = core::TuningFlow::bestUnderAreaCap(points, 10.0);
      if (best != nullptr) {
        std::printf("%-20s |   Fig.10/Table 3 pick: param %.3g -> sigma "
                    "-%.1f%% (%.4f ns), area %+.1f%% (%.0f um^2)\n",
                    "", best->parameter, best->sigmaReductionPct,
                    best->measurement.sigma(), best->areaIncreasePct,
                    best->measurement.area());
      } else {
        std::printf("%-20s |   no feasible point under the 10%% area cap\n",
                    "");
      }
    }
  }

  std::printf("\npaper anchors: sigma ceiling 37%%@+7%% (high perf), "
              "32%%@+4%% (low perf); strength methods ~31%%@~0%%\n");
  return 0;
}
