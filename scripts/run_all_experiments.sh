#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the extension
# experiments, writing each harness's output under results/.
set -u
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
mkdir -p "$OUT_DIR"

status=0
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name"
  if ! "$bench" > "$OUT_DIR/$name.txt" 2>&1; then
    echo "    FAILED (see $OUT_DIR/$name.txt)"
    status=1
  fi
done
echo "outputs in $OUT_DIR/"
exit $status
