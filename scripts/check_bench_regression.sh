#!/usr/bin/env bash
# Benchmark regression gate: re-times the two end-to-end anchors
# (single-threaded Monte-Carlo characterization and the warm-cache flow)
# and fails when either regresses more than BUDGET_PCT against the last
# BENCH_perf.json entry recorded on a comparable host. Same noise filter as
# check_obs_overhead.sh: REPS repetitions, minimum wall-clock compared.
# Baselines from a host with a different CPU count are not comparable and
# are skipped (recorded as such in the output), so a 1-CPU runner never
# judges numbers produced on a 16-core box or vice versa.
#
#   scripts/check_bench_regression.sh [baseline.json]
#
# Environment:
#   BUILD_DIR     build tree to use          (default: build-bench)
#   BUDGET_PCT    allowed regression in %    (default: 25)
#   REPS          repetitions per benchmark  (default: 5)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-bench}"
BUDGET_PCT="${BUDGET_PCT:-25}"
REPS="${REPS:-5}"
BASELINE="${1:-BENCH_perf.json}"
RAW="$(mktemp /tmp/bench_regression.XXXXXX.json)"
trap 'rm -f "$RAW"' EXIT

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_perf_core >/dev/null

"$BUILD_DIR/bench/bench_perf_core" \
  --benchmark_filter='BM_CharacterizeMonteCarlo/threads:0$|BM_FlowWarmCache$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=false \
  --benchmark_format=json \
  > "$RAW"

python3 - "$RAW" "$BASELINE" "$BUDGET_PCT" <<'EOF'
import json, sys

raw_path, baseline_path, budget_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
GATED = ["BM_CharacterizeMonteCarlo/threads:0", "BM_FlowWarmCache"]
UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

with open(raw_path) as f:
    doc = json.load(f)
host_cpus = doc.get("context", {}).get("num_cpus")

def current_min_ns(name):
    # Repetitions repeat the plain benchmark name; aggregates are suffixed
    # and tagged run_type=aggregate, so exact-name iteration rows are the
    # per-repetition wall-clock samples.
    times = [
        b["real_time"] * UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)
        for b in doc["benchmarks"]
        if b["name"] == name and b.get("run_type") != "aggregate"
    ]
    return min(times) if times else None

try:
    with open(baseline_path) as f:
        history = json.load(f).get("runs", [])
except (OSError, json.JSONDecodeError):
    history = []

def baseline_ns(name):
    # Last recorded run on a host with the same CPU count that has the
    # benchmark; other hosts' numbers are not comparable.
    for run in reversed(history):
        if run.get("host_cpus") != host_cpus:
            continue
        for bench in run.get("benchmarks", []):
            if bench["name"] == name:
                return bench["ns_per_op"], run.get("git_rev")
    return None, None

failures = []
for name in GATED:
    current = current_min_ns(name)
    if current is None:
        sys.exit(f"no timings for {name} in {raw_path}")
    base, rev = baseline_ns(name)
    if base is None:
        print(f"{name}: no comparable baseline (host_cpus={host_cpus}) — skipped")
        continue
    limit = base * (1.0 + budget_pct / 100.0)
    delta = 100.0 * (current - base) / base
    status = "OK" if current <= limit else "FAIL"
    print(
        f"{name}: min {current / 1e6:.2f} ms vs {base / 1e6:.2f} ms "
        f"@ {rev} ({delta:+.1f}%, budget {budget_pct:.0f}%) {status}"
    )
    if current > limit:
        failures.append(name)

if failures:
    sys.exit(f"FAIL: regression past {budget_pct:.0f}% budget: {', '.join(failures)}")
print("OK: gated benchmarks within the regression budget")
EOF
