#!/usr/bin/env bash
# End-to-end check of the post-silicon scenario matrix (DESIGN.md §15), run
# by the CI scenario-matrix job:
#
#   1. cold and warm `sctune scenario` runs over one cache directory produce
#      byte-identical scenario reports (every cell decodes from the store);
#   2. a sctuned daemon answers the same scenario request byte-identical to
#      the standalone CLI, and its health snapshot reports the in-memory
#      cache counters (server.memcache.*) moving;
#   3. SIGTERM drains and the daemon exits 0;
#   4. the cold/warm wall-clock times are appended to BENCH_perf.json under
#      a "<rev>-scenarios" history entry via scripts/bench_to_json.py.
#
#   scripts/scenario_matrix.sh [output.json]
#
# Environment:
#   BUILD_DIR  build tree with sctune + sctuned  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_perf.json}"
WORK="$(mktemp -d /tmp/sct_scenarios.XXXXXX)"
SOCK="$WORK/sctuned.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake --build "$BUILD_DIR" -j --target sctune_cli sctuned >/dev/null

CLI="$BUILD_DIR/tools/sctune"
# The paper's four-period matrix (--period expands to the section VII set),
# all three scenarios, small profile so the job finishes in CI time.
ARGS=(--profile small --mc 6 --period 2.41 --method sigma-ceiling
      --value 0.02 --trials 16)

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# 1. Cold vs warm byte-identity over one cache directory.
T0=$(now_ms)
"$CLI" scenario "${ARGS[@]}" --cache-dir "$WORK/cli-cache" \
  --report "$WORK/cold.txt" >/dev/null
T1=$(now_ms)
"$CLI" scenario "${ARGS[@]}" --cache-dir "$WORK/cli-cache" \
  --report "$WORK/warm.txt" >/dev/null
T2=$(now_ms)
COLD_MS=$(( T1 - T0 ))
WARM_MS=$(( T2 - T1 ))
cmp "$WORK/cold.txt" "$WORK/warm.txt"
grep -q '^scenario-report v1$' "$WORK/cold.txt"
echo "cold ($COLD_MS ms) and warm ($WARM_MS ms) scenario reports byte-identical"

# 2. Daemon answers the same request byte-identical to the CLI.
"$BUILD_DIR/tools/sctuned" --socket "$SOCK" --cache-dir "$WORK/cache" &
DAEMON_PID=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; exit 1; }

"$CLI" client scenario --socket "$SOCK" "${ARGS[@]}" \
  --report "$WORK/daemon1.txt" >/dev/null
"$CLI" client scenario --socket "$SOCK" "${ARGS[@]}" \
  --report "$WORK/daemon2.txt" >/dev/null
cmp "$WORK/cold.txt" "$WORK/daemon1.txt"
cmp "$WORK/daemon1.txt" "$WORK/daemon2.txt"
echo "daemon scenario responses byte-identical to the CLI report"

# Health must expose the shared in-memory cache counters.
"$CLI" client health --socket "$SOCK" --out "$WORK/health.json" >/dev/null
grep -q '"schema": "sct-metrics-v1"' "$WORK/health.json"
grep -Eq '"server\.memcache\.insertions": [0-9]+' "$WORK/health.json"
grep -Eq '"server\.memcache\.hits": [0-9]+' "$WORK/health.json"
grep -Eq '"server\.memcache\.evictions": [0-9]+' "$WORK/health.json"
echo "memcache counters present:"
grep -E '"server\.memcache\.' "$WORK/health.json" || true

# 3. Graceful shutdown.
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "daemon exited $RC after SIGTERM"; exit 1; }

# 4. Record cold/warm wall clock under "<rev>-scenarios".
RAW="$WORK/scenario_bench.json"
cat > "$RAW" <<EOF
{
  "context": {"date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)", "num_cpus": $(nproc)},
  "benchmarks": [
    {"name": "ScenarioMatrix/cold", "run_type": "iteration",
     "real_time": $COLD_MS, "cpu_time": $COLD_MS,
     "time_unit": "ms", "iterations": 1},
    {"name": "ScenarioMatrix/warm", "run_type": "iteration",
     "real_time": $WARM_MS, "cpu_time": $WARM_MS,
     "time_unit": "ms", "iterations": 1}
  ]
}
EOF
BENCH_REV_SUFFIX="-scenarios" python3 scripts/bench_to_json.py "$RAW" "$OUT"
