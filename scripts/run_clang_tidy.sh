#!/usr/bin/env bash
# Whole-repo clang-tidy with a checked-in suppression baseline.
#
# Usage: scripts/run_clang_tidy.sh [-p BUILD_DIR] [-j JOBS] [--update-baseline]
#
# Runs clang-tidy (checks pinned in .clang-tidy) over every project TU in
# BUILD_DIR/compile_commands.json, JOBS files in parallel. Diagnostics are
# normalized to line-number-independent fingerprints
# (path: severity: message [check]) so the comparison survives unrelated
# edits, then diffed against scripts/clang_tidy_baseline.txt:
#   * findings not in the baseline  -> FAIL (new debt is rejected)
#   * baseline entries not found    -> warning (prune with --update-baseline)
# --update-baseline rewrites the baseline to the current findings.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="$ROOT/scripts/clang_tidy_baseline.txt"
BUILD_DIR="$ROOT/build"
JOBS="$(nproc 2>/dev/null || echo 4)"
UPDATE=0

while [ $# -gt 0 ]; do
  case "$1" in
    -p) BUILD_DIR="$2"; shift 2 ;;
    -j) JOBS="$2"; shift 2 ;;
    --update-baseline) UPDATE=1; shift ;;
    *) echo "usage: $0 [-p BUILD_DIR] [-j JOBS] [--update-baseline]" >&2
       exit 2 ;;
  esac
done

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found in PATH" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under $BUILD_DIR" \
       "(the default configure exports it)" >&2
  exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Project TUs only: src/ and tools/, not tests or third-party.
python3 - "$BUILD_DIR/compile_commands.json" "$ROOT" > "$TMP/files.txt" <<'EOF'
import json, os, sys
db_path, root = sys.argv[1], sys.argv[2]
with open(db_path, encoding="utf-8") as f:
    db = json.load(f)
seen = set()
for entry in db:
    path = entry["file"]
    if not os.path.isabs(path):
        path = os.path.join(entry.get("directory", ""), path)
    rel = os.path.relpath(os.path.abspath(path), root)
    if rel.startswith(("src/", "tools/")) and rel not in seen:
        seen.add(rel)
        print(os.path.join(root, rel))
EOF

TOTAL="$(wc -l < "$TMP/files.txt")"
echo "run_clang_tidy: $TOTAL translation units, $JOBS parallel jobs"

# One output file per TU: parallel clang-tidy processes must not interleave
# half-lines into a shared stream.
mkdir "$TMP/out"
export CT_BUILD_DIR="$BUILD_DIR" CT_OUT="$TMP/out"
xargs -a "$TMP/files.txt" -P "$JOBS" -I{} bash -c '
  f="{}"
  clang-tidy -p "$CT_BUILD_DIR" "$f" \
    > "$CT_OUT/$(echo "$f" | tr / _).log" 2>/dev/null || true
'

# Fingerprint: repo-relative path + severity + message + check, line/column
# stripped. Only lines carrying a [check-name] are diagnostics.
cat "$TMP/out"/*.log 2>/dev/null \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):.*\]$' \
  | sed -E "s|^$ROOT/||; s|:[0-9]+:[0-9]+:|:|" \
  | sort -u > "$TMP/current.txt"

if [ "$UPDATE" -eq 1 ]; then
  {
    echo "# clang-tidy suppression baseline (scripts/run_clang_tidy.sh)."
    echo "# One normalized fingerprint per line: path: severity: message [check]."
    echo "# Regenerate with: scripts/run_clang_tidy.sh --update-baseline"
    cat "$TMP/current.txt"
  } > "$BASELINE"
  echo "run_clang_tidy: baseline updated ($(wc -l < "$TMP/current.txt") findings)"
  exit 0
fi

grep -v '^#' "$BASELINE" 2>/dev/null | sort -u > "$TMP/baseline.txt" || true

NEW="$(comm -13 "$TMP/baseline.txt" "$TMP/current.txt")"
FIXED="$(comm -23 "$TMP/baseline.txt" "$TMP/current.txt")"

if [ -n "$FIXED" ]; then
  echo "run_clang_tidy: stale baseline entries (fixed — prune with --update-baseline):"
  printf '%s\n' "$FIXED" | sed 's/^/  /'
fi
if [ -n "$NEW" ]; then
  echo "run_clang_tidy: NEW findings not in baseline:"
  printf '%s\n' "$NEW" | sed 's/^/  /'
  echo "run_clang_tidy: FAIL ($(printf '%s\n' "$NEW" | wc -l) new)"
  exit 1
fi

echo "run_clang_tidy: clean ($TOTAL TUs, baseline $(wc -l < "$TMP/baseline.txt") entries)"
