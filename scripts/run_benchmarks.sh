#!/usr/bin/env bash
# Builds and runs the perf microbenchmarks and appends a per-revision entry
# to BENCH_perf.json (benchmark name -> ns/op, thread count, git rev) at the
# repo root, so the performance trajectory of the tuned kernels is tracked
# across commits instead of overwritten.
#
#   scripts/run_benchmarks.sh [output.json]
#
# Environment:
#   BUILD_DIR     build tree to use                (default: build)
#   BUILD_TYPE    CMAKE_BUILD_TYPE for the tree    (default: keep configured)
#   BENCH_FILTER  --benchmark_filter regex         (default: all benchmarks)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_perf.json}"
RAW="$(mktemp /tmp/bench_raw.XXXXXX.json)"
trap 'rm -f "$RAW"' EXIT

cmake -B "$BUILD_DIR" -S . ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
cmake --build "$BUILD_DIR" --target bench_perf_core -j >/dev/null

"$BUILD_DIR/bench/bench_perf_core" \
  --benchmark_format=json \
  ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
  > "$RAW"

# The converter also runs the thread-scaling assertion (threaded kernel
# variants must not be slower than their serial fallback). On a single-CPU
# host it records the skip in the run entry and marks per-thread numbers as
# noise instead of failing on scheduler artifacts.
python3 scripts/bench_to_json.py --check-thread-scaling "$RAW" "$OUT"
