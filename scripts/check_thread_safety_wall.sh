#!/usr/bin/env bash
# Thread-safety wall negative compile tests (DESIGN.md §16).
#
# Configures tests/negative_compile/ with clang++: its CMakeLists
# try_compile()s a clean control (must compile) and two seeded
# lock-discipline violations (must be rejected by -Werror=thread-safety).
# A passing configure means the wall stands; any FATAL_ERROR means either
# the analysis stopped engaging or the harness broke.
#
# Clang-only by nature: on hosts without clang++ (e.g. the gcc-only dev
# container) exits 77, which ctest maps to SKIP via SKIP_RETURN_CODE.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLANGXX="${CLANGXX:-$(command -v clang++ || true)}"

if [ -z "$CLANGXX" ]; then
  echo "check_thread_safety_wall: clang++ not found — skipping (exit 77)"
  exit 77
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if cmake -S "$ROOT/tests/negative_compile" -B "$TMP" \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DSCT_REPO_ROOT="$ROOT" >"$TMP/configure.log" 2>&1; then
  grep 'thread-safety wall' "$TMP/configure.log" || true
  echo "check_thread_safety_wall: PASS ($("$CLANGXX" --version | head -1))"
  exit 0
fi

cat "$TMP/configure.log"
echo "check_thread_safety_wall: FAIL — see configure log above"
exit 1
