#!/usr/bin/env bash
# End-to-end smoke of the sctuned daemon (DESIGN.md §14), run by the CI
# daemon-smoke job:
#
#   1. daemon flow responses are byte-identical to the standalone CLI's
#      `flow --report` output — fresh, cached, it must not matter;
#   2. a duplicate-heavy mix moves the cache-hit and single-flight counters
#      in the health snapshot (sct-metrics-v1 JSON over the socket);
#   3. SIGTERM drains and the daemon exits 0.
#
#   scripts/daemon_smoke.sh
#
# Environment:
#   BUILD_DIR  build tree with sctune + sctuned  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
WORK="$(mktemp -d /tmp/sctuned_smoke.XXXXXX)"
SOCK="$WORK/sctuned.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake --build "$BUILD_DIR" -j --target sctune_cli sctuned >/dev/null

"$BUILD_DIR/tools/sctuned" --socket "$SOCK" --cache-dir "$WORK/cache" &
DAEMON_PID=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; exit 1; }

CLI="$BUILD_DIR/tools/sctune"
FLOW_ARGS=(--profile small --mc 6 --period 8.0 --method sigma-ceiling --value 0.02)

# 1. Byte-identity: standalone CLI report vs daemon response body, and the
# daemon's cached second answer vs its first.
"$CLI" flow "${FLOW_ARGS[@]}" --cache-dir "$WORK/cli-cache" \
  --report "$WORK/cli.txt" >/dev/null
"$CLI" client flow --socket "$SOCK" "${FLOW_ARGS[@]}" \
  --report "$WORK/daemon1.txt" >/dev/null
"$CLI" client flow --socket "$SOCK" "${FLOW_ARGS[@]}" \
  --report "$WORK/daemon2.txt" >/dev/null
cmp "$WORK/cli.txt" "$WORK/daemon1.txt"
cmp "$WORK/daemon1.txt" "$WORK/daemon2.txt"
echo "daemon responses byte-identical to the CLI flow report"

# 2. Duplicate-heavy mix: four concurrent identical cold requests — one
# leader computes, the rest coalesce — then assert the counters moved.
CLIENT_PIDS=()
for _ in 1 2 3 4; do
  "$CLI" client flow --socket "$SOCK" --profile small --mc 6 --period 9.5 \
    --method sigma-ceiling --value 0.02 >/dev/null &
  CLIENT_PIDS+=("$!")
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done

"$CLI" client health --socket "$SOCK" --out "$WORK/health.json" >/dev/null
grep -q '"schema": "sct-metrics-v1"' "$WORK/health.json"
grep -Eq '"server\.cache\.hits": [1-9]' "$WORK/health.json"
grep -Eq '"server\.singleflight\.leader": [1-9]' "$WORK/health.json"
grep -Eq '"server\.singleflight\.coalesced": [1-9]' "$WORK/health.json"
echo "cache-hit and single-flight counters > 0:"
grep -E '"server\.(cache|singleflight)\.' "$WORK/health.json" || true

# 3. Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "daemon exited $RC after SIGTERM"; exit 1; }
[ ! -S "$SOCK" ] || { echo "socket file survived shutdown"; exit 1; }
echo "daemon drained and exited 0 on SIGTERM"
