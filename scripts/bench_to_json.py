#!/usr/bin/env python3
"""Converts google-benchmark JSON output into the repo's BENCH_perf.json
record: benchmark name -> ns/op, plus the thread count encoded in the
benchmark name (".../threads:N") and the git revision, so the performance
trajectory of the tuned kernels is tracked across commits.

Usage: bench_to_json.py <google-benchmark-json> <output-json>
"""

import json
import os
import subprocess
import sys


_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def git_rev():
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        rev = (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=cwd,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
        dirty = subprocess.check_output(
            ["git", "status", "--porcelain"], cwd=cwd, stderr=subprocess.DEVNULL
        ).strip()
        return rev + "-dirty" if dirty else rev
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def threads_of(name):
    """Thread count from a ".../threads:N" benchmark name; None if absent."""
    for part in name.split("/")[1:]:
        if part.startswith("threads:"):
            try:
                return int(part.split(":", 1)[1])
            except ValueError:
                return None
    return None


def convert(raw):
    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        records.append(
            {
                "name": bench["name"],
                "ns_per_op": bench["real_time"] * scale,
                "cpu_ns_per_op": bench["cpu_time"] * scale,
                "threads": threads_of(bench["name"]),
                "iterations": bench.get("iterations"),
            }
        )
    context = raw.get("context", {})
    return {
        "git_rev": git_rev(),
        "date": context.get("date"),
        "host_cpus": context.get("num_cpus"),
        "benchmarks": records,
    }


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        raw = json.load(f)
    out = convert(raw)
    with open(sys.argv[2], "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {len(out['benchmarks'])} records to {sys.argv[2]}")


if __name__ == "__main__":
    main()
