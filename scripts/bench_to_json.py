#!/usr/bin/env python3
"""Converts google-benchmark JSON output into the repo's BENCH_perf.json
record: benchmark name -> ns/op, plus the thread count encoded in the
benchmark name (".../threads:N") and the git revision.

The output file keeps a per-revision *history* instead of a single snapshot:

    {"runs": [{"git_rev": ..., "date": ..., "benchmarks": [...]}, ...]}

Each invocation appends one run entry (or replaces the entry of the same
git revision, so re-running on a dirty tree doesn't grow the file), which
tracks the performance trajectory of the tuned kernels across commits. A
legacy single-snapshot file (the pre-history flat schema) is migrated into
the first history entry on the next run.

Usage: bench_to_json.py <google-benchmark-json> <output-json>
"""

import json
import os
import subprocess
import sys


_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def git_rev():
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        rev = (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=cwd,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
        dirty = subprocess.check_output(
            ["git", "status", "--porcelain"], cwd=cwd, stderr=subprocess.DEVNULL
        ).strip()
        return rev + "-dirty" if dirty else rev
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def threads_of(name):
    """Thread count from a ".../threads:N" benchmark name; None if absent."""
    for part in name.split("/")[1:]:
        if part.startswith("threads:"):
            try:
                return int(part.split(":", 1)[1])
            except ValueError:
                return None
    return None


def convert(raw):
    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        records.append(
            {
                "name": bench["name"],
                "ns_per_op": bench["real_time"] * scale,
                "cpu_ns_per_op": bench["cpu_time"] * scale,
                "threads": threads_of(bench["name"]),
                "iterations": bench.get("iterations"),
            }
        )
    context = raw.get("context", {})
    return {
        "git_rev": git_rev(),
        "date": context.get("date"),
        "host_cpus": context.get("num_cpus"),
        "benchmarks": records,
    }


def load_history(path):
    """Existing run history at `path`; migrates the legacy flat schema."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            existing = json.load(f)
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
        return existing["runs"]
    if isinstance(existing, dict) and "benchmarks" in existing:
        return [existing]  # legacy single-snapshot file
    return []


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        raw = json.load(f)
    run = convert(raw)
    runs = [r for r in load_history(sys.argv[2]) if r.get("git_rev") != run["git_rev"]]
    runs.append(run)
    with open(sys.argv[2], "w") as f:
        json.dump({"runs": runs}, f, indent=2)
        f.write("\n")
    print(
        f"wrote {len(run['benchmarks'])} records for {run['git_rev']} "
        f"to {sys.argv[2]} ({len(runs)} revision(s) in history)"
    )


if __name__ == "__main__":
    main()
