#!/usr/bin/env python3
"""Converts google-benchmark JSON output into the repo's BENCH_perf.json
record: benchmark name -> ns/op, plus the thread count encoded in the
benchmark name (".../threads:N") and the git revision.

The output file keeps a per-revision *history* instead of a single snapshot:

    {"runs": [{"git_rev": ..., "date": ..., "benchmarks": [...]}, ...]}

Each invocation appends one run entry (or replaces the entry of the same
git revision, so re-running on a dirty tree doesn't grow the file), which
tracks the performance trajectory of the tuned kernels across commits. A
legacy single-snapshot file (the pre-history flat schema) is migrated into
the first history entry on the next run.

Usage: bench_to_json.py <google-benchmark-json> <output-json>
"""

import json
import os
import subprocess
import sys


_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def git_rev():
    """Short revision, plus BENCH_REV_SUFFIX when set.

    The suffix lets a second harness (e.g. the daemon load bench, which
    records per-request latencies rather than kernel ns/op) file its run
    under "<rev>-server" instead of replacing the same-revision entry the
    microbenchmarks wrote.
    """
    cwd = os.path.dirname(os.path.abspath(__file__))
    suffix = os.environ.get("BENCH_REV_SUFFIX", "")
    try:
        rev = (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=cwd,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
        dirty = subprocess.check_output(
            ["git", "status", "--porcelain"], cwd=cwd, stderr=subprocess.DEVNULL
        ).strip()
        return (rev + "-dirty" if dirty else rev) + suffix
    except (OSError, subprocess.CalledProcessError):
        return "unknown" + suffix


def threads_of(name):
    """Thread count from a ".../threads:N" benchmark name; None if absent."""
    for part in name.split("/")[1:]:
        if part.startswith("threads:"):
            try:
                return int(part.split(":", 1)[1])
            except ValueError:
                return None
    return None


def thread_scaling(records, host_cpus):
    """Thread-scaling verdict for the run entry.

    On a single-core host the threaded variants time-slice one CPU, so their
    numbers are scheduler noise, not scaling data: the check is skipped (and
    the skip recorded) and every threads>=2 record is marked as noise. On
    multi-core hosts, each threaded kernel's best threaded time must not be
    slower than its serial (threads:0) time by more than the tolerance.
    """
    if host_cpus is not None and host_cpus <= 1:
        for r in records:
            if r["threads"] is not None and r["threads"] >= 2:
                r["noise"] = True
        return {
            "checked": False,
            "skipped_reason": "host_cpus == 1: threaded timings are noise",
        }

    tolerance = 1.10  # threading must not cost >10% over serial
    serial = {}
    best_threaded = {}
    for r in records:
        base = r["name"].split("/")[0]
        if r["threads"] == 0:
            serial[base] = r["ns_per_op"]
        elif r["threads"] is not None and r["threads"] >= 2:
            if host_cpus is not None and r["threads"] > host_cpus:
                continue  # oversubscribed variants prove nothing
            prev = best_threaded.get(base)
            if prev is None or r["ns_per_op"] < prev:
                best_threaded[base] = r["ns_per_op"]
    violations = []
    for base, serial_ns in sorted(serial.items()):
        threaded_ns = best_threaded.get(base)
        if threaded_ns is None:
            continue
        if threaded_ns > serial_ns * tolerance:
            violations.append(
                {
                    "name": base,
                    "serial_ns_per_op": serial_ns,
                    "best_threaded_ns_per_op": threaded_ns,
                }
            )
    return {"checked": True, "tolerance": tolerance, "violations": violations}


def convert(raw):
    records = []
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        scale = _UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
        records.append(
            {
                "name": bench["name"],
                "ns_per_op": bench["real_time"] * scale,
                "cpu_ns_per_op": bench["cpu_time"] * scale,
                "threads": threads_of(bench["name"]),
                "iterations": bench.get("iterations"),
            }
        )
    context = raw.get("context", {})
    host_cpus = context.get("num_cpus")
    return {
        "git_rev": git_rev(),
        "date": context.get("date"),
        "host_cpus": host_cpus,
        "thread_scaling": thread_scaling(records, host_cpus),
        "benchmarks": records,
    }


def load_history(path):
    """Existing run history at `path`; migrates the legacy flat schema."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            existing = json.load(f)
    except (OSError, json.JSONDecodeError):
        return []
    if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
        return existing["runs"]
    if isinstance(existing, dict) and "benchmarks" in existing:
        return [existing]  # legacy single-snapshot file
    return []


def main():
    args = [a for a in sys.argv[1:] if a != "--check-thread-scaling"]
    enforce = "--check-thread-scaling" in sys.argv[1:]
    if len(args) != 2:
        sys.exit(__doc__)
    with open(args[0]) as f:
        raw = json.load(f)
    run = convert(raw)
    runs = [r for r in load_history(args[1]) if r.get("git_rev") != run["git_rev"]]
    runs.append(run)
    with open(args[1], "w") as f:
        json.dump({"runs": runs}, f, indent=2)
        f.write("\n")
    print(
        f"wrote {len(run['benchmarks'])} records for {run['git_rev']} "
        f"to {args[1]} ({len(runs)} revision(s) in history)"
    )
    scaling = run["thread_scaling"]
    if not scaling["checked"]:
        print(f"thread scaling: skipped ({scaling['skipped_reason']})")
    elif scaling["violations"]:
        for v in scaling["violations"]:
            print(
                f"thread scaling: {v['name']} threaded "
                f"{v['best_threaded_ns_per_op']:.0f} ns/op vs serial "
                f"{v['serial_ns_per_op']:.0f} ns/op"
            )
        if enforce:
            sys.exit("FAIL: threaded kernels slower than the serial fallback")
    else:
        print("thread scaling: OK")


if __name__ == "__main__":
    main()
