#!/usr/bin/env bash
# End-to-end check of the evolutionary window tuner (DESIGN.md §17), run by
# the CI evo-matrix job:
#
#   1. `sctune evolve` on the small-profile MCU reports a Pareto front that
#      dominates all 20 paper-method sweep seeds ("dominates 20/20"), and a
#      warm rerun over the same cache directory is byte-identical;
#   2. the same job on the NoC router workload succeeds (design diversity:
#      the tuner is not MCU-specific);
#   3. a sctuned daemon answers the same evolve request byte-identical to
#      the standalone CLI report, twice (second answer from the response
#      cache), then drains cleanly on SIGTERM;
#   4. the cold/warm wall-clock times are appended to BENCH_perf.json under
#      a "<rev>-evo" history entry via scripts/bench_to_json.py.
#
#   scripts/evo_matrix.sh [output.json]
#
# Environment:
#   BUILD_DIR  build tree with sctune + sctuned  (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_perf.json}"
WORK="$(mktemp -d /tmp/sct_evo.XXXXXX)"
SOCK="$WORK/sctuned.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake --build "$BUILD_DIR" -j --target sctune_cli sctuned >/dev/null

CLI="$BUILD_DIR/tools/sctune"
# Small profile + tiny population keeps one run ~2 s; the dominance
# guarantee is independent of population size (seeds are archived).
ARGS=(--profile small --period 4.0 --population 4 --generations 1
      --lint-mode off)

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# 1. MCU: seeded dominance + cold/warm byte-identity over one cache dir.
T0=$(now_ms)
"$CLI" evolve "${ARGS[@]}" --cache-dir "$WORK/cli-cache" \
  --report "$WORK/cold.txt" > "$WORK/cold.summary"
T1=$(now_ms)
"$CLI" evolve "${ARGS[@]}" --cache-dir "$WORK/cli-cache" \
  --report "$WORK/warm.txt" >/dev/null
T2=$(now_ms)
COLD_MS=$(( T1 - T0 ))
WARM_MS=$(( T2 - T1 ))
cmp "$WORK/cold.txt" "$WORK/warm.txt"
grep -q '^evolve-report v1$' "$WORK/cold.txt"
grep -q 'dominates 20/20' "$WORK/cold.summary"
echo "mcu: front dominates all 20 paper sweep points;" \
     "cold ($COLD_MS ms) and warm ($WARM_MS ms) reports byte-identical"

# 2. NoC workload: the tuner generalizes across design structure.
"$CLI" evolve "${ARGS[@]}" --workload noc --cache-dir "$WORK/cli-cache" \
  --report "$WORK/noc.txt" > "$WORK/noc.summary"
grep -q 'dominates 20/20' "$WORK/noc.summary"
echo "noc: $(cat "$WORK/noc.summary")"

# 3. Daemon answers the same request byte-identical to the CLI.
"$BUILD_DIR/tools/sctuned" --socket "$SOCK" --cache-dir "$WORK/cache" &
DAEMON_PID=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK"; exit 1; }

"$CLI" client evolve --socket "$SOCK" "${ARGS[@]}" \
  --report "$WORK/daemon1.txt" >/dev/null
"$CLI" client evolve --socket "$SOCK" "${ARGS[@]}" \
  --report "$WORK/daemon2.txt" >/dev/null
cmp "$WORK/cold.txt" "$WORK/daemon1.txt"
cmp "$WORK/daemon1.txt" "$WORK/daemon2.txt"
echo "daemon evolve responses byte-identical to the CLI report"

kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || { echo "daemon exited $RC after SIGTERM"; exit 1; }

# 4. Record cold/warm wall clock + the evo/constrained-synthesis
#    microbenches under "<rev>-evo".
cmake --build "$BUILD_DIR" -j --target bench_perf_core >/dev/null
RAW="$WORK/evo_bench.json"
"$BUILD_DIR/bench/bench_perf_core" --benchmark_format=json \
  --benchmark_filter='BM_EvolveGeneration|BM_SynthesisConstrained' > "$RAW"
python3 - "$RAW" "$COLD_MS" "$WARM_MS" <<'PY'
import json, sys
path, cold, warm = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
doc = json.load(open(path))
for name, ms in (("EvoMatrix/cold", cold), ("EvoMatrix/warm", warm)):
    doc["benchmarks"].append({"name": name, "run_type": "iteration",
                              "real_time": ms, "cpu_time": ms,
                              "time_unit": "ms", "iterations": 1})
json.dump(doc, open(path, "w"), indent=1)
PY
BENCH_REV_SUFFIX="-evo" python3 scripts/bench_to_json.py "$RAW" "$OUT"
