#!/usr/bin/env bash
# Builds and runs the sctuned load harness (bench/bench_server.cpp) and
# appends its per-request latency records to BENCH_perf.json under a
# "<rev>-server" history entry, separate from the kernel microbenchmarks of
# the same revision.
#
#   scripts/run_server_bench.sh [output.json]
#
# Environment:
#   BUILD_DIR   build tree to use               (default: build)
#   BUILD_TYPE  CMAKE_BUILD_TYPE for the tree   (default: keep configured)
#   CLIENTS     concurrent daemon clients       (default: harness default, 8)
#   REQUESTS    requests per client             (default: harness default, 25)
#
# The harness itself enforces the acceptance gates: duplicate-heavy daemon
# throughput must beat the sequential CLI-style loop by >=5x, dedup counters
# must move, and overload must produce busy rejections — it exits nonzero
# otherwise, which fails this script.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_perf.json}"
RAW="$(mktemp /tmp/bench_server.XXXXXX.json)"
trap 'rm -f "$RAW"' EXIT

cmake -B "$BUILD_DIR" -S . ${BUILD_TYPE:+-DCMAKE_BUILD_TYPE="$BUILD_TYPE"} >/dev/null
cmake --build "$BUILD_DIR" --target bench_server -j >/dev/null

"$BUILD_DIR/bench/bench_server" \
  ${CLIENTS:+--clients "$CLIENTS"} \
  ${REQUESTS:+--requests "$REQUESTS"} \
  --json "$RAW"

BENCH_REV_SUFFIX="-server" python3 scripts/bench_to_json.py "$RAW" "$OUT"
