#!/usr/bin/env bash
# Observability overhead gate: runs the BM_FlowObsOff / BM_FlowTraced pair
# (the same uncached flow with observability off vs tracing + metrics on)
# and fails when the traced variant is more than BUDGET_PCT slower. Each
# variant runs REPS repetitions and the minimum wall-clock is compared —
# min-of-N is the standard noise filter for CI timing gates — plus a small
# absolute grace so micro-runs on loaded shared runners don't flake.
#
#   scripts/check_obs_overhead.sh
#
# Environment:
#   BUILD_DIR     build tree to use          (default: build-obs)
#   BUDGET_PCT    allowed regression in %    (default: 10)
#   GRACE_MS      absolute grace in ms       (default: 5)
#   REPS          repetitions per variant    (default: 5)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-obs}"
BUDGET_PCT="${BUDGET_PCT:-10}"
GRACE_MS="${GRACE_MS:-5}"
REPS="${REPS:-5}"
RAW="$(mktemp /tmp/obs_overhead.XXXXXX.json)"
trap 'rm -f "$RAW"' EXIT

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_perf_core -j >/dev/null

"$BUILD_DIR/bench/bench_perf_core" \
  --benchmark_filter='BM_FlowObsOff|BM_FlowTraced' \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=false \
  --benchmark_format=json \
  > "$RAW"

python3 - "$RAW" "$BUDGET_PCT" "$GRACE_MS" <<'EOF'
import json, sys

raw, budget_pct, grace_ms = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
with open(raw) as f:
    doc = json.load(f)

def min_ms(prefix):
    times = [b["real_time"] for b in doc["benchmarks"]
             if b["name"].startswith(prefix) and b.get("run_type") != "aggregate"]
    if not times:
        sys.exit(f"no timings for {prefix} in {raw}")
    # benchmark time_unit is ms for these (Unit(kMillisecond)).
    return min(times)

off = min_ms("BM_FlowObsOff")
traced = min_ms("BM_FlowTraced")
limit = off * (1.0 + budget_pct / 100.0) + grace_ms
overhead_pct = 100.0 * (traced - off) / off
print(f"obs-off   min {off:.2f} ms")
print(f"traced    min {traced:.2f} ms  ({overhead_pct:+.1f}%)")
print(f"limit         {limit:.2f} ms  (budget {budget_pct:.0f}% + {grace_ms:.0f} ms grace)")
if traced > limit:
    sys.exit(f"FAIL: instrumented flow regressed past the {budget_pct:.0f}% budget")
print("OK: observability overhead within budget")
EOF
