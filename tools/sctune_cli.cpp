// sctune — command-line driver for the library-tuning flow.
//
// Subcommands (artifacts are the repository's text formats, so stages can
// run in separate invocations, like the tool hand-offs in the paper):
//
//   sctune characterize --out lib.lib [--corner TT|SS|FF] [--mc N --seed S
//                        --stat-out stat.slib]
//   sctune generate     --design mcu|dsp|accumulator --out design.v
//   sctune tune         --stat stat.slib --method <name> --value <v>
//                        --out constraints.txt [--script constraints.tcl]
//   sctune synth        --lib lib.lib --design <name|netlist.v>
//                        --period <ns> [--constraints c.txt] [--out out.v]
//   sctune report       --lib lib.lib --stat stat.slib
//                        --netlist out.v --period <ns>
//
// Methods: strength-load, strength-slew, cell-load, cell-slew,
//          sigma-ceiling.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "charlib/characterizer.hpp"
#include "core/flow.hpp"
#include "parallel/thread_pool.hpp"
#include "sta/report.hpp"
#include "netlist/dsp.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_io.hpp"
#include "tuning/constraints_io.hpp"
#include "variation/path_stats.hpp"
#include "variation/ssta.hpp"

namespace {

using namespace sct;

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected flag, got ") + argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - 2) % 2 != 0) {
      throw std::runtime_error("flags must come in '--name value' pairs");
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::optional(it->second) : std::nullopt;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::runtime_error("missing required flag --" + key);
    return *v;
  }
  [[nodiscard]] double requireDouble(const std::string& key) const {
    return std::stod(require(key));
  }
  [[nodiscard]] std::uint64_t getUint(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::stoull(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << contents;
  std::printf("wrote %s (%.1f KB)\n", path.c_str(),
              static_cast<double>(contents.size()) / 1024.0);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

charlib::ProcessCorner cornerByName(const std::string& name) {
  if (name == "TT") return charlib::ProcessCorner::typical();
  if (name == "SS") return charlib::ProcessCorner::slow();
  if (name == "FF") return charlib::ProcessCorner::fast();
  throw std::runtime_error("unknown corner '" + name + "' (TT/SS/FF)");
}

tuning::TuningMethod methodByName(const std::string& name) {
  if (name == "strength-load") return tuning::TuningMethod::kCellStrengthLoadSlope;
  if (name == "strength-slew") return tuning::TuningMethod::kCellStrengthSlewSlope;
  if (name == "cell-load") return tuning::TuningMethod::kCellLoadSlope;
  if (name == "cell-slew") return tuning::TuningMethod::kCellSlewSlope;
  if (name == "sigma-ceiling") return tuning::TuningMethod::kSigmaCeiling;
  throw std::runtime_error("unknown method '" + name + "'");
}

netlist::Design designByName(const std::string& name,
                             const liberty::Library* library) {
  if (name == "mcu") return netlist::generateMcu();
  if (name == "dsp") return netlist::generateDsp();
  if (name == "accumulator") return netlist::generateAccumulator(16);
  // Otherwise: a structural Verilog file.
  std::ifstream in(name);
  if (!in) throw std::runtime_error("no built-in design or file '" + name + "'");
  return netlist::readVerilog(in, library);
}

int cmdCharacterize(const Args& args) {
  const charlib::Characterizer characterizer;
  const auto corner = cornerByName(args.get("corner").value_or("TT"));
  const liberty::Library library = characterizer.characterizeNominal(corner);
  writeFile(args.require("out"), liberty::writeLibraryToString(library));
  if (const auto statOut = args.get("stat-out")) {
    const std::size_t n = args.getUint("mc", 50);
    const std::uint64_t seed = args.getUint("seed", 2014);
    std::printf("characterizing %zu Monte-Carlo library instances...\n", n);
    const auto instances = characterizer.characterizeMonteCarlo(corner, n, seed);
    const statlib::StatLibrary stat = statlib::buildStatLibrary(instances);
    writeFile(*statOut, statlib::writeStatLibraryToString(stat));
  }
  return 0;
}

int cmdGenerate(const Args& args) {
  const netlist::Design design = designByName(args.require("design"), nullptr);
  std::printf("generated '%s': %zu gates\n", design.name().c_str(),
              design.gateCount());
  writeFile(args.require("out"), netlist::writeVerilogToString(design));
  return 0;
}

int cmdTune(const Args& args) {
  const statlib::StatLibrary stat =
      statlib::readStatLibraryFromString(readFile(args.require("stat")));
  const tuning::TuningConfig config = tuning::TuningConfig::forMethod(
      methodByName(args.require("method")), args.requireDouble("value"));
  const tuning::LibraryConstraints constraints =
      tuning::tuneLibrary(stat, config);
  std::printf("tuned %zu cells (%zu unusable)\n", constraints.size(),
              constraints.unusableCellCount());
  writeFile(args.require("out"), tuning::writeConstraintsToString(constraints));
  if (const auto script = args.get("script")) {
    writeFile(*script,
              tuning::writeSynthesisScriptToString(constraints, stat.name()));
  }
  return 0;
}

int cmdSynth(const Args& args) {
  const liberty::Library library =
      liberty::readLibraryFromString(readFile(args.require("lib")));
  std::optional<tuning::LibraryConstraints> constraints;
  if (const auto path = args.get("constraints")) {
    constraints = tuning::readConstraintsFromString(readFile(*path));
  }
  const netlist::Design subject =
      designByName(args.require("design"), nullptr);
  sta::ClockSpec clock;
  clock.period = args.requireDouble("period");
  const synth::Synthesizer synthesizer(
      library, constraints ? &*constraints : nullptr);
  const synth::SynthesisResult result = synthesizer.run(subject, clock);
  std::printf("synthesis: %s | wns %+.4f ns | area %.0f um^2 | %zu gates | "
              "%zu buffers | %zu resizes\n",
              result.success() ? "MET" : "FAILED", result.worstSlack,
              result.area, result.design.gateCount(), result.buffersInserted,
              result.resizes);
  if (const auto out = args.get("out")) {
    writeFile(*out, netlist::writeVerilogToString(result.design));
  }
  return result.success() ? 0 : 2;
}

int cmdReport(const Args& args) {
  const liberty::Library library =
      liberty::readLibraryFromString(readFile(args.require("lib")));
  const statlib::StatLibrary stat =
      statlib::readStatLibraryFromString(readFile(args.require("stat")));
  std::ifstream netIn(args.require("netlist"));
  if (!netIn) throw std::runtime_error("cannot open netlist");
  const netlist::Design design = netlist::readVerilog(netIn, &library);
  sta::ClockSpec clock;
  clock.period = args.requireDouble("period");
  sta::TimingAnalyzer sta(design, library, clock);
  if (!sta.analyze()) throw std::runtime_error("timing analysis failed");

  const auto paths = sta.endpointWorstPaths();
  const variation::PathStatistics stats(stat);
  const variation::DesignStats designStats = stats.designStats(paths);
  const variation::SstaResult ssta = variation::runSsta(design, sta, stat);

  std::printf("design %s @ %.3f ns\n", design.name().c_str(), clock.period);
  std::printf("  gates %zu, area %.0f um^2\n", design.gateCount(),
              design.totalArea());
  std::printf("  setup: wns %+.4f ns (%s); hold: %+.4f ns (%s)\n",
              sta.worstSlack(), sta.met() ? "met" : "VIOLATED",
              sta.worstHoldSlack(), sta.holdMet() ? "met" : "VIOLATED");
  std::printf("  per-path statistics (paper eq. 11): design sigma %.4f ns "
              "over %zu endpoint paths\n",
              designStats.sigma, designStats.paths);
  std::printf("  SSTA: critical delay %.4f +- %.4f ns, expected failing "
              "endpoints %.3g, timing yield %.4f\n",
              ssta.designArrival.mean, ssta.designArrival.sigma,
              ssta.expectedFailures, ssta.timingYield);
  if (const auto reportOut = args.get("out")) {
    std::ofstream file(*reportOut);
    if (!file) throw std::runtime_error("cannot open " + *reportOut);
    sta::writeTimingReport(file, design, sta);
    std::printf("wrote full timing report to %s\n", reportOut->c_str());
  } else {
    std::printf("\n");
    std::ostringstream report;
    sta::writeTimingReport(report, design, sta);
    std::fputs(report.str().c_str(), stdout);
  }
  return 0;
}

int usage() {
  std::printf(
      "sctune — standard cell library tuning for variability tolerant "
      "designs\n\n"
      "usage: sctune <command> [--flag value ...]\n\n"
      "commands:\n"
      "  characterize  --out lib.lib [--corner TT] [--mc 50 --seed 2014\n"
      "                --stat-out stat.slib]\n"
      "  generate      --design mcu|dsp|accumulator --out design.v\n"
      "  tune          --stat stat.slib --method sigma-ceiling --value 0.02\n"
      "                --out constraints.txt [--script constraints.tcl]\n"
      "  synth         --lib lib.lib --design <name|file.v> --period <ns>\n"
      "                [--constraints c.txt] [--out mapped.v]\n"
      "  report        --lib lib.lib --stat stat.slib --netlist mapped.v\n"
      "                --period <ns> [--out report.txt]\n\n"
      "every command accepts --threads <N|serial|auto> (default: the\n"
      "SCT_THREADS environment variable); results do not depend on it\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv);
    // Worker-pool size for the parallelized kernels. The flag takes
    // precedence over SCT_THREADS; results are identical either way.
    if (const auto threads = args.get("threads")) {
      const std::size_t hw = std::thread::hardware_concurrency();
      parallel::setThreadCount(
          parallel::parseThreadSpec(*threads, hw > 1 ? hw : 0));
    }
    if (command == "characterize") return cmdCharacterize(args);
    if (command == "generate") return cmdGenerate(args);
    if (command == "tune") return cmdTune(args);
    if (command == "synth") return cmdSynth(args);
    if (command == "report") return cmdReport(args);
    std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
