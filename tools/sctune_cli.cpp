// sctune — command-line driver for the library-tuning flow.
//
// Subcommands (artifacts are the repository's text formats, so stages can
// run in separate invocations, like the tool hand-offs in the paper):
//
//   sctune characterize --out lib.lib [--corner TT|SS|FF] [--mc N --seed S
//                        --stat-out stat.slib]
//   sctune generate     --design mcu|dsp|accumulator --out design.v
//   sctune tune         --stat stat.slib --method <name> --value <v>
//                        --out constraints.txt [--script constraints.tcl]
//   sctune synth        --lib lib.lib --design <name|netlist.v>
//                        --period <ns> [--constraints c.txt] [--out out.v]
//   sctune report       --lib lib.lib --stat stat.slib
//                        --netlist out.v --period <ns>
//   sctune lint         <artifact> [--type lib|stat|netlist|constraints]
//                        [--ref nominal.lib] [--json | --sarif] [--out file]
//   sctune flow         --period <ns> [--method <name> --value <v>]
//                        [--profile small|full] [--cache-dir DIR | --no-cache]
//                        [--cache-stats] [--lint-mode error|warn|off]
//                        [--report out.txt]
//   sctune cache stats  --cache-dir DIR
//   sctune cache gc     --cache-dir DIR [--max-bytes N] [--max-age seconds]
//
// Methods: strength-load, strength-slew, cell-load, cell-slew,
//          sigma-ceiling.
//
// `flow` runs the whole pipeline in-process on top of the content-addressed
// artifact store (SCT_CACHE_DIR is the --cache-dir default): a warm rerun
// loads every stage artifact instead of recomputing, and its --report file
// is byte-identical to the cold run's.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "artifact/store.hpp"
#include "charlib/characterizer.hpp"
#include "core/env.hpp"
#include "core/flow.hpp"
#include "core/flow_job.hpp"
#include "evo/tuner.hpp"
#include "server/client.hpp"
#include "lint/engine.hpp"
#include "lint/report_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "postsi/scenario.hpp"
#include "sta/report.hpp"
#include "netlist/dsp.hpp"
#include "netlist/noc.hpp"
#include "netlist/random.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_io.hpp"
#include "tuning/constraints_io.hpp"
#include "variation/path_stats.hpp"
#include "variation/ssta.hpp"

namespace {

using namespace sct;

/// Minimal --flag value parser. Flags listed in `booleanFlags` take no
/// value operand; `start` skips the command (and subcommand) words.
class Args {
 public:
  Args(int argc, char** argv, int start = 2,
       std::vector<std::string> booleanFlags = {}) {
    for (int i = start; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected flag, got ") + argv[i]);
      }
      const std::string name = argv[i] + 2;
      if (std::find(booleanFlags.begin(), booleanFlags.end(), name) !=
          booleanFlags.end()) {
        values_[name] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        throw std::runtime_error("flag --" + name + " needs a value");
      }
      values_[name] = argv[++i];
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it != values_.end() ? std::optional(it->second) : std::nullopt;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::runtime_error("missing required flag --" + key);
    return *v;
  }
  [[nodiscard]] double requireDouble(const std::string& key) const {
    return std::stod(require(key));
  }
  [[nodiscard]] std::uint64_t getUint(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::stoull(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

// ---- observability wiring (DESIGN.md §12) --------------------------------

/// What --trace-out/--metrics-out/--obs-off (plus the SCT_TRACE/SCT_METRICS
/// variables) resolved to. Tracing/metrics stay globally off unless asked
/// for; --obs-off wins over everything, pinning one side of the
/// bit-identity comparison the flow tests make.
struct ObsOptions {
  bool tracing = false;
  bool metrics = false;
  std::string traceOut;
  std::string metricsOut;
};

ObsOptions setupObservability(const Args& args) {
  ObsOptions opts;
  if (!args.has("obs-off")) {
    opts.traceOut = args.get("trace-out").value_or("");
    opts.metricsOut = args.get("metrics-out").value_or("");
    opts.tracing =
        !opts.traceOut.empty() ||
        env::parseFlag("SCT_TRACE", env::get("SCT_TRACE").value_or(""), false);
    opts.metrics = !opts.metricsOut.empty() ||
                   env::parseFlag("SCT_METRICS",
                                  env::get("SCT_METRICS").value_or(""), false);
  }
  obs::setTracingEnabled(opts.tracing);
  obs::setMetricsEnabled(opts.metrics);
  return opts;
}

/// Writes the requested exporter files once the command finished.
void finishObservability(const ObsOptions& opts) {
  if (opts.tracing && !opts.traceOut.empty()) {
    std::ofstream out(opts.traceOut);
    if (!out) throw std::runtime_error("cannot open " + opts.traceOut);
    const obs::TraceSnapshot snapshot = obs::traceSnapshot();
    obs::writeChromeTrace(out, snapshot);
    std::printf("wrote %s (%zu spans%s)\n", opts.traceOut.c_str(),
                snapshot.events.size(),
                snapshot.dropped > 0 ? ", some dropped" : "");
  }
  if (opts.metrics && !opts.metricsOut.empty()) {
    std::ofstream out(opts.metricsOut);
    if (!out) throw std::runtime_error("cannot open " + opts.metricsOut);
    obs::writeMetricsJson(out, obs::MetricsRegistry::global().snapshot());
    std::printf("wrote %s\n", opts.metricsOut.c_str());
  }
}

/// Per-stage timing / cache-hit table, read back out of the metrics
/// snapshot. Goes to stdout only — never into the --report file, whose
/// bytes must not depend on whether observability is on.
void printStageTable(const obs::MetricsSnapshot& snapshot) {
  std::printf("%-10s %10s %7s %5s %7s %7s\n", "stage", "time_ms", "probes",
              "hits", "misses", "stores");
  for (const char* stage : {"nominal", "stat", "subject", "tune", "synth",
                            "lint"}) {
    const std::string prefix = std::string("flow.stage.") + stage + ".";
    if (!snapshot.hasCounter(prefix + "ns") &&
        !snapshot.hasCounter(prefix + "probes")) {
      continue;
    }
    std::printf(
        "%-10s %10.2f %7llu %5llu %7llu %7llu\n", stage,
        static_cast<double>(snapshot.counterValue(prefix + "ns")) / 1e6,
        static_cast<unsigned long long>(
            snapshot.counterValue(prefix + "probes")),
        static_cast<unsigned long long>(snapshot.counterValue(prefix + "hits")),
        static_cast<unsigned long long>(
            snapshot.counterValue(prefix + "misses")),
        static_cast<unsigned long long>(
            snapshot.counterValue(prefix + "stores")));
  }
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << contents;
  std::printf("wrote %s (%.1f KB)\n", path.c_str(),
              static_cast<double>(contents.size()) / 1024.0);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

charlib::ProcessCorner cornerByName(const std::string& name) {
  if (name == "TT") return charlib::ProcessCorner::typical();
  if (name == "SS") return charlib::ProcessCorner::slow();
  if (name == "FF") return charlib::ProcessCorner::fast();
  throw std::runtime_error("unknown corner '" + name + "' (TT/SS/FF)");
}

// One method-name dictionary for CLI and daemon (core/flow_job.hpp).
tuning::TuningMethod methodByName(const std::string& name) {
  return core::tuningMethodByName(name);
}

netlist::Design designByName(const std::string& name,
                             const liberty::Library* library) {
  if (name == "mcu") return netlist::generateMcu();
  if (name == "dsp") return netlist::generateDsp();
  if (name == "noc") return netlist::buildNocRouter();
  if (name == "big") {
    // The flow's 10x-paper-size subject (core::FlowConfig::big defaults).
    return netlist::generateRandomDag({.primaryInputs = 64,
                                       .gates = 200,
                                       .flipFlops = 16,
                                       .primaryOutputs = 64,
                                       .scale = 1000,
                                       .seed = 1});
  }
  if (name == "accumulator") return netlist::generateAccumulator(16);
  // Otherwise: a structural Verilog file.
  std::ifstream in(name);
  if (!in) throw std::runtime_error("no built-in design or file '" + name + "'");
  return netlist::readVerilog(in, library);
}

int cmdCharacterize(const Args& args) {
  const charlib::Characterizer characterizer;
  const auto corner = cornerByName(args.get("corner").value_or("TT"));
  const liberty::Library library = characterizer.characterizeNominal(corner);
  writeFile(args.require("out"), liberty::writeLibraryToString(library));
  if (const auto statOut = args.get("stat-out")) {
    const std::size_t n = args.getUint("mc", 50);
    const std::uint64_t seed = args.getUint("seed", 2014);
    std::printf("characterizing %zu Monte-Carlo library instances...\n", n);
    const auto instances = characterizer.characterizeMonteCarlo(corner, n, seed);
    const statlib::StatLibrary stat = statlib::buildStatLibrary(instances);
    writeFile(*statOut, statlib::writeStatLibraryToString(stat));
  }
  return 0;
}

int cmdGenerate(const Args& args) {
  const netlist::Design design = designByName(args.require("design"), nullptr);
  std::printf("generated '%s': %zu gates\n", design.name().c_str(),
              design.gateCount());
  writeFile(args.require("out"), netlist::writeVerilogToString(design));
  return 0;
}

int cmdTune(const Args& args) {
  const statlib::StatLibrary stat =
      statlib::readStatLibraryFromString(readFile(args.require("stat")));
  const tuning::TuningConfig config = tuning::TuningConfig::forMethod(
      methodByName(args.require("method")), args.requireDouble("value"));
  const tuning::LibraryConstraints constraints =
      tuning::tuneLibrary(stat, config);
  std::printf("tuned %zu cells (%zu unusable)\n", constraints.size(),
              constraints.unusableCellCount());
  writeFile(args.require("out"), tuning::writeConstraintsToString(constraints));
  if (const auto script = args.get("script")) {
    writeFile(*script,
              tuning::writeSynthesisScriptToString(constraints, stat.name()));
  }
  return 0;
}

int cmdSynth(const Args& args) {
  const liberty::Library library =
      liberty::readLibraryFromString(readFile(args.require("lib")));
  std::optional<tuning::LibraryConstraints> constraints;
  if (const auto path = args.get("constraints")) {
    constraints = tuning::readConstraintsFromString(readFile(*path));
  }
  const netlist::Design subject =
      designByName(args.require("design"), nullptr);
  sta::ClockSpec clock;
  clock.period = args.requireDouble("period");
  const synth::Synthesizer synthesizer(
      library, constraints ? &*constraints : nullptr);
  const synth::SynthesisResult result = synthesizer.run(subject, clock);
  std::printf("synthesis: %s | wns %+.4f ns | area %.0f um^2 | %zu gates | "
              "%zu buffers | %zu resizes\n",
              result.success() ? "MET" : "FAILED", result.worstSlack,
              result.area, result.design.gateCount(), result.buffersInserted,
              result.resizes);
  if (const auto out = args.get("out")) {
    writeFile(*out, netlist::writeVerilogToString(result.design));
  }
  return result.success() ? 0 : 2;
}

int cmdReport(const Args& args) {
  const liberty::Library library =
      liberty::readLibraryFromString(readFile(args.require("lib")));
  const statlib::StatLibrary stat =
      statlib::readStatLibraryFromString(readFile(args.require("stat")));
  std::ifstream netIn(args.require("netlist"));
  if (!netIn) throw std::runtime_error("cannot open netlist");
  const netlist::Design design = netlist::readVerilog(netIn, &library);
  sta::ClockSpec clock;
  clock.period = args.requireDouble("period");
  sta::TimingAnalyzer sta(design, library, clock);
  if (!sta.analyze()) throw std::runtime_error("timing analysis failed");

  const auto paths = sta.endpointWorstPaths();
  const variation::PathStatistics stats(stat);
  const variation::DesignStats designStats = stats.designStats(paths);
  const variation::SstaResult ssta = variation::runSsta(design, sta, stat);

  std::printf("design %s @ %.3f ns\n", design.name().c_str(), clock.period);
  std::printf("  gates %zu, area %.0f um^2\n", design.gateCount(),
              design.totalArea());
  std::printf("  setup: wns %+.4f ns (%s); hold: %+.4f ns (%s)\n",
              sta.worstSlack(), sta.met() ? "met" : "VIOLATED",
              sta.worstHoldSlack(), sta.holdMet() ? "met" : "VIOLATED");
  std::printf("  per-path statistics (paper eq. 11): design sigma %.4f ns "
              "over %zu endpoint paths\n",
              designStats.sigma, designStats.paths);
  std::printf("  SSTA: critical delay %.4f +- %.4f ns, expected failing "
              "endpoints %.3g, timing yield %.4f\n",
              ssta.designArrival.mean, ssta.designArrival.sigma,
              ssta.expectedFailures, ssta.timingYield);
  if (const auto reportOut = args.get("out")) {
    std::ofstream file(*reportOut);
    if (!file) throw std::runtime_error("cannot open " + *reportOut);
    sta::writeTimingReport(file, design, sta);
    std::printf("wrote full timing report to %s\n", reportOut->c_str());
  } else {
    std::printf("\n");
    std::ostringstream report;
    sta::writeTimingReport(report, design, sta);
    std::fputs(report.str().c_str(), stdout);
  }
  return 0;
}

// ---- lint ----------------------------------------------------------------

/// `sctune lint <artifact>`: parse one text artifact, run the matching rule
/// pack(s), and render the report as text (default), JSON or SARIF. Exit
/// code 0 = no error-severity findings, 3 = errors found; parse failures
/// report through the generic error path (exit 1).
int cmdLint(const std::string& path, const Args& args) {
  std::string type;
  if (const auto explicitType = args.get("type")) {
    type = *explicitType;
  } else {
    const std::string ext = std::filesystem::path(path).extension().string();
    if (ext == ".lib") type = "lib";
    else if (ext == ".slib") type = "stat";
    else if (ext == ".v") type = "netlist";
    else if (ext == ".txt" || ext == ".constraints") type = "constraints";
    else {
      throw std::runtime_error(
          "cannot infer artifact type of '" + path +
          "'; pass --type lib|stat|netlist|constraints");
    }
  }

  // Optional nominal library for the cross-checking rules (stat grids,
  // netlist cell binding, constraint targets/ranges).
  std::optional<liberty::Library> reference;
  if (const auto refPath = args.get("ref")) {
    reference.emplace(liberty::readLibraryFromString(readFile(*refPath)));
  }

  std::optional<liberty::Library> library;
  std::optional<statlib::StatLibrary> stat;
  std::optional<netlist::Design> design;
  std::optional<tuning::LibraryConstraints> constraints;
  lint::LintSubject subject;
  subject.referenceLibrary = reference ? &*reference : nullptr;
  if (type == "lib") {
    library.emplace(liberty::readLibraryFromString(readFile(path)));
    subject.library = &*library;
  } else if (type == "stat") {
    stat.emplace(statlib::readStatLibraryFromString(readFile(path)));
    subject.statLibrary = &*stat;
  } else if (type == "netlist") {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    design.emplace(netlist::readVerilog(in, subject.referenceLibrary));
    subject.design = &*design;
  } else if (type == "constraints") {
    constraints.emplace(tuning::readConstraintsFromString(readFile(path)));
    subject.constraints = &*constraints;
  } else {
    throw std::runtime_error("unknown --type '" + type +
                             "' (lib|stat|netlist|constraints)");
  }

  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const bool timed = obs::metricsEnabled();
  const std::uint64_t lintStart = timed ? obs::monotonicNanos() : 0;
  lint::LintReport report;
  {
    SCT_TRACE_SPAN("lint.run");
    report = engine.run(subject);
  }
  if (timed) {
    registry.counter("lint.runs").inc();
    registry.counter("lint.ns").add(obs::monotonicNanos() - lintStart);
    registry.counter("lint.diagnostics").add(report.diagnostics().size());
  }

  std::string rendered;
  if (args.has("sarif")) {
    rendered = lint::writeSarifToString(report, &engine);
  } else if (args.has("json")) {
    rendered = lint::writeJsonToString(report);
  } else {
    rendered = lint::writeTextToString(report);
  }
  if (const auto out = args.get("out")) {
    writeFile(*out, rendered);
    std::printf("lint: %s\n", report.summary().c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return report.hasErrors() ? 3 : 0;
}

// ---- resumable flow + cache maintenance ----------------------------------

std::filesystem::path cacheRoot(const Args& args) {
  if (const auto dir = args.get("cache-dir")) return *dir;
  if (const auto env = env::get("SCT_CACHE_DIR")) return *env;
  throw std::runtime_error("need --cache-dir (or the SCT_CACHE_DIR variable)");
}

/// Flow job description from the command line; shared verbatim between the
/// local `flow` command and `client flow` (the daemon round trip), so both
/// paths compute and render exactly the same request.
core::FlowJob flowJobFromArgs(const Args& args) {
  core::FlowJob job;
  job.profile = args.get("profile").value_or("full");
  job.workload = args.get("workload").value_or(job.workload);
  job.period = args.requireDouble("period");
  if (const auto method = args.get("method")) {
    job.method = *method;
    job.value = args.requireDouble("value");
  }
  job.mcCount = args.getUint("mc", 0);  // 0 = profile default
  job.mcSeed = args.getUint("seed", job.mcSeed);
  job.lintMode = args.get("lint-mode").value_or("error");
  return job;
}

core::FlowConfig makeFlowConfigFor(const core::FlowJob& job,
                                   const Args& args) {
  core::FlowConfig config = core::makeFlowConfig(job);
  if (!args.has("no-cache")) {
    if (const auto dir = args.get("cache-dir")) {
      config.cacheDir = *dir;
    } else if (const auto env = env::get("SCT_CACHE_DIR")) {
      config.cacheDir = *env;
    }
  }
  // The in-memory tier in front of the store (--mem-cache-mb bounds it,
  // --no-mem-cache disables it; it never changes results).
  if (args.has("no-mem-cache")) {
    config.memCacheBytes = 0;
  } else {
    config.memCacheBytes = args.getUint("mem-cache-mb", 64) << 20;
  }
  return config;
}

core::FlowConfig makeFlowConfig(const Args& args) {
  return makeFlowConfigFor(flowJobFromArgs(args), args);
}

/// Scenario job description from the command line; shared verbatim between
/// the local `scenario` command and `client scenario`, so both paths encode
/// identical jobs (and therefore identical cache keys and report bytes).
postsi::ScenarioJob scenarioJobFromArgs(const Args& args) {
  postsi::ScenarioJob job;
  job.flow.profile = args.get("profile").value_or("full");
  job.flow.workload = args.get("workload").value_or(job.flow.workload);
  job.flow.period = 0.0;  // per-cell periods live in job.periods
  if (const auto method = args.get("method")) {
    job.flow.method = *method;
    job.flow.value = args.requireDouble("value");
  }
  job.flow.mcCount = args.getUint("mc", 0);
  job.flow.mcSeed = args.getUint("seed", job.flow.mcSeed);
  job.flow.lintMode = args.get("lint-mode").value_or("error");
  if (const auto list = args.get("periods")) {
    std::stringstream stream(*list);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (!token.empty()) job.periods.push_back(std::stod(token));
    }
  } else {
    // Paper protocol: the four clock periods as ratios of a base period.
    job.periods = postsi::paperPeriods(args.requireDouble("period"));
  }
  job.scenarios = args.get("scenarios").value_or(job.scenarios);
  job.element.rangeMin = std::stod(args.get("tune-range-min").value_or("0"));
  job.element.rangeMax = std::stod(args.get("tune-range-max").value_or("0.3"));
  job.element.step = std::stod(args.get("tune-step").value_or("0.05"));
  job.element.areaPerElement = std::stod(args.get("tune-area").value_or("2"));
  job.mcTrials = args.getUint("trials", 0);  // 0 = profile default
  job.mcSeed = job.flow.mcSeed;
  return job;
}

int cmdScenario(const Args& args) {
  const postsi::ScenarioJob job = scenarioJobFromArgs(args);
  core::TuningFlow flow(makeFlowConfigFor(job.flow, args));
  const postsi::ScenarioRunResult result = postsi::runScenarioJob(flow, job);
  std::printf("%s\n", result.summary.c_str());
  // The body choice mirrors the daemon's (json flag selects the rendering),
  // so a --report file and a `client scenario --report` file are
  // byte-identical for the same job.
  const std::string& body = args.has("json") ? result.json : result.report;
  if (const auto out = args.get("report")) {
    writeFile(*out, body);
  } else {
    std::fputs(body.c_str(), stdout);
  }
  // Unmet cells at tight paper periods are the measurement the matrix
  // exists to take (yield < 1), not a command failure — unlike `flow`,
  // which targets a single period and exits 2 when it is missed.
  return 0;
}

/// Evolve job description from the command line; shared verbatim between the
/// local `evolve` command and `client evolve`, so both paths encode identical
/// jobs (and therefore identical cache keys and report bytes).
evo::EvolveJob evolveJobFromArgs(const Args& args) {
  evo::EvolveJob job;
  job.flow.profile = args.get("profile").value_or("full");
  job.flow.workload = args.get("workload").value_or(job.flow.workload);
  job.flow.period = args.requireDouble("period");
  job.flow.mcCount = args.getUint("mc", 0);
  job.flow.mcSeed = args.getUint("seed", job.flow.mcSeed);
  job.flow.lintMode = args.get("lint-mode").value_or("error");
  job.params.population = args.getUint("population", job.params.population);
  job.params.generations =
      args.getUint("generations", job.params.generations);
  job.params.objectives =
      args.get("objectives").value_or(job.params.objectives);
  if (const auto v = args.get("gene-min")) job.params.geneMin = std::stod(*v);
  if (const auto v = args.get("gene-max")) job.params.geneMax = std::stod(*v);
  job.params.seed = args.getUint("evo-seed", job.params.seed);
  return job;
}

int cmdEvolve(const Args& args) {
  const evo::EvolveJob job = evolveJobFromArgs(args);
  core::TuningFlow flow(makeFlowConfigFor(job.flow, args));
  const evo::EvolveRunResult result = evo::runEvolveJob(flow, job);
  std::printf("%s\n", result.summary.c_str());
  // The body choice mirrors the daemon's (json flag selects the rendering),
  // so a --report file and a `client evolve --report` file are
  // byte-identical for the same job.
  const std::string& body = args.has("json") ? result.json : result.report;
  if (const auto out = args.get("report")) {
    writeFile(*out, body);
  } else {
    std::fputs(body.c_str(), stdout);
  }
  return result.success ? 0 : 2;
}

int cmdFlow(const Args& args) {
  core::TuningFlow flow(makeFlowConfig(args));
  const core::FlowJob job = flowJobFromArgs(args);
  // The summary line and report bytes come from the same renderer the
  // daemon uses (core::runFlowJob), so `flow --report` output and a
  // `client flow` response body are byte-identical by construction.
  const core::FlowJobResult result = core::runFlowJob(flow, job);
  std::printf("%s\n", result.summary.c_str());
  if (const auto out = args.get("report")) writeFile(*out, result.report);

  if (obs::metricsEnabled()) {
    printStageTable(obs::MetricsRegistry::global().snapshot());
  }

  if (args.has("cache-stats")) {
    if (const artifact::ArtifactStore* store = flow.cache()) {
      const artifact::StoreStats& s = store->stats();
      const auto [files, bytes] = store->diskUsage();
      std::printf(
          "cache %s: %zu hits, %zu misses, %zu corrupt, %zu stores; "
          "%.1f KB read, %.1f KB written; %zu entries / %.1f KB on disk\n",
          store->root().c_str(), s.hits.load(), s.misses.load(),
          s.corrupt.load(), s.stores.load(),
          static_cast<double>(s.bytesRead.load()) / 1024.0,
          static_cast<double>(s.bytesWritten.load()) / 1024.0, files,
          static_cast<double>(bytes) / 1024.0);
    } else {
      std::printf("cache: disabled\n");
    }
  }
  return result.success ? 0 : 2;
}

int cmdCacheStats(const Args& args) {
  const artifact::ArtifactStore store(cacheRoot(args));
  const auto [files, bytes] = store.diskUsage();
  if (args.has("json")) {
    // Summaries route through the same deterministic exporter the flow's
    // --metrics-out uses (gauges record even while metrics are off).
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("cache.entries").set(static_cast<double>(files));
    registry.gauge("cache.bytes").set(static_cast<double>(bytes));
    obs::writeMetricsJson(std::cout, registry.snapshot());
    return 0;
  }
  std::printf("cache %s: %zu entries, %.1f KB\n", store.root().c_str(), files,
              static_cast<double>(bytes) / 1024.0);
  return 0;
}

int cmdCacheGc(const Args& args) {
  artifact::ArtifactStore store(cacheRoot(args));
  artifact::GcPolicy policy;
  policy.maxBytes = args.getUint("max-bytes", 0);
  policy.maxAgeSeconds = args.getUint("max-age", 0);
  const artifact::GcResult r = store.gc(policy);
  if (args.has("json")) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.gauge("cache.gc.files_removed")
        .set(static_cast<double>(r.filesRemoved));
    registry.gauge("cache.gc.bytes_removed")
        .set(static_cast<double>(r.bytesRemoved));
    registry.gauge("cache.gc.files_kept").set(static_cast<double>(r.filesKept));
    registry.gauge("cache.gc.bytes_kept").set(static_cast<double>(r.bytesKept));
    obs::writeMetricsJson(std::cout, registry.snapshot());
    return 0;
  }
  std::printf(
      "cache gc %s: removed %zu entries (%.1f KB), kept %zu (%.1f KB)\n",
      store.root().c_str(), r.filesRemoved,
      static_cast<double>(r.bytesRemoved) / 1024.0, r.filesKept,
      static_cast<double>(r.bytesKept) / 1024.0);
  return 0;
}

// ---- daemon client -------------------------------------------------------

/// Connection target for `sctune client`: --socket (Unix-domain path, also
/// the SCT_SOCKET variable) or --tcp-port (127.0.0.1 loopback).
server::Client connectClient(const Args& args) {
  if (const auto port = args.get("tcp-port")) {
    return server::Client::connectTcp(
        static_cast<std::uint16_t>(std::stoul(*port)));
  }
  if (const auto path = args.get("socket")) {
    return server::Client::connectUnix(*path);
  }
  if (const auto env = env::get("SCT_SOCKET")) {
    return server::Client::connectUnix(*env);
  }
  throw std::runtime_error(
      "need --socket PATH or --tcp-port N (or the SCT_SOCKET variable)");
}

/// Renders one daemon response like the equivalent local command would:
/// summary to stdout, body to --report/--out or stdout. Exit codes: 0 ok,
/// 1 error, 4 busy, 5 deadline expired, 6 server shutting down.
int finishClientCall(const server::Response& response, const Args& args) {
  if (!response.summary.empty()) {
    std::printf("%s\n", response.summary.c_str());
  }
  if (!response.body.empty()) {
    std::optional<std::string> out = args.get("report");
    if (!out) out = args.get("out");
    if (out) {
      writeFile(*out, response.body);
    } else {
      std::fputs(response.body.c_str(), stdout);
    }
  }
  switch (response.status) {
    case server::Status::kOk: return 0;
    case server::Status::kBusy: return 4;
    case server::Status::kTimeout: return 5;
    case server::Status::kShuttingDown: return 6;
    case server::Status::kError:
    default: return 1;
  }
}

int cmdClient(const std::string& op, const Args& args) {
  server::Client client = connectClient(args);
  if (op == "flow") {
    server::FlowRequest request;
    request.job = flowJobFromArgs(args);
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.flow(request), args);
  }
  if (op == "scenario") {
    const postsi::ScenarioJob job = scenarioJobFromArgs(args);
    server::ScenarioRequest request;
    request.job = job.flow;
    request.periods = job.periods;
    request.scenarios = job.scenarios;
    request.rangeMin = job.element.rangeMin;
    request.rangeMax = job.element.rangeMax;
    request.step = job.element.step;
    request.areaPerElement = job.element.areaPerElement;
    request.mcTrials = job.mcTrials;
    request.mcSeed = job.mcSeed;
    request.json = args.has("json");
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.scenario(request), args);
  }
  if (op == "evolve") {
    const evo::EvolveJob job = evolveJobFromArgs(args);
    server::EvolveRequest request;
    request.job = job.flow;
    request.params = job.params;
    request.json = args.has("json");
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.evolve(request), args);
  }
  if (op == "lint") {
    server::LintRequest request;
    request.artifactType = args.require("type");
    request.content = readFile(args.require("path"));
    request.json = args.has("json");
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.lint(request), args);
  }
  if (op == "sta") {
    server::StaRequest request;
    request.libraryText = readFile(args.require("lib"));
    request.netlistText = readFile(args.require("netlist"));
    request.period = args.requireDouble("period");
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.sta(request), args);
  }
  if (op == "ping") {
    server::PingRequest request;
    request.echo = args.get("echo").value_or("");
    request.sleepMillis = args.getUint("sleep-ms", 0);
    request.deadlineMillis = args.getUint("deadline-ms", 0);
    return finishClientCall(client.ping(request), args);
  }
  if (op == "health") return finishClientCall(client.health(), args);
  if (op == "shutdown") return finishClientCall(client.shutdown(), args);
  throw std::runtime_error(
      "unknown client op '" + op +
      "' (flow|scenario|evolve|lint|sta|ping|health|shutdown)");
}

int usage() {
  std::printf(
      "sctune — standard cell library tuning for variability tolerant "
      "designs\n\n"
      "usage: sctune <command> [--flag value ...]\n\n"
      "commands:\n"
      "  characterize  --out lib.lib [--corner TT] [--mc 50 --seed 2014\n"
      "                --stat-out stat.slib]\n"
      "  generate      --design mcu|dsp|noc|big|accumulator --out design.v\n"
      "  tune          --stat stat.slib --method sigma-ceiling --value 0.02\n"
      "                --out constraints.txt [--script constraints.tcl]\n"
      "  synth         --lib lib.lib --design <name|file.v> --period <ns>\n"
      "                [--constraints c.txt] [--out mapped.v]\n"
      "  report        --lib lib.lib --stat stat.slib --netlist mapped.v\n"
      "                --period <ns> [--out report.txt]\n"
      "  lint          <artifact> [--type lib|stat|netlist|constraints]\n"
      "                [--ref nominal.lib] [--json | --sarif] [--out file]\n"
      "                (type inferred from .lib/.slib/.v/.txt; exit 3 when\n"
      "                 error-severity findings exist)\n"
      "  flow          --period <ns> [--method <m> --value <v>]\n"
      "                [--workload mcu|dsp|noc|big]\n"
      "                [--profile small|full] [--mc N --seed S]\n"
      "                [--cache-dir DIR | --no-cache] [--cache-stats]\n"
      "                [--no-mem-cache | --mem-cache-mb N]\n"
      "                [--lint-mode error|warn|off] [--report report.txt]\n"
      "  scenario      --period <ns> | --periods a,b,c — post-silicon\n"
      "                scenario matrix (tuning/clock/buffers) at each period;\n"
      "                [--scenarios LIST] [--method <m> --value <v>]\n"
      "                [--profile small|full] [--trials N] [--tune-range-min\n"
      "                X --tune-range-max Y --tune-step S --tune-area A]\n"
      "                [--json] [--report report.txt] + flow cache flags\n"
      "  evolve        --period <ns> — multi-objective evolutionary window\n"
      "                tuner (NSGA-II over per-cluster sigma thresholds,\n"
      "                seeded with the five paper methods' sweep points);\n"
      "                [--workload mcu|dsp|noc|big] [--population N]\n"
      "                [--generations G] [--objectives sigma,area,power]\n"
      "                [--gene-min X --gene-max Y] [--evo-seed S]\n"
      "                [--profile small|full] [--json] [--report report.txt]\n"
      "                + flow cache flags\n"
      "  client <op>   --socket PATH | --tcp-port N — run <op> on a sctuned\n"
      "                daemon: flow (same flags as flow), scenario (same\n"
      "                flags as scenario), evolve (same flags as evolve),\n"
      "                lint (--path F\n"
      "                --type T [--json]), sta (--lib F --netlist F\n"
      "                --period <ns>), ping ([--sleep-ms N --echo TEXT]),\n"
      "                health, shutdown; all ops accept --deadline-ms N\n"
      "  cache stats   --cache-dir DIR [--json]\n"
      "  cache gc      --cache-dir DIR [--max-bytes N] [--max-age seconds]\n"
      "                [--json]\n\n"
      "flow and cache default --cache-dir to SCT_CACHE_DIR; warm flow reruns\n"
      "load every stage artifact and are bit-identical to cold runs.\n"
      "every command accepts --threads <N|serial|auto> (default: the\n"
      "SCT_THREADS environment variable); results do not depend on it.\n"
      "flow, synth and lint accept --trace-out trace.json (Chrome/Perfetto\n"
      "span trace), --metrics-out metrics.json and --obs-off; SCT_TRACE=1 /\n"
      "SCT_METRICS=1 enable collection without an output file. Observability\n"
      "never changes any numeric artifact.\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  int start = 2;
  std::string lintPath;
  if (command == "lint") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "lint needs an artifact file operand\n\n");
      return usage();
    }
    lintPath = argv[2];
    start = 3;
  }
  if (command == "cache") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "cache needs a subcommand (stats|gc)\n\n");
      return usage();
    }
    command = std::string("cache ") + argv[2];
    start = 3;
  }
  std::string clientOp;
  if (command == "client") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr,
                   "client needs an op (flow|lint|sta|ping|health|"
                   "shutdown)\n\n");
      return usage();
    }
    clientOp = argv[2];
    start = 3;
  }
  try {
    std::vector<std::string> booleans;
    if (command == "flow") {
      booleans = {"no-cache", "no-mem-cache", "cache-stats", "obs-off"};
    }
    if (command == "scenario" || command == "evolve") {
      booleans = {"no-cache", "no-mem-cache", "json", "obs-off"};
    }
    if (command == "synth") booleans = {"obs-off"};
    if (command == "lint") booleans = {"json", "sarif", "obs-off"};
    if (command == "client") booleans = {"json"};
    if (command == "cache stats" || command == "cache gc") booleans = {"json"};
    const Args args(argc, argv, start, std::move(booleans));
    // Worker-pool size for the parallelized kernels. The flag takes
    // precedence over SCT_THREADS; results are identical either way.
    if (const auto threads = args.get("threads")) {
      const std::size_t hw = std::thread::hardware_concurrency();
      parallel::setThreadCount(
          parallel::parseThreadSpec(*threads, hw > 1 ? hw : 0));
    }
    const ObsOptions obsOptions = setupObservability(args);
    int code = -1;
    if (command == "characterize") code = cmdCharacterize(args);
    else if (command == "generate") code = cmdGenerate(args);
    else if (command == "tune") code = cmdTune(args);
    else if (command == "synth") code = cmdSynth(args);
    else if (command == "report") code = cmdReport(args);
    else if (command == "lint") code = cmdLint(lintPath, args);
    else if (command == "flow") code = cmdFlow(args);
    else if (command == "scenario") code = cmdScenario(args);
    else if (command == "evolve") code = cmdEvolve(args);
    else if (command == "cache stats") code = cmdCacheStats(args);
    else if (command == "cache gc") code = cmdCacheGc(args);
    else if (command == "client") code = cmdClient(clientOp, args);
    else {
      std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
      return usage();
    }
    finishObservability(obsOptions);
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
