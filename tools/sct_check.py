#!/usr/bin/env python3
"""sct_check — the repo's own determinism invariants, enforced at compile time.

The byte-identity guarantees CI relies on (warm flow == cold flow, daemon ==
CLI, scenario matrix cmp) hold only if every artifact and report is a pure
function of its inputs. No off-the-shelf tool knows the project's rules, so
this pass enforces them over the whole build (DESIGN.md §16):

  det.unordered-in-serializer
      No std::unordered_map / std::unordered_set use inside serialization /
      report / codec translation units. Hash-order iteration would make
      output bytes depend on pointer values and libstdc++ versions; ordered
      output must come from sorted containers or an explicit sort.
  det.wallclock
      No std::rand / srand / std::random_device / time() / gettimeofday /
      clock_gettime / chrono *_clock::now() outside src/obs/ and tools/.
      Wall-clock reads anywhere else can leak into artifact bytes. (The obs
      subsystem is exempt by design: traces and metrics are specified to
      never change results.)
  det.raw-rng
      No raw numeric::Rng construction outside src/numeric/. Monte-Carlo
      streams must be derived through the counter-based child() / fork()
      discipline from an explicit seed root; ad-hoc generators break the
      any-thread-count bit-identity contract. Documented seed roots are
      allowlisted with a justification.
  det.raw-gformat
      Every %g-family printf conversion must be the canonical "%.17g"
      (text::canonicalPrecision). Any other precision silently truncates
      and breaks round-trip parsing of serialized doubles.

Driving: `-p BUILD_DIR` reads BUILD_DIR/compile_commands.json (exported by
the default CMake configure) and analyzes every translation unit under src/
and tools/ plus every project header under src/. `--files ...` analyzes an
explicit list instead (used by the fixture tests).

Front end: when the libclang Python bindings are importable the token
stream comes from clang.cindex (exact lexing, real preprocessing record);
otherwise a built-in C++ lexer produces the same stream shape, so the
checker runs — with identical rule results on this codebase — on hosts
without libclang. Both paths feed the same rule engine.

Findings mirror the src/lint diagnostic format:
  error: [det.wallclock] src/foo.cpp:42: <message>
and --json emits the lint JSON shape. Exit codes mirror `sctune lint`:
0 clean (suppressions allowed), 3 findings, 2 usage error.

Allowlist: a checked-in file of `rule  path-suffix  reason...` lines; a
matching finding is reported as `note: ... suppressed by allowlist (reason)`
— never silent — and an allowlist entry that suppresses nothing is itself
an error (stale suppressions must be pruned).
"""

import argparse
import json
import os
import re
import sys
from collections import namedtuple

# --------------------------------------------------------------------------
# Configuration: which files count as serialization/report/codec units, and
# which subtrees are exempt from which rules. Paths are repo-relative with
# forward slashes.

SERIALIZER_BASENAME_RE = re.compile(
    r"(_io\.(cpp|hpp)$|codecs|binary_format|report|flow_job|scenario"
    r"|metrics|trace|text_format)"
)

#: det.wallclock does not apply here: obs reads clocks by design (and is
#: specified to never change results); tools/ hosts the CLIs whose
#: wall-clock use (bench timing, daemon deadlines) stays outside artifacts.
WALLCLOCK_EXEMPT_PREFIXES = ("src/obs/", "tools/")

#: det.raw-rng does not apply inside the generator's own subsystem.
RAW_RNG_EXEMPT_PREFIXES = ("src/numeric/",)

#: Only these subtrees are analyzed at all.
ANALYZED_PREFIXES = ("src/", "tools/")

CANONICAL_G_FORMAT = "%.17g"

WALLCLOCK_CALLS = {"rand", "srand", "time", "gettimeofday", "clock_gettime"}
PRINTF_FAMILY = {"snprintf", "sprintf", "printf", "fprintf", "vsnprintf"}
UNORDERED_CONTAINERS = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}

Token = namedtuple("Token", ["kind", "text", "line"])  # kind: id|num|str|punct
Finding = namedtuple("Finding", ["rule", "path", "line", "message"])

# --------------------------------------------------------------------------
# Front ends: both produce a list[Token] with comments stripped and string
# literals preserved (the gformat rule needs them).

_LEXER_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/)
  | (?P<rawstr>R"(?P<delim>[^()\\ ]{0,16})\((?:.|\n)*?\)(?P=delim)")
  | (?P<str>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<num>\.?[0-9](?:[0-9a-fA-F'.xXbBuUlLpP]|[eE][+-]?)*)
  | (?P<punct>::|->\*?|\+\+|--|<<=?|>>=?|<=|>=|==|!=|&&|\|\||\.\.\.
      |[-+*/%^&|~!<>=?:;,.(){}\[\]\#\\@])
    """,
    re.VERBOSE,
)


def lex_fallback(text):
    """Built-in C++ lexer: comments dropped, everything else tokenized."""
    tokens = []
    line = 1
    pos = 0
    end = len(text)
    while pos < end:
        m = _LEXER_RE.match(text, pos)
        if m is None:  # unrecognized byte (stray backtick etc.): skip it
            if text[pos] == "\n":
                line += 1
            pos += 1
            continue
        kind = m.lastgroup
        chunk = m.group(0)
        if kind == "delim":
            kind = "rawstr"
        if kind == "ws" or kind == "comment":
            pass
        elif kind in ("str", "rawstr"):
            tokens.append(Token("str", chunk, line))
        elif kind == "id":
            tokens.append(Token("id", chunk, line))
        elif kind == "num":
            tokens.append(Token("num", chunk, line))
        else:
            tokens.append(Token("punct", chunk, line))
        line += chunk.count("\n")
        pos = m.end()
    return tokens


def make_libclang_lexer():
    """Returns a lex(text, path) using clang.cindex, or None if unavailable."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:  # library present but unloadable
        return None

    kind_map = {
        cindex.TokenKind.IDENTIFIER: "id",
        cindex.TokenKind.KEYWORD: "id",
        cindex.TokenKind.LITERAL: None,  # split into str/num below
        cindex.TokenKind.PUNCTUATION: "punct",
    }

    def lex(text, path):
        tu = index.parse(
            path,
            args=["-std=c++20", "-fsyntax-only"],
            unsaved_files=[(path, text)],
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
        )
        tokens = []
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            kind = kind_map.get(tok.kind)
            if tok.kind == cindex.TokenKind.COMMENT:
                continue
            if kind is None:
                spelling = tok.spelling
                kind = "str" if spelling[:1] in "\"'RuUL" and (
                    '"' in spelling or "'" in spelling) else "num"
            tokens.append(Token(kind, tok.spelling, tok.location.line))
        return tokens

    return lex


# --------------------------------------------------------------------------
# Rule engine: each rule walks the token stream of one file.


def is_serializer(rel_path):
    return bool(SERIALIZER_BASENAME_RE.search(os.path.basename(rel_path)))


def check_unordered(rel_path, tokens, findings):
    if not is_serializer(rel_path):
        return
    seen_lines = set()
    for tok in tokens:
        if tok.kind == "id" and tok.text in UNORDERED_CONTAINERS:
            if tok.line in seen_lines:
                continue
            seen_lines.add(tok.line)
            findings.append(Finding(
                "det.unordered-in-serializer", rel_path, tok.line,
                "std::" + tok.text + " in a serialization/report/codec unit: "
                "hash order is nondeterministic across runs and libstdc++ "
                "versions; use a sorted container or sort before emitting"))


def check_wallclock(rel_path, tokens, findings):
    if rel_path.startswith(WALLCLOCK_EXEMPT_PREFIXES):
        return
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        prev = tokens[i - 1] if i > 0 else None
        if tok.text == "random_device":
            findings.append(Finding(
                "det.wallclock", rel_path, tok.line,
                "std::random_device is nondeterministic entropy; derive "
                "streams from an explicit seed via numeric::Rng"))
            continue
        if nxt is None or not (nxt.kind == "punct" and nxt.text == "("):
            continue
        if tok.text == "now":
            # match ...::now( — any chrono/steady/file clock
            if prev is not None and prev.kind == "punct" and prev.text == "::":
                findings.append(Finding(
                    "det.wallclock", rel_path, tok.line,
                    "clock read (::now()) outside src/obs and tools: "
                    "wall-clock values must never reach artifact or report "
                    "bytes"))
            continue
        if tok.text in WALLCLOCK_CALLS:
            # `x.time(`, `x->time(` are member calls, not ::time / time()
            if prev is not None and prev.kind == "punct" and prev.text in (
                    ".", "->"):
                continue
            findings.append(Finding(
                "det.wallclock", rel_path, tok.line,
                tok.text + "() is a nondeterministic source outside src/obs "
                "and tools; use explicit seeds / deterministic inputs"))


def check_raw_rng(rel_path, tokens, findings):
    if rel_path.startswith(RAW_RNG_EXEMPT_PREFIXES):
        return
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "Rng":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "id" and prev.text in (
                "struct", "class", "typename"):
            continue  # type definition / dependent-name use, not a ctor
        nxt = tokens[i + 1] if i + 1 < n else None
        if nxt is None:
            continue
        constructed = False
        if nxt.kind == "punct" and nxt.text in ("(", "{"):
            constructed = True  # temporary: Rng(seed)
        elif nxt.kind == "id":
            after = tokens[i + 2] if i + 2 < n else None
            if after is not None and after.kind == "punct" and after.text in (
                    "(", "{"):
                constructed = True  # declaration: Rng name(seed)
        if constructed:
            findings.append(Finding(
                "det.raw-rng", rel_path, tok.line,
                "raw numeric::Rng construction outside src/numeric: derive "
                "streams with child()/fork() from a documented seed root "
                "(allowlisted roots carry a justification)"))


_G_CONVERSION_RE = re.compile(r"%[-+ #0-9.*]*[a-zA-Z]")


def check_gformat(rel_path, tokens, findings):
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in PRINTF_FAMILY:
            continue
        # collect the string literals of the call's format argument: scan to
        # the closing paren at depth 0, remembering every string literal —
        # the format is the first one (printf) or the first after the size
        # argument; checking every literal in the call is a safe
        # over-approximation since non-format strings contain no '%g'.
        depth = 0
        j = i + 1
        literals = []
        while j < n:
            t = tokens[j]
            if t.kind == "punct" and t.text == "(":
                depth += 1
            elif t.kind == "punct" and t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif t.kind == "str" and depth >= 1:
                literals.append(t)
            j += 1
        for lit in literals:
            for conv in _G_CONVERSION_RE.findall(lit.text):
                if conv[-1] in "gG" and conv != CANONICAL_G_FORMAT:
                    findings.append(Finding(
                        "det.raw-gformat", rel_path, lit.line,
                        "raw " + conv + " conversion bypasses "
                        "text::canonicalPrecision: doubles must serialize "
                        "as %.17g to round-trip bit-exactly"))


RULES = (check_unordered, check_wallclock, check_raw_rng, check_gformat)
RULE_IDS = (
    "det.unordered-in-serializer",
    "det.wallclock",
    "det.raw-rng",
    "det.raw-gformat",
)

# --------------------------------------------------------------------------
# Allowlist.

AllowEntry = namedtuple("AllowEntry", ["rule", "path_suffix", "reason", "line"])


def load_allowlist(path):
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise SystemExit(
                    "sct_check: %s:%d: allowlist entry needs "
                    "'rule path reason...' (a justification is mandatory)"
                    % (path, lineno))
            rule, suffix, reason = parts
            if rule not in RULE_IDS:
                raise SystemExit(
                    "sct_check: %s:%d: unknown rule id '%s'"
                    % (path, lineno, rule))
            entries.append(AllowEntry(rule, suffix, reason, lineno))
    return entries


# --------------------------------------------------------------------------
# File collection.


def rel_to_root(path, root):
    rel = os.path.relpath(os.path.abspath(path), root)
    return rel.replace(os.sep, "/")


def files_from_compile_db(build_dir, root):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        raise SystemExit(
            "sct_check: no compile_commands.json under %s (configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON — the default configure "
            "exports it)" % build_dir)
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    files = set()
    for entry in db:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", build_dir), path)
        rel = rel_to_root(path, root)
        if rel.startswith(ANALYZED_PREFIXES):
            files.add(os.path.abspath(path))
    # Headers are not TUs in the database; every project header is part of
    # some analyzed TU's preprocessed output, so sweep them all.
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in filenames:
            if name.endswith(".hpp") or name.endswith(".h"):
                files.add(os.path.join(dirpath, name))
    return sorted(files)


# --------------------------------------------------------------------------
# Reporting (mirrors src/lint's text and JSON renderers).


def render_text(out, findings, suppressed, files_checked):
    for f in findings:
        out.write("error: [%s] %s:%d: %s\n" % (f.rule, f.path, f.line,
                                               f.message))
    for f, entry in suppressed:
        out.write("note: [%s] %s:%d: suppressed by allowlist (%s)\n"
                  % (f.rule, f.path, f.line, entry.reason))
    out.write("sct-check: %d error%s, %d suppressed, %d files\n"
              % (len(findings), "" if len(findings) == 1 else "s",
                 len(suppressed), files_checked))


def render_json(out, findings, suppressed, files_checked):
    doc = {
        "version": 1,
        "summary": {
            "errors": len(findings),
            "suppressed": len(suppressed),
            "files": files_checked,
        },
        "diagnostics": [
            {"rule": f.rule, "severity": "error", "path": f.path,
             "line": f.line, "message": f.message}
            for f in findings
        ] + [
            {"rule": f.rule, "severity": "note", "path": f.path,
             "line": f.line,
             "message": "suppressed by allowlist (%s)" % entry.reason}
            for f, entry in suppressed
        ],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")


# --------------------------------------------------------------------------
# Driver.


def analyze_files(paths, root, lexer):
    findings = []
    checked = 0
    for path in paths:
        rel = rel_to_root(path, root)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            raise SystemExit("sct_check: cannot read %s: %s" % (path, e))
        tokens = lexer(text, path) if lexer.__code__.co_argcount == 2 \
            else lexer(text)
        checked += 1
        for rule in RULES:
            rule(rel, tokens, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, checked


def split_suppressed(findings, allowlist):
    kept = []
    suppressed = []
    used = set()
    for f in findings:
        entry = next((e for e in allowlist
                      if e.rule == f.rule and f.path.endswith(e.path_suffix)),
                     None)
        if entry is not None:
            suppressed.append((f, entry))
            used.add((entry.rule, entry.path_suffix))
        else:
            kept.append(f)
    stale = [e for e in allowlist
             if (e.rule, e.path_suffix) not in used]
    return kept, suppressed, stale


def run_check(paths, root, allowlist_path, json_out, allow_stale, out):
    lexer_pair = make_libclang_lexer()
    lexer = lexer_pair if lexer_pair is not None else lex_fallback
    findings, checked = analyze_files(paths, root, lexer)
    allowlist = load_allowlist(allowlist_path) if allowlist_path else []
    findings, suppressed, stale = split_suppressed(findings, allowlist)
    if not allow_stale:
        for e in stale:
            findings.append(Finding(
                "det.allowlist-stale", allowlist_path,
                e.line,
                "allowlist entry '%s %s' suppresses nothing — prune it "
                "(reason was: %s)" % (e.rule, e.path_suffix, e.reason)))
    if json_out:
        render_json(out, findings, suppressed, checked)
    else:
        render_text(out, findings, suppressed, checked)
    return 3 if findings else 0


# --------------------------------------------------------------------------
# Self-test over the checked-in fixtures: one seeded violation per rule, a
# clean TU, and an allowlisted TU that must be reported as suppressed.


def self_test(root):
    import io  # noqa: PLC0415

    fixtures = os.path.join(root, "tests", "sct_check_fixtures")
    if not os.path.isdir(fixtures):
        print("sct_check --self-test: fixtures directory missing: %s"
              % fixtures)
        return 1
    expect = {
        "fixture_unordered_report_io.cpp": "det.unordered-in-serializer",
        "fixture_wallclock.cpp": "det.wallclock",
        "fixture_raw_rng.cpp": "det.raw-rng",
        "fixture_gformat.cpp": "det.raw-gformat",
    }
    lexer_pair = make_libclang_lexer()
    lexer = lexer_pair if lexer_pair is not None else lex_fallback
    failures = []

    # 1. Each seeded violation is detected, with exactly its rule.
    for name, rule in sorted(expect.items()):
        findings, _ = analyze_files([os.path.join(fixtures, name)], root,
                                    lexer)
        rules = {f.rule for f in findings}
        if rule not in rules:
            failures.append("%s: expected %s, got %s"
                            % (name, rule, sorted(rules) or "no findings"))

    # 2. The clean TU produces no findings.
    findings, _ = analyze_files(
        [os.path.join(fixtures, "fixture_clean.cpp")], root, lexer)
    if findings:
        failures.append("fixture_clean.cpp: unexpected findings: %s"
                        % [(f.rule, f.line) for f in findings])

    # 3. The allowlisted violation is suppressed — and reported, not silent.
    allow = os.path.join(fixtures, "allowlist.txt")
    buf = io.StringIO()
    status = run_check([os.path.join(fixtures, "fixture_allowlisted.cpp")],
                       root, allow, False, False, buf)
    text = buf.getvalue()
    if status != 0:
        failures.append("allowlisted fixture: expected exit 0, got %d\n%s"
                        % (status, text))
    if "suppressed by allowlist" not in text:
        failures.append("allowlisted fixture: suppression not reported:\n%s"
                        % text)

    # 4. A stale allowlist entry is itself an error.
    buf = io.StringIO()
    status = run_check([os.path.join(fixtures, "fixture_clean.cpp")],
                       root, allow, False, False, buf)
    if status == 0 or "det.allowlist-stale" not in buf.getvalue():
        failures.append("stale allowlist entry not flagged")

    # 5. Both front ends agree (when libclang is importable at all).
    if lexer_pair is not None:
        for name in sorted(expect) + ["fixture_clean.cpp"]:
            path = os.path.join(fixtures, name)
            a, _ = analyze_files([path], root, lexer_pair)
            b, _ = analyze_files([path], root, lex_fallback)
            if [(f.rule, f.line) for f in a] != [(f.rule, f.line) for f in b]:
                failures.append("%s: libclang and fallback disagree" % name)

    engine = "libclang" if lexer_pair is not None else "fallback lexer"
    if failures:
        print("sct_check --self-test FAILED (%s engine):" % engine)
        for f in failures:
            print("  " + f)
        return 1
    print("sct_check --self-test: all rules fire, clean TU clean, "
          "suppressions reported (%s engine)" % engine)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="sct_check.py",
        description="project determinism-invariant checker (DESIGN.md §16)")
    parser.add_argument("-p", "--build-dir",
                        help="build directory with compile_commands.json")
    parser.add_argument("--files", nargs="+",
                        help="explicit file list instead of the compile db")
    parser.add_argument("--allowlist",
                        help="allowlist file (rule path reason per line)")
    parser.add_argument("--root",
                        help="repo root (default: parent of this script)")
    parser.add_argument("--json", action="store_true",
                        help="JSON diagnostics (lint report shape)")
    parser.add_argument("--allow-stale-suppressions", action="store_true",
                        help="do not fail on allowlist entries that match "
                             "nothing")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation fixture suite")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return self_test(root)

    if bool(args.build_dir) == bool(args.files):
        parser.error("exactly one of -p/--build-dir or --files is required")
    if args.files:
        paths = [os.path.abspath(f) for f in args.files]
    else:
        paths = files_from_compile_db(args.build_dir, root)
    if not paths:
        print("sct_check: no files to analyze", file=sys.stderr)
        return 2
    return run_check(paths, root, args.allowlist, args.json,
                     args.allow_stale_suppressions, sys.stdout)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
