// sctuned — tuning-as-a-service daemon (DESIGN.md §14).
//
//   sctuned --socket /tmp/sctuned.sock [--cache-dir DIR]
//           [--tcp-port N] [--session-threads N] [--max-queue N]
//           [--mem-cache-mb N] [--threads <N|serial|auto>]
//           [--trace-out trace.json] [--metrics-out metrics.json]
//           [--obs-off]
//
// Long-lived flow/lint/STA service over a Unix-domain socket (and an
// optional TCP loopback port) speaking the SCTP framed protocol. All
// sessions share one on-disk artifact store, one in-memory cache and one
// single-flight table, so concurrent identical requests compute once and
// repeated requests answer from memory.
//
// Shutdown: the first SIGINT/SIGTERM (or a client `shutdown` request)
// drains — stop accepting, finish and answer every in-flight request, flush
// the observability exports, exit 0. A second signal hard-exits with 130.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "server/server.hpp"

namespace {

using namespace sct;

server::Server* g_server = nullptr;
volatile std::sig_atomic_t g_signals = 0;

/// Async-signal-safe: first signal requests the graceful drain (atomic flag
/// + one pipe write inside requestStop), second gives up on the drain.
extern "C" void onSignal(int) {
  g_signals = g_signals + 1;
  if (g_signals >= 2) _exit(130);
  if (g_server != nullptr) g_server->requestStop();
}

/// Same minimal --flag parser idiom as sctune's; kept local because the
/// daemon has exactly one command.
std::map<std::string, std::string> parseArgs(int argc, char** argv) {
  const std::vector<std::string> booleans = {"obs-off", "tcp"};
  std::map<std::string, std::string> values;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::runtime_error(std::string("expected flag, got ") + argv[i]);
    }
    const std::string name = argv[i] + 2;
    if (std::find(booleans.begin(), booleans.end(), name) != booleans.end()) {
      values[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error("flag --" + name + " needs a value");
    }
    values[name] = argv[++i];
  }
  return values;
}

std::optional<std::string> get(const std::map<std::string, std::string>& args,
                               const std::string& key) {
  const auto it = args.find(key);
  return it != args.end() ? std::optional(it->second) : std::nullopt;
}

int usage() {
  std::printf(
      "sctuned — tuning-as-a-service daemon for the sctune flow\n\n"
      "usage: sctuned --socket PATH [--tcp-port N] [--cache-dir DIR]\n"
      "               [--session-threads N] [--max-queue N]\n"
      "               [--mem-cache-mb N] [--threads <N|serial|auto>]\n"
      "               [--trace-out t.json] [--metrics-out m.json]\n"
      "               [--obs-off]\n\n"
      "Clients: `sctune client <op> --socket PATH` (flow, lint, sta, ping,\n"
      "health, shutdown). SIGINT/SIGTERM drains in-flight requests and\n"
      "exits 0; a second signal hard-exits 130. SCT_SOCKET and\n"
      "SCT_CACHE_DIR provide the flag defaults.\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto args = parseArgs(argc, argv);
    if (args.contains("help")) return usage();

    server::ServerConfig config;
    if (const auto socket = get(args, "socket")) {
      config.socketPath = *socket;
    } else if (const auto env = env::get("SCT_SOCKET")) {
      config.socketPath = *env;
    }
    if (const auto port = get(args, "tcp-port")) {
      config.tcpEnable = true;
      config.tcpPort = static_cast<std::uint16_t>(std::stoul(*port));
    } else if (args.contains("tcp")) {
      config.tcpEnable = true;  // ephemeral port, printed below
    }
    if (config.socketPath.empty() && !config.tcpEnable) {
      std::fprintf(stderr, "need --socket PATH (or --tcp-port N)\n\n");
      return usage();
    }
    if (const auto threads = get(args, "session-threads")) {
      config.sessionThreads = std::stoul(*threads);
    }
    if (const auto queue = get(args, "max-queue")) {
      config.maxQueuedSessions = std::stoul(*queue);
    }
    if (const auto dir = get(args, "cache-dir")) {
      config.service.cacheDir = *dir;
    } else if (const auto env = env::get("SCT_CACHE_DIR")) {
      config.service.cacheDir = *env;
    }
    if (const auto mb = get(args, "mem-cache-mb")) {
      config.service.memCacheBytes = std::stoull(*mb) << 20;
    }
    if (const auto threads = get(args, "threads")) {
      const std::size_t hw = std::thread::hardware_concurrency();
      parallel::setThreadCount(
          parallel::parseThreadSpec(*threads, hw > 1 ? hw : 0));
    }

    // Metrics stay on by default: the health endpoint and the CI smoke
    // read the counters, and the overhead is a few relaxed atomics per
    // request (bounded by the obs-overhead CI gate for the flow itself).
    const std::string traceOut = get(args, "trace-out").value_or("");
    const std::string metricsOut = get(args, "metrics-out").value_or("");
    const bool obsOff = args.contains("obs-off");
    obs::setTracingEnabled(!obsOff && !traceOut.empty());
    obs::setMetricsEnabled(!obsOff);

    server::Server serverInstance(config);
    serverInstance.start();
    g_server = &serverInstance;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);  // dead peers surface as write errors

    if (!serverInstance.tcpPort() && !config.socketPath.empty()) {
      std::printf("sctuned: listening on %s\n", config.socketPath.c_str());
    } else if (serverInstance.tcpPort() != 0) {
      std::printf("sctuned: listening on 127.0.0.1:%u%s%s\n",
                  serverInstance.tcpPort(),
                  config.socketPath.empty() ? "" : " and ",
                  config.socketPath.c_str());
    }
    std::fflush(stdout);

    serverInstance.waitForStop();  // drains sessions before returning
    g_server = nullptr;

    if (!traceOut.empty() && !obsOff) {
      std::ofstream out(traceOut);
      if (out) obs::writeChromeTrace(out, obs::traceSnapshot());
    }
    if (!metricsOut.empty() && !obsOff) {
      std::ofstream out(metricsOut);
      if (out) {
        obs::writeMetricsJson(out, obs::MetricsRegistry::global().snapshot());
      }
    }
    std::printf("sctuned: drained, bye\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sctuned: %s\n", e.what());
    return 1;
  }
}
