#pragma once
// Shared fixtures for the test suite: tiny hand-built libraries and designs
// with arithmetic simple enough to verify timing and statistics by hand.

#include <memory>

#include "charlib/characterizer.hpp"
#include "liberty/library.hpp"
#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"

namespace sct::test {

/// A LUT whose value is base + slewCoef*slew + loadCoef*load — exactly
/// bilinear, so interpolation is exact and arithmetic is checkable by hand.
inline liberty::Lut linearLut(numeric::Axis slew, numeric::Axis load,
                              double base, double slewCoef, double loadCoef) {
  liberty::Lut lut(slew, load);
  for (std::size_t r = 0; r < slew.size(); ++r) {
    for (std::size_t c = 0; c < load.size(); ++c) {
      lut.at(r, c) = base + slewCoef * slew[r] + loadCoef * load[c];
    }
  }
  return lut;
}

inline numeric::Axis tinySlewAxis() { return {0.01, 0.1, 0.4}; }
inline numeric::Axis tinyLoadAxis() { return {0.001, 0.01, 0.05}; }

/// Combinational cell with one output Z and `inputs` input pins A, B, ...;
/// all four tables are the same linear LUT.
inline liberty::Cell makeSimpleCell(const std::string& name,
                                    liberty::CellFunction function,
                                    double strength, double area,
                                    double inputCap, double base,
                                    double slewCoef, double loadCoef) {
  liberty::Cell cell(name, function, strength, area);
  const auto& traits = liberty::traits(function);
  const auto inputNames = liberty::dataInputNames(function);
  for (std::size_t i = 0; i < traits.numDataInputs; ++i) {
    liberty::Pin pin;
    pin.name = std::string(inputNames[i]);
    pin.direction = liberty::PinDirection::kInput;
    pin.capacitance = inputCap;
    cell.addPin(std::move(pin));
  }
  liberty::Pin out;
  out.name = "Z";
  out.direction = liberty::PinDirection::kOutput;
  out.maxCapacitance = 0.06 * strength;
  cell.addPin(std::move(out));
  for (std::size_t i = 0; i < traits.numDataInputs; ++i) {
    liberty::TimingArc arc;
    arc.relatedPin = std::string(inputNames[i]);
    arc.outputPin = "Z";
    arc.riseDelay = linearLut(tinySlewAxis(), tinyLoadAxis(), base, slewCoef,
                              loadCoef);
    arc.fallDelay = arc.riseDelay;
    arc.riseTransition = linearLut(tinySlewAxis(), tinyLoadAxis(), base * 0.5,
                                   slewCoef * 0.5, loadCoef * 1.5);
    arc.fallTransition = arc.riseTransition;
    cell.addArc(std::move(arc));
  }
  return cell;
}

/// DFF with D, CP inputs, Q output and a linear clk->Q arc.
inline liberty::Cell makeDffCell(const std::string& name, double strength,
                                 double area, double inputCap, double base,
                                 double slewCoef, double loadCoef,
                                 double setup) {
  liberty::Cell cell(name, liberty::CellFunction::kDff, strength, area);
  cell.setSetupTime(setup);
  cell.setHoldTime(0.01);
  liberty::Pin d;
  d.name = "D";
  d.direction = liberty::PinDirection::kInput;
  d.capacitance = inputCap;
  cell.addPin(std::move(d));
  liberty::Pin cp;
  cp.name = "CP";
  cp.direction = liberty::PinDirection::kInput;
  cp.capacitance = inputCap;
  cp.isClock = true;
  cell.addPin(std::move(cp));
  liberty::Pin q;
  q.name = "Q";
  q.direction = liberty::PinDirection::kOutput;
  q.maxCapacitance = 0.06 * strength;
  cell.addPin(std::move(q));
  liberty::TimingArc arc;
  arc.relatedPin = "CP";
  arc.outputPin = "Q";
  arc.riseDelay =
      linearLut(tinySlewAxis(), tinyLoadAxis(), base, slewCoef, loadCoef);
  arc.fallDelay = arc.riseDelay;
  arc.riseTransition = linearLut(tinySlewAxis(), tinyLoadAxis(), base * 0.5,
                                 slewCoef * 0.5, loadCoef * 1.5);
  arc.fallTransition = arc.riseTransition;
  cell.addArc(std::move(arc));
  return cell;
}

/// Minimal library: INV_1/INV_4, NAND2_1, BUF_2, DFF_1 with linear tables.
inline liberty::Library makeTinyLibrary() {
  liberty::Library lib("tiny");
  lib.addCell(makeSimpleCell("INV_1", liberty::CellFunction::kInv, 1.0, 1.0,
                             0.001, 0.010, 0.1, 4.0));
  lib.addCell(makeSimpleCell("INV_4", liberty::CellFunction::kInv, 4.0, 2.5,
                             0.004, 0.010, 0.1, 1.0));
  lib.addCell(makeSimpleCell("ND2_1", liberty::CellFunction::kNand2, 1.0, 1.4,
                             0.0013, 0.014, 0.12, 4.4));
  lib.addCell(makeSimpleCell("BF_2", liberty::CellFunction::kBuf, 2.0, 2.0,
                             0.0011, 0.020, 0.05, 2.0));
  lib.addCell(makeDffCell("FD1_1", 1.0, 4.0, 0.0012, 0.030, 0.08, 4.0, 0.04));
  return lib;
}

/// Small characterizer with a reduced grid (fast tests).
inline charlib::Characterizer makeSmallCharacterizer() {
  charlib::CharacterizationConfig config;
  config.slewAxis = {0.002, 0.05, 0.2, 0.6};
  config.loadFractions = {0.01, 0.1, 0.4, 1.0};
  return charlib::Characterizer(config);
}

/// Chain of `depth` inverters between two flip-flops; returns the design.
///   FF -> INV -> INV -> ... -> FF
inline netlist::Design makeInvChain(std::size_t depth) {
  netlist::Design design("chain");
  netlist::NetlistBuilder b(design);
  const netlist::NetIndex in = b.inputPort("din");
  netlist::NetIndex node = b.dff(in, netlist::PrimOp::kDff);
  for (std::size_t i = 0; i < depth; ++i) node = b.inv(node);
  const netlist::NetIndex q = b.dff(node, netlist::PrimOp::kDff);
  b.outputPort("dout", q);
  return design;
}

}  // namespace sct::test
