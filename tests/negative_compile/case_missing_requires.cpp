// Thread-safety wall seeded violation: calling an SCT_REQUIRES(mutex)
// function without holding the mutex. MUST FAIL to compile under
// -Werror=thread-safety (clang diagnoses "calling function ... requires
// holding mutex exclusively").

#include "core/sync.hpp"

namespace {

struct Worker {
  sct::Mutex mutex;
  int queued SCT_GUARDED_BY(mutex) = 0;

  void drainLocked() SCT_REQUIRES(mutex) { queued = 0; }
};

void runWithoutLock(Worker& worker) {
  worker.drainLocked();  // seeded violation: caller does not hold mutex
}

}  // namespace

int main() {
  Worker worker;
  runWithoutLock(worker);
  return 0;
}
