// Thread-safety wall seeded violation: reading an SCT_GUARDED_BY field
// without holding its mutex. MUST FAIL to compile under
// -Werror=thread-safety (clang diagnoses "reading variable ... requires
// holding mutex").

#include "core/sync.hpp"

namespace {

struct Account {
  sct::Mutex mutex;
  int balance SCT_GUARDED_BY(mutex) = 0;
};

int readWithoutLock(Account& account) {
  return account.balance;  // seeded violation: no lock held
}

}  // namespace

int main() {
  Account account;
  return readWithoutLock(account);
}
