// Thread-safety wall control: correct lock discipline against the repo's
// real annotated primitives (core/sync.hpp). MUST compile cleanly under
// -Werror=thread-safety — if this fails, the harness (include path,
// compiler, annotation macros) is broken, not the analyzed code.

#include "core/sync.hpp"

namespace {

struct Worker {
  sct::Mutex mutex;
  int queued SCT_GUARDED_BY(mutex) = 0;

  void drainLocked() SCT_REQUIRES(mutex) { queued = 0; }
};

int run(Worker& worker) {
  const sct::LockGuard lock(worker.mutex);
  worker.drainLocked();
  return worker.queued;
}

}  // namespace

int main() {
  Worker worker;
  return run(worker);
}
