// sct_check fixture: seeded det.raw-rng violation — an ad-hoc Rng
// constructed outside src/numeric instead of a child()/fork() derivation.
// NOT part of any build target — self-test input only.

#include <cstdint>

namespace numeric {
struct Rng {
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};
}  // namespace numeric

namespace fixture {

double sample() {
  numeric::Rng rng(12345);  // det.raw-rng: raw construction
  return static_cast<double>(rng.state);
}

}  // namespace fixture
