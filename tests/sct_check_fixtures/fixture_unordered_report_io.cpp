// sct_check fixture: seeded det.unordered-in-serializer violation.
// The basename matches the serializer pattern (*_io.cpp), so the unordered
// map below must be flagged: iterating it would emit hash-ordered bytes.
// NOT part of any build target — analyzed only by sct_check's self-test.

#include <ostream>
#include <string>
#include <unordered_map>

namespace fixture {

void writeReport(std::ostream& out,
                 const std::unordered_map<std::string, double>& values) {
  for (const auto& [name, value] : values) {  // hash-order iteration
    out << name << " " << value << "\n";
  }
}

}  // namespace fixture
