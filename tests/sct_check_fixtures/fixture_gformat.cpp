// sct_check fixture: seeded det.raw-gformat violation — a %g conversion
// that is not the canonical %.17g, so serialized doubles would truncate.
// NOT part of any build target — self-test input only.

#include <cstdio>

namespace fixture {

int render(char* buffer, unsigned size, double value) {
  return std::snprintf(buffer, size, "value=%.6g\n", value);  // not %.17g
}

}  // namespace fixture
