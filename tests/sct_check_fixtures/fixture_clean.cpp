// sct_check fixture: a TU that exercises the deterministic idioms every
// rule *allows* — sorted containers, canonical %.17g, derived Rng streams,
// and no clock reads. Must produce zero findings.
// NOT part of any build target — self-test input only.

#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace numeric {
struct Rng {
  const Rng& child(int tag) const { return *this; }
};
}  // namespace numeric

namespace fixture {

void writeValues(std::ostream& out,
                 const std::map<std::string, double>& values) {
  char buffer[64];
  for (const auto& [name, value] : values) {  // sorted iteration
    std::snprintf(buffer, sizeof buffer, "%.17g", value);  // canonical
    out << name << " " << buffer << "\n";
  }
}

double sample(const numeric::Rng& parent) {
  const numeric::Rng rng = parent.child(7);  // derivation, not construction
  (void)rng;
  return 0.0;
}

}  // namespace fixture
