// sct_check fixture: seeded det.wallclock violations (clock read, entropy
// source, C time()). NOT part of any build target — self-test input only.

#include <chrono>
#include <cstdint>
#include <ctime>
#include <random>

namespace fixture {

std::uint64_t badSeed() {
  const auto t = std::chrono::steady_clock::now();  // det.wallclock
  std::random_device entropy;                       // det.wallclock
  return static_cast<std::uint64_t>(
             t.time_since_epoch().count()) ^
         entropy() ^ static_cast<std::uint64_t>(::time(nullptr));
}

}  // namespace fixture
