// sct_check fixture: a det.wallclock violation covered by the fixture
// allowlist — the self-test asserts it is reported as *suppressed* (a
// note with the allowlist reason), never silently dropped.
// NOT part of any build target — self-test input only.

#include <chrono>
#include <cstdint>

namespace fixture {

std::int64_t deadlineTicks() {
  return std::chrono::steady_clock::now()  // allowlisted det.wallclock
      .time_since_epoch()
      .count();
}

}  // namespace fixture
