// Tests for the parallel execution layer: primitive correctness (coverage,
// ordering, exceptions, nesting) and the determinism contract — serial and
// multi-threaded runs of the Monte-Carlo characterization, stat-library
// merge, library tuning and path Monte Carlo must agree bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "charlib/characterizer.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"
#include "parallel/parallel.hpp"
#include "statlib/stat_library.hpp"
#include "sta/sta.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"
#include "variation/monte_carlo.hpp"

namespace sct {
namespace {

/// Restores the previous thread count when a test scope ends so suites do
/// not leak pool configuration into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : previous_(parallel::threadCount()) {
    parallel::setThreadCount(n);
  }
  ~ScopedThreads() { parallel::setThreadCount(previous_); }

 private:
  std::size_t previous_;
};

// ------------------------------------------------------------ primitives ----

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    const ScopedThreads scope(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel::parallelFor(hits.size(),
                          [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  const ScopedThreads scope(4);
  bool touched = false;
  parallel::parallelFor(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesExceptions) {
  const ScopedThreads scope(4);
  EXPECT_THROW(
      parallel::parallelFor(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  const ScopedThreads scope(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  parallel::parallelFor(
      64,
      [&](std::size_t outer) {
        parallel::parallelFor(16, [&](std::size_t inner) {
          hits[outer * 16 + inner].fetch_add(1);
        });
      },
      /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMap, PreservesElementOrder) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{8}}) {
    const ScopedThreads scope(threads);
    const std::vector<std::size_t> out = parallel::parallelMap(
        500, [](std::size_t i) { return i * i; }, /*grain=*/3);
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  std::vector<double> xs(10000);
  numeric::Rng rng(3);
  for (double& x : xs) x = rng.normal(1.0, 0.25);

  auto reduce = [&] {
    return parallel::parallelReduce(
        xs.size(), numeric::RunningStats{},
        [&](numeric::RunningStats& acc, std::size_t i) { acc.add(xs[i]); },
        [](numeric::RunningStats& acc, const numeric::RunningStats& other) {
          acc.merge(other);
        });
  };
  const ScopedThreads serial(0);
  const numeric::RunningStats a = reduce();
  {
    const ScopedThreads threaded(8);
    const numeric::RunningStats b = reduce();
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());  // exact: identical combination order
    EXPECT_EQ(a.stddev(), b.stddev());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
  }
}

TEST(ThreadSpec, ParsesEnvironmentValues) {
  EXPECT_EQ(parallel::parseThreadSpec("", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("auto", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("serial", 6), 0u);
  EXPECT_EQ(parallel::parseThreadSpec("0", 6), 0u);
  EXPECT_EQ(parallel::parseThreadSpec("12", 6), 12u);
  EXPECT_EQ(parallel::parseThreadSpec("not-a-number", 6), 6u);
}

TEST(ThreadSpec, RejectsGarbageAndOverflow) {
  // Garbage of every shape falls back instead of silently mis-parsing.
  EXPECT_EQ(parallel::parseThreadSpec("-4", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("+4", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("4.5", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec(" 8", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("8 ", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("0x10", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("12cores", 6), 6u);
  // Counts beyond any sane pool size — including values that would overflow
  // the accumulating u64 — are treated as invalid, not as huge requests.
  EXPECT_EQ(parallel::parseThreadSpec("4096", 6), parallel::kMaxThreadSpec);
  EXPECT_EQ(parallel::parseThreadSpec("4097", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("99999999999999999999999999", 6), 6u);
  EXPECT_EQ(parallel::parseThreadSpec("18446744073709551616", 6), 6u);
}

// ----------------------------------------------------------- determinism ----

/// Shared fixtures characterized once per thread-count under test.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static charlib::Characterizer characterizer() {
    return test::makeSmallCharacterizer();
  }

  static bool lutsEqual(const liberty::Lut& a, const liberty::Lut& b) {
    if (!a.sameShape(b)) return false;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t c = 0; c < a.cols(); ++c) {
        if (a.at(r, c) != b.at(r, c)) return false;
      }
    }
    return true;
  }
};

TEST_F(ParallelDeterminismTest, MonteCarloLibrariesBitIdentical) {
  const charlib::Characterizer chr = characterizer();
  const auto run = [&] {
    return chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 12,
                                      7);
  };
  std::vector<liberty::Library> serial;
  {
    const ScopedThreads scope(1);
    serial = run();
  }
  const ScopedThreads scope(8);
  const std::vector<liberty::Library> threaded = run();
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].name(), threaded[k].name());
    const auto cellsA = serial[k].cells();
    const auto cellsB = threaded[k].cells();
    ASSERT_EQ(cellsA.size(), cellsB.size());
    for (std::size_t i = 0; i < cellsA.size(); ++i) {
      ASSERT_EQ(cellsA[i]->arcs().size(), cellsB[i]->arcs().size());
      for (std::size_t a = 0; a < cellsA[i]->arcs().size(); ++a) {
        EXPECT_TRUE(lutsEqual(cellsA[i]->arcs()[a].riseDelay,
                              cellsB[i]->arcs()[a].riseDelay));
        EXPECT_TRUE(lutsEqual(cellsA[i]->arcs()[a].fallDelay,
                              cellsB[i]->arcs()[a].fallDelay));
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, StatLibraryBitIdentical) {
  const charlib::Characterizer chr = characterizer();
  const auto build = [&] {
    const auto libs =
        chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 10, 11);
    return statlib::buildStatLibrary(libs);
  };
  const ScopedThreads serialScope(1);
  const statlib::StatLibrary serial = build();
  parallel::setThreadCount(8);
  const statlib::StatLibrary threaded = build();

  const auto cellsA = serial.cells();
  const auto cellsB = threaded.cells();
  ASSERT_EQ(cellsA.size(), cellsB.size());
  for (std::size_t i = 0; i < cellsA.size(); ++i) {
    EXPECT_EQ(cellsA[i]->name(), cellsB[i]->name());
    ASSERT_EQ(cellsA[i]->arcs().size(), cellsB[i]->arcs().size());
    for (std::size_t a = 0; a < cellsA[i]->arcs().size(); ++a) {
      const statlib::StatArc& arcA = cellsA[i]->arcs()[a];
      const statlib::StatArc& arcB = cellsB[i]->arcs()[a];
      for (std::size_t r = 0; r < arcA.rise.rows(); ++r) {
        for (std::size_t c = 0; c < arcA.rise.cols(); ++c) {
          EXPECT_EQ(arcA.rise.mean().at(r, c), arcB.rise.mean().at(r, c));
          EXPECT_EQ(arcA.rise.sigma().at(r, c), arcB.rise.sigma().at(r, c));
          EXPECT_EQ(arcA.fall.mean().at(r, c), arcB.fall.mean().at(r, c));
          EXPECT_EQ(arcA.fall.sigma().at(r, c), arcB.fall.sigma().at(r, c));
        }
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, TuningWindowsBitIdentical) {
  const charlib::Characterizer chr = characterizer();
  const auto libs =
      chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 10, 13);
  const statlib::StatLibrary stat = statlib::buildStatLibrary(libs);

  for (const tuning::TuningMethod method :
       {tuning::TuningMethod::kSigmaCeiling,
        tuning::TuningMethod::kCellStrengthLoadSlope,
        tuning::TuningMethod::kCellSlewSlope}) {
    const tuning::TuningConfig config =
        tuning::TuningConfig::forMethod(method, 0.02);
    const ScopedThreads serialScope(1);
    const tuning::LibraryConstraints serial =
        tuning::tuneLibrary(stat, config);
    parallel::setThreadCount(8);
    const tuning::LibraryConstraints threaded =
        tuning::tuneLibrary(stat, config);

    ASSERT_EQ(serial.size(), threaded.size());
    auto itA = serial.cells().begin();
    auto itB = threaded.cells().begin();
    for (; itA != serial.cells().end(); ++itA, ++itB) {
      EXPECT_EQ(itA->first, itB->first);
      EXPECT_EQ(itA->second.sigmaThreshold, itB->second.sigmaThreshold);
      ASSERT_EQ(itA->second.pinWindows.size(), itB->second.pinWindows.size());
      auto winA = itA->second.pinWindows.begin();
      auto winB = itB->second.pinWindows.begin();
      for (; winA != itA->second.pinWindows.end(); ++winA, ++winB) {
        EXPECT_EQ(winA->first, winB->first);
        EXPECT_EQ(winA->second.minSlew, winB->second.minSlew);
        EXPECT_EQ(winA->second.maxSlew, winB->second.maxSlew);
        EXPECT_EQ(winA->second.minLoad, winB->second.minLoad);
        EXPECT_EQ(winA->second.maxLoad, winB->second.maxLoad);
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, PathMonteCarloBitIdentical) {
  const charlib::Characterizer chr = characterizer();
  const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  const synth::Synthesizer synth(lib);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(test::makeInvChain(12), clock);
  ASSERT_TRUE(result.success());
  sta::TimingAnalyzer sta(result.design, lib, clock);
  ASSERT_TRUE(sta.analyze());
  const auto paths = sta.endpointWorstPaths();
  const sta::TimingPath* longest = &paths.front();
  for (const auto& p : paths) {
    if (p.depth() > longest->depth()) longest = &p;
  }

  const variation::PathMonteCarlo mc(chr);
  variation::PathMcConfig config;
  config.trials = 300;
  config.seed = 2014;
  for (const bool includeGlobal : {false, true}) {
    config.includeGlobal = includeGlobal;
    const ScopedThreads serialScope(1);
    const variation::PathMcResult serial = mc.simulate(*longest, config);
    parallel::setThreadCount(8);
    const variation::PathMcResult threaded = mc.simulate(*longest, config);
    EXPECT_EQ(serial.samples, threaded.samples);
    EXPECT_EQ(serial.summary.mean, threaded.summary.mean);
    EXPECT_EQ(serial.summary.sigma, threaded.summary.sigma);
  }
}

TEST_F(ParallelDeterminismTest, SerialFallbackMatchesThreaded) {
  // threads = 0 (no pool at all) must agree with every pooled configuration.
  const charlib::Characterizer chr = characterizer();
  const auto build = [&] {
    const auto libs =
        chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 6, 29);
    const statlib::StatLibrary stat = statlib::buildStatLibrary(libs);
    const auto constraints = tuning::tuneLibrary(
        stat,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        0.02));
    return constraints.size();
  };
  const ScopedThreads scope(0);
  const std::size_t serial = build();
  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    parallel::setThreadCount(threads);
    EXPECT_EQ(build(), serial);
  }
}

}  // namespace
}  // namespace sct
