// Unit tests for the netlist layer: data-structure invariants, structural
// builder blocks and the microcontroller generator (the paper's ~20k-gate
// evaluation vehicle).

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "netlist/netlist.hpp"
#include "netlist/noc.hpp"
#include "netlist/random.hpp"

namespace sct::netlist {
namespace {

// ------------------------------------------------------------- primops ----

TEST(PrimOp, Shapes) {
  EXPECT_EQ(numInputs(PrimOp::kInv), 1u);
  EXPECT_EQ(numInputs(PrimOp::kMux2), 3u);
  EXPECT_EQ(numInputs(PrimOp::kFullAdder), 3u);
  EXPECT_EQ(numInputs(PrimOp::kConst0), 0u);
  EXPECT_EQ(numInputs(PrimOp::kDffE), 2u);
  EXPECT_EQ(numOutputs(PrimOp::kFullAdder), 2u);
  EXPECT_EQ(numOutputs(PrimOp::kHalfAdder), 2u);
  EXPECT_EQ(numOutputs(PrimOp::kNand4), 1u);
}

TEST(PrimOp, SequentialDetection) {
  EXPECT_TRUE(isSequential(PrimOp::kDff));
  EXPECT_TRUE(isSequential(PrimOp::kDffR));
  EXPECT_TRUE(isSequential(PrimOp::kDffE));
  EXPECT_FALSE(isSequential(PrimOp::kMux2));
  EXPECT_FALSE(isSequential(PrimOp::kConst1));
}

TEST(PrimOp, DefaultFunctionMapping) {
  EXPECT_EQ(defaultFunction(PrimOp::kNand3), liberty::CellFunction::kNand3);
  EXPECT_EQ(defaultFunction(PrimOp::kConst0), liberty::CellFunction::kTieLo);
  EXPECT_EQ(defaultFunction(PrimOp::kDffE), liberty::CellFunction::kDffE);
}

// -------------------------------------------------------------- design ----

TEST(Design, AddInstanceWiresConnectivity) {
  Design d("t");
  const NetIndex a = d.addNet("a");
  const NetIndex b = d.addNet("b");
  const NetIndex z = d.addNet("z");
  const InstIndex g = d.addInstance("g", PrimOp::kNand2, {a, b}, {z});
  EXPECT_EQ(d.net(z).driver, g);
  ASSERT_EQ(d.net(a).sinks.size(), 1u);
  EXPECT_EQ(d.net(a).sinks[0].instance, g);
  EXPECT_EQ(d.net(a).sinks[0].inputSlot, 0u);
  EXPECT_EQ(d.net(b).sinks[0].inputSlot, 1u);
  EXPECT_TRUE(d.validate().empty());
}

TEST(Design, ReconnectInputMovesSink) {
  Design d("t");
  const NetIndex a = d.addNet("a");
  const NetIndex b = d.addNet("b");
  const NetIndex z = d.addNet("z");
  const InstIndex g = d.addInstance("g", PrimOp::kInv, {a}, {z});
  d.reconnectInput(g, 0, b);
  EXPECT_TRUE(d.net(a).sinks.empty());
  ASSERT_EQ(d.net(b).sinks.size(), 1u);
  EXPECT_EQ(d.instance(g).inputs[0], b);
  EXPECT_TRUE(d.validate().empty());
}

TEST(Design, RemoveInstanceDetaches) {
  Design d("t");
  const NetIndex a = d.addNet("a");
  const NetIndex z = d.addNet("z");
  const InstIndex g = d.addInstance("g", PrimOp::kInv, {a}, {z});
  d.removeInstance(g);
  EXPECT_FALSE(d.instance(g).alive);
  EXPECT_TRUE(d.net(a).sinks.empty());
  EXPECT_EQ(d.net(z).driver, kNoInst);
  EXPECT_EQ(d.gateCount(), 0u);
  EXPECT_TRUE(d.validate().empty());
}

TEST(Design, FreshNamesUnique) {
  Design d("t");
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) names.insert(d.freshName("n"));
  EXPECT_EQ(names.size(), 100u);
}

TEST(Design, PortsMarkPrimaryOutputs) {
  Design d("t");
  const NetIndex a = d.addNet("a");
  d.addPort("a", PortDirection::kOutput, a);
  EXPECT_TRUE(d.net(a).isPrimaryOutput);
  ASSERT_EQ(d.ports().size(), 1u);
}

// ------------------------------------------------------------- builder ----

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() : d_("t"), b_(d_) {}
  Design d_;
  NetlistBuilder b_;
};

TEST_F(BuilderTest, GateCreatesInstanceAndNet) {
  const NetIndex a = b_.inputPort("a");
  const NetIndex z = b_.inv(a);
  EXPECT_EQ(d_.gateCount(), 1u);
  EXPECT_NE(d_.net(z).driver, kNoInst);
  EXPECT_TRUE(d_.validate().empty());
}

TEST_F(BuilderTest, ConstantIsCached) {
  const NetIndex c0a = b_.constant(false);
  const NetIndex c0b = b_.constant(false);
  const NetIndex c1 = b_.constant(true);
  EXPECT_EQ(c0a, c0b);
  EXPECT_NE(c0a, c1);
  EXPECT_EQ(d_.gateCount(), 2u);
}

TEST_F(BuilderTest, RippleAdderStructure) {
  const Bus a = b_.inputBus("a", 8);
  const Bus c = b_.inputBus("b", 8);
  NetIndex carry = kNoNet;
  const Bus sum = b_.rippleAdder(a, c, b_.constant(false), &carry);
  EXPECT_EQ(sum.size(), 8u);
  EXPECT_NE(carry, kNoNet);
  // 8 FA + 1 tie cell.
  EXPECT_EQ(d_.gateCount(), 9u);
  EXPECT_TRUE(d_.validate().empty());
}

TEST_F(BuilderTest, IncrementerUsesHalfAdders) {
  const Bus a = b_.inputBus("a", 6);
  const Bus inc = b_.incrementer(a);
  EXPECT_EQ(inc.size(), 6u);
  std::size_t ha = 0;
  for (const Instance& inst : d_.instances()) {
    if (inst.alive && inst.op == PrimOp::kHalfAdder) ++ha;
  }
  EXPECT_EQ(ha, 6u);
}

TEST_F(BuilderTest, ReductionTreesAreBalancedAndComplete) {
  const Bus a = b_.inputBus("a", 9);
  (void)b_.orTree(a);
  // 9 leaves -> 8 OR2 gates.
  std::size_t count = 0;
  for (const Instance& inst : d_.instances()) {
    if (inst.alive && inst.op == PrimOp::kOr2) ++count;
  }
  EXPECT_EQ(count, 8u);
}

TEST_F(BuilderTest, DecoderProducesOneHotOutputs) {
  const Bus sel = b_.inputBus("s", 3);
  const Bus out = b_.decoder(sel);
  EXPECT_EQ(out.size(), 8u);
  // 3 inverters + 8 * (3-input AND via 2 AND2 each) = 3 + 16 gates.
  EXPECT_EQ(d_.gateCount(), 19u);
}

TEST_F(BuilderTest, MuxTreeSelectsAmongPowerOfTwo) {
  std::vector<Bus> choices;
  for (int i = 0; i < 4; ++i) choices.push_back(b_.inputBus("c" + std::to_string(i), 4));
  const Bus sel = b_.inputBus("s", 2);
  const Bus out = b_.muxTree(choices, sel);
  EXPECT_EQ(out.size(), 4u);
  // (2+1) * 4 mux2 per bit = 12.
  EXPECT_EQ(d_.gateCount(), 12u);
}

TEST_F(BuilderTest, ShiftersPreserveWidth) {
  const Bus v = b_.inputBus("v", 16);
  const Bus amount = b_.inputBus("a", 4);
  EXPECT_EQ(b_.shiftLeft(v, amount).size(), 16u);
  EXPECT_EQ(b_.shiftRight(v, amount).size(), 16u);
  EXPECT_TRUE(d_.validate().empty());
}

TEST_F(BuilderTest, MultiplierWidth) {
  const Bus x = b_.inputBus("x", 8);
  const Bus y = b_.inputBus("y", 8);
  const Bus p = b_.multiplier(x, y);
  EXPECT_EQ(p.size(), 16u);
  EXPECT_TRUE(d_.validate().empty());
  // 64 partial-product ANDs plus adder rows.
  std::size_t ands = 0;
  for (const Instance& inst : d_.instances()) {
    if (inst.alive && inst.op == PrimOp::kAnd2) ++ands;
  }
  EXPECT_EQ(ands, 64u);
}

TEST_F(BuilderTest, RegisterFileShape) {
  const Bus wa = b_.inputBus("wa", 3);
  const Bus wd = b_.inputBus("wd", 8);
  const NetIndex we = b_.inputPort("we");
  const auto reads = b_.registerFile(8, 8, wa, wd, we,
                                     {b_.inputBus("ra", 3), b_.inputBus("rb", 3)});
  EXPECT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].size(), 8u);
  std::size_t dffe = 0;
  for (const Instance& inst : d_.instances()) {
    if (inst.alive && inst.op == PrimOp::kDffE) ++dffe;
  }
  EXPECT_EQ(dffe, 64u);
  EXPECT_TRUE(d_.validate().empty());
}

TEST_F(BuilderTest, RandomLogicDeterministicPerSeed) {
  Design d2("t2");
  NetlistBuilder b2(d2);
  const Bus in1 = b_.inputBus("i", 8);
  const Bus in2 = b2.inputBus("i", 8);
  numeric::Rng r1(5);
  numeric::Rng r2(5);
  (void)b_.randomLogic(in1, 6, 3, r1);
  (void)b2.randomLogic(in2, 6, 3, r2);
  ASSERT_EQ(d_.instanceCount(), d2.instanceCount());
  for (std::size_t i = 0; i < d_.instanceCount(); ++i) {
    EXPECT_EQ(d_.instance(static_cast<InstIndex>(i)).op,
              d2.instance(static_cast<InstIndex>(i)).op);
  }
}

TEST_F(BuilderTest, BusDffWithEnableUsesDffE) {
  const Bus data = b_.inputBus("d", 4);
  const NetIndex en = b_.inputPort("en");
  const Bus q = b_.busDff(data, PrimOp::kDffE, en);
  EXPECT_EQ(q.size(), 4u);
  for (const Instance& inst : d_.instances()) {
    if (inst.alive && isSequential(inst.op)) {
      EXPECT_EQ(inst.op, PrimOp::kDffE);
      EXPECT_EQ(inst.inputs.size(), 2u);
    }
  }
}

// ------------------------------------------------------------------ mcu ----

TEST(Mcu, GateCountNearTwentyK) {
  const Design mcu = generateMcu();
  EXPECT_GE(mcu.gateCount(), 15000u);
  EXPECT_LE(mcu.gateCount(), 26000u);
}

TEST(Mcu, ValidatesClean) {
  const Design mcu = generateMcu();
  EXPECT_EQ(mcu.validate(), "");
}

TEST(Mcu, DeterministicForSeed) {
  McuConfig config;
  const Design a = generateMcu(config);
  const Design b = generateMcu(config);
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  ASSERT_EQ(a.netCount(), b.netCount());
  for (std::size_t i = 0; i < a.instanceCount(); ++i) {
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).op,
              b.instance(static_cast<InstIndex>(i)).op);
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).inputs,
              b.instance(static_cast<InstIndex>(i)).inputs);
  }
}

TEST(Mcu, SeedChangesControlLogic) {
  McuConfig a;
  McuConfig b;
  b.seed = 999;
  const Design da = generateMcu(a);
  const Design db = generateMcu(b);
  ASSERT_EQ(da.instanceCount(), db.instanceCount());
  bool differs = false;
  for (std::size_t i = 0; i < da.instanceCount() && !differs; ++i) {
    differs = da.instance(static_cast<InstIndex>(i)).op !=
              db.instance(static_cast<InstIndex>(i)).op;
  }
  EXPECT_TRUE(differs);
}

TEST(Mcu, HasSubstantialSequentialPopulation) {
  const Design mcu = generateMcu();
  std::size_t ffs = 0;
  for (const Instance& inst : mcu.instances()) {
    if (inst.alive && isSequential(inst.op)) ++ffs;
  }
  // Register file + pipeline + peripherals: thousands of flops.
  EXPECT_GE(ffs, 2000u);
  EXPECT_LE(ffs, 8000u);
}

TEST(Mcu, UsesDiversePrimitives) {
  const Design mcu = generateMcu();
  std::set<PrimOp> ops;
  for (const Instance& inst : mcu.instances()) {
    if (inst.alive) ops.insert(inst.op);
  }
  EXPECT_TRUE(ops.contains(PrimOp::kFullAdder));
  EXPECT_TRUE(ops.contains(PrimOp::kHalfAdder));
  EXPECT_TRUE(ops.contains(PrimOp::kMux2));
  EXPECT_TRUE(ops.contains(PrimOp::kXor2));
  EXPECT_TRUE(ops.contains(PrimOp::kDffE));
  EXPECT_GE(ops.size(), 12u);
}

TEST(Mcu, ScalesWithConfig) {
  McuConfig small;
  small.registers = 8;
  small.timers = 1;
  small.dmaChannels = 0;
  small.gpioWidth = 16;
  small.cacheTagEntries = 0;
  small.macUnits = 1;
  small.bankedRegisters = 1;
  small.interruptSources = 8;
  small.decodeOutputs = 64;
  const Design sm = generateMcu(small);
  const Design full = generateMcu();
  EXPECT_LT(sm.gateCount(), full.gateCount() / 2);
  EXPECT_EQ(sm.validate(), "");
}

TEST(Accumulator, SmallAndValid) {
  const Design acc = generateAccumulator(16);
  EXPECT_EQ(acc.validate(), "");
  EXPECT_GT(acc.gateCount(), 40u);
  EXPECT_LT(acc.gateCount(), 200u);
}

// ------------------------------------------------------------ NoC router ----

TEST(Noc, ValidatesCleanAndDeterministic) {
  const Design a = buildNocRouter();
  const Design b = buildNocRouter();
  EXPECT_EQ(a.validate(), "");
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  ASSERT_EQ(a.netCount(), b.netCount());
  for (std::size_t i = 0; i < a.instanceCount(); ++i) {
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).op,
              b.instance(static_cast<InstIndex>(i)).op);
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).inputs,
              b.instance(static_cast<InstIndex>(i)).inputs);
  }
}

TEST(Noc, CarriesBufferAndCreditState) {
  // Flit buffers, VC/age bookkeeping and credit counters: a control-heavy
  // sequential population, structurally unlike the MCU register file.
  const Design noc = buildNocRouter();
  std::size_t ffs = 0;
  for (const Instance& inst : noc.instances()) {
    if (inst.alive && isSequential(inst.op)) ++ffs;
  }
  NocConfig config;
  // At least the raw flit storage: ports * vcs * depth * flitWidth bits.
  EXPECT_GE(ffs, config.ports * config.vcs * config.bufferDepth *
                     config.flitWidth);
  EXPECT_GT(noc.gateCount(), 1000u);
}

TEST(Noc, ScalesWithRadixAndWidth) {
  NocConfig wide;
  wide.ports = 7;
  wide.flitWidth = 32;
  const Design base = buildNocRouter();
  const Design scaled = buildNocRouter(wide);
  EXPECT_EQ(scaled.validate(), "");
  EXPECT_GT(scaled.gateCount(), base.gateCount());
}

// ------------------------------------------------- random DAG scale knob ----

TEST(RandomDag, ScaleOneReproducesUnscaledBitForBit) {
  RandomDagConfig unscaled;
  RandomDagConfig explicitOne;
  explicitOne.scale = 1;
  const Design a = generateRandomDag(unscaled);
  const Design b = generateRandomDag(explicitOne);
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  ASSERT_EQ(a.netCount(), b.netCount());
  for (std::size_t i = 0; i < a.instanceCount(); ++i) {
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).op,
              b.instance(static_cast<InstIndex>(i)).op);
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).inputs,
              b.instance(static_cast<InstIndex>(i)).inputs);
  }
}

TEST(RandomDag, ScaleMultipliesTheDesign) {
  RandomDagConfig base;
  base.gates = 100;
  base.flipFlops = 8;
  RandomDagConfig big = base;
  big.scale = 8;
  const Design small = generateRandomDag(base);
  const Design scaled = generateRandomDag(big);
  EXPECT_EQ(scaled.validate(), "");
  EXPECT_GE(scaled.gateCount(), 6 * small.gateCount());
}

}  // namespace
}  // namespace sct::netlist
