// Tests for the transition-power extension (section III's "other
// properties" hook): energy model shape, power-sigma LUTs, power-metric
// library tuning and design-level power statistics.

#include <gtest/gtest.h>

#include "netlist/mcu.hpp"
#include "power/power_stats.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct::power {
namespace {

class PowerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    model_ = new PowerModel(chr_->model());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
  }
  static void TearDownTestSuite() {
    delete lib_;
    delete model_;
    delete chr_;
    lib_ = nullptr;
    model_ = nullptr;
    chr_ = nullptr;
  }
  static charlib::Characterizer* chr_;
  static PowerModel* model_;
  static liberty::Library* lib_;
};

charlib::Characterizer* PowerTest::chr_ = nullptr;
PowerModel* PowerTest::model_ = nullptr;
liberty::Library* PowerTest::lib_ = nullptr;

TEST_F(PowerTest, EnergyMonotoneInLoad) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  double prev = -1.0;
  for (double load = 0.0; load <= spec.maxLoad; load += spec.maxLoad / 8) {
    const double e = model_->transitionEnergy(spec, 0.05, load, {});
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_F(PowerTest, EnergyMonotoneInSlew) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kNand2, 1.0);
  double prev = -1.0;
  for (double slew = 0.0; slew <= 0.6; slew += 0.1) {
    const double e = model_->transitionEnergy(spec, slew, 0.01, {});
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_F(PowerTest, LoadChargingDominatedByPhysics) {
  // The charging term is C*V^2 regardless of the cell: two cells driving
  // the same extra load differ by the same energy delta.
  const charlib::CellSpec weak =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  const charlib::CellSpec strong =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 8.0);
  const double dWeak = model_->transitionEnergy(weak, 0.05, 0.02, {}) -
                       model_->transitionEnergy(weak, 0.05, 0.01, {});
  const double dStrong = model_->transitionEnergy(strong, 0.05, 0.02, {}) -
                         model_->transitionEnergy(strong, 0.05, 0.01, {});
  EXPECT_NEAR(dWeak, dStrong, 1e-12);
  // C*V^2: 0.01 pF * 1.21 V^2 = 12.1 fJ.
  EXPECT_NEAR(dWeak, 0.01 * 1.1 * 1.1 * 1e3, 1e-9);
}

TEST_F(PowerTest, ShortCircuitWorseForWeakCells) {
  const charlib::CellSpec weak =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  const charlib::CellSpec strong =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 8.0);
  const double slewCostWeak = model_->transitionEnergy(weak, 0.6, 0.01, {}) -
                              model_->transitionEnergy(weak, 0.0, 0.01, {});
  const double slewCostStrong =
      model_->transitionEnergy(strong, 0.6, 0.01, {}) -
      model_->transitionEnergy(strong, 0.0, 0.01, {});
  EXPECT_GT(slewCostWeak, slewCostStrong);
}

TEST_F(PowerTest, MismatchMovesEnergy) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  const double nominal = model_->transitionEnergy(spec, 0.2, 0.01, {});
  charlib::LocalDeltas slow{0.2, 0.2, 0.0};
  EXPECT_GT(model_->transitionEnergy(spec, 0.2, 0.01, slow), nominal);
}

TEST_F(PowerTest, DynamicPowerScalesWithActivityAndFrequency) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 2.0);
  const double base = model_->dynamicPower(spec, 0.05, 0.01, 0.1, 5.0);
  EXPECT_NEAR(model_->dynamicPower(spec, 0.05, 0.01, 0.2, 5.0), 2.0 * base,
              1e-12);
  EXPECT_NEAR(model_->dynamicPower(spec, 0.05, 0.01, 0.1, 2.5), 2.0 * base,
              1e-12);
}

TEST_F(PowerTest, PowerLutShapeMatchesDelayLut) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  const statlib::StatLut lut = buildPowerLut(*chr_, *model_, spec, 30, 11);
  EXPECT_EQ(lut.rows(), chr_->config().slewAxis.size());
  EXPECT_EQ(lut.cols(), chr_->config().loadFractions.size());
  // Sigma grows along slew (short-circuit mismatch) for fixed load.
  for (std::size_t c = 0; c < lut.cols(); ++c) {
    EXPECT_GT(lut.sigma().at(lut.rows() - 1, c), lut.sigma().at(0, c));
  }
}

TEST_F(PowerTest, PowerSigmaFollowsPelgrom) {
  const charlib::CellSpec weak =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 1.0);
  const charlib::CellSpec strong =
      chr_->model().makeSpec(liberty::CellFunction::kInv, 16.0);
  const statlib::StatLut weakLut = buildPowerLut(*chr_, *model_, weak, 40, 3);
  const statlib::StatLut strongLut =
      buildPowerLut(*chr_, *model_, strong, 40, 3);
  // At the same table index, the weak cell's short-circuit sigma relative
  // to its mean is larger.
  const double weakRel = weakLut.sigma().at(3, 1) / weakLut.mean().at(3, 1);
  const double strongRel =
      strongLut.sigma().at(3, 1) / strongLut.mean().at(3, 1);
  EXPECT_GT(weakRel, strongRel);
}

TEST_F(PowerTest, PowerLutDeterministicPerSeed) {
  const charlib::CellSpec spec =
      chr_->model().makeSpec(liberty::CellFunction::kXor2, 2.0);
  const statlib::StatLut a = buildPowerLut(*chr_, *model_, spec, 20, 5);
  const statlib::StatLut b = buildPowerLut(*chr_, *model_, spec, 20, 5);
  EXPECT_EQ(a.sigma(), b.sigma());
  EXPECT_EQ(a.mean(), b.mean());
}

TEST_F(PowerTest, PowerTuningProducesWindows) {
  const tuning::LibraryConstraints constraints =
      tuneLibraryOnPower(*chr_, *model_, /*energySigmaCeiling=*/1.0, 25, 7);
  EXPECT_GT(constraints.size(), 250u);
  // Tight ceiling restricts more than a loose one.
  const tuning::LibraryConstraints loose =
      tuneLibraryOnPower(*chr_, *model_, 5.0, 25, 7);
  const auto wTight = constraints.window("IV_1", "Z");
  const auto wLoose = loose.window("IV_1", "Z");
  ASSERT_TRUE(wTight.has_value());
  ASSERT_TRUE(wLoose.has_value());
  EXPECT_LE(wTight->maxSlew, wLoose->maxSlew);
}

TEST_F(PowerTest, DesignPowerAnalysis) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  ASSERT_TRUE(result.success());
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());
  const DesignPower power =
      analyzeDesignPower(result.design, sta, *chr_, *model_, 0.15, 30);
  EXPECT_GT(power.meanPower, 0.0);
  EXPECT_GT(power.sigmaPower, 0.0);
  EXPECT_LT(power.sigmaPower, power.meanPower);  // many independent cells
  EXPECT_EQ(power.cells, result.design.gateCount());
}

TEST_F(PowerTest, DesignPowerDeterministic) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(8), clock);
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());
  const DesignPower a =
      analyzeDesignPower(result.design, sta, *chr_, *model_, 0.15, 20);
  const DesignPower b =
      analyzeDesignPower(result.design, sta, *chr_, *model_, 0.15, 20);
  EXPECT_EQ(a.meanPower, b.meanPower);
  EXPECT_EQ(a.sigmaPower, b.sigmaPower);
}

}  // namespace
}  // namespace sct::power
