// Lint engine tests: one positive (rule fires on a seeded defect) and one
// negative (clean fixture stays silent) case per rule, the report renderers,
// the SCTB codec round-trip, the release-build netlist input validation, and
// the TuningFlow lint gate (fail fast in error mode, restored old behavior
// with lintMode off).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "artifact/binary_format.hpp"
#include "artifact/codecs.hpp"
#include "clocktree/clock_tree.hpp"
#include "core/flow.hpp"
#include "evo/params.hpp"
#include "liberty/liberty_io.hpp"
#include "lint/engine.hpp"
#include "lint/report_io.hpp"
#include "statlib/stat_library.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"

namespace sct {
namespace {

lint::LintReport lintLibrary(const liberty::Library& library) {
  lint::LintSubject subject;
  subject.library = &library;
  return lint::LintEngine::withAllRules().run(subject);
}

lint::LintReport lintStat(const statlib::StatLibrary& stat,
                          const liberty::Library* reference = nullptr) {
  lint::LintSubject subject;
  subject.statLibrary = &stat;
  subject.referenceLibrary = reference;
  return lint::LintEngine::withAllRules().run(subject);
}

lint::LintReport lintDesign(const netlist::Design& design,
                            const liberty::Library* reference = nullptr) {
  lint::LintSubject subject;
  subject.design = &design;
  subject.referenceLibrary = reference;
  return lint::LintEngine::withAllRules().run(subject);
}

lint::LintReport lintConstraints(const tuning::LibraryConstraints& constraints,
                                 const liberty::Library* reference = nullptr) {
  lint::LintSubject subject;
  subject.constraints = &constraints;
  subject.referenceLibrary = reference;
  return lint::LintEngine::withAllRules().run(subject);
}

/// Stat library merged from two identical tiny-library instances: valid
/// grids, zero sigma, sample count 2.
statlib::StatLibrary makeTinyStatLibrary() {
  std::vector<liberty::Library> instances;
  instances.push_back(test::makeTinyLibrary());
  instances.push_back(test::makeTinyLibrary());
  return statlib::buildStatLibrary(instances);
}

// ---- liberty pack --------------------------------------------------------

TEST(LintLibertyTest, CleanLibraryHasNoFindings) {
  const liberty::Library library = test::makeTinyLibrary();
  const lint::LintReport report = lintLibrary(library);
  EXPECT_TRUE(report.empty()) << lint::writeTextToString(report);
}

TEST(LintLibertyTest, AxisOrderDetectsDisorderedAxis) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("INV_1");
  ASSERT_NE(cell, nullptr);
  cell->arcs()[0].riseDelay =
      test::linearLut({0.01, 0.4, 0.1}, test::tinyLoadAxis(), 0.01, 0.1, 4.0);
  const lint::LintReport report = lintLibrary(library);
  EXPECT_TRUE(report.hasRule("lib.axis.order"));
  EXPECT_TRUE(report.hasErrors());
}

TEST(LintLibertyTest, AxisOrderDetectsDuplicateBreakpoint) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("INV_1");
  ASSERT_NE(cell, nullptr);
  cell->arcs()[0].fallDelay =
      test::linearLut(test::tinySlewAxis(), {0.001, 0.01, 0.01}, 0.01, 0.1,
                      4.0);
  const lint::LintReport report = lintLibrary(library);
  ASSERT_TRUE(report.hasRule("lib.axis.order"));
  bool sawDuplicate = false;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.ruleId == "lib.axis.order" &&
        d.message.find("duplicate") != std::string::npos) {
      sawDuplicate = true;
    }
  }
  EXPECT_TRUE(sawDuplicate);
}

TEST(LintLibertyTest, ValueInvalidDetectsNegativeAndNaNEntries) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("ND2_1");
  ASSERT_NE(cell, nullptr);
  cell->arcs()[0].riseDelay.at(0, 0) = -0.25;
  cell->arcs()[1].fallDelay.at(1, 1) = std::nan("");
  const lint::LintReport report = lintLibrary(library);
  std::size_t findings = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.ruleId == "lib.value.invalid") ++findings;
  }
  EXPECT_EQ(findings, 2u);
  EXPECT_EQ(report.diagnostics()[0].severity, lint::Severity::kError);
}

TEST(LintLibertyTest, MonotoneLoadWarnsOnDecreasingDelayRow) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("BF_2");
  ASSERT_NE(cell, nullptr);
  // Negative load coefficient: delay shrinks as load grows.
  cell->arcs()[0].riseDelay = test::linearLut(
      test::tinySlewAxis(), test::tinyLoadAxis(), 0.5, 0.1, -4.0);
  const lint::LintReport report = lintLibrary(library);
  EXPECT_TRUE(report.hasRule("lib.lut.monotone-load"));
  EXPECT_FALSE(report.hasErrors());  // warning severity only
  EXPECT_EQ(report.warningCount(), 1u);
}

TEST(LintLibertyTest, MissingArcDetectsArclessOutputAndBadPinRefs) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("INV_1");
  ASSERT_NE(cell, nullptr);
  liberty::Pin orphan;
  orphan.name = "Y";
  orphan.direction = liberty::PinDirection::kOutput;
  cell->addPin(std::move(orphan));
  liberty::Cell* other = library.findCell("INV_4");
  ASSERT_NE(other, nullptr);
  other->arcs()[0].relatedPin = "NO_SUCH_PIN";
  const lint::LintReport report = lintLibrary(library);
  std::size_t findings = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.ruleId == "lib.pin.missing-arc") ++findings;
  }
  EXPECT_EQ(findings, 2u);
}

TEST(LintLibertyTest, MissingArcSkipsTieCells) {
  liberty::Library library = test::makeTinyLibrary();
  // Tie cells have an arc-less output and no inputs; that is legitimate.
  liberty::Cell tie("TIE1", liberty::CellFunction::kTieHi, 1.0, 0.5);
  liberty::Pin out;
  out.name = "Z";
  out.direction = liberty::PinDirection::kOutput;
  tie.addPin(std::move(out));
  library.addCell(std::move(tie));
  const lint::LintReport report = lintLibrary(library);
  EXPECT_FALSE(report.hasRule("lib.pin.missing-arc"))
      << lint::writeTextToString(report);
}

TEST(LintLibertyTest, LutShapeDetectsAxisSkewBetweenTables) {
  liberty::Library library = test::makeTinyLibrary();
  liberty::Cell* cell = library.findCell("INV_1");
  ASSERT_NE(cell, nullptr);
  cell->arcs()[0].riseTransition =
      test::linearLut({0.02, 0.2, 0.8}, test::tinyLoadAxis(), 0.01, 0.05, 3.0);
  const lint::LintReport report = lintLibrary(library);
  EXPECT_TRUE(report.hasRule("lib.lut.shape"));
}

// ---- statlib pack --------------------------------------------------------

TEST(LintStatLibTest, CleanStatLibraryHasNoFindings) {
  const liberty::Library nominal = test::makeTinyLibrary();
  const statlib::StatLibrary stat = makeTinyStatLibrary();
  const lint::LintReport report = lintStat(stat, &nominal);
  EXPECT_TRUE(report.empty()) << lint::writeTextToString(report);
}

TEST(LintStatLibTest, DetectsNegativeSigmaAndNaNMean) {
  statlib::StatLibrary stat("corrupt");
  stat.setSampleCount(5);
  statlib::StatCell cell("INV_1", liberty::CellFunction::kInv, 1.0, 1.0);
  statlib::StatArc arc;
  arc.relatedPin = "A";
  arc.outputPin = "Z";
  arc.rise = statlib::StatLut(test::tinySlewAxis(), test::tinyLoadAxis());
  arc.fall = statlib::StatLut(test::tinySlewAxis(), test::tinyLoadAxis());
  arc.rise.sigma().at(0, 0) = -0.5;
  arc.fall.mean().at(1, 2) = std::nan("");
  cell.addArc(std::move(arc));
  stat.addCell(std::move(cell));
  const lint::LintReport report = lintStat(stat);
  EXPECT_TRUE(report.hasRule("stat.sigma.invalid"));
  EXPECT_TRUE(report.hasRule("stat.mean.invalid"));
}

TEST(LintStatLibTest, WarnsWhenSigmaExceedsMean) {
  statlib::StatLibrary stat("suspicious");
  stat.setSampleCount(5);
  statlib::StatCell cell("INV_1", liberty::CellFunction::kInv, 1.0, 1.0);
  statlib::StatArc arc;
  arc.relatedPin = "A";
  arc.outputPin = "Z";
  arc.rise = statlib::StatLut(test::tinySlewAxis(), test::tinyLoadAxis());
  arc.fall = statlib::StatLut(test::tinySlewAxis(), test::tinyLoadAxis());
  arc.rise.mean().at(0, 0) = 0.1;
  arc.rise.sigma().at(0, 0) = 0.4;
  cell.addArc(std::move(arc));
  stat.addCell(std::move(cell));
  const lint::LintReport report = lintStat(stat);
  EXPECT_TRUE(report.hasRule("stat.sigma.exceeds-mean"));
  EXPECT_FALSE(report.hasErrors());
}

TEST(LintStatLibTest, DetectsInsufficientSampleCount) {
  std::vector<liberty::Library> one;
  one.push_back(test::makeTinyLibrary());
  const statlib::StatLibrary stat = statlib::buildStatLibrary(one);
  const lint::LintReport report = lintStat(stat);
  EXPECT_TRUE(report.hasRule("stat.samples.insufficient"));
}

TEST(LintStatLibTest, DetectsGridMismatchAgainstNominal) {
  const statlib::StatLibrary stat = makeTinyStatLibrary();
  liberty::Library nominal = test::makeTinyLibrary();
  liberty::Cell* cell = nominal.findCell("INV_1");
  ASSERT_NE(cell, nullptr);
  cell->arcs()[0].riseDelay =
      test::linearLut({0.05, 0.5, 2.0}, test::tinyLoadAxis(), 0.01, 0.1, 4.0);
  const lint::LintReport report = lintStat(stat, &nominal);
  EXPECT_TRUE(report.hasRule("stat.grid.mismatch"));
}

TEST(LintStatLibTest, DetectsCellMissingFromNominal) {
  const statlib::StatLibrary stat = makeTinyStatLibrary();
  liberty::Library nominal("sparse");
  nominal.addCell(test::makeSimpleCell("INV_1", liberty::CellFunction::kInv,
                                       1.0, 1.0, 0.001, 0.010, 0.1, 4.0));
  const lint::LintReport report = lintStat(stat, &nominal);
  EXPECT_TRUE(report.hasRule("stat.grid.mismatch"));
}

// ---- netlist pack --------------------------------------------------------

TEST(LintNetlistTest, CleanChainHasNoFindings) {
  const netlist::Design design = test::makeInvChain(3);
  const lint::LintReport report = lintDesign(design);
  EXPECT_TRUE(report.empty()) << lint::writeTextToString(report);
}

TEST(LintNetlistTest, DetectsCombinationalLoop) {
  netlist::Design design("loop");
  const netlist::NetIndex a = design.addNet("a");
  const netlist::NetIndex b = design.addNet("b");
  design.addInstance("u1", netlist::PrimOp::kInv, {b}, {a});
  design.addInstance("u2", netlist::PrimOp::kInv, {a}, {b});
  const lint::LintReport report = lintDesign(design);
  EXPECT_TRUE(report.hasRule("net.comb-loop"));
}

TEST(LintNetlistTest, DetectsMultiDriverNet) {
  netlist::Design design("multi");
  netlist::NetlistBuilder b(design);
  const netlist::NetIndex in = b.inputPort("din");
  const netlist::NetIndex shared = b.inv(in);
  b.outputPort("dout", shared);
  // addInstance rejects double-driving, so wire the corruption the way a
  // broken deserializer would: raw instance insertion.
  design.addInstanceRaw(netlist::Instance{
      "rogue", netlist::PrimOp::kInv, nullptr, {in}, {shared}, true});
  const lint::LintReport report = lintDesign(design);
  EXPECT_TRUE(report.hasRule("net.multi-driver"));
}

TEST(LintNetlistTest, DetectsFloatingInput) {
  netlist::Design design("float");
  const netlist::NetIndex undriven = design.addNet("undriven");
  const netlist::NetIndex out = design.addNet("out");
  design.addInstance("u1", netlist::PrimOp::kInv, {undriven}, {out});
  design.addPort("dout", netlist::PortDirection::kOutput, out);
  const lint::LintReport report = lintDesign(design);
  EXPECT_TRUE(report.hasRule("net.floating-input"));
}

TEST(LintNetlistTest, WarnsOnDanglingOutput) {
  netlist::Design design("dangle");
  netlist::NetlistBuilder b(design);
  const netlist::NetIndex in = b.inputPort("din");
  b.inv(in);  // output net never consumed, never a primary output
  const lint::LintReport report = lintDesign(design);
  EXPECT_TRUE(report.hasRule("net.dangling-output"));
  EXPECT_FALSE(report.hasErrors());
}

TEST(LintNetlistTest, DetectsCellMissingFromReferenceLibrary) {
  const liberty::Library reference = test::makeTinyLibrary();
  liberty::Library foreign("foreign");
  const liberty::Cell* alien =
      foreign.addCell(test::makeSimpleCell("ALIEN_9", liberty::CellFunction::kInv,
                                           1.0, 1.0, 0.001, 0.010, 0.1, 4.0));
  netlist::Design design("mapped");
  netlist::NetlistBuilder b(design);
  const netlist::NetIndex in = b.inputPort("din");
  const netlist::NetIndex out = b.inv(in);
  b.outputPort("dout", out);
  design.bindCell(design.net(out).driver, alien);
  const lint::LintReport report = lintDesign(design, &reference);
  EXPECT_TRUE(report.hasRule("net.unknown-cell"));
}

// Regression for the latent release-build bug the netlist rules exposed:
// addInstance used to accept corrupt wiring with assert() only, so release
// builds silently produced multi-driven nets.
TEST(LintNetlistTest, AddInstanceRejectsCorruptWiring) {
  netlist::Design design("guarded");
  const netlist::NetIndex in = design.addNet("in");
  const netlist::NetIndex out = design.addNet("out");
  design.addPort("din", netlist::PortDirection::kInput, in);
  design.addPort("dout", netlist::PortDirection::kOutput, out);
  design.addInstance("u1", netlist::PrimOp::kInv, {in}, {out});
  // Second driver of `out`.
  EXPECT_THROW(design.addInstance("u2", netlist::PrimOp::kInv, {in}, {out}),
               std::invalid_argument);
  // Wrong connection counts for the op.
  EXPECT_THROW(design.addInstance("u3", netlist::PrimOp::kNand2, {in},
                                  {design.addNet("x")}),
               std::invalid_argument);
  // Out-of-range net index.
  EXPECT_THROW(design.addInstance("u4", netlist::PrimOp::kInv, {999},
                                  {design.addNet("y")}),
               std::invalid_argument);
  // The rejected instances must not have corrupted the design.
  EXPECT_EQ(design.validate(), "");
  EXPECT_FALSE(lintDesign(design).hasErrors());
}

// ---- constraints pack ----------------------------------------------------

TEST(LintConstraintsTest, CleanTunedConstraintsHaveNoErrors) {
  const liberty::Library nominal = test::makeTinyLibrary();
  const statlib::StatLibrary stat = makeTinyStatLibrary();
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      stat, tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                            1.0));
  const lint::LintReport report = lintConstraints(constraints, &nominal);
  EXPECT_FALSE(report.hasErrors()) << lint::writeTextToString(report);
}

TEST(LintConstraintsTest, DetectsInvertedWindow) {
  tuning::LibraryConstraints constraints;
  tuning::CellConstraint cc;
  cc.pinWindows["Z"] = tuning::PinWindow{0.5, 0.1, 0.0, 0.01};
  constraints.setCell("INV_1", std::move(cc));
  const lint::LintReport report = lintConstraints(constraints);
  EXPECT_TRUE(report.hasRule("cst.window.inverted"));
}

TEST(LintConstraintsTest, DetectsWindowOutsideCharacterizedRange) {
  const liberty::Library nominal = test::makeTinyLibrary();
  tuning::LibraryConstraints constraints;
  tuning::CellConstraint cc;
  // tinySlewAxis tops out at 0.4; a window to 9.0 is outside the tables.
  cc.pinWindows["Z"] = tuning::PinWindow{0.0, 9.0, 0.0, 0.01};
  constraints.setCell("INV_1", std::move(cc));
  const lint::LintReport report = lintConstraints(constraints, &nominal);
  EXPECT_TRUE(report.hasRule("cst.window.out-of-range"));
}

TEST(LintConstraintsTest, WarnsWhenWindowExcludesEveryGridPoint) {
  const liberty::Library nominal = test::makeTinyLibrary();
  tuning::LibraryConstraints constraints;
  tuning::CellConstraint cc;
  // Slew window strictly between breakpoints 0.01 and 0.1.
  cc.pinWindows["Z"] = tuning::PinWindow{0.02, 0.05, 0.0, 0.01};
  constraints.setCell("INV_1", std::move(cc));
  const lint::LintReport report = lintConstraints(constraints, &nominal);
  EXPECT_TRUE(report.hasRule("cst.window.no-grid-point"));
}

TEST(LintConstraintsTest, DetectsUnknownCellPinAndNonOutputPin) {
  const liberty::Library nominal = test::makeTinyLibrary();
  tuning::LibraryConstraints constraints;
  tuning::CellConstraint unknownCell;
  unknownCell.pinWindows["Z"] = tuning::PinWindow{0.0, 0.1, 0.0, 0.01};
  constraints.setCell("NO_SUCH_CELL", std::move(unknownCell));
  tuning::CellConstraint badPins;
  badPins.pinWindows["QQ"] = tuning::PinWindow{0.0, 0.1, 0.0, 0.01};
  badPins.pinWindows["A"] = tuning::PinWindow{0.0, 0.1, 0.0, 0.01};
  constraints.setCell("INV_1", std::move(badPins));
  const lint::LintReport report = lintConstraints(constraints, &nominal);
  std::size_t findings = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.ruleId == "cst.unknown-cell") ++findings;
  }
  EXPECT_EQ(findings, 3u);
}

// ---- clock pack ----------------------------------------------------------

lint::LintReport lintClock(const clocktree::TuningElementSpec& spec,
                           const clocktree::ClockTree* tree = nullptr) {
  lint::LintSubject subject;
  subject.clockTuning = &spec;
  subject.clockTree = tree;
  return lint::LintEngine::withAllRules().run(subject);
}

TEST(LintClockTest, CleanElementSpecHasNoFindings) {
  const clocktree::TuningElementSpec spec{0.0, 0.3, 0.05, 2.0};
  const lint::LintReport report = lintClock(spec);
  EXPECT_TRUE(report.empty()) << lint::writeTextToString(report);
}

TEST(LintClockTest, DetectsInvertedAndNegativeRange) {
  const lint::LintReport inverted =
      lintClock(clocktree::TuningElementSpec{0.3, 0.0, 0.05, 2.0});
  EXPECT_TRUE(inverted.hasRule("cst.clock.range-inverted"));
  EXPECT_TRUE(inverted.hasErrors());
  const lint::LintReport negative =
      lintClock(clocktree::TuningElementSpec{-0.1, 0.3, 0.05, 2.0});
  EXPECT_TRUE(negative.hasRule("cst.clock.range-inverted"));
}

TEST(LintClockTest, DetectsNonPositiveStep) {
  const lint::LintReport report =
      lintClock(clocktree::TuningElementSpec{0.0, 0.3, 0.0, 2.0});
  EXPECT_TRUE(report.hasRule("cst.clock.step-nonpositive"));
  EXPECT_TRUE(report.hasErrors());
}

TEST(LintClockTest, WarnsOnStepCoarserThanRange) {
  const lint::LintReport report =
      lintClock(clocktree::TuningElementSpec{0.0, 0.1, 0.5, 2.0});
  EXPECT_TRUE(report.hasRule("cst.clock.step-coarse"));
  EXPECT_FALSE(report.hasErrors());
}

TEST(LintClockTest, WarnsWhenRangeBelowTreeSkewOnlyWithTreeContext) {
  // One-level tree with a large per-buffer sigma: the worst skew between
  // disjoint chains dwarfs the element's 0.3 ns span.
  clocktree::ClockTree tree;
  clocktree::TreeLevel level;
  level.bufferCount = 2;
  level.delaySigma = 1.0;
  tree.levels.push_back(level);
  tree.sinkCount = 2;
  ASSERT_GT(tree.worstSkewSigma(), 0.3);

  const clocktree::TuningElementSpec spec{0.0, 0.3, 0.05, 2.0};
  const lint::LintReport with = lintClock(spec, &tree);
  EXPECT_TRUE(with.hasRule("cst.clock.range-below-skew"));
  EXPECT_FALSE(with.hasErrors());
  // Without tree context the cross-check degrades to skipped.
  EXPECT_TRUE(lintClock(spec).empty());
}

// ---- evo pack ------------------------------------------------------------

lint::LintReport lintEvolve(const evo::EvolveParams& params) {
  lint::LintSubject subject;
  subject.evolveParams = &params;
  return lint::LintEngine::withAllRules().run(subject);
}

TEST(LintEvoTest, DefaultParamsAreClean) {
  const evo::EvolveParams params;
  const lint::LintReport report = lintEvolve(params);
  EXPECT_TRUE(report.empty()) << lint::writeTextToString(report);
}

TEST(LintEvoTest, DetectsDegeneratePopulationAndGenerations) {
  evo::EvolveParams params;
  params.population = 1;
  params.generations = 0;
  const lint::LintReport report = lintEvolve(params);
  EXPECT_TRUE(report.hasRule("evo.population.too-small"));
  EXPECT_TRUE(report.hasRule("evo.generations.zero"));
  EXPECT_TRUE(report.hasErrors());
}

TEST(LintEvoTest, DetectsInvalidObjectiveSets) {
  evo::EvolveParams unknown;
  unknown.objectives = "sigma,yield";
  EXPECT_TRUE(lintEvolve(unknown).hasRule("evo.objectives.invalid"));
  evo::EvolveParams empty;
  empty.objectives = "";
  EXPECT_TRUE(lintEvolve(empty).hasRule("evo.objectives.invalid"));
  evo::EvolveParams subset;
  subset.objectives = "area,sigma";
  EXPECT_FALSE(lintEvolve(subset).hasRule("evo.objectives.invalid"));
}

TEST(LintEvoTest, DetectsInvertedOrNonFiniteGeneBounds) {
  evo::EvolveParams inverted;
  inverted.geneMin = 0.06;
  inverted.geneMax = 0.002;
  EXPECT_TRUE(lintEvolve(inverted).hasRule("evo.gene-bounds.inverted"));
  evo::EvolveParams negative;
  negative.geneMin = -0.01;
  EXPECT_TRUE(lintEvolve(negative).hasRule("evo.gene-bounds.inverted"));
  evo::EvolveParams nan;
  nan.geneMax = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(lintEvolve(nan).hasRule("evo.gene-bounds.inverted"));
}

// ---- engine + report plumbing --------------------------------------------

TEST(LintEngineTest, PackSelectionSkipsUncarriedAndUnselectedPacks) {
  liberty::Library library = test::makeTinyLibrary();
  library.findCell("INV_1")->arcs()[0].riseDelay.at(0, 0) = -1.0;
  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  lint::LintSubject subject;
  subject.library = &library;
  // Netlist pack selected but not carried: nothing runs.
  EXPECT_TRUE(
      engine.run(subject, lint::packBit(lint::RulePack::kNetlist)).empty());
  // Liberty pack selected and carried: the seeded defect is found.
  EXPECT_TRUE(engine.run(subject, lint::packBit(lint::RulePack::kLiberty))
                  .hasRule("lib.value.invalid"));
}

TEST(LintReportTest, SummaryAndCountsTrackSeverities) {
  lint::LintReport report;
  report.add({"a.b", lint::Severity::kError, "x", "m1"});
  report.add({"c.d", lint::Severity::kWarning, "y", "m2"});
  report.add({"e.f", lint::Severity::kInfo, "z", "m3"});
  EXPECT_EQ(report.errorCount(), 1u);
  EXPECT_EQ(report.warningCount(), 1u);
  EXPECT_EQ(report.infoCount(), 1u);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_EQ(report.summary(), "1 error, 1 warning, 1 info");
}

TEST(LintReportTest, RenderersContainRuleIdsInAllThreeFormats) {
  liberty::Library library = test::makeTinyLibrary();
  library.findCell("INV_1")->arcs()[0].riseDelay.at(0, 0) = -1.0;
  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  lint::LintSubject subject;
  subject.library = &library;
  const lint::LintReport report = engine.run(subject);
  ASSERT_TRUE(report.hasRule("lib.value.invalid"));

  const std::string text = lint::writeTextToString(report);
  EXPECT_NE(text.find("error: [lib.value.invalid]"), std::string::npos);
  EXPECT_NE(text.find("lib/INV_1/Z/cell_rise"), std::string::npos);

  const std::string json = lint::writeJsonToString(report);
  EXPECT_NE(json.find("\"rule\": \"lib.value.invalid\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);

  const std::string sarif = lint::writeSarifToString(report, &engine);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lib.value.invalid\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"lib/INV_1/Z/cell_rise\""),
            std::string::npos);
}

TEST(LintReportTest, JsonEscapesControlCharacters) {
  lint::LintReport report;
  report.add({"a.b", lint::Severity::kError, "path\"with\\quote",
              "line1\nline2"});
  const std::string json = lint::writeJsonToString(report);
  EXPECT_NE(json.find("path\\\"with\\\\quote"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

TEST(LintCodecTest, ReportRoundTripsThroughSctb) {
  lint::LintReport report;
  report.add({"lib.axis.order", lint::Severity::kError, "lib/X/Z/cell_rise",
              "broken axis"});
  report.add({"net.dangling-output", lint::Severity::kWarning, "design/u1/out0",
              "dead logic"});
  artifact::SctbWriter writer;
  artifact::encodeLintReport(writer, report);
  const artifact::SctbReader reader =
      artifact::SctbReader::fromBytes(writer.finish());
  const lint::LintReport back = artifact::decodeLintReport(reader);
  ASSERT_EQ(back.size(), report.size());
  EXPECT_EQ(back.diagnostics(), report.diagnostics());
  EXPECT_EQ(back.errorCount(), 1u);
  EXPECT_EQ(back.warningCount(), 1u);
}

// ---- flow gate -----------------------------------------------------------

/// Minimal (2x2 grid) flow config; `goodAxes` selects between a clean and a
/// deliberately corrupted characterization (decreasing slew axis, which
/// produces unordered LUT axes in every characterized cell).
core::FlowConfig gateConfig(bool goodAxes) {
  core::FlowConfig config;
  config.characterization.slewAxis =
      goodAxes ? numeric::Axis{0.02, 0.6} : numeric::Axis{0.6, 0.02};
  config.characterization.loadFractions = {0.1, 1.0};
  config.mcLibraryCount = 2;
  return config;
}

TEST(LintFlowGateTest, ErrorModeFailsFastOnCorruptLibrary) {
  core::TuningFlow flow(gateConfig(false));
  try {
    (void)flow.nominalLibrary();
    FAIL() << "lint gate should have thrown";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("lint gate failed at stage 'nominal'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("lib.axis.order"), std::string::npos) << message;
  }
}

TEST(LintFlowGateTest, OffModeRestoresOldBehavior) {
  core::FlowConfig config = gateConfig(false);
  config.lintMode = core::LintMode::kOff;
  core::TuningFlow flow(config);
  // Same corrupt characterization, no gate: the library is served as-is.
  const liberty::Library& library = flow.nominalLibrary();
  EXPECT_FALSE(library.cells().empty());
}

TEST(LintFlowGateTest, CleanFlowPassesInErrorMode) {
  core::TuningFlow flow(gateConfig(true));
  EXPECT_FALSE(flow.nominalLibrary().cells().empty());
  EXPECT_GT(flow.statLibrary().size(), 0u);
  EXPECT_GT(flow.subject().gateCount(), 0u);
}

TEST(LintFlowGateTest, ErrorAndOffModeProduceIdenticalLibraries) {
  core::TuningFlow gated(gateConfig(true));
  core::FlowConfig offConfig = gateConfig(true);
  offConfig.lintMode = core::LintMode::kOff;
  core::TuningFlow ungated(offConfig);
  EXPECT_EQ(liberty::writeLibraryToString(gated.nominalLibrary()),
            liberty::writeLibraryToString(ungated.nominalLibrary()));
}

}  // namespace
}  // namespace sct
