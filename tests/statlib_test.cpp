// Unit tests for the statistical library (paper section IV, Fig. 2):
// entry-wise merge of N Monte-Carlo library instances into mean/sigma LUTs.

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterizer.hpp"
#include "statlib/stat_library.hpp"
#include "test_helpers.hpp"

namespace sct::statlib {
namespace {

/// Builds `n` copies of the tiny library whose LUT entries are shifted by a
/// known per-instance offset, giving closed-form mean/sigma.
std::vector<liberty::Library> shiftedLibraries(std::size_t n) {
  std::vector<liberty::Library> libs;
  for (std::size_t k = 0; k < n; ++k) {
    liberty::Library lib = test::makeTinyLibrary();
    const double offset = 0.01 * static_cast<double>(k);
    for (liberty::Cell* cell : lib.cells()) {
      for (liberty::TimingArc& arc : cell->arcs()) {
        for (liberty::Lut* lut :
             {&arc.riseDelay, &arc.fallDelay}) {
          for (double& v : lut->values().flat()) v += offset;
        }
      }
    }
    libs.push_back(std::move(lib));
  }
  return libs;
}

TEST(StatLibrary, MeanAndSigmaMatchClosedForm) {
  // Offsets 0.00, 0.01, 0.02: mean shift = 0.01, sample sigma = 0.01.
  const auto libs = shiftedLibraries(3);
  const StatLibrary stat = buildStatLibrary(libs);
  EXPECT_EQ(stat.size(), libs[0].size());
  EXPECT_EQ(stat.sampleCount(), 3u);

  const StatCell* inv = stat.findCell("INV_1");
  ASSERT_NE(inv, nullptr);
  const StatArc* arc = inv->findArc("A", "Z");
  ASSERT_NE(arc, nullptr);
  const liberty::Lut& nominal =
      libs[0].findCell("INV_1")->arcs()[0].riseDelay;
  for (std::size_t r = 0; r < nominal.rows(); ++r) {
    for (std::size_t c = 0; c < nominal.cols(); ++c) {
      EXPECT_NEAR(arc->rise.mean().at(r, c), nominal.at(r, c) + 0.01, 1e-12);
      EXPECT_NEAR(arc->rise.sigma().at(r, c), 0.01, 1e-12);
    }
  }
}

TEST(StatLibrary, SingleInstanceHasZeroSigma) {
  const auto libs = shiftedLibraries(1);
  const StatLibrary stat = buildStatLibrary(libs);
  const StatCell* inv = stat.findCell("INV_4");
  ASSERT_NE(inv, nullptr);
  EXPECT_DOUBLE_EQ(inv->arcs()[0].rise.sigma().maxValue(), 0.0);
}

TEST(StatLibrary, EmptyInputThrows) {
  EXPECT_THROW((void)buildStatLibrary({}), std::invalid_argument);
}

TEST(StatLibrary, MissingCellThrows) {
  std::vector<liberty::Library> libs = shiftedLibraries(2);
  liberty::Library extra("other");
  extra.addCell(test::makeSimpleCell("ONLY_1", liberty::CellFunction::kInv,
                                     1.0, 1.0, 0.001, 0.01, 0.1, 2.0));
  libs.push_back(std::move(extra));
  EXPECT_THROW((void)buildStatLibrary(libs), std::invalid_argument);
}

TEST(StatLibrary, ShapeMismatchThrows) {
  std::vector<liberty::Library> libs = shiftedLibraries(2);
  // Rebuild the second library with a different LUT shape for INV_1.
  liberty::Library odd("odd");
  for (const liberty::Cell* cell : libs[1].cells()) {
    if (cell->name() != "INV_1") {
      liberty::Cell copy = *cell;
      odd.addCell(std::move(copy));
      continue;
    }
    liberty::Cell weird("INV_1", liberty::CellFunction::kInv, 1.0, 1.0);
    liberty::TimingArc arc;
    arc.relatedPin = "A";
    arc.outputPin = "Z";
    arc.riseDelay = test::linearLut({0.01, 0.4}, {0.001, 0.05}, 0.01, 0.1, 4.0);
    arc.fallDelay = arc.riseDelay;
    arc.riseTransition = arc.riseDelay;
    arc.fallTransition = arc.riseDelay;
    weird.addArc(std::move(arc));
    odd.addCell(std::move(weird));
  }
  libs[1] = std::move(odd);
  EXPECT_THROW((void)buildStatLibrary(libs), std::invalid_argument);
}

TEST(StatLut, LookupInterpolatesBothSurfaces) {
  StatLut lut({0.0, 1.0}, {0.0, 2.0});
  lut.mean().at(0, 0) = 1.0;
  lut.mean().at(0, 1) = 3.0;
  lut.mean().at(1, 0) = 2.0;
  lut.mean().at(1, 1) = 4.0;
  lut.sigma().at(0, 0) = 0.1;
  lut.sigma().at(0, 1) = 0.3;
  lut.sigma().at(1, 0) = 0.2;
  lut.sigma().at(1, 1) = 0.4;
  const numeric::NormalSummary mid = lut.lookup(0.5, 1.0);
  EXPECT_NEAR(mid.mean, 2.5, 1e-12);
  EXPECT_NEAR(mid.sigma, 0.25, 1e-12);
}

TEST(StatArc, WorstDelayStatsUsesSlowerEdge) {
  StatArc arc;
  arc.rise = StatLut({0.0, 1.0}, {0.0, 1.0});
  arc.fall = StatLut({0.0, 1.0}, {0.0, 1.0});
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      arc.rise.mean().at(r, c) = 1.0;
      arc.rise.sigma().at(r, c) = 0.5;
      arc.fall.mean().at(r, c) = 2.0;  // fall is slower
      arc.fall.sigma().at(r, c) = 0.1;
    }
  }
  const numeric::NormalSummary worst = arc.worstDelayStats(0.5, 0.5);
  EXPECT_DOUBLE_EQ(worst.mean, 2.0);
  EXPECT_DOUBLE_EQ(worst.sigma, 0.1);  // sigma of the chosen edge
}

TEST(StatCell, MaxSigmaLutTakesWorstOverArcsAndEdges) {
  const auto libs = shiftedLibraries(3);
  const StatLibrary stat = buildStatLibrary(libs);
  const StatCell* nand = stat.findCell("ND2_1");
  ASSERT_NE(nand, nullptr);
  ASSERT_EQ(nand->arcs().size(), 2u);
  const StatLut max = nand->maxSigmaLut();
  for (std::size_t r = 0; r < max.rows(); ++r) {
    for (std::size_t c = 0; c < max.cols(); ++c) {
      double expected = 0.0;
      for (const StatArc& arc : nand->arcs()) {
        expected = std::max(expected, arc.rise.sigma().at(r, c));
        expected = std::max(expected, arc.fall.sigma().at(r, c));
      }
      EXPECT_DOUBLE_EQ(max.sigma().at(r, c), expected);
    }
  }
}

TEST(StatCell, OutputPinsDeduplicated) {
  const auto libs = shiftedLibraries(2);
  const StatLibrary stat = buildStatLibrary(libs);
  const StatCell* nand = stat.findCell("ND2_1");
  ASSERT_NE(nand, nullptr);
  EXPECT_EQ(nand->outputPins(), std::vector<std::string>{"Z"});
}

TEST(StatLibrary, StrengthClusters) {
  const auto libs = shiftedLibraries(2);
  const StatLibrary stat = buildStatLibrary(libs);
  const auto clusters = stat.strengthClusters();
  EXPECT_EQ(clusters.at(1.0).size(), 3u);
  EXPECT_EQ(clusters.at(4.0).size(), 1u);
  EXPECT_EQ(clusters.at(2.0).size(), 1u);
}

// ------------------------- integration with the characterizer ------------

class StatFromCharacterizerTest : public ::testing::Test {
 protected:
  StatFromCharacterizerTest()
      : chr_(test::makeSmallCharacterizer()),
        libs_(chr_.characterizeMonteCarlo(charlib::ProcessCorner::typical(),
                                          40, 99)),
        stat_(buildStatLibrary(libs_)) {}

  charlib::Characterizer chr_;
  std::vector<liberty::Library> libs_;
  StatLibrary stat_;
};

TEST_F(StatFromCharacterizerTest, SigmaFollowsPelgromAcrossStrengths) {
  // Paper Fig. 4: higher drive strength => lower sigma everywhere.
  const StatLut weak = stat_.findCell("IV_1")->maxSigmaLut();
  const StatLut strong = stat_.findCell("IV_32")->maxSigmaLut();
  // Compare at the same table indices (same relative load).
  for (std::size_t r = 0; r < weak.rows(); ++r) {
    for (std::size_t c = 0; c < weak.cols(); ++c) {
      EXPECT_GT(weak.sigma().at(r, c), strong.sigma().at(r, c));
    }
  }
}

TEST_F(StatFromCharacterizerTest, SigmaGrowsWithLoad) {
  const StatLut lut = stat_.findCell("IV_1")->maxSigmaLut();
  for (std::size_t r = 0; r < lut.rows(); ++r) {
    EXPECT_GT(lut.sigma().at(r, lut.cols() - 1), lut.sigma().at(r, 0));
  }
}

TEST_F(StatFromCharacterizerTest, SigmaGrowsWithSlewAtHighLoad) {
  const StatLut lut = stat_.findCell("IV_1")->maxSigmaLut();
  const std::size_t lastCol = lut.cols() - 1;
  EXPECT_GT(lut.sigma().at(lut.rows() - 1, lastCol), lut.sigma().at(0, lastCol));
}

TEST_F(StatFromCharacterizerTest, MeanTracksNominal) {
  const liberty::Library nominal =
      chr_.characterizeNominal(charlib::ProcessCorner::typical());
  const liberty::Lut& nom = nominal.findCell("ND2_2")->arcs()[0].riseDelay;
  const StatArc* arc = stat_.findCell("ND2_2")->findArc("A", "Z");
  ASSERT_NE(arc, nullptr);
  for (std::size_t r = 0; r < nom.rows(); ++r) {
    for (std::size_t c = 0; c < nom.cols(); ++c) {
      // 40 samples: the mean should track the nominal within a few sigma of
      // the mean estimator.
      const double tolerance =
          5.0 * arc->rise.sigma().at(r, c) / std::sqrt(40.0) + 1e-9;
      EXPECT_NEAR(arc->rise.mean().at(r, c), nom.at(r, c), tolerance);
    }
  }
}

TEST_F(StatFromCharacterizerTest, SigmaRatioMatchesPelgromPrediction) {
  // localSigma(IV_1) / localSigma(IV_4) = 2; the delay sigma at the same
  // table index is dominated by the drive term, so the ratio carries over
  // approximately.
  const StatLut s1 = stat_.findCell("IV_1")->maxSigmaLut();
  const StatLut s4 = stat_.findCell("IV_4")->maxSigmaLut();
  const double ratio = s1.sigma().at(2, 3) / s4.sigma().at(2, 3);
  EXPECT_NEAR(ratio, 2.0, 0.5);
}

}  // namespace
}  // namespace sct::statlib
