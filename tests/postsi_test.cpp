// Post-silicon subsystem tests (DESIGN.md §15): tunable-element snapping,
// statistical clock tuning (monotone-yield guarantee and strict recovery at
// a tight period), sampling-based buffer insertion, and the scenario matrix
// — baseline byte-identity with the flow report and cold/warm cache
// byte-identity of the rendered report.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "charlib/characterizer.hpp"
#include "clocktree/clock_tree.hpp"
#include "core/flow_job.hpp"
#include "netlist/builder.hpp"
#include "postsi/clock_tuning.hpp"
#include "postsi/scenario.hpp"
#include "statlib/stat_library.hpp"
#include "sta/sta.hpp"
#include "synth/buffer_sampling.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct::postsi {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------- element snapping ----

TEST(TuningElement, SettingCountAndSnap) {
  const clocktree::TuningElementSpec spec{0.0, 0.3, 0.05, 2.0};
  EXPECT_TRUE(spec.valid());
  EXPECT_TRUE(spec.enabled());
  EXPECT_EQ(spec.settingCount(), 7u);  // 0.00 .. 0.30 inclusive
  EXPECT_DOUBLE_EQ(spec.snap(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.snap(0.07), 0.05);
  EXPECT_DOUBLE_EQ(spec.snap(9.0), 0.30000000000000004);  // 6 * 0.05
}

TEST(TuningElement, DisabledAndInvalidSpecs) {
  const clocktree::TuningElementSpec disabled{0.0, 0.0, 0.05, 2.0};
  EXPECT_FALSE(disabled.enabled());
  const clocktree::TuningElementSpec inverted{0.3, 0.0, 0.05, 2.0};
  EXPECT_FALSE(inverted.valid());
  EXPECT_EQ(inverted.settingCount(), 0u);
  const clocktree::TuningElementSpec coarse{0.0, 0.1, 0.5, 2.0};
  EXPECT_FALSE(coarse.valid());
}

TEST(Scenario, PaperPeriodsScaleTheBase) {
  const std::vector<double> periods = paperPeriods(2.41);
  ASSERT_EQ(periods.size(), 4u);
  EXPECT_DOUBLE_EQ(periods[0], 2.41);
  EXPECT_NEAR(periods[1], 2.5, 1e-12);
  EXPECT_NEAR(periods[2], 4.0, 1e-12);
  EXPECT_NEAR(periods[3], 10.0, 1e-12);
}

// ------------------------------------------------------- clock tuning ----

class PostSiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 20, 5);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    delete lib_;
    delete chr_;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }

  /// Synthesizes `design` at a relaxed period and keeps the result alive for
  /// the lifetime of the suite (paths reference instances by index).
  static const netlist::Design& mapped(netlist::Design design) {
    const synth::Synthesizer synth(*lib_);
    sta::ClockSpec clock;
    clock.period = 8.0;
    auto result = synth.run(std::move(design), clock);
    EXPECT_TRUE(result.success());
    static std::vector<std::unique_ptr<synth::SynthesisResult>> keepAlive;
    keepAlive.push_back(
        std::make_unique<synth::SynthesisResult>(std::move(result)));
    return keepAlive.back()->design;
  }

  /// MC design yield of `design` at `period` with tuning disabled.
  static double yieldAt(const netlist::Design& design, double period) {
    return tuneAt(design, period, clocktree::TuningElementSpec{})
        .designYieldBefore;
  }

  static ClockTuningResult tuneAt(const netlist::Design& design, double period,
                                  const clocktree::TuningElementSpec& element) {
    sta::ClockSpec clock;
    clock.period = period;
    sta::TimingAnalyzer sta(design, *lib_, clock);
    EXPECT_TRUE(sta.analyze());
    ClockTuningConfig config;
    config.element = element;
    config.trials = 64;
    config.mcSeed = 2014;
    return computeClockTuning(*chr_, design, sta.endpointWorstPaths(), config);
  }

  /// Bisects for a clock period where the untuned MC yield is strictly
  /// between 0 and 1 — i.e. inside the spread of per-die critical delays.
  static double marginalPeriod(const netlist::Design& design) {
    double lo = 0.05;
    double hi = 20.0;
    EXPECT_EQ(yieldAt(design, lo), 0.0);
    EXPECT_EQ(yieldAt(design, hi), 1.0);
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double y = yieldAt(design, mid);
      if (y <= 0.0) {
        lo = mid;
      } else if (y >= 1.0) {
        hi = mid;
      } else {
        return mid;
      }
    }
    ADD_FAILURE() << "no marginal period found in [" << lo << ", " << hi
                  << "]";
    return hi;
  }

  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
};

charlib::Characterizer* PostSiTest::chr_ = nullptr;
liberty::Library* PostSiTest::lib_ = nullptr;
statlib::StatLibrary* PostSiTest::stat_ = nullptr;

TEST_F(PostSiTest, DisabledElementReportsPlainYield) {
  const netlist::Design& design = mapped(test::makeInvChain(8));
  const ClockTuningResult result =
      tuneAt(design, 8.0, clocktree::TuningElementSpec{});
  EXPECT_EQ(result.elements, 0u);
  EXPECT_DOUBLE_EQ(result.tuningArea, 0.0);
  EXPECT_EQ(result.designYieldBefore, result.designYieldAfter);
  EXPECT_EQ(result.designYieldBefore, 1.0);  // relaxed period, every die met
  // Every assignment is zero when the element is disabled.
  for (const RegisterTuning& reg : result.registers) {
    EXPECT_DOUBLE_EQ(reg.assignMax, 0.0);
    EXPECT_DOUBLE_EQ(reg.chosen, 0.0);
  }
}

TEST_F(PostSiTest, TuningRecoversMarginalDies) {
  // At a period inside the per-die delay spread some dies fail on the
  // register-to-register chain while the shallow FF->output path keeps a
  // large launch budget — the element must recover them.
  const netlist::Design& design = mapped(test::makeInvChain(10));
  const double period = marginalPeriod(design);
  const clocktree::TuningElementSpec element{0.0, 4.0, 0.05, 2.0};
  const ClockTuningResult result = tuneAt(design, period, element);
  EXPECT_GT(result.designYieldBefore, 0.0);
  EXPECT_LT(result.designYieldBefore, 1.0);
  EXPECT_GT(result.designYieldAfter, result.designYieldBefore);
  EXPECT_GT(result.elements, 0u);
  EXPECT_DOUBLE_EQ(result.tuningArea,
                   static_cast<double>(result.elements) * 2.0);
  // Some die needed a nonzero assignment on the capture register.
  double maxAssign = 0.0;
  for (const RegisterTuning& reg : result.registers) {
    maxAssign = std::max(maxAssign, reg.assignMax);
    EXPECT_GE(reg.yieldAfter, reg.yieldBefore);
  }
  EXPECT_GT(maxAssign, 0.0);
}

TEST_F(PostSiTest, TuningYieldIsMonotoneAcrossPeriods) {
  const netlist::Design& design = mapped(test::makeInvChain(6));
  const clocktree::TuningElementSpec element{0.0, 0.3, 0.05, 2.0};
  for (const double period : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const ClockTuningResult result = tuneAt(design, period, element);
    EXPECT_GE(result.designYieldAfter, result.designYieldBefore)
        << "period " << period;
  }
}

TEST_F(PostSiTest, ClockTuningIsDeterministic) {
  const netlist::Design& design = mapped(test::makeInvChain(8));
  const clocktree::TuningElementSpec element{0.0, 0.3, 0.05, 2.0};
  const ClockTuningResult a = tuneAt(design, 2.0, element);
  const ClockTuningResult b = tuneAt(design, 2.0, element);
  EXPECT_EQ(a.designYieldBefore, b.designYieldBefore);
  EXPECT_EQ(a.designYieldAfter, b.designYieldAfter);
  ASSERT_EQ(a.registers.size(), b.registers.size());
  for (std::size_t i = 0; i < a.registers.size(); ++i) {
    EXPECT_EQ(a.registers[i].instance, b.registers[i].instance);
    EXPECT_EQ(a.registers[i].slackMean, b.registers[i].slackMean);
    EXPECT_EQ(a.registers[i].assignMean, b.registers[i].assignMean);
    EXPECT_EQ(a.registers[i].chosen, b.registers[i].chosen);
  }
}

// --------------------------------------------------- buffer insertion ----

/// FF -> stem inverter fanning out to a deep chain and a short branch; the
/// stem net has two sinks, so the sampling pass has a candidate site.
netlist::Design makeFanoutDesign() {
  netlist::Design design("fanout");
  netlist::NetlistBuilder b(design);
  const netlist::NetIndex in = b.inputPort("din");
  const netlist::NetIndex q = b.dff(in, netlist::PrimOp::kDff);
  const netlist::NetIndex stem = b.inv(q);
  netlist::NetIndex deep = stem;
  for (int i = 0; i < 8; ++i) deep = b.inv(deep);
  const netlist::NetIndex shallow = b.inv(stem);
  b.outputPort("a", b.dff(deep, netlist::PrimOp::kDff));
  b.outputPort("b", b.dff(shallow, netlist::PrimOp::kDff));
  return design;
}

TEST_F(PostSiTest, BufferSamplingEvaluatesAndNeverHurtsYield) {
  const netlist::Design& design = mapped(makeFanoutDesign());
  sta::ClockSpec clock;
  clock.period = 4.0;
  synth::BufferSamplingOptions options;
  options.trials = 32;
  const synth::BufferSamplingResult result = synth::sampleBufferInsertion(
      design, *lib_, *stat_, *chr_, clock, nullptr, options);
  EXPECT_GE(result.evaluated, 1u);
  EXPECT_GE(result.yieldAfter, result.yieldBefore);
  EXPECT_EQ(result.design.instanceCount(),
            design.instanceCount() + result.inserted);
}

TEST_F(PostSiTest, BufferSamplingIsDeterministicAndNonMutating) {
  const netlist::Design& design = mapped(makeFanoutDesign());
  const std::size_t instancesBefore = design.instanceCount();
  const std::size_t netsBefore = design.netCount();
  sta::ClockSpec clock;
  clock.period = 4.0;
  synth::BufferSamplingOptions options;
  options.trials = 32;
  const synth::BufferSamplingResult a = synth::sampleBufferInsertion(
      design, *lib_, *stat_, *chr_, clock, nullptr, options);
  const synth::BufferSamplingResult b = synth::sampleBufferInsertion(
      design, *lib_, *stat_, *chr_, clock, nullptr, options);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.inserted, b.inserted);
  EXPECT_EQ(a.yieldBefore, b.yieldBefore);
  EXPECT_EQ(a.yieldAfter, b.yieldAfter);
  EXPECT_EQ(a.worstPathSigmaAfter, b.worstPathSigmaAfter);
  EXPECT_EQ(a.design.instanceCount(), b.design.instanceCount());
  // The input design is never mutated by the sampling pass.
  EXPECT_EQ(design.instanceCount(), instancesBefore);
  EXPECT_EQ(design.netCount(), netsBefore);
}

// ----------------------------------------------------- scenario matrix ----

core::FlowJob smallJob() {
  core::FlowJob job;
  job.profile = "small";
  job.mcCount = 4;
  job.lintMode = "off";
  return job;
}

ScenarioJob smallScenarioJob(std::vector<double> periods,
                             const std::string& scenarios) {
  ScenarioJob job;
  job.flow = smallJob();
  job.periods = std::move(periods);
  job.scenarios = scenarios;
  job.mcTrials = 16;
  return job;
}

TEST(Scenario, BaselineCellMatchesFlowReportByteForByte) {
  core::TuningFlow flow(core::makeFlowConfig(smallJob()));
  const ScenarioJob job = smallScenarioJob({8.0}, "tuning");
  const ScenarioRunResult result = runScenarioJob(flow, job);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.cells[0].scenario, "tuning");

  core::FlowJob flowJob = smallJob();
  flowJob.period = 8.0;
  core::TuningFlow plain(core::makeFlowConfig(smallJob()));
  const core::FlowJobResult expected = core::runFlowJob(plain, flowJob);
  EXPECT_EQ(result.cells[0].flowReport, expected.report);
}

TEST(Scenario, MatrixOrderAndCumulativeScenarios) {
  core::TuningFlow flow(core::makeFlowConfig(smallJob()));
  const ScenarioJob job =
      smallScenarioJob({6.0, 8.0}, "tuning,clock,buffers");
  const ScenarioRunResult result = runScenarioJob(flow, job);
  ASSERT_EQ(result.cells.size(), 6u);  // scenario-major, period-minor
  EXPECT_EQ(result.cells[0].scenario, "tuning");
  EXPECT_EQ(result.cells[1].scenario, "tuning");
  EXPECT_EQ(result.cells[2].scenario, "clock");
  EXPECT_EQ(result.cells[4].scenario, "buffers");
  EXPECT_DOUBLE_EQ(result.cells[0].period, 6.0);
  EXPECT_DOUBLE_EQ(result.cells[1].period, 8.0);
  // Clock tuning never loses yield against the untuned baseline cell at the
  // same period (the budget clamp makes the pass set monotone).
  EXPECT_GE(result.cells[2].yield, result.cells[0].yield);
  EXPECT_GE(result.cells[3].yield, result.cells[1].yield);
  // Tuning elements cost area on top of the mapped design.
  EXPECT_GT(result.cells[2].elements, 0u);
  EXPECT_GT(result.cells[2].tuningArea, 0.0);
  EXPECT_NE(result.report.find("scenario-report v1"), std::string::npos);
  EXPECT_NE(result.json.find("\"scenario\":\"buffers\""), std::string::npos);
}

TEST(Scenario, RejectsBadJobs) {
  core::TuningFlow flow(core::makeFlowConfig(smallJob()));
  ScenarioJob noPeriods = smallScenarioJob({}, "tuning");
  EXPECT_THROW((void)runScenarioJob(flow, noPeriods), std::runtime_error);
  ScenarioJob badName = smallScenarioJob({8.0}, "tuning,warp");
  EXPECT_THROW((void)runScenarioJob(flow, badName), std::runtime_error);
}

TEST(Scenario, ColdAndWarmRunsAreByteIdentical) {
  const fs::path dir = fs::temp_directory_path() / "sct_scenario_cache_test";
  fs::remove_all(dir);

  core::FlowConfig config = core::makeFlowConfig(smallJob());
  config.cacheDir = dir.string();
  const ScenarioJob job = smallScenarioJob({7.0}, "tuning,clock");

  core::TuningFlow cold(config);
  ASSERT_NE(cold.cache(), nullptr);
  const ScenarioRunResult coldRun = runScenarioJob(cold, job);
  EXPECT_TRUE(coldRun.success);

  // A fresh flow over the same cache directory decodes every scenario cell
  // (and every flow stage below it) from the store: zero misses, and the
  // rendered bytes — report, JSON, summary — are identical.
  core::TuningFlow warm(config);
  const ScenarioRunResult warmRun = runScenarioJob(warm, job);
  EXPECT_EQ(warm.cache()->stats().misses, 0u);
  EXPECT_EQ(warm.cache()->stats().stores, 0u);
  EXPECT_EQ(warmRun.report, coldRun.report);
  EXPECT_EQ(warmRun.json, coldRun.json);
  EXPECT_EQ(warmRun.summary, coldRun.summary);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace sct::postsi
