// Concurrency-facing artifact-layer tests (DESIGN.md §14): the bounded
// in-memory cache tier, the single-flight table, and the gc guards that
// make ArtifactStore::gc safe against concurrent readers/publishers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "artifact/binary_format.hpp"
#include "artifact/hash.hpp"
#include "artifact/mem_cache.hpp"
#include "artifact/single_flight.hpp"
#include "artifact/store.hpp"

namespace sct {
namespace {

namespace fs = std::filesystem;
using artifact::Digest;
using artifact::MemoryArtifactCache;
using artifact::SctbReader;
using artifact::SctbWriter;
using artifact::SingleFlight;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* stem)
      : path(fs::temp_directory_path() / stem) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

Digest key(std::uint64_t n) { return Digest{n, ~n}; }

/// An SCTB container with a payload of `bytes` content bytes.
std::shared_ptr<const SctbReader> makeArtifact(std::size_t bytes,
                                               std::uint8_t fill = 7) {
  SctbWriter writer;
  writer.beginSection("blob");
  for (std::size_t i = 0; i < bytes; ++i) {
    writer.u8(static_cast<std::uint8_t>(fill + i));
  }
  return std::make_shared<const SctbReader>(
      SctbReader::fromBytes(writer.finish()));
}

// ---- MemoryArtifactCache -------------------------------------------------

TEST(MemCacheTest, HitMissAndCounters) {
  MemoryArtifactCache cache(1 << 20);
  EXPECT_EQ(cache.get(key(1)), nullptr);
  cache.put(key(1), makeArtifact(100));
  const auto hit = cache.get(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->hasSection("blob"));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, hit->fileSize());
}

TEST(MemCacheTest, EvictsLeastRecentlyUsedByBytes) {
  // Three artifacts of ~equal size in a cache that fits only two.
  const auto a = makeArtifact(400);
  const std::uint64_t each = a->fileSize();
  MemoryArtifactCache cache(2 * each + each / 2);
  cache.put(key(1), a);
  cache.put(key(2), makeArtifact(400));
  ASSERT_NE(cache.get(key(1)), nullptr);  // make key(2) the LRU entry
  cache.put(key(3), makeArtifact(400));   // evicts key(2), not key(1)
  EXPECT_NE(cache.get(key(1)), nullptr);
  EXPECT_EQ(cache.get(key(2)), nullptr);
  EXPECT_NE(cache.get(key(3)), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, stats.capacity);
}

TEST(MemCacheTest, OversizedEntryIsNotRetained) {
  MemoryArtifactCache cache(64);  // smaller than any container
  cache.put(key(1), makeArtifact(400));
  EXPECT_EQ(cache.get(key(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(MemCacheTest, EraseDropsEntry) {
  MemoryArtifactCache cache(1 << 20);
  cache.put(key(1), makeArtifact(64));
  cache.erase(key(1));
  EXPECT_EQ(cache.get(key(1)), nullptr);
}

TEST(MemCacheTest, PutRefreshesExistingKey) {
  MemoryArtifactCache cache(1 << 20);
  cache.put(key(1), makeArtifact(64, 1));
  const auto bigger = makeArtifact(256, 2);
  cache.put(key(1), bigger);
  const auto hit = cache.get(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fileSize(), bigger->fileSize());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, bigger->fileSize());
}

TEST(MemCacheTest, ConcurrentMixedUseIsSafe) {
  MemoryArtifactCache cache(1 << 16);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const Digest k = key(static_cast<std::uint64_t>((t * 7 + i) % 16));
        if (const auto hit = cache.get(k)) {
          EXPECT_TRUE(hit->hasSection("blob"));
        } else {
          cache.put(k, makeArtifact(100 + (i % 5) * 40));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.stats().bytes, cache.stats().capacity);
}

// ---- SingleFlight --------------------------------------------------------

TEST(SingleFlightTest, LeaderDoesNotWait) {
  SingleFlight flights;
  auto guard = flights.lock(key(1));
  ASSERT_TRUE(guard.has_value());
  EXPECT_FALSE(guard->waited());
}

TEST(SingleFlightTest, DistinctKeysDoNotContend) {
  SingleFlight flights;
  auto a = flights.lock(key(1));
  auto b = flights.lock(key(2));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(b->waited());
}

TEST(SingleFlightTest, WaiterBlocksUntilLeaderReleases) {
  SingleFlight flights;
  std::atomic<bool> waiterDone{false};
  auto leader = flights.lock(key(1));
  ASSERT_TRUE(leader.has_value());
  std::thread waiter([&] {
    auto guard = flights.lock(key(1));
    ASSERT_TRUE(guard.has_value());
    EXPECT_TRUE(guard->waited());
    waiterDone.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(waiterDone.load());
  leader.reset();  // release
  waiter.join();
  EXPECT_TRUE(waiterDone.load());
}

TEST(SingleFlightTest, DeadlineTimeoutReturnsNullopt) {
  SingleFlight flights;
  auto leader = flights.lock(key(1));
  ASSERT_TRUE(leader.has_value());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  auto late = flights.lock(key(1), deadline);
  EXPECT_FALSE(late.has_value());
}

TEST(SingleFlightTest, FailedLeaderHandsOffToWaiter) {
  // A leader that computes nothing (failure path) releases the key; the
  // next waiter acquires it with waited()==true and becomes the new
  // leader — the re-probe-then-compute pattern in cachedStage.
  SingleFlight flights;
  std::atomic<int> leaders{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto guard = flights.lock(key(9));
      ASSERT_TRUE(guard.has_value());
      leaders.fetch_add(1);  // every thread eventually leads (none publish)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(leaders.load(), 4);
  EXPECT_EQ(flights.inFlight(), 0u);
}

// ---- gc concurrency guards ----------------------------------------------

SctbWriter smallWriter(std::uint8_t fill) {
  SctbWriter writer;
  writer.beginSection("blob");
  for (int i = 0; i < 64; ++i) writer.u8(fill);
  return writer;
}

TEST(StoreGcTest, LockBusyWhenAnotherGcHoldsTheLock) {
  TempDir dir("sct_gc_lock_test");
  artifact::ArtifactStore store(dir.path);
  store.publish(key(1), smallWriter(1));

  // Simulate a concurrent gc in another process: take the lock file
  // ourselves with flock(2), exactly as gc does.
  const fs::path lockPath = dir.path / ".gc.lock";
  const int fd = ::open(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);

  artifact::GcPolicy policy;
  policy.maxBytes = 1;  // would evict everything if it ran
  const artifact::GcResult result = store.gc(policy);
  EXPECT_TRUE(result.lockBusy);
  EXPECT_EQ(result.filesRemoved, 0u);
  EXPECT_TRUE(fs::exists(store.pathFor(key(1))));

  ::flock(fd, LOCK_UN);
  ::close(fd);
  const artifact::GcResult retry = store.gc(policy);
  EXPECT_FALSE(retry.lockBusy);
  EXPECT_GE(retry.filesRemoved, 1u);
}

TEST(StoreGcTest, SparesEntriesTouchedBetweenScanAndSweep) {
  TempDir dir("sct_gc_epoch_test");
  artifact::ArtifactStore store(dir.path);
  store.publish(key(1), smallWriter(1));
  store.publish(key(2), smallWriter(2));

  // Age both entries so the byte bound marks them for eviction.
  const auto old = fs::file_time_type::clock::now() - std::chrono::hours(10);
  fs::last_write_time(store.pathFor(key(1)), old);
  fs::last_write_time(store.pathFor(key(2)), old);

  artifact::GcPolicy policy;
  policy.maxBytes = 1;  // evict everything the scan saw
  const artifact::GcResult result = store.gc(policy, [&] {
    // A concurrent open() touches entry 1 after the scan snapshot: the
    // sweep must notice the advanced mtime and spare it.
    ASSERT_TRUE(store.open(key(1)).has_value());
  });
  EXPECT_EQ(result.filesSpared, 1u);
  EXPECT_TRUE(fs::exists(store.pathFor(key(1))));
  EXPECT_FALSE(fs::exists(store.pathFor(key(2))));
}

TEST(StoreGcTest, EntryVanishingMidSweepIsNotAnError) {
  TempDir dir("sct_gc_vanish_test");
  artifact::ArtifactStore store(dir.path);
  store.publish(key(1), smallWriter(1));
  const auto old = fs::file_time_type::clock::now() - std::chrono::hours(10);
  fs::last_write_time(store.pathFor(key(1)), old);

  artifact::GcPolicy policy;
  policy.maxBytes = 1;
  const artifact::GcResult result = store.gc(policy, [&] {
    fs::remove(store.pathFor(key(1)));  // another gc got there first
  });
  EXPECT_EQ(result.filesRemoved, 0u);
  EXPECT_EQ(result.filesSpared, 0u);
}

TEST(StoreTest, ConcurrentPublishAndOpenAreSafe) {
  TempDir dir("sct_store_mt_test");
  artifact::ArtifactStore store(dir.path);
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 40; ++i) {
        const Digest k = key(static_cast<std::uint64_t>(i % 8));
        if ((t + i) % 2 == 0) {
          store.publish(k, smallWriter(static_cast<std::uint8_t>(i)));
        } else if (const auto reader = store.open(k)) {
          EXPECT_TRUE(reader->hasSection("blob"));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GE(store.stats().stores.load(), 1u);
}

}  // namespace
}  // namespace sct
