// Tests for the netlist utility layer: design statistics, dead-logic
// sweeping and Graphviz export.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/analysis.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"

namespace sct::netlist {
namespace {

TEST(DesignStats, CountsMatchHandBuiltDesign) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  const NetIndex c = b.inputPort("b");
  const NetIndex n = b.nand2(a, c);
  const NetIndex q = b.dff(n, PrimOp::kDff);
  b.outputPort("q", q);
  const DesignStats stats = analyzeDesign(d);
  EXPECT_EQ(stats.gates, 2u);
  EXPECT_EQ(stats.sequential, 1u);
  EXPECT_EQ(stats.combinational, 1u);
  EXPECT_EQ(stats.ties, 0u);
  EXPECT_EQ(stats.primaryInputs, 2u);
  EXPECT_EQ(stats.primaryOutputs, 1u);
  EXPECT_EQ(stats.opHistogram.at(PrimOp::kNand2), 1u);
  EXPECT_EQ(stats.maxFanout, 1u);
}

TEST(DesignStats, McuShapeIsPlausible) {
  const Design mcu = generateMcu();
  const DesignStats stats = analyzeDesign(mcu);
  EXPECT_EQ(stats.gates, mcu.gateCount());
  EXPECT_GT(stats.sequential, 2000u);
  EXPECT_GT(stats.combinational, stats.sequential);
  EXPECT_GT(stats.maxFanout, 30u);  // control signals fan out widely
  EXPECT_GT(stats.averageFanout, 1.0);
  EXPECT_LE(stats.ties, 2u);
}

TEST(SweepDeadLogic, RemovesUnobservedCone) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  b.outputPort("z", b.inv(a));
  // Dead cone: three gates nobody observes.
  const NetIndex d1 = b.inv(a);
  const NetIndex d2 = b.inv(d1);
  (void)b.inv(d2);
  EXPECT_EQ(d.gateCount(), 4u);
  EXPECT_EQ(sweepDeadLogic(d), 3u);
  EXPECT_EQ(d.gateCount(), 1u);
  EXPECT_EQ(d.validate(), "");
}

TEST(SweepDeadLogic, KeepsSequentialAndPortLogic) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  const NetIndex q = b.dff(b.inv(a), PrimOp::kDff);
  (void)q;  // flop output unobserved, but flops are architectural state
  b.outputPort("z", b.nand2(a, a));
  EXPECT_EQ(sweepDeadLogic(d), 0u);
  EXPECT_EQ(d.gateCount(), 3u);
}

TEST(SweepDeadLogic, McuHasSmallDeadFringe) {
  Design mcu = generateMcu();
  const std::size_t before = mcu.gateCount();
  // Generated subject graphs leave unused carry-outs, spare decoder lines
  // etc.; the fringe must be small (a couple of percent) and sweeping must
  // converge (a second sweep finds nothing).
  const std::size_t removed = sweepDeadLogic(mcu);
  EXPECT_GT(removed, 0u);
  EXPECT_LT(removed, before / 20);
  EXPECT_EQ(sweepDeadLogic(mcu), 0u);
  EXPECT_EQ(mcu.validate(), "");
}

TEST(WriteDot, EmitsNodesAndEdges) {
  Design d("tiny");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  b.outputPort("z", b.inv(a));
  std::ostringstream out;
  ASSERT_TRUE(writeDot(out, d));
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph \"tiny\""), std::string::npos);
  EXPECT_NE(dot.find("INV"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("triangle"), std::string::npos);
}

TEST(WriteDot, RefusesHugeDesigns) {
  const Design mcu = generateMcu();
  std::ostringstream out;
  EXPECT_FALSE(writeDot(out, mcu));
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace sct::netlist
