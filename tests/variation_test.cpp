// Unit tests for the variation analysis: path convolution (eqs. (5)-(11))
// and the Monte-Carlo path simulator used for the corner and global/local
// studies (Figs. 15-16).

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterizer.hpp"
#include "netlist/builder.hpp"
#include "statlib/stat_library.hpp"
#include "sta/sta.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "variation/monte_carlo.hpp"
#include "variation/path_stats.hpp"

namespace sct::variation {
namespace {

// ---------------------------------------------------------- convolution ----

TEST(Convolve, MeanIsSum) {
  const std::vector<double> means = {0.1, 0.2, 0.3};
  EXPECT_NEAR(convolveMean(means), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(convolveMean({}), 0.0);
}

TEST(Convolve, SigmaRssAtRhoZero) {
  // Eq. (10): sqrt(3^2 + 4^2) = 5.
  const std::vector<double> sigmas = {3.0, 4.0};
  EXPECT_NEAR(convolveSigma(sigmas, 0.0), 5.0, 1e-12);
}

TEST(Convolve, SigmaFullCorrelationIsLinearSum) {
  // rho = 1: sigma adds linearly.
  const std::vector<double> sigmas = {1.0, 2.0, 3.0};
  EXPECT_NEAR(convolveSigma(sigmas, 1.0), 6.0, 1e-12);
}

TEST(Convolve, SigmaIntermediateRhoMatchesEq9) {
  const std::vector<double> sigmas = {1.0, 2.0};
  const double rho = 0.3;
  // var = 1 + 4 + 0.3 * 2 * (1*2) = 6.2
  EXPECT_NEAR(convolveSigma(sigmas, rho), std::sqrt(6.2), 1e-12);
}

TEST(Convolve, SigmaMonotoneInRho) {
  const std::vector<double> sigmas = {0.5, 0.7, 0.9};
  double prev = 0.0;
  for (double rho : {0.0, 0.1, 0.3, 0.7, 1.0}) {
    const double s = convolveSigma(sigmas, rho);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Convolve, SingleCellPathKeepsItsSigma) {
  EXPECT_NEAR(convolveSigma(std::vector<double>{0.42}, 0.0), 0.42, 1e-12);
  EXPECT_NEAR(convolveSigma(std::vector<double>{0.42}, 0.5), 0.42, 1e-12);
}

TEST(Convolve, DeeperIdenticalPathsGrowAsSqrtN) {
  // Eq. (10) discussion: n identical cells => sigma scales with sqrt(n).
  const std::vector<double> four(4, 0.1);
  const std::vector<double> sixteen(16, 0.1);
  EXPECT_NEAR(convolveSigma(four, 0.0), 0.2, 1e-12);
  EXPECT_NEAR(convolveSigma(sixteen, 0.0), 0.4, 1e-12);
}

// ------------------------------------------------- path/design statistics ----

class PathStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 30, 3);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    delete lib_;
    delete chr_;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }

  /// Synthesizes an inverter chain and returns its endpoint worst paths.
  static std::vector<sta::TimingPath> chainPaths(std::size_t depth,
                                                 double period = 8.0) {
    const synth::Synthesizer synth(*lib_);
    sta::ClockSpec clock;
    clock.period = period;
    auto result = synth.run(test::makeInvChain(depth), clock);
    EXPECT_TRUE(result.success());
    static std::vector<synth::SynthesisResult> keepAlive;
    keepAlive.push_back(std::move(result));
    sta::TimingAnalyzer sta(keepAlive.back().design, *lib_, clock);
    EXPECT_TRUE(sta.analyze());
    return sta.endpointWorstPaths();
  }

  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
};

charlib::Characterizer* PathStatsTest::chr_ = nullptr;
liberty::Library* PathStatsTest::lib_ = nullptr;
statlib::StatLibrary* PathStatsTest::stat_ = nullptr;

TEST_F(PathStatsTest, PathStatsMatchManualConvolution) {
  const auto paths = chainPaths(4);
  const PathStatistics stats(*stat_);
  for (const sta::TimingPath& path : paths) {
    if (path.steps.empty()) continue;
    std::vector<double> means;
    std::vector<double> sigmas;
    for (const sta::PathStep& step : path.steps) {
      const auto s = stats.stepStats(step);
      means.push_back(s.mean);
      sigmas.push_back(s.sigma);
    }
    const PathStats ps = stats.pathStats(path);
    EXPECT_NEAR(ps.mean, convolveMean(means), 1e-12);
    EXPECT_NEAR(ps.sigma, convolveSigma(sigmas, 0.0), 1e-12);
    EXPECT_EQ(ps.depth, path.steps.size());
  }
}

TEST_F(PathStatsTest, StepMeanTracksStaDelay) {
  // The statistical mean of a step should be close to the STA delay (the
  // stat library mean estimates the nominal table).
  const auto paths = chainPaths(6);
  const PathStatistics stats(*stat_);
  for (const sta::TimingPath& path : paths) {
    for (const sta::PathStep& step : path.steps) {
      const auto s = stats.stepStats(step);
      EXPECT_NEAR(s.mean, step.delay, 0.25 * step.delay + 1e-3);
    }
  }
}

TEST_F(PathStatsTest, DeeperChainsHaveLargerSigma) {
  const PathStatistics stats(*stat_);
  auto worstSigma = [&](std::size_t depth) {
    double best = 0.0;
    for (const auto& path : chainPaths(depth)) {
      best = std::max(best, stats.pathStats(path).sigma);
    }
    return best;
  };
  const double s2 = worstSigma(2);
  const double s8 = worstSigma(8);
  const double s32 = worstSigma(32);
  EXPECT_LT(s2, s8);
  EXPECT_LT(s8, s32);
  // Same cells: sigma should grow roughly as sqrt(depth), i.e. much slower
  // than linearly (factor < 4 from depth 2 to 32 once the FF is excluded).
  EXPECT_LT(s32 / s2, 6.0);
}

TEST_F(PathStatsTest, DesignStatsAggregatePerEq11) {
  const auto paths = chainPaths(5);
  const PathStatistics stats(*stat_);
  const DesignStats design = stats.designStats(paths);
  double meanSum = 0.0;
  double varSum = 0.0;
  for (const auto& path : paths) {
    const PathStats ps = stats.pathStats(path);
    meanSum += ps.mean;
    varSum += ps.sigma * ps.sigma;
  }
  EXPECT_NEAR(design.mean, meanSum, 1e-12);
  EXPECT_NEAR(design.sigma, std::sqrt(varSum), 1e-12);
  EXPECT_EQ(design.paths, paths.size());
}

TEST_F(PathStatsTest, RhoRaisesPathSigma) {
  const auto paths = chainPaths(8);
  const PathStatistics independent(*stat_, 0.0);
  const PathStatistics correlated(*stat_, 0.3);
  for (const auto& path : paths) {
    if (path.steps.size() < 2) continue;
    EXPECT_GT(correlated.pathStats(path).sigma,
              independent.pathStats(path).sigma);
  }
}

// ------------------------------------------------------------ Monte Carlo ----

class PathMcTest : public PathStatsTest {
 protected:
  /// Deepest endpoint path (the front() may be a degenerate PI->FF path).
  static const sta::TimingPath& longestOf(
      const std::vector<sta::TimingPath>& paths) {
    const sta::TimingPath* best = &paths.front();
    for (const auto& p : paths) {
      if (p.depth() > best->depth()) best = &p;
    }
    return *best;
  }
};

TEST_F(PathMcTest, DeterministicPerSeed) {
  const auto paths = chainPaths(6);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig config;
  config.trials = 50;
  config.seed = 17;
  const auto a = mc.simulate(longestOf(paths), config);
  const auto b = mc.simulate(longestOf(paths), config);
  EXPECT_EQ(a.samples, b.samples);
}

TEST_F(PathMcTest, NoVariationGivesZeroSigma) {
  const auto paths = chainPaths(6);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig config;
  config.trials = 20;
  config.includeLocal = false;
  config.includeGlobal = false;
  const auto r = mc.simulate(longestOf(paths), config);
  EXPECT_NEAR(r.summary.sigma, 0.0, 1e-12);
  EXPECT_GT(r.summary.mean, 0.0);
}

TEST_F(PathMcTest, McMeanTracksStatisticalMean) {
  const auto paths = chainPaths(10);
  const sta::TimingPath* longest = &paths.front();
  for (const auto& p : paths) {
    if (p.depth() > longest->depth()) longest = &p;
  }
  const PathStatistics stats(*stat_);
  const PathStats predicted = stats.pathStats(*longest);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig config;
  config.trials = 400;
  const auto r = mc.simulate(*longest, config);
  EXPECT_NEAR(r.summary.mean, predicted.mean, 0.05 * predicted.mean);
}

TEST_F(PathMcTest, McSigmaTracksConvolutionPrediction) {
  // The statistical-library + RSS prediction and a direct Monte Carlo of
  // the same path must agree within sampling error (paper validates this
  // within a factor; our model is exact up to estimator noise).
  const auto paths = chainPaths(12);
  const sta::TimingPath* longest = &paths.front();
  for (const auto& p : paths) {
    if (p.depth() > longest->depth()) longest = &p;
  }
  const PathStatistics stats(*stat_);
  const PathStats predicted = stats.pathStats(*longest);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig config;
  config.trials = 2000;
  config.seed = 5;
  const auto r = mc.simulate(*longest, config);
  EXPECT_NEAR(r.summary.sigma, predicted.sigma, 0.35 * predicted.sigma);
}

TEST_F(PathMcTest, CornersScaleMeanAndSigmaTogether) {
  // Fig. 15: moving corners scales mean and sigma by the same factor.
  const auto paths = chainPaths(8);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig config;
  config.trials = 500;
  config.seed = 11;
  config.corner = charlib::ProcessCorner::typical();
  const auto tt = mc.simulate(longestOf(paths), config);
  config.corner = charlib::ProcessCorner::slow();
  const auto ss = mc.simulate(longestOf(paths), config);
  config.corner = charlib::ProcessCorner::fast();
  const auto ff = mc.simulate(longestOf(paths), config);
  EXPECT_NEAR(ss.summary.mean / tt.summary.mean, 1.28, 1e-6);
  EXPECT_NEAR(ff.summary.mean / tt.summary.mean, 0.79, 1e-6);
  EXPECT_NEAR(ss.summary.sigma / tt.summary.sigma, 1.28, 0.05);
  EXPECT_NEAR(ff.summary.sigma / tt.summary.sigma, 0.79, 0.05);
}

TEST_F(PathMcTest, GlobalVariationDominatesDeepPaths) {
  // Fig. 16: the local share of total variation decays with path depth.
  const PathMonteCarlo mc(*chr_);
  auto localShare = [&](std::size_t depth) {
    const auto paths = chainPaths(depth);
    const sta::TimingPath* longest = &paths.front();
    for (const auto& p : paths) {
      if (p.depth() > longest->depth()) longest = &p;
    }
    PathMcConfig localOnly;
    localOnly.trials = 800;
    localOnly.seed = 23;
    PathMcConfig both = localOnly;
    both.includeGlobal = true;
    const double sigmaLocal = mc.simulate(*longest, localOnly).summary.sigma;
    const double sigmaBoth = mc.simulate(*longest, both).summary.sigma;
    return sigmaLocal / sigmaBoth;
  };
  const double shallow = localShare(3);
  const double deep = localShare(40);
  EXPECT_GT(shallow, deep);
  EXPECT_GT(shallow, 0.4);
  EXPECT_LT(deep, 0.5);
}

TEST_F(PathMcTest, GlobalPlusLocalExceedsLocalOnly) {
  const auto paths = chainPaths(10);
  const PathMonteCarlo mc(*chr_);
  PathMcConfig localOnly;
  localOnly.trials = 600;
  PathMcConfig both = localOnly;
  both.includeGlobal = true;
  const auto l = mc.simulate(longestOf(paths), localOnly);
  const auto b = mc.simulate(longestOf(paths), both);
  EXPECT_GT(b.summary.sigma, l.summary.sigma);
  // Means agree (global factor has mean 1).
  EXPECT_NEAR(b.summary.mean, l.summary.mean, 0.05 * l.summary.mean);
}

}  // namespace
}  // namespace sct::variation
