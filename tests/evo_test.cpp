// Evolutionary window-tuner tests (DESIGN.md §17): NSGA-II unit oracles
// (dominance, nondominated sorting, crowding, environmental selection),
// the lint gate on evolve parameters, and the full runEvolveJob contract —
// seeded-baseline dominance by construction, bit-identity across thread
// counts and cache temperatures, and zero candidate misses on a warm rerun.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/flow_job.hpp"
#include "evo/nsga2.hpp"
#include "evo/params.hpp"
#include "evo/tuner.hpp"
#include "numeric/rng.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace sct::evo {
namespace {

namespace fs = std::filesystem;

const std::vector<std::size_t> kAll{0, 1, 2};

// ----------------------------------------------------- dominance oracle ----

TEST(Nsga2, WeakDominanceDefinition) {
  // Strictly better everywhere.
  EXPECT_TRUE(dominates({1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}, kAll));
  // Better somewhere, equal elsewhere: still dominates (weak form).
  EXPECT_TRUE(dominates({1.0, 2.0, 3.0}, {1.0, 2.0, 4.0}, kAll));
  // Equal everywhere: neither dominates.
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}, {0, 1}));
  // Trade-off: incomparable in both directions.
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}, {0, 1}));
  EXPECT_FALSE(dominates({2.0, 2.0}, {1.0, 3.0}, {0, 1}));
}

TEST(Nsga2, DominanceRestrictsToSelectedObjectives) {
  // Worse on objective 2, but objective 2 is not selected.
  EXPECT_TRUE(dominates({1.0, 1.0, 9.0}, {2.0, 2.0, 0.0}, {0, 1}));
  // Single-objective selection degenerates to strict less-than.
  EXPECT_TRUE(dominates({1.0, 9.0}, {2.0, 0.0}, {0}));
  EXPECT_FALSE(dominates({1.0, 9.0}, {1.0, 0.0}, {0}));
}

TEST(Nsga2, InfeasibleInfinityIsDominatedByAnyFeasible) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(dominates({1.0, 1.0, 1.0}, {inf, inf, inf}, kAll));
  EXPECT_FALSE(dominates({inf, inf, inf}, {1.0, 1.0, 1.0}, kAll));
  // Two infeasible points tie.
  EXPECT_FALSE(dominates({inf, inf, inf}, {inf, inf, inf}, kAll));
}

// ------------------------------------------- nondominated sorting oracle ----

TEST(Nsga2, RanksHandBuiltFronts) {
  // Front 0: (1,4), (2,2), (4,1). Front 1: (3,4), (4,3). Front 2: (5,5).
  const std::vector<std::vector<double>> pts = {
      {1.0, 4.0}, {2.0, 2.0}, {4.0, 1.0}, {3.0, 4.0}, {4.0, 3.0}, {5.0, 5.0}};
  const std::vector<std::size_t> ranks = nondominatedRanks(pts, {0, 1});
  const std::vector<std::size_t> expected = {0, 0, 0, 1, 1, 2};
  EXPECT_EQ(ranks, expected);
}

TEST(Nsga2, ParetoFrontMatchesRankZero) {
  const std::vector<std::vector<double>> pts = {
      {1.0, 4.0}, {2.0, 2.0}, {4.0, 1.0}, {3.0, 4.0}, {4.0, 3.0}, {5.0, 5.0}};
  const std::vector<std::size_t> front = paretoFront(pts, {0, 1});
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Nsga2, DuplicatePointsShareTheFront) {
  // Weak dominance never lets a point dominate its own duplicate, so ties
  // survive — the evolve front may legitimately carry equal-objective
  // members from different origins.
  const std::vector<std::vector<double>> pts = {
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const std::vector<std::size_t> front = paretoFront(pts, {0, 1});
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

// ----------------------------------------------------- crowding distance ----

TEST(Nsga2, CrowdingBoundariesAreInfinite) {
  const std::vector<std::vector<double>> pts = {
      {1.0, 5.0}, {2.0, 3.0}, {4.0, 2.0}, {5.0, 1.0}};
  const std::vector<std::size_t> members = {0, 1, 2, 3};
  const std::vector<double> crowd = crowdingDistances(pts, members, {0, 1});
  ASSERT_EQ(crowd.size(), 4u);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[3]));
  // Interior distances: normalized neighbour gaps summed over objectives.
  // Point 1: ((4-1)/4 + (5-2)/4) = 1.5; point 2: ((5-2)/4 + (3-1)/4) = 1.25.
  EXPECT_NEAR(crowd[1], 1.5, 1e-12);
  EXPECT_NEAR(crowd[2], 1.25, 1e-12);
}

TEST(Nsga2, CrowdingIsOrderIndependent) {
  const std::vector<std::vector<double>> pts = {
      {5.0, 1.0}, {1.0, 5.0}, {2.0, 3.0}, {4.0, 2.0}};
  const std::vector<double> a = crowdingDistances(pts, {0, 1, 2, 3}, {0, 1});
  const std::vector<double> b = crowdingDistances(pts, {3, 2, 1, 0}, {0, 1});
  // Same member set in reversed order: per-member distances must agree.
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const double lhs = a[i];
    const double rhs = b[3 - i];
    if (std::isinf(lhs)) {
      EXPECT_TRUE(std::isinf(rhs));
    } else {
      EXPECT_DOUBLE_EQ(lhs, rhs);
    }
  }
}

// ----------------------------------------------- environmental selection ----

TEST(Nsga2, SurvivorsPreferRankThenCrowding) {
  // Front 0 holds three points; front 1 holds two. Selecting four must take
  // all of front 0 plus the better-crowded member of front 1.
  const std::vector<std::vector<double>> pts = {
      {1.0, 4.0}, {2.0, 2.0}, {4.0, 1.0},   // rank 0
      {3.0, 4.0}, {4.0, 3.0}, {5.0, 5.0}};  // ranks 1,1,2
  const std::vector<std::size_t> chosen = selectSurvivors(pts, 4, {0, 1});
  ASSERT_EQ(chosen.size(), 4u);
  // Every rank-0 member survives.
  for (std::size_t idx : {0u, 1u, 2u}) {
    EXPECT_NE(std::find(chosen.begin(), chosen.end(), idx), chosen.end());
  }
  // The last slot goes to a rank-1 member, never the rank-2 point.
  EXPECT_EQ(std::find(chosen.begin(), chosen.end(), 5u), chosen.end());
}

TEST(Nsga2, SelectionIsDeterministic) {
  const std::vector<std::vector<double>> pts = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  // All tied: the index tie-break sorts them 0..3, the sort boundaries (0
  // and 3) get infinite crowding, and those two survive — the same answer
  // on every run regardless of input order elsewhere.
  const std::vector<std::size_t> once = selectSurvivors(pts, 2, {0, 1});
  EXPECT_EQ(once, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(selectSurvivors(pts, 2, {0, 1}), once);
}

// -------------------------------------------------------------- variation ----

TEST(Nsga2, VariationIsAPureFunctionOfTheStream) {
  VariationConfig config;
  config.geneMin = 0.002;
  config.geneMax = 0.06;
  const std::vector<double> p1 = {0.01, 0.02, 0.03, 0.04};
  const std::vector<double> p2 = {0.04, 0.03, 0.02, 0.01};
  const numeric::Rng master(2014);
  numeric::Rng a = master.child(3).child(7);
  numeric::Rng b = master.child(3).child(7);
  const std::vector<double> childA = varied(p1, p2, config, a);
  const std::vector<double> childB = varied(p1, p2, config, b);
  EXPECT_EQ(childA, childB);
  // A different (gen, idx) stream yields a different child.
  numeric::Rng c = master.child(3).child(8);
  EXPECT_NE(varied(p1, p2, config, c), childA);
  for (double g : childA) {
    EXPECT_GE(g, config.geneMin);
    EXPECT_LE(g, config.geneMax);
  }
}

TEST(Nsga2, TournamentPrefersLowerRankAndIsDeterministic) {
  const std::vector<std::size_t> ranks = {0, 1, 1, 1};
  const std::vector<double> crowding = {0.5, 9.0, 9.0, 9.0};
  // Index 0 has the best rank: it wins every tournament it is drawn into,
  // so any pick of a rank-1 member means index 0 was not drawn.
  numeric::Rng rngA(7);
  numeric::Rng rngB(7);
  int zeroWins = 0;
  for (int i = 0; i < 64; ++i) {
    const std::size_t a = tournamentPick(ranks, crowding, rngA);
    const std::size_t b = tournamentPick(ranks, crowding, rngB);
    ASSERT_LT(a, 4u);
    EXPECT_EQ(a, b);  // identical streams, identical picks
    if (a == 0) ++zeroWins;
  }
  EXPECT_GT(zeroWins, 0);
}

// ------------------------------------------------------------- lint gate ----

core::FlowJob smallJob() {
  core::FlowJob job;
  job.profile = "small";
  job.period = 4.0;
  job.lintMode = "off";
  return job;
}

EvolveJob tinyEvolve() {
  EvolveJob job;
  job.flow = smallJob();
  job.params.population = 4;
  job.params.generations = 1;
  return job;
}

TEST(EvolveLint, GateRejectsDegenerateParamsInErrorMode) {
  EvolveJob job = tinyEvolve();
  job.flow.lintMode = "error";
  job.params.population = 1;  // evo.population.too-small
  core::TuningFlow flow(core::makeFlowConfig(job.flow));
  EXPECT_THROW((void)runEvolveJob(flow, job), std::runtime_error);
}

TEST(EvolveLint, UnknownObjectiveIsRejected) {
  EvolveJob job = tinyEvolve();
  job.params.objectives = "sigma,yield";
  core::TuningFlow flow(core::makeFlowConfig(job.flow));
  EXPECT_THROW((void)runEvolveJob(flow, job), std::runtime_error);
}

TEST(EvolveLint, MissingPeriodIsRejected) {
  EvolveJob job = tinyEvolve();
  job.flow.period = 0.0;
  core::TuningFlow flow(core::makeFlowConfig(job.flow));
  EXPECT_THROW((void)runEvolveJob(flow, job), std::runtime_error);
}

// ------------------------------------------------------- full tuner runs ----

TEST(EvolveRun, SeededFrontDominatesEveryPaperSweepPoint) {
  const EvolveJob job = tinyEvolve();
  core::TuningFlow flow(core::makeFlowConfig(job.flow));
  const EvolveRunResult result = runEvolveJob(flow, job);

  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.front.empty());
  // Five paper methods x four sweep values, method-major.
  ASSERT_EQ(result.baselines.size(), 20u);
  for (const BaselinePoint& baseline : result.baselines) {
    EXPECT_TRUE(baseline.dominated)
        << baseline.origin << " escaped the evolved front";
  }
  // The archive saw every seed plus the random init and offspring batches.
  EXPECT_GE(result.evaluations, 20u + 2 * job.params.population);
  EXPECT_GE(result.unique, 20u);
  EXPECT_LE(result.unique, result.evaluations);
  // The front is sorted by sigma (ties by area then power).
  for (std::size_t i = 1; i < result.front.size(); ++i) {
    EXPECT_LE(result.front[i - 1].sigma, result.front[i].sigma);
  }
  // Report and summary carry the headline numbers.
  EXPECT_NE(result.report.find("evolve-report v1"), std::string::npos);
  EXPECT_NE(result.summary.find("dominates 20/20"), std::string::npos);
}

TEST(EvolveRun, BitIdenticalAcrossThreadCounts) {
  const EvolveJob job = tinyEvolve();
  const std::size_t previous = parallel::threadCount();

  parallel::setThreadCount(0);  // serial
  core::TuningFlow serialFlow(core::makeFlowConfig(job.flow));
  const EvolveRunResult serial = runEvolveJob(serialFlow, job);

  parallel::setThreadCount(8);
  core::TuningFlow threadedFlow(core::makeFlowConfig(job.flow));
  const EvolveRunResult threaded = runEvolveJob(threadedFlow, job);
  parallel::setThreadCount(previous);

  EXPECT_EQ(serial.report, threaded.report);
  EXPECT_EQ(serial.json, threaded.json);
  EXPECT_EQ(serial.summary, threaded.summary);
  EXPECT_EQ(serial.evaluations, threaded.evaluations);
  EXPECT_EQ(serial.unique, threaded.unique);
}

TEST(EvolveRun, WarmRerunIsByteIdenticalWithZeroCandidateMisses) {
  const fs::path dir = fs::temp_directory_path() / "sct_evo_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const EvolveJob job = tinyEvolve();
  core::FlowConfig coldConfig = core::makeFlowConfig(job.flow);
  coldConfig.cacheDir = dir.string();
  core::TuningFlow coldFlow(std::move(coldConfig));
  const EvolveRunResult cold = runEvolveJob(coldFlow, job);

  obs::setMetricsEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();

  core::FlowConfig warmConfig = core::makeFlowConfig(job.flow);
  warmConfig.cacheDir = dir.string();
  core::TuningFlow warmFlow(std::move(warmConfig));
  const EvolveRunResult warm = runEvolveJob(warmFlow, job);

  const obs::MetricsSnapshot after = registry.snapshot();
  obs::setMetricsEnabled(false);

  EXPECT_EQ(warm.report, cold.report);
  EXPECT_EQ(warm.json, cold.json);
  EXPECT_EQ(warm.summary, cold.summary);

  // Every candidate probe on the warm run answered from a cache tier.
  const std::uint64_t probes =
      after.counterValue("evo.stage.candidate.probes") -
      before.counterValue("evo.stage.candidate.probes");
  const std::uint64_t hits =
      (after.counterValue("evo.stage.candidate.hits") -
       before.counterValue("evo.stage.candidate.hits")) +
      (after.counterValue("evo.stage.candidate.mem_hits") -
       before.counterValue("evo.stage.candidate.mem_hits"));
  const std::uint64_t misses =
      after.counterValue("evo.stage.candidate.misses") -
      before.counterValue("evo.stage.candidate.misses");
  EXPECT_EQ(misses, 0u);
  EXPECT_GT(probes, 0u);
  EXPECT_EQ(hits, probes);

  fs::remove_all(dir);
}

TEST(EvolveRun, ObjectiveSubsetStillDominatesBaselines) {
  EvolveJob job = tinyEvolve();
  job.params.objectives = "sigma,area";
  core::TuningFlow flow(core::makeFlowConfig(job.flow));
  const EvolveRunResult result = runEvolveJob(flow, job);
  EXPECT_TRUE(result.success);
  ASSERT_EQ(result.baselines.size(), 20u);
  for (const BaselinePoint& baseline : result.baselines) {
    EXPECT_TRUE(baseline.dominated) << baseline.origin;
  }
}

}  // namespace
}  // namespace sct::evo
