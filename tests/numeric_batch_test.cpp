// Bit-identity of the batched (structure-of-arrays) numeric core against
// the scalar oracles, layer by layer (DESIGN.md §13):
//   - numeric:  applyBatch()/batchedBilinear() vs bilinear() per instance,
//   - charlib:  delayBatch()/outputSlewBatch() vs delay()/outputSlew(),
//               characterizeMonteCarlo() vs per-instance characterizeSample(),
//   - statlib:  merged mean/sigma tables vs a direct per-entry reduction,
//   - sta:      level-batched propagation vs the scalar sweep.
// All comparisons are exact (bitwise) double equality — the batched paths
// are reorderings of the same expression trees, never approximations.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "charlib/characterizer.hpp"
#include "charlib/delay_model.hpp"
#include "netlist/random.hpp"
#include "numeric/grid_batch.hpp"
#include "numeric/interp.hpp"
#include "numeric/statistics.hpp"
#include "statlib/stat_library.hpp"
#include "sta/sta.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct {
namespace {

using numeric::Axis;
using numeric::EdgePolicy;
using numeric::Grid2d;
using numeric::GridBatch;

/// Strictly increasing axis of `size` random breakpoints.
Axis randomAxis(std::mt19937_64& rng, std::size_t size) {
  std::uniform_real_distribution<double> step(0.01, 0.5);
  Axis axis(size);
  double x = step(rng);
  for (std::size_t i = 0; i < size; ++i) {
    axis[i] = x;
    x += step(rng);
  }
  return axis;
}

Grid2d randomGrid(std::mt19937_64& rng, std::size_t rows, std::size_t cols) {
  std::uniform_real_distribution<double> value(-2.0, 2.0);
  Grid2d grid(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) grid.at(r, c) = value(rng);
  }
  return grid;
}

// ------------------------------------------------------------ numeric ----

TEST(GridBatch, GatherScatterRoundTrip) {
  std::mt19937_64 rng(7);
  std::vector<Grid2d> grids;
  std::vector<const Grid2d*> ptrs;
  for (std::size_t k = 0; k < 5; ++k) grids.push_back(randomGrid(rng, 3, 4));
  for (const Grid2d& g : grids) ptrs.push_back(&g);

  GridBatch batch(3, 4, 5);
  batch.gather(ptrs);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t k = 0; k < 5; ++k) {
        EXPECT_EQ(batch.at(r, c, k), grids[k].at(r, c));
      }
    }
  }

  std::vector<double> flat(12);
  for (std::size_t k = 0; k < 5; ++k) {
    batch.scatterTo(k, flat);
    for (std::size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(flat[i], grids[k].flat()[i]);
    }
  }
}

TEST(BatchedBilinear, BitIdenticalToScalarRandomized) {
  // Randomized axes (including the size-1 degenerate cases), random grids,
  // queries inside, between and outside the breakpoints, both edge policies.
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> query(-0.3, 3.5);
  const std::size_t kInstances = 9;

  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t rows = 1 + trial % 5;
    const std::size_t cols = 1 + (trial / 5) % 5;
    const Axis slewAxis = randomAxis(rng, rows);
    const Axis loadAxis = randomAxis(rng, cols);

    std::vector<Grid2d> grids;
    std::vector<const Grid2d*> ptrs;
    for (std::size_t k = 0; k < kInstances; ++k) {
      grids.push_back(randomGrid(rng, rows, cols));
    }
    for (const Grid2d& g : grids) ptrs.push_back(&g);
    GridBatch batch(rows, cols, kInstances);
    batch.gather(ptrs);

    for (const EdgePolicy policy :
         {EdgePolicy::kClamp, EdgePolicy::kExtrapolate}) {
      for (std::size_t q = 0; q < 8; ++q) {
        const double slew = query(rng);
        const double load = query(rng);
        std::vector<double> out(kInstances, 0.0);
        numeric::batchedBilinear(slewAxis, loadAxis, batch, slew, load, out,
                                 policy);
        for (std::size_t k = 0; k < kInstances; ++k) {
          const double want = numeric::bilinear(slewAxis, loadAxis, grids[k],
                                                slew, load, policy);
          EXPECT_EQ(out[k], want)
              << "trial " << trial << " instance " << k << " rows " << rows
              << " cols " << cols;
        }
      }
    }
  }
}

TEST(BatchedBilinear, ApplyMatchesBilinearWithHoistedComplements) {
  // The hoisted (1 - weight) complements must leave the scalar apply() path
  // bit-identical to bilinear() — the precondition for batch bit identity.
  std::mt19937_64 rng(99);
  const Axis slewAxis = randomAxis(rng, 6);
  const Axis loadAxis = randomAxis(rng, 4);
  const Grid2d grid = randomGrid(rng, 6, 4);
  std::uniform_real_distribution<double> query(-0.5, 4.0);
  for (std::size_t q = 0; q < 100; ++q) {
    const double slew = query(rng);
    const double load = query(rng);
    const numeric::InterpCoords coords =
        numeric::interpCoords(slewAxis, loadAxis, slew, load);
    EXPECT_EQ(coords.rowWeightC, 1.0 - coords.rowWeight);
    EXPECT_EQ(coords.colWeightC, 1.0 - coords.colWeight);
    EXPECT_EQ(coords.apply(grid),
              numeric::bilinear(slewAxis, loadAxis, grid, slew, load));
  }
}

// ------------------------------------------------------------ charlib ----

TEST(DelayModelBatch, BitIdenticalToScalar) {
  const charlib::DelayModel model{charlib::TechnologyParams{},
                                  charlib::VariationParams{}};
  const charlib::CellSpec spec =
      model.makeSpec(liberty::CellFunction::kNand2, 2.0);

  const std::size_t n = 17;
  charlib::LocalDeltasBatch batch;
  batch.resize(n);
  numeric::Rng rng(42);
  for (std::size_t k = 0; k < n; ++k) {
    batch.set(k, model.drawLocal(spec, rng));
  }

  const double cornerFactor = 1.28;
  const double globalFactor = 0.97;
  std::vector<double> delays(n), slews(n);
  for (const double slew : {0.002, 0.05, 0.31, 0.6}) {
    for (const double load : {0.001, 0.02, spec.maxLoad}) {
      model.delayBatch(spec, slew, load, batch, cornerFactor, globalFactor,
                       delays);
      model.outputSlewBatch(spec, slew, load, batch, cornerFactor,
                            globalFactor, slews);
      for (std::size_t k = 0; k < n; ++k) {
        const charlib::LocalDeltas local = batch.get(k);
        EXPECT_EQ(delays[k], model.delay(spec, slew, load, local, cornerFactor,
                                         globalFactor));
        EXPECT_EQ(slews[k], model.outputSlew(spec, slew, load, local,
                                             cornerFactor, globalFactor));
      }
    }
  }
}

void expectLutEq(const liberty::Lut& got, const liberty::Lut& want,
                 const std::string& where) {
  ASSERT_TRUE(got.sameShape(want)) << where;
  const std::span<const double> g = got.values().flat();
  const std::span<const double> w = want.values().flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(g[i], w[i]) << where << " entry " << i;
  }
}

TEST(BatchedCharacterizer, MonteCarloMatchesScalarOracle) {
  // characterizeMonteCarlo() builds all instances per-entry-across-instances;
  // each produced library must equal the scalar characterizeSample() of the
  // same index byte for byte (names, pins, every LUT entry).
  const charlib::Characterizer chr = test::makeSmallCharacterizer();
  const charlib::ProcessCorner corner = charlib::ProcessCorner::typical();
  const std::uint64_t seed = 2024;
  const std::size_t n = 5;

  const std::vector<liberty::Library> batched =
      chr.characterizeMonteCarlo(corner, n, seed);
  ASSERT_EQ(batched.size(), n);

  for (std::size_t k = 0; k < n; ++k) {
    const liberty::Library want = chr.characterizeSample(corner, seed, k);
    const liberty::Library& got = batched[k];
    EXPECT_EQ(got.name(), want.name());
    ASSERT_EQ(got.size(), want.size());
    const std::vector<const liberty::Cell*> gotCells = got.cells();
    const std::vector<const liberty::Cell*> wantCells = want.cells();
    for (std::size_t i = 0; i < gotCells.size(); ++i) {
      const liberty::Cell& a = *gotCells[i];
      const liberty::Cell& b = *wantCells[i];
      const std::string where = "instance " + std::to_string(k) + " cell " +
                                b.name();
      ASSERT_EQ(a.name(), b.name()) << where;
      EXPECT_EQ(a.function(), b.function()) << where;
      EXPECT_EQ(a.driveStrength(), b.driveStrength()) << where;
      EXPECT_EQ(a.area(), b.area()) << where;
      EXPECT_EQ(a.setupTime(), b.setupTime()) << where;
      EXPECT_EQ(a.holdTime(), b.holdTime()) << where;
      if (!b.setupLut().empty()) {
        expectLutEq(a.setupLut(), b.setupLut(), where + " setup");
      }
      ASSERT_EQ(a.pins().size(), b.pins().size()) << where;
      for (std::size_t p = 0; p < a.pins().size(); ++p) {
        EXPECT_EQ(a.pins()[p].name, b.pins()[p].name) << where;
        EXPECT_EQ(a.pins()[p].capacitance, b.pins()[p].capacitance) << where;
        EXPECT_EQ(a.pins()[p].maxCapacitance, b.pins()[p].maxCapacitance)
            << where;
        EXPECT_EQ(a.pins()[p].isClock, b.pins()[p].isClock) << where;
      }
      ASSERT_EQ(a.arcs().size(), b.arcs().size()) << where;
      for (std::size_t t = 0; t < a.arcs().size(); ++t) {
        const liberty::TimingArc& x = a.arcs()[t];
        const liberty::TimingArc& y = b.arcs()[t];
        ASSERT_EQ(x.relatedPin, y.relatedPin) << where;
        ASSERT_EQ(x.outputPin, y.outputPin) << where;
        const std::string arcWhere =
            where + " arc " + y.relatedPin + "->" + y.outputPin;
        expectLutEq(x.riseDelay, y.riseDelay, arcWhere + " riseDelay");
        expectLutEq(x.fallDelay, y.fallDelay, arcWhere + " fallDelay");
        expectLutEq(x.riseTransition, y.riseTransition,
                    arcWhere + " riseTransition");
        expectLutEq(x.fallTransition, y.fallTransition,
                    arcWhere + " fallTransition");
      }
    }
  }
}

// ------------------------------------------------------------ statlib ----

TEST(BatchedStatMerge, MatchesDirectPerEntryReduction) {
  // The SoA gather in buildStatLibrary() must reduce every LUT entry in
  // instance order 0..N-1, exactly like a direct scalar loop over the
  // per-instance tables.
  const charlib::Characterizer chr = test::makeSmallCharacterizer();
  const std::vector<liberty::Library> libs = chr.characterizeMonteCarlo(
      charlib::ProcessCorner::typical(), 6, /*seed=*/7);
  const statlib::StatLibrary stat = statlib::buildStatLibrary(libs);
  EXPECT_EQ(stat.sampleCount(), libs.size());

  const std::vector<const liberty::Cell*> refCells = libs.front().cells();
  for (const liberty::Cell* refCell : refCells) {
    const statlib::StatCell* statCell = stat.findCell(refCell->name());
    ASSERT_NE(statCell, nullptr) << refCell->name();
    for (const liberty::TimingArc& refArc : refCell->arcs()) {
      const statlib::StatArc* statArc =
          statCell->findArc(refArc.relatedPin, refArc.outputPin);
      ASSERT_NE(statArc, nullptr);
      for (const bool rise : {true, false}) {
        const statlib::StatLut& lut = rise ? statArc->rise : statArc->fall;
        for (std::size_t r = 0; r < refArc.riseDelay.rows(); ++r) {
          for (std::size_t c = 0; c < refArc.riseDelay.cols(); ++c) {
            numeric::RunningStats stats;
            for (const liberty::Library& lib : libs) {
              const liberty::TimingArc* arc =
                  lib.findCell(refCell->name())
                      ->findArc(refArc.relatedPin, refArc.outputPin);
              ASSERT_NE(arc, nullptr);
              stats.add(rise ? arc->riseDelay.at(r, c)
                             : arc->fallDelay.at(r, c));
            }
            EXPECT_EQ(lut.mean().at(r, c), stats.mean());
            EXPECT_EQ(lut.sigma().at(r, c), stats.stddev());
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------- sta ----

TEST(LevelBatchedSta, BitIdenticalToScalarSweep) {
  // Full-sweep cross check on synthesized random DAGs: the level-batched
  // analyzer (default mode) against diffAgainstReference(), whose reference
  // is pinned to the scalar per-instance path.
  static charlib::Characterizer chr = test::makeSmallCharacterizer();
  static liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  const synth::Synthesizer synth(lib);

  for (const std::uint64_t seed : {1ull, 23ull, 77ull}) {
    netlist::RandomDagConfig config;
    config.seed = seed;
    config.gates = 150;
    config.flipFlops = 14;
    sta::ClockSpec clock;
    clock.period = 4.0;
    synth::SynthesisResult mapped =
        synth.run(netlist::generateRandomDag(config), clock);
    ASSERT_EQ(mapped.design.validate(), "");

    sta::TimingAnalyzer batched(mapped.design, lib, clock);
    ASSERT_TRUE(batched.levelBatchedPropagation());
    ASSERT_TRUE(batched.analyze());
    EXPECT_EQ(batched.diffAgainstReference(), "") << "seed " << seed;

    // Belt and braces: an explicitly scalar analyzer agrees net by net.
    sta::TimingAnalyzer scalar(mapped.design, lib, clock);
    scalar.setLevelBatchedPropagation(false);
    ASSERT_TRUE(scalar.analyze());
    EXPECT_EQ(batched.worstSlack(), scalar.worstSlack());
    EXPECT_EQ(batched.totalNegativeSlack(), scalar.totalNegativeSlack());
    EXPECT_EQ(batched.worstHoldSlack(), scalar.worstHoldSlack());
    for (netlist::NetIndex n = 0; n < mapped.design.netCount(); ++n) {
      ASSERT_EQ(batched.netArrival(n), scalar.netArrival(n)) << "net " << n;
      ASSERT_EQ(batched.netSlew(n), scalar.netSlew(n)) << "net " << n;
      ASSERT_EQ(batched.netRequired(n), scalar.netRequired(n)) << "net " << n;
      ASSERT_EQ(batched.netMinArrival(n), scalar.netMinArrival(n))
          << "net " << n;
    }
  }
}

TEST(LevelBatchedSta, TinyChainMatchesScalar) {
  const liberty::Library lib = test::makeTinyLibrary();
  netlist::Design design = test::makeInvChain(6);
  const liberty::Cell* inv = lib.findCell("INV_1");
  const liberty::Cell* dff = lib.findCell("FD1_1");
  for (netlist::InstIndex i = 0; i < design.instanceCount(); ++i) {
    auto& inst = design.instance(i);
    if (!inst.alive) continue;
    design.bindCell(i, netlist::isSequential(inst.op) ? dff : inv);
  }
  sta::ClockSpec clock;
  clock.period = 1.0;
  sta::TimingAnalyzer analyzer(design, lib, clock);
  ASSERT_TRUE(analyzer.analyze());
  EXPECT_EQ(analyzer.diffAgainstReference(), "");
}

}  // namespace
}  // namespace sct
