// Unit and integration tests for the synthesis substrate: decomposition
// rewrites, technology mapping, gate sizing, buffering, window legalization
// and the min-period search protocol.

#include <gtest/gtest.h>

#include <set>

#include "charlib/characterizer.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "statlib/stat_library.hpp"
#include "synth/decompose.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"

namespace sct::synth {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::NetIndex;
using netlist::NetlistBuilder;
using netlist::PrimOp;

/// Usable-op predicate allowing only the listed ops.
OpUsable only(std::set<PrimOp> ops) {
  return [ops = std::move(ops)](PrimOp op) { return ops.contains(op); };
}

std::map<PrimOp, std::size_t> opCensus(const Design& d) {
  std::map<PrimOp, std::size_t> census;
  for (const auto& inst : d.instances()) {
    if (inst.alive) ++census[inst.op];
  }
  return census;
}

// ----------------------------------------------------------- decompose ----

TEST(Decompose, And2IntoNandInv) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex z = b.and2(b.inputPort("a"), b.inputPort("b"));
  b.outputPort("z", z);
  ASSERT_TRUE(decomposeInstance(d, 0, only({PrimOp::kNand2, PrimOp::kInv})));
  EXPECT_EQ(d.validate(), "");
  const auto census = opCensus(d);
  EXPECT_EQ(census.at(PrimOp::kNand2), 1u);
  EXPECT_EQ(census.at(PrimOp::kInv), 1u);
  EXPECT_FALSE(census.contains(PrimOp::kAnd2));
  // The original output net must now be driven by the new logic.
  EXPECT_NE(d.net(z).driver, netlist::kNoInst);
}

TEST(Decompose, XorIntoNandNetwork) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex z = b.xor2(b.inputPort("a"), b.inputPort("b"));
  b.outputPort("z", z);
  ASSERT_TRUE(decomposeInstance(d, 0, only({PrimOp::kNand2})));
  EXPECT_EQ(d.validate(), "");
  EXPECT_EQ(opCensus(d).at(PrimOp::kNand2), 4u);
}

TEST(Decompose, Mux2IntoNands) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex z =
      b.mux2(b.inputPort("d0"), b.inputPort("d1"), b.inputPort("s"));
  b.outputPort("z", z);
  ASSERT_TRUE(
      decomposeInstance(d, 0, only({PrimOp::kNand2, PrimOp::kInv})));
  EXPECT_EQ(d.validate(), "");
  const auto census = opCensus(d);
  EXPECT_EQ(census.at(PrimOp::kNand2), 3u);
  EXPECT_EQ(census.at(PrimOp::kInv), 1u);
}

TEST(Decompose, FullAdderBothOutputsDriven) {
  Design d("t");
  NetlistBuilder b(d);
  auto [s, co] =
      b.fullAdder(b.inputPort("a"), b.inputPort("b"), b.inputPort("ci"));
  b.outputPort("s", s);
  b.outputPort("co", co);
  ASSERT_TRUE(decomposeInstance(
      d, 0, only({PrimOp::kXor2, PrimOp::kAnd2, PrimOp::kOr2})));
  EXPECT_EQ(d.validate(), "");
  EXPECT_NE(d.net(s).driver, netlist::kNoInst);
  EXPECT_NE(d.net(co).driver, netlist::kNoInst);
  const auto census = opCensus(d);
  EXPECT_EQ(census.at(PrimOp::kXor2), 2u);
  EXPECT_EQ(census.at(PrimOp::kAnd2), 2u);
  EXPECT_EQ(census.at(PrimOp::kOr2), 1u);
}

TEST(Decompose, DffEIntoMuxAndDff) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex q =
      b.dff(b.inputPort("d"), PrimOp::kDffE, b.inputPort("e"));
  b.outputPort("q", q);
  ASSERT_TRUE(decomposeInstance(
      d, 0, only({PrimOp::kMux2, PrimOp::kDffR})));
  EXPECT_EQ(d.validate(), "");
  const auto census = opCensus(d);
  EXPECT_EQ(census.at(PrimOp::kMux2), 1u);
  EXPECT_EQ(census.at(PrimOp::kDffR), 1u);
  // Recirculation: the mux must read the flop output.
  bool muxReadsQ = false;
  for (const auto& inst : d.instances()) {
    if (!inst.alive || inst.op != PrimOp::kMux2) continue;
    for (NetIndex in : inst.inputs) muxReadsQ |= (in == q);
  }
  EXPECT_TRUE(muxReadsQ);
}

TEST(Decompose, FailsWithoutBaseOpsAndRestores) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex z = b.and2(b.inputPort("a"), b.inputPort("b"));
  b.outputPort("z", z);
  EXPECT_FALSE(decomposeInstance(d, 0, only({PrimOp::kXor2})));
  // Design restored: the AND2 instance is alive again and valid.
  EXPECT_EQ(d.validate(), "");
  EXPECT_EQ(opCensus(d).at(PrimOp::kAnd2), 1u);
}

TEST(Decompose, SequentialBaseOpsNotDecomposable) {
  EXPECT_FALSE(isDecomposable(PrimOp::kDff));
  EXPECT_FALSE(isDecomposable(PrimOp::kDffR));
  EXPECT_FALSE(isDecomposable(PrimOp::kConst0));
  EXPECT_TRUE(isDecomposable(PrimOp::kDffE));
  EXPECT_TRUE(isDecomposable(PrimOp::kFullAdder));
}

TEST(Decompose, DecomposeUnusableRewritesWholeDesign) {
  Design d = netlist::generateAccumulator(8);
  const auto before = opCensus(d);
  ASSERT_TRUE(before.contains(PrimOp::kFullAdder));
  ASSERT_TRUE(before.contains(PrimOp::kMux2));
  // Only a base set is "usable": everything else must be rewritten.
  const long rewritten = decomposeUnusable(
      d, only({PrimOp::kInv, PrimOp::kNand2, PrimOp::kNor2, PrimOp::kDffR,
               PrimOp::kConst0, PrimOp::kConst1}));
  EXPECT_GT(rewritten, 0);
  EXPECT_EQ(d.validate(), "");
  for (const auto& [op, count] : opCensus(d)) {
    EXPECT_TRUE(op == PrimOp::kInv || op == PrimOp::kNand2 ||
                op == PrimOp::kNor2 || op == PrimOp::kDffR ||
                op == PrimOp::kConst0 || op == PrimOp::kConst1)
        << netlist::toString(op);
  }
}

// ----------------------------------------------------------- synthesis ----

class SynthesisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 25, 7);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    delete lib_;
    delete chr_;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
};

charlib::Characterizer* SynthesisTest::chr_ = nullptr;
liberty::Library* SynthesisTest::lib_ = nullptr;
statlib::StatLibrary* SynthesisTest::stat_ = nullptr;

TEST_F(SynthesisTest, FamiliesSortedAndComplete) {
  const Synthesizer synth(*lib_);
  const auto& invs = synth.family(PrimOp::kInv);
  ASSERT_EQ(invs.size(), 19u);
  for (std::size_t i = 1; i < invs.size(); ++i) {
    EXPECT_LT(invs[i - 1]->driveStrength(), invs[i]->driveStrength());
  }
  EXPECT_EQ(synth.family(PrimOp::kFullAdder).size(), 20u);
  EXPECT_EQ(synth.family(PrimOp::kConst0).size(), 1u);
}

TEST_F(SynthesisTest, MapsEveryInstance) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 5.0;
  const SynthesisResult result =
      synth.run(netlist::generateAccumulator(8), clock);
  for (const auto& inst : result.design.instances()) {
    if (inst.alive) EXPECT_NE(inst.cell, nullptr);
  }
  EXPECT_EQ(result.design.validate(), "");
}

TEST_F(SynthesisTest, MeetsRelaxedTiming) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  EXPECT_TRUE(result.timingMet);
  EXPECT_TRUE(result.legal);
  EXPECT_GT(result.worstSlack, 0.0);
  EXPECT_GT(result.area, 0.0);
}

TEST_F(SynthesisTest, FailsImpossibleTiming) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 0.35;  // uncertainty 0.3 leaves 0.05 ns for logic
  const SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  EXPECT_FALSE(result.timingMet);
  EXPECT_FALSE(result.success());
}

TEST_F(SynthesisTest, DeterministicAcrossRuns) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 2.0;
  const Design subject = netlist::generateAccumulator(16);
  const SynthesisResult a = synth.run(subject, clock);
  const SynthesisResult b = synth.run(subject, clock);
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.worstSlack, b.worstSlack);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.buffersInserted, b.buffersInserted);
  EXPECT_EQ(a.cellUsage(), b.cellUsage());
}

TEST_F(SynthesisTest, FanoutIsBounded) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 6.0;
  SynthesisOptions options;
  options.maxFanout = 8;
  netlist::McuConfig small;
  small.registers = 8;
  small.timers = 1;
  small.dmaChannels = 0;
  small.gpioWidth = 16;
  small.cacheTagEntries = 0;
  small.macUnits = 0;
  small.bankedRegisters = 1;
  small.interruptSources = 8;
  const SynthesisResult result =
      synth.run(netlist::generateMcu(small), clock, options);
  EXPECT_TRUE(result.timingMet);
  for (const auto& net : result.design.nets()) {
    EXPECT_LE(net.sinks.size(), 8u) << net.name;
  }
  EXPECT_GT(result.buffersInserted, 0u);
}

TEST_F(SynthesisTest, TighterTimingCostsArea) {
  const Synthesizer synth(*lib_);
  const Design subject = netlist::generateAccumulator(24);
  sta::ClockSpec relaxed;
  relaxed.period = 9.0;
  sta::ClockSpec tight;
  tight.period = 2.2;
  const SynthesisResult relaxedResult = synth.run(subject, relaxed);
  const SynthesisResult tightResult = synth.run(subject, tight);
  ASSERT_TRUE(relaxedResult.timingMet);
  if (tightResult.timingMet) {
    EXPECT_GE(tightResult.area, relaxedResult.area);
  }
}

TEST_F(SynthesisTest, MinPeriodBisectionBrackets) {
  const Synthesizer synth(*lib_);
  const Design subject = netlist::generateAccumulator(12);
  sta::ClockSpec clock;
  const auto minPeriod = synth.findMinPeriod(subject, clock, 0.3, 12.0, 0.05);
  ASSERT_TRUE(minPeriod.has_value());
  // Feasible at the returned period...
  clock.period = *minPeriod;
  EXPECT_TRUE(synth.run(subject, clock).success());
  // ...and infeasible noticeably below it.
  clock.period = *minPeriod - 0.3;
  EXPECT_FALSE(synth.run(subject, clock).success());
}

TEST_F(SynthesisTest, MinPeriodNulloptWhenHiInfeasible) {
  const Synthesizer synth(*lib_);
  const Design subject = netlist::generateAccumulator(16);
  sta::ClockSpec clock;
  EXPECT_FALSE(
      synth.findMinPeriod(subject, clock, 0.1, 0.35, 0.05).has_value());
}

TEST_F(SynthesisTest, RespectsTunedWindows) {
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      *stat_,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  const Synthesizer synth(*lib_, &constraints);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  ASSERT_TRUE(result.success());

  // Verify every mapped instance operates inside its window.
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());
  for (std::size_t i = 0; i < result.design.instanceCount(); ++i) {
    const auto& inst = result.design.instance(static_cast<InstIndex>(i));
    if (!inst.alive || inst.cell == nullptr) continue;
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const auto window = constraints.window(
          inst.cell->name(), sta::outputPinName(inst, slot));
      if (!window) continue;
      const double load = sta.netLoad(inst.outputs[slot]);
      EXPECT_LE(load, window->maxLoad * (1 + 1e-9))
          << inst.name << " (" << inst.cell->name() << ")";
      if (!netlist::isSequential(inst.op)) {
        for (NetIndex in : inst.inputs) {
          EXPECT_LE(sta.netSlew(in), window->maxSlew * (1 + 1e-9))
              << inst.name;
        }
      }
    }
  }
}

TEST_F(SynthesisTest, CompiledWindowsMatchStringLookupBitForBit) {
  // The slot-interned CompiledConstraintView is a pure lookup optimization:
  // toggling it must not change a single mapping decision.
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      *stat_,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kCellLoadSlope,
                                      0.03));
  const Synthesizer synth(*lib_, &constraints);
  const Design subject = netlist::generateAccumulator(16);
  sta::ClockSpec clock;
  clock.period = 6.0;

  SynthesisOptions compiled;
  compiled.compiledConstraintWindows = true;
  SynthesisOptions stringPath;
  stringPath.compiledConstraintWindows = false;
  const SynthesisResult a = synth.run(subject, clock, compiled);
  const SynthesisResult b = synth.run(subject, clock, stringPath);

  EXPECT_EQ(a.timingMet, b.timingMet);
  EXPECT_EQ(a.legal, b.legal);
  EXPECT_EQ(a.worstSlack, b.worstSlack);
  EXPECT_EQ(a.tns, b.tns);
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.buffersInserted, b.buffersInserted);
  EXPECT_EQ(a.resizes, b.resizes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.cellUsage(), b.cellUsage());
}

TEST_F(SynthesisTest, CompiledViewMirrorsConstraintSemantics) {
  tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      *stat_,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  // Kill one family outright so the unusable path is exercised too.
  const liberty::Cell* killed = nullptr;
  for (const liberty::Cell* cell : lib_->cells()) {
    if (cell->function() == liberty::CellFunction::kMux2) {
      constraints.markUnusable(cell->name());
      killed = cell;
    }
  }
  ASSERT_NE(killed, nullptr);

  const tuning::CompiledConstraintView view(constraints, *lib_);
  EXPECT_FALSE(view.usable(*killed));
  for (const liberty::Cell* cell : lib_->cells()) {
    if (cell->function() == liberty::CellFunction::kMux2) continue;
    EXPECT_TRUE(view.usable(*cell)) << cell->name();
    const tuning::PinWindow* slot = view.window(*cell, 0);
    const auto byName = constraints.window(cell->name(), "Z");
    if (byName) {
      ASSERT_NE(slot, nullptr) << cell->name();
      EXPECT_EQ(slot->maxLoad, byName->maxLoad);
      EXPECT_EQ(slot->maxSlew, byName->maxSlew);
      EXPECT_EQ(slot->minLoad, byName->minLoad);
    }
  }
}

TEST_F(SynthesisTest, UnusableFamiliesForceDecomposition) {
  // Build constraints that kill the whole MUX2 family.
  tuning::LibraryConstraints constraints;
  for (const liberty::Cell* cell : lib_->cells()) {
    if (cell->function() == liberty::CellFunction::kMux2) {
      constraints.markUnusable(cell->name());
    }
  }
  const Synthesizer synth(*lib_, &constraints);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const SynthesisResult result =
      synth.run(netlist::generateAccumulator(8), clock);
  ASSERT_TRUE(result.success());
  EXPECT_GT(result.decomposed, 0u);
  for (const auto& inst : result.design.instances()) {
    if (inst.alive) {
      EXPECT_NE(inst.op, PrimOp::kMux2);
    }
  }
}

TEST_F(SynthesisTest, RelaxedUsesSmallerCellsThanTight) {
  const Synthesizer synth(*lib_);
  const Design subject = netlist::generateAccumulator(24);
  sta::ClockSpec relaxed;
  relaxed.period = 9.0;
  sta::ClockSpec tight;
  tight.period = 2.2;
  auto meanStrength = [](const SynthesisResult& r) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& inst : r.design.instances()) {
      if (inst.alive && inst.cell != nullptr) {
        sum += inst.cell->driveStrength();
        ++n;
      }
    }
    return sum / static_cast<double>(n);
  };
  const SynthesisResult r = synth.run(subject, relaxed);
  const SynthesisResult t = synth.run(subject, tight);
  if (t.timingMet) {
    EXPECT_LE(meanStrength(r), meanStrength(t) + 1e-9);
  }
}

TEST_F(SynthesisTest, RebindDesignSwapsCorners) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  SynthesisResult result = synth.run(netlist::generateAccumulator(8), clock);
  ASSERT_TRUE(result.success());

  const liberty::Library slow =
      chr_->characterizeNominal(charlib::ProcessCorner::slow());
  netlist::Design design = result.design;
  ASSERT_TRUE(rebindDesign(design, slow));
  // Cells keep their names but now point into the slow library.
  for (const auto& inst : design.instances()) {
    if (!inst.alive || inst.cell == nullptr) continue;
    EXPECT_EQ(inst.cell, slow.findCell(inst.cell->name()));
  }
  // Slow-corner arrivals exceed typical ones.
  sta::TimingAnalyzer fastSta(result.design, *lib_, clock);
  sta::TimingAnalyzer slowSta(design, slow, clock);
  ASSERT_TRUE(fastSta.analyze());
  ASSERT_TRUE(slowSta.analyze());
  EXPECT_LT(fastSta.worstSlack() + 0.05, slowSta.clock().period);  // sanity
  EXPECT_GT(slowSta.criticalPath().endpoint.arrival,
            fastSta.criticalPath().endpoint.arrival * 1.2);
}

TEST_F(SynthesisTest, RebindDesignFailsOnMissingCell) {
  const Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  SynthesisResult result = synth.run(netlist::generateAccumulator(8), clock);
  liberty::Library sparse("sparse");
  netlist::Design design = result.design;
  EXPECT_FALSE(rebindDesign(design, sparse));
  // Untouched: still bound into the original library.
  for (const auto& inst : design.instances()) {
    if (inst.alive) EXPECT_NE(inst.cell, nullptr);
  }
}

}  // namespace
}  // namespace sct::synth
