// Unit tests for the numeric substrate: RNG, statistics, grids, bilinear
// interpolation (paper eqs. (2)-(4)).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/grid2d.hpp"
#include "numeric/interp.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

namespace sct::numeric {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  // Variance of U(0,1) is 1/12.
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniformInt(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 0.25));
  EXPECT_NEAR(stats.mean(), 3.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(23);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(1);  // same tag, later fork -> different stream
  EXPECT_NE(childA.next(), childB.next());
}

TEST(Rng, ForkSameTagSameStateReproducible) {
  Rng p1(29);
  Rng p2(29);
  Rng c1 = p1.fork(99);
  Rng c2 = p2.fork(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, HashTagStableAndDistinct) {
  EXPECT_EQ(Rng::hashTag("IV_1"), Rng::hashTag("IV_1"));
  EXPECT_NE(Rng::hashTag("IV_1"), Rng::hashTag("IV_2"));
  EXPECT_NE(Rng::hashTag(""), Rng::hashTag("a"));
}

// --------------------------------------------------------- statistics ----

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, MatchesClosedForm) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, ShiftInvarianceOfVariance) {
  RunningStats a;
  RunningStats b;
  const std::vector<double> xs = {0.31, 0.45, 0.12, 0.99, 0.77};
  for (double x : xs) {
    a.add(x);
    b.add(x + 1e6);  // numerically hostile shift
  }
  EXPECT_NEAR(a.variance(), b.variance(), 1e-9);
}

TEST(RunningStats, MergeMatchesSingleStream) {
  // Split a sample at every possible point: merged halves must reproduce the
  // single-stream mean/sigma (to rounding) and count/min/max exactly.
  Rng rng(99);
  std::vector<double> xs(257);
  for (double& x : xs) x = rng.normal(3.0, 0.7);
  RunningStats whole;
  for (double x : xs) whole.add(x);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{128},
                            xs.size() - 1, xs.size()}) {
    RunningStats left;
    RunningStats right;
    for (std::size_t i = 0; i < split; ++i) left.add(xs[i]);
    for (std::size_t i = split; i < xs.size(); ++i) right.add(xs[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
  }
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  const RunningStats copy = s;
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), copy.count());
  EXPECT_DOUBLE_EQ(s.mean(), copy.mean());
  EXPECT_DOUBLE_EQ(s.variance(), copy.variance());
  empty.merge(copy);
  EXPECT_EQ(empty.count(), copy.count());
  EXPECT_DOUBLE_EQ(empty.mean(), copy.mean());
  EXPECT_DOUBLE_EQ(empty.variance(), copy.variance());
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 2.0);
}

TEST(Rng, ChildIsPureFunctionOfStateAndTag) {
  const Rng parent(42);
  Rng a = parent.child(7);
  Rng b = parent.child(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  // Deriving a child does not advance the parent.
  Rng untouched(42);
  Rng p = parent;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p.next(), untouched.next());
}

TEST(Rng, ChildTagsDecorrelate) {
  const Rng parent(42);
  Rng a = parent.child(1);
  Rng b = parent.child(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Summarize, MatchesRunningStats) {
  const std::vector<double> xs = {0.2, 0.4, 0.9, 1.4};
  const NormalSummary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.725, 1e-12);
  EXPECT_NEAR(s.sigma, std::sqrt((0.275625 + 0.105625 + 0.030625 + 0.455625) / 3.0),
              1e-12);
}

TEST(NormalSummary, VariabilityIsCoefficientOfVariation) {
  // Paper Fig. 1: both distributions have variability 0.02 but different
  // sigma — the reason sigma, not CV, is the tuning metric.
  const NormalSummary narrow{0.5, 0.01};
  const NormalSummary wide{5.0, 0.1};
  EXPECT_DOUBLE_EQ(narrow.variability(), 0.02);
  EXPECT_DOUBLE_EQ(wide.variability(), 0.02);
  EXPECT_LT(narrow.sigma, wide.sigma);
}

TEST(NormalSummary, VariabilityZeroMean) {
  const NormalSummary s{0.0, 0.1};
  EXPECT_DOUBLE_EQ(s.variability(), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats) {
  const std::vector<double> xs = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 0.75);
}

// --------------------------------------------------------------- grid ----

TEST(Grid2d, StoresAndRetrieves) {
  Grid2d g(2, 3, 1.5);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.cols(), 3u);
  EXPECT_DOUBLE_EQ(g.at(1, 2), 1.5);
  g.at(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(g.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(g.minValue(), -2.0);
  EXPECT_DOUBLE_EQ(g.maxValue(), 1.5);
}

TEST(Grid2d, MaxWithTakesEntrywiseMax) {
  Grid2d a(2, 2, 1.0);
  Grid2d b(2, 2, 0.0);
  b.at(0, 1) = 5.0;
  a.maxWith(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 5.0);
}

TEST(Axis, StrictlyIncreasingDetection) {
  EXPECT_TRUE(isStrictlyIncreasing({1.0}));
  EXPECT_TRUE(isStrictlyIncreasing({1.0, 2.0, 3.0}));
  EXPECT_FALSE(isStrictlyIncreasing({}));
  EXPECT_FALSE(isStrictlyIncreasing({1.0, 1.0}));
  EXPECT_FALSE(isStrictlyIncreasing({2.0, 1.0}));
}

TEST(Axis, BracketFindsSegment) {
  const Axis axis = {0.0, 1.0, 2.0, 4.0};
  EXPECT_EQ(bracket(axis, -1.0), 0u);
  EXPECT_EQ(bracket(axis, 0.0), 0u);
  EXPECT_EQ(bracket(axis, 0.5), 0u);
  EXPECT_EQ(bracket(axis, 1.0), 1u);
  EXPECT_EQ(bracket(axis, 3.0), 2u);
  EXPECT_EQ(bracket(axis, 4.0), 2u);  // clamped to last segment
  EXPECT_EQ(bracket(axis, 9.0), 2u);
}

// -------------------------------------------------------------- interp ----

class BilinearTest : public ::testing::Test {
 protected:
  // f(s, l) = 2 + 3 s + 5 l, exactly bilinear.
  BilinearTest() : grid_(3, 3) {
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        grid_.at(r, c) = value(slew_[r], load_[c]);
      }
    }
  }
  static double value(double s, double l) { return 2.0 + 3.0 * s + 5.0 * l; }
  Axis slew_ = {0.0, 1.0, 2.0};
  Axis load_ = {0.0, 10.0, 20.0};
  Grid2d grid_;
};

TEST_F(BilinearTest, ExactAtGridPoints) {
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(bilinear(slew_, load_, grid_, slew_[r], load_[c]),
                       grid_.at(r, c));
    }
  }
}

TEST_F(BilinearTest, ExactForBilinearFunctionInside) {
  EXPECT_NEAR(bilinear(slew_, load_, grid_, 0.5, 5.0), value(0.5, 5.0), 1e-12);
  EXPECT_NEAR(bilinear(slew_, load_, grid_, 1.7, 13.0), value(1.7, 13.0),
              1e-12);
}

TEST_F(BilinearTest, ClampsOutsideRange) {
  EXPECT_DOUBLE_EQ(bilinear(slew_, load_, grid_, -5.0, -5.0), value(0.0, 0.0));
  EXPECT_DOUBLE_EQ(bilinear(slew_, load_, grid_, 99.0, 99.0),
                   value(2.0, 20.0));
}

TEST_F(BilinearTest, ExtrapolatesLinearly) {
  EXPECT_NEAR(bilinear(slew_, load_, grid_, 3.0, 25.0,
                       EdgePolicy::kExtrapolate),
              value(3.0, 25.0), 1e-9);
  EXPECT_NEAR(bilinear(slew_, load_, grid_, -1.0, 5.0,
                       EdgePolicy::kExtrapolate),
              value(-1.0, 5.0), 1e-9);
}

TEST_F(BilinearTest, MatchesPaperEquationSteps) {
  // Eqs. (2)-(4) computed by hand for S = 0.5, L = 5:
  //   P1 = 0.5*Q11 + 0.5*Q21 (row i), P2 same on row i+1, X = mix by slew.
  const double q11 = grid_.at(0, 0);
  const double q21 = grid_.at(0, 1);
  const double q12 = grid_.at(1, 0);
  const double q22 = grid_.at(1, 1);
  const double p1 = 0.5 * q11 + 0.5 * q21;
  const double p2 = 0.5 * q12 + 0.5 * q22;
  const double x = 0.5 * p1 + 0.5 * p2;
  EXPECT_NEAR(bilinear(slew_, load_, grid_, 0.5, 5.0), x, 1e-12);
}

TEST(Bilinear, SingleRowFallsBackToLinear) {
  const Axis slew = {1.0};
  const Axis load = {0.0, 2.0};
  Grid2d g(1, 2);
  g.at(0, 0) = 10.0;
  g.at(0, 1) = 20.0;
  EXPECT_DOUBLE_EQ(bilinear(slew, load, g, 99.0, 1.0), 15.0);
}

TEST(Bilinear, SingleColumnFallsBackToLinear) {
  const Axis slew = {0.0, 2.0};
  const Axis load = {1.0};
  Grid2d g(2, 1);
  g.at(0, 0) = 10.0;
  g.at(1, 0) = 30.0;
  EXPECT_DOUBLE_EQ(bilinear(slew, load, g, 1.0, 99.0), 20.0);
}

TEST(Bilinear, SinglePointGrid) {
  Grid2d g(1, 1);
  g.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(bilinear({1.0}, {1.0}, g, 0.0, 99.0), 7.0);
}

TEST(Linear, InterpolatesAndClamps) {
  const Axis axis = {0.0, 1.0, 3.0};
  const std::vector<double> values = {0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(linear(axis, values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(linear(axis, values, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(linear(axis, values, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(linear(axis, values, 9.0), 30.0);
  EXPECT_DOUBLE_EQ(linear(axis, values, 9.0, EdgePolicy::kExtrapolate), 90.0);
}

/// Property sweep: bilinear interpolation of random monotone grids is
/// monotone along both axes and bounded by grid extremes.
class BilinearPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BilinearPropertyTest, MonotoneAndBounded) {
  Rng rng(GetParam());
  const Axis slew = {0.0, 0.3, 0.7, 1.0};
  const Axis load = {0.0, 1.0, 4.0, 9.0};
  Grid2d g(4, 4);
  // Separable increasing offsets guarantee monotonicity in both directions.
  std::vector<double> rowOff(4);
  std::vector<double> colOff(4);
  for (std::size_t i = 1; i < 4; ++i) {
    rowOff[i] = rowOff[i - 1] + rng.uniform(0.01, 1.0);
    colOff[i] = colOff[i - 1] + rng.uniform(0.01, 1.0);
  }
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      g.at(r, c) = rowOff[r] + colOff[c];
    }
  }
  double prev = -1e9;
  for (double l = 0.0; l <= 9.0; l += 0.37) {
    const double v = bilinear(slew, load, g, 0.5, l);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, g.minValue() - 1e-12);
    EXPECT_LE(v, g.maxValue() + 1e-12);
    prev = v;
  }
  prev = -1e9;
  for (double s = 0.0; s <= 1.0; s += 0.09) {
    const double v = bilinear(slew, load, g, s, 3.0);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BilinearPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sct::numeric
