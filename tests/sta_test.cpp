// Unit tests for the static timing engine: loads, levelization,
// arrival/slew propagation through LUTs, setup slack, required times and
// worst-path extraction — verified by hand on tiny linear-LUT designs.

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/builder.hpp"
#include "sta/sta.hpp"
#include "test_helpers.hpp"

namespace sct::sta {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::NetIndex;
using netlist::NetlistBuilder;
using netlist::PrimOp;

/// Binds every instance to the named cells of the tiny library in creation
/// order. Each op maps to one fixed cell.
void bindAll(Design& d, const liberty::Library& lib) {
  for (std::size_t i = 0; i < d.instanceCount(); ++i) {
    netlist::Instance& inst = d.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    const liberty::Cell* cell = nullptr;
    switch (inst.op) {
      case PrimOp::kInv: cell = lib.findCell("INV_1"); break;
      case PrimOp::kNand2: cell = lib.findCell("ND2_1"); break;
      case PrimOp::kBuf: cell = lib.findCell("BF_2"); break;
      case PrimOp::kDff: cell = lib.findCell("FD1_1"); break;
      default: FAIL() << "unexpected op";
    }
    d.bindCell(static_cast<InstIndex>(i), cell);
  }
}

ClockSpec tinyClock(double period = 1.0) {
  ClockSpec clock;
  clock.period = period;
  clock.uncertainty = 0.1;
  clock.clockSlew = 0.05;
  clock.inputSlew = 0.02;
  clock.inputDelay = 0.0;
  clock.outputLoad = 0.002;
  clock.wireLoad = WireLoadModel{0.0, 0.001, 0.0};
  return clock;
}

class StaChainTest : public ::testing::Test {
 protected:
  // din -> FF -> INV -> INV -> FF -> dout
  StaChainTest() : lib_(test::makeTinyLibrary()), design_(test::makeInvChain(2)) {
    bindAll(design_, lib_);
  }
  liberty::Library lib_;
  Design design_;
};

TEST_F(StaChainTest, AnalyzeSucceeds) {
  TimingAnalyzer sta(design_, lib_, tinyClock());
  EXPECT_TRUE(sta.analyze());
}

TEST_F(StaChainTest, LoadsAreSinkCapsPlusWire) {
  TimingAnalyzer sta(design_, lib_, tinyClock());
  ASSERT_TRUE(sta.analyze());
  // First inverter's output net: one INV_1 sink (cap 0.001) + wire 0.001.
  // Find it: the net driven by the first INV.
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const netlist::Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (inst.op != PrimOp::kInv) continue;
    const double load = sta.netLoad(inst.outputs[0]);
    const netlist::Net& net = design_.net(inst.outputs[0]);
    if (net.sinks.size() == 1 &&
        design_.instance(net.sinks[0].instance).op == PrimOp::kInv) {
      EXPECT_NEAR(load, 0.001 + 0.001, 1e-12);
    }
  }
}

TEST_F(StaChainTest, ArrivalMatchesHandComputation) {
  const ClockSpec clock = tinyClock();
  TimingAnalyzer sta(design_, lib_, clock);
  ASSERT_TRUE(sta.analyze());

  // Hand computation with the tiny library's linear LUTs:
  //   delay(cell) = base + slewCoef*slewIn + loadCoef*load
  //   slewOut     = base*0.5 + slewCoef*0.5*slewIn + loadCoef*1.5*load
  // FF (FD1_1): base 0.03, slewCoef 0.08, loadCoef 4.0, clock slew 0.05.
  // Q net load: INV_1 A cap 0.001 + wire 0.001 = 0.002.
  const double ffLoad = 0.002;
  const double ffDelay = 0.03 + 0.08 * clock.clockSlew + 4.0 * ffLoad;
  const double ffSlew = 0.015 + 0.04 * clock.clockSlew + 6.0 * ffLoad;
  // INV1: load = 0.002 (INV sink + wire), INV_1: base .01 sc .1 lc 4.
  const double inv1Delay = 0.01 + 0.1 * ffSlew + 4.0 * 0.002;
  const double inv1Slew = 0.005 + 0.05 * ffSlew + 6.0 * 0.002;
  // INV2: load = FF D cap 0.0012 + wire 0.001 = 0.0022.
  const double inv2Delay = 0.01 + 0.1 * inv1Slew + 4.0 * 0.0022;

  // Endpoint is the second FF's D input.
  const auto& endpoints = sta.endpoints();
  double endpointArrival = -1.0;
  for (const Endpoint& ep : endpoints) {
    if (ep.instance != netlist::kNoInst && ep.arrival > endpointArrival) {
      endpointArrival = ep.arrival;
    }
  }
  EXPECT_NEAR(endpointArrival, ffDelay + inv1Delay + inv2Delay, 1e-12);
}

TEST_F(StaChainTest, SlackAgainstEffectivePeriodAndSetup) {
  const ClockSpec clock = tinyClock(1.0);
  TimingAnalyzer sta(design_, lib_, clock);
  ASSERT_TRUE(sta.analyze());
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance == netlist::kNoInst) {
      EXPECT_NEAR(ep.required, 0.9, 1e-12);  // PO: period - uncertainty
    } else {
      EXPECT_NEAR(ep.required, 0.9 - 0.04, 1e-12);  // FF: minus setup
    }
    EXPECT_NEAR(ep.slack, ep.required - ep.arrival, 1e-12);
  }
}

TEST_F(StaChainTest, WorstSlackAndMet) {
  TimingAnalyzer fast(design_, lib_, tinyClock(10.0));
  ASSERT_TRUE(fast.analyze());
  EXPECT_TRUE(fast.met());
  EXPECT_GT(fast.worstSlack(), 0.0);
  EXPECT_DOUBLE_EQ(fast.totalNegativeSlack(), 0.0);

  TimingAnalyzer slow(design_, lib_, tinyClock(0.15));
  ASSERT_TRUE(slow.analyze());
  EXPECT_FALSE(slow.met());
  EXPECT_LT(slow.worstSlack(), 0.0);
  EXPECT_LT(slow.totalNegativeSlack(), 0.0);
}

TEST_F(StaChainTest, PathTracingDepthAndSteps) {
  TimingAnalyzer sta(design_, lib_, tinyClock());
  ASSERT_TRUE(sta.analyze());
  // Worst path to the FF endpoint: FF -> INV -> INV (3 steps).
  const Endpoint* ffEp = nullptr;
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance != netlist::kNoInst) ffEp = &ep;
  }
  ASSERT_NE(ffEp, nullptr);
  const TimingPath path = sta.worstPathTo(*ffEp);
  ASSERT_EQ(path.depth(), 3u);
  EXPECT_EQ(path.steps[0].cell->name(), "FD1_1");
  EXPECT_EQ(path.steps[1].cell->name(), "INV_1");
  EXPECT_EQ(path.steps[2].cell->name(), "INV_1");
  // Step delays sum to the endpoint arrival.
  double sum = 0.0;
  for (const PathStep& step : path.steps) sum += step.delay;
  EXPECT_NEAR(sum, ffEp->arrival, 1e-12);
}

TEST_F(StaChainTest, RequiredTimesPropagateBackwards) {
  TimingAnalyzer sta(design_, lib_, tinyClock());
  ASSERT_TRUE(sta.analyze());
  // Along a single path: slack at every net equals the endpoint slack.
  const TimingPath path = sta.criticalPath();
  ASSERT_GE(path.depth(), 1u);
  const netlist::Instance& last =
      design_.instance(path.steps.back().instance);
  EXPECT_NEAR(sta.netSlack(last.outputs[0]), path.endpoint.slack, 1e-9);
}

TEST(Sta, CriticalPathPicksWorstEndpoint) {
  liberty::Library lib = test::makeTinyLibrary();
  // FF -> 5 inverters -> FF (deep) and FF -> 1 inverter -> FF (shallow).
  Design d = test::makeInvChain(5);
  {
    NetlistBuilder b(d);
    const NetIndex in2 = b.inputPort("din2");
    NetIndex n = b.dff(in2, PrimOp::kDff);
    n = b.inv(n);
    const NetIndex q = b.dff(n, PrimOp::kDff);
    b.outputPort("dout2", q);
  }
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const TimingPath critical = sta.criticalPath();
  EXPECT_EQ(critical.depth(), 6u);  // FF + 5 inverters
}

TEST(Sta, EndpointWorstPathsCoversAllEndpoints) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(3);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const auto paths = sta.endpointWorstPaths();
  EXPECT_EQ(paths.size(), sta.endpoints().size());
  // 3 endpoints: both FFs' D inputs and the primary output.
  EXPECT_EQ(paths.size(), 3u);
}

TEST(Sta, CombinationalCycleDetected) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("cycle");
  const NetIndex a = d.addNet("a");
  const NetIndex b = d.addNet("b");
  d.addInstance("u1", PrimOp::kInv, {a}, {b});
  d.addInstance("u2", PrimOp::kInv, {b}, {a});
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  EXPECT_FALSE(sta.analyze());
}

TEST(Sta, SequentialLoopIsFine) {
  // Counter-style feedback through a flop must levelize.
  liberty::Library lib = test::makeTinyLibrary();
  Design d("loop");
  NetlistBuilder b(d);
  const NetIndex q = d.addNet("q");
  const NetIndex nq = b.inv(q);
  d.addInstance("reg", PrimOp::kDff, {nq}, {q});
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  EXPECT_TRUE(sta.analyze());
  EXPECT_EQ(sta.endpoints().size(), 1u);
}

TEST(Sta, PrimaryInputsCarryConfiguredArrivalAndSlew) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("pi");
  NetlistBuilder b(d);
  const NetIndex in = b.inputPort("in");
  const NetIndex out = b.inv(in);
  b.outputPort("out", out);
  bindAll(d, lib);
  ClockSpec clock = tinyClock();
  clock.inputDelay = 0.123;
  clock.inputSlew = 0.04;
  TimingAnalyzer sta(d, lib, clock);
  ASSERT_TRUE(sta.analyze());
  EXPECT_DOUBLE_EQ(sta.netArrival(in), 0.123);
  EXPECT_DOUBLE_EQ(sta.netSlew(in), 0.04);
  // INV delay on top of the input arrival; PO load applies.
  const double load = clock.outputLoad;  // PO net, no sinks
  const double expected = 0.123 + 0.01 + 0.1 * 0.04 + 4.0 * load;
  EXPECT_NEAR(sta.netArrival(out), expected, 1e-12);
}

TEST(Sta, MultiInputWorstArcWins) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("nand");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  const NetIndex slow = b.inv(b.inv(b.inputPort("b")));  // later arrival
  const NetIndex z = b.nand2(a, slow);
  b.outputPort("z", z);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const TimingPath path = sta.criticalPath();
  // Critical path goes through the two inverters, then the NAND.
  ASSERT_EQ(path.depth(), 3u);
  EXPECT_EQ(path.steps.back().cell->name(), "ND2_1");
  EXPECT_EQ(path.steps.back().arc->relatedPin, "B");
}

TEST(Sta, InputPinNamesForSequentialOps) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("x");
  const NetIndex n1 = d.addNet("n1");
  const NetIndex n2 = d.addNet("n2");
  const NetIndex q = d.addNet("q");
  const InstIndex ff = d.addInstance("ff", PrimOp::kDffE, {n1, n2}, {q});
  d.bindCell(ff, lib.findCell("FD1_1"));
  EXPECT_EQ(inputPinName(d.instance(ff), 0), "D");
  EXPECT_EQ(inputPinName(d.instance(ff), 1), "E");
  EXPECT_EQ(outputPinName(d.instance(ff), 0), "Q");
}

TEST(Sta, BoundsSafeAccessorsForFreshNets) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(1);
  bindAll(d, lib);
  ClockSpec clock = tinyClock();
  TimingAnalyzer sta(d, lib, clock);
  ASSERT_TRUE(sta.analyze());
  const NetIndex fresh = d.addNet("fresh");
  EXPECT_DOUBLE_EQ(sta.netLoad(fresh), 0.0);
  EXPECT_DOUBLE_EQ(sta.netSlew(fresh), clock.inputSlew);
  EXPECT_TRUE(std::isinf(sta.netRequired(fresh)));
}

TEST(Sta, SetupLutMakesRequiredSlewDependent) {
  // Give the tiny library's FF a setup table that grows with data slew; the
  // endpoint requirement must follow the arriving slew.
  liberty::Library lib = test::makeTinyLibrary();
  liberty::Cell* ff = lib.findCell("FD1_1");
  ASSERT_NE(ff, nullptr);
  // setup = 0.04 + 0.5 * dataSlew (no clock-slew dependence).
  ff->setSetupLut(test::linearLut({0.0, 1.0}, {0.0, 1.0}, 0.04, 0.5, 0.0));

  Design d = test::makeInvChain(2);
  bindAll(d, lib);
  const ClockSpec clock = tinyClock();
  TimingAnalyzer sta(d, lib, clock);
  ASSERT_TRUE(sta.analyze());
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance == netlist::kNoInst) continue;
    const double slew = sta.netSlew(ep.net);
    EXPECT_NEAR(ep.required,
                clock.effectivePeriod() - (0.04 + 0.5 * slew), 1e-12)
        << sta.endpointName(ep);
  }
}

TEST(Sta, ScalarSetupFallbackWithoutLut) {
  liberty::Library lib = test::makeTinyLibrary();
  ASSERT_TRUE(lib.findCell("FD1_1")->setupLut().empty());
  Design d = test::makeInvChain(1);
  bindAll(d, lib);
  const ClockSpec clock = tinyClock();
  TimingAnalyzer sta(d, lib, clock);
  ASSERT_TRUE(sta.analyze());
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance == netlist::kNoInst) continue;
    EXPECT_NEAR(ep.required, clock.effectivePeriod() - 0.04, 1e-12);
  }
}

TEST(Sta, OcvDeratesScaleArrivals) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(4);
  bindAll(d, lib);
  ClockSpec nominal = tinyClock();
  ClockSpec derated = nominal;
  derated.derateLate = 1.10;
  derated.derateEarly = 0.90;
  TimingAnalyzer a(d, lib, nominal);
  TimingAnalyzer b(d, lib, derated);
  ASSERT_TRUE(a.analyze());
  ASSERT_TRUE(b.analyze());
  // Max arrivals scale up by exactly the late derate (slews are underated).
  // Both analyzers enumerate endpoints of the same design in the same
  // order, so endpoints pair up by index.
  ASSERT_EQ(a.endpoints().size(), b.endpoints().size());
  for (std::size_t i = 0; i < a.endpoints().size(); ++i) {
    const Endpoint& epA = a.endpoints()[i];
    const Endpoint& epB = b.endpoints()[i];
    ASSERT_EQ(a.endpointName(epA), b.endpointName(epB));
    EXPECT_NEAR(epB.arrival, epA.arrival * 1.10, 1e-12) << a.endpointName(epA);
    EXPECT_NEAR(epB.minArrival, epA.minArrival * 0.90, 1e-12)
        << a.endpointName(epA);
  }
  // Derating makes hold easier to violate and setup harder to meet.
  EXPECT_LE(b.worstSlack(), a.worstSlack() + 1e-12);
  EXPECT_LE(b.worstHoldSlack(), a.worstHoldSlack() + 1e-12);
}

TEST(StaHold, ZeroInputDelayViolatesHoldAtBoundary) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(2);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());  // inputDelay = 0
  ASSERT_TRUE(sta.analyze());
  // The PI-fed flop sees data at t=0, inside its 10 ps hold window.
  EXPECT_FALSE(sta.holdMet());
  EXPECT_NEAR(sta.worstHoldSlack(), -0.01, 1e-12);
}

TEST(StaHold, MinArrivalNoGreaterThanMaxArrival) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(4);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  for (const Endpoint& ep : sta.endpoints()) {
    EXPECT_LE(ep.minArrival, ep.arrival + 1e-12);
  }
}

TEST(StaHold, HoldSlackUsesCellHoldTime) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(2);
  bindAll(d, lib);
  // External data arrives 50 ps after the edge, so the PI-fed flop also
  // clears its 10 ps hold window (with zero input delay it must not).
  ClockSpec clock = tinyClock();
  clock.inputDelay = 0.05;
  TimingAnalyzer sta(d, lib, clock);
  ASSERT_TRUE(sta.analyze());
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance == netlist::kNoInst) continue;
    // Tiny library FF hold time is 0.01 ns.
    EXPECT_NEAR(ep.holdSlack, ep.minArrival - 0.01, 1e-12);
  }
  // A two-inverter FF-to-FF path comfortably clears the hold window.
  EXPECT_TRUE(sta.holdMet());
  EXPECT_GT(sta.worstHoldSlack(), 0.0);
}

TEST(StaHold, MinPathTakesFasterBranch) {
  // Two reconvergent branches: direct wire-speed input vs a slow 3-inverter
  // detour into a NAND; the min arrival must follow the direct branch.
  liberty::Library lib = test::makeTinyLibrary();
  Design d("reconverge");
  NetlistBuilder b(d);
  const NetIndex a = b.inputPort("a");
  NetIndex slow = a;
  for (int i = 0; i < 3; ++i) slow = b.inv(slow);
  const NetIndex z = b.nand2(a, slow);
  b.outputPort("z", z);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  EXPECT_LT(sta.netMinArrival(z), sta.netArrival(z));
}

TEST(StaHold, WorstHoldSlackInfiniteWithoutSequentials) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("comb");
  NetlistBuilder b(d);
  b.outputPort("z", b.inv(b.inputPort("a")));
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  EXPECT_TRUE(sta.holdMet());
  EXPECT_TRUE(std::isinf(sta.worstHoldSlack()));
}

}  // namespace
}  // namespace sct::sta
