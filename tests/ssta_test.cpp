// Tests for the statistical STA extension: Clark's max approximation
// against Monte Carlo, chain equivalence with the paper's convolution, and
// reconvergence behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterizer.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "variation/path_stats.hpp"
#include "variation/ssta.hpp"

namespace sct::variation {
namespace {

// ----------------------------------------------------------- Clark max ----

TEST(ClarkMax, MatchesMonteCarloForSeparatedGaussians) {
  const numeric::NormalSummary x{1.0, 0.1};
  const numeric::NormalSummary y{2.0, 0.2};
  const numeric::NormalSummary approx = numeric::clarkMax(x, y);
  numeric::Rng rng(3);
  numeric::RunningStats mc;
  for (int i = 0; i < 200000; ++i) {
    mc.add(std::max(rng.normal(x.mean, x.sigma), rng.normal(y.mean, y.sigma)));
  }
  EXPECT_NEAR(approx.mean, mc.mean(), 0.005);
  EXPECT_NEAR(approx.sigma, mc.stddev(), 0.005);
}

TEST(ClarkMax, MatchesMonteCarloForOverlappingGaussians) {
  const numeric::NormalSummary x{1.0, 0.2};
  const numeric::NormalSummary y{1.05, 0.15};
  const numeric::NormalSummary approx = numeric::clarkMax(x, y);
  numeric::Rng rng(5);
  numeric::RunningStats mc;
  for (int i = 0; i < 200000; ++i) {
    mc.add(std::max(rng.normal(x.mean, x.sigma), rng.normal(y.mean, y.sigma)));
  }
  EXPECT_NEAR(approx.mean, mc.mean(), 0.005);
  EXPECT_NEAR(approx.sigma, mc.stddev(), 0.01);
}

TEST(ClarkMax, DominantInputPassesThrough) {
  // When one input is far above the other, max ~= the dominant one.
  const numeric::NormalSummary lo{0.0, 0.05};
  const numeric::NormalSummary hi{10.0, 0.2};
  const numeric::NormalSummary approx = numeric::clarkMax(lo, hi);
  EXPECT_NEAR(approx.mean, 10.0, 1e-6);
  EXPECT_NEAR(approx.sigma, 0.2, 1e-6);
}

TEST(ClarkMax, DeterministicInputs) {
  const numeric::NormalSummary approx =
      numeric::clarkMax({1.0, 0.0}, {2.0, 0.0});
  EXPECT_DOUBLE_EQ(approx.mean, 2.0);
  EXPECT_DOUBLE_EQ(approx.sigma, 0.0);
}

TEST(ClarkMax, MaxOfEqualInputsInflatesMean) {
  // max of two iid N(mu, sigma): mean = mu + sigma/sqrt(pi).
  const numeric::NormalSummary x{1.0, 0.3};
  const numeric::NormalSummary approx = numeric::clarkMax(x, x);
  EXPECT_NEAR(approx.mean, 1.0 + 0.3 / std::sqrt(M_PI), 1e-9);
  EXPECT_LT(approx.sigma, 0.3);  // variance shrinks under max of iid
}

TEST(NormalHelpers, CdfAndPdfBasics) {
  EXPECT_NEAR(numeric::normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(numeric::normalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(numeric::normalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(numeric::normalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(numeric::normalPdf(1.0), numeric::normalPdf(-1.0), 1e-15);
}

// ----------------------------------------------------------------- SSTA ----

class SstaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 30, 5);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    delete lib_;
    delete chr_;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
};

charlib::Characterizer* SstaTest::chr_ = nullptr;
liberty::Library* SstaTest::lib_ = nullptr;
statlib::StatLibrary* SstaTest::stat_ = nullptr;

TEST_F(SstaTest, SingleChainMatchesPathConvolution) {
  // For a single-path design the SSTA endpoint distribution must equal the
  // paper's per-path convolution exactly (no max involved).
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(test::makeInvChain(10), clock);
  ASSERT_TRUE(result.success());
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());

  const SstaResult ssta = runSsta(result.design, sta, *stat_);
  const PathStatistics stats(*stat_);
  const auto paths = sta.endpointWorstPaths();

  for (const SstaEndpoint& ep : ssta.endpoints) {
    // Find the matching traced path.
    for (const sta::TimingPath& path : paths) {
      if (path.endpoint.net != ep.net || path.steps.empty()) continue;
      // Inverter chains have single-input gates everywhere: no max.
      const PathStats predicted = stats.pathStats(path);
      EXPECT_NEAR(ep.arrival.mean, predicted.mean, 1e-9) << ep.name;
      EXPECT_NEAR(ep.arrival.sigma, predicted.sigma, 1e-9) << ep.name;
    }
  }
}

TEST_F(SstaTest, SstaMeanAtLeastWorstPathMean) {
  // The statistical max over all paths dominates the worst single path.
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 9.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  ASSERT_TRUE(result.success());
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());

  const SstaResult ssta = runSsta(result.design, sta, *stat_);
  for (const SstaEndpoint& ep : ssta.endpoints) {
    // Deterministic STA arrival is built from mean-tracking tables, so the
    // SSTA mean must not be below it by more than estimator noise.
    EXPECT_GE(ep.arrival.mean, sta.netArrival(ep.net) * 0.8) << ep.name;
  }
}

TEST_F(SstaTest, FailureProbabilitiesAreSane) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec relaxed;
  relaxed.period = 12.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(12), relaxed);
  ASSERT_TRUE(result.success());
  sta::TimingAnalyzer sta(result.design, *lib_, relaxed);
  ASSERT_TRUE(sta.analyze());
  const SstaResult ssta = runSsta(result.design, sta, *stat_);
  // Relaxed clock: essentially no endpoint should fail.
  EXPECT_LT(ssta.expectedFailures, 1e-6);
  for (const SstaEndpoint& ep : ssta.endpoints) {
    EXPECT_GE(ep.failureProbability(), 0.0);
    EXPECT_LE(ep.failureProbability(), 1.0);
    EXPECT_GT(ep.slack3Sigma(), 0.0);
  }
  // Tight clock: shrink the period until the worst endpoint sits right at
  // its requirement, so variation pushes it over.
  double maxArrival = 0.0;
  for (const sta::Endpoint& ep : sta.endpoints()) {
    maxArrival = std::max(maxArrival, ep.arrival);
  }
  sta::ClockSpec tight = relaxed;
  tight.period = maxArrival * 0.98 + relaxed.uncertainty;
  sta::TimingAnalyzer tightSta(result.design, *lib_, tight);
  ASSERT_TRUE(tightSta.analyze());
  const SstaResult tightSsta = runSsta(result.design, tightSta, *stat_);
  EXPECT_GT(tightSsta.expectedFailures, 0.5);
}

TEST_F(SstaTest, DesignArrivalDominatesEveryEndpoint) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 9.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());
  const SstaResult ssta = runSsta(result.design, sta, *stat_);
  for (const SstaEndpoint& ep : ssta.endpoints) {
    const double normalizedMean =
        ep.arrival.mean + clock.effectivePeriod() - ep.required;
    EXPECT_GE(ssta.designArrival.mean, normalizedMean - 1e-9) << ep.name;
  }
}

TEST_F(SstaTest, YieldMonotoneInPeriod) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 9.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  ASSERT_TRUE(result.success());
  // Find the knee: evaluate yield at shrinking periods.
  sta::TimingAnalyzer probe(result.design, *lib_, clock);
  ASSERT_TRUE(probe.analyze());
  double maxArrival = 0.0;
  for (const sta::Endpoint& ep : probe.endpoints()) {
    maxArrival = std::max(maxArrival, ep.arrival);
  }
  double previousYield = -1.0;
  for (double factor : {0.90, 0.95, 1.0, 1.05, 1.2}) {
    sta::ClockSpec swept = clock;
    swept.period = maxArrival * factor + clock.uncertainty;
    sta::TimingAnalyzer sta(result.design, *lib_, swept);
    ASSERT_TRUE(sta.analyze());
    const SstaResult ssta = runSsta(result.design, sta, *stat_);
    EXPECT_GE(ssta.timingYield, previousYield);
    EXPECT_GE(ssta.timingYield, 0.0);
    EXPECT_LE(ssta.timingYield, 1.0);
    previousYield = ssta.timingYield;
  }
  // Far below the critical delay the yield collapses, far above it is 1.
  EXPECT_LT(previousYield, 1.0 + 1e-12);
}

TEST_F(SstaTest, Deterministic) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 9.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(10), clock);
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  ASSERT_TRUE(sta.analyze());
  const SstaResult a = runSsta(result.design, sta, *stat_);
  const SstaResult b = runSsta(result.design, sta, *stat_);
  EXPECT_EQ(a.designArrival.mean, b.designArrival.mean);
  EXPECT_EQ(a.designArrival.sigma, b.designArrival.sigma);
}

}  // namespace
}  // namespace sct::variation
