// Unit tests for the characterization substrate: delay model shape
// (Fig. 4's monotonicities), Pelgrom scaling, the 304-cell catalogue census
// (appendix A) and the Monte-Carlo characterizer.

#include <gtest/gtest.h>

#include <cmath>

#include "charlib/catalogue.hpp"
#include "numeric/statistics.hpp"

#include <set>
#include "charlib/characterizer.hpp"
#include "test_helpers.hpp"

namespace sct::charlib {
namespace {

using liberty::CellCategory;
using liberty::CellFunction;

DelayModel makeModel() { return DelayModel(TechnologyParams{}, VariationParams{}); }

// -------------------------------------------------------------- specs ----

TEST(DelayModel, SpecDerivation) {
  const DelayModel model = makeModel();
  const CellSpec inv1 = model.makeSpec(CellFunction::kInv, 1.0);
  EXPECT_EQ(inv1.name, "IV_1");
  EXPECT_GT(inv1.driveRes, 0.0);
  EXPECT_GT(inv1.inputCap, 0.0);
  EXPECT_GT(inv1.intrinsic, 0.0);
  EXPECT_GT(inv1.area, 0.0);
  EXPECT_DOUBLE_EQ(inv1.maxLoad, model.tech().maxLoadPerStrength);
}

TEST(DelayModel, StrengthScalesElectricals) {
  const DelayModel model = makeModel();
  const CellSpec s1 = model.makeSpec(CellFunction::kInv, 1.0);
  const CellSpec s8 = model.makeSpec(CellFunction::kInv, 8.0);
  // Personality jitter is within +-5%, so an 8x strength ratio dominates.
  EXPECT_GT(s1.driveRes, 4.0 * s8.driveRes);
  EXPECT_LT(s1.inputCap, s8.inputCap);
  EXPECT_LT(s1.maxLoad, s8.maxLoad);
  EXPECT_LT(s1.area, s8.area);
}

TEST(DelayModel, PelgromMismatchShrinksWithStrength) {
  const DelayModel model = makeModel();
  const CellSpec s1 = model.makeSpec(CellFunction::kInv, 1.0);
  const CellSpec s4 = model.makeSpec(CellFunction::kInv, 4.0);
  const CellSpec s16 = model.makeSpec(CellFunction::kInv, 16.0);
  EXPECT_NEAR(s1.localSigma / s4.localSigma, 2.0, 1e-9);
  EXPECT_NEAR(s1.localSigma / s16.localSigma, 4.0, 1e-9);
}

TEST(DelayModel, ComplexCellsHaveLowerMismatchThanInverterAtSameStrength) {
  // Bigger unit area (more transistors/width) -> lower Pelgrom sigma.
  const DelayModel model = makeModel();
  const CellSpec inv = model.makeSpec(CellFunction::kInv, 2.0);
  const CellSpec fa = model.makeSpec(CellFunction::kFullAdder, 2.0);
  EXPECT_GT(inv.localSigma, fa.localSigma);
}

TEST(DelayModel, SequentialSpecsHaveSetupHold) {
  const DelayModel model = makeModel();
  const CellSpec ff = model.makeSpec(CellFunction::kDffR, 2.0);
  EXPECT_GT(ff.setupTime, 0.0);
  EXPECT_GT(ff.holdTime, 0.0);
  const CellSpec inv = model.makeSpec(CellFunction::kInv, 2.0);
  EXPECT_EQ(inv.setupTime, 0.0);
}

TEST(DelayModel, PersonalityIsDeterministic) {
  const DelayModel model = makeModel();
  const CellSpec a = model.makeSpec(CellFunction::kNor2, 6.0);
  const CellSpec b = model.makeSpec(CellFunction::kNor2, 6.0);
  EXPECT_DOUBLE_EQ(a.driveRes, b.driveRes);
  EXPECT_DOUBLE_EQ(a.intrinsic, b.intrinsic);
}

TEST(DelayModel, PersonalityDiffersBetweenCellTypes) {
  const DelayModel model = makeModel();
  const CellSpec nor = model.makeSpec(CellFunction::kNor2, 6.0);
  const CellSpec nor3 = model.makeSpec(CellFunction::kNor3, 6.0);
  EXPECT_NE(nor.driveRes, nor3.driveRes);
}

// -------------------------------------------------------------- delay ----

TEST(DelayModel, DelayMonotoneInLoad) {
  const DelayModel model = makeModel();
  const CellSpec spec = model.makeSpec(CellFunction::kInv, 1.0);
  double prev = -1.0;
  for (double load = 0.0; load <= spec.maxLoad; load += spec.maxLoad / 16) {
    const double d = model.delay(spec, 0.05, load, {}, 1.0, 1.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DelayModel, DelayMonotoneInSlew) {
  const DelayModel model = makeModel();
  const CellSpec spec = model.makeSpec(CellFunction::kNand2, 2.0);
  double prev = -1.0;
  for (double slew = 0.0; slew <= 0.6; slew += 0.05) {
    const double d = model.delay(spec, slew, 0.01, {}, 1.0, 1.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DelayModel, BiggerDriveIsFasterAtSameLoad) {
  const DelayModel model = makeModel();
  const CellSpec s1 = model.makeSpec(CellFunction::kInv, 1.0);
  const CellSpec s8 = model.makeSpec(CellFunction::kInv, 8.0);
  const double load = 0.02;
  EXPECT_GT(model.delay(s1, 0.05, load, {}, 1.0, 1.0),
            model.delay(s8, 0.05, load, {}, 1.0, 1.0));
}

TEST(DelayModel, CornerAndGlobalFactorsScaleMultiplicatively) {
  const DelayModel model = makeModel();
  const CellSpec spec = model.makeSpec(CellFunction::kXor2, 2.0);
  const double base = model.delay(spec, 0.1, 0.02, {}, 1.0, 1.0);
  EXPECT_NEAR(model.delay(spec, 0.1, 0.02, {}, 1.28, 1.0), base * 1.28, 1e-12);
  EXPECT_NEAR(model.delay(spec, 0.1, 0.02, {}, 1.0, 1.05), base * 1.05, 1e-12);
  EXPECT_NEAR(model.delay(spec, 0.1, 0.02, {}, 1.28, 1.05),
              base * 1.28 * 1.05, 1e-12);
}

TEST(DelayModel, MismatchDeltasMoveDelay) {
  const DelayModel model = makeModel();
  const CellSpec spec = model.makeSpec(CellFunction::kInv, 1.0);
  LocalDeltas slow{0.1, 0.1, 0.1};
  LocalDeltas fast{-0.1, -0.1, -0.1};
  const double nominal = model.delay(spec, 0.1, 0.02, {}, 1.0, 1.0);
  EXPECT_GT(model.delay(spec, 0.1, 0.02, slow, 1.0, 1.0), nominal);
  EXPECT_LT(model.delay(spec, 0.1, 0.02, fast, 1.0, 1.0), nominal);
}

TEST(DelayModel, OutputSlewMonotoneInLoad) {
  const DelayModel model = makeModel();
  const CellSpec spec = model.makeSpec(CellFunction::kInv, 2.0);
  double prev = 0.0;
  for (double load = 0.001; load <= spec.maxLoad; load += spec.maxLoad / 8) {
    const double s = model.outputSlew(spec, 0.05, load, {}, 1.0, 1.0);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(DelayModel, DrawLocalScalesWithSpecSigma) {
  const DelayModel model = makeModel();
  const CellSpec weak = model.makeSpec(CellFunction::kInv, 0.5);
  const CellSpec strong = model.makeSpec(CellFunction::kInv, 32.0);
  numeric::Rng rng(5);
  numeric::RunningStats weakStats;
  numeric::RunningStats strongStats;
  for (int i = 0; i < 4000; ++i) {
    weakStats.add(model.drawLocal(weak, rng).dDrive);
    strongStats.add(model.drawLocal(strong, rng).dDrive);
  }
  EXPECT_NEAR(weakStats.stddev(), weak.localSigma, 0.1 * weak.localSigma);
  EXPECT_NEAR(strongStats.stddev(), strong.localSigma,
              0.1 * strong.localSigma);
}

// ---------------------------------------------------------- catalogue ----

TEST(Catalogue, CensusMatchesAppendixA) {
  const auto census = catalogueCensus();
  EXPECT_EQ(census.at(CellCategory::kInverter), 19u);
  EXPECT_EQ(census.at(CellCategory::kOr), 36u);
  EXPECT_EQ(census.at(CellCategory::kNand), 46u);
  EXPECT_EQ(census.at(CellCategory::kNor), 43u);
  EXPECT_EQ(census.at(CellCategory::kXnor), 29u);
  EXPECT_EQ(census.at(CellCategory::kAdder), 34u);
  EXPECT_EQ(census.at(CellCategory::kMultiplexer), 27u);
  EXPECT_EQ(census.at(CellCategory::kFlipFlop), 51u);
  EXPECT_EQ(census.at(CellCategory::kLatch), 12u);
  EXPECT_EQ(census.at(CellCategory::kOther), 7u);
}

TEST(Catalogue, TotalIs304) {
  std::size_t total = 0;
  for (const auto& [category, count] : catalogueCensus()) total += count;
  EXPECT_EQ(total, 304u);
}

TEST(Catalogue, SpecsHaveUniqueNames) {
  const DelayModel model = makeModel();
  const auto specs = buildSpecs(model);
  ASSERT_EQ(specs.size(), 304u);
  std::set<std::string> names;
  for (const CellSpec& spec : specs) names.insert(spec.name);
  EXPECT_EQ(names.size(), 304u);
}

TEST(Catalogue, RegistryFindsEveryCell) {
  const DelayModel model = makeModel();
  const SpecRegistry registry(model);
  EXPECT_NE(registry.find("IV_0P5"), nullptr);
  EXPECT_NE(registry.find("NR2B_3"), nullptr);
  EXPECT_NE(registry.find("FA1_28"), nullptr);
  EXPECT_NE(registry.find("FD1RS_16"), nullptr);
  EXPECT_EQ(registry.find("NOPE_1"), nullptr);
}

TEST(Catalogue, EveryCellNameRoundTripsThroughNaming) {
  // Name -> (prefix, strength) -> name must be the identity for all 304.
  const DelayModel model = makeModel();
  for (const CellSpec& spec : buildSpecs(model)) {
    const std::size_t underscore = spec.name.rfind('_');
    ASSERT_NE(underscore, std::string::npos) << spec.name;
    const double strength =
        liberty::parseStrengthSuffix(spec.name.substr(underscore + 1));
    EXPECT_DOUBLE_EQ(strength, spec.driveStrength) << spec.name;
    EXPECT_EQ(liberty::makeCellName(spec.function, strength), spec.name);
  }
}

TEST(Catalogue, DriveStrengthSixClusterExists) {
  // Fig. 5 inspects the drive-strength-6 cluster; it must be well populated.
  const DelayModel model = makeModel();
  std::size_t count = 0;
  for (const CellSpec& spec : buildSpecs(model)) {
    if (spec.driveStrength == 6.0) ++count;
  }
  EXPECT_GE(count, 15u);
}

// -------------------------------------------------------- characterizer ----

class CharacterizerTest : public ::testing::Test {
 protected:
  CharacterizerTest() : chr_(test::makeSmallCharacterizer()) {}
  Characterizer chr_;
};

TEST_F(CharacterizerTest, NominalLibraryHas304Cells) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  EXPECT_EQ(lib.size(), 304u);
  EXPECT_EQ(lib.name(), "TT1P1V25C");
}

TEST_F(CharacterizerTest, LoadAxisScalesWithStrength) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Cell* small = lib.findCell("IV_1");
  const liberty::Cell* large = lib.findCell("IV_32");
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  // Fig. 4: same slew range, load range grows with drive strength.
  EXPECT_EQ(small->arcs()[0].riseDelay.slewAxis(),
            large->arcs()[0].riseDelay.slewAxis());
  EXPECT_LT(small->arcs()[0].riseDelay.loadAxis().back(),
            large->arcs()[0].riseDelay.loadAxis().back());
}

TEST_F(CharacterizerTest, TablesMonotoneInLoadAndSlew) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  for (const char* name : {"IV_1", "ND2_2", "MU2_4", "FA1_1"}) {
    const liberty::Cell* cell = lib.findCell(name);
    ASSERT_NE(cell, nullptr) << name;
    const liberty::Lut& lut = cell->arcs()[0].riseDelay;
    for (std::size_t r = 0; r < lut.rows(); ++r) {
      for (std::size_t c = 1; c < lut.cols(); ++c) {
        EXPECT_GT(lut.at(r, c), lut.at(r, c - 1)) << name;
      }
    }
    for (std::size_t c = 0; c < lut.cols(); ++c) {
      for (std::size_t r = 1; r < lut.rows(); ++r) {
        EXPECT_GT(lut.at(r, c), lut.at(r - 1, c)) << name;
      }
    }
  }
}

TEST_F(CharacterizerTest, CornersScaleDelays) {
  const liberty::Library tt = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Library ss = chr_.characterizeNominal(ProcessCorner::slow());
  const liberty::Library ff = chr_.characterizeNominal(ProcessCorner::fast());
  const liberty::Lut& ttLut = tt.findCell("IV_1")->arcs()[0].riseDelay;
  const liberty::Lut& ssLut = ss.findCell("IV_1")->arcs()[0].riseDelay;
  const liberty::Lut& ffLut = ff.findCell("IV_1")->arcs()[0].riseDelay;
  for (std::size_t r = 0; r < ttLut.rows(); ++r) {
    for (std::size_t c = 0; c < ttLut.cols(); ++c) {
      EXPECT_NEAR(ssLut.at(r, c), ttLut.at(r, c) * 1.28, 1e-9);
      EXPECT_NEAR(ffLut.at(r, c), ttLut.at(r, c) * 0.79, 1e-9);
    }
  }
}

TEST_F(CharacterizerTest, SequentialCellsHaveClockArcAndSetup) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Cell* ff = lib.findCell("FD1_2");
  ASSERT_NE(ff, nullptr);
  EXPECT_NE(ff->findArc("CP", "Q"), nullptr);
  EXPECT_GT(ff->setupTime(), 0.0);
  EXPECT_NE(ff->findPin("D"), nullptr);
  EXPECT_TRUE(ff->findPin("CP")->isClock);
  const liberty::Cell* ffe = lib.findCell("FD1E_2");
  ASSERT_NE(ffe, nullptr);
  EXPECT_NE(ffe->findPin("E"), nullptr);
}

TEST_F(CharacterizerTest, AddersHaveBothOutputs) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Cell* fa = lib.findCell("FA1_2");
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->fanoutArcs("S").size(), 3u);
  EXPECT_EQ(fa->fanoutArcs("CO").size(), 3u);
  // The carry output is the optimized path in real adder cells.
  EXPECT_LT(fa->findArc("A", "CO")->riseDelay.at(0, 0),
            fa->findArc("A", "S")->riseDelay.at(0, 0));
}

TEST_F(CharacterizerTest, MonteCarloIsSeedDeterministic) {
  const liberty::Library a = chr_.characterizeSample(ProcessCorner::typical(), 7, 3);
  const liberty::Library b = chr_.characterizeSample(ProcessCorner::typical(), 7, 3);
  const liberty::Lut& la = a.findCell("IV_1")->arcs()[0].riseDelay;
  const liberty::Lut& lb = b.findCell("IV_1")->arcs()[0].riseDelay;
  EXPECT_EQ(la, lb);
}

TEST_F(CharacterizerTest, MonteCarloSamplesDiffer) {
  const liberty::Library a = chr_.characterizeSample(ProcessCorner::typical(), 7, 0);
  const liberty::Library b = chr_.characterizeSample(ProcessCorner::typical(), 7, 1);
  const liberty::Lut& la = a.findCell("IV_1")->arcs()[0].riseDelay;
  const liberty::Lut& lb = b.findCell("IV_1")->arcs()[0].riseDelay;
  EXPECT_NE(la.at(0, 0), lb.at(0, 0));
}

TEST_F(CharacterizerTest, MismatchIsConsistentWithinOneSample) {
  // Within one library instance a cell has one mismatch draw: the ratio of
  // sampled to nominal must be consistent across the drive-dominated region
  // of the same table.
  const liberty::Library nominal = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Library sample = chr_.characterizeSample(ProcessCorner::typical(), 11, 0);
  const liberty::Lut& n = nominal.findCell("IV_1")->arcs()[0].riseDelay;
  const liberty::Lut& s = sample.findCell("IV_1")->arcs()[0].riseDelay;
  // Two high-load entries (drive term dominates) shift by a similar ratio.
  const double r1 = s.at(0, 3) / n.at(0, 3);
  const double r2 = s.at(1, 3) / n.at(1, 3);
  EXPECT_NEAR(r1, r2, 0.02);
}

TEST_F(CharacterizerTest, ArcDelayFactorMatchesCharacterizedTables) {
  const liberty::Library lib = chr_.characterizeNominal(ProcessCorner::typical());
  const liberty::Cell* nd3 = lib.findCell("ND3_2");
  ASSERT_NE(nd3, nullptr);
  // Input C (index 2) is slower than input A by the position factor ratio.
  const double a0 = nd3->findArc("A", "Z")->riseDelay.at(2, 2);
  const double c0 = nd3->findArc("C", "Z")->riseDelay.at(2, 2);
  const double expectedRatio =
      arcDelayFactor(liberty::CellFunction::kNand3, "C", "Z", true) /
      arcDelayFactor(liberty::CellFunction::kNand3, "A", "Z", true);
  EXPECT_NEAR(c0 / a0, expectedRatio, 1e-9);
  EXPECT_GT(expectedRatio, 1.0);
}

TEST_F(CharacterizerTest, MonteCarloBatchProducesNLibraries) {
  const auto libs = chr_.characterizeMonteCarlo(ProcessCorner::typical(), 5, 3);
  EXPECT_EQ(libs.size(), 5u);
  EXPECT_EQ(libs[0].name(), "TT1P1V25C_mc0");
  EXPECT_EQ(libs[4].name(), "TT1P1V25C_mc4");
}

}  // namespace
}  // namespace sct::charlib
