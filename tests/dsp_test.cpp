// Tests for the DSP/FIR subject-graph generator (the second evaluation
// vehicle): structure, determinism, simulability and synthesizability.

#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "netlist/analysis.hpp"
#include "netlist/dsp.hpp"
#include "netlist/simulate.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct::netlist {
namespace {

TEST(Dsp, DefaultConfigShape) {
  const Design dsp = generateDsp();
  EXPECT_EQ(dsp.validate(), "");
  const DesignStats stats = analyzeDesign(dsp);
  EXPECT_GT(stats.gates, 8000u);
  EXPECT_LT(stats.gates, 30000u);
  // Datapath-dominated: far more combinational than sequential logic.
  EXPECT_GT(stats.combinational, 5 * stats.sequential);
  EXPECT_GT(stats.sequential, 300u);
}

TEST(Dsp, ScalesWithTapsAndChannels) {
  DspConfig small;
  small.taps = 2;
  small.channels = 1;
  DspConfig large;
  large.taps = 12;
  large.channels = 3;
  const Design a = generateDsp(small);
  const Design b = generateDsp(large);
  EXPECT_LT(a.gateCount() * 4, b.gateCount());
  EXPECT_EQ(a.validate(), "");
  EXPECT_EQ(b.validate(), "");
}

TEST(Dsp, DeterministicPerConfig) {
  const Design a = generateDsp();
  const Design b = generateDsp();
  ASSERT_EQ(a.instanceCount(), b.instanceCount());
  for (std::size_t i = 0; i < a.instanceCount(); ++i) {
    EXPECT_EQ(a.instance(static_cast<InstIndex>(i)).op,
              b.instance(static_cast<InstIndex>(i)).op);
  }
}

TEST(Dsp, AdderTopologyChangesStructure) {
  DspConfig kogge;
  kogge.useKoggeStone = true;
  DspConfig select;
  select.useKoggeStone = false;
  const Design a = generateDsp(kogge);
  const Design b = generateDsp(select);
  EXPECT_NE(a.gateCount(), b.gateCount());
}

TEST(Dsp, SimulatesAndFiltersImpulse) {
  // Small config so the functional check stays fast.
  DspConfig config;
  config.taps = 4;
  config.channels = 1;
  config.dataWidth = 8;
  config.accWidth = 18;
  const Design dsp = generateDsp(config);
  Simulator sim(dsp);
  sim.reset();
  sim.setInputBus("sample_in", 0);
  sim.setInputBus("coeff_in", 0);
  sim.setInputBus("tap_sel", 0);
  sim.setInput("coeff_load", false);
  sim.setInput("sample_valid", false);

  // Load coefficients 1, 2, 3, 4 into taps 0..3.
  for (std::uint64_t tap = 0; tap < 4; ++tap) {
    sim.setInputBus("tap_sel", tap);
    sim.setInputBus("coeff_in", tap + 1);
    sim.setInput("coeff_load", true);
    sim.step();
  }
  sim.setInput("coeff_load", false);

  // Push an impulse (value 1) followed by zeros; the FIR must emit the
  // coefficient sequence through its pipeline.
  sim.setInput("sample_valid", true);
  std::vector<std::uint64_t> seen;
  sim.setInputBus("sample_in", 1);
  sim.step();
  sim.setInputBus("sample_in", 0);
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.step();
    seen.push_back(sim.outputBus("ch0_out", config.dataWidth + 2));
  }
  // The impulse response 1,2,3,4 must appear (in order) in the output
  // stream, delayed by the pipeline registers.
  std::size_t match = 0;
  for (std::uint64_t v : seen) {
    if (match < 4 && v == match + 1) ++match;
  }
  EXPECT_EQ(match, 4u) << "impulse response not observed";
}

TEST(Dsp, SynthesizesUnderBaselineLibrary) {
  const charlib::Characterizer chr = test::makeSmallCharacterizer();
  const liberty::Library lib =
      chr.characterizeNominal(charlib::ProcessCorner::typical());
  const synth::Synthesizer synth(lib);
  sta::ClockSpec clock;
  clock.period = 12.0;
  DspConfig small;
  small.taps = 4;
  small.channels = 1;
  const synth::SynthesisResult result = synth.run(generateDsp(small), clock);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.design.validate(), "");
}

}  // namespace
}  // namespace sct::netlist
