// Incremental STA correctness: after any sequence of sizing / buffering /
// reconnection edits, TimingAnalyzer::update() must leave the analyzer in a
// state bit-identical to a from-scratch analyze() of the same design. The
// comparison is done by TimingAnalyzer::diffAgainstReference(), which checks
// every per-net array (loads, arrivals, min-arrivals, slews, required),
// predecessor records, endpoints and the WNS/TNS/hold aggregates with exact
// (bitwise) double equality.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "netlist/random.hpp"
#include "sta/sta.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::NetIndex;
using netlist::PrimOp;

void bindAll(Design& d, const liberty::Library& lib) {
  for (InstIndex i = 0; i < d.instanceCount(); ++i) {
    auto& inst = d.instance(i);
    if (!inst.alive) continue;
    const liberty::Cell* cell = nullptr;
    switch (inst.op) {
      case PrimOp::kInv: cell = lib.findCell("INV_1"); break;
      case PrimOp::kNand2: cell = lib.findCell("ND2_1"); break;
      case PrimOp::kBuf: cell = lib.findCell("BF_2"); break;
      case PrimOp::kDff: cell = lib.findCell("FD1_1"); break;
      default: break;
    }
    ASSERT_NE(cell, nullptr);
    d.bindCell(i, cell);
  }
}

sta::ClockSpec tinyClock() {
  sta::ClockSpec clock;
  clock.period = 1.0;
  return clock;
}

// ------------------------------------------------- directed tiny cases ----

TEST(IncrementalSta, CellSwapMatchesFullAnalyze) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(5);
  bindAll(d, lib);

  sta::TimingAnalyzer inc(d, lib, tinyClock());
  ASSERT_TRUE(inc.analyze());
  ASSERT_EQ(inc.diffAgainstReference(), "");

  // Upsize a middle inverter: its input cap changes the upstream load and
  // its arcs change the downstream arrivals — both directions of the
  // worklist must fire.
  InstIndex target = netlist::kNoInst;
  std::size_t seen = 0;
  for (InstIndex i = 0; i < d.instanceCount(); ++i) {
    if (d.instance(i).op == PrimOp::kInv && ++seen == 3) target = i;
  }
  ASSERT_NE(target, netlist::kNoInst);
  d.bindCell(target, lib.findCell("INV_4"));
  inc.notifyCellSwap(target);
  EXPECT_TRUE(inc.hasPendingEdits());
  ASSERT_TRUE(inc.update());
  EXPECT_FALSE(inc.hasPendingEdits());
  EXPECT_EQ(inc.diffAgainstReference(), "");

  // And back down again — the reverse delta.
  d.bindCell(target, lib.findCell("INV_1"));
  inc.notifyCellSwap(target);
  ASSERT_TRUE(inc.update());
  EXPECT_EQ(inc.diffAgainstReference(), "");
}

TEST(IncrementalSta, SequentialCellSwapMatchesFullAnalyze) {
  liberty::Library lib = test::makeTinyLibrary();
  lib.addCell(test::makeDffCell("FD1_2", 2.0, 5.0, 0.002, 0.02, 0.06, 2.0,
                                0.06));
  Design d = test::makeInvChain(4);
  bindAll(d, lib);

  sta::TimingAnalyzer inc(d, lib, tinyClock());
  ASSERT_TRUE(inc.analyze());

  // Swapping a flop exercises the clock-arc launch path and the endpoint
  // setup-time dependence in one edit.
  for (InstIndex i = 0; i < d.instanceCount(); ++i) {
    if (d.instance(i).op != PrimOp::kDff) continue;
    d.bindCell(i, lib.findCell("FD1_2"));
    inc.notifyCellSwap(i);
    ASSERT_TRUE(inc.update());
    ASSERT_EQ(inc.diffAgainstReference(), "") << "flop " << i;
  }
}

TEST(IncrementalSta, BufferInsertAndReconnectMatchesFullAnalyze) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(4);
  bindAll(d, lib);

  sta::TimingAnalyzer inc(d, lib, tinyClock());
  ASSERT_TRUE(inc.analyze());

  // Splice a buffer into the middle of the chain, splitNet-style: new net,
  // new bound instance, then move the sink over.
  NetIndex target = netlist::kNoNet;
  for (NetIndex n = 0; n < d.netCount(); ++n) {
    const auto& net = d.net(n);
    if (net.driver != netlist::kNoInst &&
        d.instance(net.driver).op == PrimOp::kInv && !net.sinks.empty()) {
      target = n;
      break;
    }
  }
  ASSERT_NE(target, netlist::kNoNet);
  const std::vector<netlist::SinkRef> sinks = d.net(target).sinks;

  const NetIndex out = d.addNet(d.freshName("bufn"));
  const InstIndex ib = d.addInstance(d.freshName("sibuf"), PrimOp::kBuf,
                                     {target}, {out});
  d.bindCell(ib, lib.findCell("BF_2"));
  inc.notifyBufferInsert(ib);
  for (const auto& sink : sinks) {
    d.reconnectInput(sink.instance, sink.inputSlot, out);
    inc.notifyReconnect(sink.instance, sink.inputSlot, target);
  }
  ASSERT_EQ(d.validate(), "");
  ASSERT_TRUE(inc.update());
  EXPECT_EQ(inc.diffAgainstReference(), "");
}

TEST(IncrementalSta, UpdateWithoutBaselineRunsFullAnalyze) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(3);
  bindAll(d, lib);

  sta::TimingAnalyzer inc(d, lib, tinyClock());
  // No analyze() yet: update() must fall back to the full analysis.
  ASSERT_TRUE(inc.update());
  EXPECT_EQ(inc.diffAgainstReference(), "");

  sta::TimingAnalyzer ref(d, lib, tinyClock());
  ASSERT_TRUE(ref.analyze());
  EXPECT_EQ(inc.worstSlack(), ref.worstSlack());
  EXPECT_EQ(inc.totalNegativeSlack(), ref.totalNegativeSlack());
}

TEST(IncrementalSta, SetClockInvalidatesBaseline) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(3);
  bindAll(d, lib);

  sta::TimingAnalyzer inc(d, lib, tinyClock());
  ASSERT_TRUE(inc.analyze());

  sta::ClockSpec tighter;
  tighter.period = 0.2;
  inc.setClock(tighter);
  // The old arrivals/required are stale under the new clock; update() must
  // notice and re-analyze rather than reuse the baseline.
  ASSERT_TRUE(inc.update());
  EXPECT_EQ(inc.diffAgainstReference(), "");

  sta::TimingAnalyzer ref(d, lib, tighter);
  ASSERT_TRUE(ref.analyze());
  EXPECT_EQ(inc.worstSlack(), ref.worstSlack());
}

// -------------------------------------------- randomized edit replays ----

/// Shared slow-to-build characterized library (same fixture pattern as the
/// synthesis property tests).
class IncrementalBase {
 public:
  static charlib::Characterizer& characterizer() {
    static charlib::Characterizer chr = test::makeSmallCharacterizer();
    return chr;
  }
  static liberty::Library& library() {
    static liberty::Library lib =
        characterizer().characterizeNominal(charlib::ProcessCorner::typical());
    return lib;
  }
};

/// One randomized edit against `design`, mirrored into `inc` via the notify
/// API. Returns false when no edit of the drawn kind was applicable.
bool applyRandomEdit(Design& design, const synth::Synthesizer& synth,
                     sta::TimingAnalyzer& inc, std::mt19937_64& rng) {
  const bool wantSwap = (rng() % 10) < 7;  // 70% swaps, 30% buffer splices
  if (wantSwap) {
    // Rebind a random mapped instance to another member of its family.
    const InstIndex count =
        static_cast<InstIndex>(design.instanceCount());
    for (std::uint32_t attempt = 0; attempt < 32; ++attempt) {
      const InstIndex i = static_cast<InstIndex>(rng() % count);
      const auto& inst = design.instance(i);
      if (!inst.alive || inst.cell == nullptr) continue;
      const auto& family = synth.family(inst.op);
      if (family.size() < 2) continue;
      const liberty::Cell* next =
          family[static_cast<std::size_t>(rng() % family.size())];
      if (next == inst.cell) continue;
      design.bindCell(i, next);
      inc.notifyCellSwap(i);
      return true;
    }
    return false;
  }

  // splitNet-style buffer splice: new buffer on a multi-sink net, then move
  // a random prefix of the original sinks behind it.
  const auto& bufs = synth.family(PrimOp::kBuf);
  if (bufs.empty()) return false;
  std::vector<NetIndex> candidates;
  for (NetIndex n = 0; n < design.netCount(); ++n) {
    if (design.net(n).sinks.size() >= 2) candidates.push_back(n);
  }
  if (candidates.empty()) return false;
  const NetIndex net =
      candidates[static_cast<std::size_t>(rng() % candidates.size())];
  const std::vector<netlist::SinkRef> sinks = design.net(net).sinks;

  const NetIndex out = design.addNet(design.freshName("bufn"));
  const InstIndex ib = design.addInstance(design.freshName("sibuf"),
                                          PrimOp::kBuf, {net}, {out});
  design.bindCell(ib, bufs[static_cast<std::size_t>(rng() % bufs.size())]);
  inc.notifyBufferInsert(ib);

  const std::size_t moved = 1 + static_cast<std::size_t>(rng()) % sinks.size();
  for (std::size_t s = 0; s < moved; ++s) {
    design.reconnectInput(sinks[s].instance, sinks[s].inputSlot, out);
    inc.notifyReconnect(sinks[s].instance, sinks[s].inputSlot, net);
  }
  return true;
}

class IncrementalEditSweep : public ::testing::TestWithParam<std::uint64_t>,
                             public IncrementalBase {};

TEST_P(IncrementalEditSweep, ReplayedEditsStayBitIdentical) {
  const std::uint64_t seed = GetParam();
  netlist::RandomDagConfig config;
  config.seed = seed;
  config.gates = 120;
  config.flipFlops = 12;

  const synth::Synthesizer synth(library());
  sta::ClockSpec clock;
  clock.period = 4.0;
  synth::SynthesisResult mapped =
      synth.run(netlist::generateRandomDag(config), clock);
  ASSERT_EQ(mapped.design.validate(), "");
  Design design = std::move(mapped.design);

  sta::TimingAnalyzer inc(design, library(), clock);
  ASSERT_TRUE(inc.analyze());
  ASSERT_EQ(inc.diffAgainstReference(), "");

  std::mt19937_64 rng(seed * 7919 + 13);
  std::size_t applied = 0;
  for (std::size_t edit = 0; edit < 200 && applied < 30; ++edit) {
    if (!applyRandomEdit(design, synth, inc, rng)) continue;
    ++applied;
    ASSERT_TRUE(inc.update());
    const std::string diff = inc.diffAgainstReference();
    ASSERT_EQ(diff, "") << "seed " << seed << " edit " << applied;
  }
  ASSERT_GE(applied, std::size_t{10});
  EXPECT_EQ(design.validate(), "");
}

TEST_P(IncrementalEditSweep, BatchedEditsDrainToBitIdenticalState) {
  // Several notifications between update() calls — the deferred-drain path
  // the synthesis session actually uses (notify per move, drain per pass).
  const std::uint64_t seed = GetParam();
  netlist::RandomDagConfig config;
  config.seed = seed + 1000;
  config.gates = 90;
  config.flipFlops = 8;

  const synth::Synthesizer synth(library());
  sta::ClockSpec clock;
  clock.period = 3.0;
  synth::SynthesisResult mapped =
      synth.run(netlist::generateRandomDag(config), clock);
  ASSERT_EQ(mapped.design.validate(), "");
  Design design = std::move(mapped.design);

  sta::TimingAnalyzer inc(design, library(), clock);
  ASSERT_TRUE(inc.analyze());

  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t batch = 0; batch < 8; ++batch) {
    const std::size_t batchSize = 1 + static_cast<std::size_t>(rng() % 4);
    std::size_t applied = 0;
    for (std::size_t edit = 0; edit < 50 && applied < batchSize; ++edit) {
      if (applyRandomEdit(design, synth, inc, rng)) ++applied;
    }
    ASSERT_TRUE(inc.update());
    ASSERT_EQ(inc.diffAgainstReference(), "")
        << "seed " << seed << " batch " << batch;
  }
  EXPECT_EQ(design.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEditSweep,
                         ::testing::Values(1, 2, 5, 17, 91));

}  // namespace
}  // namespace sct
