// Tests for the clock-tree extension (the paper's section VIII future-work
// item): tree construction, delay/sigma accounting and the effect of tuned
// buffer windows.

#include <gtest/gtest.h>

#include <cmath>

#include "clocktree/clock_tree.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"

namespace sct::clocktree {
namespace {

class ClockTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 25, 9);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));

    // One mapped design shared by the tests.
    const synth::Synthesizer synth(*lib_);
    sta::ClockSpec clock;
    clock.period = 8.0;
    netlist::McuConfig small;
    small.registers = 8;
    small.readPorts = 2;
    small.timers = 1;
    small.dmaChannels = 1;
    small.gpioWidth = 16;
    small.cacheTagEntries = 16;
    small.macUnits = 1;
    small.macWidth = 8;
    small.bankedRegisters = 1;
    small.interruptSources = 8;
    small.decodeOutputs = 64;
    result_ = new synth::SynthesisResult(
        synth.run(netlist::generateMcu(small), clock));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete stat_;
    delete lib_;
    delete chr_;
    result_ = nullptr;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
  static synth::SynthesisResult* result_;
};

charlib::Characterizer* ClockTreeTest::chr_ = nullptr;
liberty::Library* ClockTreeTest::lib_ = nullptr;
statlib::StatLibrary* ClockTreeTest::stat_ = nullptr;
synth::SynthesisResult* ClockTreeTest::result_ = nullptr;

TEST_F(ClockTreeTest, BuildsBalancedTree) {
  const auto tree = buildClockTree(result_->design, *lib_, *stat_);
  ASSERT_TRUE(tree.has_value());
  EXPECT_GT(tree->sinkCount, 500u);
  EXPECT_GE(tree->levels.size(), 2u);
  // Root level has exactly one buffer; leaf level covers all sinks.
  EXPECT_EQ(tree->levels.back().bufferCount, 1u);
  const ClockTreeConfig config;
  EXPECT_GE(tree->levels.front().bufferCount * config.maxFanout,
            tree->sinkCount);
}

TEST_F(ClockTreeTest, BufferCountConsistent) {
  const auto tree = buildClockTree(result_->design, *lib_, *stat_);
  ASSERT_TRUE(tree.has_value());
  std::size_t sum = 0;
  for (const TreeLevel& level : tree->levels) sum += level.bufferCount;
  EXPECT_EQ(tree->bufferCount(), sum);
  EXPECT_GT(tree->bufferArea(), 0.0);
}

TEST_F(ClockTreeTest, InsertionDelayAndSigmaPositive) {
  const auto tree = buildClockTree(result_->design, *lib_, *stat_);
  ASSERT_TRUE(tree.has_value());
  EXPECT_GT(tree->insertionDelay(), 0.0);
  EXPECT_GT(tree->insertionSigma(), 0.0);
  // RSS consistency.
  double var = 0.0;
  for (const TreeLevel& level : tree->levels) {
    var += level.delaySigma * level.delaySigma;
  }
  EXPECT_NEAR(tree->insertionSigma(), std::sqrt(var), 1e-12);
}

TEST_F(ClockTreeTest, SkewOrdering) {
  const auto tree = buildClockTree(result_->design, *lib_, *stat_);
  ASSERT_TRUE(tree.has_value());
  // Sibling sinks share everything but the leaf buffer; worst pairs share
  // nothing below the root driver.
  EXPECT_LE(tree->siblingSkewSigma(), tree->worstSkewSigma() + 1e-12);
  EXPECT_GT(tree->siblingSkewSigma(), 0.0);
}

TEST_F(ClockTreeTest, SmallerFanoutMeansMoreBuffersAndLevels) {
  ClockTreeConfig wide;
  wide.maxFanout = 32;
  ClockTreeConfig narrow;
  narrow.maxFanout = 4;
  const auto a = buildClockTree(result_->design, *lib_, *stat_, nullptr, wide);
  const auto b =
      buildClockTree(result_->design, *lib_, *stat_, nullptr, narrow);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(b->bufferCount(), a->bufferCount());
  EXPECT_GE(b->levels.size(), a->levels.size());
}

TEST_F(ClockTreeTest, TunedWindowsChangeBufferSelection) {
  // A tight sigma ceiling restricts the buffers' allowed load windows; the
  // tree must still build (smaller groups / larger buffers) and its leaf
  // sigma must not get worse.
  const auto baseline = buildClockTree(result_->design, *lib_, *stat_);
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      *stat_,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.005));
  const auto tuned =
      buildClockTree(result_->design, *lib_, *stat_, &constraints);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(tuned.has_value());
  EXPECT_LE(tuned->levels.front().delaySigma,
            baseline->levels.front().delaySigma + 1e-12);
}

TEST_F(ClockTreeTest, NoSequentialsNoTree) {
  netlist::Design comb("comb");
  netlist::NetlistBuilder b(comb);
  b.outputPort("z", b.inv(b.inputPort("a")));
  // Bind the single inverter.
  comb.bindCell(0, lib_->findCell("IV_1"));
  EXPECT_FALSE(buildClockTree(comb, *lib_, *stat_).has_value());
}

TEST_F(ClockTreeTest, AllBuffersUnusableNoTree) {
  tuning::LibraryConstraints constraints;
  for (const liberty::Cell* cell : lib_->cells()) {
    if (cell->function() == liberty::CellFunction::kClkBuf ||
        cell->function() == liberty::CellFunction::kBuf) {
      constraints.markUnusable(cell->name());
    }
  }
  EXPECT_FALSE(
      buildClockTree(result_->design, *lib_, *stat_, &constraints).has_value());
}

}  // namespace
}  // namespace sct::clocktree
