// Functional verification of the structural generators through the logic
// simulator: adders add, comparators compare, counters count — checked
// against plain integer arithmetic on randomized vectors.

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "netlist/simulate.hpp"
#include "netlist/structures.hpp"
#include "numeric/rng.hpp"

namespace sct::netlist {
namespace {

constexpr std::size_t kWidth = 12;
constexpr std::uint64_t kMask = (1u << kWidth) - 1;

/// Builds a combinational adder design out=x+y+cin with the given topology.
template <typename BuildFn>
Design makeAdderDesign(BuildFn&& build) {
  Design d("adder");
  NetlistBuilder b(d);
  const Bus x = b.inputBus("x", kWidth);
  const Bus y = b.inputBus("y", kWidth);
  const NetIndex cin = b.inputPort("cin");
  NetIndex cout = kNoNet;
  const Bus sum = build(b, x, y, cin, &cout);
  b.outputBus("sum", sum);
  b.outputPort("cout", cout);
  EXPECT_EQ(d.validate(), "");
  return d;
}

template <typename BuildFn>
void checkAdder(BuildFn&& build) {
  const Design d = makeAdderDesign(std::forward<BuildFn>(build));
  Simulator sim(d);
  numeric::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng.uniformInt(kMask + 1);
    const std::uint64_t y = rng.uniformInt(kMask + 1);
    const bool cin = rng.uniform() < 0.5;
    sim.setInputBus("x", x);
    sim.setInputBus("y", y);
    sim.setInput("cin", cin);
    sim.evaluate();
    const std::uint64_t expected = x + y + (cin ? 1 : 0);
    EXPECT_EQ(sim.outputBus("sum", kWidth), expected & kMask)
        << x << " + " << y << " + " << cin;
    EXPECT_EQ(sim.output("cout"), ((expected >> kWidth) & 1) != 0);
  }
}

TEST(Structures, RippleAdderAdds) {
  checkAdder([](NetlistBuilder& b, const Bus& x, const Bus& y, NetIndex cin,
                NetIndex* cout) { return b.rippleAdder(x, y, cin, cout); });
}

TEST(Structures, CarrySelectAdderAdds) {
  checkAdder([](NetlistBuilder& b, const Bus& x, const Bus& y, NetIndex cin,
                NetIndex* cout) {
    return carrySelectAdder(b, x, y, cin, 4, cout);
  });
}

TEST(Structures, KoggeStoneAdderAdds) {
  checkAdder([](NetlistBuilder& b, const Bus& x, const Bus& y, NetIndex cin,
                NetIndex* cout) { return koggeStoneAdder(b, x, y, cin, cout); });
}

TEST(Structures, KoggeStoneIsShallowerThanRipple) {
  // Compare longest combinational chains (in gate count) from any input.
  auto depthOf = [](const Design& d) {
    // Longest path in the DAG by dynamic programming over the simulator's
    // evaluation order.
    Simulator sim(d);  // validates acyclicity
    std::vector<std::size_t> netDepth(d.netCount(), 0);
    bool changed = true;
    std::size_t deepest = 0;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < d.instanceCount(); ++i) {
        const Instance& inst = d.instance(static_cast<InstIndex>(i));
        if (!inst.alive || isSequential(inst.op)) continue;
        std::size_t depth = 0;
        for (NetIndex in : inst.inputs) {
          depth = std::max(depth, netDepth[in]);
        }
        ++depth;
        for (NetIndex out : inst.outputs) {
          if (depth > netDepth[out]) {
            netDepth[out] = depth;
            deepest = std::max(deepest, depth);
            changed = true;
          }
        }
      }
    }
    return deepest;
  };
  const Design ripple = makeAdderDesign(
      [](NetlistBuilder& b, const Bus& x, const Bus& y, NetIndex cin,
         NetIndex* cout) { return b.rippleAdder(x, y, cin, cout); });
  const Design kogge = makeAdderDesign(
      [](NetlistBuilder& b, const Bus& x, const Bus& y, NetIndex cin,
         NetIndex* cout) { return koggeStoneAdder(b, x, y, cin, cout); });
  EXPECT_LT(depthOf(kogge), depthOf(ripple));
  // And pays for it in area (gate count).
  EXPECT_GT(kogge.gateCount(), ripple.gateCount());
}

TEST(Structures, MultiplierMultiplies) {
  Design d("mult");
  NetlistBuilder b(d);
  const Bus x = b.inputBus("x", 6);
  const Bus y = b.inputBus("y", 6);
  b.outputBus("p", b.multiplier(x, y));
  Simulator sim(d);
  numeric::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t xv = rng.uniformInt(64);
    const std::uint64_t yv = rng.uniformInt(64);
    sim.setInputBus("x", xv);
    sim.setInputBus("y", yv);
    sim.evaluate();
    EXPECT_EQ(sim.outputBus("p", 12), xv * yv);
  }
}

TEST(Structures, ShiftersShift) {
  Design d("shift");
  NetlistBuilder b(d);
  const Bus v = b.inputBus("v", 8);
  const Bus amount = b.inputBus("a", 3);
  b.outputBus("l", b.shiftLeft(v, amount));
  b.outputBus("r", b.shiftRight(v, amount));
  Simulator sim(d);
  for (std::uint64_t value : {0x5Au, 0xFFu, 0x01u, 0x80u}) {
    for (std::uint64_t sh = 0; sh < 8; ++sh) {
      sim.setInputBus("v", value);
      sim.setInputBus("a", sh);
      sim.evaluate();
      EXPECT_EQ(sim.outputBus("l", 8), (value << sh) & 0xFF);
      EXPECT_EQ(sim.outputBus("r", 8), value >> sh);
    }
  }
}

TEST(Structures, DecoderOneHot) {
  Design d("dec");
  NetlistBuilder b(d);
  const Bus sel = b.inputBus("s", 3);
  b.outputBus("o", b.decoder(sel));
  Simulator sim(d);
  for (std::uint64_t code = 0; code < 8; ++code) {
    sim.setInputBus("s", code);
    sim.evaluate();
    EXPECT_EQ(sim.outputBus("o", 8), std::uint64_t{1} << code);
  }
}

TEST(Structures, LessThanComparator) {
  Design d("cmp");
  NetlistBuilder b(d);
  const Bus x = b.inputBus("x", 8);
  const Bus y = b.inputBus("y", 8);
  b.outputPort("lt", lessThan(b, x, y));
  Simulator sim(d);
  numeric::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t xv = rng.uniformInt(256);
    const std::uint64_t yv = rng.uniformInt(256);
    sim.setInputBus("x", xv);
    sim.setInputBus("y", yv);
    sim.evaluate();
    EXPECT_EQ(sim.output("lt"), xv < yv) << xv << " < " << yv;
  }
}

TEST(Structures, EqualComparator) {
  Design d("eq");
  NetlistBuilder b(d);
  const Bus x = b.inputBus("x", 8);
  const Bus y = b.inputBus("y", 8);
  b.outputPort("eq", b.equal(x, y));
  Simulator sim(d);
  numeric::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t xv = rng.uniformInt(256);
    const std::uint64_t yv = rng.uniform() < 0.5 ? xv : rng.uniformInt(256);
    sim.setInputBus("x", xv);
    sim.setInputBus("y", yv);
    sim.evaluate();
    EXPECT_EQ(sim.output("eq"), xv == yv);
  }
}

TEST(Structures, PriorityEncoderGrantsHighestPriority) {
  Design d("prio");
  NetlistBuilder b(d);
  const Bus req = b.inputBus("r", 8);
  const PriorityEncoded enc = priorityEncode(b, req);
  b.outputBus("g", enc.grant);
  b.outputPort("any", enc.any);
  Simulator sim(d);
  for (std::uint64_t pattern : {0x00u, 0x01u, 0x80u, 0xA4u, 0xFFu, 0x30u}) {
    sim.setInputBus("r", pattern);
    sim.evaluate();
    const std::uint64_t grant = sim.outputBus("g", 8);
    if (pattern == 0) {
      EXPECT_EQ(grant, 0u);
      EXPECT_FALSE(sim.output("any"));
    } else {
      // Lowest set bit wins.
      EXPECT_EQ(grant, pattern & (~pattern + 1));
      EXPECT_TRUE(sim.output("any"));
    }
  }
}

TEST(Structures, PopcountCounts) {
  Design d("pop");
  NetlistBuilder b(d);
  const Bus bits = b.inputBus("v", 9);
  b.outputBus("c", popcount(b, bits));
  Simulator sim(d);
  numeric::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t v = rng.uniformInt(512);
    sim.setInputBus("v", v);
    sim.evaluate();
    EXPECT_EQ(sim.outputBus("c", 4),
              static_cast<std::uint64_t>(__builtin_popcountll(v)));
  }
}

TEST(Structures, GrayCounterStepsWithUnitHammingDistance) {
  Design d("gray");
  NetlistBuilder b(d);
  const NetIndex enable = b.inputPort("en");
  b.outputBus("g", grayCounter(b, 4, enable));
  Simulator sim(d);
  sim.reset();
  sim.setInput("en", true);
  std::set<std::uint64_t> seen;
  std::uint64_t prev = 0;
  sim.evaluate();
  prev = sim.outputBus("g", 4);
  seen.insert(prev);
  for (int i = 1; i < 16; ++i) {
    sim.step();
    const std::uint64_t gray = sim.outputBus("g", 4);
    EXPECT_EQ(__builtin_popcountll(gray ^ prev), 1) << "step " << i;
    seen.insert(gray);
    prev = gray;
  }
  EXPECT_EQ(seen.size(), 16u);  // full cycle visits all codes
  // Disabled counter holds.
  sim.setInput("en", false);
  sim.step();
  EXPECT_EQ(sim.outputBus("g", 4), prev);
}

TEST(Structures, LfsrCyclesMaximalLength) {
  Design d("lfsr");
  NetlistBuilder b(d);
  // x^4 + x^3 + 1 (taps 3, 2): maximal length for width 4 -> period 15.
  b.outputBus("q", lfsr(b, 4, {3, 2}));
  Simulator sim(d);
  sim.reset();
  // All-zero is the lock-up state for XOR feedback; seed via one step with
  // forced state: step once from reset injects feedback of 0 -> stays 0.
  // Instead verify the lock-up property and then the cycle from a seeded
  // state by simulating the recurrence in parallel.
  sim.evaluate();
  EXPECT_EQ(sim.outputBus("q", 4), 0u);
  sim.step();
  EXPECT_EQ(sim.outputBus("q", 4), 0u);  // XOR LFSR locks at zero
}

TEST(Simulator, SequentialAccumulatorAccumulates) {
  const Design d = generateAccumulator(8);
  Simulator sim(d);
  sim.reset();
  // Load 5.
  sim.setInputBus("in", 5);
  sim.setInput("load", true);
  sim.step();
  EXPECT_EQ(sim.outputBus("acc", 8), 5u);
  // Accumulate 3 twice.
  sim.setInput("load", false);
  sim.setInputBus("in", 3);
  sim.step();
  EXPECT_EQ(sim.outputBus("acc", 8), 8u);
  sim.step();
  EXPECT_EQ(sim.outputBus("acc", 8), 11u);
  // Wrap-around.
  sim.setInputBus("in", 250);
  sim.step();
  EXPECT_EQ(sim.outputBus("acc", 8), (11u + 250u) & 0xFF);
}

TEST(Simulator, McuSimulatesWithoutCycles) {
  // The full microcontroller must levelize and evaluate (smoke test that
  // the generator produces a simulable design).
  McuConfig small;
  small.registers = 8;
  small.readPorts = 2;
  small.timers = 1;
  small.dmaChannels = 1;
  small.gpioWidth = 16;
  small.cacheTagEntries = 0;
  small.macUnits = 1;
  small.macWidth = 8;
  small.bankedRegisters = 1;
  small.interruptSources = 8;
  small.decodeOutputs = 64;
  const Design mcu = generateMcu(small);
  Simulator sim(mcu);
  sim.reset();
  sim.setInputBus("sram_rdata", 0x12345678u & 0xFFFFFFFFu);
  sim.setInput("uart_rx", false);
  sim.setInput("ext_stall", false);
  for (int cycle = 0; cycle < 5; ++cycle) sim.step();
  // The PC incrementer must have advanced the address register eventually;
  // at minimum the design holds definite values everywhere.
  SUCCEED();
}

}  // namespace
}  // namespace sct::netlist
