// Tests for the pattern-mapping pass: inverter absorption into B-variant
// cells and MUX4 collapsing, including the De Morgan pin assignments.

#include <gtest/gtest.h>

#include <set>

#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "synth/pattern_map.hpp"

namespace sct::synth {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::NetIndex;
using netlist::NetlistBuilder;
using netlist::PrimOp;

OpUsable allUsable() {
  return [](PrimOp) { return true; };
}

OpUsable none() {
  return [](PrimOp) { return false; };
}

std::map<PrimOp, std::size_t> opCensus(const Design& d) {
  std::map<PrimOp, std::size_t> census;
  for (const auto& inst : d.instances()) {
    if (inst.alive) ++census[inst.op];
  }
  return census;
}

/// Evaluates the design as a boolean function (combinational, two primary
/// inputs) for equivalence checking of rewrites.
bool evaluate(const Design& d, NetIndex out, bool a, bool b) {
  std::map<NetIndex, bool> values;
  for (const auto& port : d.ports()) {
    if (port.direction != netlist::PortDirection::kInput) continue;
    values[port.net] = port.name == "a" ? a : b;
  }
  // Simple fixed-point evaluation (designs here are tiny DAGs).
  for (int iter = 0; iter < 16; ++iter) {
    for (const auto& inst : d.instances()) {
      if (!inst.alive) continue;
      std::vector<bool> in;
      bool ready = true;
      for (NetIndex net : inst.inputs) {
        if (!values.contains(net)) {
          ready = false;
          break;
        }
        in.push_back(values.at(net));
      }
      if (!ready) continue;
      bool v = false;
      switch (inst.op) {
        case PrimOp::kInv: v = !in[0]; break;
        case PrimOp::kNand2: v = !(in[0] && in[1]); break;
        case PrimOp::kNor2: v = !(in[0] || in[1]); break;
        case PrimOp::kAnd2: v = in[0] && in[1]; break;
        case PrimOp::kOr2: v = in[0] || in[1]; break;
        case PrimOp::kNand2B: v = !(in[0] && !in[1]); break;
        case PrimOp::kNor2B: v = !(in[0] || !in[1]); break;
        default: continue;
      }
      values[inst.outputs[0]] = v;
    }
  }
  EXPECT_TRUE(values.contains(out));
  return values[out];
}

/// Builds gate(x, INV(y)), maps patterns, and checks logical equivalence.
void checkAbsorption(PrimOp gateOp, PrimOp expectedB) {
  Design original("t");
  NetlistBuilder b(original);
  const NetIndex x = b.inputPort("a");
  const NetIndex y = b.inputPort("b");
  const NetIndex z = b.gate(gateOp, {x, b.inv(y)});
  b.outputPort("z", z);

  Design mapped = original;  // copy
  const PatternStats stats = mapPatterns(mapped, allUsable());
  EXPECT_EQ(stats.inverterAbsorbed, 1u) << netlist::toString(gateOp);
  EXPECT_EQ(mapped.validate(), "");
  EXPECT_EQ(mapped.gateCount(), 1u);
  EXPECT_EQ(opCensus(mapped).begin()->first, expectedB);
  for (bool a : {false, true}) {
    for (bool c : {false, true}) {
      EXPECT_EQ(evaluate(mapped, z, a, c), evaluate(original, z, a, c))
          << netlist::toString(gateOp) << " a=" << a << " b=" << c;
    }
  }
}

TEST(PatternMap, Nand2AbsorbsInverter) {
  checkAbsorption(PrimOp::kNand2, PrimOp::kNand2B);
}
TEST(PatternMap, Nor2AbsorbsInverter) {
  checkAbsorption(PrimOp::kNor2, PrimOp::kNor2B);
}
TEST(PatternMap, And2BecomesNor2B) {
  checkAbsorption(PrimOp::kAnd2, PrimOp::kNor2B);
}
TEST(PatternMap, Or2BecomesNand2B) {
  checkAbsorption(PrimOp::kOr2, PrimOp::kNand2B);
}

TEST(PatternMap, SharedInverterIsNotAbsorbed) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex x = b.inputPort("a");
  const NetIndex y = b.inputPort("b");
  const NetIndex ny = b.inv(y);  // two consumers
  b.outputPort("z1", b.nand2(x, ny));
  b.outputPort("z2", b.nor2(x, ny));
  const PatternStats stats = mapPatterns(d, allUsable());
  EXPECT_EQ(stats.inverterAbsorbed, 0u);
  EXPECT_TRUE(opCensus(d).contains(PrimOp::kInv));
}

TEST(PatternMap, PrimaryOutputInverterIsNotAbsorbed) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex x = b.inputPort("a");
  const NetIndex ny = b.inv(b.inputPort("b"));
  b.outputPort("ny", ny);  // externally observed
  b.outputPort("z", b.nand2(x, ny));
  const PatternStats stats = mapPatterns(d, allUsable());
  EXPECT_EQ(stats.inverterAbsorbed, 0u);
}

TEST(PatternMap, DisabledWhenTargetUnusable) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex x = b.inputPort("a");
  b.outputPort("z", b.nand2(x, b.inv(b.inputPort("b"))));
  const PatternStats stats = mapPatterns(d, none());
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_EQ(d.gateCount(), 2u);
}

TEST(PatternMap, CollapsesTwoLevelMuxTree) {
  Design d("t");
  NetlistBuilder b(d);
  std::vector<netlist::Bus> choices;
  for (int i = 0; i < 4; ++i) {
    choices.push_back({b.inputPort("d" + std::to_string(i))});
  }
  const netlist::Bus sel = b.inputBus("s", 2);
  const netlist::Bus out = b.muxTree(choices, sel);
  b.outputPort("z", out[0]);
  ASSERT_EQ(d.gateCount(), 3u);  // two level-0 muxes + one level-1 mux
  const PatternStats stats = mapPatterns(d, allUsable());
  EXPECT_EQ(stats.mux4, 1u);
  EXPECT_EQ(d.gateCount(), 1u);
  EXPECT_EQ(d.validate(), "");
  const auto census = opCensus(d);
  EXPECT_TRUE(census.contains(PrimOp::kMux4));
}

TEST(PatternMap, MuxTreeWithDifferentSelectsNotCollapsed) {
  Design d("t");
  NetlistBuilder b(d);
  const NetIndex m0 =
      b.mux2(b.inputPort("d0"), b.inputPort("d1"), b.inputPort("s0"));
  const NetIndex m1 =
      b.mux2(b.inputPort("d2"), b.inputPort("d3"), b.inputPort("s0b"));
  b.outputPort("z", b.mux2(m0, m1, b.inputPort("s1")));
  const PatternStats stats = mapPatterns(d, allUsable());
  EXPECT_EQ(stats.mux4, 0u);
}

TEST(PatternMap, McuGainsMux4AndBCells) {
  netlist::Design mcu = netlist::generateMcu();
  const PatternStats stats = mapPatterns(mcu, allUsable());
  EXPECT_GT(stats.mux4, 500u);  // register-file read trees collapse
  EXPECT_GT(stats.norB, 10u);   // priority chains etc.
  EXPECT_EQ(mcu.validate(), "");
}

TEST(PatternMap, Deterministic) {
  netlist::Design a = netlist::generateMcu();
  netlist::Design b = netlist::generateMcu();
  const PatternStats sa = mapPatterns(a, allUsable());
  const PatternStats sb = mapPatterns(b, allUsable());
  EXPECT_EQ(sa.mux4, sb.mux4);
  EXPECT_EQ(sa.nandB, sb.nandB);
  EXPECT_EQ(sa.norB, sb.norB);
  EXPECT_EQ(a.gateCount(), b.gateCount());
}

}  // namespace
}  // namespace sct::synth
