// Fuzz-style property sweeps on random DAG netlists: every generated
// design must validate, synthesize, analyze, simulate, round-trip through
// Verilog and survive tuning-constrained synthesis without structural
// damage. The lint engine rides along as an oracle: it must never crash on
// anything a parser or generator produces, stay silent on known-good
// artifacts, and flag every design that Design::validate() rejects. Runs
// across many seeds via TEST_P.

#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "charlib/characterizer.hpp"
#include "lint/engine.hpp"
#include "lint/report_io.hpp"
#include "netlist/random.hpp"
#include "netlist/simulate.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"

namespace sct {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 12, 4);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
    constraints_ = new tuning::LibraryConstraints(tuning::tuneLibrary(
        *stat_,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        0.015)));
  }
  static void TearDownTestSuite() {
    delete constraints_;
    delete stat_;
    delete lib_;
    delete chr_;
    constraints_ = nullptr;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static netlist::RandomDagConfig configFor(std::uint64_t seed) {
    netlist::RandomDagConfig config;
    config.seed = seed;
    config.primaryInputs = 4 + seed % 13;
    config.gates = 100 + (seed * 37) % 400;
    config.flipFlops = 4 + seed % 29;
    config.primaryOutputs = 2 + seed % 7;
    return config;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
  static tuning::LibraryConstraints* constraints_;
};

charlib::Characterizer* FuzzTest::chr_ = nullptr;
liberty::Library* FuzzTest::lib_ = nullptr;
statlib::StatLibrary* FuzzTest::stat_ = nullptr;
tuning::LibraryConstraints* FuzzTest::constraints_ = nullptr;

TEST_P(FuzzTest, GeneratedDesignIsValid) {
  const netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  EXPECT_EQ(d.validate(), "");
  EXPECT_GT(d.gateCount(), 50u);
}

TEST_P(FuzzTest, SimulatesWithoutUndefinedBehaviour) {
  const netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  netlist::Simulator sim(d);
  sim.reset();
  for (std::size_t i = 0;; ++i) {
    const std::string name = "in[" + std::to_string(i) + "]";
    bool found = false;
    for (const netlist::Port& port : d.ports()) {
      if (port.name == name) {
        sim.setInput(name, (GetParam() >> (i % 17) & 1) != 0);
        found = true;
      }
    }
    if (!found) break;
  }
  for (int cycle = 0; cycle < 3; ++cycle) sim.step();
  SUCCEED();
}

TEST_P(FuzzTest, SynthesizesAndStaysConsistent) {
  const netlist::Design subject =
      netlist::generateRandomDag(configFor(GetParam()));
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 10.0;
  const synth::SynthesisResult result = synth.run(subject, clock);
  EXPECT_EQ(result.design.validate(), "");
  for (const auto& inst : result.design.instances()) {
    if (inst.alive) EXPECT_NE(inst.cell, nullptr);
  }
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  EXPECT_TRUE(sta.analyze());
}

TEST_P(FuzzTest, ConstrainedSynthesisRespectsWindows) {
  const netlist::Design subject =
      netlist::generateRandomDag(configFor(GetParam()));
  const synth::Synthesizer synth(*lib_, constraints_);
  sta::ClockSpec clock;
  clock.period = 12.0;
  const synth::SynthesisResult result = synth.run(subject, clock);
  EXPECT_EQ(result.design.validate(), "");
  if (result.success()) {
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST_P(FuzzTest, VerilogRoundTripPreservesStructure) {
  const netlist::Design original =
      netlist::generateRandomDag(configFor(GetParam()));
  const netlist::Design back =
      netlist::readVerilogFromString(netlist::writeVerilogToString(original));
  EXPECT_EQ(back.gateCount(), original.gateCount());
  EXPECT_EQ(back.ports().size(), original.ports().size());
  EXPECT_EQ(back.validate(), "");
}

TEST_P(FuzzTest, LintStaysSilentOnCleanArtifacts) {
  const netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  lint::LintSubject subject;
  subject.library = lib_;
  subject.statLibrary = stat_;
  subject.design = &d;
  subject.constraints = constraints_;
  subject.referenceLibrary = lib_;
  const lint::LintReport report = engine.run(subject);
  EXPECT_FALSE(report.hasErrors()) << lint::writeTextToString(report);
}

TEST_P(FuzzTest, LintSurvivesMutatedVerilogAndGatekeepsValidate) {
  const netlist::Design original =
      netlist::generateRandomDag(configFor(GetParam()));
  const std::string text = netlist::writeVerilogToString(original);
  const lint::LintEngine engine = lint::LintEngine::withAllRules();
  std::mt19937_64 rng(GetParam() * 7919 + 17);
  for (int trial = 0; trial < 8; ++trial) {
    // Chunk-deletion mutation of the Verilog text.
    std::string mutated = text;
    const std::size_t pos = rng() % mutated.size();
    const std::size_t len = 1 + rng() % 64;
    mutated.erase(pos, std::min(len, mutated.size() - pos));
    std::optional<netlist::Design> parsed;
    try {
      parsed.emplace(netlist::readVerilogFromString(mutated));
    } catch (const std::exception&) {
      continue;  // the parser rejected the mutation; nothing to lint
    }
    // Whatever the parser accepted, lint must process without crashing...
    lint::LintSubject subject;
    subject.design = &*parsed;
    const lint::LintReport report = engine.run(subject);
    // ...and must never pass a design the structural validator rejects.
    if (!parsed->validate().empty()) {
      EXPECT_TRUE(report.hasErrors())
          << "validate() rejects what lint passed:\n"
          << lint::writeTextToString(report);
    }
  }
}

TEST_P(FuzzTest, LintFlagsRawWiringCorruption) {
  netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  // Raw-insert a rogue second driver onto the first driven net, the way a
  // buggy deserializer would (addInstance itself now throws on this).
  std::optional<netlist::NetIndex> victim;
  for (netlist::NetIndex n = 0; n < d.netCount(); ++n) {
    if (d.net(n).driver != netlist::kNoInst) {
      victim = n;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());
  d.addInstanceRaw(netlist::Instance{
      "rogue", netlist::PrimOp::kInv, nullptr, {*victim}, {*victim}, true});
  ASSERT_NE(d.validate(), "");
  lint::LintSubject subject;
  subject.design = &d;
  const lint::LintReport report =
      lint::LintEngine::withAllRules().run(subject);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_TRUE(report.hasRule("net.multi-driver"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sct
