// Fuzz-style property sweeps on random DAG netlists: every generated
// design must validate, synthesize, analyze, simulate, round-trip through
// Verilog and survive tuning-constrained synthesis without structural
// damage. Runs across many seeds via TEST_P.

#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "netlist/random.hpp"
#include "netlist/simulate.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"

namespace sct {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 12, 4);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
    constraints_ = new tuning::LibraryConstraints(tuning::tuneLibrary(
        *stat_,
        tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                        0.015)));
  }
  static void TearDownTestSuite() {
    delete constraints_;
    delete stat_;
    delete lib_;
    delete chr_;
    constraints_ = nullptr;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static netlist::RandomDagConfig configFor(std::uint64_t seed) {
    netlist::RandomDagConfig config;
    config.seed = seed;
    config.primaryInputs = 4 + seed % 13;
    config.gates = 100 + (seed * 37) % 400;
    config.flipFlops = 4 + seed % 29;
    config.primaryOutputs = 2 + seed % 7;
    return config;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
  static tuning::LibraryConstraints* constraints_;
};

charlib::Characterizer* FuzzTest::chr_ = nullptr;
liberty::Library* FuzzTest::lib_ = nullptr;
statlib::StatLibrary* FuzzTest::stat_ = nullptr;
tuning::LibraryConstraints* FuzzTest::constraints_ = nullptr;

TEST_P(FuzzTest, GeneratedDesignIsValid) {
  const netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  EXPECT_EQ(d.validate(), "");
  EXPECT_GT(d.gateCount(), 50u);
}

TEST_P(FuzzTest, SimulatesWithoutUndefinedBehaviour) {
  const netlist::Design d = netlist::generateRandomDag(configFor(GetParam()));
  netlist::Simulator sim(d);
  sim.reset();
  for (std::size_t i = 0;; ++i) {
    const std::string name = "in[" + std::to_string(i) + "]";
    bool found = false;
    for (const netlist::Port& port : d.ports()) {
      if (port.name == name) {
        sim.setInput(name, (GetParam() >> (i % 17) & 1) != 0);
        found = true;
      }
    }
    if (!found) break;
  }
  for (int cycle = 0; cycle < 3; ++cycle) sim.step();
  SUCCEED();
}

TEST_P(FuzzTest, SynthesizesAndStaysConsistent) {
  const netlist::Design subject =
      netlist::generateRandomDag(configFor(GetParam()));
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 10.0;
  const synth::SynthesisResult result = synth.run(subject, clock);
  EXPECT_EQ(result.design.validate(), "");
  for (const auto& inst : result.design.instances()) {
    if (inst.alive) EXPECT_NE(inst.cell, nullptr);
  }
  sta::TimingAnalyzer sta(result.design, *lib_, clock);
  EXPECT_TRUE(sta.analyze());
}

TEST_P(FuzzTest, ConstrainedSynthesisRespectsWindows) {
  const netlist::Design subject =
      netlist::generateRandomDag(configFor(GetParam()));
  const synth::Synthesizer synth(*lib_, constraints_);
  sta::ClockSpec clock;
  clock.period = 12.0;
  const synth::SynthesisResult result = synth.run(subject, clock);
  EXPECT_EQ(result.design.validate(), "");
  if (result.success()) {
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST_P(FuzzTest, VerilogRoundTripPreservesStructure) {
  const netlist::Design original =
      netlist::generateRandomDag(configFor(GetParam()));
  const netlist::Design back =
      netlist::readVerilogFromString(netlist::writeVerilogToString(original));
  EXPECT_EQ(back.gateCount(), original.gateCount());
  EXPECT_EQ(back.ports().size(), original.ports().size());
  EXPECT_EQ(back.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sct
