// Tests for the SCTB binary container, the stage codecs (round-trip
// fidelity down to the serialized-text level) and the content-addressed
// artifact store (publication atomicity, corruption handling, gc).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "artifact/binary_format.hpp"
#include "artifact/codecs.hpp"
#include "artifact/hash.hpp"
#include "artifact/store.hpp"
#include "charlib/characterizer.hpp"
#include "liberty/liberty_io.hpp"
#include "netlist/mcu.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_io.hpp"
#include "synth/synthesis.hpp"
#include "tuning/constraints_io.hpp"
#include "tuning/restriction.hpp"

namespace sct {
namespace {

namespace fs = std::filesystem;
using artifact::Digest;
using artifact::FormatError;
using artifact::Hasher;
using artifact::SctbReader;
using artifact::SctbWriter;

charlib::CharacterizationConfig tinyConfig() {
  charlib::CharacterizationConfig config;
  config.slewAxis = {0.002, 0.05, 0.4};
  config.loadFractions = {0.01, 0.2, 1.0};
  return config;
}

liberty::Library tinyLibrary() {
  return charlib::Characterizer(tinyConfig())
      .characterizeNominal(charlib::ProcessCorner::typical());
}

statlib::StatLibrary tinyStatLibrary() {
  const charlib::Characterizer characterizer(tinyConfig());
  return statlib::buildStatLibrary(characterizer.characterizeMonteCarlo(
      charlib::ProcessCorner::typical(), 4, 99));
}

/// Temp directory wiped on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* stem)
      : path(fs::temp_directory_path() / stem) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// -------------------------------------------------------------- hashing ----

TEST(Digest, HexRoundTrip) {
  const Digest d{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(d.hex(), "0123456789abcdeffedcba9876543210");
  const auto back = Digest::fromHex(d.hex());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

TEST(Digest, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(Digest::fromHex("").has_value());
  EXPECT_FALSE(Digest::fromHex("0123").has_value());
  EXPECT_FALSE(
      Digest::fromHex("0123456789abcdeffedcba987654321g").has_value());
  EXPECT_FALSE(
      Digest::fromHex("0123456789abcdeffedcba98765432100").has_value());
}

TEST(Hasher, TypedFeedersDoNotAlias) {
  // Length prefixes keep adjacent strings from aliasing each other.
  Hasher a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_FALSE(a.digest() == b.digest());

  Hasher c, d;
  c.u8(1).u8(0).u8(0).u8(0);
  d.u32(1);
  EXPECT_FALSE(c.digest() == d.digest());
}

TEST(Hasher, DeterministicAcrossInstances) {
  Hasher a, b;
  for (Hasher* h : {&a, &b}) {
    h->str("stage").u64(50).f64(2.41).f64span(std::vector<double>{1.0, 2.0});
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_FALSE(a.digest() == Hasher().digest());
}

// ----------------------------------------------------- container basics ----

TEST(Sctb, WriterReaderRoundTripsScalars) {
  SctbWriter writer;
  writer.beginSection("scalars");
  writer.u8(7);
  writer.u32(0xdeadbeef);
  writer.u64(1ULL << 60);
  writer.f64(-0.0);
  writer.boolean(true);
  writer.str("hello SCTB");
  writer.beginSection("bulk");
  const std::vector<double> values{1.5, -2.25, 3.125, 0.0, 5e300};
  writer.f64span(values);

  const SctbReader reader = SctbReader::fromBytes(writer.finish());
  EXPECT_EQ(reader.schemaVersion(), artifact::kSchemaVersion);
  EXPECT_EQ(reader.sectionCount(), 2u);
  EXPECT_TRUE(reader.hasSection("scalars"));
  EXPECT_FALSE(reader.hasSection("missing"));
  EXPECT_THROW((void)reader.section("missing"), FormatError);

  SctbReader::Cursor cursor = reader.section("scalars");
  EXPECT_EQ(cursor.u8(), 7u);
  EXPECT_EQ(cursor.u32(), 0xdeadbeefu);
  EXPECT_EQ(cursor.u64(), 1ULL << 60);
  const double negZero = cursor.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_TRUE(cursor.boolean());
  EXPECT_EQ(cursor.str(), "hello SCTB");
  EXPECT_EQ(cursor.remaining(), 0u);
  EXPECT_THROW((void)cursor.u8(), FormatError);  // reads past the end throw

  SctbReader::Cursor bulk = reader.section("bulk");
  const std::span<const double> span = bulk.f64span();
  ASSERT_EQ(span.size(), values.size());
  // Zero-copy contract: the span aliases 8-byte-aligned reader storage.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) % 8, 0u);
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(span[i], values[i]);
}

TEST(Sctb, RejectsBadMagic) {
  SctbWriter writer;
  writer.beginSection("s");
  writer.u8(1);
  std::vector<std::byte> bytes = writer.finish();
  bytes[0] = std::byte{'X'};
  EXPECT_THROW((void)SctbReader::fromBytes(bytes), FormatError);
}

TEST(Sctb, RejectsWrongSchemaVersion) {
  SctbWriter writer(artifact::kSchemaVersion + 1);
  writer.beginSection("s");
  writer.u8(1);
  EXPECT_THROW((void)SctbReader::fromBytes(writer.finish()), FormatError);
}

TEST(Sctb, RejectsCorruptPayload) {
  SctbWriter writer;
  writer.beginSection("s");
  writer.str("payload under checksum");
  std::vector<std::byte> bytes = writer.finish();
  bytes.back() ^= std::byte{0x01};  // flip one payload bit
  EXPECT_THROW((void)SctbReader::fromBytes(bytes), FormatError);
}

TEST(Sctb, RejectsTruncationAtEveryBoundary) {
  SctbWriter writer;
  writer.beginSection("s");
  writer.f64span(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<std::byte> bytes = writer.finish();
  // Header cut, table cut and payload cut must all be detected.
  for (const std::size_t keep : {std::size_t{3}, std::size_t{15},
                                 std::size_t{17}, bytes.size() - 1}) {
    EXPECT_THROW(
        (void)SctbReader::fromBytes(std::span(bytes.data(), keep)),
        FormatError)
        << "kept " << keep << " bytes";
  }
}

TEST(Sctb, FromFileMatchesFromBytes) {
  SctbWriter writer;
  writer.beginSection("s");
  writer.str("disk");
  writer.f64span(std::vector<double>{4.0, 5.0});
  const std::vector<std::byte> bytes = writer.finish();

  TempDir dir("sct_artifact_file_test");
  fs::create_directories(dir.path);
  const fs::path file = dir.path / "x.sctb";
  {
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const SctbReader reader = SctbReader::fromFile(file.string());
  SctbReader::Cursor cursor = reader.section("s");
  EXPECT_EQ(cursor.str(), "disk");
  EXPECT_EQ(reader.fileSize(), bytes.size());
  EXPECT_THROW((void)SctbReader::fromFile((dir.path / "nope.sctb").string()),
               FormatError);
}

// ------------------------------------------------------- codec fidelity ----

TEST(Codecs, LibraryRoundTripsToIdenticalText) {
  const liberty::Library library = tinyLibrary();
  SctbWriter writer;
  artifact::encodeLibrary(writer, library);
  const liberty::Library back =
      artifact::decodeLibrary(SctbReader::fromBytes(writer.finish()));
  // The text serializer prints at max_digits10, so equal text means every
  // double survived bit-for-bit.
  EXPECT_EQ(liberty::writeLibraryToString(back),
            liberty::writeLibraryToString(library));
}

TEST(Codecs, StatLibraryRoundTripsToIdenticalText) {
  const statlib::StatLibrary library = tinyStatLibrary();
  SctbWriter writer;
  artifact::encodeStatLibrary(writer, library);
  const statlib::StatLibrary back =
      artifact::decodeStatLibrary(SctbReader::fromBytes(writer.finish()));
  EXPECT_EQ(back.sampleCount(), library.sampleCount());
  EXPECT_EQ(statlib::writeStatLibraryToString(back),
            statlib::writeStatLibraryToString(library));
}

TEST(Codecs, ConstraintsRoundTripToIdenticalText) {
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      tinyStatLibrary(),
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  SctbWriter writer;
  artifact::encodeConstraints(writer, constraints);
  const tuning::LibraryConstraints back =
      artifact::decodeConstraints(SctbReader::fromBytes(writer.finish()));
  EXPECT_EQ(back.size(), constraints.size());
  EXPECT_EQ(tuning::writeConstraintsToString(back),
            tuning::writeConstraintsToString(constraints));
}

TEST(Codecs, UnboundDesignRoundTripsVerbatim) {
  netlist::Design design = netlist::generateAccumulator(8, 5);
  (void)design.freshName("n");  // advance the counter past zero
  SctbWriter writer;
  artifact::encodeDesign(writer, design);
  netlist::Design back =
      artifact::decodeDesign(SctbReader::fromBytes(writer.finish()), nullptr);
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(netlist::writeVerilogToString(back),
            netlist::writeVerilogToString(design));
  // The fresh-name counter continues exactly where the original stopped.
  EXPECT_EQ(back.nameCounter(), design.nameCounter());
  EXPECT_EQ(back.freshName("n"), design.freshName("n"));
}

TEST(Codecs, SynthesisResultRoundTripsAgainstLibrary) {
  const liberty::Library library = tinyLibrary();
  const synth::Synthesizer synthesizer(library);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synthesizer.run(netlist::generateAccumulator(8, 5), clock);

  SctbWriter writer;
  artifact::encodeSynthesisResult(writer, result);
  const std::vector<std::byte> bytes = writer.finish();
  const synth::SynthesisResult back =
      artifact::decodeSynthesisResult(SctbReader::fromBytes(bytes), &library);

  EXPECT_EQ(back.timingMet, result.timingMet);
  EXPECT_EQ(back.legal, result.legal);
  EXPECT_EQ(back.worstSlack, result.worstSlack);
  EXPECT_EQ(back.tns, result.tns);
  EXPECT_EQ(back.area, result.area);
  EXPECT_EQ(back.passes, result.passes);
  EXPECT_EQ(back.buffersInserted, result.buffersInserted);
  EXPECT_EQ(back.resizes, result.resizes);
  EXPECT_EQ(back.design.validate(), "");
  EXPECT_EQ(netlist::writeVerilogToString(back.design),
            netlist::writeVerilogToString(result.design));
  // Mapped instances reference cells of the passed library by address.
  for (const netlist::Instance& inst : back.design.instances()) {
    if (inst.cell != nullptr) {
      EXPECT_EQ(inst.cell, library.findCell(inst.cell->name()));
    }
  }
  // A mapped design cannot be rebound without a library: decode must fail
  // loudly instead of silently dropping the bindings.
  EXPECT_THROW(
      (void)artifact::decodeSynthesisResult(SctbReader::fromBytes(bytes),
                                            nullptr),
      FormatError);
}

// ---------------------------------------------------------------- store ----

TEST(ArtifactStore, PublishOpenAndMissAccounting) {
  TempDir dir("sct_store_test");
  artifact::ArtifactStore store(dir.path / "store");

  const Digest key{1, 2};
  EXPECT_FALSE(store.open(key).has_value());
  EXPECT_EQ(store.stats().misses, 1u);

  SctbWriter writer;
  writer.beginSection("s");
  writer.str("cached");
  store.publish(key, writer);
  EXPECT_EQ(store.stats().stores, 1u);
  EXPECT_TRUE(fs::exists(store.pathFor(key)));

  auto reader = store.open(key);
  ASSERT_TRUE(reader.has_value());
  SctbReader::Cursor cursor = reader->section("s");
  EXPECT_EQ(cursor.str(), "cached");
  EXPECT_EQ(store.stats().hits, 1u);

  const auto [files, bytes] = store.diskUsage();
  EXPECT_EQ(files, 1u);
  EXPECT_GT(bytes, 0u);
  // No stray temp files survive publication.
  for (const auto& entry : fs::recursive_directory_iterator(store.root())) {
    if (entry.is_regular_file()) {
      EXPECT_EQ(entry.path().extension(), ".sctb");
      EXPECT_NE(entry.path().filename().string().find('.'), 0u);
    }
  }
}

TEST(ArtifactStore, CorruptEntryIsEvictedAndReportedAsMiss) {
  TempDir dir("sct_store_corrupt_test");
  artifact::ArtifactStore store(dir.path / "store");
  const Digest key{3, 4};
  SctbWriter writer;
  writer.beginSection("s");
  writer.u64(42);
  store.publish(key, writer);

  {
    // Truncate the published file: checksum/structure validation must fail.
    std::ofstream out(store.pathFor(key), std::ios::binary | std::ios::trunc);
    out << "SCTBgarbage";
  }
  EXPECT_FALSE(store.open(key).has_value());
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_FALSE(fs::exists(store.pathFor(key)));  // evicted

  // The flow's degrade path: recompute and republish under the same key.
  store.publish(key, writer);
  EXPECT_TRUE(store.open(key).has_value());
}

TEST(ArtifactStore, GcEnforcesByteBudgetOldestFirst) {
  TempDir dir("sct_store_gc_test");
  artifact::ArtifactStore store(dir.path / "store");
  for (std::uint64_t i = 0; i < 4; ++i) {
    SctbWriter writer;
    writer.beginSection("s");
    writer.f64span(std::vector<double>(64, static_cast<double>(i)));
    store.publish(Digest{i, i}, writer);
  }
  const auto [filesBefore, bytesBefore] = store.diskUsage();
  ASSERT_EQ(filesBefore, 4u);

  // A budget of roughly half the store must evict some but not all entries.
  artifact::GcPolicy policy;
  policy.maxBytes = bytesBefore / 2;
  const artifact::GcResult result = store.gc(policy);
  EXPECT_GT(result.filesRemoved, 0u);
  EXPECT_GT(result.filesKept, 0u);
  EXPECT_LE(result.bytesKept, policy.maxBytes);
  const auto [filesAfter, bytesAfter] = store.diskUsage();
  EXPECT_EQ(filesAfter, result.filesKept);
  EXPECT_EQ(bytesAfter, result.bytesKept);

  // maxBytes = 1 clears the store entirely.
  policy.maxBytes = 1;
  (void)store.gc(policy);
  EXPECT_EQ(store.diskUsage().first, 0u);
}

}  // namespace
}  // namespace sct
