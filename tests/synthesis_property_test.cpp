// Property sweeps (TEST_P) over the synthesis and tuning pipelines:
// invariants that must hold at every clock period, tuning parameter and
// design seed — the cross-cutting guarantees the individual unit tests
// can't cover point-wise.

#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "netlist/mcu.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/restriction.hpp"

namespace sct {
namespace {

/// Shared slow-to-build fixtures (characterized library + stat library).
class PropertyBase {
 public:
  static charlib::Characterizer& characterizer() {
    static charlib::Characterizer chr = test::makeSmallCharacterizer();
    return chr;
  }
  static liberty::Library& library() {
    static liberty::Library lib =
        characterizer().characterizeNominal(charlib::ProcessCorner::typical());
    return lib;
  }
  static statlib::StatLibrary& statLibrary() {
    static statlib::StatLibrary stat = statlib::buildStatLibrary(
        characterizer().characterizeMonteCarlo(charlib::ProcessCorner::typical(),
                                               20, 31));
    return stat;
  }
};

// ------------------------------------------------ synthesis invariants ----

class SynthesisPeriodSweep : public ::testing::TestWithParam<double>,
                             public PropertyBase {};

TEST_P(SynthesisPeriodSweep, InvariantsHoldAtEveryPeriod) {
  const double period = GetParam();
  const synth::Synthesizer synth(library());
  sta::ClockSpec clock;
  clock.period = period;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(20, 3), clock);

  // Structural invariants regardless of timing success.
  EXPECT_EQ(result.design.validate(), "");
  for (const auto& inst : result.design.instances()) {
    if (inst.alive) EXPECT_NE(inst.cell, nullptr);
  }
  EXPECT_GT(result.area, 0.0);

  // Fanout bound.
  synth::SynthesisOptions options;
  for (const auto& net : result.design.nets()) {
    EXPECT_LE(net.sinks.size(), options.maxFanout);
  }

  // Reported status matches a fresh STA of the produced design.
  sta::TimingAnalyzer sta(result.design, library(), clock);
  ASSERT_TRUE(sta.analyze());
  EXPECT_NEAR(sta.worstSlack(), result.worstSlack, 1e-9);
  EXPECT_EQ(sta.met(), result.timingMet);
}

INSTANTIATE_TEST_SUITE_P(Periods, SynthesisPeriodSweep,
                         ::testing::Values(1.2, 1.8, 2.6, 4.0, 6.5, 10.0));

class SynthesisSeedSweep : public ::testing::TestWithParam<std::uint64_t>,
                           public PropertyBase {};

TEST_P(SynthesisSeedSweep, EveryGeneratedDesignSynthesizes) {
  // Different control-logic seeds produce different subject graphs; all of
  // them must map, legalize and close timing at a relaxed clock.
  const synth::Synthesizer synth(library());
  sta::ClockSpec clock;
  clock.period = 9.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16, GetParam()), clock);
  EXPECT_TRUE(result.success()) << "seed " << GetParam();
  EXPECT_EQ(result.design.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisSeedSweep,
                         ::testing::Values(1, 2, 3, 7, 11, 42, 1234));

// ---------------------------------------------------- tuning invariants ----

class CeilingSweep : public ::testing::TestWithParam<double>,
                     public PropertyBase {};

TEST_P(CeilingSweep, WindowsAreAcceptableRegions) {
  // Every window produced by a ceiling must contain only entries whose
  // sigma is below the ceiling (the defining property of the restriction).
  const double ceiling = GetParam();
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      statLibrary(),
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      ceiling));
  for (const statlib::StatCell* cell : statLibrary().cells()) {
    if (cell->arcs().empty()) continue;
    const auto window = constraints.window(cell->name(), "Z");
    if (!window || window->maxLoad < window->minLoad) continue;
    const statlib::StatLut lut = cell->maxSigmaLutForPin("Z");
    if (lut.empty()) continue;
    for (std::size_t r = 0; r < lut.rows(); ++r) {
      for (std::size_t c = 0; c < lut.cols(); ++c) {
        if (window->allows(lut.slewAxis()[r], lut.loadAxis()[c])) {
          EXPECT_LE(lut.sigma().at(r, c), ceiling + 1e-12)
              << cell->name() << " (" << r << "," << c << ")";
        }
      }
    }
  }
}

TEST_P(CeilingSweep, WindowAreaShrinksWithCeiling) {
  // The accepted-rectangle area is monotone in the threshold (a tighter
  // ceiling accepts a subset of entries).
  const double ceiling = GetParam();
  const auto tight = tuning::tuneLibrary(
      statLibrary(),
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      ceiling));
  const auto loose = tuning::tuneLibrary(
      statLibrary(),
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      ceiling * 2.0));
  for (const statlib::StatCell* cell : statLibrary().cells()) {
    if (cell->arcs().empty()) continue;
    const statlib::StatLut lut = cell->maxSigmaLutForPin("Z");
    if (lut.empty()) continue;
    auto rectCells = [&](const tuning::LibraryConstraints& c) {
      const auto w = c.window(cell->name(), "Z");
      if (!w || w->maxLoad < w->minLoad) return std::size_t{0};
      std::size_t n = 0;
      for (std::size_t r = 0; r < lut.rows(); ++r) {
        for (std::size_t col = 0; col < lut.cols(); ++col) {
          if (w->allows(lut.slewAxis()[r], lut.loadAxis()[col])) ++n;
        }
      }
      return n;
    };
    EXPECT_LE(rectCells(tight), rectCells(loose)) << cell->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Ceilings, CeilingSweep,
                         ::testing::Values(0.04, 0.02, 0.01, 0.005));

class MethodSweep
    : public ::testing::TestWithParam<tuning::TuningMethod>,
      public PropertyBase {};

TEST_P(MethodSweep, ConstrainedSynthesisStaysLegal) {
  // Any method at its mid sweep value must either fail cleanly or produce a
  // fully legal, window-respecting design.
  const tuning::TuningMethod method = GetParam();
  const double value = tuning::sweepValues(method)[2];
  const tuning::LibraryConstraints constraints = tuning::tuneLibrary(
      statLibrary(), tuning::TuningConfig::forMethod(method, value));
  const synth::Synthesizer synth(library(), &constraints);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(16), clock);
  EXPECT_EQ(result.design.validate(), "");
  if (result.success()) {
    EXPECT_EQ(result.violations, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MethodSweep,
    ::testing::Values(tuning::TuningMethod::kCellStrengthLoadSlope,
                      tuning::TuningMethod::kCellStrengthSlewSlope,
                      tuning::TuningMethod::kCellLoadSlope,
                      tuning::TuningMethod::kCellSlewSlope,
                      tuning::TuningMethod::kSigmaCeiling));

}  // namespace
}  // namespace sct
