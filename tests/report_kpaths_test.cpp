// Tests for the k-worst-path enumeration and the timing-report writer.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "netlist/builder.hpp"
#include "sta/report.hpp"
#include "sta/sta.hpp"
#include "test_helpers.hpp"

namespace sct::sta {
namespace {

using netlist::Design;
using netlist::InstIndex;
using netlist::NetIndex;
using netlist::NetlistBuilder;
using netlist::PrimOp;

void bindAll(Design& d, const liberty::Library& lib) {
  for (std::size_t i = 0; i < d.instanceCount(); ++i) {
    netlist::Instance& inst = d.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    const liberty::Cell* cell = nullptr;
    switch (inst.op) {
      case PrimOp::kInv: cell = lib.findCell("INV_1"); break;
      case PrimOp::kNand2: cell = lib.findCell("ND2_1"); break;
      case PrimOp::kBuf: cell = lib.findCell("BF_2"); break;
      case PrimOp::kDff: cell = lib.findCell("FD1_1"); break;
      default: FAIL() << "unexpected op";
    }
    d.bindCell(static_cast<InstIndex>(i), cell);
  }
}

ClockSpec tinyClock(double period = 1.0) {
  ClockSpec clock;
  clock.period = period;
  clock.uncertainty = 0.1;
  clock.inputSlew = 0.02;
  return clock;
}

/// Two reconvergent branches of different depth into one NAND and FF.
Design makeReconvergent(std::size_t longDepth) {
  Design d("reconv");
  NetlistBuilder b(d);
  const NetIndex in = b.inputPort("din");
  const NetIndex q = b.dff(in, PrimOp::kDff);
  NetIndex slow = q;
  for (std::size_t i = 0; i < longDepth; ++i) slow = b.inv(slow);
  const NetIndex fast = b.inv(q);
  const NetIndex z = b.nand2(fast, slow);
  b.outputPort("dout", b.dff(z, PrimOp::kDff));
  return d;
}

const Endpoint& ffEndpoint(const TimingAnalyzer& sta) {
  const Endpoint* worst = nullptr;
  for (const Endpoint& ep : sta.endpoints()) {
    if (ep.instance == netlist::kNoInst) continue;
    if (worst == nullptr || ep.arrival > worst->arrival) worst = &ep;
  }
  EXPECT_NE(worst, nullptr);
  return *worst;
}

TEST(KWorstPaths, FirstPathMatchesWorstPath) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = makeReconvergent(4);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const Endpoint& ep = ffEndpoint(sta);
  const TimingPath worst = sta.worstPathTo(ep);
  const auto paths = sta.kWorstPathsTo(ep, 3);
  ASSERT_GE(paths.size(), 2u);
  EXPECT_EQ(paths[0].depth(), worst.depth());
  EXPECT_NEAR(paths[0].endpoint.arrival, ep.arrival, 1e-12);
}

TEST(KWorstPaths, ArrivalsAreNonIncreasingAndDistinct) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = makeReconvergent(5);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const auto paths = sta.kWorstPathsTo(ffEndpoint(sta), 4);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i].endpoint.arrival, paths[i - 1].endpoint.arrival + 1e-12);
  }
  // The two branches give different depths.
  std::set<std::size_t> depths;
  for (const auto& path : paths) depths.insert(path.depth());
  EXPECT_GE(depths.size(), 2u);
}

TEST(KWorstPaths, PathDelaysSumToReportedArrival) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = makeReconvergent(3);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  for (const TimingPath& path : sta.kWorstPathsTo(ffEndpoint(sta), 4)) {
    double sum = 0.0;
    for (const PathStep& step : path.steps) sum += step.delay;
    EXPECT_NEAR(sum, path.endpoint.arrival, 1e-12);
  }
}

TEST(KWorstPaths, SinglePathDesignHasExactlyOne) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(4);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const auto paths = sta.kWorstPathsTo(ffEndpoint(sta), 5);
  EXPECT_EQ(paths.size(), 1u);  // an inverter chain has one path
}

TEST(KWorstPaths, WideFaninEnumeratesMany) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d("tree");
  NetlistBuilder b(d);
  // Balanced NAND tree over 8 inputs: 8 distinct input-to-root paths.
  std::vector<NetIndex> level;
  for (int i = 0; i < 8; ++i) level.push_back(b.inputPort("i" + std::to_string(i)));
  while (level.size() > 1) {
    std::vector<NetIndex> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(b.nand2(level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  b.outputPort("z", level[0]);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const Endpoint& ep = sta.endpoints().front();
  EXPECT_EQ(sta.kWorstPathsTo(ep, 100).size(), 8u);
}

// ------------------------------------------------------------- report ----

TEST(TimingReport, ContainsAllSections) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(3);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  const std::string report = timingReportToString(d, sta);
  EXPECT_NE(report.find("timing report"), std::string::npos);
  EXPECT_NE(report.find("Setup WNS"), std::string::npos);
  EXPECT_NE(report.find("Hold  WNS"), std::string::npos);
  EXPECT_NE(report.find("Area by category"), std::string::npos);
  EXPECT_NE(report.find("slack histogram"), std::string::npos);
  EXPECT_NE(report.find("Critical path 1"), std::string::npos);
  EXPECT_NE(report.find("INV_1"), std::string::npos);
  EXPECT_NE(report.find("Inverter"), std::string::npos);
}

TEST(TimingReport, RespectsOptions) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(3);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock());
  ASSERT_TRUE(sta.analyze());
  ReportOptions options;
  options.criticalPaths = 1;
  const std::string report = timingReportToString(d, sta, options);
  EXPECT_NE(report.find("Critical path 1"), std::string::npos);
  EXPECT_EQ(report.find("Critical path 2"), std::string::npos);
}

TEST(TimingReport, ViolatedDesignSaysViolated) {
  liberty::Library lib = test::makeTinyLibrary();
  Design d = test::makeInvChain(6);
  bindAll(d, lib);
  TimingAnalyzer sta(d, lib, tinyClock(0.2));
  ASSERT_TRUE(sta.analyze());
  ASSERT_FALSE(sta.met());
  const std::string report = timingReportToString(d, sta);
  EXPECT_NE(report.find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace sct::sta
