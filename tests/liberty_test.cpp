// Unit tests for the Liberty-style library model: function traits, cell
// naming, pins/arcs, library queries and the text reader/writer round-trip.

#include <gtest/gtest.h>

#include <sstream>

#include "liberty/function.hpp"
#include "liberty/liberty_io.hpp"
#include "liberty/library.hpp"
#include "test_helpers.hpp"

namespace sct::liberty {
namespace {

// ----------------------------------------------------------- function ----

TEST(Function, TraitsSelfConsistent) {
  for (std::size_t i = 0; i < kNumCellFunctions; ++i) {
    const auto f = static_cast<CellFunction>(i);
    const FunctionTraits& t = traits(f);
    EXPECT_EQ(t.function, f);
    EXPECT_FALSE(t.prefix.empty());
    EXPECT_GT(t.logicalEffort, 0.0);
    EXPECT_GT(t.parasitic, 0.0);
    EXPECT_GT(t.unitArea, 0.0);
  }
}

TEST(Function, PrefixesAreUnique) {
  for (std::size_t i = 0; i < kNumCellFunctions; ++i) {
    for (std::size_t j = i + 1; j < kNumCellFunctions; ++j) {
      EXPECT_NE(traits(static_cast<CellFunction>(i)).prefix,
                traits(static_cast<CellFunction>(j)).prefix);
    }
  }
}

TEST(Function, SequentialFlagMatchesCategory) {
  EXPECT_TRUE(traits(CellFunction::kDff).sequential);
  EXPECT_TRUE(traits(CellFunction::kLatch).sequential);
  EXPECT_FALSE(traits(CellFunction::kNand2).sequential);
  EXPECT_EQ(traits(CellFunction::kDffR).category, CellCategory::kFlipFlop);
  EXPECT_EQ(traits(CellFunction::kAnd3).category, CellCategory::kOr);
  EXPECT_EQ(traits(CellFunction::kXor2).category, CellCategory::kXnor);
}

TEST(Function, StrengthSuffixFormatsPaperStyle) {
  EXPECT_EQ(strengthSuffix(1.0), "1");
  EXPECT_EQ(strengthSuffix(0.5), "0P5");
  EXPECT_EQ(strengthSuffix(2.5), "2P5");
  EXPECT_EQ(strengthSuffix(32.0), "32");
}

TEST(Function, MakeCellNameMatchesPaperConvention) {
  EXPECT_EQ(makeCellName(CellFunction::kNor2B, 3.0), "NR2B_3");
  EXPECT_EQ(makeCellName(CellFunction::kInv, 0.5), "IV_0P5");
  EXPECT_EQ(makeCellName(CellFunction::kNor4, 6.0), "NR4_6");
}

TEST(Function, ParseStrengthSuffixRoundTrip) {
  for (double s : {0.5, 0.7, 1.0, 1.5, 2.0, 2.5, 3.5, 6.0, 12.0, 32.0}) {
    EXPECT_DOUBLE_EQ(parseStrengthSuffix(strengthSuffix(s)), s);
  }
}

TEST(Function, ParseStrengthSuffixRejectsGarbage) {
  EXPECT_LT(parseStrengthSuffix(""), 0.0);
  EXPECT_LT(parseStrengthSuffix("abc"), 0.0);
  EXPECT_LT(parseStrengthSuffix("1P"), 0.0);
  EXPECT_LT(parseStrengthSuffix("P5"), 0.0);
  EXPECT_LT(parseStrengthSuffix("1Px"), 0.0);
}

TEST(Function, PinNamesPerFunction) {
  EXPECT_EQ(dataInputNames(CellFunction::kMux2)[2], "S");
  EXPECT_EQ(dataInputNames(CellFunction::kFullAdder)[2], "CI");
  EXPECT_EQ(dataInputNames(CellFunction::kDff)[0], "D");
  EXPECT_EQ(dataInputNames(CellFunction::kNand3)[1], "B");
  EXPECT_EQ(outputNames(CellFunction::kFullAdder)[0], "S");
  EXPECT_EQ(outputNames(CellFunction::kFullAdder)[1], "CO");
  EXPECT_EQ(outputNames(CellFunction::kDffR)[0], "Q");
  EXPECT_EQ(outputNames(CellFunction::kNor2)[0], "Z");
}

// ----------------------------------------------------------------- lut ----

TEST(Lut, LookupInterpolates) {
  const Lut lut = test::linearLut({0.0, 1.0}, {0.0, 2.0}, 1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(lut.lookup(0.5, 1.0), 1.0 + 2.0 * 0.5 + 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(lut.lookup(5.0, 5.0), 1.0 + 2.0 + 6.0);  // clamped
}

TEST(Lut, SameShapeChecksAxes) {
  const Lut a = test::linearLut({0.0, 1.0}, {0.0, 2.0}, 0, 1, 1);
  const Lut b = test::linearLut({0.0, 1.0}, {0.0, 2.0}, 9, 9, 9);
  const Lut c = test::linearLut({0.0, 2.0}, {0.0, 2.0}, 0, 1, 1);
  EXPECT_TRUE(a.sameShape(b));
  EXPECT_FALSE(a.sameShape(c));
}

// ---------------------------------------------------------------- cell ----

TEST(Cell, PinAndArcLookup) {
  const liberty::Cell cell = test::makeSimpleCell(
      "ND2_1", CellFunction::kNand2, 1.0, 1.4, 0.002, 0.01, 0.1, 2.0);
  EXPECT_NE(cell.findPin("A"), nullptr);
  EXPECT_NE(cell.findPin("B"), nullptr);
  EXPECT_NE(cell.findPin("Z"), nullptr);
  EXPECT_EQ(cell.findPin("nope"), nullptr);
  EXPECT_DOUBLE_EQ(cell.inputCapacitance("A"), 0.002);
  EXPECT_DOUBLE_EQ(cell.inputCapacitance("Z"), 0.0);  // output pin
  EXPECT_EQ(cell.fanoutArcs("Z").size(), 2u);
  EXPECT_NE(cell.findArc("A", "Z"), nullptr);
  EXPECT_NE(cell.findArc("B", "Z"), nullptr);
  EXPECT_EQ(cell.findArc("Z", "A"), nullptr);
  EXPECT_EQ(cell.inputPins().size(), 2u);
  EXPECT_EQ(cell.outputPins().size(), 1u);
}

TEST(Cell, WorstDelayIsMaxOfRiseFall) {
  liberty::Cell cell = test::makeSimpleCell("IV_1", CellFunction::kInv, 1.0,
                                            1.0, 0.001, 0.01, 0.1, 2.0);
  // Make fall slower than rise.
  cell.arcs()[0].fallDelay =
      test::linearLut(test::tinySlewAxis(), test::tinyLoadAxis(), 0.05, 0.1,
                      2.0);
  const TimingArc& arc = cell.arcs()[0];
  EXPECT_DOUBLE_EQ(arc.worstDelay(0.01, 0.001),
                   arc.fallDelay.lookup(0.01, 0.001));
}

TEST(Cell, SequentialAttributes) {
  const liberty::Cell ff =
      test::makeDffCell("FD1_1", 1.0, 4.0, 0.001, 0.03, 0.08, 4.0, 0.04);
  EXPECT_TRUE(ff.isSequential());
  EXPECT_DOUBLE_EQ(ff.setupTime(), 0.04);
  EXPECT_DOUBLE_EQ(ff.holdTime(), 0.01);
  EXPECT_NE(ff.findArc("CP", "Q"), nullptr);
  EXPECT_TRUE(ff.findPin("CP")->isClock);
}

// -------------------------------------------------------------- library ----

TEST(Library, FindAndStableAddresses) {
  liberty::Library lib = test::makeTinyLibrary();
  const Cell* inv = lib.findCell("INV_1");
  ASSERT_NE(inv, nullptr);
  // Adding more cells must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    lib.addCell(test::makeSimpleCell("X_" + std::to_string(i),
                                     CellFunction::kInv, 1.0, 1.0, 0.001,
                                     0.01, 0.1, 2.0));
  }
  EXPECT_EQ(lib.findCell("INV_1"), inv);
  EXPECT_EQ(inv->name(), "INV_1");
}

TEST(Library, FamilySortedByStrength) {
  const liberty::Library lib = test::makeTinyLibrary();
  const auto family = lib.family(CellFunction::kInv);
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(family[0]->name(), "INV_1");
  EXPECT_EQ(family[1]->name(), "INV_4");
}

TEST(Library, StrengthClusters) {
  const liberty::Library lib = test::makeTinyLibrary();
  const auto clusters = lib.strengthClusters();
  ASSERT_TRUE(clusters.contains(1.0));
  EXPECT_EQ(clusters.at(1.0).size(), 3u);  // INV_1, ND2_1, FD1_1
  EXPECT_EQ(clusters.at(4.0).size(), 1u);
}

TEST(Library, CategoryCounts) {
  const liberty::Library lib = test::makeTinyLibrary();
  const auto counts = lib.categoryCounts();
  EXPECT_EQ(counts.at(CellCategory::kInverter), 2u);
  EXPECT_EQ(counts.at(CellCategory::kNand), 1u);
  EXPECT_EQ(counts.at(CellCategory::kFlipFlop), 1u);
}

TEST(Library, CornerNameFormatsPaperStyle) {
  OperatingConditions oc{"TT", 1.1, 25.0};
  EXPECT_EQ(oc.cornerName(), "TT1P1V25C");
  OperatingConditions ff{"FF", 1.2, -40.0};
  EXPECT_EQ(ff.cornerName(), "FF1P2V-40C");
  OperatingConditions ss{"SS", 1.0, 125.0};
  EXPECT_EQ(ss.cornerName(), "SS1V125C");
}

// ------------------------------------------------------------------ io ----

TEST(LibertyIo, RoundTripPreservesEverything) {
  const liberty::Library lib = test::makeTinyLibrary();
  const std::string text = writeLibraryToString(lib);
  const liberty::Library back = readLibraryFromString(text);

  EXPECT_EQ(back.name(), lib.name());
  EXPECT_EQ(back.size(), lib.size());
  for (const Cell* original : lib.cells()) {
    const Cell* parsed = back.findCell(original->name());
    ASSERT_NE(parsed, nullptr) << original->name();
    EXPECT_EQ(parsed->function(), original->function());
    EXPECT_DOUBLE_EQ(parsed->driveStrength(), original->driveStrength());
    EXPECT_DOUBLE_EQ(parsed->area(), original->area());
    EXPECT_DOUBLE_EQ(parsed->setupTime(), original->setupTime());
    ASSERT_EQ(parsed->pins().size(), original->pins().size());
    ASSERT_EQ(parsed->arcs().size(), original->arcs().size());
    for (std::size_t a = 0; a < original->arcs().size(); ++a) {
      const TimingArc& oa = original->arcs()[a];
      const TimingArc& pa = parsed->arcs()[a];
      EXPECT_EQ(pa.relatedPin, oa.relatedPin);
      EXPECT_EQ(pa.outputPin, oa.outputPin);
      EXPECT_EQ(pa.riseDelay, oa.riseDelay);
      EXPECT_EQ(pa.fallDelay, oa.fallDelay);
      EXPECT_EQ(pa.riseTransition, oa.riseTransition);
      EXPECT_EQ(pa.fallTransition, oa.fallTransition);
    }
  }
}

TEST(LibertyIo, SecondRoundTripIsIdentical) {
  const liberty::Library lib = test::makeTinyLibrary();
  const std::string once = writeLibraryToString(lib);
  const std::string twice =
      writeLibraryToString(readLibraryFromString(once));
  EXPECT_EQ(once, twice);
}

TEST(LibertyIo, ParsesComments) {
  const std::string text =
      "library (x) {\n"
      "  // a comment line\n"
      "  cell (IV_1) {\n"
      "    function : INV ;  // trailing comment\n"
      "    drive_strength : 1 ;\n"
      "    area : 1 ;\n"
      "  }\n"
      "}\n";
  const liberty::Library lib = readLibraryFromString(text);
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_NE(lib.findCell("IV_1"), nullptr);
}

TEST(LibertyIo, RejectsUnknownFunction) {
  const std::string text =
      "library (x) {\n cell (A) {\n function : BOGUS ;\n }\n}\n";
  EXPECT_THROW((void)readLibraryFromString(text), ParseError);
}

TEST(LibertyIo, RejectsMalformedHeader) {
  EXPECT_THROW((void)readLibraryFromString("cell (A) {}\n"), ParseError);
}

TEST(LibertyIo, RejectsRowWidthMismatch) {
  const std::string text =
      "library (x) {\n"
      " cell (A) {\n"
      "  function : INV ;\n"
      "  timing (A -> Z) {\n"
      "   cell_rise {\n"
      "    index_1 : 0.1 0.2 ;\n"
      "    index_2 : 1 2 3 ;\n"
      "    row : 1 2 ;\n"  // should be 3 wide
      "    row : 1 2 3 ;\n"
      "   }\n"
      "  }\n"
      " }\n"
      "}\n";
  EXPECT_THROW((void)readLibraryFromString(text), ParseError);
}

TEST(LibertyIo, RejectsUnterminatedBlock) {
  EXPECT_THROW((void)readLibraryFromString("library (x) {\n"), ParseError);
}

TEST(LibertyIo, ParseErrorCarriesLineNumber) {
  const std::string text =
      "library (x) {\n cell (A) {\n  function : BOGUS ;\n }\n}\n";
  try {
    (void)readLibraryFromString(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

}  // namespace
}  // namespace sct::liberty
