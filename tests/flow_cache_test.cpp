// Cold-vs-warm equivalence of the resumable flow: a second TuningFlow over
// the same cache directory must serve characterization, stat-merge, tuning
// and synthesis from the artifact store and produce bit-identical results.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/flow.hpp"
#include "liberty/liberty_io.hpp"
#include "statlib/stat_io.hpp"
#include "tuning/constraints_io.hpp"

namespace sct::core {
namespace {

namespace fs = std::filesystem;

FlowConfig smallConfig(const fs::path& cacheDir) {
  FlowConfig config;
  config.characterization.slewAxis = {0.002, 0.05, 0.2, 0.6};
  config.characterization.loadFractions = {0.01, 0.1, 0.4, 1.0};
  config.mcLibraryCount = 6;
  config.mcu.registers = 8;
  config.mcu.readPorts = 2;
  config.mcu.bankedRegisters = 1;
  config.mcu.macUnits = 1;
  config.mcu.macWidth = 8;
  config.mcu.timers = 1;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 16;
  config.mcu.cacheTagEntries = 16;
  config.mcu.decodeOutputs = 64;
  config.mcu.interruptSources = 8;
  config.cacheDir = cacheDir.string();
  return config;
}

void expectBitIdentical(const DesignMeasurement& warm,
                        const DesignMeasurement& cold) {
  // Exact comparisons throughout: the cache contract is bit-identity, not
  // tolerance-level agreement.
  EXPECT_EQ(warm.synthesis.timingMet, cold.synthesis.timingMet);
  EXPECT_EQ(warm.synthesis.legal, cold.synthesis.legal);
  EXPECT_EQ(warm.synthesis.worstSlack, cold.synthesis.worstSlack);
  EXPECT_EQ(warm.synthesis.tns, cold.synthesis.tns);
  EXPECT_EQ(warm.synthesis.area, cold.synthesis.area);
  EXPECT_EQ(warm.synthesis.design.gateCount(),
            cold.synthesis.design.gateCount());
  EXPECT_EQ(warm.design.sigma, cold.design.sigma);
  ASSERT_EQ(warm.paths.size(), cold.paths.size());
  for (std::size_t i = 0; i < warm.paths.size(); ++i) {
    EXPECT_EQ(warm.paths[i].endpoint, cold.paths[i].endpoint);
    EXPECT_EQ(warm.paths[i].depth, cold.paths[i].depth);
    EXPECT_EQ(warm.paths[i].mean, cold.paths[i].mean);
    EXPECT_EQ(warm.paths[i].sigma, cold.paths[i].sigma);
    EXPECT_EQ(warm.paths[i].arrival, cold.paths[i].arrival);
    EXPECT_EQ(warm.paths[i].slack, cold.paths[i].slack);
  }
}

TEST(FlowCache, WarmRunHitsEveryStageBitIdentically) {
  const fs::path dir = fs::temp_directory_path() / "sct_flow_cache_test";
  fs::remove_all(dir);
  const tuning::TuningConfig tc = tuning::TuningConfig::forMethod(
      tuning::TuningMethod::kSigmaCeiling, 0.02);

  TuningFlow cold(smallConfig(dir));
  ASSERT_NE(cold.cache(), nullptr);
  const DesignMeasurement coldRun = cold.synthesizeTuned(8.0, tc);
  ASSERT_TRUE(coldRun.success());
  EXPECT_GE(cold.cache()->stats().stores, 4u);  // nominal+stat+tune+synth
  const std::string coldLib = liberty::writeLibraryToString(
      cold.nominalLibrary());
  const std::string coldStat =
      statlib::writeStatLibraryToString(cold.statLibrary());
  const std::string coldConstraints =
      tuning::writeConstraintsToString(cold.tune(tc));

  // A fresh flow over the same cache directory: every stage must be served
  // from the store (zero misses) and reproduce the cold results exactly.
  TuningFlow warm(smallConfig(dir));
  const DesignMeasurement warmRun = warm.synthesizeTuned(8.0, tc);
  ASSERT_NE(warm.cache(), nullptr);
  EXPECT_EQ(warm.cache()->stats().misses, 0u);
  EXPECT_EQ(warm.cache()->stats().corrupt, 0u);
  EXPECT_EQ(warm.cache()->stats().stores, 0u);
  EXPECT_GE(warm.cache()->stats().hits, 3u);  // nominal, stat, synth
  expectBitIdentical(warmRun, coldRun);
  EXPECT_EQ(liberty::writeLibraryToString(warm.nominalLibrary()), coldLib);
  EXPECT_EQ(statlib::writeStatLibraryToString(warm.statLibrary()), coldStat);
  EXPECT_EQ(tuning::writeConstraintsToString(warm.tune(tc)), coldConstraints);

  fs::remove_all(dir);
}

TEST(FlowCache, CorruptCacheDegradesToRecompute) {
  const fs::path dir = fs::temp_directory_path() / "sct_flow_corrupt_test";
  fs::remove_all(dir);

  TuningFlow cold(smallConfig(dir));
  const DesignMeasurement coldRun = cold.synthesizeBaseline(8.0);
  ASSERT_TRUE(coldRun.success());

  // Vandalize every cached artifact; the warm flow must detect it, evict,
  // recompute and still match the cold run exactly.
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << "not an artifact";
    }
  }
  TuningFlow warm(smallConfig(dir));
  const DesignMeasurement warmRun = warm.synthesizeBaseline(8.0);
  EXPECT_GE(warm.cache()->stats().corrupt, 1u);
  expectBitIdentical(warmRun, coldRun);

  fs::remove_all(dir);
}

TEST(FlowCache, DifferentInputsUseDifferentKeys) {
  const fs::path dir = fs::temp_directory_path() / "sct_flow_keys_test";
  fs::remove_all(dir);

  TuningFlow first(smallConfig(dir));
  (void)first.statLibrary();
  const auto usageAfterFirst = first.cache()->diskUsage();

  // A different MC seed must miss the stat-stage entry and publish a new
  // one (the nominal characterization is seed-independent and hits).
  FlowConfig other = smallConfig(dir);
  other.mcSeed += 1;
  TuningFlow second(other);
  (void)second.statLibrary();
  EXPECT_GE(second.cache()->stats().misses, 1u);
  EXPECT_GT(second.cache()->diskUsage().first, usageAfterFirst.first);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace sct::core
