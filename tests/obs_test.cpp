// Observability subsystem (DESIGN.md §12): span nesting stays well-formed
// per thread, histograms bucket exactly, both exporters emit JSON that
// parses back, and — the load-bearing invariant — running a full flow with
// tracing and metrics on produces bit-identical numeric results to a run
// with observability off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace sct::obs {
namespace {

// ---- minimal JSON parser (enough to validate the exporters) --------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value;

  [[nodiscard]] bool isObject() const {
    return std::holds_alternative<JsonObject>(value);
  }
  [[nodiscard]] const JsonObject& object() const {
    return std::get<JsonObject>(value);
  }
  [[nodiscard]] const JsonArray& array() const {
    return std::get<JsonArray>(value);
  }
  [[nodiscard]] double number() const { return std::get<double>(value); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(value);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    skipSpace();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return JsonValue{parseString()};
      case 't':
        parseLiteral("true");
        return JsonValue{true};
      case 'f':
        parseLiteral("false");
        return JsonValue{false};
      case 'n':
        parseLiteral("null");
        return JsonValue{nullptr};
      default:
        return JsonValue{parseNumber()};
    }
  }

  void parseLiteral(std::string_view word) {
    if (std::string_view(text_).substr(pos_, word.size()) != word) {
      fail("bad literal");
    }
    pos_ += word.size();
  }

  JsonValue parseObject() {
    expect('{');
    JsonObject out;
    if (consume('}')) return JsonValue{std::move(out)};
    do {
      skipSpace();
      std::string key = parseString();
      expect(':');
      out.emplace(std::move(key), parseValue());
    } while (consume(','));
    expect('}');
    return JsonValue{std::move(out)};
  }

  JsonValue parseArray() {
    expect('[');
    JsonArray out;
    if (consume(']')) return JsonValue{std::move(out)};
    do {
      out.push_back(parseValue());
    } while (consume(','));
    expect(']');
    return JsonValue{std::move(out)};
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            pos_ += 4;   // validated as hex-shaped, decoded as '?'
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// Restores the global enable flags on scope exit so tests cannot leak
/// tracing/metrics state into each other.
struct ObsGuard {
  ObsGuard(bool tracing, bool metrics) {
    setTracingEnabled(tracing);
    setMetricsEnabled(metrics);
  }
  ~ObsGuard() {
    setTracingEnabled(false);
    setMetricsEnabled(false);
  }
};

// ---- span tracer ---------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  const ObsGuard guard(/*tracing=*/false, /*metrics=*/false);
  clearTrace();
  {
    SCT_TRACE_SPAN("obs_test.disabled");
  }
  const TraceSnapshot snapshot = traceSnapshot();
  for (const TraceEvent& e : snapshot.events) {
    EXPECT_STRNE(e.name, "obs_test.disabled");
  }
}

TEST(Trace, NestedSpansCarryDepthAndContainment) {
  const ObsGuard guard(/*tracing=*/true, /*metrics=*/false);
  clearTrace();
  {
    SCT_TRACE_SPAN("obs_test.outer");
    { SCT_TRACE_SPAN("obs_test.inner_a"); }
    { SCT_TRACE_SPAN("obs_test.inner_b"); }
  }
  const TraceSnapshot snapshot = traceSnapshot();

  const TraceEvent* outer = nullptr;
  const TraceEvent* innerA = nullptr;
  const TraceEvent* innerB = nullptr;
  for (const TraceEvent& e : snapshot.events) {
    if (std::string_view(e.name) == "obs_test.outer") outer = &e;
    if (std::string_view(e.name) == "obs_test.inner_a") innerA = &e;
    if (std::string_view(e.name) == "obs_test.inner_b") innerB = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(innerA, nullptr);
  ASSERT_NE(innerB, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(innerA->depth, 1u);
  EXPECT_EQ(innerB->depth, 1u);
  EXPECT_EQ(outer->tid, innerA->tid);
  // Children are contained in the parent interval and do not overlap.
  EXPECT_GE(innerA->startNs, outer->startNs);
  EXPECT_LE(innerA->startNs + innerA->durNs, outer->startNs + outer->durNs);
  EXPECT_GE(innerB->startNs, innerA->startNs + innerA->durNs);
  EXPECT_LE(innerB->startNs + innerB->durNs, outer->startNs + outer->durNs);
}

/// Laminar-family check over a thread's spans: walking events sorted by
/// (startNs, depth) with a stack, every span must nest strictly inside its
/// enclosing span and carry depth == enclosing depth + 1.
void expectWellFormedPerThread(const TraceSnapshot& snapshot) {
  std::map<std::uint32_t, std::vector<const TraceEvent*>> byThread;
  for (const TraceEvent& e : snapshot.events) {
    byThread[e.tid].push_back(&e);
  }
  for (const auto& [tid, events] : byThread) {
    std::vector<const TraceEvent*> stack;
    for (const TraceEvent* e : events) {
      while (!stack.empty() &&
             e->startNs >= stack.back()->startNs + stack.back()->durNs) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(e->startNs + e->durNs,
                  stack.back()->startNs + stack.back()->durNs)
            << "span '" << e->name << "' escapes its parent on tid " << tid;
        EXPECT_EQ(e->depth, stack.back()->depth + 1)
            << "span '" << e->name << "' has inconsistent depth on tid "
            << tid;
      } else {
        EXPECT_EQ(e->depth, 0u)
            << "top-level span '" << e->name << "' has nonzero depth";
      }
      stack.push_back(e);
    }
  }
}

TEST(Trace, ParallelSpansAreWellFormedOnEveryThread) {
  const ObsGuard guard(/*tracing=*/true, /*metrics=*/false);
  const std::size_t previous = parallel::threadCount();
  parallel::setThreadCount(4);
  clearTrace();
  std::vector<int> out(256, 0);
  parallel::parallelFor(
      out.size(),
      [&](std::size_t i) {
        SCT_TRACE_SPAN("obs_test.work");
        { SCT_TRACE_SPAN("obs_test.work.nested"); }
        out[i] = static_cast<int>(i);
      },
      /*grain=*/8);
  const TraceSnapshot snapshot = traceSnapshot();
  parallel::setThreadCount(previous);

  std::size_t workSpans = 0;
  for (const TraceEvent& e : snapshot.events) {
    if (std::string_view(e.name) == "obs_test.work") ++workSpans;
  }
  EXPECT_EQ(workSpans, out.size());
  expectWellFormedPerThread(snapshot);
}

TEST(Trace, RingOverflowCountsDroppedSpans) {
  const ObsGuard guard(/*tracing=*/true, /*metrics=*/false);
  clearTrace();
  const std::size_t total = kTraceRingCapacity + 1024;
  for (std::size_t i = 0; i < total; ++i) {
    SCT_TRACE_SPAN("obs_test.spin");
  }
  const TraceSnapshot snapshot = traceSnapshot();
  EXPECT_GE(snapshot.dropped, total - kTraceRingCapacity);
  std::size_t retained = 0;
  for (const TraceEvent& e : snapshot.events) {
    if (std::string_view(e.name) == "obs_test.spin") ++retained;
  }
  EXPECT_LE(retained, kTraceRingCapacity);
  EXPECT_GE(retained, kTraceRingCapacity / 2);  // ring actually filled
}

TEST(Trace, ChromeTraceExportParsesBackWithRequiredFields) {
  const ObsGuard guard(/*tracing=*/true, /*metrics=*/false);
  clearTrace();
  {
    SCT_TRACE_SPAN("obs_test.export \"quoted\\name\"");
    SCT_TRACE_SPAN("obs_test.export.child");
  }
  std::ostringstream out;
  writeChromeTrace(out, traceSnapshot());

  JsonParser parser(out.str());
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(doc.isObject());
  ASSERT_TRUE(doc.object().contains("traceEvents"));
  const JsonArray& events = doc.object().at("traceEvents").array();
  ASSERT_FALSE(events.empty());
  bool sawExportSpan = false;
  for (const JsonValue& event : events) {
    const JsonObject& fields = event.object();
    EXPECT_EQ(fields.at("ph").str(), "X");
    EXPECT_TRUE(fields.contains("name"));
    EXPECT_TRUE(fields.contains("ts"));
    EXPECT_TRUE(fields.contains("dur"));
    EXPECT_TRUE(fields.contains("pid"));
    EXPECT_TRUE(fields.contains("tid"));
    EXPECT_GE(fields.at("dur").number(), 0.0);
    if (fields.at("name").str().find("quoted") != std::string::npos) {
      sawExportSpan = true;
    }
  }
  EXPECT_TRUE(sawExportSpan) << "escaped span name did not round-trip";
}

// ---- metrics registry ----------------------------------------------------

TEST(Metrics, CounterGatesOnEnabledFlag) {
  Counter& counter =
      MetricsRegistry::global().counter("obs_test.gated_counter");
  counter.reset();
  {
    const ObsGuard guard(/*tracing=*/false, /*metrics=*/false);
    counter.add(7);
    EXPECT_EQ(counter.value(), 0u);
  }
  {
    const ObsGuard guard(/*tracing=*/false, /*metrics=*/true);
    counter.add(7);
    counter.inc();
    EXPECT_EQ(counter.value(), 8u);
  }
}

TEST(Metrics, HistogramBucketsExactly) {
  const ObsGuard guard(/*tracing=*/false, /*metrics=*/true);
  static constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& histogram =
      MetricsRegistry::global().histogram("obs_test.buckets", kBounds);
  histogram.reset();
  for (double x : {0.5, 1.0, 1.5, 3.0, 100.0}) histogram.observe(x);

  const std::vector<std::uint64_t> counts = histogram.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(counts[1], 1u);      // 1.5
  EXPECT_EQ(counts[2], 1u);      // 3.0
  EXPECT_EQ(counts[3], 1u);      // 100.0 overflows
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 106.0);
}

TEST(Metrics, KindConflictsThrow) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("obs_test.conflict");
  EXPECT_THROW(registry.gauge("obs_test.conflict"), std::logic_error);
  static constexpr double kBoundsA[] = {1.0, 2.0};
  static constexpr double kBoundsB[] = {1.0, 3.0};
  registry.histogram("obs_test.conflict_hist", kBoundsA);
  EXPECT_THROW(registry.histogram("obs_test.conflict_hist", kBoundsB),
               std::logic_error);
  registry.histogram("obs_test.conflict_hist", kBoundsA);  // same bounds: ok
}

TEST(Metrics, JsonExportParsesBackAndIsDeterministic) {
  const ObsGuard guard(/*tracing=*/false, /*metrics=*/true);
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("obs_test.json_counter");
  counter.reset();
  counter.add(42);
  registry.gauge("obs_test.json_gauge").set(2.5);
  static constexpr double kBounds[] = {1.0, 10.0};
  Histogram& histogram = registry.histogram("obs_test.json_hist", kBounds);
  histogram.reset();
  histogram.observe(0.5);
  histogram.observe(5.0);

  std::ostringstream first;
  writeMetricsJson(first, registry.snapshot());
  std::ostringstream second;
  writeMetricsJson(second, registry.snapshot());
  EXPECT_EQ(first.str(), second.str()) << "export is not deterministic";

  JsonParser parser(first.str());
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(doc.isObject());
  const JsonObject& counters = doc.object().at("counters").object();
  EXPECT_DOUBLE_EQ(counters.at("obs_test.json_counter").number(), 42.0);
  const JsonObject& gauges = doc.object().at("gauges").object();
  EXPECT_DOUBLE_EQ(gauges.at("obs_test.json_gauge").number(), 2.5);
  const JsonObject& hist =
      doc.object().at("histograms").object().at("obs_test.json_hist").object();
  const JsonArray& counts = hist.at("counts").array();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_DOUBLE_EQ(counts[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(counts[1].number(), 1.0);
  EXPECT_DOUBLE_EQ(counts[2].number(), 0.0);
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 5.5);
}

// ---- bit-identity through the full flow ----------------------------------

core::FlowConfig tinyFlowConfig() {
  core::FlowConfig config;
  config.characterization.slewAxis = {0.002, 0.05, 0.2, 0.6};
  config.characterization.loadFractions = {0.01, 0.1, 0.4, 1.0};
  config.mcLibraryCount = 6;
  config.mcu.registers = 8;
  config.mcu.readPorts = 2;
  config.mcu.bankedRegisters = 1;
  config.mcu.macUnits = 1;
  config.mcu.macWidth = 8;
  config.mcu.timers = 1;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 16;
  config.mcu.cacheTagEntries = 16;
  config.mcu.decodeOutputs = 64;
  config.mcu.interruptSources = 8;
  config.lintMode = core::LintMode::kOff;  // exercised by lint_test
  return config;
}

TEST(ObsBitIdentity, TracedFlowMatchesObsOffExactly) {
  const tuning::TuningConfig tc = tuning::TuningConfig::forMethod(
      tuning::TuningMethod::kSigmaCeiling, 0.02);

  setTracingEnabled(false);
  setMetricsEnabled(false);
  core::TuningFlow plain(tinyFlowConfig());
  const core::DesignMeasurement off = plain.synthesizeTuned(8.0, tc);

  core::DesignMeasurement on;
  {
    const ObsGuard guard(/*tracing=*/true, /*metrics=*/true);
    clearTrace();
    core::TuningFlow traced(tinyFlowConfig());
    on = traced.synthesizeTuned(8.0, tc);
    // The instrumented run actually recorded spans and metrics.
    EXPECT_FALSE(traceSnapshot().events.empty());
    const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
    EXPECT_GT(metrics.counterValue("sta.analyze.calls"), 0u);
  }

  // Exact numeric identity, field by field: observability may never change
  // any artifact.
  EXPECT_EQ(on.synthesis.timingMet, off.synthesis.timingMet);
  EXPECT_EQ(on.synthesis.legal, off.synthesis.legal);
  EXPECT_EQ(on.synthesis.worstSlack, off.synthesis.worstSlack);
  EXPECT_EQ(on.synthesis.tns, off.synthesis.tns);
  EXPECT_EQ(on.synthesis.area, off.synthesis.area);
  EXPECT_EQ(on.synthesis.design.gateCount(), off.synthesis.design.gateCount());
  EXPECT_EQ(on.design.sigma, off.design.sigma);
  ASSERT_EQ(on.paths.size(), off.paths.size());
  for (std::size_t i = 0; i < on.paths.size(); ++i) {
    EXPECT_EQ(on.paths[i].endpoint, off.paths[i].endpoint);
    EXPECT_EQ(on.paths[i].depth, off.paths[i].depth);
    EXPECT_EQ(on.paths[i].mean, off.paths[i].mean);
    EXPECT_EQ(on.paths[i].sigma, off.paths[i].sigma);
    EXPECT_EQ(on.paths[i].arrival, off.paths[i].arrival);
    EXPECT_EQ(on.paths[i].slack, off.paths[i].slack);
  }
}

}  // namespace
}  // namespace sct::obs
