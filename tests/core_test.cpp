// Integration tests of the end-to-end tuning flow (paper sections II-VII)
// on a scaled-down microcontroller: baseline vs tuned synthesis, sigma
// reduction, sweep bookkeeping and measurement consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "core/env.hpp"
#include "core/flow.hpp"

namespace sct::core {
namespace {

/// Small-but-real flow config: reduced MCU and characterization grid so the
/// whole integration suite stays fast.
FlowConfig smallConfig() {
  FlowConfig config;
  config.characterization.slewAxis = {0.002, 0.05, 0.2, 0.6};
  config.characterization.loadFractions = {0.01, 0.1, 0.4, 1.0};
  config.mcLibraryCount = 25;
  config.mcu.registers = 8;
  config.mcu.readPorts = 2;
  config.mcu.bankedRegisters = 1;
  config.mcu.macUnits = 1;
  config.mcu.macWidth = 8;
  config.mcu.timers = 1;
  config.mcu.dmaChannels = 1;
  config.mcu.gpioWidth = 16;
  config.mcu.cacheTagEntries = 16;
  config.mcu.decodeOutputs = 64;
  config.mcu.interruptSources = 8;
  return config;
}

class FlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { flow_ = new TuningFlow(smallConfig()); }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static TuningFlow* flow_;
};

TuningFlow* FlowTest::flow_ = nullptr;

TEST_F(FlowTest, ArtifactsAreLazyAndStable) {
  const liberty::Library& lib1 = flow_->nominalLibrary();
  const liberty::Library& lib2 = flow_->nominalLibrary();
  EXPECT_EQ(&lib1, &lib2);
  EXPECT_EQ(lib1.size(), 304u);
  const statlib::StatLibrary& stat = flow_->statLibrary();
  EXPECT_EQ(stat.size(), 304u);
  EXPECT_EQ(stat.sampleCount(), 25u);
  const netlist::Design& subject = flow_->subject();
  EXPECT_GT(subject.gateCount(), 1000u);
  EXPECT_EQ(subject.validate(), "");
}

TEST_F(FlowTest, BaselineMeasurementIsConsistent) {
  const DesignMeasurement baseline = flow_->synthesizeBaseline(8.0);
  ASSERT_TRUE(baseline.success());
  EXPECT_GT(baseline.area(), 0.0);
  EXPECT_GT(baseline.sigma(), 0.0);
  EXPECT_EQ(baseline.clockPeriod, 8.0);
  EXPECT_FALSE(baseline.paths.empty());
  EXPECT_EQ(baseline.design.paths, baseline.paths.size());

  // Eq. (11) consistency between the records and the aggregate.
  double varSum = 0.0;
  for (const PathRecord& record : baseline.paths) {
    varSum += record.sigma * record.sigma;
    EXPECT_GE(record.depth, 0u);
    EXPECT_GE(record.mean, 0.0);
  }
  EXPECT_NEAR(baseline.design.sigma, std::sqrt(varSum),
              1e-9 * baseline.design.sigma);
}

TEST_F(FlowTest, PathPopulationShape) {
  const DesignMeasurement baseline = flow_->synthesizeBaseline(8.0);
  std::size_t deepest = 0;
  std::size_t shortCount = 0;
  for (const PathRecord& record : baseline.paths) {
    deepest = std::max(deepest, record.depth);
    if (record.depth <= 4) ++shortCount;
  }
  // Even the reduced MCU keeps deep arithmetic paths and a large short-path
  // population (the paper's "about one third" observation).
  EXPECT_GT(deepest, 20u);
  EXPECT_GT(shortCount, baseline.paths.size() / 5);
}

TEST_F(FlowTest, SigmaCeilingTuningReducesSigma) {
  const DesignMeasurement baseline = flow_->synthesizeBaseline(8.0);
  const DesignMeasurement tuned = flow_->synthesizeTuned(
      8.0,
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.01));
  ASSERT_TRUE(baseline.success());
  ASSERT_TRUE(tuned.success());
  EXPECT_LT(tuned.sigma(), baseline.sigma());
}

TEST_F(FlowTest, TuneProducesConstraints) {
  const tuning::LibraryConstraints constraints = flow_->tune(
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02));
  EXPECT_GT(constraints.size(), 250u);
}

TEST_F(FlowTest, TracePathsMatchesMeasurementPaths) {
  const DesignMeasurement baseline = flow_->synthesizeBaseline(8.0);
  const auto paths = flow_->tracePaths(baseline.synthesis, 8.0);
  EXPECT_EQ(paths.size(), baseline.paths.size());
}

TEST_F(FlowTest, SweepMethodComputesRelativeMetrics) {
  const DesignMeasurement baseline = flow_->synthesizeBaseline(8.0);
  const auto points = flow_->sweepMethod(tuning::TuningMethod::kSigmaCeiling,
                                         8.0, baseline);
  ASSERT_EQ(points.size(), 4u);  // Table 2 ceiling sweep
  for (const auto& point : points) {
    EXPECT_EQ(point.method, tuning::TuningMethod::kSigmaCeiling);
    if (point.measurement.success()) {
      const double expected =
          100.0 * (baseline.sigma() - point.measurement.sigma()) /
          baseline.sigma();
      EXPECT_NEAR(point.sigmaReductionPct, expected, 1e-9);
    }
  }
  // The strictest ceiling must restrict at least as much as the loosest.
  EXPECT_GE(points.back().sigmaReductionPct, points.front().sigmaReductionPct);
}

TEST_F(FlowTest, BestUnderAreaCapRespectsCap) {
  std::vector<TuningFlow::SweepPoint> points(3);
  points[0].sigmaReductionPct = 50.0;
  points[0].areaIncreasePct = 20.0;  // above cap
  points[0].measurement.synthesis.timingMet = true;
  points[0].measurement.synthesis.legal = true;
  points[1].sigmaReductionPct = 30.0;
  points[1].areaIncreasePct = 5.0;
  points[1].measurement.synthesis.timingMet = true;
  points[1].measurement.synthesis.legal = true;
  points[2].sigmaReductionPct = 40.0;
  points[2].areaIncreasePct = 8.0;
  points[2].measurement.synthesis.timingMet = false;  // failed run
  points[2].measurement.synthesis.legal = true;

  const auto* best = TuningFlow::bestUnderAreaCap(points, 10.0);
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->sigmaReductionPct, 30.0);
  EXPECT_EQ(TuningFlow::bestUnderAreaCap(points, 1.0), nullptr);
}

TEST_F(FlowTest, MeasurementIsDeterministic) {
  const DesignMeasurement a = flow_->synthesizeBaseline(6.0);
  const DesignMeasurement b = flow_->synthesizeBaseline(6.0);
  EXPECT_EQ(a.sigma(), b.sigma());
  EXPECT_EQ(a.area(), b.area());
  EXPECT_EQ(a.paths.size(), b.paths.size());
}

// ---- shared environment parsing (env.hpp) --------------------------------

TEST(EnvParse, ParseSizeAcceptsPlainDecimal) {
  EXPECT_EQ(env::parseSize("test", "0", 9), 0u);
  EXPECT_EQ(env::parseSize("test", "12", 9), 12u);
  EXPECT_EQ(env::parseSize("test", "4096", 9, 4096), 4096u);
}

TEST(EnvParse, ParseSizeWarnsAndFallsBackOnGarbage) {
  EXPECT_EQ(env::parseSize("test", "", 9), 9u);
  EXPECT_EQ(env::parseSize("test", "12cores", 9), 9u);
  EXPECT_EQ(env::parseSize("test", "+4", 9), 9u);
  EXPECT_EQ(env::parseSize("test", " 8", 9), 9u);
  EXPECT_EQ(env::parseSize("test", "4.5", 9), 9u);
  EXPECT_EQ(env::parseSize("test", "0x10", 9), 9u);
  EXPECT_EQ(env::parseSize("test", "-1", 9), 9u);
}

TEST(EnvParse, ParseSizeRejectsOverMaxAndOverflow) {
  EXPECT_EQ(env::parseSize("test", "4097", 9, 4096), 9u);
  EXPECT_EQ(env::parseSize("test", "99999999999999999999999999", 9), 9u);
}

TEST(EnvParse, ParseFlagRecognizesCommonSpellings) {
  for (const char* on : {"1", "true", "on", "yes"}) {
    EXPECT_TRUE(env::parseFlag("test", on, false)) << on;
  }
  for (const char* off : {"0", "false", "off", "no"}) {
    EXPECT_FALSE(env::parseFlag("test", off, true)) << off;
  }
}

TEST(EnvParse, ParseFlagWarnsAndFallsBackOnGarbage) {
  EXPECT_TRUE(env::parseFlag("test", "maybe", true));
  EXPECT_FALSE(env::parseFlag("test", "maybe", false));
  EXPECT_TRUE(env::parseFlag("test", "", true));
}

}  // namespace
}  // namespace sct::core
