// Unit tests for the shared Liberty-dialect lexer and for the wire-load
// model added to the STA boundary conditions.

#include <gtest/gtest.h>

#include <sstream>

#include "liberty/text_format.hpp"
#include "sta/sta.hpp"

namespace sct {
namespace {

using liberty::text::Lexer;
using liberty::text::Line;

std::vector<Line> lexAll(const std::string& text) {
  std::istringstream in(text);
  Lexer lexer(in);
  std::vector<Line> lines;
  while (auto line = lexer.next()) lines.push_back(*line);
  return lines;
}

TEST(Lexer, KeyValueLine) {
  const auto lines = lexAll("voltage : 1.1 ;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].head, "voltage");
  ASSERT_EQ(lines[0].values.size(), 1u);
  EXPECT_EQ(lines[0].values[0], "1.1");
  EXPECT_FALSE(lines[0].opensBlock);
}

TEST(Lexer, MultiValueLine) {
  const auto lines = lexAll("index_1 : 0.1 0.2 0.3 ;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].values.size(), 3u);
}

TEST(Lexer, BlockWithArgument) {
  const auto lines = lexAll("cell (IV_1) {\n}\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].head, "cell");
  EXPECT_EQ(lines[0].arg, "IV_1");
  EXPECT_TRUE(lines[0].opensBlock);
  EXPECT_TRUE(lines[1].closesBlock);
}

TEST(Lexer, ArrowArgumentPreserved) {
  const auto lines = lexAll("timing (A -> Z) {\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].arg, "A -> Z");
}

TEST(Lexer, CommentsAndBlankLinesSkipped) {
  const auto lines = lexAll("// header\n\n  // indented comment\nx : 1 ;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].head, "x");
  EXPECT_EQ(lines[0].number, 4u);  // line numbers track the raw file
}

TEST(Lexer, TrailingCommentStripped) {
  const auto lines = lexAll("x : 2 ; // note\n");
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_EQ(lines[0].values.size(), 1u);
  EXPECT_EQ(lines[0].values[0], "2");
}

TEST(Lexer, UnterminatedParenThrows) {
  std::istringstream in("cell (IV_1 {\n");
  Lexer lexer(in);
  EXPECT_THROW((void)lexer.next(), liberty::ParseError);
}

TEST(Lexer, HelpersValidateNumbers) {
  const auto lines = lexAll("x : 1.5 ;\ny : a b ;\n");
  EXPECT_DOUBLE_EQ(liberty::text::singleValue(lines[0]), 1.5);
  EXPECT_THROW((void)liberty::text::singleValue(lines[1]),
               liberty::ParseError);
  EXPECT_THROW((void)liberty::text::axisValues(lines[1]),
               liberty::ParseError);
}

// -------------------------------------------------- shared float helpers ----

TEST(FloatHelpers, ParseDoubleAcceptsWholeTokensOnly) {
  using liberty::text::parseDouble;
  EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parseDouble("-0.25e-3").value(), -0.25e-3);
  EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
  EXPECT_FALSE(parseDouble("").has_value());
  EXPECT_FALSE(parseDouble("1.5x").has_value());
  EXPECT_FALSE(parseDouble(" 1.5").has_value());
  EXPECT_FALSE(parseDouble("1.5 ").has_value());
  EXPECT_FALSE(parseDouble("abc").has_value());
}

TEST(FloatHelpers, CanonicalPrecisionRoundTripsExactly) {
  // The shared precision is max_digits10: any double printed at it must
  // parse back bit-identically (the property all three serializers rely on).
  for (double v : {1.0 / 3.0, 0.1, 6.02214076e23, 4.9e-324, -123.456789}) {
    std::ostringstream out;
    liberty::text::canonicalPrecision(out) << v;
    const auto back = liberty::text::parseDouble(out.str());
    ASSERT_TRUE(back.has_value()) << out.str();
    EXPECT_EQ(*back, v) << out.str();
  }
  std::ostringstream out;
  liberty::text::canonicalPrecision(out);
  EXPECT_EQ(out.precision(), liberty::text::kDoublePrecision);
}

// ------------------------------------------------------ wire-load model ----

TEST(WireLoadModel, ZeroFanoutIsZero) {
  EXPECT_DOUBLE_EQ(sta::WireLoadModel::medium().netCap(0), 0.0);
}

TEST(WireLoadModel, DefaultMatchesLegacyPerSinkModel) {
  const sta::WireLoadModel def{};
  EXPECT_DOUBLE_EQ(def.netCap(1), 0.0015);
  EXPECT_DOUBLE_EQ(def.netCap(4), 0.006);
}

TEST(WireLoadModel, PresetsAreOrdered) {
  for (std::size_t fanout : {1u, 4u, 16u}) {
    EXPECT_LT(sta::WireLoadModel::small().netCap(fanout),
              sta::WireLoadModel::medium().netCap(fanout));
    EXPECT_LT(sta::WireLoadModel::medium().netCap(fanout),
              sta::WireLoadModel::large().netCap(fanout));
  }
}

TEST(WireLoadModel, QuadraticTermGrowsSuperlinearly) {
  const sta::WireLoadModel large = sta::WireLoadModel::large();
  const double perSink4 = large.netCap(4) / 4.0;
  const double perSink16 = large.netCap(16) / 16.0;
  EXPECT_GT(perSink16, perSink4);
}

}  // namespace
}  // namespace sct
