// sctuned daemon tests (DESIGN.md §14): protocol framing (including the
// malformed-input fuzz cases), request execution, response caching,
// single-flight coalescing, admission control, deadlines and graceful
// drain. Servers run in-process on a Unix socket under the test temp dir.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/flow_job.hpp"
#include "evo/tuner.hpp"
#include "obs/metrics.hpp"
#include "postsi/scenario.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace sct {
namespace {

namespace fs = std::filesystem;
using server::Client;
using server::MessageType;
using server::Response;
using server::Status;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* stem)
      : path(fs::temp_directory_path() / stem) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// In-process daemon bound to a socket under `dir`.
struct TestServer {
  explicit TestServer(const TempDir& dir, std::size_t sessionThreads = 4,
                      std::size_t maxQueue = 16, bool tcp = false) {
    server::ServerConfig config;
    config.socketPath = (dir.path / "sctuned.sock").string();
    config.tcpEnable = tcp;
    config.sessionThreads = sessionThreads;
    config.maxQueuedSessions = maxQueue;
    config.service.cacheDir = (dir.path / "cache").string();
    config.service.memCacheBytes = 64ull << 20;
    instance = std::make_unique<server::Server>(config);
    instance->start();
    socketPath = config.socketPath;
  }
  ~TestServer() { instance->stop(); }

  [[nodiscard]] Client connect() const {
    return Client::connectUnix(socketPath);
  }

  std::unique_ptr<server::Server> instance;
  std::string socketPath;
};

server::FlowRequest smallFlow(double period = 8.0) {
  server::FlowRequest request;
  request.job.profile = "small";
  request.job.mcCount = 4;
  request.job.period = period;
  request.job.lintMode = "off";
  return request;
}

// ---- basics --------------------------------------------------------------

TEST(ServerTest, PingRoundTrip) {
  TempDir dir("sct_server_ping");
  TestServer srv(dir);
  Client client = srv.connect();
  server::PingRequest request;
  request.echo = "hello";
  const Response response = client.ping(request);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.summary, "pong");
  EXPECT_EQ(response.body, "hello");
}

TEST(ServerTest, TcpLoopbackRoundTrip) {
  TempDir dir("sct_server_tcp");
  TestServer srv(dir, 4, 16, /*tcp=*/true);
  ASSERT_NE(srv.instance->tcpPort(), 0);
  Client client = Client::connectTcp(srv.instance->tcpPort());
  server::PingRequest request;
  request.echo = "over tcp";
  const Response response = client.ping(request);
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.body, "over tcp");
}

TEST(ServerTest, HealthReturnsMetricsJson) {
  TempDir dir("sct_server_health");
  TestServer srv(dir);
  Client client = srv.connect();
  const Response response = client.health();
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_NE(response.body.find("sct-metrics-v1"), std::string::npos);
}

TEST(ServerTest, PersistentConnectionHandlesManyRequests) {
  TempDir dir("sct_server_many");
  TestServer srv(dir);
  Client client = srv.connect();
  for (int i = 0; i < 20; ++i) {
    server::PingRequest request;
    request.echo = std::to_string(i);
    const Response response = client.ping(request);
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.body, std::to_string(i));
  }
}

// ---- flow execution and byte-identity ------------------------------------

TEST(ServerTest, FlowMatchesLocalRunByteForByte) {
  TempDir dir("sct_server_flow");
  TestServer srv(dir);
  const server::FlowRequest request = smallFlow();

  core::TuningFlow local(core::makeFlowConfig(request.job));
  const core::FlowJobResult expected = core::runFlowJob(local, request.job);

  Client client = srv.connect();
  const Response first = client.flow(request);
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(first.summary, expected.summary);
  EXPECT_EQ(first.body, expected.report);

  // Second call answers from the response cache — still byte-identical.
  const Response second = client.flow(request);
  EXPECT_EQ(second.body, expected.report);
}

TEST(ServerTest, ConcurrentIdenticalFlowsComputeOnce) {
  TempDir dir("sct_server_singleflight");
  TestServer srv(dir, /*sessionThreads=*/8);
  obs::setMetricsEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t leadersBefore =
      registry.snapshot().counterValue("server.singleflight.leader");

  constexpr int kClients = 8;
  const server::FlowRequest request = smallFlow(7.5);
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client = srv.connect();
      const Response response = client.flow(request);
      ASSERT_EQ(response.status, Status::kOk);
      bodies[static_cast<std::size_t>(i)] = response.body;
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(bodies[static_cast<std::size_t>(i)], bodies[0])
        << "response " << i << " differs";
  }
  EXPECT_FALSE(bodies[0].empty());

  // Exactly one session computed this request; everyone else either
  // coalesced on the single-flight key or hit the response cache.
  const std::uint64_t leadersAfter =
      registry.snapshot().counterValue("server.singleflight.leader");
  EXPECT_EQ(leadersAfter - leadersBefore, 1u);
  obs::setMetricsEnabled(false);
}

// ---- scenario matrix over the wire ---------------------------------------

server::ScenarioRequest smallScenario() {
  server::ScenarioRequest request;
  request.job = smallFlow().job;
  request.job.period = 0.0;  // scenario jobs carry periods explicitly
  request.periods = {8.0};
  request.scenarios = "tuning,clock";
  request.mcTrials = 16;
  return request;
}

TEST(ServerTest, ScenarioMatchesLocalRunByteForByte) {
  TempDir dir("sct_server_scenario");
  TestServer srv(dir);
  const server::ScenarioRequest request = smallScenario();

  postsi::ScenarioJob job;
  job.flow = request.job;
  job.periods = request.periods;
  job.scenarios = request.scenarios;
  job.element = clocktree::TuningElementSpec{request.rangeMin,
                                             request.rangeMax, request.step,
                                             request.areaPerElement};
  job.mcTrials = request.mcTrials;
  job.mcSeed = request.mcSeed;
  core::TuningFlow local(core::makeFlowConfig(job.flow));
  const postsi::ScenarioRunResult expected =
      postsi::runScenarioJob(local, job);

  Client client = srv.connect();
  const Response first = client.scenario(request);
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(first.summary, expected.summary);
  EXPECT_EQ(first.body, expected.report);

  // Second call answers from the response cache — still byte-identical —
  // and the JSON rendering differs only in format, not in content source.
  const Response second = client.scenario(request);
  EXPECT_EQ(second.body, expected.report);

  server::ScenarioRequest asJson = request;
  asJson.json = true;
  const Response jsonResponse = client.scenario(asJson);
  EXPECT_EQ(jsonResponse.status, Status::kOk);
  EXPECT_EQ(jsonResponse.body, expected.json);
}

// ---- evolve over the wire ------------------------------------------------

server::EvolveRequest smallEvolve() {
  server::EvolveRequest request;
  request.job = smallFlow(4.0).job;
  request.params.population = 4;
  request.params.generations = 1;
  return request;
}

TEST(ServerTest, EvolveMatchesLocalRunByteForByte) {
  TempDir dir("sct_server_evolve");
  TestServer srv(dir);
  const server::EvolveRequest request = smallEvolve();

  evo::EvolveJob job;
  job.flow = request.job;
  job.params = request.params;
  core::TuningFlow local(core::makeFlowConfig(job.flow));
  const evo::EvolveRunResult expected = evo::runEvolveJob(local, job);

  Client client = srv.connect();
  const Response first = client.evolve(request);
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(first.summary, expected.summary);
  EXPECT_EQ(first.body, expected.report);

  // Second call answers from the response cache — still byte-identical —
  // and the JSON rendering swaps the body format, not the content source.
  const Response second = client.evolve(request);
  EXPECT_EQ(second.body, expected.report);

  server::EvolveRequest asJson = request;
  asJson.json = true;
  const Response jsonResponse = client.evolve(asJson);
  EXPECT_EQ(jsonResponse.status, Status::kOk);
  EXPECT_EQ(jsonResponse.body, expected.json);
}

TEST(ServerTest, EvolveRejectsBadJobsWithError) {
  TempDir dir("sct_server_evolve_bad");
  TestServer srv(dir);
  Client client = srv.connect();
  server::EvolveRequest request = smallEvolve();
  request.params.objectives = "sigma,karma";
  const Response response = client.evolve(request);
  EXPECT_EQ(response.status, Status::kError);
  // The connection survives the failed request.
  server::PingRequest ping;
  ping.echo = "still here";
  EXPECT_EQ(client.ping(ping).body, "still here");
}

TEST(ServerTest, ScenarioRejectsBadJobsWithError) {
  TempDir dir("sct_server_scenario_bad");
  TestServer srv(dir);
  Client client = srv.connect();
  server::ScenarioRequest request = smallScenario();
  request.scenarios = "tuning,warp";
  const Response response = client.scenario(request);
  EXPECT_EQ(response.status, Status::kError);
  // The connection survives the failed request.
  EXPECT_EQ(client.health().status, Status::kOk);
}

// ---- protocol fuzzing: the daemon must survive anything ------------------

/// Sends raw bytes on a fresh connection, returns true when the server
/// answered with *some* frame before closing (false = it just closed).
bool sendRaw(const TestServer& srv, const void* data, std::size_t size) {
  Client client = srv.connect();
  [[maybe_unused]] const ssize_t sent = ::send(client.fd(), data, size, 0);
  ::shutdown(client.fd(), SHUT_WR);
  char buffer[256];
  const ssize_t got = ::recv(client.fd(), buffer, sizeof buffer, 0);
  return got > 0;
}

TEST(ServerTest, SurvivesGarbageMagic) {
  TempDir dir("sct_server_fuzz_magic");
  TestServer srv(dir);
  const char garbage[] = "GETX / HTTP/1.1\r\n\r\n";
  sendRaw(srv, garbage, sizeof garbage);
  // The daemon dropped that session but must still serve new ones.
  Client client = srv.connect();
  EXPECT_EQ(client.health().status, Status::kOk);
}

TEST(ServerTest, SurvivesTruncatedHeader) {
  TempDir dir("sct_server_fuzz_trunc");
  TestServer srv(dir);
  const char partial[] = {'S', 'C', 'T', 'P', 1};
  sendRaw(srv, partial, sizeof partial);
  Client client = srv.connect();
  EXPECT_EQ(client.health().status, Status::kOk);
}

TEST(ServerTest, RejectsOversizedPayloadDeclaration) {
  TempDir dir("sct_server_fuzz_size");
  TestServer srv(dir);
  std::byte header[16];
  std::memcpy(header, "SCTP", 4);
  const std::uint32_t type =
      static_cast<std::uint32_t>(MessageType::kPingRequest);
  std::memcpy(header + 4, &type, 4);
  const std::uint64_t huge = server::kMaxPayloadBytes + 1;
  std::memcpy(header + 8, &huge, 8);
  // The server answers one kError frame (it cannot trust the stream past
  // the bad header) and drops the session.
  EXPECT_TRUE(sendRaw(srv, header, sizeof header));
  Client client = srv.connect();
  EXPECT_EQ(client.health().status, Status::kOk);
}

TEST(ServerTest, SurvivesMidPayloadDisconnect) {
  TempDir dir("sct_server_fuzz_disc");
  TestServer srv(dir);
  std::byte frame[24];
  std::memcpy(frame, "SCTP", 4);
  const std::uint32_t type =
      static_cast<std::uint32_t>(MessageType::kPingRequest);
  std::memcpy(frame + 4, &type, 4);
  const std::uint64_t claimed = 1000;  // we send only 8 payload bytes
  std::memcpy(frame + 8, &claimed, 8);
  std::memset(frame + 16, 0xAB, 8);
  sendRaw(srv, frame, sizeof frame);
  Client client = srv.connect();
  EXPECT_EQ(client.health().status, Status::kOk);
}

TEST(ServerTest, GarbagePayloadAnswersError) {
  TempDir dir("sct_server_fuzz_payload");
  TestServer srv(dir);
  Client client = srv.connect();
  std::vector<std::byte> junk(64, std::byte{0x5A});
  const Response response = client.call(MessageType::kFlowRequest, junk);
  EXPECT_EQ(response.status, Status::kError);
  // Same connection keeps working: framing stayed intact.
  EXPECT_EQ(client.health().status, Status::kOk);
}

TEST(ServerTest, UnknownMessageTypeAnswersError) {
  TempDir dir("sct_server_fuzz_type");
  TestServer srv(dir);
  std::byte header[16];
  std::memcpy(header, "SCTP", 4);
  const std::uint32_t type = 9999;
  std::memcpy(header + 4, &type, 4);
  const std::uint64_t size = 0;
  std::memcpy(header + 8, &size, 8);
  EXPECT_TRUE(sendRaw(srv, header, sizeof header));
  Client client = srv.connect();
  EXPECT_EQ(client.health().status, Status::kOk);
}

// ---- admission control, deadlines, shutdown ------------------------------

TEST(ServerTest, RejectsBeyondSessionBoundWithBusy) {
  TempDir dir("sct_server_busy");
  TestServer srv(dir, /*sessionThreads=*/1, /*maxQueue=*/0);

  // Occupy the single session slot with a sleeping ping.
  std::thread occupant([&] {
    Client client = srv.connect();
    server::PingRequest request;
    request.sleepMillis = 400;
    const Response response = client.ping(request);
    EXPECT_EQ(response.status, Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The next connection is rejected at the accept gate, quickly.
  Client reject = srv.connect();
  server::PingRequest request;
  const auto start = std::chrono::steady_clock::now();
  const Response response = reject.ping(request);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(response.status, Status::kBusy);
  EXPECT_LT(elapsed, std::chrono::milliseconds(300))
      << "busy rejection must not wait for the running session";
  EXPECT_GE(srv.instance->busyRejects(), 1u);
  occupant.join();
}

TEST(ServerTest, ExpiredDeadlineAnswersTimeout) {
  TempDir dir("sct_server_deadline");
  TestServer srv(dir, /*sessionThreads=*/1, /*maxQueue=*/4);

  // Fill the single executor so the probe request waits in the queue
  // longer than its deadline.
  std::thread occupant([&] {
    Client client = srv.connect();
    server::PingRequest request;
    request.sleepMillis = 300;
    const Response response = client.ping(request);
    EXPECT_EQ(response.status, Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client = srv.connect();
  server::PingRequest request;
  request.deadlineMillis = 50;  // expires while queued behind the occupant
  const Response response = client.ping(request);
  EXPECT_EQ(response.status, Status::kTimeout);
  occupant.join();
}

TEST(ServerTest, GracefulStopDrainsInFlightRequests) {
  TempDir dir("sct_server_drain");
  TestServer srv(dir, /*sessionThreads=*/2);

  std::atomic<bool> answered{false};
  std::thread inflight([&] {
    Client client = srv.connect();
    server::PingRequest request;
    request.sleepMillis = 300;
    request.echo = "drain me";
    const Response response = client.ping(request);
    EXPECT_EQ(response.status, Status::kOk);
    EXPECT_EQ(response.body, "drain me");
    answered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  srv.instance->stop();  // must block until the sleeping ping answered
  EXPECT_TRUE(answered.load());
  inflight.join();
}

TEST(ServerTest, ShutdownRequestStopsTheServer) {
  TempDir dir("sct_server_shutdown");
  TestServer srv(dir);
  Client client = srv.connect();
  const Response response = client.shutdown();
  EXPECT_EQ(response.status, Status::kOk);
  // waitForStop returns promptly because the session requested the stop.
  srv.instance->waitForStop();
  EXPECT_FALSE(srv.instance->running());
}

// ---- codec round trips ---------------------------------------------------

TEST(ProtocolTest, FlowRequestRoundTrip) {
  server::FlowRequest request;
  request.job.profile = "small";
  request.job.period = 7.25;
  request.job.method = "sigma-ceiling";
  request.job.value = 0.02;
  request.job.mcCount = 12;
  request.job.mcSeed = 77;
  request.job.lintMode = "warn";
  request.deadlineMillis = 1500;
  const auto bytes = server::encodeFlowRequest(request);
  const server::FlowRequest back = server::decodeFlowRequest(bytes);
  EXPECT_EQ(back.job.profile, "small");
  EXPECT_EQ(back.job.period, 7.25);
  EXPECT_EQ(back.job.method, "sigma-ceiling");
  EXPECT_EQ(back.job.value, 0.02);
  EXPECT_EQ(back.job.mcCount, 12u);
  EXPECT_EQ(back.job.mcSeed, 77u);
  EXPECT_EQ(back.job.lintMode, "warn");
  EXPECT_EQ(back.deadlineMillis, 1500u);
}

TEST(ProtocolTest, ScenarioRequestRoundTrip) {
  server::ScenarioRequest request;
  request.job.profile = "small";
  request.job.method = "sigma-ceiling";
  request.job.value = 0.02;
  request.job.mcCount = 6;
  request.periods = {2.41, 2.5, 4.0, 10.0};
  request.scenarios = "tuning,clock";
  request.rangeMin = 0.05;
  request.rangeMax = 0.45;
  request.step = 0.1;
  request.areaPerElement = 3.5;
  request.mcTrials = 32;
  request.mcSeed = 99;
  request.json = true;
  request.deadlineMillis = 2500;
  const auto bytes = server::encodeScenarioRequest(request);
  const server::ScenarioRequest back = server::decodeScenarioRequest(bytes);
  EXPECT_EQ(back.job.profile, "small");
  EXPECT_EQ(back.job.method, "sigma-ceiling");
  EXPECT_EQ(back.job.mcCount, 6u);
  ASSERT_EQ(back.periods.size(), 4u);
  EXPECT_EQ(back.periods[0], 2.41);
  EXPECT_EQ(back.periods[3], 10.0);
  EXPECT_EQ(back.scenarios, "tuning,clock");
  EXPECT_EQ(back.rangeMin, 0.05);
  EXPECT_EQ(back.rangeMax, 0.45);
  EXPECT_EQ(back.step, 0.1);
  EXPECT_EQ(back.areaPerElement, 3.5);
  EXPECT_EQ(back.mcTrials, 32u);
  EXPECT_EQ(back.mcSeed, 99u);
  EXPECT_TRUE(back.json);
  EXPECT_EQ(back.deadlineMillis, 2500u);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response;
  response.status = Status::kTimeout;
  response.summary = "too late";
  response.body = std::string("line1\nline2\n\0embedded", 22);
  const auto bytes = server::encodeResponse(response);
  const Response back = server::decodeResponse(bytes);
  EXPECT_EQ(back.status, Status::kTimeout);
  EXPECT_EQ(back.summary, "too late");
  EXPECT_EQ(back.body, response.body);
}

TEST(ProtocolTest, DecodeRejectsWrongSection) {
  const auto bytes = server::encodeFlowRequest(server::FlowRequest{});
  EXPECT_THROW((void)server::decodeLintRequest(bytes), server::ProtocolError);
}

}  // namespace
}  // namespace sct
