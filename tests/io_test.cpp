// Tests for the serialization layers added around the core flow:
// statistical-library text format, tuned-constraint files (round trip +
// synthesis script export) and structural Verilog.

#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "netlist/builder.hpp"
#include "netlist/mcu.hpp"
#include "netlist/verilog_io.hpp"
#include "statlib/stat_io.hpp"
#include "synth/synthesis.hpp"
#include "test_helpers.hpp"
#include "tuning/constraints_io.hpp"

namespace sct {
namespace {

class IoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chr_ = new charlib::Characterizer(test::makeSmallCharacterizer());
    lib_ = new liberty::Library(
        chr_->characterizeNominal(charlib::ProcessCorner::typical()));
    const auto mcLibs =
        chr_->characterizeMonteCarlo(charlib::ProcessCorner::typical(), 12, 5);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(mcLibs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    delete lib_;
    delete chr_;
    stat_ = nullptr;
    lib_ = nullptr;
    chr_ = nullptr;
  }
  static charlib::Characterizer* chr_;
  static liberty::Library* lib_;
  static statlib::StatLibrary* stat_;
};

charlib::Characterizer* IoTest::chr_ = nullptr;
liberty::Library* IoTest::lib_ = nullptr;
statlib::StatLibrary* IoTest::stat_ = nullptr;

// ------------------------------------------------------------ stat_io ----

TEST_F(IoTest, StatLibraryRoundTripPreservesTables) {
  const std::string text = statlib::writeStatLibraryToString(*stat_);
  const statlib::StatLibrary back = statlib::readStatLibraryFromString(text);
  EXPECT_EQ(back.name(), stat_->name());
  EXPECT_EQ(back.size(), stat_->size());
  EXPECT_EQ(back.sampleCount(), stat_->sampleCount());
  for (const statlib::StatCell* original : stat_->cells()) {
    const statlib::StatCell* parsed = back.findCell(original->name());
    ASSERT_NE(parsed, nullptr) << original->name();
    EXPECT_EQ(parsed->function(), original->function());
    EXPECT_DOUBLE_EQ(parsed->driveStrength(), original->driveStrength());
    EXPECT_DOUBLE_EQ(parsed->area(), original->area());
    ASSERT_EQ(parsed->arcs().size(), original->arcs().size());
    for (std::size_t a = 0; a < original->arcs().size(); ++a) {
      const statlib::StatArc& oa = original->arcs()[a];
      const statlib::StatArc& pa = parsed->arcs()[a];
      EXPECT_EQ(pa.relatedPin, oa.relatedPin);
      EXPECT_EQ(pa.outputPin, oa.outputPin);
      EXPECT_EQ(pa.rise.mean(), oa.rise.mean());
      EXPECT_EQ(pa.rise.sigma(), oa.rise.sigma());
      EXPECT_EQ(pa.fall.mean(), oa.fall.mean());
      EXPECT_EQ(pa.fall.sigma(), oa.fall.sigma());
    }
  }
}

TEST_F(IoTest, StatLibrarySecondRoundTripIdentical) {
  const std::string once = statlib::writeStatLibraryToString(*stat_);
  const std::string twice = statlib::writeStatLibraryToString(
      statlib::readStatLibraryFromString(once));
  EXPECT_EQ(once, twice);
}

TEST_F(IoTest, StatLibraryTuningAgreesAfterRoundTrip) {
  // Tuning the re-parsed library must produce the same constraints.
  const statlib::StatLibrary back = statlib::readStatLibraryFromString(
      statlib::writeStatLibraryToString(*stat_));
  const auto config =
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kSigmaCeiling,
                                      0.02);
  const auto a = tuning::tuneLibrary(*stat_, config);
  const auto b = tuning::tuneLibrary(back, config);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, constraint] : a.cells()) {
    const auto wa = a.window(name, "Z");
    const auto wb = b.window(name, "Z");
    ASSERT_EQ(wa.has_value(), wb.has_value()) << name;
    if (wa) {
      EXPECT_DOUBLE_EQ(wa->maxLoad, wb->maxLoad) << name;
      EXPECT_DOUBLE_EQ(wa->maxSlew, wb->maxSlew) << name;
    }
  }
}

TEST_F(IoTest, StatLibraryRejectsGarbage) {
  EXPECT_THROW((void)statlib::readStatLibraryFromString("library (x) {}\n"),
               liberty::ParseError);
  EXPECT_THROW((void)statlib::readStatLibraryFromString(
                   "stat_library (x) {\n cell (A) {\n  function : INV ;\n"
                   "  arc (A Z) {\n  }\n }\n}\n"),
               liberty::ParseError);
}

TEST_F(IoTest, CharacterizedLibraryRoundTripsSetupLut) {
  const std::string text = liberty::writeLibraryToString(*lib_);
  const liberty::Library back = liberty::readLibraryFromString(text);
  const liberty::Cell* original = lib_->findCell("FD1_2");
  const liberty::Cell* parsed = back.findCell("FD1_2");
  ASSERT_NE(original, nullptr);
  ASSERT_NE(parsed, nullptr);
  ASSERT_FALSE(original->setupLut().empty());
  EXPECT_EQ(parsed->setupLut(), original->setupLut());
  // Slew-dependent lookups agree after the round trip.
  EXPECT_DOUBLE_EQ(parsed->setupTime(0.3, 0.05),
                   original->setupTime(0.3, 0.05));
  // Combinational cells carry no setup table.
  EXPECT_TRUE(back.findCell("IV_1")->setupLut().empty());
}

// ----------------------------------------------------- constraints_io ----

TEST_F(IoTest, ConstraintsRoundTrip) {
  const auto config =
      tuning::TuningConfig::forMethod(tuning::TuningMethod::kCellLoadSlope,
                                      0.03);
  const tuning::LibraryConstraints original =
      tuning::tuneLibrary(*stat_, config);
  const tuning::LibraryConstraints back = tuning::readConstraintsFromString(
      tuning::writeConstraintsToString(original));
  ASSERT_EQ(back.size(), original.size());
  EXPECT_EQ(back.unusableCellCount(), original.unusableCellCount());
  for (const auto& [name, constraint] : original.cells()) {
    EXPECT_EQ(back.cellUsable(name), original.cellUsable(name)) << name;
    for (const auto& [pin, window] : constraint.pinWindows) {
      const auto w = back.window(name, pin);
      ASSERT_TRUE(w.has_value()) << name << "/" << pin;
      EXPECT_DOUBLE_EQ(w->minSlew, window.minSlew);
      EXPECT_DOUBLE_EQ(w->maxSlew, window.maxSlew);
      EXPECT_DOUBLE_EQ(w->minLoad, window.minLoad);
      EXPECT_DOUBLE_EQ(w->maxLoad, window.maxLoad);
    }
  }
}

TEST_F(IoTest, ConstraintsRoundTripPreservesUnusable) {
  tuning::LibraryConstraints original;
  original.markUnusable("IV_1");
  tuning::CellConstraint ok;
  ok.sigmaThreshold = 0.02;
  ok.pinWindows.emplace("Z", tuning::PinWindow{0.0, 0.4, 0.0, 0.05});
  original.setCell("IV_4", std::move(ok));

  const tuning::LibraryConstraints back = tuning::readConstraintsFromString(
      tuning::writeConstraintsToString(original));
  EXPECT_FALSE(back.cellUsable("IV_1"));
  EXPECT_TRUE(back.cellUsable("IV_4"));
  EXPECT_TRUE(back.allows("IV_4", "Z", 0.2, 0.01));
  EXPECT_FALSE(back.allows("IV_4", "Z", 0.5, 0.01));
}

TEST_F(IoTest, SynthesisScriptMentionsEveryBound) {
  tuning::LibraryConstraints constraints;
  constraints.markUnusable("IV_0P5");
  tuning::CellConstraint c;
  c.pinWindows.emplace("Z", tuning::PinWindow{0.0, 0.2, 0.001, 0.03});
  constraints.setCell("IV_4", std::move(c));
  const std::string script =
      tuning::writeSynthesisScriptToString(constraints, "TT1P1V25C");
  EXPECT_NE(script.find("set_dont_use TT1P1V25C/IV_0P5"), std::string::npos);
  EXPECT_NE(script.find("set_max_transition 0.2 [get_lib_pins "
                        "TT1P1V25C/IV_4/Z]"),
            std::string::npos);
  EXPECT_NE(script.find("set_max_capacitance 0.03"), std::string::npos);
  EXPECT_NE(script.find("set_min_capacitance 0.001"), std::string::npos);
}

TEST_F(IoTest, ConstraintsRejectGarbage) {
  EXPECT_THROW((void)tuning::readConstraintsFromString("cell (x) {}\n"),
               liberty::ParseError);
  EXPECT_THROW((void)tuning::readConstraintsFromString(
                   "constraints (t) {\n cell (A) {\n  bogus : 1 ;\n }\n}\n"),
               liberty::ParseError);
}

// --------------------------------------------------------- verilog_io ----

TEST_F(IoTest, VerilogRoundTripUnmapped) {
  const netlist::Design original = netlist::generateAccumulator(8);
  const std::string text = netlist::writeVerilogToString(original);
  const netlist::Design back = netlist::readVerilogFromString(text);
  EXPECT_EQ(back.name(), original.name());
  EXPECT_EQ(back.gateCount(), original.gateCount());
  EXPECT_EQ(back.ports().size(), original.ports().size());
  EXPECT_EQ(back.validate(), "");
  // Same op census.
  std::map<netlist::PrimOp, int> a;
  std::map<netlist::PrimOp, int> b;
  for (const auto& inst : original.instances()) {
    if (inst.alive) ++a[inst.op];
  }
  for (const auto& inst : back.instances()) {
    if (inst.alive) ++b[inst.op];
  }
  EXPECT_EQ(a, b);
}

TEST_F(IoTest, VerilogRoundTripMappedDesignPreservesCells) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 8.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(8), clock);
  ASSERT_TRUE(result.success());
  const std::string text = netlist::writeVerilogToString(result.design);
  const netlist::Design back = netlist::readVerilogFromString(text, lib_);
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(back.gateCount(), result.design.gateCount());
  EXPECT_EQ(back.cellUsage(), result.design.cellUsage());
  EXPECT_NEAR(back.totalArea(), result.design.totalArea(), 1e-9);
}

TEST_F(IoTest, VerilogMappedRoundTripKeepsTiming) {
  const synth::Synthesizer synth(*lib_);
  sta::ClockSpec clock;
  clock.period = 6.0;
  const synth::SynthesisResult result =
      synth.run(netlist::generateAccumulator(12), clock);
  ASSERT_TRUE(result.success());
  const netlist::Design back = netlist::readVerilogFromString(
      netlist::writeVerilogToString(result.design), lib_);
  sta::TimingAnalyzer staA(result.design, *lib_, clock);
  sta::TimingAnalyzer staB(back, *lib_, clock);
  ASSERT_TRUE(staA.analyze());
  ASSERT_TRUE(staB.analyze());
  EXPECT_NEAR(staA.worstSlack(), staB.worstSlack(), 1e-9);
  EXPECT_EQ(staA.endpoints().size(), staB.endpoints().size());
}

TEST_F(IoTest, VerilogEscapedIdentifiers) {
  netlist::Design d("top");
  netlist::NetlistBuilder b(d);
  const netlist::NetIndex in = b.inputPort("data[3]");  // needs escaping
  b.outputPort("out[0]", b.inv(in));
  const std::string text = netlist::writeVerilogToString(d);
  EXPECT_NE(text.find("\\data[3] "), std::string::npos);
  const netlist::Design back = netlist::readVerilogFromString(text);
  ASSERT_EQ(back.ports().size(), 2u);
  EXPECT_EQ(back.ports()[0].name, "data[3]");
}

TEST_F(IoTest, VerilogRejectsUnknownMaster) {
  const std::string text =
      "module t (a, z);\n input a;\n output z;\n"
      " BOGUS_9 u0 (.A(a), .Z(z));\nendmodule\n";
  EXPECT_THROW((void)netlist::readVerilogFromString(text),
               netlist::VerilogError);
}

TEST_F(IoTest, VerilogRejectsMissingPin) {
  const std::string text =
      "module t (a, z);\n input a;\n output z;\n"
      " NAND2 u0 (.A(a), .Z(z));\nendmodule\n";  // missing .B
  EXPECT_THROW((void)netlist::readVerilogFromString(text),
               netlist::VerilogError);
}

TEST_F(IoTest, VerilogRejectsTruncatedFile) {
  EXPECT_THROW((void)netlist::readVerilogFromString("module t (a);\n input a;\n"),
               netlist::VerilogError);
}

TEST_F(IoTest, VerilogMcuRoundTrip) {
  netlist::McuConfig small;
  small.registers = 8;
  small.readPorts = 2;
  small.timers = 1;
  small.dmaChannels = 1;
  small.gpioWidth = 16;
  small.cacheTagEntries = 0;
  small.macUnits = 1;
  small.macWidth = 8;
  small.bankedRegisters = 1;
  small.interruptSources = 8;
  small.decodeOutputs = 64;
  const netlist::Design original = netlist::generateMcu(small);
  const netlist::Design back =
      netlist::readVerilogFromString(netlist::writeVerilogToString(original));
  EXPECT_EQ(back.gateCount(), original.gateCount());
  EXPECT_EQ(back.validate(), "");
}

}  // namespace
}  // namespace sct
