// Unit tests for the tuning core: slope tables (eqs. 12-13), binary LUTs,
// largest-rectangle extraction (Algorithm 1, Fig. 6), threshold extraction
// (section VI.B) and per-pin LUT restriction (section VI.C).

#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "numeric/rng.hpp"
#include "statlib/stat_library.hpp"
#include "test_helpers.hpp"
#include "tuning/methods.hpp"
#include "tuning/rectangle.hpp"
#include "tuning/restriction.hpp"
#include "tuning/slope.hpp"

namespace sct::tuning {
namespace {

// -------------------------------------------------------------- slope ----

TEST(Slope, NormalizedPositions) {
  const auto pos = normalizedPositions({1.0, 2.0, 5.0});
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_DOUBLE_EQ(pos[0], 0.0);
  EXPECT_DOUBLE_EQ(pos[1], 0.25);
  EXPECT_DOUBLE_EQ(pos[2], 1.0);
}

TEST(Slope, SlewSlopeFirstRowZero) {
  numeric::Grid2d q(3, 2);
  q.at(0, 0) = 1.0;
  q.at(1, 0) = 2.0;
  q.at(2, 0) = 4.0;
  const auto slope = slewSlopeTable(q, {0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(slope.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(slope.at(1, 0), (2.0 - 1.0) / 0.5);
  EXPECT_DOUBLE_EQ(slope.at(2, 0), (4.0 - 2.0) / 0.5);
}

TEST(Slope, LoadSlopeFirstColumnZero) {
  numeric::Grid2d q(2, 3);
  q.at(0, 0) = 1.0;
  q.at(0, 1) = 1.5;
  q.at(0, 2) = 3.0;
  const auto slope = loadSlopeTable(q, {0.0, 0.25, 1.0});
  EXPECT_DOUBLE_EQ(slope.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(slope.at(0, 1), 0.5 / 0.25);
  EXPECT_DOUBLE_EQ(slope.at(0, 2), 1.5 / 0.75);
}

TEST(Slope, NegativeSlopesPreserved) {
  numeric::Grid2d q(1, 3);
  q.at(0, 0) = 2.0;
  q.at(0, 1) = 1.0;
  q.at(0, 2) = 3.0;
  const auto slope = loadSlopeTable(q, {0.0, 0.5, 1.0});
  EXPECT_LT(slope.at(0, 1), 0.0);
  EXPECT_GT(slope.at(0, 2), 0.0);
}

// ---------------------------------------------------------- binary lut ----

TEST(BinaryLut, ThresholdBelowIsInclusive) {
  numeric::Grid2d g(1, 3);
  g.at(0, 0) = 0.5;
  g.at(0, 1) = 1.0;
  g.at(0, 2) = 1.5;
  const BinaryLut b = BinaryLut::thresholdBelow(g, 1.0);
  EXPECT_TRUE(b.test(0, 0));
  EXPECT_TRUE(b.test(0, 1));
  EXPECT_FALSE(b.test(0, 2));
  EXPECT_EQ(b.countOnes(), 2u);
}

TEST(BinaryLut, AndCombines) {
  BinaryLut a(2, 2, true);
  BinaryLut b(2, 2, true);
  a.set(0, 1, false);
  b.set(1, 0, false);
  const BinaryLut c = a.andWith(b);
  EXPECT_TRUE(c.test(0, 0));
  EXPECT_FALSE(c.test(0, 1));
  EXPECT_FALSE(c.test(1, 0));
  EXPECT_TRUE(c.test(1, 1));
}

// ----------------------------------------------------------- rectangle ----

BinaryLut fromStrings(const std::vector<std::string>& rows) {
  BinaryLut lut(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      lut.set(r, c, rows[r][c] == '1');
    }
  }
  return lut;
}

TEST(Rectangle, FullTable) {
  const BinaryLut lut(3, 4, true);
  const auto rect = largestRectangle(lut);
  ASSERT_TRUE(rect.has_value());
  EXPECT_EQ(*rect, (Rect{0, 0, 2, 3}));
  EXPECT_EQ(rect->area(), 12u);
}

TEST(Rectangle, EmptyTableGivesNothing) {
  const BinaryLut lut(3, 3, false);
  EXPECT_FALSE(largestRectangle(lut).has_value());
  EXPECT_FALSE(largestRectangleReference(lut).has_value());
}

TEST(Rectangle, SingleOne) {
  BinaryLut lut(3, 3, false);
  lut.set(1, 2, true);
  const auto rect = largestRectangle(lut);
  ASSERT_TRUE(rect.has_value());
  EXPECT_EQ(*rect, (Rect{1, 2, 1, 2}));
}

TEST(Rectangle, Fig6LikeShape) {
  // A flat region near the origin with a high-sigma far corner, like Fig. 6.
  const BinaryLut lut = fromStrings({
      "111110",
      "111100",
      "111100",
      "110000",
      "100000",
  });
  const auto rect = largestRectangle(lut);
  ASSERT_TRUE(rect.has_value());
  // Largest all-ones rectangle: rows 0-2 x cols 0-3 (12 cells).
  EXPECT_EQ(*rect, (Rect{0, 0, 2, 3}));
}

TEST(Rectangle, TieBreakPrefersOriginSide) {
  // Two disjoint 2x2 rectangles; the one closer to the origin (smaller
  // column) must win, mirroring Algorithm 1's loop order.
  const BinaryLut lut = fromStrings({
      "110011",
      "110011",
  });
  const auto rect = largestRectangle(lut);
  ASSERT_TRUE(rect.has_value());
  EXPECT_EQ(*rect, (Rect{0, 0, 1, 1}));
}

TEST(Rectangle, TieBreakColumnBeforeRow) {
  // Algorithm 1 iterates ll_x (column) in the outermost loop, so a
  // same-area candidate with smaller column start wins even if its row
  // start is larger.
  const BinaryLut lut = fromStrings({
      "0011",
      "1100",
      "1100",
      "0011",
  });
  const auto fast = largestRectangle(lut);
  const auto ref = largestRectangleReference(lut);
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(*fast, *ref);
  EXPECT_EQ(fast->colLo, 0u);
  EXPECT_EQ(fast->rowLo, 1u);
}

TEST(Rectangle, TallVersusWide) {
  const BinaryLut lut = fromStrings({
      "111000",
      "111000",
      "110000",
      "110000",
      "110000",
  });
  // Tall 5x2 = 10 beats wide 2x3 = 6.
  const auto rect = largestRectangle(lut);
  ASSERT_TRUE(rect.has_value());
  EXPECT_EQ(*rect, (Rect{0, 0, 4, 1}));
}

/// Property: the fast implementation returns exactly the reference result
/// (same rectangle, not merely same area) on random tables.
class RectanglePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectanglePropertyTest, FastMatchesReference) {
  numeric::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t rows = 1 + rng.uniformInt(8);
    const std::size_t cols = 1 + rng.uniformInt(8);
    const double density = rng.uniform(0.2, 0.95);
    BinaryLut lut(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        lut.set(r, c, rng.uniform() < density);
      }
    }
    const auto fast = largestRectangle(lut);
    const auto ref = largestRectangleReference(lut);
    ASSERT_EQ(fast.has_value(), ref.has_value());
    if (fast) {
      EXPECT_EQ(*fast, *ref) << "trial " << trial << " (" << rows << "x"
                             << cols << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectanglePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------------------------------- config ----

TEST(TuningConfig, DefaultsMatchTable2) {
  const TuningConfig def;
  EXPECT_DOUBLE_EQ(def.loadSlopeBound, 1.0);
  EXPECT_DOUBLE_EQ(def.slewSlopeBound, 0.06);
  EXPECT_DOUBLE_EQ(def.sigmaCeiling, 100.0);
}

TEST(TuningConfig, ForMethodSetsOnlySweptParameter) {
  const TuningConfig load =
      TuningConfig::forMethod(TuningMethod::kCellLoadSlope, 0.03);
  EXPECT_DOUBLE_EQ(load.loadSlopeBound, 0.03);
  EXPECT_DOUBLE_EQ(load.slewSlopeBound, 0.06);
  EXPECT_DOUBLE_EQ(load.sigmaCeiling, 100.0);

  const TuningConfig slew =
      TuningConfig::forMethod(TuningMethod::kCellStrengthSlewSlope, 0.01);
  EXPECT_DOUBLE_EQ(slew.slewSlopeBound, 0.01);
  EXPECT_DOUBLE_EQ(slew.loadSlopeBound, 1.0);

  const TuningConfig ceil =
      TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.02);
  EXPECT_DOUBLE_EQ(ceil.sigmaCeiling, 0.02);
}

TEST(TuningConfig, SweepValuesMatchTable2) {
  const auto slope = sweepValues(TuningMethod::kCellLoadSlope);
  ASSERT_EQ(slope.size(), 4u);
  EXPECT_DOUBLE_EQ(slope[0], 1.0);
  EXPECT_DOUBLE_EQ(slope[3], 0.01);
  const auto ceiling = sweepValues(TuningMethod::kSigmaCeiling);
  ASSERT_EQ(ceiling.size(), 4u);
  EXPECT_DOUBLE_EQ(ceiling[0], 0.04);
  EXPECT_DOUBLE_EQ(ceiling[3], 0.01);
}

TEST(TuningConfig, ClusteringFlag) {
  EXPECT_TRUE(clustersByStrength(TuningMethod::kCellStrengthLoadSlope));
  EXPECT_TRUE(clustersByStrength(TuningMethod::kCellStrengthSlewSlope));
  EXPECT_FALSE(clustersByStrength(TuningMethod::kCellLoadSlope));
  EXPECT_FALSE(clustersByStrength(TuningMethod::kCellSlewSlope));
  EXPECT_FALSE(clustersByStrength(TuningMethod::kSigmaCeiling));
}

// --------------------------------------------- thresholds & restriction ----

class TuningLibraryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    charlib::Characterizer chr = test::makeSmallCharacterizer();
    const auto libs =
        chr.characterizeMonteCarlo(charlib::ProcessCorner::typical(), 30, 42);
    stat_ = new statlib::StatLibrary(statlib::buildStatLibrary(libs));
  }
  static void TearDownTestSuite() {
    delete stat_;
    stat_ = nullptr;
  }
  static statlib::StatLibrary* stat_;
};

statlib::StatLibrary* TuningLibraryTest::stat_ = nullptr;

TEST_F(TuningLibraryTest, DefaultConfigIsUnrestrictive) {
  // Defaults (load 1, slew 0.06, ceiling 100) must leave every cell usable
  // with a full-range window.
  const LibraryConstraints constraints = tuneLibrary(*stat_, TuningConfig{});
  EXPECT_EQ(constraints.unusableCellCount(), 0u);
  const statlib::StatCell* inv = stat_->findCell("IV_1");
  const auto window = constraints.window("IV_1", "Z");
  ASSERT_TRUE(window.has_value());
  const statlib::StatLut lut = inv->maxSigmaLut();
  EXPECT_DOUBLE_EQ(window->maxLoad, lut.loadAxis().back());
  EXPECT_DOUBLE_EQ(window->maxSlew, lut.slewAxis().back());
  EXPECT_DOUBLE_EQ(window->minLoad, 0.0);
  EXPECT_DOUBLE_EQ(window->minSlew, 0.0);
}

TEST_F(TuningLibraryTest, SigmaCeilingShrinksWindows) {
  const LibraryConstraints loose = tuneLibrary(
      *stat_, TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.04));
  const LibraryConstraints tight = tuneLibrary(
      *stat_, TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.01));
  // Windows shrink monotonically with the ceiling for weak cells.
  const auto wl = loose.window("IV_0P5", "Z");
  const auto wt = tight.window("IV_0P5", "Z");
  ASSERT_TRUE(wl.has_value());
  ASSERT_TRUE(wt.has_value());
  EXPECT_LE(wt->maxLoad, wl->maxLoad);
  EXPECT_LE(wt->maxSlew, wl->maxSlew);
  EXPECT_LT(wt->maxLoad, stat_->findCell("IV_0P5")->maxSigmaLut().loadAxis().back());
}

TEST_F(TuningLibraryTest, StrongCellsLessRestrictedThanWeak) {
  const LibraryConstraints constraints = tuneLibrary(
      *stat_, TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.02));
  const auto weak = constraints.window("IV_1", "Z");
  const auto strong = constraints.window("IV_32", "Z");
  ASSERT_TRUE(weak.has_value());
  ASSERT_TRUE(strong.has_value());
  // Relative to each cell's own range, the strong cell keeps more.
  const double weakFrac =
      weak->maxLoad / stat_->findCell("IV_1")->maxSigmaLut().loadAxis().back();
  const double strongFrac =
      strong->maxLoad /
      stat_->findCell("IV_32")->maxSigmaLut().loadAxis().back();
  EXPECT_GE(strongFrac, weakFrac);
}

TEST_F(TuningLibraryTest, WindowAllowsChecksBothDimensions) {
  PinWindow w{0.0, 0.2, 0.001, 0.01};
  EXPECT_TRUE(w.allows(0.1, 0.005));
  EXPECT_FALSE(w.allows(0.3, 0.005));  // slew too high
  EXPECT_FALSE(w.allows(0.1, 0.02));   // load too high
  EXPECT_FALSE(w.allows(0.1, 0.0005)); // load below window
}

TEST_F(TuningLibraryTest, UnconstrainedCellHasNoWindow) {
  const LibraryConstraints constraints = tuneLibrary(
      *stat_, TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.02));
  // Tie cells have no arcs and therefore no constraint entry.
  EXPECT_FALSE(constraints.window("TIEH_1", "Z").has_value());
  EXPECT_TRUE(constraints.cellUsable("TIEH_1"));
  EXPECT_TRUE(constraints.allows("TIEH_1", "Z", 1.0, 1.0));
}

TEST_F(TuningLibraryTest, ImpossibleCeilingMakesCellsUnusable) {
  const LibraryConstraints constraints = tuneLibrary(
      *stat_, TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 1e-6));
  EXPECT_GT(constraints.unusableCellCount(), 200u);
  EXPECT_FALSE(constraints.cellUsable("IV_1"));
  // Unusable cell: window allows nothing.
  const auto w = constraints.window("IV_1", "Z");
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->allows(0.0, 0.0));
}

TEST_F(TuningLibraryTest, StrengthClusteringSharesThreshold) {
  const TuningConfig config =
      TuningConfig::forMethod(TuningMethod::kCellStrengthLoadSlope, 0.03);
  const auto thresholds = extractThresholds(*stat_, config);
  // One threshold per drive strength, not per cell.
  EXPECT_LT(thresholds.size(), 30u);
  EXPECT_TRUE(thresholds.contains("strength_6"));
  EXPECT_TRUE(thresholds.contains("strength_0P5"));
}

TEST_F(TuningLibraryTest, PerCellClusteringHasOneThresholdPerCell) {
  const TuningConfig config =
      TuningConfig::forMethod(TuningMethod::kCellLoadSlope, 0.03);
  const auto thresholds = extractThresholds(*stat_, config);
  // All timed cells (302 of 304; tie cells have no arcs).
  EXPECT_EQ(thresholds.size(), 302u);
  EXPECT_TRUE(thresholds.contains("IV_1"));
}

TEST_F(TuningLibraryTest, CeilingThresholdPassesThrough) {
  const TuningConfig config =
      TuningConfig::forMethod(TuningMethod::kSigmaCeiling, 0.0321);
  const auto thresholds = extractThresholds(*stat_, config);
  for (const auto& [name, t] : thresholds) {
    EXPECT_DOUBLE_EQ(t.sigmaThreshold, 0.0321);
  }
}

TEST_F(TuningLibraryTest, TighterLoadSlopeBoundLowersThresholds) {
  const auto loose = extractThresholds(
      *stat_, TuningConfig::forMethod(TuningMethod::kCellLoadSlope, 1.0));
  const auto tight = extractThresholds(
      *stat_, TuningConfig::forMethod(TuningMethod::kCellLoadSlope, 0.01));
  double looseSum = 0.0;
  double tightSum = 0.0;
  for (const auto& [name, t] : loose) looseSum += t.sigmaThreshold;
  for (const auto& [name, t] : tight) tightSum += t.sigmaThreshold;
  EXPECT_LT(tightSum, looseSum);
}

TEST_F(TuningLibraryTest, RestrictPinWindowCornersMatchRectangle) {
  const statlib::StatCell* cell = stat_->findCell("IV_0P5");
  ASSERT_NE(cell, nullptr);
  const statlib::StatLut lut = cell->maxSigmaLutForPin("Z");
  const double threshold = 0.02;
  const auto window = restrictPin(*cell, "Z", threshold);
  ASSERT_TRUE(window.has_value());
  const BinaryLut acceptable = BinaryLut::thresholdBelow(lut.sigma(), threshold);
  const auto rect = largestRectangle(acceptable);
  ASSERT_TRUE(rect.has_value());
  EXPECT_DOUBLE_EQ(window->maxLoad, lut.loadAxis()[rect->colHi]);
  EXPECT_DOUBLE_EQ(window->maxSlew, lut.slewAxis()[rect->rowHi]);
}

TEST_F(TuningLibraryTest, RestrictPinOnMissingPinIsNull) {
  const statlib::StatCell* cell = stat_->findCell("IV_1");
  EXPECT_FALSE(restrictPin(*cell, "NOPE", 0.02).has_value());
}

}  // namespace
}  // namespace sct::tuning
