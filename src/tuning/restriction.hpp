#pragma once
// Library tuning output: per-output-pin slew/load windows (section VI.C).
// Instead of removing cells, each output pin's LUT is confined to the
// largest low-sigma rectangle; synthesis may only operate the cell inside
// that window. A pin with no acceptable entries makes the cell unusable.

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "statlib/stat_library.hpp"
#include "tuning/methods.hpp"
#include "tuning/rectangle.hpp"

namespace sct::tuning {

/// Allowed operating window of one output pin. Loads/slews are inclusive
/// bounds in library units (ns / pF). minSlew/minLoad are 0 when the window
/// starts at the table origin.
struct PinWindow {
  double minSlew = 0.0;
  double maxSlew = 0.0;
  double minLoad = 0.0;
  double maxLoad = 0.0;

  [[nodiscard]] bool allows(double slew, double load) const noexcept {
    return slew >= minSlew && slew <= maxSlew && load >= minLoad &&
           load <= maxLoad;
  }
};

struct CellConstraint {
  /// Window per output pin; a missing entry means the pin (and with it the
  /// cell) may not be used at all.
  std::map<std::string, PinWindow> pinWindows;
  /// Sigma threshold that produced the windows (diagnostics/reports).
  double sigmaThreshold = 0.0;

  [[nodiscard]] bool usable() const noexcept { return !pinWindows.empty(); }
};

/// Constraint set over a library. Cells without an entry are unconstrained
/// (full LUT range available).
class LibraryConstraints {
 public:
  void setCell(std::string cellName, CellConstraint constraint) {
    cells_[std::move(cellName)] = std::move(constraint);
  }
  void markUnusable(std::string cellName) {
    cells_[std::move(cellName)] = CellConstraint{};
  }

  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  /// Window for a pin; nullopt when unconstrained. Unusable cells return a
  /// degenerate all-zero window that allows nothing.
  [[nodiscard]] std::optional<PinWindow> window(std::string_view cell,
                                                std::string_view pin) const;

  /// False when the cell was tuned away entirely.
  [[nodiscard]] bool cellUsable(std::string_view cell) const;

  /// True when the operating point is legal for the pin.
  [[nodiscard]] bool allows(std::string_view cell, std::string_view pin,
                            double slew, double load) const;

  [[nodiscard]] std::size_t unusableCellCount() const;

  [[nodiscard]] const std::map<std::string, CellConstraint, std::less<>>&
  cells() const noexcept {
    return cells_;
  }

 private:
  std::map<std::string, CellConstraint, std::less<>> cells_;
};

/// Result of the threshold-extraction stage (section VI.B) for one cluster.
struct ClusterThreshold {
  std::string clusterName;
  double sigmaThreshold = 0.0;
  std::optional<Rect> rectangle;  ///< flat region found in the cluster LUT
};

/// Stage 1: extract a sigma threshold per cluster according to the config.
/// Strength-clustered methods produce one entry per drive strength; cell
/// methods one entry per cell.
[[nodiscard]] std::map<std::string, ClusterThreshold> extractThresholds(
    const statlib::StatLibrary& library, const TuningConfig& config);

/// Stage 2 (and the public entry point): full tuning, i.e. threshold
/// extraction followed by per-pin LUT restriction.
[[nodiscard]] LibraryConstraints tuneLibrary(const statlib::StatLibrary& library,
                                             const TuningConfig& config);

/// Cluster a cell belongs to under a tuning config: "strength_<suffix>" for
/// strength-clustered methods, the cell's own name otherwise. Public so the
/// evolutionary tuner can project paper-method cluster thresholds onto its
/// per-cell genotype.
[[nodiscard]] std::string clusterName(const statlib::StatCell& cell,
                                      const TuningConfig& config);

/// Stage 2 alone, under externally supplied per-cell sigma thresholds keyed
/// by cell name (the evolutionary tuner's genotype -> phenotype mapping).
/// Cells with timing arcs but no entry are marked unusable; tie cells stay
/// unconstrained. Same parallel fan-out and determinism as tuneLibrary.
[[nodiscard]] LibraryConstraints constrainWithThresholds(
    const statlib::StatLibrary& library,
    const std::map<std::string, double>& thresholds);

/// Restriction of a single pin given a sigma threshold: max-equivalent sigma
/// LUT -> binary LUT -> largest rectangle -> window. Returns nullopt when no
/// entry is acceptable.
[[nodiscard]] std::optional<PinWindow> restrictPin(
    const statlib::StatCell& cell, std::string_view outputPin,
    double sigmaThreshold);

}  // namespace sct::tuning
