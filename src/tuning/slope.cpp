#include "tuning/slope.hpp"

#include <cassert>

namespace sct::tuning {

std::vector<double> normalizedPositions(const numeric::Axis& axis) {
  assert(!axis.empty());
  const double lo = axis.front();
  const double range = axis.back() - lo;
  std::vector<double> out;
  out.reserve(axis.size());
  for (double v : axis) {
    out.push_back(range > 0.0 ? (v - lo) / range : 0.0);
  }
  return out;
}

numeric::Grid2d slewSlopeTable(const numeric::Grid2d& q,
                               const std::vector<double>& rowPositions) {
  assert(rowPositions.size() == q.rows());
  numeric::Grid2d out(q.rows(), q.cols(), 0.0);
  for (std::size_t r = 1; r < q.rows(); ++r) {
    const double step = rowPositions[r] - rowPositions[r - 1];
    if (step <= 0.0) continue;
    for (std::size_t c = 0; c < q.cols(); ++c) {
      out.at(r, c) = (q.at(r, c) - q.at(r - 1, c)) / step;
    }
  }
  return out;
}

numeric::Grid2d loadSlopeTable(const numeric::Grid2d& q,
                               const std::vector<double>& colPositions) {
  assert(colPositions.size() == q.cols());
  numeric::Grid2d out(q.rows(), q.cols(), 0.0);
  for (std::size_t c = 1; c < q.cols(); ++c) {
    const double step = colPositions[c] - colPositions[c - 1];
    if (step <= 0.0) continue;
    for (std::size_t r = 0; r < q.rows(); ++r) {
      out.at(r, c) = (q.at(r, c) - q.at(r, c - 1)) / step;
    }
  }
  return out;
}

}  // namespace sct::tuning
