#include "tuning/restriction.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "liberty/function.hpp"
#include "parallel/parallel.hpp"
#include "tuning/slope.hpp"

namespace sct::tuning {

std::optional<PinWindow> LibraryConstraints::window(std::string_view cell,
                                                    std::string_view pin) const {
  const auto it = cells_.find(cell);
  if (it == cells_.end()) return std::nullopt;
  const auto pinIt = it->second.pinWindows.find(std::string(pin));
  if (pinIt == it->second.pinWindows.end()) {
    // Cell is constrained; a pin without a window is unusable: return a
    // window that allows nothing if the cell is unusable, otherwise treat
    // the (non-timing) pin as unconstrained.
    if (!it->second.usable()) return PinWindow{0.0, -1.0, 0.0, -1.0};
    return std::nullopt;
  }
  return pinIt->second;
}

bool LibraryConstraints::cellUsable(std::string_view cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() || it->second.usable();
}

bool LibraryConstraints::allows(std::string_view cell, std::string_view pin,
                                double slew, double load) const {
  const std::optional<PinWindow> w = window(cell, pin);
  return !w || w->allows(slew, load);
}

std::size_t LibraryConstraints::unusableCellCount() const {
  std::size_t n = 0;
  for (const auto& [name, constraint] : cells_) {
    if (!constraint.usable()) ++n;
  }
  return n;
}

namespace {

/// Cluster-equivalent sigma LUT plus the normalized axis positions used by
/// the slope tables.
struct ClusterLut {
  numeric::Grid2d sigma;
  std::vector<double> rowPositions;
  std::vector<double> colPositions;

  [[nodiscard]] bool empty() const noexcept { return sigma.empty(); }
};

/// Entry-wise max of the per-cell worst-sigma LUTs over a cluster
/// (section VI.B: "maximum equivalent LUT ... for the whole cluster").
/// All tables in this repository share dimensions and normalized axis
/// positions, so the index-wise max is well defined even though absolute
/// load ranges differ per drive strength.
ClusterLut clusterEquivalentSigma(
    const std::vector<const statlib::StatCell*>& cells) {
  ClusterLut out;
  for (const statlib::StatCell* cell : cells) {
    statlib::StatLut lut = cell->maxSigmaLut();
    if (lut.empty()) continue;  // tie cells etc. have no timing arcs
    if (out.sigma.empty()) {
      out.sigma = lut.sigma();
      out.rowPositions = normalizedPositions(lut.slewAxis());
      out.colPositions = normalizedPositions(lut.loadAxis());
    } else {
      assert(out.sigma.rows() == lut.sigma().rows() &&
             out.sigma.cols() == lut.sigma().cols());
      out.sigma.maxWith(lut.sigma());
    }
  }
  return out;
}

/// Threshold extraction for one cluster (section VI.B): slope tables of the
/// equivalent LUT -> binary tables under the slope bounds -> AND -> largest
/// flat rectangle -> sigma at the rectangle corner furthest from the origin,
/// capped by the sigma ceiling.
ClusterThreshold extractForCluster(std::string name,
                                   const ClusterLut& equivalent,
                                   const TuningConfig& config) {
  ClusterThreshold out;
  out.clusterName = std::move(name);
  if (equivalent.empty()) {
    out.sigmaThreshold = config.sigmaCeiling;
    return out;
  }
  const numeric::Grid2d slewSlope =
      slewSlopeTable(equivalent.sigma, equivalent.rowPositions);
  const numeric::Grid2d loadSlope =
      loadSlopeTable(equivalent.sigma, equivalent.colPositions);
  const BinaryLut flat =
      BinaryLut::thresholdBelow(slewSlope, config.slewSlopeBound)
          .andWith(BinaryLut::thresholdBelow(loadSlope, config.loadSlopeBound));
  out.rectangle = largestRectangle(flat);
  if (!out.rectangle) {
    out.sigmaThreshold = 0.0;  // nothing is flat: cluster tuned away
    return out;
  }
  const double cornerSigma =
      equivalent.sigma.at(out.rectangle->rowHi, out.rectangle->colHi);
  out.sigmaThreshold = std::min(cornerSigma, config.sigmaCeiling);
  return out;
}

/// Shared stage-2 skeleton: per-pin restriction of every cell with timing
/// arcs under a per-cell threshold lookup (nullopt = cell unusable).
template <typename ThresholdOf>
LibraryConstraints restrictCells(const statlib::StatLibrary& library,
                                 const ThresholdOf& thresholdOf) {
  std::vector<const statlib::StatCell*> cells;
  for (const statlib::StatCell* cell : library.cells()) {
    if (cell->arcs().empty()) continue;  // tie cells: unconstrained
    cells.push_back(cell);
  }

  struct CellOutcome {
    bool usable = false;
    CellConstraint constraint;
  };
  std::vector<CellOutcome> outcomes = parallel::parallelMap(
      cells.size(),
      [&](std::size_t i) {
        const statlib::StatCell& cell = *cells[i];
        const std::optional<double> threshold = thresholdOf(cell);
        CellOutcome outcome;
        if (!threshold) return outcome;

        outcome.constraint.sigmaThreshold = *threshold;
        outcome.usable = true;
        for (const std::string& pin : cell.outputPins()) {
          std::optional<PinWindow> window = restrictPin(cell, pin, *threshold);
          if (!window) {
            outcome.usable = false;
            break;
          }
          outcome.constraint.pinWindows.emplace(pin, *window);
        }
        return outcome;
      },
      /*grain=*/4);

  LibraryConstraints constraints;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!outcomes[i].usable) {
      constraints.markUnusable(cells[i]->name());
    } else {
      constraints.setCell(cells[i]->name(), std::move(outcomes[i].constraint));
    }
  }
  return constraints;
}

}  // namespace

std::string clusterName(const statlib::StatCell& cell,
                        const TuningConfig& config) {
  if (clustersByStrength(config.method)) {
    return "strength_" + liberty::strengthSuffix(cell.driveStrength());
  }
  return cell.name();
}

std::map<std::string, ClusterThreshold> extractThresholds(
    const statlib::StatLibrary& library, const TuningConfig& config) {
  // Group member cells per cluster.
  std::map<std::string, std::vector<const statlib::StatCell*>> clusters;
  for (const statlib::StatCell* cell : library.cells()) {
    if (cell->arcs().empty()) continue;
    clusters[clusterName(*cell, config)].push_back(cell);
  }

  // The sigma-ceiling method uses the ceiling as the threshold on its own
  // (section VI.B); slope methods extract it from the cluster LUT. Clusters
  // are independent, so extraction fans out one task per cluster; results
  // land in a name-keyed map, which is order-insensitive by construction.
  std::vector<const std::pair<const std::string,
                              std::vector<const statlib::StatCell*>>*>
      ordered;
  ordered.reserve(clusters.size());
  for (const auto& entry : clusters) ordered.push_back(&entry);

  std::vector<ClusterThreshold> extracted = parallel::parallelMap(
      ordered.size(),
      [&](std::size_t i) {
        const auto& [name, members] = *ordered[i];
        if (config.method == TuningMethod::kSigmaCeiling) {
          ClusterThreshold t;
          t.clusterName = name;
          t.sigmaThreshold = config.sigmaCeiling;
          return t;
        }
        return extractForCluster(name, clusterEquivalentSigma(members),
                                 config);
      },
      /*grain=*/4);

  std::map<std::string, ClusterThreshold> out;
  for (ClusterThreshold& t : extracted) {
    std::string name = t.clusterName;
    out.emplace(std::move(name), std::move(t));
  }
  return out;
}

std::optional<PinWindow> restrictPin(const statlib::StatCell& cell,
                                     std::string_view outputPin,
                                     double sigmaThreshold) {
  const statlib::StatLut lut = cell.maxSigmaLutForPin(outputPin);
  if (lut.empty()) return std::nullopt;
  const BinaryLut acceptable =
      BinaryLut::thresholdBelow(lut.sigma(), sigmaThreshold);
  const std::optional<Rect> rect = largestRectangle(acceptable);
  if (!rect) return std::nullopt;
  PinWindow window;
  window.minSlew = rect->rowLo == 0 ? 0.0 : lut.slewAxis()[rect->rowLo];
  window.maxSlew = lut.slewAxis()[rect->rowHi];
  window.minLoad = rect->colLo == 0 ? 0.0 : lut.loadAxis()[rect->colLo];
  window.maxLoad = lut.loadAxis()[rect->colHi];
  return window;
}

LibraryConstraints tuneLibrary(const statlib::StatLibrary& library,
                               const TuningConfig& config) {
  const auto thresholds = extractThresholds(library, config);
  // Per-cell restriction is independent work: fan out one task per cell and
  // fold the results back in library order (the constraint map is keyed by
  // cell name anyway, so insertion order never shows).
  return restrictCells(
      library, [&](const statlib::StatCell& cell) -> std::optional<double> {
        const auto thresholdIt = thresholds.find(clusterName(cell, config));
        assert(thresholdIt != thresholds.end());
        return thresholdIt->second.sigmaThreshold;
      });
}

LibraryConstraints constrainWithThresholds(
    const statlib::StatLibrary& library,
    const std::map<std::string, double>& thresholds) {
  return restrictCells(
      library, [&](const statlib::StatCell& cell) -> std::optional<double> {
        const auto it = thresholds.find(cell.name());
        if (it == thresholds.end()) return std::nullopt;
        return it->second;
      });
}

}  // namespace sct::tuning
