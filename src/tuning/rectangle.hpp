#pragma once
// Binary look-up tables and the largest-rectangle extraction of the paper's
// Algorithm 1 / Fig. 6. Two implementations are provided: a literal
// transcription of the paper's quadruple loop (the executable spec) and a
// row-pair scan that returns the identical rectangle under the same
// tie-breaking, property-tested against the reference.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "numeric/grid2d.hpp"

namespace sct::tuning {

/// Dense binary table; rows follow the slew axis, columns the load axis,
/// matching the delay LUT convention.
class BinaryLut {
 public:
  BinaryLut() = default;
  BinaryLut(std::size_t rows, std::size_t cols, bool fill = false)
      : rows_(rows), cols_(cols), bits_(rows * cols, fill ? 1 : 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] bool test(std::size_t r, std::size_t c) const noexcept {
    return bits_[r * cols_ + c] != 0;
  }
  void set(std::size_t r, std::size_t c, bool value) noexcept {
    bits_[r * cols_ + c] = value ? 1 : 0;
  }

  [[nodiscard]] std::size_t countOnes() const noexcept;

  /// Logic AND with a table of identical shape (paper: combine the binary
  /// slew and load slope tables).
  [[nodiscard]] BinaryLut andWith(const BinaryLut& other) const;

  /// 1 where grid value <= threshold ("acceptable" entries).
  [[nodiscard]] static BinaryLut thresholdBelow(const numeric::Grid2d& grid,
                                                double threshold);

  friend bool operator==(const BinaryLut&, const BinaryLut&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// Inclusive rectangle of table indices.
struct Rect {
  std::size_t rowLo = 0;  ///< min slew index
  std::size_t colLo = 0;  ///< min load index
  std::size_t rowHi = 0;  ///< max slew index (inclusive)
  std::size_t colHi = 0;  ///< max load index (inclusive)

  [[nodiscard]] std::size_t area() const noexcept {
    return (rowHi - rowLo + 1) * (colHi - colLo + 1);
  }
  [[nodiscard]] bool contains(std::size_t r, std::size_t c) const noexcept {
    return r >= rowLo && r <= rowHi && c >= colLo && c <= colHi;
  }
  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Literal transcription of Algorithm 1: scans every candidate rectangle in
/// (colLo, rowLo, colHi, rowHi) lexicographic order and keeps the first one
/// with strictly larger all-ones area, i.e. the largest rectangle starting
/// as close as possible to the origin. O(R^2 C^2 * R C); reference only.
[[nodiscard]] std::optional<Rect> largestRectangleReference(
    const BinaryLut& lut);

/// Production implementation: O(R^2 C) row-pair scan with the same
/// tie-breaking as the reference. Returns nullopt when the table has no 1s.
[[nodiscard]] std::optional<Rect> largestRectangle(const BinaryLut& lut);

}  // namespace sct::tuning
