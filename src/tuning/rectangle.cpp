#include "tuning/rectangle.hpp"

#include <array>
#include <cassert>

namespace sct::tuning {

std::size_t BinaryLut::countOnes() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : bits_) n += b;
  return n;
}

BinaryLut BinaryLut::andWith(const BinaryLut& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  BinaryLut out(rows_, cols_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = static_cast<std::uint8_t>(bits_[i] & other.bits_[i]);
  }
  return out;
}

BinaryLut BinaryLut::thresholdBelow(const numeric::Grid2d& grid,
                                    double threshold) {
  BinaryLut out(grid.rows(), grid.cols());
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      out.set(r, c, grid.at(r, c) <= threshold);
    }
  }
  return out;
}

namespace {

/// Lexicographic candidate key matching Algorithm 1's loop order
/// (ll_x, ll_y, ur_x, ur_y) with x = column, y = row.
using RectKey = std::array<std::size_t, 4>;

RectKey keyOf(const Rect& rect) noexcept {
  return {rect.colLo, rect.rowLo, rect.colHi, rect.rowHi};
}

bool allOnes(const BinaryLut& lut, const Rect& rect) noexcept {
  for (std::size_t r = rect.rowLo; r <= rect.rowHi; ++r) {
    for (std::size_t c = rect.colLo; c <= rect.colHi; ++c) {
      if (!lut.test(r, c)) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<Rect> largestRectangleReference(const BinaryLut& lut) {
  std::optional<Rect> best;
  std::size_t bestArea = 0;
  // Loop order is exactly Algorithm 1's: lower-left x (column), lower-left y
  // (row), upper-right x, upper-right y; strictly-greater area wins, so the
  // first maximum in this order is kept.
  for (std::size_t llx = 0; llx < lut.cols(); ++llx) {
    for (std::size_t lly = 0; lly < lut.rows(); ++lly) {
      for (std::size_t urx = llx; urx < lut.cols(); ++urx) {
        for (std::size_t ury = lly; ury < lut.rows(); ++ury) {
          const Rect rect{lly, llx, ury, urx};
          if (rect.area() > bestArea && allOnes(lut, rect)) {
            bestArea = rect.area();
            best = rect;
          }
        }
      }
    }
  }
  return best;
}

std::optional<Rect> largestRectangle(const BinaryLut& lut) {
  if (lut.rows() == 0 || lut.cols() == 0) return std::nullopt;
  std::optional<Rect> best;
  std::size_t bestArea = 0;
  RectKey bestKey{};

  // For every starting row, grow the row span downward while tracking which
  // columns are all-ones over the span; each maximal all-ones column run
  // forms a candidate rectangle. Every maximum-area rectangle is maximal in
  // both directions, so it appears among these candidates; the reference
  // tie-break is then applied explicitly.
  std::vector<std::uint8_t> colOnes(lut.cols());
  for (std::size_t rowLo = 0; rowLo < lut.rows(); ++rowLo) {
    std::fill(colOnes.begin(), colOnes.end(), std::uint8_t{1});
    for (std::size_t rowHi = rowLo; rowHi < lut.rows(); ++rowHi) {
      for (std::size_t c = 0; c < lut.cols(); ++c) {
        if (!lut.test(rowHi, c)) colOnes[c] = 0;
      }
      std::size_t c = 0;
      while (c < lut.cols()) {
        if (colOnes[c] == 0) {
          ++c;
          continue;
        }
        std::size_t runEnd = c;
        while (runEnd + 1 < lut.cols() && colOnes[runEnd + 1] != 0) ++runEnd;
        const Rect rect{rowLo, c, rowHi, runEnd};
        const std::size_t area = rect.area();
        if (area > bestArea ||
            (area == bestArea && best && keyOf(rect) < bestKey)) {
          bestArea = area;
          best = rect;
          bestKey = keyOf(rect);
        }
        c = runEnd + 1;
      }
    }
  }
  return best;
}

}  // namespace sct::tuning
