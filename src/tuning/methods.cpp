#include "tuning/methods.hpp"

#include <span>

namespace sct::tuning {

std::string_view toString(TuningMethod method) noexcept {
  switch (method) {
    case TuningMethod::kCellStrengthLoadSlope:
      return "Cell strength load";
    case TuningMethod::kCellStrengthSlewSlope:
      return "Cell strength slew";
    case TuningMethod::kCellLoadSlope:
      return "Cell load";
    case TuningMethod::kCellSlewSlope:
      return "Cell slew";
    case TuningMethod::kSigmaCeiling:
      return "Sigma ceiling";
  }
  return "?";
}

bool clustersByStrength(TuningMethod method) noexcept {
  return method == TuningMethod::kCellStrengthLoadSlope ||
         method == TuningMethod::kCellStrengthSlewSlope;
}

TuningConfig TuningConfig::forMethod(TuningMethod method,
                                     double value) noexcept {
  TuningConfig config;
  config.method = method;
  switch (method) {
    case TuningMethod::kCellStrengthLoadSlope:
    case TuningMethod::kCellLoadSlope:
      config.loadSlopeBound = value;
      break;
    case TuningMethod::kCellStrengthSlewSlope:
    case TuningMethod::kCellSlewSlope:
      config.slewSlopeBound = value;
      break;
    case TuningMethod::kSigmaCeiling:
      config.sigmaCeiling = value;
      break;
  }
  return config;
}

std::span<const double> sweepValues(TuningMethod method) noexcept {
  // Table 2: slope bounds swept over {1, 0.05, 0.03, 0.01}; sigma ceiling
  // over {0.04, 0.03, 0.02, 0.01}.
  static constexpr double kSlopeSweep[] = {1.0, 0.05, 0.03, 0.01};
  static constexpr double kCeilingSweep[] = {0.04, 0.03, 0.02, 0.01};
  return method == TuningMethod::kSigmaCeiling ? std::span(kCeilingSweep)
                                               : std::span(kSlopeSweep);
}

}  // namespace sct::tuning
