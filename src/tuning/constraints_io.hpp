#pragma once
// Serialization of tuned library constraints. Two formats:
//  - a round-trippable text format (the flow's own artifact, so tuning and
//    synthesis can run in separate processes, as in the paper's tool
//    hand-off);
//  - a synthesis-tool script (set_max_transition / set_max_capacitance per
//    library pin, the mechanism section VI describes: "for each pin of a
//    standard cell a minimum and maximum slew and load value can be
//    defined"). Export only; meant for inspection and external tools.

#include <iosfwd>
#include <string>

#include "liberty/liberty_io.hpp"  // ParseError
#include "tuning/restriction.hpp"

namespace sct::tuning {

/// Round-trippable text form.
void writeConstraints(std::ostream& out, const LibraryConstraints& constraints);
[[nodiscard]] std::string writeConstraintsToString(
    const LibraryConstraints& constraints);

/// Parses constraints previously produced by writeConstraints. Throws
/// liberty::ParseError on malformed input.
[[nodiscard]] LibraryConstraints readConstraints(std::istream& in);
[[nodiscard]] LibraryConstraints readConstraintsFromString(
    const std::string& text);

/// Synthesis-script export (SDC-flavoured, one line per bound; unusable
/// cells become set_dont_use).
void writeSynthesisScript(std::ostream& out,
                          const LibraryConstraints& constraints,
                          const std::string& libraryName);
[[nodiscard]] std::string writeSynthesisScriptToString(
    const LibraryConstraints& constraints, const std::string& libraryName);

}  // namespace sct::tuning
