#pragma once
// The five tuning methods of section VI.A and their constraint parameters
// (Table 2). A method is (clustering scheme) x (threshold-extraction
// parameter); only one parameter is swept at a time, the other two stay at
// their defaults.

#include <span>
#include <string_view>

namespace sct::tuning {

enum class TuningMethod {
  kCellStrengthLoadSlope,  ///< drive-strength clusters, load slope bound swept
  kCellStrengthSlewSlope,  ///< drive-strength clusters, slew slope bound swept
  kCellLoadSlope,          ///< per-cell clusters, load slope bound swept
  kCellSlewSlope,          ///< per-cell clusters, slew slope bound swept
  kSigmaCeiling,           ///< per-cell, sigma ceiling used directly
};

inline constexpr TuningMethod kAllTuningMethods[] = {
    TuningMethod::kCellStrengthLoadSlope, TuningMethod::kCellStrengthSlewSlope,
    TuningMethod::kCellLoadSlope, TuningMethod::kCellSlewSlope,
    TuningMethod::kSigmaCeiling};

[[nodiscard]] std::string_view toString(TuningMethod method) noexcept;

/// Whether the method clusters cells by drive strength (vs. individually).
[[nodiscard]] bool clustersByStrength(TuningMethod method) noexcept;

/// Threshold-extraction parameters. Defaults are the paper's Table 2
/// "Default" column: slope bound 1 (no load restriction), slew slope 0.06,
/// sigma ceiling 100 (no ceiling).
struct TuningConfig {
  TuningMethod method = TuningMethod::kSigmaCeiling;
  double loadSlopeBound = 1.0;
  double slewSlopeBound = 0.06;
  double sigmaCeiling = 100.0;

  /// Config for a method with its swept parameter set to `value` and the
  /// other parameters at their defaults (Table 2 protocol).
  [[nodiscard]] static TuningConfig forMethod(TuningMethod method,
                                              double value) noexcept;
};

/// The paper's Table 2 sweep values for a method.
[[nodiscard]] std::span<const double> sweepValues(TuningMethod method) noexcept;

}  // namespace sct::tuning
