#include "tuning/compiled_constraints.hpp"

#include "liberty/function.hpp"

namespace sct::tuning {

CompiledConstraintView::CompiledConstraintView(
    const LibraryConstraints& constraints, const liberty::Library& library) {
  if (constraints.empty()) return;
  for (const liberty::Cell* cell : library.cells()) {
    const auto names = liberty::outputNames(cell->function());
    CellView view;
    view.usable = constraints.cellUsable(cell->name());
    bool constrained = !view.usable;
    for (const std::string_view pin : names) {
      if (pin.empty()) break;
      auto window = constraints.window(cell->name(), pin);
      constrained = constrained || window.has_value();
      view.slots.push_back(std::move(window));
    }
    if (constrained) views_.emplace(cell, std::move(view));
  }
}

}  // namespace sct::tuning
