#pragma once
// Slot-interned constraint lookup for the synthesis hot path. The string
// form (LibraryConstraints::window) pays two std::map lookups plus a pin
// name comparison per legality query; the sizing loop asks that question
// for every candidate cell of every instance on every pass. This view is
// the constraint analogue of sta/timing_view interning: compiled once per
// (constraints, library) pair, keyed by cell pointer, indexed by output
// slot.

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"
#include "tuning/restriction.hpp"

namespace sct::tuning {

/// Pointer-keyed, output-slot-indexed snapshot of a LibraryConstraints set.
/// Both the constraints and the library must outlive the view (the
/// synthesizer owns one for its own library). Lookup semantics match
/// LibraryConstraints::window: unconstrained pins return nullptr, unusable
/// cells carry degenerate windows that allow nothing.
class CompiledConstraintView {
 public:
  CompiledConstraintView(const LibraryConstraints& constraints,
                         const liberty::Library& library);

  /// Window for a cell's output slot; nullptr when unconstrained. Cells not
  /// in the compiled library are treated as unconstrained.
  [[nodiscard]] const PinWindow* window(const liberty::Cell& cell,
                                        std::size_t outSlot) const {
    const auto it = views_.find(&cell);
    if (it == views_.end()) return nullptr;
    const CellView& view = it->second;
    if (outSlot >= view.slots.size() || !view.slots[outSlot]) return nullptr;
    return &*view.slots[outSlot];
  }

  /// False when the cell was tuned away entirely.
  [[nodiscard]] bool usable(const liberty::Cell& cell) const {
    const auto it = views_.find(&cell);
    return it == views_.end() || it->second.usable;
  }

  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }

 private:
  struct CellView {
    bool usable = true;
    std::vector<std::optional<PinWindow>> slots;  ///< by output slot
  };
  std::unordered_map<const liberty::Cell*, CellView> views_;
};

}  // namespace sct::tuning
