#pragma once
// Slope tables of the threshold-extraction stage (paper eqs. (12) and (13)):
// first differences of a sigma LUT along the slew (row) and load (column)
// directions. As in the paper, indices start at the second row/column, so
// the first row (slew table) / first column (load table) is zero.
//
// The index step 'di'/'dj' of the equations is taken as the *normalized*
// axis step (axis step divided by the full axis range). Normalizing makes
// slopes comparable across cells whose absolute load ranges differ by drive
// strength — which the cluster-equivalent LUT of section VI.B requires —
// and gives the Table 2 slope bounds (1 / 0.05 / 0.03 / 0.01) a consistent
// meaning for every cell.

#include "numeric/grid2d.hpp"

namespace sct::tuning {

/// Positions of axis breakpoints normalized to [0, 1].
[[nodiscard]] std::vector<double> normalizedPositions(const numeric::Axis& axis);

/// Eq. (12): slew(i,j) = (Q(i,j) - Q(i-1,j)) / d(i); row 0 is zero.
/// rowPositions must be normalizedPositions() of the slew axis (size = rows).
[[nodiscard]] numeric::Grid2d slewSlopeTable(
    const numeric::Grid2d& q, const std::vector<double>& rowPositions);

/// Eq. (13): load(i,j) = (Q(i,j) - Q(i,j-1)) / d(j); column 0 is zero.
/// colPositions must be normalizedPositions() of the load axis (size = cols).
[[nodiscard]] numeric::Grid2d loadSlopeTable(
    const numeric::Grid2d& q, const std::vector<double>& colPositions);

}  // namespace sct::tuning
