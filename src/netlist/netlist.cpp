#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sct::netlist {

std::string_view toString(PrimOp op) noexcept {
  switch (op) {
    case PrimOp::kConst0: return "CONST0";
    case PrimOp::kConst1: return "CONST1";
    case PrimOp::kInv: return "INV";
    case PrimOp::kBuf: return "BUF";
    case PrimOp::kNand2: return "NAND2";
    case PrimOp::kNand2B: return "NAND2B";
    case PrimOp::kNand3: return "NAND3";
    case PrimOp::kNand4: return "NAND4";
    case PrimOp::kNor2: return "NOR2";
    case PrimOp::kNor2B: return "NOR2B";
    case PrimOp::kNor3: return "NOR3";
    case PrimOp::kNor4: return "NOR4";
    case PrimOp::kAnd2: return "AND2";
    case PrimOp::kAnd3: return "AND3";
    case PrimOp::kAnd4: return "AND4";
    case PrimOp::kOr2: return "OR2";
    case PrimOp::kOr3: return "OR3";
    case PrimOp::kOr4: return "OR4";
    case PrimOp::kXor2: return "XOR2";
    case PrimOp::kXnor2: return "XNOR2";
    case PrimOp::kMux2: return "MUX2";
    case PrimOp::kMux4: return "MUX4";
    case PrimOp::kHalfAdder: return "HA";
    case PrimOp::kFullAdder: return "FA";
    case PrimOp::kDff: return "DFF";
    case PrimOp::kDffR: return "DFFR";
    case PrimOp::kDffE: return "DFFE";
  }
  return "?";
}

liberty::CellFunction defaultFunction(PrimOp op) noexcept {
  using liberty::CellFunction;
  switch (op) {
    case PrimOp::kConst0: return CellFunction::kTieLo;
    case PrimOp::kConst1: return CellFunction::kTieHi;
    case PrimOp::kInv: return CellFunction::kInv;
    case PrimOp::kBuf: return CellFunction::kBuf;
    case PrimOp::kNand2: return CellFunction::kNand2;
    case PrimOp::kNand2B: return CellFunction::kNand2B;
    case PrimOp::kNand3: return CellFunction::kNand3;
    case PrimOp::kNand4: return CellFunction::kNand4;
    case PrimOp::kNor2: return CellFunction::kNor2;
    case PrimOp::kNor2B: return CellFunction::kNor2B;
    case PrimOp::kNor3: return CellFunction::kNor3;
    case PrimOp::kNor4: return CellFunction::kNor4;
    case PrimOp::kAnd2: return CellFunction::kAnd2;
    case PrimOp::kAnd3: return CellFunction::kAnd3;
    case PrimOp::kAnd4: return CellFunction::kAnd4;
    case PrimOp::kOr2: return CellFunction::kOr2;
    case PrimOp::kOr3: return CellFunction::kOr3;
    case PrimOp::kOr4: return CellFunction::kOr4;
    case PrimOp::kXor2: return CellFunction::kXor2;
    case PrimOp::kXnor2: return CellFunction::kXnor2;
    case PrimOp::kMux2: return CellFunction::kMux2;
    case PrimOp::kMux4: return CellFunction::kMux4;
    case PrimOp::kHalfAdder: return CellFunction::kHalfAdder;
    case PrimOp::kFullAdder: return CellFunction::kFullAdder;
    case PrimOp::kDff: return CellFunction::kDff;
    case PrimOp::kDffR: return CellFunction::kDffR;
    case PrimOp::kDffE: return CellFunction::kDffE;
  }
  return CellFunction::kInv;
}

NetIndex Design::addNet(std::string name) {
  nets_.push_back(Net{std::move(name), kNoInst, 0, {}, false});
  return static_cast<NetIndex>(nets_.size() - 1);
}

InstIndex Design::addInstance(std::string name, PrimOp op,
                              std::vector<NetIndex> inputs,
                              std::vector<NetIndex> outputs) {
  // Validated with thrown errors (not just assert) so corrupt wiring — a
  // multi-driven net, a mis-sized connection list, a dangling net index — is
  // rejected in release builds too, at the call that introduces it rather
  // than deep inside levelization or timing propagation.
  if (inputs.size() != numInputs(op)) {
    throw std::invalid_argument("instance '" + name + "': " +
                                std::to_string(inputs.size()) +
                                " inputs, op needs " +
                                std::to_string(numInputs(op)));
  }
  if (outputs.size() != numOutputs(op)) {
    throw std::invalid_argument("instance '" + name + "': " +
                                std::to_string(outputs.size()) +
                                " outputs, op needs " +
                                std::to_string(numOutputs(op)));
  }
  for (const NetIndex net : inputs) {
    if (net >= nets_.size()) {
      throw std::invalid_argument("instance '" + name +
                                  "': input net index out of range");
    }
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const NetIndex net = outputs[i];
    if (net >= nets_.size()) {
      throw std::invalid_argument("instance '" + name +
                                  "': output net index out of range");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (outputs[j] == net) {
        throw std::invalid_argument("instance '" + name + "': net '" +
                                    nets_[net].name +
                                    "' connected to two output slots");
      }
    }
    if (nets_[net].driver != kNoInst) {
      throw std::invalid_argument(
          "instance '" + name + "': net '" + nets_[net].name +
          "' is already driven by instance '" +
          instances_[nets_[net].driver].name + "'");
    }
  }
  const auto index = static_cast<InstIndex>(instances_.size());
  for (std::uint32_t slot = 0; slot < inputs.size(); ++slot) {
    nets_[inputs[slot]].sinks.push_back({index, slot});
  }
  for (std::uint32_t slot = 0; slot < outputs.size(); ++slot) {
    Net& net = nets_[outputs[slot]];
    net.driver = index;
    net.driverSlot = slot;
  }
  instances_.push_back(Instance{std::move(name), op, nullptr,
                                std::move(inputs), std::move(outputs), true});
  return index;
}

void Design::addPort(std::string name, PortDirection direction, NetIndex net) {
  assert(net < nets_.size());
  if (direction == PortDirection::kOutput) nets_[net].isPrimaryOutput = true;
  ports_.push_back(Port{std::move(name), direction, net});
}

void Design::reconnectInput(InstIndex instance, std::uint32_t slot,
                            NetIndex netIndex) {
  Instance& inst = instances_[instance];
  assert(slot < inst.inputs.size());
  const NetIndex old = inst.inputs[slot];
  if (old == netIndex) return;
  auto& oldSinks = nets_[old].sinks;
  oldSinks.erase(
      std::remove(oldSinks.begin(), oldSinks.end(), SinkRef{instance, slot}),
      oldSinks.end());
  inst.inputs[slot] = netIndex;
  nets_[netIndex].sinks.push_back({instance, slot});
}

void Design::removeInstance(InstIndex instance) {
  Instance& inst = instances_[instance];
  if (!inst.alive) return;
  for (std::uint32_t slot = 0; slot < inst.inputs.size(); ++slot) {
    auto& sinks = nets_[inst.inputs[slot]].sinks;
    sinks.erase(
        std::remove(sinks.begin(), sinks.end(), SinkRef{instance, slot}),
        sinks.end());
  }
  for (NetIndex out : inst.outputs) {
    nets_[out].driver = kNoInst;
    nets_[out].driverSlot = 0;
  }
  inst.alive = false;
  inst.cell = nullptr;
}

std::size_t Design::gateCount() const noexcept {
  std::size_t n = 0;
  for (const Instance& inst : instances_) {
    if (inst.alive) ++n;
  }
  return n;
}

double Design::totalArea() const noexcept {
  double area = 0.0;
  for (const Instance& inst : instances_) {
    if (inst.alive && inst.cell != nullptr) area += inst.cell->area();
  }
  return area;
}

std::map<std::string, std::size_t> Design::cellUsage() const {
  std::map<std::string, std::size_t> usage;
  for (const Instance& inst : instances_) {
    if (inst.alive && inst.cell != nullptr) ++usage[inst.cell->name()];
  }
  return usage;
}

std::string Design::validate() const {
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    if (!inst.alive) continue;
    if (inst.inputs.size() != numInputs(inst.op)) {
      return "instance " + inst.name + ": wrong input count";
    }
    if (inst.outputs.size() != numOutputs(inst.op)) {
      return "instance " + inst.name + ": wrong output count";
    }
    for (std::uint32_t slot = 0; slot < inst.inputs.size(); ++slot) {
      const Net& net = nets_[inst.inputs[slot]];
      const SinkRef ref{static_cast<InstIndex>(i), slot};
      if (std::find(net.sinks.begin(), net.sinks.end(), ref) ==
          net.sinks.end()) {
        return "instance " + inst.name + ": input slot not in net sinks";
      }
    }
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      const Net& net = nets_[inst.outputs[slot]];
      if (net.driver != static_cast<InstIndex>(i) || net.driverSlot != slot) {
        return "instance " + inst.name + ": output net driver mismatch";
      }
    }
  }
  for (const Net& net : nets_) {
    for (const SinkRef& sink : net.sinks) {
      if (sink.instance >= instances_.size() ||
          !instances_[sink.instance].alive) {
        return "net " + net.name + ": sink references dead instance";
      }
    }
    if (net.driver != kNoInst && !instances_[net.driver].alive) {
      return "net " + net.name + ": driven by dead instance";
    }
  }
  return {};
}

std::string Design::freshName(const std::string& stem) {
  return stem + "_" + std::to_string(name_counter_++);
}

}  // namespace sct::netlist
