#include "netlist/noc.hpp"

#include <cassert>
#include <string>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/structures.hpp"
#include "numeric/rng.hpp"

namespace sct::netlist {
namespace {

std::size_t bitsFor(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits == 0 ? 1 : bits;
}

Bus constantBus(NetlistBuilder& b, std::size_t value, std::size_t width) {
  Bus bus;
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(b.constant(((value >> i) & std::size_t{1}) != 0));
  }
  return bus;
}

/// Binary encoding of a one-hot bus (OR of the positions with each bit set).
Bus binaryFromOneHot(NetlistBuilder& b, const Bus& oneHot, std::size_t width) {
  Bus binary;
  for (std::size_t bit = 0; bit < width; ++bit) {
    Bus terms;
    for (std::size_t i = 0; i < oneHot.size(); ++i) {
      if ((i >> bit) & std::size_t{1}) terms.push_back(oneHot[i]);
    }
    binary.push_back(terms.empty() ? b.constant(false) : b.orTree(terms));
  }
  return binary;
}

}  // namespace

Design buildNocRouter(const NocConfig& config) {
  assert(config.ports >= 2);
  assert(config.vcs >= 1);
  assert(config.bufferDepth >= 1);
  const std::size_t addrBits = bitsFor(config.ports);
  assert(config.flitWidth > addrBits);
  Design design("noc");
  NetlistBuilder b(design);
  numeric::Rng rng(config.seed);
  const std::size_t w = config.flitWidth;
  const std::size_t vcBits = bitsFor(config.vcs);
  const std::size_t portBits = bitsFor(config.ports);

  // --- input stage: per-port, per-VC wormhole flit buffers ----------------
  // The head flit's top addrBits bits carry the destination port.
  std::vector<Bus> heads(config.ports);
  std::vector<NetIndex> headValid(config.ports);
  Bus allValids;
  for (std::size_t p = 0; p < config.ports; ++p) {
    const std::string stem = "p" + std::to_string(p);
    const Bus flitIn = b.inputBus(stem + "_flit", w);
    const NetIndex valid = b.inputPort(stem + "_valid");
    const Bus vcSel = b.inputBus(stem + "_vc", vcBits);
    allValids.push_back(valid);
    const Bus vcOneHot = b.decoder(vcSel);

    std::vector<Bus> vcHeads;
    Bus vcValids;
    for (std::size_t v = 0; v < config.vcs; ++v) {
      const NetIndex we = b.and2(valid, vcOneHot[v]);
      Bus stage = flitIn;
      NetIndex vld = we;
      for (std::size_t d = 0; d < config.bufferDepth; ++d) {
        stage = b.busDff(stage, PrimOp::kDffE, we);
        vld = b.dff(vld, PrimOp::kDffR);
      }
      vcHeads.push_back(stage);
      vcValids.push_back(vld);
    }
    headValid[p] = b.orTree(vcValids);

    // Serviced-VC pointer cycles whenever any VC holds a head flit.
    const Bus served = grayCounter(b, vcBits, headValid[p]);
    while (vcHeads.size() < (std::size_t{1} << vcBits)) {
      vcHeads.push_back(constantBus(b, 0, w));
    }
    heads[p] = b.muxTree(vcHeads, served);
  }

  // --- route compute: destination field vs output-port index --------------
  std::vector<Bus> dest(config.ports);
  for (std::size_t p = 0; p < config.ports; ++p) {
    dest[p] = Bus(heads[p].end() - static_cast<std::ptrdiff_t>(addrBits),
                  heads[p].end());
  }

  // --- per-output VC allocation + crossbar traversal ----------------------
  for (std::size_t o = 0; o < config.ports; ++o) {
    const std::string stem = "p" + std::to_string(o);
    Bus requests;
    for (std::size_t p = 0; p < config.ports; ++p) {
      requests.push_back(
          b.and2(headValid[p], b.equal(dest[p], constantBus(b, o, addrBits))));
    }
    const NetIndex anyReq = b.orTree(requests);

    // Round-robin arbitration: rotate the request vector right by an age
    // counter, priority-encode, rotate the grant back left.
    const Bus age = grayCounter(b, portBits, anyReq);
    Bus doubled = requests;
    doubled.insert(doubled.end(), requests.begin(), requests.end());
    const Bus rotated = b.shiftRight(doubled, age);
    const PriorityEncoded pe = priorityEncode(
        b, Bus(rotated.begin(),
               rotated.begin() + static_cast<std::ptrdiff_t>(config.ports)));
    Bus padded = pe.grant;
    while (padded.size() < 2 * config.ports) {
      padded.push_back(b.constant(false));
    }
    const Bus unrotated = b.shiftLeft(padded, age);
    Bus grant;
    for (std::size_t p = 0; p < config.ports; ++p) {
      grant.push_back(b.or2(unrotated[p], unrotated[p + config.ports]));
    }

    // Crossbar: binary-encode the grant and mux the winning head flit.
    const Bus sel = binaryFromOneHot(b, grant, portBits);
    std::vector<Bus> choices = heads;
    while (choices.size() < (std::size_t{1} << portBits)) {
      choices.push_back(constantBus(b, 0, w));
    }
    const Bus xbar = b.muxTree(choices, sel);
    b.outputBus(stem + "_out", b.busDff(xbar, PrimOp::kDffE, pe.any));
    b.outputPort(stem + "_out_valid", b.dff(pe.any, PrimOp::kDffR));

    // Credit tracking: sent-vs-freed counters; busy while they disagree.
    const std::size_t creditBits = bitsFor(config.vcs * config.bufferDepth) + 1;
    const NetIndex creditIn = b.inputPort(stem + "_credit");
    const Bus sent = grayCounter(b, creditBits, pe.any);
    const Bus freed = grayCounter(b, creditBits, creditIn);
    b.outputPort(stem + "_busy",
                 b.dff(b.inv(b.equal(sent, freed)), PrimOp::kDffR));
  }

  // --- control blob + BIST, mirroring the DSP conventions -----------------
  Bus ctrlIn = allValids;
  for (std::size_t p = 0; p < config.ports; ++p) {
    ctrlIn.push_back(dest[p].front());
  }
  const Bus status = b.randomLogic(ctrlIn, 2 * config.ports, 3, rng);
  b.outputBus("status", b.busDff(status, PrimOp::kDffR));
  const Bus bist = lfsr(b, 12, {11, 10, 7, 5});
  b.outputBus("bist", Bus(bist.begin(), bist.begin() + 4));

  assert(design.validate().empty());
  return design;
}

}  // namespace sct::netlist
