#pragma once
// Extended structural generators on top of NetlistBuilder: faster adder
// topologies (carry-select, Kogge-Stone), comparators, priority encoders,
// counters, LFSRs and popcount trees. These give subject designs realistic
// structural diversity (the paper's path-depth population depends on it)
// and are exercised by the alternative evaluation design.

#include "netlist/builder.hpp"

namespace sct::netlist {

/// Carry-select adder: blocks of `blockWidth` ripple adders computed for
/// both carry-in values, selected by the block carry chain. Shallower than
/// ripple (depth ~ blockWidth + blocks) at ~2x the adder area.
[[nodiscard]] Bus carrySelectAdder(NetlistBuilder& b, const Bus& x,
                                   const Bus& y, NetIndex cin,
                                   std::size_t blockWidth = 4,
                                   NetIndex* cout = nullptr);

/// Kogge-Stone parallel-prefix adder: log-depth carry tree, the fastest
/// (and largest) classic adder topology.
[[nodiscard]] Bus koggeStoneAdder(NetlistBuilder& b, const Bus& x,
                                  const Bus& y, NetIndex cin,
                                  NetIndex* cout = nullptr);

/// Unsigned less-than comparator (x < y), built as a borrow chain.
[[nodiscard]] NetIndex lessThan(NetlistBuilder& b, const Bus& x, const Bus& y);

/// Priority encoder: returns (onehot grant bus, any-request flag). Bit 0
/// has the highest priority, matching the interrupt-controller convention.
struct PriorityEncoded {
  Bus grant;
  NetIndex any = kNoNet;
};
[[nodiscard]] PriorityEncoded priorityEncode(NetlistBuilder& b,
                                             const Bus& requests);

/// Popcount: number of set bits, using a full/half-adder reduction tree.
[[nodiscard]] Bus popcount(NetlistBuilder& b, const Bus& bits);

/// Gray-code counter register of the given width (q outputs).
[[nodiscard]] Bus grayCounter(NetlistBuilder& b, std::size_t width,
                              NetIndex enable);

/// Fibonacci LFSR register with the given feedback taps (bit indices into
/// the state; the paper-standard maximal-length polynomial is up to the
/// caller). Returns the state bus.
[[nodiscard]] Bus lfsr(NetlistBuilder& b, std::size_t width,
                       const std::vector<std::size_t>& taps);

}  // namespace sct::netlist
