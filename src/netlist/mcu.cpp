#include "netlist/mcu.hpp"

#include <algorithm>
#include <cassert>

#include "netlist/builder.hpp"

namespace sct::netlist {
namespace {

/// Round down to a power of two exponent: log2 of a power-of-two value.
std::size_t log2Exact(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  assert((std::size_t{1} << bits) == n && "value must be a power of two");
  return bits;
}

Bus slice(const Bus& bus, std::size_t lo, std::size_t count) {
  assert(lo + count <= bus.size());
  return Bus(bus.begin() + static_cast<std::ptrdiff_t>(lo),
             bus.begin() + static_cast<std::ptrdiff_t>(lo + count));
}

/// Slice that tolerates narrow sources by wrapping around (used where a
/// configurable block is narrower than the datapath).
Bus sliceWrap(const Bus& bus, std::size_t lo, std::size_t count) {
  assert(!bus.empty());
  Bus out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(bus[(lo + i) % bus.size()]);
  }
  return out;
}

/// 32-bit timer block: up-counter with compare match -> interrupt line.
NetIndex timerBlock(NetlistBuilder& b, const Bus& busWData, NetIndex loadEn,
                    NetIndex countEn) {
  // Compare register written from the bus.
  const Bus compare = b.busDff(busWData, PrimOp::kDffE, loadEn);
  // Counter: q nets are created first so the increment feedback loop can be
  // closed through the enabled registers.
  Design& d = b.design();
  Bus q;
  q.reserve(busWData.size());
  for (std::size_t i = 0; i < busWData.size(); ++i) {
    q.push_back(d.addNet(d.freshName("tmr_q")));
  }
  Bus inc = b.incrementer(q);
  for (std::size_t i = 0; i < busWData.size(); ++i) {
    d.addInstance(d.freshName("tmr_reg"), PrimOp::kDffE, {inc[i], countEn},
                  {q[i]});
  }
  return b.equal(q, compare);
}

/// DMA channel: address register + incrementer, length countdown, busy flag.
NetIndex dmaChannel(NetlistBuilder& b, const Bus& busWData, NetIndex loadEn,
                    NetIndex advance, numeric::Rng& rng) {
  Design& d = b.design();
  const std::size_t w = busWData.size();
  // Address register with increment-on-advance.
  Bus addrQ;
  for (std::size_t i = 0; i < w; ++i) {
    addrQ.push_back(d.addNet(d.freshName("dma_a")));
  }
  Bus addrInc = b.incrementer(addrQ);
  Bus addrD = b.mux2Bus(addrInc, busWData, loadEn);
  for (std::size_t i = 0; i < w; ++i) {
    d.addInstance(d.freshName("dma_areg"), PrimOp::kDffE, {addrD[i], advance},
                  {addrQ[i]});
  }
  // Control mini-FSM from random logic.
  Bus state;
  for (std::size_t i = 0; i < 4; ++i) {
    state.push_back(d.addNet(d.freshName("dma_s")));
  }
  Bus fsmIn = state;
  fsmIn.push_back(loadEn);
  fsmIn.push_back(advance);
  fsmIn.push_back(addrQ[0]);
  Bus next = b.randomLogic(fsmIn, 4, 2, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    d.addInstance(d.freshName("dma_sreg"), PrimOp::kDffR, {next[i]},
                  {state[i]});
  }
  return b.orTree(state);
}

}  // namespace

Design generateMcu(const McuConfig& config) {
  Design design("mcu");
  NetlistBuilder b(design);
  numeric::Rng rng(config.seed);
  const std::size_t w = config.width;

  // ---------------------------------------------------------------- inputs
  const Bus sramRData = b.inputBus("sram_rdata", w);
  const Bus extIrq = b.inputBus("ext_irq", config.interruptSources / 2);
  const Bus gpioIn = b.inputBus("gpio_in", config.gpioWidth);
  const NetIndex uartRx = b.inputPort("uart_rx");
  const NetIndex extStall = b.inputPort("ext_stall");

  // ------------------------------------------------------------- fetch/PC
  // PC register, incrementer and branch target adder.
  Bus pcQ;
  for (std::size_t i = 0; i < w; ++i) {
    pcQ.push_back(design.addNet(design.freshName("pc")));
  }
  const Bus instr = b.busDff(sramRData, PrimOp::kDffR);  // instruction reg
  const Bus pcInc = b.incrementer(pcQ);
  // Sign-extend-ish immediate: low half of instruction replicated.
  Bus imm = slice(instr, 0, w / 2);
  while (imm.size() < w) imm.push_back(instr[w / 2 - 1]);
  const Bus branchTarget = b.rippleAdder(pcQ, imm, b.constant(false));

  // ---------------------------------------------------------------- decode
  Bus decodeIn = slice(instr, 0, 24);
  decodeIn.push_back(extStall);
  Bus controls =
      b.randomLogic(decodeIn, config.decodeOutputs, config.decodeDepth, rng);
  // Control FSM.
  Bus fsmState;
  for (std::size_t i = 0; i < 6; ++i) {
    fsmState.push_back(design.addNet(design.freshName("fsm")));
  }
  Bus fsmIn = fsmState;
  for (std::size_t i = 0; i < 8; ++i) fsmIn.push_back(instr[i]);
  fsmIn.push_back(extStall);
  Bus fsmNext = b.randomLogic(fsmIn, 6, 3, rng);
  for (std::size_t i = 0; i < 6; ++i) {
    design.addInstance(design.freshName("fsm_reg"), PrimOp::kDffR,
                       {fsmNext[i]}, {fsmState[i]});
  }

  // ---------------------------------------------------------- register file
  const std::size_t regBits = log2Exact(config.registers);
  const Bus writeAddr = slice(instr, 0, regBits);
  std::vector<Bus> readAddrs;
  for (std::size_t p = 0; p < config.readPorts; ++p) {
    readAddrs.push_back(slice(instr, (p + 1) * regBits, regBits));
  }
  // Writeback data is defined later; use a staging register bus so the
  // regfile can be constructed now (models the writeback pipeline stage).
  Bus writeback;
  for (std::size_t i = 0; i < w; ++i) {
    writeback.push_back(design.addNet(design.freshName("wb")));
  }
  const NetIndex regWriteEn = controls[0];
  std::vector<Bus> readData = b.registerFile(
      config.registers, w, writeAddr, writeback, regWriteEn, readAddrs);

  // Banked shadow registers for interrupt context: a second, smaller file.
  if (config.bankedRegisters > 1) {
    const std::size_t bankBits = log2Exact(config.bankedRegisters);
    std::vector<Bus> bankRead = b.registerFile(
        config.bankedRegisters, w, slice(instr, 4, bankBits), writeback,
        controls[1], {slice(instr, 8, bankBits)});
    // Bank select mux on read port 0.
    readData[0] = b.mux2Bus(readData[0], bankRead[0], controls[2]);
  }

  // ------------------------------------------------------------------- ALU
  const Bus opA = readData[0];
  // Forwarding mux: operand B can take the writeback value.
  const Bus opB = b.mux2Bus(readData[1], writeback, controls[3]);
  const NetIndex subtract = controls[4];
  Bus bXor;
  bXor.reserve(w);
  for (std::size_t i = 0; i < w; ++i) bXor.push_back(b.xor2(opB[i], subtract));
  NetIndex aluCarry = kNoNet;
  const Bus sum = b.rippleAdder(opA, bXor, subtract, &aluCarry);
  const Bus logicAnd = b.bitwise(PrimOp::kAnd2, opA, opB);
  const Bus logicOr = b.bitwise(PrimOp::kOr2, opA, opB);
  const Bus logicXor = b.bitwise(PrimOp::kXor2, opA, opB);
  const Bus aluOut =
      b.muxTree({sum, logicAnd, logicOr, logicXor}, {controls[5], controls[6]});
  const NetIndex zeroFlag = b.inv(b.orTree(aluOut));
  const NetIndex negFlag = aluOut[w - 1];
  const NetIndex ovfFlag =
      b.xor2(aluCarry, b.xor2(opA[w - 1], bXor[w - 1]));
  const NetIndex takeBranch =
      b.mux2(zeroFlag, b.or2(negFlag, ovfFlag), controls[7]);

  // PC update.
  const Bus pcNext = b.mux2Bus(pcInc, branchTarget, takeBranch);
  for (std::size_t i = 0; i < w; ++i) {
    design.addInstance(design.freshName("pc_reg"), PrimOp::kDffR, {pcNext[i]},
                       {pcQ[i]});
  }

  // --------------------------------------------------------------- shifter
  const Bus shamt = slice(opB, 0, 5);
  const Bus shl = b.shiftLeft(aluOut, shamt);
  const Bus shr = b.shiftRight(aluOut, shamt);
  const Bus shifted = b.mux2Bus(shl, shr, controls[8]);
  const Bus shiftResult = b.mux2Bus(aluOut, shifted, controls[9]);

  // ------------------------------------------------------------------- MAC
  Bus macResult;
  for (std::size_t m = 0; m < config.macUnits; ++m) {
    // Operand registers (multi-cycle MAC), carry-save array multiplier,
    // accumulate register.
    const Bus ma =
        b.busDff(slice(opA, 0, config.macWidth), PrimOp::kDffE, controls[10]);
    const Bus mb =
        b.busDff(slice(opB, 0, config.macWidth), PrimOp::kDffE, controls[10]);
    const Bus product = b.multiplier(ma, mb);
    Bus accQ;
    for (std::size_t i = 0; i < product.size(); ++i) {
      accQ.push_back(design.addNet(design.freshName("acc")));
    }
    const Bus accSum = b.rippleAdder(accQ, product, b.constant(false));
    for (std::size_t i = 0; i < product.size(); ++i) {
      design.addInstance(design.freshName("acc_reg"), PrimOp::kDffE,
                         {accSum[i], controls[11 + m]}, {accQ[i]});
    }
    if (macResult.empty()) {
      macResult = sliceWrap(accQ, 0, w);
    } else {
      macResult = b.mux2Bus(macResult, sliceWrap(accQ, 0, w), controls[13]);
    }
  }
  if (macResult.empty()) {
    macResult.assign(w, b.constant(false));  // no MAC units configured
  }

  // -------------------------------------------------------------- bus unit
  // Address generation: base + immediate.
  const Bus memAddr = b.rippleAdder(opA, imm, b.constant(false));
  const Bus addrReg = b.busDff(memAddr, PrimOp::kDffE, controls[14]);
  const Bus wdataReg = b.busDff(readData.back(), PrimOp::kDffE, controls[15]);
  // Slave decode on high address bits (AHB-style 8-region map).
  const Bus slaveSel = b.decoder(slice(addrReg, w - 3, 3));

  // Cache tag array: tags in flops, data in the external SRAM macro.
  NetIndex cacheHit = b.constant(false);
  if (config.cacheTagEntries > 0) {
    const std::size_t idxBits = log2Exact(config.cacheTagEntries);
    const Bus index = slice(addrReg, 2, idxBits);
    const Bus tag = slice(addrReg, 2 + idxBits, config.cacheTagBits);
    const Bus lineSel = b.decoder(index);
    Bus hits;
    for (std::size_t e = 0; e < config.cacheTagEntries; ++e) {
      const NetIndex we = b.and2(lineSel[e], controls[16]);
      const Bus storedTag = b.busDff(tag, PrimOp::kDffE, we);
      const NetIndex valid = b.dff(b.or2(we, controls[17]), PrimOp::kDffR);
      hits.push_back(b.and2(valid, b.equal(storedTag, tag)));
    }
    cacheHit = b.orTree(hits);
  }

  // ---------------------------------------------------------- peripherals
  Bus irqLines = extIrq;
  for (std::size_t t = 0; t < config.timers; ++t) {
    irqLines.push_back(
        timerBlock(b, wdataReg, controls[18 + (t % 8)], controls[26]));
  }
  for (std::size_t c = 0; c < config.dmaChannels; ++c) {
    irqLines.push_back(
        dmaChannel(b, addrReg, controls[27 + (c % 4)], controls[31], rng));
  }

  // GPIO.
  const Bus gpioOut =
      b.busDff(b.mux2Bus(wdataReg, addrReg, controls[32]), PrimOp::kDffE,
               controls[33]);
  Bus gpioOutWide;
  for (std::size_t i = 0; i < config.gpioWidth; ++i) {
    gpioOutWide.push_back(gpioOut[i % w]);
  }
  const Bus gpioSync1 = b.busDff(gpioIn, PrimOp::kDff);
  const Bus gpioSync2 = b.busDff(gpioSync1, PrimOp::kDff);
  const Bus gpioDir = b.busDff(sliceWrap(gpioSync2, 0, w), PrimOp::kDffE,
                               controls[34]);

  // UART: baud counter + shift registers.
  const Bus baudQ = [&] {
    Bus q;
    for (std::size_t i = 0; i < 12; ++i) {
      q.push_back(design.addNet(design.freshName("baud")));
    }
    Bus inc = b.incrementer(q);
    for (std::size_t i = 0; i < 12; ++i) {
      design.addInstance(design.freshName("baud_reg"), PrimOp::kDffR, {inc[i]},
                         {q[i]});
    }
    return q;
  }();
  const NetIndex baudTick = b.andTree(slice(baudQ, 6, 6));
  Bus uartShift;
  NetIndex shiftIn = uartRx;
  for (std::size_t i = 0; i < 10; ++i) {
    shiftIn = b.dff(shiftIn, PrimOp::kDffE, baudTick);
    uartShift.push_back(shiftIn);
  }

  // Interrupt controller: pending/mask registers + priority chain.
  while (irqLines.size() < config.interruptSources) {
    irqLines.push_back(gpioSync2[irqLines.size() % gpioSync2.size()]);
  }
  irqLines.resize(config.interruptSources);
  const Bus pending = b.busDff(irqLines, PrimOp::kDffR);
  const Bus mask = b.busDff(sliceWrap(wdataReg, 0, config.interruptSources),
                            PrimOp::kDffE, controls[35]);
  const Bus masked = b.bitwise(PrimOp::kAnd2, pending, b.notBus(mask));
  // Priority chain: grant[i] = masked[i] & none-before.
  Bus grant;
  NetIndex anyBefore = masked[0];
  grant.push_back(masked[0]);
  for (std::size_t i = 1; i < masked.size(); ++i) {
    grant.push_back(b.and2(masked[i], b.inv(anyBefore)));
    anyBefore = b.or2(anyBefore, masked[i]);
  }
  const NetIndex irqValid = anyBefore;

  // ------------------------------------------------------------ writeback
  // Read data returning from the bus fabric.
  const Bus rdataMux = b.muxTree(
      {sramRData, macResult, sliceWrap(gpioSync2, 0, w),
       [&] {
         Bus v = pending;
         while (v.size() < w) v.push_back(cacheHit);
         v.resize(w);
         return v;
       }()},
      {controls[36], controls[37]});
  const Bus wbValue =
      b.mux2Bus(shiftResult, rdataMux, controls[38]);
  for (std::size_t i = 0; i < w; ++i) {
    design.addInstance(design.freshName("wb_reg"), PrimOp::kDff, {wbValue[i]},
                       {writeback[i]});
  }

  // --------------------------------------------------------------- outputs
  b.outputBus("sram_addr", addrReg);
  b.outputBus("sram_wdata", wdataReg);
  b.outputPort("sram_we", b.and2(controls[39], slaveSel[0]));
  b.outputBus("gpio_out", gpioOutWide);
  b.outputBus("gpio_dir", gpioDir);
  b.outputPort("uart_tx", uartShift.back());
  b.outputPort("irq_valid", b.dff(irqValid, PrimOp::kDffR));
  b.outputPort("cache_hit", cacheHit);
  b.outputBus("debug_state", fsmState);
  b.outputPort("dbg_grant", b.orTree(grant));

  assert(design.validate().empty());
  return design;
}

Design generateAccumulator(std::size_t width, std::uint64_t seed) {
  Design design("accumulator");
  NetlistBuilder b(design);
  numeric::Rng rng(seed);

  const Bus in = b.inputBus("in", width);
  const NetIndex loadEn = b.inputPort("load");
  Bus accQ;
  for (std::size_t i = 0; i < width; ++i) {
    accQ.push_back(design.addNet(design.freshName("acc")));
  }
  const Bus sum = b.rippleAdder(accQ, in, b.constant(false));
  const Bus d = b.mux2Bus(sum, in, loadEn);
  for (std::size_t i = 0; i < width; ++i) {
    design.addInstance(design.freshName("acc_reg"), PrimOp::kDffR, {d[i]},
                       {accQ[i]});
  }
  Bus ctrlIn = slice(accQ, 0, std::min<std::size_t>(8, width));
  ctrlIn.push_back(loadEn);
  const Bus flags = b.randomLogic(ctrlIn, 4, 2, rng);
  b.outputBus("acc", accQ);
  b.outputBus("flags", b.busDff(flags, PrimOp::kDffR));
  assert(design.validate().empty());
  return design;
}

}  // namespace sct::netlist
