#pragma once
// Structural Verilog export/import for gate-level designs — the standard
// EDA interchange artifact around a synthesis flow. The writer emits a flat
// module with named port connections; mapped instances use their library
// cell name as master, unmapped instances the primitive name. The reader
// accepts the writer's subset (flat, named connections, escaped
// identifiers) and rebinds cells against a library when one is provided.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace sct::netlist {

class VerilogError : public std::runtime_error {
 public:
  VerilogError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Writes the design as a flat structural Verilog module.
void writeVerilog(std::ostream& out, const Design& design);
[[nodiscard]] std::string writeVerilogToString(const Design& design);

/// Parses a flat structural module produced by writeVerilog. When `library`
/// is non-null, instance masters are resolved against it and bound;
/// otherwise masters must be primitive names (INV, NAND2, ...). Throws
/// VerilogError on malformed input or unknown masters.
[[nodiscard]] Design readVerilog(std::istream& in,
                                 const liberty::Library* library = nullptr);
[[nodiscard]] Design readVerilogFromString(
    const std::string& text, const liberty::Library* library = nullptr);

}  // namespace sct::netlist
