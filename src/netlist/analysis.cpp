#include "netlist/analysis.hpp"

#include <ostream>

namespace sct::netlist {

DesignStats analyzeDesign(const Design& design) {
  DesignStats stats;
  for (const Instance& inst : design.instances()) {
    if (!inst.alive) continue;
    ++stats.gates;
    ++stats.opHistogram[inst.op];
    if (isSequential(inst.op)) {
      ++stats.sequential;
    } else if (numInputs(inst.op) == 0) {
      ++stats.ties;
    } else {
      ++stats.combinational;
    }
  }
  std::size_t fanoutSum = 0;
  std::size_t drivenNets = 0;
  for (const Net& net : design.nets()) {
    if (net.driver == kNoInst && net.sinks.empty()) continue;
    ++stats.nets;
    if (!net.sinks.empty()) {
      ++drivenNets;
      fanoutSum += net.sinks.size();
      stats.maxFanout = std::max(stats.maxFanout, net.sinks.size());
    }
  }
  stats.averageFanout = drivenNets > 0
                            ? static_cast<double>(fanoutSum) /
                                  static_cast<double>(drivenNets)
                            : 0.0;
  for (const Port& port : design.ports()) {
    if (port.direction == PortDirection::kInput) {
      ++stats.primaryInputs;
    } else {
      ++stats.primaryOutputs;
    }
  }
  return stats;
}

std::size_t sweepDeadLogic(Design& design) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < design.instanceCount(); ++i) {
      const Instance& inst = design.instance(static_cast<InstIndex>(i));
      if (!inst.alive) continue;
      // Sequential elements are observable state; keep them. (A stricter
      // sweep would trace observability through flops, but synthesized
      // registers are architectural here.)
      if (isSequential(inst.op)) continue;
      bool observed = false;
      for (NetIndex out : inst.outputs) {
        const Net& net = design.net(out);
        if (net.isPrimaryOutput || !net.sinks.empty()) {
          observed = true;
          break;
        }
      }
      if (!observed) {
        design.removeInstance(static_cast<InstIndex>(i));
        ++removed;
        changed = true;  // upstream gates may have become dead
      }
    }
  }
  return removed;
}

bool writeDot(std::ostream& out, const Design& design,
              std::size_t maxInstances) {
  if (design.gateCount() > maxInstances) return false;
  out << "digraph \"" << design.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (std::size_t i = 0; i < design.instanceCount(); ++i) {
    const Instance& inst = design.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    out << "  i" << i << " [label=\"" << inst.name << "\\n"
        << (inst.cell != nullptr ? inst.cell->name()
                                 : std::string(toString(inst.op)))
        << "\"";
    if (isSequential(inst.op)) out << ", style=filled, fillcolor=lightblue";
    out << "];\n";
  }
  auto portId = [](std::size_t index) { return "p" + std::to_string(index); };
  for (std::size_t p = 0; p < design.ports().size(); ++p) {
    const Port& port = design.ports()[p];
    out << "  " << portId(p) << " [label=\"" << port.name << "\", shape="
        << (port.direction == PortDirection::kInput ? "triangle"
                                                    : "invtriangle")
        << "];\n";
  }
  // Edges: driver (instance or input port) -> each sink / output port.
  for (NetIndex n = 0; n < design.netCount(); ++n) {
    const Net& net = design.net(n);
    std::string source;
    if (net.driver != kNoInst) {
      source = "i" + std::to_string(net.driver);
    } else {
      for (std::size_t p = 0; p < design.ports().size(); ++p) {
        const Port& port = design.ports()[p];
        if (port.net == n && port.direction == PortDirection::kInput) {
          source = portId(p);
          break;
        }
      }
    }
    if (source.empty()) continue;
    for (const SinkRef& sink : net.sinks) {
      out << "  " << source << " -> i" << sink.instance << ";\n";
    }
    if (net.isPrimaryOutput) {
      for (std::size_t p = 0; p < design.ports().size(); ++p) {
        const Port& port = design.ports()[p];
        if (port.net == n && port.direction == PortDirection::kOutput) {
          out << "  " << source << " -> " << portId(p) << ";\n";
        }
      }
    }
  }
  out << "}\n";
  return true;
}

}  // namespace sct::netlist
