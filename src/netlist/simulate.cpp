#include "netlist/simulate.hpp"

#include <stdexcept>
#include <string>

namespace sct::netlist {

Simulator::Simulator(const Design& design) : design_(design) {
  values_.assign(design_.netCount(), 0);
  state_.assign(design_.instanceCount(), 0);

  // Kahn levelization over combinational instances (sequential and source
  // instances are boundaries), mirroring the STA's traversal.
  std::vector<std::uint32_t> indegree(design_.instanceCount(), 0);
  std::vector<InstIndex> queue;
  std::size_t combCount = 0;
  for (std::size_t i = 0; i < design_.instanceCount(); ++i) {
    const Instance& inst = design_.instance(static_cast<InstIndex>(i));
    if (!inst.alive) continue;
    if (isSequential(inst.op)) {
      sequential_.push_back(static_cast<InstIndex>(i));
      continue;
    }
    if (numInputs(inst.op) == 0) {
      topo_.push_back(static_cast<InstIndex>(i));  // ties evaluate first
      continue;
    }
    ++combCount;
    std::uint32_t deg = 0;
    for (NetIndex in : inst.inputs) {
      const Net& net = design_.net(in);
      if (net.driver == kNoInst) continue;
      const Instance& drv = design_.instance(net.driver);
      if (drv.alive && !isSequential(drv.op) && numInputs(drv.op) != 0) {
        ++deg;
      }
    }
    indegree[i] = deg;
    if (deg == 0) queue.push_back(static_cast<InstIndex>(i));
  }
  std::size_t processed = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const InstIndex index = queue[head];
    topo_.push_back(index);
    ++processed;
    for (NetIndex out : design_.instance(index).outputs) {
      for (const SinkRef& sink : design_.net(out).sinks) {
        const Instance& target = design_.instance(sink.instance);
        if (!target.alive || isSequential(target.op) ||
            numInputs(target.op) == 0) {
          continue;
        }
        if (--indegree[sink.instance] == 0) queue.push_back(sink.instance);
      }
    }
  }
  if (processed != combCount) {
    throw std::invalid_argument("combinational cycle in design '" +
                                design_.name() + "'");
  }
}

NetIndex Simulator::portNet(std::string_view portName) const {
  for (const Port& port : design_.ports()) {
    if (port.name == portName) return port.net;
  }
  throw std::invalid_argument("no port named '" + std::string(portName) + "'");
}

void Simulator::setInput(std::string_view portName, bool value) {
  values_[portNet(portName)] = value ? 1 : 0;
}

void Simulator::setInputBus(std::string_view stem, std::uint64_t value) {
  for (std::size_t bit = 0;; ++bit) {
    const std::string name =
        std::string(stem) + "[" + std::to_string(bit) + "]";
    bool found = false;
    for (const Port& port : design_.ports()) {
      if (port.name == name) {
        values_[port.net] = ((value >> bit) & 1) != 0 ? 1 : 0;
        found = true;
        break;
      }
    }
    if (!found) {
      if (bit == 0) {
        throw std::invalid_argument("no bus named '" + std::string(stem) + "'");
      }
      return;
    }
  }
}

void Simulator::reset() {
  for (InstIndex ff : sequential_) state_[ff] = 0;
}

bool Simulator::evalOp(const Instance& inst, std::uint32_t slot) const {
  auto in = [&](std::size_t i) { return values_[inst.inputs[i]] != 0; };
  switch (inst.op) {
    case PrimOp::kConst0: return false;
    case PrimOp::kConst1: return true;
    case PrimOp::kInv: return !in(0);
    case PrimOp::kBuf: return in(0);
    case PrimOp::kNand2: return !(in(0) && in(1));
    case PrimOp::kNand2B: return !(in(0) && !in(1));
    case PrimOp::kNand3: return !(in(0) && in(1) && in(2));
    case PrimOp::kNand4: return !(in(0) && in(1) && in(2) && in(3));
    case PrimOp::kNor2: return !(in(0) || in(1));
    case PrimOp::kNor2B: return !(in(0) || !in(1));
    case PrimOp::kNor3: return !(in(0) || in(1) || in(2));
    case PrimOp::kNor4: return !(in(0) || in(1) || in(2) || in(3));
    case PrimOp::kAnd2: return in(0) && in(1);
    case PrimOp::kAnd3: return in(0) && in(1) && in(2);
    case PrimOp::kAnd4: return in(0) && in(1) && in(2) && in(3);
    case PrimOp::kOr2: return in(0) || in(1);
    case PrimOp::kOr3: return in(0) || in(1) || in(2);
    case PrimOp::kOr4: return in(0) || in(1) || in(2) || in(3);
    case PrimOp::kXor2: return in(0) != in(1);
    case PrimOp::kXnor2: return in(0) == in(1);
    case PrimOp::kMux2: return in(2) ? in(1) : in(0);
    case PrimOp::kMux4: {
      const std::size_t sel =
          (in(4) ? 1u : 0u) | (in(5) ? 2u : 0u);
      return in(sel);
    }
    case PrimOp::kHalfAdder:
      return slot == 0 ? (in(0) != in(1)) : (in(0) && in(1));
    case PrimOp::kFullAdder: {
      const int ones = int(in(0)) + int(in(1)) + int(in(2));
      return slot == 0 ? (ones % 2 == 1) : (ones >= 2);
    }
    case PrimOp::kDff:
    case PrimOp::kDffR:
    case PrimOp::kDffE:
      return false;  // handled by state, not here
  }
  return false;
}

void Simulator::evaluate() {
  // Flip-flop outputs reflect their state.
  for (InstIndex ff : sequential_) {
    const Instance& inst = design_.instance(ff);
    values_[inst.outputs[0]] = state_[ff];
  }
  for (InstIndex index : topo_) {
    const Instance& inst = design_.instance(index);
    for (std::uint32_t slot = 0; slot < inst.outputs.size(); ++slot) {
      values_[inst.outputs[slot]] = evalOp(inst, slot) ? 1 : 0;
    }
  }
}

void Simulator::step() {
  evaluate();
  // Capture D values, then commit (all flops clock simultaneously).
  std::vector<char> next(sequential_.size());
  for (std::size_t k = 0; k < sequential_.size(); ++k) {
    const Instance& inst = design_.instance(sequential_[k]);
    const bool d = values_[inst.inputs[0]] != 0;
    if (inst.op == PrimOp::kDffE) {
      const bool enable = values_[inst.inputs[1]] != 0;
      next[k] = enable ? (d ? 1 : 0) : state_[sequential_[k]];
    } else {
      next[k] = d ? 1 : 0;
    }
  }
  for (std::size_t k = 0; k < sequential_.size(); ++k) {
    state_[sequential_[k]] = next[k];
  }
  evaluate();  // outputs reflect the new state
}

bool Simulator::output(std::string_view portName) const {
  // const_cast-free lookup: portNet is const.
  return values_[portNet(portName)] != 0;
}

std::uint64_t Simulator::outputBus(std::string_view stem,
                                   std::size_t width) const {
  std::uint64_t out = 0;
  for (std::size_t bit = 0; bit < width; ++bit) {
    const std::string name =
        std::string(stem) + "[" + std::to_string(bit) + "]";
    if (values_[portNet(name)] != 0) out |= (std::uint64_t{1} << bit);
  }
  return out;
}

}  // namespace sct::netlist
