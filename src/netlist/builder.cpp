#include "netlist/builder.hpp"

#include <cassert>

namespace sct::netlist {

NetIndex NetlistBuilder::gate(PrimOp op, const std::vector<NetIndex>& inputs,
                              const std::string& stem) {
  assert(inputs.size() == numInputs(op));
  const NetIndex out = design_.addNet(design_.freshName(stem));
  design_.addInstance(design_.freshName("u"), op, inputs, {out});
  return out;
}

NetIndex NetlistBuilder::dff(NetIndex d, PrimOp op, NetIndex enable) {
  assert(isSequential(op));
  const NetIndex q = design_.addNet(design_.freshName("q"));
  std::vector<NetIndex> inputs{d};
  if (op == PrimOp::kDffE) {
    assert(enable != kNoNet);
    inputs.push_back(enable);
  } else {
    assert(enable == kNoNet);
  }
  design_.addInstance(design_.freshName("reg"), op, inputs, {q});
  return q;
}

std::pair<NetIndex, NetIndex> NetlistBuilder::fullAdder(NetIndex a, NetIndex b,
                                                        NetIndex ci) {
  const NetIndex sum = design_.addNet(design_.freshName("s"));
  const NetIndex carry = design_.addNet(design_.freshName("co"));
  design_.addInstance(design_.freshName("fa"), PrimOp::kFullAdder, {a, b, ci},
                      {sum, carry});
  return {sum, carry};
}

std::pair<NetIndex, NetIndex> NetlistBuilder::halfAdder(NetIndex a,
                                                        NetIndex b) {
  const NetIndex sum = design_.addNet(design_.freshName("s"));
  const NetIndex carry = design_.addNet(design_.freshName("co"));
  design_.addInstance(design_.freshName("ha"), PrimOp::kHalfAdder, {a, b},
                      {sum, carry});
  return {sum, carry};
}

NetIndex NetlistBuilder::constant(bool value) {
  NetIndex& cached = value ? const1_ : const0_;
  if (cached == kNoNet) {
    cached = design_.addNet(value ? "const1" : "const0");
    design_.addInstance(value ? "tie1" : "tie0",
                        value ? PrimOp::kConst1 : PrimOp::kConst0, {},
                        {cached});
  }
  return cached;
}

NetIndex NetlistBuilder::inputPort(const std::string& name) {
  const NetIndex net = design_.addNet(name);
  design_.addPort(name, PortDirection::kInput, net);
  return net;
}

Bus NetlistBuilder::inputBus(const std::string& name, std::size_t width) {
  Bus bus;
  bus.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus.push_back(inputPort(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void NetlistBuilder::outputPort(const std::string& name, NetIndex net) {
  design_.addPort(name, PortDirection::kOutput, net);
}

void NetlistBuilder::outputBus(const std::string& name, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    outputPort(name + "[" + std::to_string(i) + "]", bus[i]);
  }
}

Bus NetlistBuilder::busDff(const Bus& d, PrimOp op, NetIndex enable) {
  Bus q;
  q.reserve(d.size());
  for (NetIndex bit : d) q.push_back(dff(bit, op, enable));
  return q;
}

Bus NetlistBuilder::bitwise(PrimOp op, const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(op, {a[i], b[i]}));
  }
  return out;
}

Bus NetlistBuilder::notBus(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (NetIndex bit : a) out.push_back(inv(bit));
  return out;
}

Bus NetlistBuilder::mux2Bus(const Bus& d0, const Bus& d1, NetIndex s) {
  assert(d0.size() == d1.size());
  Bus out;
  out.reserve(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i) {
    out.push_back(mux2(d0[i], d1[i], s));
  }
  return out;
}

Bus NetlistBuilder::rippleAdder(const Bus& a, const Bus& b, NetIndex cin,
                                NetIndex* cout) {
  assert(a.size() == b.size());
  Bus sum;
  sum.reserve(a.size());
  NetIndex carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, co] = fullAdder(a[i], b[i], carry);
    sum.push_back(s);
    carry = co;
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

Bus NetlistBuilder::incrementer(const Bus& a, NetIndex* cout) {
  Bus sum;
  sum.reserve(a.size());
  NetIndex carry = constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, co] = halfAdder(a[i], carry);
    sum.push_back(s);
    carry = co;
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

namespace {

NetIndex reduceTree(NetlistBuilder& b, Bus bits, PrimOp op2) {
  assert(!bits.empty());
  while (bits.size() > 1) {
    Bus next;
    next.reserve(bits.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(b.gate(op2, {bits[i], bits[i + 1]}));
    }
    if (bits.size() % 2 == 1) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits.front();
}

}  // namespace

NetIndex NetlistBuilder::orTree(const Bus& bits) {
  return reduceTree(*this, bits, PrimOp::kOr2);
}
NetIndex NetlistBuilder::andTree(const Bus& bits) {
  return reduceTree(*this, bits, PrimOp::kAnd2);
}
NetIndex NetlistBuilder::xorTree(const Bus& bits) {
  return reduceTree(*this, bits, PrimOp::kXor2);
}

Bus NetlistBuilder::muxTree(const std::vector<Bus>& choices, const Bus& sel) {
  assert(!choices.empty());
  assert(choices.size() == (std::size_t{1} << sel.size()));
  std::vector<Bus> level = choices;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<Bus> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux2Bus(level[i], level[i + 1], sel[s]));
    }
    level = std::move(next);
  }
  assert(level.size() == 1);
  return level.front();
}

Bus NetlistBuilder::decoder(const Bus& sel) {
  const std::size_t n = std::size_t{1} << sel.size();
  const Bus selInv = notBus(sel);
  Bus out;
  out.reserve(n);
  for (std::size_t code = 0; code < n; ++code) {
    Bus literals;
    literals.reserve(sel.size());
    for (std::size_t b = 0; b < sel.size(); ++b) {
      literals.push_back((code >> b & 1) != 0 ? sel[b] : selInv[b]);
    }
    out.push_back(andTree(literals));
  }
  return out;
}

Bus NetlistBuilder::shiftLeft(const Bus& value, const Bus& amount) {
  Bus current = value;
  const NetIndex zero = constant(false);
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const std::size_t shift = std::size_t{1} << s;
    Bus shifted(current.size(), zero);
    for (std::size_t i = shift; i < current.size(); ++i) {
      shifted[i] = current[i - shift];
    }
    current = mux2Bus(current, shifted, amount[s]);
  }
  return current;
}

Bus NetlistBuilder::shiftRight(const Bus& value, const Bus& amount) {
  Bus current = value;
  const NetIndex zero = constant(false);
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const std::size_t shift = std::size_t{1} << s;
    Bus shifted(current.size(), zero);
    for (std::size_t i = 0; i + shift < current.size(); ++i) {
      shifted[i] = current[i + shift];
    }
    current = mux2Bus(current, shifted, amount[s]);
  }
  return current;
}

Bus NetlistBuilder::multiplier(const Bus& a, const Bus& b) {
  // Row-by-row carry-save array: partial product rows are added with a
  // ripple chain per row (classic low-area array multiplier).
  const std::size_t width = a.size() + b.size();
  const NetIndex zero = constant(false);
  Bus acc(width, zero);
  for (std::size_t j = 0; j < b.size(); ++j) {
    // Partial product row j: a << j AND b[j].
    Bus row(width, zero);
    for (std::size_t i = 0; i < a.size(); ++i) {
      row[i + j] = and2(a[i], b[j]);
    }
    if (j == 0) {
      acc = std::move(row);
    } else {
      acc = rippleAdder(acc, row, zero);
    }
  }
  return acc;
}

NetIndex NetlistBuilder::equal(const Bus& a, const Bus& b) {
  Bus eq = bitwise(PrimOp::kXnor2, a, b);
  return andTree(eq);
}

Bus NetlistBuilder::randomLogic(const Bus& inputs, std::size_t numOutputs,
                                std::size_t depth, numeric::Rng& rng) {
  assert(!inputs.empty());
  static constexpr PrimOp kOps[] = {PrimOp::kNand2, PrimOp::kNor2,
                                    PrimOp::kAnd2,  PrimOp::kOr2,
                                    PrimOp::kXor2,  PrimOp::kNand3,
                                    PrimOp::kNor3};
  Bus pool = inputs;
  for (std::size_t layer = 0; layer < depth; ++layer) {
    Bus next;
    const std::size_t layerSize =
        layer + 1 == depth ? numOutputs
                           : std::max(numOutputs, inputs.size());
    next.reserve(layerSize);
    for (std::size_t i = 0; i < layerSize; ++i) {
      PrimOp op = kOps[rng.uniformInt(7)];  // excludes the placeholder
      std::vector<NetIndex> ins;
      ins.reserve(numInputs(op));
      for (std::size_t k = 0; k < numInputs(op); ++k) {
        ins.push_back(pool[rng.uniformInt(pool.size())]);
      }
      next.push_back(gate(op, ins, "rnd"));
    }
    // Let later layers also reach back to the primary inputs so path depths
    // vary across outputs.
    pool = next;
    for (std::size_t i = 0; i < inputs.size(); i += 3) pool.push_back(inputs[i]);
  }
  pool.resize(numOutputs);
  return pool;
}

std::vector<Bus> NetlistBuilder::registerFile(
    std::size_t registers, std::size_t width, const Bus& writeAddress,
    const Bus& writeData, NetIndex writeEnable,
    const std::vector<Bus>& readAddresses) {
  assert((std::size_t{1} << writeAddress.size()) == registers);
  assert(writeData.size() == width);
  (void)width;
  const Bus select = decoder(writeAddress);
  std::vector<Bus> storage;
  storage.reserve(registers);
  for (std::size_t r = 0; r < registers; ++r) {
    const NetIndex we = and2(select[r], writeEnable);
    storage.push_back(busDff(writeData, PrimOp::kDffE, we));
  }
  std::vector<Bus> readData;
  readData.reserve(readAddresses.size());
  for (const Bus& address : readAddresses) {
    readData.push_back(muxTree(storage, address));
  }
  return readData;
}

}  // namespace sct::netlist
