#pragma once
// Second evaluation vehicle: a DSP datapath (FIR filter core with
// multiply-accumulate taps, a decimator and control) structurally unlike
// the microcontroller — wide arithmetic, deep regular pipelines, few
// control paths. Used by the generalization experiment to show the library
// tuning's effect is not specific to one netlist.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sct::netlist {

struct DspConfig {
  std::size_t dataWidth = 12;   ///< sample width
  std::size_t taps = 8;         ///< FIR taps (multiply-accumulate stages)
  std::size_t accWidth = 28;    ///< accumulator width
  std::size_t channels = 2;     ///< parallel filter channels
  bool useKoggeStone = true;    ///< fast adders in the accumulate chain
  std::uint64_t seed = 0xD59;   ///< control-logic seed
};

/// Generates the DSP subject graph (technology independent).
[[nodiscard]] Design generateDsp(const DspConfig& config = {});

}  // namespace sct::netlist
