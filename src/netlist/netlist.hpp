#pragma once
// Gate-level netlist: a DAG of primitive-function instances connected by
// nets. The technology mapper later binds every instance to a library cell
// (and may insert buffers or decompose instances); the same data structure
// carries both the technology-independent subject graph and the mapped
// design.
//
// Conventions kept deliberately simple, matching the paper's setup:
//  - one ideal clock domain: sequential instances do not route a clock net;
//  - async set/reset of flip-flop variants are ideal (not routed);
//  - every net has exactly one driver (a primary input or instance output).

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "liberty/cell.hpp"
#include "liberty/function.hpp"

namespace sct::netlist {

/// Technology-independent primitive operations.
enum class PrimOp : std::uint8_t {
  kConst0,  ///< constant driver (maps to a tie-low cell)
  kConst1,  ///< constant driver (maps to a tie-high cell)
  kInv,
  kBuf,
  kNand2,
  kNand2B,  ///< NAND2 with the B input inverted (Z = !(A & !B))
  kNand3,
  kNand4,
  kNor2,
  kNor2B,  ///< NOR2 with the B input inverted (Z = !(A | !B))
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kXor2,
  kXnor2,
  kMux2,       ///< inputs D0, D1, S
  kMux4,       ///< inputs D0..D3, S0, S1
  kHalfAdder,  ///< outputs S, CO
  kFullAdder,  ///< inputs A, B, CI; outputs S, CO
  kDff,        ///< input D; output Q
  kDffR,       ///< input D; output Q; ideal async reset
  kDffE,       ///< inputs D, E; output Q
};

[[nodiscard]] std::string_view toString(PrimOp op) noexcept;

// Inline: these predicates sit in every hot loop of levelization, timing
// propagation and netlist sweeps.
[[nodiscard]] inline constexpr std::size_t numInputs(PrimOp op) noexcept {
  switch (op) {
    case PrimOp::kConst0:
    case PrimOp::kConst1:
      return 0;
    case PrimOp::kInv:
    case PrimOp::kBuf:
    case PrimOp::kDff:
    case PrimOp::kDffR:
      return 1;
    case PrimOp::kNand2:
    case PrimOp::kNand2B:
    case PrimOp::kNor2:
    case PrimOp::kNor2B:
    case PrimOp::kAnd2:
    case PrimOp::kOr2:
    case PrimOp::kXor2:
    case PrimOp::kXnor2:
    case PrimOp::kHalfAdder:
    case PrimOp::kDffE:
      return 2;
    case PrimOp::kNand3:
    case PrimOp::kNor3:
    case PrimOp::kAnd3:
    case PrimOp::kOr3:
    case PrimOp::kMux2:
    case PrimOp::kFullAdder:
      return 3;
    case PrimOp::kNand4:
    case PrimOp::kNor4:
    case PrimOp::kAnd4:
    case PrimOp::kOr4:
      return 4;
    case PrimOp::kMux4:
      return 6;
  }
  return 0;
}
[[nodiscard]] inline constexpr std::size_t numOutputs(PrimOp op) noexcept {
  switch (op) {
    case PrimOp::kHalfAdder:
    case PrimOp::kFullAdder:
      return 2;
    default:
      return 1;
  }
}
[[nodiscard]] inline constexpr bool isSequential(PrimOp op) noexcept {
  return op == PrimOp::kDff || op == PrimOp::kDffR || op == PrimOp::kDffE;
}
/// Natural library function family of the primitive.
[[nodiscard]] liberty::CellFunction defaultFunction(PrimOp op) noexcept;

using NetIndex = std::uint32_t;
using InstIndex = std::uint32_t;
inline constexpr NetIndex kNoNet = std::numeric_limits<NetIndex>::max();
inline constexpr InstIndex kNoInst = std::numeric_limits<InstIndex>::max();

/// Reference to one input slot of an instance.
struct SinkRef {
  InstIndex instance = kNoInst;
  std::uint32_t inputSlot = 0;
  friend bool operator==(const SinkRef&, const SinkRef&) = default;
};

struct Net {
  std::string name;
  /// Driving instance, or kNoInst when driven by a primary input.
  InstIndex driver = kNoInst;
  std::uint32_t driverSlot = 0;  ///< output slot of the driver
  std::vector<SinkRef> sinks;    ///< instance input loads
  bool isPrimaryOutput = false;
};

struct Instance {
  std::string name;
  PrimOp op = PrimOp::kInv;
  /// Bound library cell; nullptr while technology independent.
  const liberty::Cell* cell = nullptr;
  std::vector<NetIndex> inputs;   ///< primitive input order
  std::vector<NetIndex> outputs;  ///< primitive output order
  bool alive = true;
};

enum class PortDirection { kInput, kOutput };

struct Port {
  std::string name;
  PortDirection direction = PortDirection::kInput;
  NetIndex net = kNoNet;
};

class Design {
 public:
  Design() = default;
  explicit Design(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- construction ------------------------------------------------------
  NetIndex addNet(std::string name);
  /// Adds an instance and wires its connectivity. inputs/outputs sizes must
  /// match the primitive shape.
  InstIndex addInstance(std::string name, PrimOp op,
                        std::vector<NetIndex> inputs,
                        std::vector<NetIndex> outputs);
  void addPort(std::string name, PortDirection direction, NetIndex net);

  // --- verbatim restore (deserializers) -----------------------------------
  /// Appends a fully-specified instance WITHOUT wiring net connectivity.
  /// Only for deserializers that restore nets_ (including sink order, which
  /// steers timing tie-breaking) verbatim themselves; the result should be
  /// checked with validate().
  InstIndex addInstanceRaw(Instance instance) {
    instances_.push_back(std::move(instance));
    return static_cast<InstIndex>(instances_.size() - 1);
  }
  /// Fresh-name counter, exposed so a restored design continues unique
  /// net/instance numbering exactly where the original stopped.
  [[nodiscard]] std::uint64_t nameCounter() const noexcept {
    return name_counter_;
  }
  void setNameCounter(std::uint64_t counter) noexcept {
    name_counter_ = counter;
  }

  // --- surgery (used by buffering / decomposition / sizing) --------------
  /// Reconnects one input slot to a different net, updating sink lists.
  void reconnectInput(InstIndex instance, std::uint32_t slot, NetIndex net);
  /// Marks an instance dead and detaches it from all nets. Its output nets
  /// lose their driver; the caller must rewire or abandon them.
  void removeInstance(InstIndex instance);
  void bindCell(InstIndex instance, const liberty::Cell* cell) {
    instances_[instance].cell = cell;
  }

  // --- access -------------------------------------------------------------
  [[nodiscard]] std::size_t netCount() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t instanceCount() const noexcept {
    return instances_.size();
  }
  /// Number of alive instances (the design's gate count).
  [[nodiscard]] std::size_t gateCount() const noexcept;

  [[nodiscard]] Net& net(NetIndex i) noexcept { return nets_[i]; }
  [[nodiscard]] const Net& net(NetIndex i) const noexcept { return nets_[i]; }
  [[nodiscard]] Instance& instance(InstIndex i) noexcept {
    return instances_[i];
  }
  [[nodiscard]] const Instance& instance(InstIndex i) const noexcept {
    return instances_[i];
  }
  [[nodiscard]] const std::vector<Port>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<Instance>& instances() const noexcept {
    return instances_;
  }

  /// Total area of the mapped design (sum of bound cell areas).
  [[nodiscard]] double totalArea() const noexcept;

  /// Per-cell-name usage histogram of the mapped design (Fig. 9 data).
  [[nodiscard]] std::map<std::string, std::size_t> cellUsage() const;

  /// Consistency check (driver/sink symmetry, slot counts); returns an empty
  /// string when healthy, else a description of the first problem found.
  [[nodiscard]] std::string validate() const;

  /// Fresh unique net/instance name with the given stem.
  [[nodiscard]] std::string freshName(const std::string& stem);

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Instance> instances_;
  std::vector<Port> ports_;
  std::uint64_t name_counter_ = 0;
};

}  // namespace sct::netlist
