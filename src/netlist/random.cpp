#include "netlist/random.hpp"

#include <cassert>

#include "netlist/builder.hpp"
#include "numeric/rng.hpp"

namespace sct::netlist {

Design generateRandomDag(const RandomDagConfig& config) {
  assert(config.primaryInputs >= 1);
  assert(config.primaryOutputs >= 1);
  assert(config.scale >= 1);
  Design design("random_dag");
  NetlistBuilder b(design);
  numeric::Rng rng(config.seed);

  std::size_t ioScale = 1;
  while (ioScale * ioScale < config.scale) ++ioScale;
  const std::size_t gateCount = config.gates * config.scale;
  const std::size_t flopCount = config.flipFlops * config.scale;

  static constexpr PrimOp kOps[] = {
      PrimOp::kInv,    PrimOp::kBuf,    PrimOp::kNand2, PrimOp::kNand2B,
      PrimOp::kNand3,  PrimOp::kNand4,  PrimOp::kNor2,  PrimOp::kNor2B,
      PrimOp::kNor3,   PrimOp::kNor4,   PrimOp::kAnd2,  PrimOp::kAnd3,
      PrimOp::kAnd4,   PrimOp::kOr2,    PrimOp::kOr3,   PrimOp::kOr4,
      PrimOp::kXor2,   PrimOp::kXnor2,  PrimOp::kMux2,  PrimOp::kMux4,
      PrimOp::kHalfAdder, PrimOp::kFullAdder};

  Bus pool = b.inputBus("in", config.primaryInputs * ioScale);
  auto pick = [&] { return pool[rng.uniformInt(pool.size())]; };

  for (std::size_t g = 0; g < gateCount; ++g) {
    const PrimOp op = kOps[rng.uniformInt(std::size(kOps))];
    std::vector<NetIndex> inputs;
    inputs.reserve(numInputs(op));
    for (std::size_t i = 0; i < numInputs(op); ++i) inputs.push_back(pick());
    if (numOutputs(op) == 1) {
      pool.push_back(b.gate(op, inputs, "rnd"));
    } else {
      const NetIndex o0 = design.addNet(design.freshName("rnd"));
      const NetIndex o1 = design.addNet(design.freshName("rnd"));
      design.addInstance(design.freshName("u"), op, inputs, {o0, o1});
      pool.push_back(o0);
      pool.push_back(o1);
    }
  }

  for (std::size_t f = 0; f < flopCount; ++f) {
    const bool enabled = rng.uniform() < 0.3;
    pool.push_back(enabled ? b.dff(pick(), PrimOp::kDffE, pick())
                           : b.dff(pick(), rng.uniform() < 0.5
                                               ? PrimOp::kDff
                                               : PrimOp::kDffR));
  }

  for (std::size_t o = 0; o < config.primaryOutputs * ioScale; ++o) {
    b.outputPort("out[" + std::to_string(o) + "]", pick());
  }
  assert(design.validate().empty());
  return design;
}

}  // namespace sct::netlist
