#pragma once
// Synthetic 32-bit microcontroller subject graph, standing in for the
// paper's evaluation vehicle (32-bit CPU, AHB bus, 32KB SRAM, ~20k gates).
// The SRAM itself is an external macro (as in the paper); the generator
// produces the CPU core, bus fabric and a realistic peripheral set. The
// structure is deterministic for a given config/seed and yields the path
// population the experiments rely on: a large share of short register-to-
// register control paths plus deep ALU/MAC paths (depths ~2 to ~60).

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sct::netlist {

struct McuConfig {
  std::size_t width = 32;        ///< datapath width
  std::size_t registers = 32;    ///< architectural register count (pow2)
  std::size_t readPorts = 3;     ///< register-file read ports
  std::size_t bankedRegisters = 16;  ///< shadow bank for interrupt context
  std::size_t macWidth = 16;     ///< multiplier operand width
  std::size_t macUnits = 2;      ///< multiply-accumulate units
  std::size_t timers = 8;        ///< 32-bit timer/compare blocks
  std::size_t dmaChannels = 3;
  std::size_t gpioWidth = 128;
  std::size_t cacheTagEntries = 128;  ///< tag-compare entries (data in SRAM)
  std::size_t cacheTagBits = 20;
  std::size_t decodeOutputs = 128;  ///< control signals from the decoder blob
  std::size_t decodeDepth = 4;
  std::size_t interruptSources = 32;
  std::uint64_t seed = 0xC0FFEE;  ///< seeds the random control logic
};

/// Generates the microcontroller subject graph. The returned design is
/// technology independent (no cells bound yet).
[[nodiscard]] Design generateMcu(const McuConfig& config = {});

/// Small design used by unit/integration tests: a width-bit accumulator
/// (register + adder + input mux) plus a little random control block.
[[nodiscard]] Design generateAccumulator(std::size_t width,
                                         std::uint64_t seed = 1);

}  // namespace sct::netlist
