#pragma once
// Random DAG netlist generator: structurally valid designs with arbitrary
// op mixes, used for fuzz-style property testing of the mapper/STA/IO
// layers (every generated design must map, legalize, analyze, simulate and
// round-trip).

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sct::netlist {

struct RandomDagConfig {
  std::size_t primaryInputs = 8;
  std::size_t gates = 200;        ///< combinational instances
  std::size_t flipFlops = 16;     ///< DFFs inserted on random nets
  std::size_t primaryOutputs = 8;
  /// Multiplies gates/flipFlops (IO widths grow ~sqrt(scale)); scale = 1
  /// reproduces the unscaled design bit for bit. scale = 1000 emits the
  /// ~200k-gate subject used by the 10x-paper-size experiments.
  std::size_t scale = 1;
  std::uint64_t seed = 1;
};

/// Builds a random, acyclic, fully connected design: gates draw operands
/// from already-created nets (feed-forward by construction), flip-flops
/// re-register random nets, and outputs tap random nets. Every net is
/// reachable from an input; every output net exists. The result passes
/// Design::validate().
[[nodiscard]] Design generateRandomDag(const RandomDagConfig& config = {});

}  // namespace sct::netlist
