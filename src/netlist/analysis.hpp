#pragma once
// Netlist utilities around the core data structure: design statistics,
// dead-logic sweeping and Graphviz export for inspection/debugging.

#include <iosfwd>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace sct::netlist {

/// Structural summary of a design.
struct DesignStats {
  std::size_t gates = 0;          ///< alive instances
  std::size_t sequential = 0;     ///< flip-flop instances
  std::size_t combinational = 0;  ///< gates minus sequential minus ties
  std::size_t ties = 0;
  std::size_t nets = 0;            ///< connected nets
  std::size_t primaryInputs = 0;
  std::size_t primaryOutputs = 0;
  std::size_t maxFanout = 0;
  double averageFanout = 0.0;
  std::map<PrimOp, std::size_t> opHistogram;
};

[[nodiscard]] DesignStats analyzeDesign(const Design& design);

/// Removes logic that cannot reach any primary output or sequential element
/// (dead gates left behind by restructuring). Returns the number of
/// instances removed. Iterates to a fixed point.
std::size_t sweepDeadLogic(Design& design);

/// Graphviz dot export (instances as nodes, nets as edges). Designs above
/// `maxInstances` alive instances are refused (returns false) — dot files
/// beyond a few thousand nodes are unusable.
bool writeDot(std::ostream& out, const Design& design,
              std::size_t maxInstances = 4000);

}  // namespace sct::netlist
