#include "netlist/dsp.hpp"

#include <cassert>

#include "netlist/builder.hpp"
#include "netlist/structures.hpp"

namespace sct::netlist {
namespace {

Bus zeroExtend(NetlistBuilder& b, Bus bus, std::size_t width) {
  const NetIndex zero = b.constant(false);
  while (bus.size() < width) bus.push_back(zero);
  bus.resize(width);
  return bus;
}

}  // namespace

Design generateDsp(const DspConfig& config) {
  assert(config.taps >= 2);
  assert(config.accWidth >= 2 * config.dataWidth);
  Design design("dsp");
  NetlistBuilder b(design);
  numeric::Rng rng(config.seed);
  const std::size_t w = config.dataWidth;

  const Bus sampleIn = b.inputBus("sample_in", w);
  const Bus coeffIn = b.inputBus("coeff_in", w);
  const NetIndex coeffLoad = b.inputPort("coeff_load");
  const NetIndex sampleValid = b.inputPort("sample_valid");

  // Coefficient write pointer: gray-coded tap selector + decoder.
  std::size_t tapBits = 0;
  while ((std::size_t{1} << tapBits) < config.taps) ++tapBits;
  const Bus tapSel = b.inputBus("tap_sel", tapBits);
  const Bus tapOneHot = b.decoder(tapSel);

  Bus irqs;
  for (std::size_t ch = 0; ch < config.channels; ++ch) {
    // Registered input sample (advances on valid).
    const Bus x = b.busDff(sampleIn, PrimOp::kDffE, sampleValid);

    // Coefficient registers, loaded one tap at a time.
    std::vector<Bus> coeffs;
    for (std::size_t t = 0; t < config.taps; ++t) {
      const NetIndex we = b.and2(tapOneHot[t % tapOneHot.size()], coeffLoad);
      coeffs.push_back(b.busDff(coeffIn, PrimOp::kDffE, we));
    }

    // Transposed-form FIR: every tap multiplies the *current* sample; the
    // partial sums shift through registers toward the output, so the
    // structure is pipelined by construction (one multiplier+adder per
    // register stage):  z_k = reg(x * c_k + z_{k+1}),  y = z_0.
    Bus carry = zeroExtend(b, {}, config.accWidth);  // z_taps = 0
    for (std::size_t t = config.taps; t-- > 0;) {
      const Bus product =
          zeroExtend(b, b.multiplier(x, coeffs[t]), config.accWidth);
      const Bus sum =
          config.useKoggeStone
              ? koggeStoneAdder(b, carry, product, b.constant(false))
              : carrySelectAdder(b, carry, product, b.constant(false), 4);
      carry = b.busDff(sum, PrimOp::kDffE, sampleValid);
    }
    const Bus acc = carry;  // y = z_0

    // Saturation to the output width: clamp when the top bits disagree.
    const std::size_t outW = w + 2;
    Bus top(acc.begin() + static_cast<std::ptrdiff_t>(outW), acc.end());
    const NetIndex overflow = b.orTree(top);
    Bus clamped;
    for (std::size_t i = 0; i < outW; ++i) {
      clamped.push_back(b.mux2(acc[i], b.constant(true), overflow));
    }
    const Bus result = b.busDff(clamped, PrimOp::kDffR);
    b.outputBus("ch" + std::to_string(ch) + "_out", result);

    // Peak detector: output magnitude above a programmable threshold.
    const Bus threshold =
        b.busDff(zeroExtend(b, coeffIn, outW), PrimOp::kDffE, coeffLoad);
    irqs.push_back(b.dff(lessThan(b, threshold, result), PrimOp::kDffR));

    // Decimator: keep one sample in four using a gray-coded phase counter.
    const Bus phase = grayCounter(b, 2, sampleValid);
    const NetIndex keep = b.and2(sampleValid, b.nor2(phase[0], phase[1]));
    b.outputBus("ch" + std::to_string(ch) + "_dec",
                b.busDff(result, PrimOp::kDffE, keep));
  }

  // Control blob: status/interrupt logic from a random two-level network,
  // plus a built-in-self-test LFSR that can replace the input samples.
  Bus ctrlIn = sampleIn;
  ctrlIn.push_back(coeffLoad);
  ctrlIn.push_back(sampleValid);
  const Bus status = b.randomLogic(ctrlIn, 16, 3, rng);
  b.outputBus("status", b.busDff(status, PrimOp::kDffR));
  const Bus bist = lfsr(b, 16, {15, 13, 12, 10});
  b.outputBus("bist", Bus(bist.begin(), bist.begin() + 4));
  b.outputPort("irq", b.orTree(irqs));

  assert(design.validate().empty());
  return design;
}

}  // namespace sct::netlist
