#pragma once
// Two-valued functional simulator for gate-level designs: evaluates the
// combinational network in topological order and steps sequential state on
// demand. Used to verify structural generators (adders really add, the
// LFSR really cycles) and for equivalence checks around netlist rewrites.
// Works on technology-independent designs; bound cells are ignored (the
// primitive op defines the function).

#include <cstdint>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace sct::netlist {

class Simulator {
 public:
  /// The design must be acyclic through combinational logic (same
  /// requirement as STA). Throws std::invalid_argument on a cycle.
  explicit Simulator(const Design& design);

  // --- inputs -------------------------------------------------------------
  void setInput(std::string_view portName, bool value);
  /// Sets ports named "stem[0]" ... "stem[width-1]" from an integer.
  void setInputBus(std::string_view stem, std::uint64_t value);

  // --- execution ------------------------------------------------------------
  /// Clears all sequential state to 0 (the ideal async reset).
  void reset();
  /// Evaluates the combinational network with current inputs and state.
  void evaluate();
  /// evaluate() then clocks every flip-flop (one rising edge).
  void step();

  // --- observation ----------------------------------------------------------
  [[nodiscard]] bool value(NetIndex net) const { return values_[net]; }
  [[nodiscard]] bool output(std::string_view portName) const;
  /// Reads ports "stem[0]"... as an integer (up to 64 bits).
  [[nodiscard]] std::uint64_t outputBus(std::string_view stem,
                                        std::size_t width) const;

 private:
  [[nodiscard]] bool evalOp(const Instance& inst, std::uint32_t slot) const;
  [[nodiscard]] NetIndex portNet(std::string_view portName) const;

  const Design& design_;
  std::vector<InstIndex> topo_;       ///< combinational evaluation order
  std::vector<InstIndex> sequential_; ///< flip-flops, in index order
  std::vector<char> values_;          ///< per-net value
  std::vector<char> state_;           ///< per-instance flip-flop state
};

}  // namespace sct::netlist
