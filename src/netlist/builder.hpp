#pragma once
// Structural netlist construction helpers: single gates, buses, adders,
// shifters, decoders, mux trees, register files and pseudo-random control
// logic. The microcontroller generator is built entirely from these.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "numeric/rng.hpp"

namespace sct::netlist {

/// A little-endian bundle of nets (bit 0 first).
using Bus = std::vector<NetIndex>;

class NetlistBuilder {
 public:
  explicit NetlistBuilder(Design& design) : design_(design) {}

  [[nodiscard]] Design& design() noexcept { return design_; }

  // --- primitive helpers (return the output net) --------------------------
  NetIndex gate(PrimOp op, const std::vector<NetIndex>& inputs,
                const std::string& stem = "n");
  NetIndex inv(NetIndex a) { return gate(PrimOp::kInv, {a}); }
  NetIndex buf(NetIndex a) { return gate(PrimOp::kBuf, {a}); }
  NetIndex and2(NetIndex a, NetIndex b) { return gate(PrimOp::kAnd2, {a, b}); }
  NetIndex or2(NetIndex a, NetIndex b) { return gate(PrimOp::kOr2, {a, b}); }
  NetIndex nand2(NetIndex a, NetIndex b) {
    return gate(PrimOp::kNand2, {a, b});
  }
  NetIndex nor2(NetIndex a, NetIndex b) { return gate(PrimOp::kNor2, {a, b}); }
  NetIndex xor2(NetIndex a, NetIndex b) { return gate(PrimOp::kXor2, {a, b}); }
  NetIndex xnor2(NetIndex a, NetIndex b) {
    return gate(PrimOp::kXnor2, {a, b});
  }
  /// MUX2: out = s ? d1 : d0.
  NetIndex mux2(NetIndex d0, NetIndex d1, NetIndex s) {
    return gate(PrimOp::kMux2, {d0, d1, s});
  }
  NetIndex dff(NetIndex d, PrimOp op = PrimOp::kDffR,
               NetIndex enable = kNoNet);
  /// Full adder; returns {sum, carry}.
  std::pair<NetIndex, NetIndex> fullAdder(NetIndex a, NetIndex b, NetIndex ci);
  std::pair<NetIndex, NetIndex> halfAdder(NetIndex a, NetIndex b);
  NetIndex constant(bool value);

  // --- ports ---------------------------------------------------------------
  NetIndex inputPort(const std::string& name);
  Bus inputBus(const std::string& name, std::size_t width);
  void outputPort(const std::string& name, NetIndex net);
  void outputBus(const std::string& name, const Bus& bus);

  // --- word-level blocks ---------------------------------------------------
  Bus busDff(const Bus& d, PrimOp op = PrimOp::kDffR, NetIndex enable = kNoNet);
  Bus bitwise(PrimOp op, const Bus& a, const Bus& b);
  Bus notBus(const Bus& a);
  Bus mux2Bus(const Bus& d0, const Bus& d1, NetIndex s);
  /// Ripple-carry adder; cout receives the final carry when non-null.
  Bus rippleAdder(const Bus& a, const Bus& b, NetIndex cin,
                  NetIndex* cout = nullptr);
  /// a + 1 using a half-adder chain.
  Bus incrementer(const Bus& a, NetIndex* cout = nullptr);
  /// Balanced reduction trees.
  NetIndex orTree(const Bus& bits);
  NetIndex andTree(const Bus& bits);
  NetIndex xorTree(const Bus& bits);
  /// Select one of choices.size() buses; sel is binary, choices.size() must
  /// be a power of two and match 1 << sel.size().
  Bus muxTree(const std::vector<Bus>& choices, const Bus& sel);
  /// One-hot decoder: 2^sel.size() outputs.
  Bus decoder(const Bus& sel);
  /// Logical left shifter by a binary amount (zeros shifted in).
  Bus shiftLeft(const Bus& value, const Bus& amount);
  /// Logical right shifter.
  Bus shiftRight(const Bus& value, const Bus& amount);
  /// Unsigned array multiplier (carry-save rows + ripple finish); result is
  /// a.size()+b.size() bits wide.
  Bus multiplier(const Bus& a, const Bus& b);
  /// a == b comparator.
  NetIndex equal(const Bus& a, const Bus& b);

  /// Layered pseudo-random combinational logic: numOutputs functions of the
  /// inputs through `depth` layers of random 2-3 input gates. Deterministic
  /// for a given rng stream; models decoder/control blobs.
  Bus randomLogic(const Bus& inputs, std::size_t numOutputs, std::size_t depth,
                  numeric::Rng& rng);

  /// Register file: `registers` words of `width` bits with one write port
  /// (binary address + write data, enable) and `readAddresses.size()` read
  /// ports (binary addresses). Returns one read bus per port.
  std::vector<Bus> registerFile(std::size_t registers, std::size_t width,
                                const Bus& writeAddress, const Bus& writeData,
                                NetIndex writeEnable,
                                const std::vector<Bus>& readAddresses);

 private:
  Design& design_;
  NetIndex const0_ = kNoNet;
  NetIndex const1_ = kNoNet;
};

}  // namespace sct::netlist
