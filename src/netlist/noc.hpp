#pragma once
// Third evaluation vehicle: an N-port wormhole NoC router (input flit
// buffers, route compute, VC allocation, crossbar traversal, credit
// tracking) — control-dominated and wiring-heavy where the MCU is
// register-file-heavy and the DSP is arithmetic-heavy. Used by the
// design-diversity matrix to show library tuning generalizes across
// structurally unlike workloads.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace sct::netlist {

struct NocConfig {
  std::size_t ports = 5;        ///< router radix (N/E/S/W/local)
  std::size_t flitWidth = 16;   ///< flit payload width (dest field on top)
  std::size_t vcs = 2;          ///< virtual channels per input port
  std::size_t bufferDepth = 2;  ///< flit-buffer stages per VC
  std::uint64_t seed = 0x40C;   ///< control-blob seed
};

/// Generates the router subject graph (technology independent): per-port
/// VC flit buffers, destination-compare route compute, priority-encoded
/// VC allocation with a round-robin age counter, a mux-tree crossbar and
/// saturating credit counters per output. Deterministic for a given
/// config; the result passes Design::validate().
[[nodiscard]] Design buildNocRouter(const NocConfig& config = {});

}  // namespace sct::netlist
