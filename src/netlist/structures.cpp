#include "netlist/structures.hpp"

#include <cassert>

namespace sct::netlist {

Bus carrySelectAdder(NetlistBuilder& b, const Bus& x, const Bus& y,
                     NetIndex cin, std::size_t blockWidth, NetIndex* cout) {
  assert(x.size() == y.size());
  assert(blockWidth >= 1);
  Bus sum;
  sum.reserve(x.size());
  NetIndex carry = cin;
  for (std::size_t lo = 0; lo < x.size(); lo += blockWidth) {
    const std::size_t width = std::min(blockWidth, x.size() - lo);
    const Bus xs(x.begin() + static_cast<std::ptrdiff_t>(lo),
                 x.begin() + static_cast<std::ptrdiff_t>(lo + width));
    const Bus ys(y.begin() + static_cast<std::ptrdiff_t>(lo),
                 y.begin() + static_cast<std::ptrdiff_t>(lo + width));
    if (lo == 0) {
      // First block: the carry-in is known, plain ripple.
      NetIndex blockCout = kNoNet;
      const Bus s = b.rippleAdder(xs, ys, carry, &blockCout);
      sum.insert(sum.end(), s.begin(), s.end());
      carry = blockCout;
      continue;
    }
    // Speculative blocks: compute with carry 0 and carry 1, then select.
    NetIndex cout0 = kNoNet;
    NetIndex cout1 = kNoNet;
    const Bus s0 = b.rippleAdder(xs, ys, b.constant(false), &cout0);
    const Bus s1 = b.rippleAdder(xs, ys, b.constant(true), &cout1);
    const Bus selected = b.mux2Bus(s0, s1, carry);
    sum.insert(sum.end(), selected.begin(), selected.end());
    carry = b.mux2(cout0, cout1, carry);
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

Bus koggeStoneAdder(NetlistBuilder& b, const Bus& x, const Bus& y,
                    NetIndex cin, NetIndex* cout) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  // Bitwise generate/propagate.
  Bus g = b.bitwise(PrimOp::kAnd2, x, y);
  Bus p = b.bitwise(PrimOp::kXor2, x, y);
  const Bus pSum = p;  // sum needs the original propagate bits

  // Parallel-prefix combine: (g, p) o (g', p') = (g | p&g', p & p').
  for (std::size_t offset = 1; offset < n; offset *= 2) {
    Bus gNext = g;
    Bus pNext = p;
    for (std::size_t i = offset; i < n; ++i) {
      gNext[i] = b.or2(g[i], b.and2(p[i], g[i - offset]));
      pNext[i] = b.and2(p[i], p[i - offset]);
    }
    g = std::move(gNext);
    p = std::move(pNext);
  }

  // Carry into bit i: prefix over bits [0, i-1] plus the carry-in through
  // the full prefix propagate.
  Bus sum;
  sum.reserve(n);
  NetIndex carry = cin;
  for (std::size_t i = 0; i < n; ++i) {
    sum.push_back(b.xor2(pSum[i], carry));
    // carry into bit i+1 = G[0..i] | (P[0..i] & cin)
    carry = b.or2(g[i], b.and2(p[i], cin));
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

NetIndex lessThan(NetlistBuilder& b, const Bus& x, const Bus& y) {
  assert(x.size() == y.size());
  // Borrow chain of x - y: borrow_{i+1} = (!x_i & y_i) | (borrow_i & (!x_i | y_i)).
  NetIndex borrow = b.constant(false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const NetIndex nx = b.inv(x[i]);
    const NetIndex strictly = b.and2(nx, y[i]);
    const NetIndex propagates = b.or2(nx, y[i]);
    borrow = b.or2(strictly, b.and2(borrow, propagates));
  }
  return borrow;
}

PriorityEncoded priorityEncode(NetlistBuilder& b, const Bus& requests) {
  assert(!requests.empty());
  PriorityEncoded out;
  out.grant.reserve(requests.size());
  out.grant.push_back(requests[0]);
  NetIndex anyBefore = requests[0];
  for (std::size_t i = 1; i < requests.size(); ++i) {
    out.grant.push_back(b.and2(requests[i], b.inv(anyBefore)));
    anyBefore = b.or2(anyBefore, requests[i]);
  }
  out.any = anyBefore;
  return out;
}

Bus popcount(NetlistBuilder& b, const Bus& bits) {
  assert(!bits.empty());
  if (bits.size() == 1) return {bits[0]};
  if (bits.size() == 2) {
    auto [s, c] = b.halfAdder(bits[0], bits[1]);
    return {s, c};
  }
  if (bits.size() == 3) {
    auto [s, c] = b.fullAdder(bits[0], bits[1], bits[2]);
    return {s, c};
  }
  // Divide and conquer, then add the two sub-counts.
  const std::size_t half = bits.size() / 2;
  Bus lo = popcount(b, Bus(bits.begin(),
                           bits.begin() + static_cast<std::ptrdiff_t>(half)));
  Bus hi = popcount(b, Bus(bits.begin() + static_cast<std::ptrdiff_t>(half),
                           bits.end()));
  // Zero-extend to a common width + 1 for the carry.
  const std::size_t width = std::max(lo.size(), hi.size());
  const NetIndex zero = b.constant(false);
  lo.resize(width, zero);
  hi.resize(width, zero);
  NetIndex carry = kNoNet;
  Bus sum = b.rippleAdder(lo, hi, b.constant(false), &carry);
  sum.push_back(carry);
  return sum;
}

Bus grayCounter(NetlistBuilder& b, std::size_t width, NetIndex enable) {
  Design& d = b.design();
  // Binary counter register with feedback.
  Bus binQ;
  binQ.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    binQ.push_back(d.addNet(d.freshName("grayb")));
  }
  const Bus inc = b.incrementer(binQ);
  for (std::size_t i = 0; i < width; ++i) {
    d.addInstance(d.freshName("gray_reg"), PrimOp::kDffE, {inc[i], enable},
                  {binQ[i]});
  }
  // Gray output: g_i = b_i ^ b_{i+1}; top bit passes through.
  Bus gray;
  gray.reserve(width);
  for (std::size_t i = 0; i + 1 < width; ++i) {
    gray.push_back(b.xor2(binQ[i], binQ[i + 1]));
  }
  gray.push_back(binQ[width - 1]);
  return gray;
}

Bus lfsr(NetlistBuilder& b, std::size_t width,
         const std::vector<std::size_t>& taps) {
  assert(width >= 2);
  assert(!taps.empty());
  Design& d = b.design();
  Bus q;
  q.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    q.push_back(d.addNet(d.freshName("lfsr")));
  }
  Bus tapBits;
  for (std::size_t tap : taps) {
    assert(tap < width);
    tapBits.push_back(q[tap]);
  }
  const NetIndex feedback = b.xorTree(tapBits);
  d.addInstance(d.freshName("lfsr_reg"), PrimOp::kDffR, {feedback}, {q[0]});
  for (std::size_t i = 1; i < width; ++i) {
    d.addInstance(d.freshName("lfsr_reg"), PrimOp::kDffR, {q[i - 1]}, {q[i]});
  }
  return q;
}

}  // namespace sct::netlist
