#pragma once
// Library characterization (paper section II): sweeps every cell of the
// catalogue over an input-slew x output-load grid and emits Liberty-style
// libraries. Three characterization flavours:
//   - nominal:      no mismatch (the synthesis library),
//   - Monte Carlo:  N library instances, each with fresh per-cell local
//                   mismatch draws (inputs to the statistical library, Fig. 2),
//   - corners:      nominal at FF/TT/SS (Fig. 15 validation).

#include <cstdint>
#include <vector>

#include "charlib/catalogue.hpp"
#include "charlib/delay_model.hpp"
#include "charlib/process.hpp"
#include "liberty/library.hpp"

namespace sct::charlib {

struct CharacterizationConfig {
  TechnologyParams tech{};
  VariationParams variation{};
  /// Input-slew breakpoints shared by all cells [ns]. The paper notes the
  /// slew range is identical across drive strengths (Fig. 4).
  numeric::Axis slewAxis = {0.002, 0.008, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
  /// Load breakpoints as fractions of each cell's max load; the absolute
  /// load range therefore grows with drive strength, as in Fig. 4.
  std::vector<double> loadFractions = {0.008, 0.02, 0.05, 0.1,
                                       0.2,   0.4,  0.7,  1.0};
};

/// Deterministic arc-level factor applied on top of the raw delay model
/// during characterization: input-position factor x output-pin factor x
/// rise/fall skew. Exposed so the Monte-Carlo path simulator reproduces the
/// exact table values.
[[nodiscard]] double arcDelayFactor(liberty::CellFunction f,
                                    std::string_view relatedPin,
                                    std::string_view outputPin,
                                    bool rise) noexcept;

class Characterizer {
 public:
  explicit Characterizer(CharacterizationConfig config = {});

  [[nodiscard]] const CharacterizationConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const DelayModel& model() const noexcept { return model_; }
  [[nodiscard]] const SpecRegistry& specs() const noexcept { return specs_; }

  /// Absolute load axis of one cell [pF].
  [[nodiscard]] numeric::Axis loadAxisFor(const CellSpec& spec) const;

  /// Mismatch-free library at the given corner.
  [[nodiscard]] liberty::Library characterizeNominal(
      const ProcessCorner& corner) const;

  /// One Monte-Carlo library instance: every cell receives one local
  /// mismatch draw applied consistently across all of its table entries
  /// (one "die" worth of libraries, as in section IV).
  [[nodiscard]] liberty::Library characterizeSample(const ProcessCorner& corner,
                                                    std::uint64_t seed,
                                                    std::uint64_t sampleIndex) const;

  /// N Monte-Carlo library instances (paper uses N = 50). Batched: cells
  /// are characterized per-entry-across-instances (one axis sweep fills one
  /// LUT entry of all N instances at once, see DESIGN.md §13), bit-identical
  /// to calling characterizeSample() for k = 0..n-1 — which stays available
  /// as the scalar oracle.
  [[nodiscard]] std::vector<liberty::Library> characterizeMonteCarlo(
      const ProcessCorner& corner, std::size_t n, std::uint64_t seed) const;

 private:
  liberty::Library characterizeWith(
      const ProcessCorner& corner, const std::string& libraryName,
      std::uint64_t seed, bool withMismatch) const;
  /// All MC instances of one cell, built per-entry-across-instances from
  /// pre-drawn mismatch batches. cells[k] is bit-identical to the cell the
  /// scalar path characterizes for instance k.
  [[nodiscard]] std::vector<liberty::Cell> characterizeCellBatch(
      const CellSpec& spec, const ProcessCorner& corner,
      const LocalDeltasBatch& deltas) const;

  CharacterizationConfig config_;
  DelayModel model_;
  SpecRegistry specs_;
  /// config_.slewAxis as a shared axis: every batched LUT references this
  /// one allocation instead of carrying a copy.
  liberty::Lut::AxisPtr slew_axis_;
};

}  // namespace sct::charlib
