#include "charlib/characterizer.hpp"

#include <algorithm>
#include <cassert>

#include "numeric/grid_batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace sct::charlib {

using liberty::CellFunction;
using liberty::Pin;
using liberty::PinDirection;
using liberty::TimingArc;

Characterizer::Characterizer(CharacterizationConfig config)
    : config_(std::move(config)),
      model_(config_.tech, config_.variation),
      specs_(model_),
      slew_axis_(std::make_shared<const numeric::Axis>(config_.slewAxis)) {
  assert(numeric::isStrictlyIncreasing(config_.slewAxis));
}

numeric::Axis Characterizer::loadAxisFor(const CellSpec& spec) const {
  numeric::Axis axis;
  axis.reserve(config_.loadFractions.size());
  for (double fraction : config_.loadFractions) {
    axis.push_back(fraction * spec.maxLoad);
  }
  return axis;
}

namespace {

/// Clock-slew breakpoints of the sequential setup table: a slow data edge
/// needs more margin before the clock edge, a slow clock edge relaxes it
/// slightly. Shared by the scalar and batched characterization paths.
const numeric::Axis kClockSlewAxis = {0.01, 0.05, 0.1, 0.2};

/// Per-output deterministic speed factor: carry outputs of adders are the
/// optimized path in real cells.
double outputFactor(CellFunction f, std::string_view output) noexcept {
  if (f == CellFunction::kFullAdder || f == CellFunction::kHalfAdder) {
    return output == "CO" ? 0.75 : 1.10;
  }
  return 1.0;
}

/// Auxiliary control pins present on sequential variants.
std::vector<std::string_view> controlPins(CellFunction f) {
  switch (f) {
    case CellFunction::kDffR:
      return {"RN"};
    case CellFunction::kDffS:
      return {"SN"};
    case CellFunction::kDffRS:
      return {"RN", "SN"};
    case CellFunction::kDffE:
      return {"E"};
    case CellFunction::kLatchR:
      return {"RN"};
    default:
      return {};
  }
}

}  // namespace

double arcDelayFactor(liberty::CellFunction f, std::string_view relatedPin,
                      std::string_view outputPin, bool rise) noexcept {
  std::size_t inputIndex = 0;
  if (relatedPin != "CP" && relatedPin != "G") {
    const auto names = liberty::dataInputNames(f);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == relatedPin) {
        inputIndex = i;
        break;
      }
    }
  }
  const ArcFlavor flavor = ArcFlavor::forInput(inputIndex);
  return flavor.positionFactor * outputFactor(f, outputPin) *
         (rise ? flavor.riseFactor : flavor.fallFactor);
}

liberty::Library Characterizer::characterizeWith(const ProcessCorner& corner,
                                                 const std::string& libraryName,
                                                 std::uint64_t seed,
                                                 bool withMismatch) const {
  liberty::OperatingConditions conditions{corner.process, corner.voltage,
                                          corner.temperature};
  liberty::Library library(libraryName, conditions);
  numeric::Rng master(seed);

  for (const CellSpec& spec : specs_.all()) {
    const liberty::FunctionTraits& t = liberty::traits(spec.function);
    liberty::Cell cell(spec.name, spec.function, spec.driveStrength,
                       spec.area);
    cell.setSetupTime(spec.setupTime);
    cell.setHoldTime(spec.holdTime);
    if (t.sequential) {
      // Slew-dependent setup (see kClockSlewAxis above).
      liberty::Lut setupLut(config_.slewAxis, kClockSlewAxis);
      for (std::size_t r = 0; r < config_.slewAxis.size(); ++r) {
        for (std::size_t c = 0; c < kClockSlewAxis.size(); ++c) {
          const double value = spec.setupTime + 0.30 * config_.slewAxis[r] -
                               0.08 * kClockSlewAxis[c];
          setupLut.at(r, c) = std::max(value, 0.25 * spec.setupTime);
        }
      }
      cell.setSetupLut(std::move(setupLut));
    }

    // One mismatch draw per cell per library instance: the same physical
    // instance fills every entry of its tables (section IV).
    LocalDeltas deltas;
    if (withMismatch) {
      numeric::Rng cellRng = master.fork(numeric::Rng::hashTag(spec.name));
      deltas = model_.drawLocal(spec, cellRng);
    }

    // Pins.
    const auto inputNames = liberty::dataInputNames(spec.function);
    for (std::size_t i = 0; i < t.numDataInputs; ++i) {
      Pin pin;
      pin.name = std::string(inputNames[i]);
      pin.direction = PinDirection::kInput;
      pin.capacitance = spec.inputCap;
      cell.addPin(std::move(pin));
    }
    if (t.sequential) {
      Pin clk;
      clk.name = spec.function == CellFunction::kLatch ||
                         spec.function == CellFunction::kLatchR
                     ? "G"
                     : "CP";
      clk.direction = PinDirection::kInput;
      clk.capacitance = spec.inputCap * 0.8;
      clk.isClock = true;
      cell.addPin(std::move(clk));
    }
    for (std::string_view ctrl : controlPins(spec.function)) {
      Pin pin;
      pin.name = std::string(ctrl);
      pin.direction = PinDirection::kInput;
      pin.capacitance = spec.inputCap * 0.5;
      cell.addPin(std::move(pin));
    }
    const auto outNames = liberty::outputNames(spec.function);
    for (std::size_t o = 0; o < t.numOutputs; ++o) {
      Pin pin;
      pin.name = std::string(outNames[o]);
      pin.direction = PinDirection::kOutput;
      pin.maxCapacitance = spec.maxLoad;
      cell.addPin(std::move(pin));
    }

    // Timing arcs: every (triggering input, output) pair. Sequential cells
    // expose the clock->Q arc (setup/hold are scalar cell attributes).
    const numeric::Axis loadAxis = loadAxisFor(spec);
    auto makeLut = [&](const ArcFlavor& flavor, double outFactor,
                       double edgeFactor, bool transition) {
      liberty::Lut lut(config_.slewAxis, loadAxis);
      for (std::size_t r = 0; r < config_.slewAxis.size(); ++r) {
        for (std::size_t c = 0; c < loadAxis.size(); ++c) {
          const double s = config_.slewAxis[r];
          const double l = loadAxis[c];
          const double base =
              transition ? model_.outputSlew(spec, s, l, deltas,
                                             corner.delayFactor, 1.0)
                         : model_.delay(spec, s, l, deltas,
                                        corner.delayFactor, 1.0);
          lut.at(r, c) = base * flavor.positionFactor * outFactor * edgeFactor;
        }
      }
      return lut;
    };

    auto addArc = [&](std::string_view related, std::string_view output,
                      const ArcFlavor& flavor) {
      TimingArc arc;
      arc.relatedPin = std::string(related);
      arc.outputPin = std::string(output);
      const double of = outputFactor(spec.function, output);
      arc.riseDelay = makeLut(flavor, of, flavor.riseFactor, false);
      arc.fallDelay = makeLut(flavor, of, flavor.fallFactor, false);
      arc.riseTransition = makeLut(flavor, of, flavor.riseFactor, true);
      arc.fallTransition = makeLut(flavor, of, flavor.fallFactor, true);
      cell.addArc(std::move(arc));
    };

    if (t.sequential) {
      const char* clkName = (spec.function == CellFunction::kLatch ||
                             spec.function == CellFunction::kLatchR)
                                ? "G"
                                : "CP";
      addArc(clkName, outNames[0], ArcFlavor::forInput(0));
    } else {
      for (std::size_t o = 0; o < t.numOutputs; ++o) {
        for (std::size_t i = 0; i < t.numDataInputs; ++i) {
          addArc(inputNames[i], outNames[o], ArcFlavor::forInput(i));
        }
      }
    }

    library.addCell(std::move(cell));
  }
  return library;
}

liberty::Library Characterizer::characterizeNominal(
    const ProcessCorner& corner) const {
  SCT_TRACE_SPAN("charlib.nominal");
  liberty::OperatingConditions oc{corner.process, corner.voltage,
                                  corner.temperature};
  return characterizeWith(corner, oc.cornerName(), /*seed=*/0,
                          /*withMismatch=*/false);
}

liberty::Library Characterizer::characterizeSample(
    const ProcessCorner& corner, std::uint64_t seed,
    std::uint64_t sampleIndex) const {
  liberty::OperatingConditions oc{corner.process, corner.voltage,
                                  corner.temperature};
  const std::string name =
      oc.cornerName() + "_mc" + std::to_string(sampleIndex);
  // Decorrelate samples by mixing the sample index into the seed.
  numeric::Rng seeder(seed);
  const std::uint64_t sampleSeed = seeder.fork(sampleIndex).next();
  return characterizeWith(corner, name, sampleSeed, /*withMismatch=*/true);
}

std::vector<liberty::Cell> Characterizer::characterizeCellBatch(
    const CellSpec& spec, const ProcessCorner& corner,
    const LocalDeltasBatch& deltas) const {
  const std::size_t n = deltas.size();
  const liberty::FunctionTraits& t = liberty::traits(spec.function);
  const std::size_t rows = config_.slewAxis.size();

  // Prototype cell: everything mismatch-independent (pins, scalar
  // attributes, the setup table) is built once and copied into every
  // instance.
  liberty::Cell proto(spec.name, spec.function, spec.driveStrength,
                      spec.area);
  proto.setSetupTime(spec.setupTime);
  proto.setHoldTime(spec.holdTime);
  if (t.sequential) {
    static const liberty::Lut::AxisPtr clockAxis =
        std::make_shared<const numeric::Axis>(kClockSlewAxis);
    liberty::Lut setupLut(slew_axis_, clockAxis);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < kClockSlewAxis.size(); ++c) {
        const double value = spec.setupTime + 0.30 * config_.slewAxis[r] -
                             0.08 * kClockSlewAxis[c];
        setupLut.at(r, c) = std::max(value, 0.25 * spec.setupTime);
      }
    }
    proto.setSetupLut(std::move(setupLut));
  }

  const auto inputNames = liberty::dataInputNames(spec.function);
  for (std::size_t i = 0; i < t.numDataInputs; ++i) {
    Pin pin;
    pin.name = std::string(inputNames[i]);
    pin.direction = PinDirection::kInput;
    pin.capacitance = spec.inputCap;
    proto.addPin(std::move(pin));
  }
  if (t.sequential) {
    Pin clk;
    clk.name = spec.function == CellFunction::kLatch ||
                       spec.function == CellFunction::kLatchR
                   ? "G"
                   : "CP";
    clk.direction = PinDirection::kInput;
    clk.capacitance = spec.inputCap * 0.8;
    clk.isClock = true;
    proto.addPin(std::move(clk));
  }
  for (std::string_view ctrl : controlPins(spec.function)) {
    Pin pin;
    pin.name = std::string(ctrl);
    pin.direction = PinDirection::kInput;
    pin.capacitance = spec.inputCap * 0.5;
    proto.addPin(std::move(pin));
  }
  const auto outNames = liberty::outputNames(spec.function);
  for (std::size_t o = 0; o < t.numOutputs; ++o) {
    Pin pin;
    pin.name = std::string(outNames[o]);
    pin.direction = PinDirection::kOutput;
    pin.maxCapacitance = spec.maxLoad;
    proto.addPin(std::move(pin));
  }

  const liberty::Lut::AxisPtr loadAxis =
      std::make_shared<const numeric::Axis>(loadAxisFor(spec));
  const std::size_t cols = loadAxis->size();
  const std::size_t arcCount =
      t.sequential ? 1 : t.numOutputs * t.numDataInputs;

  std::vector<liberty::Cell> cells(n, proto);
  for (liberty::Cell& cell : cells) cell.arcs().reserve(arcCount);

  // Per-entry-across-instances evaluation: for every (slew, load) entry the
  // delay model runs once over all N mismatch draws (SoA), and the four
  // tables of the arc are sliced off the shared base values. Factor order
  // matches the scalar makeLut: ((base * position) * output) * edge.
  numeric::GridBatch riseDelay(rows, cols, n);
  numeric::GridBatch fallDelay(rows, cols, n);
  numeric::GridBatch riseTransition(rows, cols, n);
  numeric::GridBatch fallTransition(rows, cols, n);
  std::vector<double> base(n);

  const auto addArcBatch = [&](std::string_view related,
                               std::string_view output,
                               const ArcFlavor& flavor) {
    const double of = outputFactor(spec.function, output);
    const double pf = flavor.positionFactor;
    for (std::size_t r = 0; r < rows; ++r) {
      const double s = config_.slewAxis[r];
      for (std::size_t c = 0; c < cols; ++c) {
        const double l = (*loadAxis)[c];
        // The delay base is shared by the rise and fall tables (the scalar
        // path recomputes it per table; it only depends on the entry).
        model_.delayBatch(spec, s, l, deltas, corner.delayFactor, 1.0, base);
        const std::span<double> rd = riseDelay.cell(r, c);
        const std::span<double> fd = fallDelay.cell(r, c);
        for (std::size_t k = 0; k < n; ++k) {
          const double scaled = base[k] * pf * of;
          rd[k] = scaled * flavor.riseFactor;
          fd[k] = scaled * flavor.fallFactor;
        }
        model_.outputSlewBatch(spec, s, l, deltas, corner.delayFactor, 1.0,
                               base);
        const std::span<double> rt = riseTransition.cell(r, c);
        const std::span<double> ft = fallTransition.cell(r, c);
        for (std::size_t k = 0; k < n; ++k) {
          const double scaled = base[k] * pf * of;
          rt[k] = scaled * flavor.riseFactor;
          ft[k] = scaled * flavor.fallFactor;
        }
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      TimingArc arc;
      arc.relatedPin = std::string(related);
      arc.outputPin = std::string(output);
      arc.riseDelay = liberty::Lut(slew_axis_, loadAxis);
      riseDelay.scatterTo(k, arc.riseDelay.values().flat());
      arc.fallDelay = liberty::Lut(slew_axis_, loadAxis);
      fallDelay.scatterTo(k, arc.fallDelay.values().flat());
      arc.riseTransition = liberty::Lut(slew_axis_, loadAxis);
      riseTransition.scatterTo(k, arc.riseTransition.values().flat());
      arc.fallTransition = liberty::Lut(slew_axis_, loadAxis);
      fallTransition.scatterTo(k, arc.fallTransition.values().flat());
      cells[k].addArc(std::move(arc));
    }
  };

  if (t.sequential) {
    const char* clkName = (spec.function == CellFunction::kLatch ||
                           spec.function == CellFunction::kLatchR)
                              ? "G"
                              : "CP";
    addArcBatch(clkName, outNames[0], ArcFlavor::forInput(0));
  } else {
    for (std::size_t o = 0; o < t.numOutputs; ++o) {
      for (std::size_t i = 0; i < t.numDataInputs; ++i) {
        addArcBatch(inputNames[i], outNames[o], ArcFlavor::forInput(i));
      }
    }
  }
  return cells;
}

std::vector<liberty::Library> Characterizer::characterizeMonteCarlo(
    const ProcessCorner& corner, std::size_t n, std::uint64_t seed) const {
  SCT_TRACE_SPAN("charlib.mc");
  // Batch effectiveness metrics (DESIGN.md §12/§13): how many instances one
  // entry evaluation fans out across.
  static constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64, 128};
  static obs::Counter& sampleCount =
      obs::MetricsRegistry::global().counter("charlib.mc.samples");
  static obs::Histogram& batchSize = obs::MetricsRegistry::global().histogram(
      "charlib.batch.size", kBatchBounds);
  if (n == 0) return {};

  const std::vector<CellSpec>& specs = specs_.all();

  // Mismatch pre-pass, replaying the exact scalar draw order: instance k's
  // master stream is seeded from (seed, k) and forked once per spec in
  // catalogue order (fork() advances the parent stream, so the iteration
  // order matters). The draws are then transposed into per-spec SoA batches.
  std::vector<std::uint64_t> tags;  // hashTag is pure; hoist it per spec
  tags.reserve(specs.size());
  for (const CellSpec& spec : specs) {
    tags.push_back(numeric::Rng::hashTag(spec.name));
  }
  std::vector<LocalDeltasBatch> deltas(specs.size());
  for (LocalDeltasBatch& batch : deltas) batch.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    numeric::Rng seeder(seed);
    numeric::Rng master(seeder.fork(k).next());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      numeric::Rng cellRng = master.fork(tags[s]);
      deltas[s].set(k, model_.drawLocal(specs[s], cellRng));
    }
  }

  // One task per spec, each characterizing its cell across all N instances
  // per-entry (the batched tentpole path). Deterministic for any thread
  // count: tasks only depend on their own spec and the assembly below walks
  // spec order.
  std::vector<std::vector<liberty::Cell>> columns = parallel::parallelMap(
      specs.size(),
      [&](std::size_t s) {
        SCT_TRACE_SPAN("charlib.mc.batch");
        batchSize.observe(static_cast<double>(n));
        return characterizeCellBatch(specs[s], corner, deltas[s]);
      },
      /*grain=*/8);

  liberty::OperatingConditions oc{corner.process, corner.voltage,
                                  corner.temperature};
  const std::string baseName = oc.cornerName() + "_mc";
  std::vector<liberty::Library> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    liberty::Library lib(baseName + std::to_string(k), oc);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      lib.addCell(std::move(columns[s][k]));
    }
    out.push_back(std::move(lib));
  }
  sampleCount.add(n);
  return out;
}

}  // namespace sct::charlib
