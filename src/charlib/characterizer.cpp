#include "charlib/characterizer.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace sct::charlib {

using liberty::CellFunction;
using liberty::Pin;
using liberty::PinDirection;
using liberty::TimingArc;

Characterizer::Characterizer(CharacterizationConfig config)
    : config_(std::move(config)),
      model_(config_.tech, config_.variation),
      specs_(model_) {
  assert(numeric::isStrictlyIncreasing(config_.slewAxis));
}

numeric::Axis Characterizer::loadAxisFor(const CellSpec& spec) const {
  numeric::Axis axis;
  axis.reserve(config_.loadFractions.size());
  for (double fraction : config_.loadFractions) {
    axis.push_back(fraction * spec.maxLoad);
  }
  return axis;
}

namespace {

/// Per-output deterministic speed factor: carry outputs of adders are the
/// optimized path in real cells.
double outputFactor(CellFunction f, std::string_view output) noexcept {
  if (f == CellFunction::kFullAdder || f == CellFunction::kHalfAdder) {
    return output == "CO" ? 0.75 : 1.10;
  }
  return 1.0;
}

/// Auxiliary control pins present on sequential variants.
std::vector<std::string_view> controlPins(CellFunction f) {
  switch (f) {
    case CellFunction::kDffR:
      return {"RN"};
    case CellFunction::kDffS:
      return {"SN"};
    case CellFunction::kDffRS:
      return {"RN", "SN"};
    case CellFunction::kDffE:
      return {"E"};
    case CellFunction::kLatchR:
      return {"RN"};
    default:
      return {};
  }
}

}  // namespace

double arcDelayFactor(liberty::CellFunction f, std::string_view relatedPin,
                      std::string_view outputPin, bool rise) noexcept {
  std::size_t inputIndex = 0;
  if (relatedPin != "CP" && relatedPin != "G") {
    const auto names = liberty::dataInputNames(f);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == relatedPin) {
        inputIndex = i;
        break;
      }
    }
  }
  const ArcFlavor flavor = ArcFlavor::forInput(inputIndex);
  return flavor.positionFactor * outputFactor(f, outputPin) *
         (rise ? flavor.riseFactor : flavor.fallFactor);
}

liberty::Library Characterizer::characterizeWith(const ProcessCorner& corner,
                                                 const std::string& libraryName,
                                                 std::uint64_t seed,
                                                 bool withMismatch) const {
  liberty::OperatingConditions conditions{corner.process, corner.voltage,
                                          corner.temperature};
  liberty::Library library(libraryName, conditions);
  numeric::Rng master(seed);

  for (const CellSpec& spec : specs_.all()) {
    const liberty::FunctionTraits& t = liberty::traits(spec.function);
    liberty::Cell cell(spec.name, spec.function, spec.driveStrength,
                       spec.area);
    cell.setSetupTime(spec.setupTime);
    cell.setHoldTime(spec.holdTime);
    if (t.sequential) {
      // Slew-dependent setup: a slow data edge needs more margin before the
      // clock edge, a slow clock edge relaxes it slightly.
      static const numeric::Axis kClockSlewAxis = {0.01, 0.05, 0.1, 0.2};
      liberty::Lut setupLut(config_.slewAxis, kClockSlewAxis);
      for (std::size_t r = 0; r < config_.slewAxis.size(); ++r) {
        for (std::size_t c = 0; c < kClockSlewAxis.size(); ++c) {
          const double value = spec.setupTime + 0.30 * config_.slewAxis[r] -
                               0.08 * kClockSlewAxis[c];
          setupLut.at(r, c) = std::max(value, 0.25 * spec.setupTime);
        }
      }
      cell.setSetupLut(std::move(setupLut));
    }

    // One mismatch draw per cell per library instance: the same physical
    // instance fills every entry of its tables (section IV).
    LocalDeltas deltas;
    if (withMismatch) {
      numeric::Rng cellRng = master.fork(numeric::Rng::hashTag(spec.name));
      deltas = model_.drawLocal(spec, cellRng);
    }

    // Pins.
    const auto inputNames = liberty::dataInputNames(spec.function);
    for (std::size_t i = 0; i < t.numDataInputs; ++i) {
      Pin pin;
      pin.name = std::string(inputNames[i]);
      pin.direction = PinDirection::kInput;
      pin.capacitance = spec.inputCap;
      cell.addPin(std::move(pin));
    }
    if (t.sequential) {
      Pin clk;
      clk.name = spec.function == CellFunction::kLatch ||
                         spec.function == CellFunction::kLatchR
                     ? "G"
                     : "CP";
      clk.direction = PinDirection::kInput;
      clk.capacitance = spec.inputCap * 0.8;
      clk.isClock = true;
      cell.addPin(std::move(clk));
    }
    for (std::string_view ctrl : controlPins(spec.function)) {
      Pin pin;
      pin.name = std::string(ctrl);
      pin.direction = PinDirection::kInput;
      pin.capacitance = spec.inputCap * 0.5;
      cell.addPin(std::move(pin));
    }
    const auto outNames = liberty::outputNames(spec.function);
    for (std::size_t o = 0; o < t.numOutputs; ++o) {
      Pin pin;
      pin.name = std::string(outNames[o]);
      pin.direction = PinDirection::kOutput;
      pin.maxCapacitance = spec.maxLoad;
      cell.addPin(std::move(pin));
    }

    // Timing arcs: every (triggering input, output) pair. Sequential cells
    // expose the clock->Q arc (setup/hold are scalar cell attributes).
    const numeric::Axis loadAxis = loadAxisFor(spec);
    auto makeLut = [&](const ArcFlavor& flavor, double outFactor,
                       double edgeFactor, bool transition) {
      liberty::Lut lut(config_.slewAxis, loadAxis);
      for (std::size_t r = 0; r < config_.slewAxis.size(); ++r) {
        for (std::size_t c = 0; c < loadAxis.size(); ++c) {
          const double s = config_.slewAxis[r];
          const double l = loadAxis[c];
          const double base =
              transition ? model_.outputSlew(spec, s, l, deltas,
                                             corner.delayFactor, 1.0)
                         : model_.delay(spec, s, l, deltas,
                                        corner.delayFactor, 1.0);
          lut.at(r, c) = base * flavor.positionFactor * outFactor * edgeFactor;
        }
      }
      return lut;
    };

    auto addArc = [&](std::string_view related, std::string_view output,
                      const ArcFlavor& flavor) {
      TimingArc arc;
      arc.relatedPin = std::string(related);
      arc.outputPin = std::string(output);
      const double of = outputFactor(spec.function, output);
      arc.riseDelay = makeLut(flavor, of, flavor.riseFactor, false);
      arc.fallDelay = makeLut(flavor, of, flavor.fallFactor, false);
      arc.riseTransition = makeLut(flavor, of, flavor.riseFactor, true);
      arc.fallTransition = makeLut(flavor, of, flavor.fallFactor, true);
      cell.addArc(std::move(arc));
    };

    if (t.sequential) {
      const char* clkName = (spec.function == CellFunction::kLatch ||
                             spec.function == CellFunction::kLatchR)
                                ? "G"
                                : "CP";
      addArc(clkName, outNames[0], ArcFlavor::forInput(0));
    } else {
      for (std::size_t o = 0; o < t.numOutputs; ++o) {
        for (std::size_t i = 0; i < t.numDataInputs; ++i) {
          addArc(inputNames[i], outNames[o], ArcFlavor::forInput(i));
        }
      }
    }

    library.addCell(std::move(cell));
  }
  return library;
}

liberty::Library Characterizer::characterizeNominal(
    const ProcessCorner& corner) const {
  SCT_TRACE_SPAN("charlib.nominal");
  liberty::OperatingConditions oc{corner.process, corner.voltage,
                                  corner.temperature};
  return characterizeWith(corner, oc.cornerName(), /*seed=*/0,
                          /*withMismatch=*/false);
}

liberty::Library Characterizer::characterizeSample(
    const ProcessCorner& corner, std::uint64_t seed,
    std::uint64_t sampleIndex) const {
  liberty::OperatingConditions oc{corner.process, corner.voltage,
                                  corner.temperature};
  const std::string name =
      oc.cornerName() + "_mc" + std::to_string(sampleIndex);
  // Decorrelate samples by mixing the sample index into the seed.
  numeric::Rng seeder(seed);
  const std::uint64_t sampleSeed = seeder.fork(sampleIndex).next();
  return characterizeWith(corner, name, sampleSeed, /*withMismatch=*/true);
}

std::vector<liberty::Library> Characterizer::characterizeMonteCarlo(
    const ProcessCorner& corner, std::size_t n, std::uint64_t seed) const {
  SCT_TRACE_SPAN("charlib.mc");
  // Per-instance wall-clock distribution (DESIGN.md §12). Bounds in ms.
  static constexpr double kSampleMsBounds[] = {0.5, 1, 2, 5, 10, 25, 50, 100};
  static obs::Counter& sampleCount =
      obs::MetricsRegistry::global().counter("charlib.mc.samples");
  static obs::Histogram& sampleMs = obs::MetricsRegistry::global().histogram(
      "charlib.mc.sample_ms", kSampleMsBounds);
  // Instance k is seeded purely from (seed, k), so the samples are
  // order-independent and the map is bit-identical for any thread count.
  return parallel::parallelMap(
      n,
      [&](std::size_t k) {
        SCT_TRACE_SPAN("charlib.mc.sample");
        const bool timed = obs::metricsEnabled();
        const std::uint64_t start = timed ? obs::monotonicNanos() : 0;
        liberty::Library sample = characterizeSample(corner, seed, k);
        if (timed) {
          sampleCount.inc();
          sampleMs.observe(
              static_cast<double>(obs::monotonicNanos() - start) / 1e6);
        }
        return sample;
      },
      /*grain=*/1);
}

}  // namespace sct::charlib
