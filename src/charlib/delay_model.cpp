#include "charlib/delay_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sct::charlib {

CellSpec DelayModel::makeSpec(liberty::CellFunction f,
                              double driveStrength) const {
  assert(driveStrength > 0.0);
  const liberty::FunctionTraits& t = liberty::traits(f);
  CellSpec spec;
  spec.name = liberty::makeCellName(f, driveStrength);
  spec.function = f;
  spec.driveStrength = driveStrength;

  // Deterministic electrical personality of the cell *type* (not instance
  // mismatch): topology-level differences between cells of equal strength.
  numeric::Rng personality(numeric::Rng::hashTag(spec.name));
  const double spread = tech_.personalitySpread;
  const double resJitter = 1.0 + personality.uniform(-spread, spread);
  const double intJitter = 1.0 + personality.uniform(-spread, spread);

  spec.driveRes = tech_.rUnit / driveStrength * resJitter;
  spec.inputCap = tech_.cInUnit * t.logicalEffort * driveStrength;
  spec.intrinsic = tech_.tau * t.parasitic * intJitter;
  spec.maxLoad = tech_.maxLoadPerStrength * driveStrength;
  // Area grows sub-linearly at the low end (shared wells/rails), linearly
  // after; relative footprint follows the function complexity.
  spec.area = tech_.areaUnit * t.unitArea * (0.35 + 0.65 * driveStrength);
  // Pelgrom: mismatch shrinks with the square root of device area.
  spec.localSigma =
      variation_.pelgrom / std::sqrt(driveStrength * t.unitArea);
  if (t.sequential) {
    spec.setupTime = 0.040 + 0.020 / driveStrength;
    spec.holdTime = 0.010;
  }
  return spec;
}

namespace {

/// Shared core of delay(): the slew-sensitivity coefficient including the
/// high-load boost (steeper slew dependence when the output edge is slow).
double slewCoefficient(const TechnologyParams& tech, double rc) noexcept {
  return tech.slewSens *
         (1.0 + tech.slewSensLoadBoost * rc / (rc + tech.slewSensLoadKnee));
}

/// Overload blow-up towards (and beyond) the cell's drive limit.
double overloadFactor(const TechnologyParams& tech, const CellSpec& spec,
                      double load) noexcept {
  const double x = load / spec.maxLoad;
  return 1.0 + tech.overload * x * x;
}

// Per-instance cores shared by the scalar and batched entry points: the
// instance-invariant subterms arrive precomputed, the mismatch-dependent
// arithmetic lives in exactly one expression tree, so both paths round
// identically by construction.

/// delay() with rc = driveRes*load, ov = overloadFactor and
/// cs = slewCoefficient*slew hoisted.
inline double delayCore(double rc, double ov, double cs, double intrinsic,
                        double dDrive, double dIntrinsic, double dSlew,
                        double cornerFactor, double globalFactor) noexcept {
  const double driveTerm = rc * (1.0 + dDrive) * ov;
  const double intrinsicTerm = intrinsic * (1.0 + dIntrinsic);
  // The slew term inherits part of the drive mismatch: a weak transistor
  // both drives the load slower and resolves a slow input edge later. This
  // coupling makes the sigma surface rise along the slew axis fastest where
  // the load is heavy, the structure the slew-slope tuning methods exploit.
  const double slewTerm = cs * (1.0 + 0.7 * dDrive + dSlew);
  const double nominal = intrinsicTerm + driveTerm + slewTerm;
  return std::max(0.0, nominal) * cornerFactor * globalFactor;
}

/// outputSlew() with rl = driveRes*load, ov = overloadFactor,
/// ti = transIntrinsic*intrinsic and tl = transLeak*slew hoisted.
inline double outputSlewCore(double rl, double ov, double ti, double tl,
                             double transDrive, double dDrive,
                             double dIntrinsic, double cornerFactor,
                             double globalFactor) noexcept {
  const double rc = rl * (1.0 + dDrive) * ov;
  const double value = ti * (1.0 + dIntrinsic) + transDrive * rc + tl;
  return std::max(1e-4, value * cornerFactor * globalFactor);
}

}  // namespace

double DelayModel::delay(const CellSpec& spec, double slew, double load,
                         const LocalDeltas& local, double cornerFactor,
                         double globalFactor) const noexcept {
  assert(slew >= 0.0 && load >= 0.0);
  const double rc = spec.driveRes * load;
  return delayCore(rc, overloadFactor(tech_, spec, load),
                   slewCoefficient(tech_, rc) * slew, spec.intrinsic,
                   local.dDrive, local.dIntrinsic, local.dSlew, cornerFactor,
                   globalFactor);
}

double DelayModel::outputSlew(const CellSpec& spec, double slew, double load,
                              const LocalDeltas& local, double cornerFactor,
                              double globalFactor) const noexcept {
  return outputSlewCore(spec.driveRes * load,
                        overloadFactor(tech_, spec, load),
                        tech_.transIntrinsic * spec.intrinsic,
                        tech_.transLeak * slew, tech_.transDrive,
                        local.dDrive, local.dIntrinsic, cornerFactor,
                        globalFactor);
}

void DelayModel::delayBatch(const CellSpec& spec, double slew, double load,
                            const LocalDeltasBatch& local, double cornerFactor,
                            double globalFactor,
                            std::span<double> out) const noexcept {
  assert(slew >= 0.0 && load >= 0.0);
  assert(out.size() == local.size());
  const double rc = spec.driveRes * load;
  const double ov = overloadFactor(tech_, spec, load);
  const double cs = slewCoefficient(tech_, rc) * slew;
  const double intrinsic = spec.intrinsic;
  const double* const dDrive = local.dDrive.data();
  const double* const dIntrinsic = local.dIntrinsic.data();
  const double* const dSlew = local.dSlew.data();
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = delayCore(rc, ov, cs, intrinsic, dDrive[k], dIntrinsic[k],
                       dSlew[k], cornerFactor, globalFactor);
  }
}

void DelayModel::outputSlewBatch(const CellSpec& spec, double slew,
                                 double load, const LocalDeltasBatch& local,
                                 double cornerFactor, double globalFactor,
                                 std::span<double> out) const noexcept {
  assert(out.size() == local.size());
  const double rl = spec.driveRes * load;
  const double ov = overloadFactor(tech_, spec, load);
  const double ti = tech_.transIntrinsic * spec.intrinsic;
  const double tl = tech_.transLeak * slew;
  const double transDrive = tech_.transDrive;
  const double* const dDrive = local.dDrive.data();
  const double* const dIntrinsic = local.dIntrinsic.data();
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = outputSlewCore(rl, ov, ti, tl, transDrive, dDrive[k],
                            dIntrinsic[k], cornerFactor, globalFactor);
  }
}

LocalDeltas DelayModel::drawLocal(const CellSpec& spec,
                                  numeric::Rng& rng) const noexcept {
  LocalDeltas d;
  d.dDrive = rng.normal(0.0, spec.localSigma);
  d.dIntrinsic =
      rng.normal(0.0, spec.localSigma * variation_.intrinsicFraction);
  d.dSlew = rng.normal(0.0, spec.localSigma * variation_.slewFraction);
  return d;
}

double DelayModel::drawGlobalFactor(numeric::Rng& rng) const noexcept {
  return 1.0 + rng.normal(0.0, variation_.globalSigma);
}

}  // namespace sct::charlib
