#include "charlib/delay_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sct::charlib {

CellSpec DelayModel::makeSpec(liberty::CellFunction f,
                              double driveStrength) const {
  assert(driveStrength > 0.0);
  const liberty::FunctionTraits& t = liberty::traits(f);
  CellSpec spec;
  spec.name = liberty::makeCellName(f, driveStrength);
  spec.function = f;
  spec.driveStrength = driveStrength;

  // Deterministic electrical personality of the cell *type* (not instance
  // mismatch): topology-level differences between cells of equal strength.
  numeric::Rng personality(numeric::Rng::hashTag(spec.name));
  const double spread = tech_.personalitySpread;
  const double resJitter = 1.0 + personality.uniform(-spread, spread);
  const double intJitter = 1.0 + personality.uniform(-spread, spread);

  spec.driveRes = tech_.rUnit / driveStrength * resJitter;
  spec.inputCap = tech_.cInUnit * t.logicalEffort * driveStrength;
  spec.intrinsic = tech_.tau * t.parasitic * intJitter;
  spec.maxLoad = tech_.maxLoadPerStrength * driveStrength;
  // Area grows sub-linearly at the low end (shared wells/rails), linearly
  // after; relative footprint follows the function complexity.
  spec.area = tech_.areaUnit * t.unitArea * (0.35 + 0.65 * driveStrength);
  // Pelgrom: mismatch shrinks with the square root of device area.
  spec.localSigma =
      variation_.pelgrom / std::sqrt(driveStrength * t.unitArea);
  if (t.sequential) {
    spec.setupTime = 0.040 + 0.020 / driveStrength;
    spec.holdTime = 0.010;
  }
  return spec;
}

namespace {

/// Shared core of delay(): the slew-sensitivity coefficient including the
/// high-load boost (steeper slew dependence when the output edge is slow).
double slewCoefficient(const TechnologyParams& tech, double rc) noexcept {
  return tech.slewSens *
         (1.0 + tech.slewSensLoadBoost * rc / (rc + tech.slewSensLoadKnee));
}

/// Overload blow-up towards (and beyond) the cell's drive limit.
double overloadFactor(const TechnologyParams& tech, const CellSpec& spec,
                      double load) noexcept {
  const double x = load / spec.maxLoad;
  return 1.0 + tech.overload * x * x;
}

}  // namespace

double DelayModel::delay(const CellSpec& spec, double slew, double load,
                         const LocalDeltas& local, double cornerFactor,
                         double globalFactor) const noexcept {
  assert(slew >= 0.0 && load >= 0.0);
  const double rc = spec.driveRes * load;
  const double driveTerm =
      rc * (1.0 + local.dDrive) * overloadFactor(tech_, spec, load);
  const double intrinsicTerm = spec.intrinsic * (1.0 + local.dIntrinsic);
  // The slew term inherits part of the drive mismatch: a weak transistor
  // both drives the load slower and resolves a slow input edge later. This
  // coupling makes the sigma surface rise along the slew axis fastest where
  // the load is heavy, the structure the slew-slope tuning methods exploit.
  const double slewTerm = slewCoefficient(tech_, rc) * slew *
                          (1.0 + 0.7 * local.dDrive + local.dSlew);
  const double nominal = intrinsicTerm + driveTerm + slewTerm;
  return std::max(0.0, nominal) * cornerFactor * globalFactor;
}

double DelayModel::outputSlew(const CellSpec& spec, double slew, double load,
                              const LocalDeltas& local, double cornerFactor,
                              double globalFactor) const noexcept {
  const double rc = spec.driveRes * load * (1.0 + local.dDrive) *
                    overloadFactor(tech_, spec, load);
  const double value = tech_.transIntrinsic * spec.intrinsic *
                           (1.0 + local.dIntrinsic) +
                       tech_.transDrive * rc + tech_.transLeak * slew;
  return std::max(1e-4, value * cornerFactor * globalFactor);
}

LocalDeltas DelayModel::drawLocal(const CellSpec& spec,
                                  numeric::Rng& rng) const noexcept {
  LocalDeltas d;
  d.dDrive = rng.normal(0.0, spec.localSigma);
  d.dIntrinsic =
      rng.normal(0.0, spec.localSigma * variation_.intrinsicFraction);
  d.dSlew = rng.normal(0.0, spec.localSigma * variation_.slewFraction);
  return d;
}

double DelayModel::drawGlobalFactor(numeric::Rng& rng) const noexcept {
  return 1.0 + rng.normal(0.0, variation_.globalSigma);
}

}  // namespace sct::charlib
