#include "charlib/catalogue.hpp"

namespace sct::charlib {

using liberty::CellFunction;

const std::vector<CatalogueFamily>& standardCatalogue() {
  // Strength ladders chosen so every appendix-A category count matches the
  // paper exactly (sum = 304). Strength 6 appears in many families: Fig. 5
  // inspects exactly that cluster.
  static const std::vector<CatalogueFamily> catalogue = {
      // 19 inverters
      {CellFunction::kInv,
       {0.5, 0.7, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 28,
        32}},
      // 36 "Or" (AND/OR)
      {CellFunction::kAnd2, {1, 2, 3, 4, 6, 8}},
      {CellFunction::kAnd3, {1, 2, 3, 4, 6, 8}},
      {CellFunction::kAnd4, {1, 2, 3, 4, 6, 8}},
      {CellFunction::kOr2, {1, 2, 3, 4, 6, 8}},
      {CellFunction::kOr3, {1, 2, 3, 4, 6, 8}},
      {CellFunction::kOr4, {1, 2, 3, 4, 6, 8}},
      // 46 nand
      {CellFunction::kNand2,
       {0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16, 20}},
      {CellFunction::kNand2B, {1, 2, 3, 4, 6, 8, 12, 16}},
      {CellFunction::kNand3, {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16}},
      {CellFunction::kNand4, {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16}},
      // 43 nor
      {CellFunction::kNor2, {0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16}},
      {CellFunction::kNor2B, {1, 2, 3, 4, 6, 8, 12, 16}},
      {CellFunction::kNor3, {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12}},
      {CellFunction::kNor4, {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12}},
      // 29 xor/xnor
      {CellFunction::kXor2,
       {0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20}},
      {CellFunction::kXnor2,
       {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20}},
      // 34 adders
      {CellFunction::kFullAdder,
       {0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20,
        24, 28}},
      {CellFunction::kHalfAdder,
       {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24}},
      // 27 multiplexers
      {CellFunction::kMux2,
       {0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24}},
      {CellFunction::kMux4, {1, 2, 3, 4, 6, 8, 10, 12, 16, 20}},
      // 51 flip-flops
      {CellFunction::kDff,
       {0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20}},
      {CellFunction::kDffR, {0.5, 1, 1.5, 2, 3, 4, 5, 6, 8, 10, 12, 16}},
      {CellFunction::kDffS, {1, 2, 3, 4, 6, 8, 12, 16}},
      {CellFunction::kDffRS, {1, 2, 3, 4, 6, 8, 12, 16}},
      {CellFunction::kDffE, {1, 2, 3, 4, 6, 8, 12, 16}},
      // 12 latches
      {CellFunction::kLatch, {1, 2, 3, 4, 6, 8, 12}},
      {CellFunction::kLatchR, {1, 2, 4, 6, 8}},
      // 7 other
      {CellFunction::kBuf, {2, 4, 8}},
      {CellFunction::kClkBuf, {4, 8}},
      {CellFunction::kTieHi, {1}},
      {CellFunction::kTieLo, {1}},
  };
  return catalogue;
}

std::vector<CellSpec> buildSpecs(const DelayModel& model) {
  std::vector<CellSpec> specs;
  specs.reserve(304);
  for (const CatalogueFamily& family : standardCatalogue()) {
    for (double strength : family.strengths) {
      specs.push_back(model.makeSpec(family.function, strength));
    }
  }
  return specs;
}

SpecRegistry::SpecRegistry(const DelayModel& model)
    : specs_(buildSpecs(model)) {
  for (const CellSpec& spec : specs_) by_name_[spec.name] = &spec;
}

const CellSpec* SpecRegistry::find(const std::string& name) const noexcept {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

std::map<liberty::CellCategory, std::size_t> catalogueCensus() {
  std::map<liberty::CellCategory, std::size_t> census;
  for (const CatalogueFamily& family : standardCatalogue()) {
    census[liberty::traits(family.function).category] +=
        family.strengths.size();
  }
  return census;
}

}  // namespace sct::charlib
