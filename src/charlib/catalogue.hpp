#pragma once
// The 304-cell catalogue matching the paper's appendix A census:
//   19 inverters, 36 and/or, 46 nand, 43 nor, 29 xor/xnor, 34 adders,
//   27 multiplexers, 51 flip-flops, 12 latches, 7 other.
// Cell names follow the paper's convention
// "prefix[B]_strength" with 'P' as decimal separator (e.g. NR2B_3, IV_0P5).

#include <map>
#include <vector>

#include "charlib/delay_model.hpp"
#include "liberty/function.hpp"

namespace sct::charlib {

struct CatalogueFamily {
  liberty::CellFunction function;
  std::vector<double> strengths;
};

/// The full 304-cell family list.
[[nodiscard]] const std::vector<CatalogueFamily>& standardCatalogue();

/// Electrical specs for every catalogue cell, in deterministic order.
[[nodiscard]] std::vector<CellSpec> buildSpecs(const DelayModel& model);

/// Spec registry addressable by cell name (used by the Monte-Carlo path
/// simulator to recover the model behind a mapped library cell).
class SpecRegistry {
 public:
  explicit SpecRegistry(const DelayModel& model);

  [[nodiscard]] const CellSpec* find(const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<CellSpec>& all() const noexcept {
    return specs_;
  }

 private:
  std::vector<CellSpec> specs_;
  std::map<std::string, const CellSpec*> by_name_;
};

/// Census per appendix-A category; must total 304.
[[nodiscard]] std::map<liberty::CellCategory, std::size_t> catalogueCensus();

}  // namespace sct::charlib
