#pragma once
// Analytic gate delay model (logical effort + RC) with explicit mismatch
// parameters. This is the SPICE substitute: cheap enough to characterize
// 304 cells x 50 Monte-Carlo library instances in well under a second while
// reproducing the sigma-surface shapes the tuning method keys on (Fig. 4):
//   - sigma grows with output load and input slew,
//   - higher drive strength => lower sigma and flatter gradient,
//   - delay blows up quadratically when a cell is loaded near its limit.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "charlib/process.hpp"
#include "liberty/function.hpp"
#include "numeric/rng.hpp"

namespace sct::charlib {

/// Electrical description of one catalogue cell, derived from its function
/// traits, drive strength and technology constants.
struct CellSpec {
  std::string name;
  liberty::CellFunction function = liberty::CellFunction::kInv;
  double driveStrength = 1.0;
  double driveRes = 0.0;    ///< output resistance [kOhm]
  double inputCap = 0.0;    ///< per-data-input capacitance [pF]
  double intrinsic = 0.0;   ///< parasitic delay [ns]
  double maxLoad = 0.0;     ///< output max_capacitance [pF]
  double area = 0.0;        ///< layout area [um^2]
  double localSigma = 0.0;  ///< Pelgrom mismatch sigma of this cell
  double setupTime = 0.0;   ///< sequential cells only [ns]
  double holdTime = 0.0;    ///< sequential cells only [ns]
};

/// Per-cell-instance local mismatch draws (one physical instance on one die).
struct LocalDeltas {
  double dDrive = 0.0;      ///< relative drive-resistance mismatch
  double dIntrinsic = 0.0;  ///< relative intrinsic-delay mismatch
  double dSlew = 0.0;       ///< relative slew-sensitivity mismatch
};

/// Structure-of-arrays mismatch draws of all Monte-Carlo instances of one
/// cell, the per-instance dimension of the batched characterizer: one
/// delayBatch() call evaluates one LUT entry across every instance.
struct LocalDeltasBatch {
  std::vector<double> dDrive;
  std::vector<double> dIntrinsic;
  std::vector<double> dSlew;

  [[nodiscard]] std::size_t size() const noexcept { return dDrive.size(); }
  void resize(std::size_t n) {
    dDrive.resize(n);
    dIntrinsic.resize(n);
    dSlew.resize(n);
  }
  void set(std::size_t k, const LocalDeltas& d) noexcept {
    dDrive[k] = d.dDrive;
    dIntrinsic[k] = d.dIntrinsic;
    dSlew[k] = d.dSlew;
  }
  [[nodiscard]] LocalDeltas get(std::size_t k) const noexcept {
    return {dDrive[k], dIntrinsic[k], dSlew[k]};
  }
};

class DelayModel {
 public:
  DelayModel(TechnologyParams tech, VariationParams variation)
      : tech_(tech), variation_(variation) {}

  [[nodiscard]] const TechnologyParams& tech() const noexcept { return tech_; }
  [[nodiscard]] const VariationParams& variation() const noexcept {
    return variation_;
  }

  /// Builds the electrical spec for a function at a drive strength. The cell
  /// name seeds a small deterministic "personality" so that cells of equal
  /// strength have similar but not identical surfaces (Fig. 5).
  [[nodiscard]] CellSpec makeSpec(liberty::CellFunction f,
                                  double driveStrength) const;

  /// Propagation delay [ns] at (input slew, output load) for one instance.
  /// cornerFactor comes from ProcessCorner; globalFactor is the per-die
  /// multiplicative shift (1.0 when global variation is off).
  [[nodiscard]] double delay(const CellSpec& spec, double slew, double load,
                             const LocalDeltas& local, double cornerFactor,
                             double globalFactor) const noexcept;

  /// Output transition time [ns] for the same instance and operating point.
  [[nodiscard]] double outputSlew(const CellSpec& spec, double slew,
                                  double load, const LocalDeltas& local,
                                  double cornerFactor,
                                  double globalFactor) const noexcept;

  /// Batched delay(): out[k] = delay(spec, slew, load, local[k], ...) for
  /// every instance k, bit-for-bit. The instance-invariant subterms (RC
  /// product, overload factor, slew coefficient) are hoisted out of the
  /// loop — each is a pure common subexpression of the scalar formula, so
  /// hoisting cannot change any rounded result — leaving a contiguous
  /// branch-free inner loop over the mismatch arrays.
  void delayBatch(const CellSpec& spec, double slew, double load,
                  const LocalDeltasBatch& local, double cornerFactor,
                  double globalFactor, std::span<double> out) const noexcept;

  /// Batched outputSlew(), same contract as delayBatch().
  void outputSlewBatch(const CellSpec& spec, double slew, double load,
                       const LocalDeltasBatch& local, double cornerFactor,
                       double globalFactor,
                       std::span<double> out) const noexcept;

  /// Draws fresh local mismatch for one instance of the cell.
  [[nodiscard]] LocalDeltas drawLocal(const CellSpec& spec,
                                      numeric::Rng& rng) const noexcept;

  /// Draws a per-die global factor (shared across all cells of the die).
  [[nodiscard]] double drawGlobalFactor(numeric::Rng& rng) const noexcept;

 private:
  TechnologyParams tech_;
  VariationParams variation_;
};

/// Arc-level deterministic adjustments applied during characterization:
/// later inputs of a stack are slightly slower, rise/fall are skewed.
struct ArcFlavor {
  double positionFactor = 1.0;  ///< per-input-index delay factor
  double riseFactor = 1.04;
  double fallFactor = 0.96;

  [[nodiscard]] static ArcFlavor forInput(std::size_t inputIndex) noexcept {
    return {1.0 + 0.06 * static_cast<double>(inputIndex), 1.04, 0.96};
  }
};

}  // namespace sct::charlib
