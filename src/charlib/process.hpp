#pragma once
// Process/corner and variation parameters of the synthetic 40nm-class
// technology. Substitutes the foundry transistor models of the paper
// (section I): global variation is a per-die multiplicative shift shared by
// all cells; local variation is a per-cell-instance mismatch whose magnitude
// follows Pelgrom's law (sigma ~ 1/sqrt(W*L), i.e. ~1/sqrt(drive strength))
// as cited in the paper [14].

#include <string>
#include <vector>

namespace sct::charlib {

/// A PVT corner. delayFactor multiplies every nominal delay/transition, so
/// mean and sigma scale together when moving corners — the behaviour the
/// paper validates in Fig. 15.
struct ProcessCorner {
  std::string process = "TT";  ///< TT / SS / FF
  double voltage = 1.1;        ///< V
  double temperature = 25.0;   ///< degC
  double delayFactor = 1.0;    ///< relative to typical

  [[nodiscard]] static ProcessCorner typical() { return {"TT", 1.1, 25.0, 1.00}; }
  [[nodiscard]] static ProcessCorner slow() { return {"SS", 1.0, 125.0, 1.28}; }
  [[nodiscard]] static ProcessCorner fast() { return {"FF", 1.2, -40.0, 0.79}; }
  [[nodiscard]] static std::vector<ProcessCorner> all() {
    return {fast(), typical(), slow()};
  }
};

/// Electrical constants of the synthetic technology.
/// Units: time ns, capacitance pF, resistance kOhm (so kOhm*pF = ns).
struct TechnologyParams {
  double rUnit = 4.0;      ///< unit-drive output resistance [kOhm]
  double cInUnit = 0.001;  ///< unit-drive, unit-effort input cap [pF]
  double tau = 0.004;      ///< rUnit * cInUnit, intrinsic delay unit [ns]
  double slewSens = 0.20;  ///< delay sensitivity to input slew
  double slewSensLoadBoost = 1.5;  ///< extra slew sensitivity at high load
  double slewSensLoadKnee = 0.02;  ///< [ns] knee of the load-boost term
  double overload = 0.35;  ///< quadratic delay blow-up towards max load
  double transIntrinsic = 0.7;  ///< output slew from intrinsic delay
  double transDrive = 2.2;      ///< output slew from R*C
  double transLeak = 0.10;      ///< output slew leakage from input slew
  double maxLoadPerStrength = 0.06;  ///< pin max_capacitance per strength [pF]
  double areaUnit = 1.2;  ///< layout area of a unit-effort unit-drive cell [um^2]
  /// Deterministic per-cell-type electrical personality spread (cells of the
  /// same drive strength are similar but not identical; Fig. 5).
  double personalitySpread = 0.05;
};

/// Variation magnitudes.
struct VariationParams {
  /// Pelgrom coefficient: local mismatch sigma of a cell parameter is
  /// pelgrom / sqrt(driveStrength * unitArea). Calibrated so that the
  /// delay sigma of weak cells at heavy load reaches the 0.01-0.05 ns range
  /// where the paper's Table 2 sigma ceilings (0.04...0.01 ns) separate the
  /// LUT regions.
  double pelgrom = 0.10;
  /// Relative sigma of the intrinsic-delay mismatch vs the drive mismatch.
  double intrinsicFraction = 0.8;
  /// Relative sigma of the slew-sensitivity mismatch vs the drive mismatch.
  double slewFraction = 0.6;
  /// Global (inter-die) multiplicative sigma shared by all cells on a die.
  double globalSigma = 0.034;
};

}  // namespace sct::charlib
