#include "liberty/function.hpp"

#include <cassert>
#include <charconv>

namespace sct::liberty {
namespace {

// Logical effort values loosely follow Sutherland/Sproull per-input efforts
// (INV = 1, NAND2 = 4/3, NOR2 = 5/3, XOR ~ 4); parasitics scale with the
// number of stacked/internal transistors. Areas are relative unit-drive
// footprints.
constexpr FunctionTraits kTraits[] = {
    {CellFunction::kInv, "IV", 1, 1, false, CellCategory::kInverter, 1.00, 1.0, 1.0},
    {CellFunction::kBuf, "BF", 1, 1, false, CellCategory::kOther, 1.10, 2.0, 1.6},
    {CellFunction::kClkBuf, "CB", 1, 1, false, CellCategory::kOther, 1.05, 2.2, 2.0},
    {CellFunction::kTieHi, "TIEH", 0, 1, false, CellCategory::kOther, 1.00, 1.0, 0.8},
    {CellFunction::kTieLo, "TIEL", 0, 1, false, CellCategory::kOther, 1.00, 1.0, 0.8},
    {CellFunction::kNand2, "ND2", 2, 1, false, CellCategory::kNand, 1.33, 2.0, 1.4},
    {CellFunction::kNand2B, "ND2B", 2, 1, false, CellCategory::kNand, 1.45, 2.6, 1.9},
    {CellFunction::kNand3, "ND3", 3, 1, false, CellCategory::kNand, 1.67, 3.0, 1.9},
    {CellFunction::kNand4, "ND4", 4, 1, false, CellCategory::kNand, 2.00, 4.0, 2.4},
    {CellFunction::kNor2, "NR2", 2, 1, false, CellCategory::kNor, 1.67, 2.2, 1.5},
    {CellFunction::kNor2B, "NR2B", 2, 1, false, CellCategory::kNor, 1.80, 2.8, 2.0},
    {CellFunction::kNor3, "NR3", 3, 1, false, CellCategory::kNor, 2.33, 3.4, 2.1},
    {CellFunction::kNor4, "NR4", 4, 1, false, CellCategory::kNor, 3.00, 4.6, 2.7},
    {CellFunction::kAnd2, "AN2", 2, 1, false, CellCategory::kOr, 1.50, 3.0, 1.8},
    {CellFunction::kAnd3, "AN3", 3, 1, false, CellCategory::kOr, 1.83, 4.0, 2.3},
    {CellFunction::kAnd4, "AN4", 4, 1, false, CellCategory::kOr, 2.17, 5.0, 2.8},
    {CellFunction::kOr2, "OR2", 2, 1, false, CellCategory::kOr, 1.83, 3.2, 1.9},
    {CellFunction::kOr3, "OR3", 3, 1, false, CellCategory::kOr, 2.50, 4.4, 2.4},
    {CellFunction::kOr4, "OR4", 4, 1, false, CellCategory::kOr, 3.17, 5.6, 2.9},
    {CellFunction::kXor2, "EO2", 2, 1, false, CellCategory::kXnor, 4.00, 4.0, 2.8},
    {CellFunction::kXnor2, "EN2", 2, 1, false, CellCategory::kXnor, 4.00, 4.2, 2.8},
    {CellFunction::kAoi21, "AOI21", 3, 1, false, CellCategory::kOther, 2.00, 3.0, 1.9},
    {CellFunction::kOai21, "OAI21", 3, 1, false, CellCategory::kOther, 1.85, 3.0, 1.9},
    {CellFunction::kMux2, "MU2", 3, 1, false, CellCategory::kMultiplexer, 2.00, 4.0, 2.6},
    {CellFunction::kMux4, "MU4", 6, 1, false, CellCategory::kMultiplexer, 2.60, 7.0, 5.0},
    {CellFunction::kHalfAdder, "HA1", 2, 2, false, CellCategory::kAdder, 4.00, 5.0, 3.6},
    {CellFunction::kFullAdder, "FA1", 3, 2, false, CellCategory::kAdder, 4.50, 7.0, 5.4},
    {CellFunction::kDff, "FD1", 1, 1, true, CellCategory::kFlipFlop, 1.80, 6.0, 4.6},
    {CellFunction::kDffR, "FD1R", 1, 1, true, CellCategory::kFlipFlop, 1.90, 6.4, 5.2},
    {CellFunction::kDffS, "FD1S", 1, 1, true, CellCategory::kFlipFlop, 1.90, 6.4, 5.2},
    {CellFunction::kDffRS, "FD1RS", 1, 1, true, CellCategory::kFlipFlop, 2.00, 6.8, 5.8},
    {CellFunction::kDffE, "FD1E", 1, 1, true, CellCategory::kFlipFlop, 2.00, 6.8, 5.8},
    {CellFunction::kLatch, "LD1", 1, 1, true, CellCategory::kLatch, 1.60, 4.0, 3.0},
    {CellFunction::kLatchR, "LD1R", 1, 1, true, CellCategory::kLatch, 1.70, 4.4, 3.4},
};

static_assert(sizeof(kTraits) / sizeof(kTraits[0]) == kNumCellFunctions);

constexpr std::string_view kFunctionNames[] = {
    "INV",   "BUF",   "CLKBUF", "TIEHI", "TIELO", "NAND2", "NAND2B",
    "NAND3", "NAND4", "NOR2",   "NOR2B", "NOR3",  "NOR4",  "AND2",
    "AND3",  "AND4",  "OR2",    "OR3",   "OR4",   "XOR2",  "XNOR2",
    "AOI21", "OAI21", "MUX2",   "MUX4",  "HA",    "FA",    "DFF",
    "DFFR",  "DFFS",  "DFFRS",  "DFFE",  "LATCH", "LATCHR",
};
static_assert(sizeof(kFunctionNames) / sizeof(kFunctionNames[0]) ==
              kNumCellFunctions);

constexpr std::string_view kCategoryNames[] = {
    "Inverter", "Or",           "Nand",     "Nor",   "Xnor",
    "Adder",    "Multiplexer",  "FlipFlop", "Latch", "Other",
};

}  // namespace

const FunctionTraits& traits(CellFunction f) noexcept {
  const auto idx = static_cast<std::size_t>(f);
  assert(idx < kNumCellFunctions);
  assert(kTraits[idx].function == f);
  return kTraits[idx];
}

std::string_view toString(CellFunction f) noexcept {
  return kFunctionNames[static_cast<std::size_t>(f)];
}

std::string_view toString(CellCategory c) noexcept {
  return kCategoryNames[static_cast<std::size_t>(c)];
}

std::string strengthSuffix(double strength) {
  assert(strength > 0.0);
  const auto whole = static_cast<long>(strength);
  const auto tenths =
      static_cast<long>((strength - static_cast<double>(whole)) * 10.0 + 0.5);
  std::string out = std::to_string(whole);
  if (tenths != 0) {
    out += 'P';
    out += std::to_string(tenths);
  }
  return out;
}

std::string makeCellName(CellFunction f, double strength) {
  std::string name(traits(f).prefix);
  name += '_';
  name += strengthSuffix(strength);
  return name;
}

double parseStrengthSuffix(std::string_view suffix) noexcept {
  const std::size_t p = suffix.find('P');
  auto parseLong = [](std::string_view text, long& out) {
    const auto* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && ptr == end;
  };
  long whole = 0;
  long tenths = 0;
  if (p == std::string_view::npos) {
    if (!parseLong(suffix, whole)) return -1.0;
  } else {
    if (!parseLong(suffix.substr(0, p), whole)) return -1.0;
    if (!parseLong(suffix.substr(p + 1), tenths)) return -1.0;
  }
  if (whole < 0 || tenths < 0 || tenths > 9) return -1.0;
  return static_cast<double>(whole) + static_cast<double>(tenths) / 10.0;
}

std::array<std::string_view, 6> dataInputNames(CellFunction f) noexcept {
  switch (f) {
    case CellFunction::kMux2:
      return {"D0", "D1", "S", "", "", ""};
    case CellFunction::kMux4:
      return {"D0", "D1", "D2", "D3", "S0", "S1"};
    case CellFunction::kFullAdder:
      return {"A", "B", "CI", "", "", ""};
    case CellFunction::kDff:
    case CellFunction::kDffR:
    case CellFunction::kDffS:
    case CellFunction::kDffRS:
    case CellFunction::kDffE:
    case CellFunction::kLatch:
    case CellFunction::kLatchR:
      return {"D", "", "", "", "", ""};
    default:
      return {"A", "B", "C", "D", "E", "F"};
  }
}

std::array<std::string_view, 2> outputNames(CellFunction f) noexcept {
  switch (f) {
    case CellFunction::kHalfAdder:
    case CellFunction::kFullAdder:
      return {"S", "CO"};
    case CellFunction::kDff:
    case CellFunction::kDffR:
    case CellFunction::kDffS:
    case CellFunction::kDffRS:
    case CellFunction::kDffE:
    case CellFunction::kLatch:
    case CellFunction::kLatchR:
      return {"Q", ""};
    default:
      return {"Z", ""};
  }
}

}  // namespace sct::liberty
