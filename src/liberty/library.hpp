#pragma once
// A characterized standard cell library: a named corner (e.g. TT1P1V25C)
// plus a set of cells. Cells have stable addresses for the lifetime of the
// library so netlists and timing graphs can hold Cell pointers.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/cell.hpp"

namespace sct::liberty {

/// Operating-condition metadata carried in the library header.
struct OperatingConditions {
  std::string processName = "TT";  ///< TT / FF / SS
  double voltage = 1.1;            ///< V
  double temperature = 25.0;       ///< degC

  /// Corner string in the paper's style, e.g. "TT1P1V25C".
  [[nodiscard]] std::string cornerName() const;
};

class Library {
 public:
  Library() = default;
  explicit Library(std::string name, OperatingConditions conditions = {})
      : name_(std::move(name)), conditions_(std::move(conditions)) {}

  // Movable, non-copyable: cells are identity objects referenced by pointer.
  Library(Library&&) noexcept = default;
  Library& operator=(Library&&) noexcept = default;
  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const OperatingConditions& conditions() const noexcept {
    return conditions_;
  }

  /// Adds a cell; the returned pointer stays valid for the library lifetime.
  Cell* addCell(Cell cell);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] const Cell* findCell(std::string_view name) const noexcept;
  [[nodiscard]] Cell* findCell(std::string_view name) noexcept;

  /// Cell at insertion position i, nullptr out of range. Monte-Carlo
  /// instances share the catalogue's cell order, so positional access lets
  /// the statistics merge bypass the by-name map (callers verify the name).
  [[nodiscard]] const Cell* cellAt(std::size_t i) const noexcept {
    return i < cells_.size() ? cells_[i].get() : nullptr;
  }

  /// All cells in insertion order.
  [[nodiscard]] std::vector<const Cell*> cells() const;
  [[nodiscard]] std::vector<Cell*> cells();

  /// Cells implementing one logic function, sorted by ascending drive
  /// strength (the mapper's size ladder).
  [[nodiscard]] std::vector<const Cell*> family(CellFunction f) const;

  /// Cells grouped by drive strength across all functions (tuning clusters).
  [[nodiscard]] std::map<double, std::vector<const Cell*>> strengthClusters()
      const;

  /// Count of cells per appendix-A category.
  [[nodiscard]] std::map<CellCategory, std::size_t> categoryCounts() const;

 private:
  std::string name_;
  OperatingConditions conditions_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::map<std::string, Cell*, std::less<>> by_name_;
};

}  // namespace sct::liberty
