#include "liberty/cell.hpp"

namespace sct::liberty {

const Pin* Cell::findPin(std::string_view name) const noexcept {
  for (const Pin& pin : pins_) {
    if (pin.name == name) return &pin;
  }
  return nullptr;
}

double Cell::inputCapacitance(std::string_view pin) const noexcept {
  const Pin* p = findPin(pin);
  return (p != nullptr && p->direction == PinDirection::kInput)
             ? p->capacitance
             : 0.0;
}

const Cell::DerivedIndex& Cell::index() const {
  if (index_ == nullptr) {
    auto idx = std::make_unique<DerivedIndex>();
    for (const Pin& pin : pins_) {
      (pin.direction == PinDirection::kInput ? idx->inputPins
                                             : idx->outputPins)
          .push_back(&pin);
    }
    for (const TimingArc& arc : arcs_) {
      auto group = idx->fanout.begin();
      for (; group != idx->fanout.end(); ++group) {
        if (group->first == arc.outputPin) break;
      }
      if (group == idx->fanout.end()) {
        idx->fanout.emplace_back(arc.outputPin,
                                 std::vector<const TimingArc*>{});
        group = std::prev(idx->fanout.end());
      }
      group->second.push_back(&arc);
    }
    index_ = std::move(idx);
  }
  return *index_;
}

std::span<const TimingArc* const> Cell::fanoutArcs(
    std::string_view outputPin) const {
  for (const auto& [pin, arcs] : index().fanout) {
    if (pin == outputPin) return arcs;
  }
  return {};
}

const TimingArc* Cell::findArc(std::string_view relatedPin,
                               std::string_view outputPin) const noexcept {
  for (const TimingArc& arc : arcs_) {
    if (arc.relatedPin == relatedPin && arc.outputPin == outputPin) return &arc;
  }
  return nullptr;
}

std::span<const Pin* const> Cell::inputPins() const { return index().inputPins; }

std::span<const Pin* const> Cell::outputPins() const {
  return index().outputPins;
}

}  // namespace sct::liberty
