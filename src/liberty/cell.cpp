#include "liberty/cell.hpp"

namespace sct::liberty {

const Pin* Cell::findPin(std::string_view name) const noexcept {
  for (const Pin& pin : pins_) {
    if (pin.name == name) return &pin;
  }
  return nullptr;
}

double Cell::inputCapacitance(std::string_view pin) const noexcept {
  const Pin* p = findPin(pin);
  return (p != nullptr && p->direction == PinDirection::kInput)
             ? p->capacitance
             : 0.0;
}

std::vector<const TimingArc*> Cell::arcsTo(std::string_view outputPin) const {
  std::vector<const TimingArc*> out;
  for (const TimingArc& arc : arcs_) {
    if (arc.outputPin == outputPin) out.push_back(&arc);
  }
  return out;
}

const TimingArc* Cell::findArc(std::string_view relatedPin,
                               std::string_view outputPin) const noexcept {
  for (const TimingArc& arc : arcs_) {
    if (arc.relatedPin == relatedPin && arc.outputPin == outputPin) return &arc;
  }
  return nullptr;
}

std::vector<const Pin*> Cell::inputPins() const {
  std::vector<const Pin*> out;
  for (const Pin& pin : pins_) {
    if (pin.direction == PinDirection::kInput) out.push_back(&pin);
  }
  return out;
}

std::vector<const Pin*> Cell::outputPins() const {
  std::vector<const Pin*> out;
  for (const Pin& pin : pins_) {
    if (pin.direction == PinDirection::kOutput) out.push_back(&pin);
  }
  return out;
}

}  // namespace sct::liberty
