#pragma once
// Text serialization of libraries in a simplified Liberty dialect. The
// writer emits a deterministic, human-diffable .lib-style file; the parser
// reads it back losslessly (round-trip tested). This stands in for the
// Liberty files exchanged between characterization and synthesis in the
// paper's flow (section II, [7]).

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "liberty/library.hpp"

namespace sct::liberty {

/// Raised by readLibrary on malformed input; carries a line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Writes the library in the simplified Liberty dialect.
void writeLibrary(std::ostream& out, const Library& library);
[[nodiscard]] std::string writeLibraryToString(const Library& library);

/// Parses a library previously produced by writeLibrary.
[[nodiscard]] Library readLibrary(std::istream& in);
[[nodiscard]] Library readLibraryFromString(const std::string& text);

}  // namespace sct::liberty
