#pragma once
// Liberty-style look-up tables: a delay or output-transition value indexed by
// input slew (index_1, rows) and output load (index_2, columns), interpolated
// bilinearly between breakpoints (paper section II and V.A).

#include <string>

#include "numeric/grid2d.hpp"
#include "numeric/interp.hpp"

namespace sct::liberty {

/// Shared axis definition for a family of LUTs (lu_table_template).
struct LutTemplate {
  std::string name;
  numeric::Axis slew;  ///< index_1: input transition breakpoints [ns]
  numeric::Axis load;  ///< index_2: output capacitance breakpoints [pF]

  [[nodiscard]] std::size_t rows() const noexcept { return slew.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return load.size(); }

  friend bool operator==(const LutTemplate&, const LutTemplate&) = default;
};

/// A single look-up table with its axes. Axes are stored by value so a Lut is
/// self-contained (statistical processing slices and recombines tables from
/// many library instances).
class Lut {
 public:
  Lut() = default;
  Lut(numeric::Axis slew, numeric::Axis load)
      : slew_(std::move(slew)),
        load_(std::move(load)),
        values_(slew_.size(), load_.size()) {}
  Lut(numeric::Axis slew, numeric::Axis load, numeric::Grid2d values)
      : slew_(std::move(slew)), load_(std::move(load)), values_(std::move(values)) {}

  [[nodiscard]] const numeric::Axis& slewAxis() const noexcept { return slew_; }
  [[nodiscard]] const numeric::Axis& loadAxis() const noexcept { return load_; }
  [[nodiscard]] const numeric::Grid2d& values() const noexcept { return values_; }
  [[nodiscard]] numeric::Grid2d& values() noexcept { return values_; }

  [[nodiscard]] std::size_t rows() const noexcept { return values_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return values_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return values_.at(r, c);
  }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return values_.at(r, c);
  }

  /// Bilinear interpolation at an arbitrary (slew, load) operating point.
  [[nodiscard]] double lookup(
      double slew, double load,
      numeric::EdgePolicy policy = numeric::EdgePolicy::kClamp) const noexcept {
    return numeric::bilinear(slew_, load_, values_, slew, load, policy);
  }

  /// True when both tables share axes (required for entry-wise combination).
  [[nodiscard]] bool sameShape(const Lut& other) const noexcept {
    return slew_ == other.slew_ && load_ == other.load_;
  }

  friend bool operator==(const Lut&, const Lut&) = default;

 private:
  numeric::Axis slew_;
  numeric::Axis load_;
  numeric::Grid2d values_;
};

}  // namespace sct::liberty
