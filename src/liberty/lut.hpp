#pragma once
// Liberty-style look-up tables: a delay or output-transition value indexed by
// input slew (index_1, rows) and output load (index_2, columns), interpolated
// bilinearly between breakpoints (paper section II and V.A).

#include <memory>
#include <string>
#include <utility>

#include "numeric/grid2d.hpp"
#include "numeric/interp.hpp"

namespace sct::liberty {

/// Shared axis definition for a family of LUTs (lu_table_template).
struct LutTemplate {
  std::string name;
  numeric::Axis slew;  ///< index_1: input transition breakpoints [ns]
  numeric::Axis load;  ///< index_2: output capacitance breakpoints [pF]

  [[nodiscard]] std::size_t rows() const noexcept { return slew.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return load.size(); }

  friend bool operator==(const LutTemplate&, const LutTemplate&) = default;
};

/// A single look-up table with its axes. Axes are held by shared_ptr: a Lut
/// stays self-contained (statistical processing slices and recombines tables
/// from many library instances) and keeps value semantics — equality and
/// sameShape compare axis *values* — but the four tables of a timing arc and
/// all Monte-Carlo instances of a cell share one physical axis pair instead
/// of each carrying copies. That turns LUT construction from three heap
/// allocations (two axes + grid) into one, the dominant cost of MC
/// characterization before batching.
class Lut {
 public:
  using AxisPtr = std::shared_ptr<const numeric::Axis>;

  Lut() = default;
  Lut(numeric::Axis slew, numeric::Axis load)
      : slew_(std::make_shared<const numeric::Axis>(std::move(slew))),
        load_(std::make_shared<const numeric::Axis>(std::move(load))),
        values_(slew_->size(), load_->size()) {}
  Lut(numeric::Axis slew, numeric::Axis load, numeric::Grid2d values)
      : slew_(std::make_shared<const numeric::Axis>(std::move(slew))),
        load_(std::make_shared<const numeric::Axis>(std::move(load))),
        values_(std::move(values)) {}
  /// Axis-sharing constructors (non-null pointers required): every Lut built
  /// from the same AxisPtr pair reuses one allocation.
  Lut(AxisPtr slew, AxisPtr load)
      : slew_(std::move(slew)),
        load_(std::move(load)),
        values_(slew_->size(), load_->size()) {}
  Lut(AxisPtr slew, AxisPtr load, numeric::Grid2d values)
      : slew_(std::move(slew)),
        load_(std::move(load)),
        values_(std::move(values)) {}

  [[nodiscard]] const numeric::Axis& slewAxis() const noexcept {
    return slew_ != nullptr ? *slew_ : emptyAxis();
  }
  [[nodiscard]] const numeric::Axis& loadAxis() const noexcept {
    return load_ != nullptr ? *load_ : emptyAxis();
  }
  /// Shared axis handles, for building further Luts on the same allocation
  /// (null on a default-constructed Lut).
  [[nodiscard]] const AxisPtr& slewAxisPtr() const noexcept { return slew_; }
  [[nodiscard]] const AxisPtr& loadAxisPtr() const noexcept { return load_; }
  [[nodiscard]] const numeric::Grid2d& values() const noexcept { return values_; }
  [[nodiscard]] numeric::Grid2d& values() noexcept { return values_; }

  [[nodiscard]] std::size_t rows() const noexcept { return values_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return values_.cols(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return values_.at(r, c);
  }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return values_.at(r, c);
  }

  /// Bilinear interpolation at an arbitrary (slew, load) operating point.
  [[nodiscard]] double lookup(
      double slew, double load,
      numeric::EdgePolicy policy = numeric::EdgePolicy::kClamp) const noexcept {
    return numeric::bilinear(slewAxis(), loadAxis(), values_, slew, load,
                             policy);
  }

  /// True when both tables share axes (required for entry-wise combination).
  /// Pointer fast path first: shared axes compare in O(1).
  [[nodiscard]] bool sameShape(const Lut& other) const noexcept {
    const bool sameSlew = slew_ == other.slew_ || slewAxis() == other.slewAxis();
    const bool sameLoad = load_ == other.load_ || loadAxis() == other.loadAxis();
    return sameSlew && sameLoad;
  }

  /// Value equality (axes compared by value, not by pointer identity).
  friend bool operator==(const Lut& a, const Lut& b) noexcept {
    return a.sameShape(b) && a.values_ == b.values_;
  }

 private:
  static const numeric::Axis& emptyAxis() noexcept {
    static const numeric::Axis kEmpty;
    return kEmpty;
  }

  AxisPtr slew_;
  AxisPtr load_;
  numeric::Grid2d values_;
};

}  // namespace sct::liberty
