#pragma once
// Logic-function identities for the standard cell catalogue. The synthesis
// mapper groups cells into *function families* (same logic, different drive
// strength), the tuner additionally clusters by drive strength, and the
// experiment reports bucket cells into the appendix-A categories.

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

namespace sct::liberty {

/// Logic functions present in the 304-cell catalogue (paper appendix A).
enum class CellFunction {
  kInv,
  kBuf,
  kClkBuf,
  kTieHi,
  kTieLo,
  kNand2,
  kNand2B,  ///< NAND2 with one inverted input
  kNand3,
  kNand4,
  kNor2,
  kNor2B,  ///< NOR2 with one inverted input
  kNor3,
  kNor4,
  kAnd2,
  kAnd3,
  kAnd4,
  kOr2,
  kOr3,
  kOr4,
  kXor2,
  kXnor2,
  kAoi21,
  kOai21,
  kMux2,
  kMux4,
  kHalfAdder,
  kFullAdder,
  kDff,
  kDffR,   ///< async reset
  kDffS,   ///< async set
  kDffRS,  ///< async reset + set
  kDffE,   ///< clock enable
  kLatch,
  kLatchR,
};

inline constexpr std::size_t kNumCellFunctions =
    static_cast<std::size_t>(CellFunction::kLatchR) + 1;

/// Appendix-A catalogue categories used by the usage/summary reports.
enum class CellCategory {
  kInverter,
  kOr,  ///< AND/OR cells (the appendix groups them under "Or")
  kNand,
  kNor,
  kXnor,  ///< XOR/XNOR
  kAdder,
  kMultiplexer,
  kFlipFlop,
  kLatch,
  kOther,
};

struct FunctionTraits {
  CellFunction function;
  std::string_view prefix;  ///< cell-name prefix, e.g. "NR2B" for NR2B_3
  std::size_t numDataInputs;  ///< data inputs (excludes clock/reset/set/enable)
  std::size_t numOutputs;
  bool sequential;
  CellCategory category;
  /// Logical-effort-style complexity of the worst input-to-output stage;
  /// scales both delay and input capacitance in the analytic delay model.
  double logicalEffort;
  /// Relative parasitic (intrinsic) delay of the cell topology.
  double parasitic;
  /// Relative layout area of a unit-drive instance.
  double unitArea;
};

[[nodiscard]] const FunctionTraits& traits(CellFunction f) noexcept;

/// Short name, e.g. "NAND2B".
[[nodiscard]] std::string_view toString(CellFunction f) noexcept;
[[nodiscard]] std::string_view toString(CellCategory c) noexcept;

/// Drive strength rendered in the paper's naming convention where 'P' is a
/// decimal separator: 0.5 -> "0P5", 4 -> "4".
[[nodiscard]] std::string strengthSuffix(double strength);

/// Full cell name "<prefix>_<strength>", e.g. makeCellName(kNor2B, 3) ->
/// "NR2B_3".
[[nodiscard]] std::string makeCellName(CellFunction f, double strength);

/// Inverse of strengthSuffix for name parsing; returns <=0 on failure.
[[nodiscard]] double parseStrengthSuffix(std::string_view suffix) noexcept;

/// Data-input pin names in order (A, B, C, D / D0, D1, S / A, B, CI / ...).
[[nodiscard]] std::array<std::string_view, 6> dataInputNames(
    CellFunction f) noexcept;

/// Output pin names in order (Z / S, CO / Q).
[[nodiscard]] std::array<std::string_view, 2> outputNames(
    CellFunction f) noexcept;

}  // namespace sct::liberty
