#pragma once
// Standard cell model: pins, timing arcs and per-cell metadata. One timing
// arc holds the four LUTs of a related-pin/output-pin pair (rise/fall delay
// and rise/fall output transition), exactly the tables the tuner restricts.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/function.hpp"
#include "liberty/lut.hpp"

namespace sct::liberty {

enum class PinDirection { kInput, kOutput };

struct Pin {
  std::string name;
  PinDirection direction = PinDirection::kInput;
  double capacitance = 0.0;  ///< input pin capacitance [pF]
  double maxCapacitance = 0.0;  ///< output drive limit [pF]; 0 = unlimited
  bool isClock = false;
};

/// Timing arc from one input (related) pin to one output pin.
struct TimingArc {
  std::string relatedPin;
  std::string outputPin;
  Lut riseDelay;
  Lut fallDelay;
  Lut riseTransition;
  Lut fallTransition;

  /// Worst (max of rise/fall) delay at an operating point; the analysis in
  /// this repository is single-valued worst-case, like the paper's setup
  /// study.
  [[nodiscard]] double worstDelay(double slew, double load) const noexcept {
    return std::max(riseDelay.lookup(slew, load), fallDelay.lookup(slew, load));
  }
  /// Best (min of rise/fall) delay; used by the hold (min-delay) analysis.
  [[nodiscard]] double bestDelay(double slew, double load) const noexcept {
    return std::min(riseDelay.lookup(slew, load), fallDelay.lookup(slew, load));
  }
  [[nodiscard]] double worstTransition(double slew, double load) const noexcept {
    return std::max(riseTransition.lookup(slew, load),
                    fallTransition.lookup(slew, load));
  }
};

class Cell {
 public:
  Cell() = default;
  Cell(std::string name, CellFunction function, double driveStrength,
       double area)
      : name_(std::move(name)),
        function_(function),
        drive_strength_(driveStrength),
        area_(area) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] CellFunction function() const noexcept { return function_; }
  [[nodiscard]] double driveStrength() const noexcept { return drive_strength_; }
  [[nodiscard]] double area() const noexcept { return area_; }
  [[nodiscard]] bool isSequential() const noexcept {
    return traits(function_).sequential;
  }
  [[nodiscard]] CellCategory category() const noexcept {
    return traits(function_).category;
  }

  /// Setup requirement at the D pin of sequential cells [ns] at the table
  /// origin (fast edges). Kept as the scalar summary; timing checks use the
  /// slew-dependent form below.
  [[nodiscard]] double setupTime() const noexcept { return setup_time_; }
  void setSetupTime(double t) noexcept { setup_time_ = t; }
  /// Slew-dependent setup requirement (Liberty setup_rising semantics):
  /// indexed by data slew (rows) and clock slew (columns). Falls back to
  /// the scalar when no table was characterized.
  [[nodiscard]] double setupTime(double dataSlew,
                                 double clockSlew) const noexcept {
    return setup_lut_.empty() ? setup_time_
                              : setup_lut_.lookup(dataSlew, clockSlew);
  }
  void setSetupLut(Lut lut) noexcept { setup_lut_ = std::move(lut); }
  [[nodiscard]] const Lut& setupLut() const noexcept { return setup_lut_; }

  /// Hold requirement at the D pin of sequential cells [ns].
  [[nodiscard]] double holdTime() const noexcept { return hold_time_; }
  void setHoldTime(double t) noexcept { hold_time_ = t; }

  [[nodiscard]] const std::vector<Pin>& pins() const noexcept { return pins_; }
  [[nodiscard]] std::vector<Pin>& pins() noexcept { return pins_; }
  [[nodiscard]] const std::vector<TimingArc>& arcs() const noexcept {
    return arcs_;
  }
  [[nodiscard]] std::vector<TimingArc>& arcs() noexcept { return arcs_; }

  void addPin(Pin pin) { pins_.push_back(std::move(pin)); }
  void addArc(TimingArc arc) { arcs_.push_back(std::move(arc)); }

  [[nodiscard]] const Pin* findPin(std::string_view name) const noexcept;
  /// Input pin capacitance; 0 when the pin does not exist.
  [[nodiscard]] double inputCapacitance(std::string_view pin) const noexcept;
  /// Arcs driving the given output pin.
  [[nodiscard]] std::vector<const TimingArc*> arcsTo(
      std::string_view outputPin) const;
  /// Arc for a specific related-pin/output-pin pair, if present.
  [[nodiscard]] const TimingArc* findArc(std::string_view relatedPin,
                                         std::string_view outputPin) const noexcept;
  [[nodiscard]] std::vector<const Pin*> inputPins() const;
  [[nodiscard]] std::vector<const Pin*> outputPins() const;

 private:
  std::string name_;
  CellFunction function_ = CellFunction::kInv;
  double drive_strength_ = 1.0;
  double area_ = 0.0;
  double setup_time_ = 0.0;
  double hold_time_ = 0.0;
  Lut setup_lut_;  ///< rows: data slew, cols: clock slew; empty = scalar
  std::vector<Pin> pins_;
  std::vector<TimingArc> arcs_;
};

}  // namespace sct::liberty
