#pragma once
// Standard cell model: pins, timing arcs and per-cell metadata. One timing
// arc holds the four LUTs of a related-pin/output-pin pair (rise/fall delay
// and rise/fall output transition), exactly the tables the tuner restricts.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "liberty/function.hpp"
#include "liberty/lut.hpp"

namespace sct::liberty {

enum class PinDirection { kInput, kOutput };

struct Pin {
  std::string name;
  PinDirection direction = PinDirection::kInput;
  double capacitance = 0.0;  ///< input pin capacitance [pF]
  double maxCapacitance = 0.0;  ///< output drive limit [pF]; 0 = unlimited
  bool isClock = false;
};

/// Timing arc from one input (related) pin to one output pin.
struct TimingArc {
  std::string relatedPin;
  std::string outputPin;
  Lut riseDelay;
  Lut fallDelay;
  Lut riseTransition;
  Lut fallTransition;

  /// Worst (max of rise/fall) delay at an operating point; the analysis in
  /// this repository is single-valued worst-case, like the paper's setup
  /// study.
  [[nodiscard]] double worstDelay(double slew, double load) const noexcept {
    return std::max(riseDelay.lookup(slew, load), fallDelay.lookup(slew, load));
  }
  /// Best (min of rise/fall) delay; used by the hold (min-delay) analysis.
  [[nodiscard]] double bestDelay(double slew, double load) const noexcept {
    return std::min(riseDelay.lookup(slew, load), fallDelay.lookup(slew, load));
  }
  [[nodiscard]] double worstTransition(double slew, double load) const noexcept {
    return std::max(riseTransition.lookup(slew, load),
                    fallTransition.lookup(slew, load));
  }
};

class Cell {
 public:
  Cell() = default;
  Cell(std::string name, CellFunction function, double driveStrength,
       double area)
      : name_(std::move(name)),
        function_(function),
        drive_strength_(driveStrength),
        area_(area) {}

  // The derived pin/arc index (see below) holds pointers into pins_/arcs_;
  // copies must not share it. Moves keep the heap buffers, so the index
  // stays valid and travels with the cell.
  Cell(const Cell& other)
      : name_(other.name_),
        function_(other.function_),
        drive_strength_(other.drive_strength_),
        area_(other.area_),
        setup_time_(other.setup_time_),
        hold_time_(other.hold_time_),
        setup_lut_(other.setup_lut_),
        pins_(other.pins_),
        arcs_(other.arcs_) {}
  Cell& operator=(const Cell& other) {
    if (this == &other) return *this;
    name_ = other.name_;
    function_ = other.function_;
    drive_strength_ = other.drive_strength_;
    area_ = other.area_;
    setup_time_ = other.setup_time_;
    hold_time_ = other.hold_time_;
    setup_lut_ = other.setup_lut_;
    pins_ = other.pins_;
    arcs_ = other.arcs_;
    index_.reset();
    return *this;
  }
  Cell(Cell&&) noexcept = default;
  Cell& operator=(Cell&&) noexcept = default;
  ~Cell() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] CellFunction function() const noexcept { return function_; }
  [[nodiscard]] double driveStrength() const noexcept { return drive_strength_; }
  [[nodiscard]] double area() const noexcept { return area_; }
  [[nodiscard]] bool isSequential() const noexcept {
    return traits(function_).sequential;
  }
  [[nodiscard]] CellCategory category() const noexcept {
    return traits(function_).category;
  }

  /// Setup requirement at the D pin of sequential cells [ns] at the table
  /// origin (fast edges). Kept as the scalar summary; timing checks use the
  /// slew-dependent form below.
  [[nodiscard]] double setupTime() const noexcept { return setup_time_; }
  void setSetupTime(double t) noexcept { setup_time_ = t; }
  /// Slew-dependent setup requirement (Liberty setup_rising semantics):
  /// indexed by data slew (rows) and clock slew (columns). Falls back to
  /// the scalar when no table was characterized.
  [[nodiscard]] double setupTime(double dataSlew,
                                 double clockSlew) const noexcept {
    return setup_lut_.empty() ? setup_time_
                              : setup_lut_.lookup(dataSlew, clockSlew);
  }
  void setSetupLut(Lut lut) noexcept { setup_lut_ = std::move(lut); }
  [[nodiscard]] const Lut& setupLut() const noexcept { return setup_lut_; }

  /// Hold requirement at the D pin of sequential cells [ns].
  [[nodiscard]] double holdTime() const noexcept { return hold_time_; }
  void setHoldTime(double t) noexcept { hold_time_ = t; }

  [[nodiscard]] const std::vector<Pin>& pins() const noexcept { return pins_; }
  [[nodiscard]] std::vector<Pin>& pins() noexcept {
    index_.reset();  // caller may mutate through the reference
    return pins_;
  }
  [[nodiscard]] const std::vector<TimingArc>& arcs() const noexcept {
    return arcs_;
  }
  [[nodiscard]] std::vector<TimingArc>& arcs() noexcept {
    index_.reset();
    return arcs_;
  }

  void addPin(Pin pin) {
    index_.reset();
    pins_.push_back(std::move(pin));
  }
  void addArc(TimingArc arc) {
    index_.reset();
    arcs_.push_back(std::move(arc));
  }

  [[nodiscard]] const Pin* findPin(std::string_view name) const noexcept;
  /// Input pin capacitance; 0 when the pin does not exist.
  [[nodiscard]] double inputCapacitance(std::string_view pin) const noexcept;
  /// Arcs driving the given output pin. Cached: built once per cell, so
  /// report/finalize loops do not allocate.
  [[nodiscard]] std::span<const TimingArc* const> fanoutArcs(
      std::string_view outputPin) const;
  /// Arc for a specific related-pin/output-pin pair, if present.
  [[nodiscard]] const TimingArc* findArc(std::string_view relatedPin,
                                         std::string_view outputPin) const noexcept;
  /// Input/output pins in declaration order; cached like fanoutArcs().
  [[nodiscard]] std::span<const Pin* const> inputPins() const;
  [[nodiscard]] std::span<const Pin* const> outputPins() const;

 private:
  /// Derived views of pins_/arcs_, built lazily on first query and dropped
  /// on any mutation. Pointers target the owning cell's vectors (stable
  /// across moves, rebuilt on copy).
  struct DerivedIndex {
    std::vector<const Pin*> inputPins;
    std::vector<const Pin*> outputPins;
    /// Arcs grouped per output pin, in arc declaration order.
    std::vector<std::pair<std::string, std::vector<const TimingArc*>>> fanout;
  };
  const DerivedIndex& index() const;

  std::string name_;
  CellFunction function_ = CellFunction::kInv;
  double drive_strength_ = 1.0;
  double area_ = 0.0;
  double setup_time_ = 0.0;
  double hold_time_ = 0.0;
  Lut setup_lut_;  ///< rows: data slew, cols: clock slew; empty = scalar
  std::vector<Pin> pins_;
  std::vector<TimingArc> arcs_;
  mutable std::unique_ptr<DerivedIndex> index_;
};

}  // namespace sct::liberty
