#include "liberty/liberty_io.hpp"

#include "liberty/text_format.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

namespace sct::liberty {
namespace {

void writeAxis(std::ostream& out, std::string_view key,
               const numeric::Axis& axis, int indent) {
  out << std::string(static_cast<std::size_t>(indent), ' ') << key << " :";
  for (double v : axis) out << ' ' << v;
  out << " ;\n";
}

void writeLut(std::ostream& out, std::string_view key, const Lut& lut,
              int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << key << " {\n";
  writeAxis(out, "index_1", lut.slewAxis(), indent + 2);
  writeAxis(out, "index_2", lut.loadAxis(), indent + 2);
  for (std::size_t r = 0; r < lut.rows(); ++r) {
    out << pad << "  row :";
    for (std::size_t c = 0; c < lut.cols(); ++c) out << ' ' << lut.at(r, c);
    out << " ;\n";
  }
  out << pad << "}\n";
}

std::optional<CellFunction> functionFromString(std::string_view text) {
  for (std::size_t i = 0; i < kNumCellFunctions; ++i) {
    const auto f = static_cast<CellFunction>(i);
    if (toString(f) == text) return f;
  }
  return std::nullopt;
}

using text::axisValues;
using text::Lexer;
using text::Line;
using text::singleValue;
using text::toDouble;

Lut readLut(Lexer& lexer) {
  numeric::Axis slew;
  numeric::Axis load;
  std::vector<std::vector<double>> rows;
  while (auto line = lexer.next()) {
    if (line->closesBlock) {
      if (slew.empty() || load.empty()) {
        throw ParseError(line->number, "LUT missing index_1/index_2");
      }
      if (rows.size() != slew.size()) {
        throw ParseError(line->number, "LUT row count does not match index_1");
      }
      numeric::Grid2d grid(slew.size(), load.size());
      for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != load.size()) {
          throw ParseError(line->number,
                           "LUT row width does not match index_2");
        }
        for (std::size_t c = 0; c < load.size(); ++c) {
          grid.at(r, c) = rows[r][c];
        }
      }
      return Lut(std::move(slew), std::move(load), std::move(grid));
    }
    if (line->head == "index_1") {
      slew = axisValues(*line);
    } else if (line->head == "index_2") {
      load = axisValues(*line);
    } else if (line->head == "row") {
      std::vector<double> row;
      row.reserve(line->values.size());
      for (const std::string& token : line->values) {
        row.push_back(toDouble(*line, token));
      }
      rows.push_back(std::move(row));
    } else {
      throw ParseError(line->number, "unexpected '" + line->head + "' in LUT");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated LUT block");
}

TimingArc readArc(Lexer& lexer, const std::string& arg) {
  TimingArc arc;
  const std::size_t arrow = arg.find("->");
  if (arrow == std::string::npos) {
    throw ParseError(lexer.lineNumber(), "timing needs 'related -> output'");
  }
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(' ');
    const auto e = s.find_last_not_of(' ');
    return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
  };
  arc.relatedPin = trim(arg.substr(0, arrow));
  arc.outputPin = trim(arg.substr(arrow + 2));
  while (auto line = lexer.next()) {
    if (line->closesBlock) return arc;
    if (!line->opensBlock) {
      throw ParseError(line->number, "expected LUT block in timing arc");
    }
    if (line->head == "cell_rise") {
      arc.riseDelay = readLut(lexer);
    } else if (line->head == "cell_fall") {
      arc.fallDelay = readLut(lexer);
    } else if (line->head == "rise_transition") {
      arc.riseTransition = readLut(lexer);
    } else if (line->head == "fall_transition") {
      arc.fallTransition = readLut(lexer);
    } else {
      throw ParseError(line->number, "unknown table '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated timing block");
}

Pin readPin(Lexer& lexer, const std::string& name) {
  Pin pin;
  pin.name = name;
  while (auto line = lexer.next()) {
    if (line->closesBlock) return pin;
    if (line->head == "direction") {
      if (line->values.size() != 1) {
        throw ParseError(line->number, "direction needs one value");
      }
      if (line->values[0] == "input") {
        pin.direction = PinDirection::kInput;
      } else if (line->values[0] == "output") {
        pin.direction = PinDirection::kOutput;
      } else {
        throw ParseError(line->number,
                         "bad direction '" + line->values[0] + "'");
      }
    } else if (line->head == "capacitance") {
      pin.capacitance = singleValue(*line);
    } else if (line->head == "max_capacitance") {
      pin.maxCapacitance = singleValue(*line);
    } else if (line->head == "clock") {
      pin.isClock = line->values.size() == 1 && line->values[0] == "true";
    } else {
      throw ParseError(line->number, "unknown pin attribute '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated pin block");
}

Cell readCell(Lexer& lexer, const std::string& name) {
  std::optional<CellFunction> function;
  double strength = 1.0;
  double area = 0.0;
  double setup = 0.0;
  double hold = 0.0;
  Lut setupLut;
  std::vector<Pin> pins;
  std::vector<TimingArc> arcs;
  while (auto line = lexer.next()) {
    if (line->closesBlock) {
      if (!function) throw ParseError(line->number, "cell missing function");
      Cell cell(name, *function, strength, area);
      cell.setSetupTime(setup);
      cell.setHoldTime(hold);
      if (!setupLut.empty()) cell.setSetupLut(std::move(setupLut));
      for (Pin& pin : pins) cell.addPin(std::move(pin));
      for (TimingArc& arc : arcs) cell.addArc(std::move(arc));
      return cell;
    }
    if (line->opensBlock && line->head == "pin") {
      pins.push_back(readPin(lexer, line->arg));
    } else if (line->opensBlock && line->head == "setup_constraint") {
      setupLut = readLut(lexer);
    } else if (line->opensBlock && line->head == "timing") {
      arcs.push_back(readArc(lexer, line->arg));
    } else if (line->head == "function") {
      if (line->values.size() != 1) {
        throw ParseError(line->number, "function needs one value");
      }
      function = functionFromString(line->values[0]);
      if (!function) {
        throw ParseError(line->number,
                         "unknown function '" + line->values[0] + "'");
      }
    } else if (line->head == "drive_strength") {
      strength = singleValue(*line);
    } else if (line->head == "area") {
      area = singleValue(*line);
    } else if (line->head == "setup") {
      setup = singleValue(*line);
    } else if (line->head == "hold") {
      hold = singleValue(*line);
    } else {
      throw ParseError(line->number,
                       "unknown cell attribute '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated cell block");
}

}  // namespace

void writeLibrary(std::ostream& out, const Library& library) {
  text::canonicalPrecision(out);
  out << "library (" << library.name() << ") {\n";
  const OperatingConditions& oc = library.conditions();
  out << "  operating_conditions {\n"
      << "    process : " << oc.processName << " ;\n"
      << "    voltage : " << oc.voltage << " ;\n"
      << "    temperature : " << oc.temperature << " ;\n"
      << "  }\n";
  for (const Cell* cell : library.cells()) {
    out << "  cell (" << cell->name() << ") {\n";
    out << "    function : " << toString(cell->function()) << " ;\n";
    out << "    drive_strength : " << cell->driveStrength() << " ;\n";
    out << "    area : " << cell->area() << " ;\n";
    if (cell->isSequential()) {
      out << "    setup : " << cell->setupTime() << " ;\n";
      out << "    hold : " << cell->holdTime() << " ;\n";
      if (!cell->setupLut().empty()) {
        writeLut(out, "setup_constraint", cell->setupLut(), 4);
      }
    }
    for (const Pin& pin : cell->pins()) {
      out << "    pin (" << pin.name << ") {\n";
      out << "      direction : "
          << (pin.direction == PinDirection::kInput ? "input" : "output")
          << " ;\n";
      if (pin.direction == PinDirection::kInput) {
        out << "      capacitance : " << pin.capacitance << " ;\n";
        if (pin.isClock) out << "      clock : true ;\n";
      } else if (pin.maxCapacitance > 0.0) {
        out << "      max_capacitance : " << pin.maxCapacitance << " ;\n";
      }
      out << "    }\n";
    }
    for (const TimingArc& arc : cell->arcs()) {
      out << "    timing (" << arc.relatedPin << " -> " << arc.outputPin
          << ") {\n";
      writeLut(out, "cell_rise", arc.riseDelay, 6);
      writeLut(out, "cell_fall", arc.fallDelay, 6);
      writeLut(out, "rise_transition", arc.riseTransition, 6);
      writeLut(out, "fall_transition", arc.fallTransition, 6);
      out << "    }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

std::string writeLibraryToString(const Library& library) {
  std::ostringstream out;
  writeLibrary(out, library);
  return out.str();
}

Library readLibrary(std::istream& in) {
  Lexer lexer(in);
  auto first = lexer.next();
  if (!first || first->head != "library" || !first->opensBlock) {
    throw ParseError(first ? first->number : 0, "expected 'library (name) {'");
  }
  Library library(first->arg);
  OperatingConditions oc;
  while (auto line = lexer.next()) {
    if (line->closesBlock) {
      return library;
    }
    if (line->opensBlock && line->head == "operating_conditions") {
      while (auto inner = lexer.next()) {
        if (inner->closesBlock) break;
        if (inner->head == "process") {
          if (inner->values.size() != 1) {
            throw ParseError(inner->number, "process needs one value");
          }
          oc.processName = inner->values[0];
        } else if (inner->head == "voltage") {
          oc.voltage = singleValue(*inner);
        } else if (inner->head == "temperature") {
          oc.temperature = singleValue(*inner);
        } else {
          throw ParseError(inner->number,
                           "unknown condition '" + inner->head + "'");
        }
      }
      library = Library(library.name(), oc);
    } else if (line->opensBlock && line->head == "cell") {
      library.addCell(readCell(lexer, line->arg));
    } else {
      throw ParseError(line->number, "unexpected '" + line->head + "'");
    }
  }
  throw ParseError(lexer.lineNumber(), "unterminated library block");
}

Library readLibraryFromString(const std::string& text) {
  std::istringstream in(text);
  return readLibrary(in);
}

}  // namespace sct::liberty
