#pragma once
// Shared line-oriented lexer for the Liberty-style text dialects used by
// the nominal-library and statistical-library serializers. The grammar is
// intentionally simple: "name (arg) {", "key : values ;", "}" and "//"
// comments.

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "liberty/liberty_io.hpp"  // ParseError
#include "numeric/grid2d.hpp"

namespace sct::liberty::text {

struct Line {
  std::size_t number = 0;
  std::string head;                 ///< first token
  std::string arg;                  ///< parenthesised argument, if any
  std::vector<std::string> values;  ///< tokens after ':'
  bool opensBlock = false;
  bool closesBlock = false;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) {}

  /// Next meaningful line; nullopt at end of input.
  std::optional<Line> next();

  [[nodiscard]] std::size_t lineNumber() const noexcept { return line_no_; }

 private:
  Line parse(const std::string& text) const;

  std::istream& in_;
  std::size_t line_no_ = 0;
};

/// max_digits10 of double — the precision every text serializer writes at,
/// so values round-trip exactly. One definition shared by the library,
/// stat-library and constraints writers.
inline constexpr int kDoublePrecision = 17;

/// Sets the canonical full-precision float formatting on a serializer
/// stream; returns the stream for chaining.
std::ostream& canonicalPrecision(std::ostream& out);

/// Strict, locale-independent parse of a whole token as a double; nullopt
/// unless the entire token is one floating literal.
[[nodiscard]] std::optional<double> parseDouble(std::string_view token);

/// Strict double parse; throws ParseError referencing the line on failure.
[[nodiscard]] double toDouble(const Line& line, const std::string& token);

/// Requires exactly one value and parses it as a double.
[[nodiscard]] double singleValue(const Line& line);

/// Parses all value tokens as a non-empty axis.
[[nodiscard]] numeric::Axis axisValues(const Line& line);

}  // namespace sct::liberty::text
