#pragma once
// Shared line-oriented lexer for the Liberty-style text dialects used by
// the nominal-library and statistical-library serializers. The grammar is
// intentionally simple: "name (arg) {", "key : values ;", "}" and "//"
// comments.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "liberty/liberty_io.hpp"  // ParseError
#include "numeric/grid2d.hpp"

namespace sct::liberty::text {

struct Line {
  std::size_t number = 0;
  std::string head;                 ///< first token
  std::string arg;                  ///< parenthesised argument, if any
  std::vector<std::string> values;  ///< tokens after ':'
  bool opensBlock = false;
  bool closesBlock = false;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) {}

  /// Next meaningful line; nullopt at end of input.
  std::optional<Line> next();

  [[nodiscard]] std::size_t lineNumber() const noexcept { return line_no_; }

 private:
  Line parse(const std::string& text) const;

  std::istream& in_;
  std::size_t line_no_ = 0;
};

/// Strict double parse; throws ParseError referencing the line on failure.
[[nodiscard]] double toDouble(const Line& line, const std::string& token);

/// Requires exactly one value and parses it as a double.
[[nodiscard]] double singleValue(const Line& line);

/// Parses all value tokens as a non-empty axis.
[[nodiscard]] numeric::Axis axisValues(const Line& line);

}  // namespace sct::liberty::text
