#include "liberty/text_format.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace sct::liberty::text {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::optional<Line> Lexer::next() {
  std::string raw;
  while (std::getline(in_, raw)) {
    ++line_no_;
    const std::size_t comment = raw.find("//");
    if (comment != std::string::npos) raw.erase(comment);
    std::string trimmed = trim(raw);
    if (trimmed.empty()) continue;
    return parse(trimmed);
  }
  return std::nullopt;
}

Line Lexer::parse(const std::string& textLine) const {
  Line line;
  line.number = line_no_;
  if (textLine == "}") {
    line.closesBlock = true;
    return line;
  }
  std::string body = textLine;
  if (body.back() == '{') {
    line.opensBlock = true;
    body = trim(body.substr(0, body.size() - 1));
  }
  // Extract "name (arg)" if present and there is no key/value colon.
  const std::size_t open = body.find('(');
  if (open != std::string::npos && body.find(':') == std::string::npos) {
    const std::size_t close = body.find(')', open);
    if (close == std::string::npos) {
      throw ParseError(line_no_, "unterminated '(' in '" + textLine + "'");
    }
    line.head = trim(body.substr(0, open));
    line.arg = trim(body.substr(open + 1, close - open - 1));
    return line;
  }
  const std::size_t colon = body.find(':');
  if (colon == std::string::npos) {
    line.head = body;
    return line;
  }
  line.head = trim(body.substr(0, colon));
  std::string rest = trim(body.substr(colon + 1));
  if (!rest.empty() && rest.back() == ';') {
    rest = trim(rest.substr(0, rest.size() - 1));
  }
  std::istringstream tokens(rest);
  std::string tok;
  while (tokens >> tok) line.values.push_back(tok);
  return line;
}

std::ostream& canonicalPrecision(std::ostream& out) {
  out.precision(kDoublePrecision);
  return out;
}

std::optional<double> parseDouble(std::string_view token) {
  double value = 0.0;
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

double toDouble(const Line& line, const std::string& token) {
  const std::optional<double> value = parseDouble(token);
  if (!value) {
    throw ParseError(line.number, "expected number, got '" + token + "'");
  }
  return *value;
}

double singleValue(const Line& line) {
  if (line.values.size() != 1) {
    throw ParseError(line.number, "expected one value for '" + line.head + "'");
  }
  return toDouble(line, line.values.front());
}

numeric::Axis axisValues(const Line& line) {
  numeric::Axis axis;
  axis.reserve(line.values.size());
  for (const std::string& token : line.values) {
    axis.push_back(toDouble(line, token));
  }
  if (axis.empty()) throw ParseError(line.number, "empty axis");
  return axis;
}

}  // namespace sct::liberty::text
