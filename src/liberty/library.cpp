#include "liberty/library.hpp"

#include <algorithm>
#include <cstdio>

namespace sct::liberty {

std::string OperatingConditions::cornerName() const {
  // 1.1 V -> "1P1V"; 25 degC -> "25C".
  char buf[64];
  const auto volts = static_cast<int>(voltage);
  const auto tenths =
      static_cast<int>((voltage - static_cast<double>(volts)) * 10.0 + 0.5);
  if (tenths != 0) {
    std::snprintf(buf, sizeof buf, "%s%dP%dV%dC", processName.c_str(), volts,
                  tenths, static_cast<int>(temperature));
  } else {
    std::snprintf(buf, sizeof buf, "%s%dV%dC", processName.c_str(), volts,
                  static_cast<int>(temperature));
  }
  return buf;
}

Cell* Library::addCell(Cell cell) {
  auto owned = std::make_unique<Cell>(std::move(cell));
  Cell* raw = owned.get();
  cells_.push_back(std::move(owned));
  by_name_[raw->name()] = raw;
  return raw;
}

const Cell* Library::findCell(std::string_view name) const noexcept {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

Cell* Library::findCell(std::string_view name) noexcept {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

std::vector<const Cell*> Library::cells() const {
  std::vector<const Cell*> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.get());
  return out;
}

std::vector<Cell*> Library::cells() {
  std::vector<Cell*> out;
  out.reserve(cells_.size());
  for (const auto& c : cells_) out.push_back(c.get());
  return out;
}

std::vector<const Cell*> Library::family(CellFunction f) const {
  std::vector<const Cell*> out;
  for (const auto& c : cells_) {
    if (c->function() == f) out.push_back(c.get());
  }
  std::sort(out.begin(), out.end(), [](const Cell* a, const Cell* b) {
    return a->driveStrength() < b->driveStrength();
  });
  return out;
}

std::map<double, std::vector<const Cell*>> Library::strengthClusters() const {
  std::map<double, std::vector<const Cell*>> out;
  for (const auto& c : cells_) out[c->driveStrength()].push_back(c.get());
  return out;
}

std::map<CellCategory, std::size_t> Library::categoryCounts() const {
  std::map<CellCategory, std::size_t> out;
  for (const auto& c : cells_) ++out[c->category()];
  return out;
}

}  // namespace sct::liberty
