#pragma once
// End-to-end library-tuning flow (the paper's methodology, sections II-VII):
//   characterize -> build statistical library -> extract thresholds ->
//   restrict LUTs -> synthesize under constraints -> measure design sigma.
// Every bench and example drives this facade.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "artifact/mem_cache.hpp"
#include "artifact/store.hpp"
#include "charlib/characterizer.hpp"
#include "lint/engine.hpp"
#include "netlist/dsp.hpp"
#include "netlist/mcu.hpp"
#include "netlist/noc.hpp"
#include "netlist/random.hpp"
#include "power/power_stats.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "tuning/restriction.hpp"
#include "variation/path_stats.hpp"

namespace sct::core {

/// How the flow treats lint findings on its stage inputs (DESIGN.md §11).
/// kError fails fast (throws) on error-severity findings before the tainted
/// artifact feeds a downstream stage; kWarn reports everything to stderr but
/// never stops; kOff skips linting entirely — flow *results* are identical
/// across all three settings for clean inputs, since the gate only ever
/// reads the artifacts.
enum class LintMode : std::uint8_t { kError = 0, kWarn = 1, kOff = 2 };

struct FlowConfig {
  charlib::CharacterizationConfig characterization{};
  std::size_t mcLibraryCount = 50;  ///< paper: 50 library instances
  std::uint64_t mcSeed = 2014;
  /// Subject-design selector for the design-diversity matrix: "mcu"
  /// (default), "dsp" (FIR datapath), "noc" (wormhole router) or "big"
  /// (scaled random DAG — ~200k gates at the default scale, the
  /// 10x-paper-size workload). Only the selected generator's config enters
  /// the stage keys.
  std::string workload = "mcu";
  netlist::McuConfig mcu{};
  netlist::DspConfig dsp{};
  netlist::NocConfig noc{};
  netlist::RandomDagConfig big{.primaryInputs = 64,
                               .gates = 200,
                               .flipFlops = 16,
                               .primaryOutputs = 64,
                               .scale = 1000,
                               .seed = 1};
  sta::ClockSpec clock{};  ///< period is overridden per experiment
  synth::SynthesisOptions synthesis{};
  double rho = 0.0;  ///< pairwise cell correlation in path convolution
  /// Worker threads for the parallel stages (characterization, stat-library
  /// merge, tuning, path MC): -1 keeps the process-wide setting (SCT_THREADS
  /// or hardware concurrency), 0 forces serial, N pins the pool size.
  /// Results are bit-identical for every setting.
  int threads = -1;
  /// Root of the content-addressed artifact cache; empty disables caching.
  /// Each pipeline stage (characterize, merge, tune, synthesize) consults
  /// the store before computing and skips to a warm SCTB load on a hit.
  /// Keys hash all stage inputs (characterization config, MC count + seed,
  /// tuning parameters, subject/clock/synthesis options, schema version),
  /// so warm results are bit-identical to a cold run by construction.
  std::string cacheDir{};
  /// Lint gate over each stage's input artifact. Lint reports are cached in
  /// the artifact store keyed by subject digest + lint::kRulePackVersion.
  LintMode lintMode = LintMode::kError;
  /// Byte bound of the in-memory artifact tier layered in front of the
  /// on-disk store (DESIGN.md §14): repeated stage probes decode from a
  /// shared validated reader instead of re-reading the cache file. 0
  /// disables the tier; it only engages when a disk store is active (or a
  /// sharedMemCache is injected), and never changes results — memory hits
  /// serve the exact bytes a disk hit would.
  std::uint64_t memCacheBytes = 64ull << 20;
  /// Externally-owned cache tiers for long-lived processes (the sctuned
  /// daemon shares one store + one memory cache across every session).
  /// sharedStore overrides cacheDir; neither is owned by the flow.
  artifact::ArtifactStore* sharedStore = nullptr;
  artifact::MemoryArtifactCache* sharedMemCache = nullptr;
  /// Design-power measurement knobs (src/power wired into measure(); the
  /// totals land in the flow report and the scenario trade-off output).
  /// Deterministic: per-instance streams are derived from powerSeed alone.
  double powerActivity = 0.1;      ///< transitions per clock per cell
  std::size_t powerSamples = 50;   ///< mismatch draws per instance
  std::uint64_t powerSeed = 7;
};

/// Per-endpoint worst-path record used by the path-population figures.
struct PathRecord {
  std::size_t depth = 0;
  double mean = 0.0;    ///< statistical path mean [ns]
  double sigma = 0.0;   ///< statistical path sigma [ns]
  double arrival = 0.0; ///< STA arrival at the endpoint [ns]
  double slack = 0.0;
  std::string endpoint;
};

struct DesignMeasurement {
  synth::SynthesisResult synthesis;
  variation::DesignStats design;  ///< eq. (11) aggregate
  std::vector<PathRecord> paths;  ///< one per unique endpoint
  power::DesignPower power;       ///< dynamic-power mean/sigma totals
  double clockPeriod = 0.0;

  [[nodiscard]] bool success() const noexcept { return synthesis.success(); }
  [[nodiscard]] double area() const noexcept { return synthesis.area; }
  [[nodiscard]] double sigma() const noexcept { return design.sigma; }
};

class TuningFlow {
 public:
  explicit TuningFlow(FlowConfig config = {});

  [[nodiscard]] const FlowConfig& config() const noexcept { return config_; }
  [[nodiscard]] const charlib::Characterizer& characterizer() const noexcept {
    return characterizer_;
  }

  /// Nominal TT library used by synthesis (lazily characterized).
  const liberty::Library& nominalLibrary();
  /// Statistical library from N Monte-Carlo library instances (Fig. 2).
  const statlib::StatLibrary& statLibrary();
  /// The subject graph selected by config().workload (lazily generated).
  const netlist::Design& subject();

  /// Digest of everything that can influence a (constraints -> synthesize ->
  /// measure) evaluation at this clock period: characterization, corner,
  /// MC parameters, subject/workload, clock, synthesis options, rho and the
  /// power knobs. The evolutionary tuner mixes candidate genes into this to
  /// key its memoized fitness evaluations.
  [[nodiscard]] artifact::Digest measurementContextDigest(double period) const;

  /// Stage 1+2 of the tuning method for a given config.
  tuning::LibraryConstraints tune(const tuning::TuningConfig& config);

  /// Baseline synthesis (untuned library) at a clock period.
  DesignMeasurement synthesizeBaseline(double period);
  /// Constrained synthesis under a tuning config.
  DesignMeasurement synthesizeTuned(double period,
                                    const tuning::TuningConfig& config);

  /// Statistical measurement of an already-synthesized design.
  DesignMeasurement measure(synth::SynthesisResult result, double period);

  /// Traced endpoint worst paths of a synthesized design (for Monte-Carlo
  /// experiments that need the full path structure, Figs. 15/16).
  [[nodiscard]] std::vector<sta::TimingPath> tracePaths(
      const synth::SynthesisResult& result, double period) const;

  /// Minimum feasible clock period of the baseline (Table 1 protocol).
  std::optional<double> findMinPeriod(double lo = 0.5, double hi = 14.0,
                                      double tolerance = 0.02);

  // ---- method sweeps (Table 3 / Fig. 10) --------------------------------
  struct SweepPoint {
    tuning::TuningMethod method{};
    double parameter = 0.0;
    DesignMeasurement measurement;
    double sigmaReductionPct = 0.0;  ///< vs baseline, positive = better
    double areaIncreasePct = 0.0;    ///< vs baseline
  };

  /// Runs the Table 2 parameter sweep of one method at one clock period.
  std::vector<SweepPoint> sweepMethod(tuning::TuningMethod method,
                                      double period,
                                      const DesignMeasurement& baseline);

  /// Paper's Fig. 10 selection rule: highest sigma reduction among
  /// successful runs with area increase below the cap (default 10%).
  [[nodiscard]] static const SweepPoint* bestUnderAreaCap(
      std::span<const SweepPoint> points, double maxAreaIncreasePct = 10.0);

  /// Artifact store backing the resumable stages; nullptr when caching is
  /// disabled (empty cacheDir, or a cache directory that could not be
  /// created — the flow then degrades to always computing).
  [[nodiscard]] artifact::ArtifactStore* cache() noexcept { return store_; }
  [[nodiscard]] const artifact::ArtifactStore* cache() const noexcept {
    return store_;
  }
  /// In-memory tier in front of the store; nullptr when disabled.
  [[nodiscard]] artifact::MemoryArtifactCache* memCache() noexcept {
    return mem_;
  }
  [[nodiscard]] const artifact::MemoryArtifactCache* memCache() const noexcept {
    return mem_;
  }

 private:
  // ---- stage cache keys (see DESIGN.md §10 for the derivation rules) -----
  [[nodiscard]] artifact::Hasher flowHasher() const;
  [[nodiscard]] artifact::Digest nominalKey() const;
  [[nodiscard]] artifact::Digest statKey() const;
  [[nodiscard]] artifact::Digest tuneKey(
      const tuning::TuningConfig& config) const;
  [[nodiscard]] artifact::Digest synthKey(
      double period, const tuning::TuningConfig* config) const;

  /// Shared cached-synthesis stage behind synthesizeBaseline/synthesizeTuned
  /// (config == nullptr means the untuned baseline library).
  synth::SynthesisResult synthesizeCached(double period,
                                          const tuning::TuningConfig* config);

  /// Runs the selected rule packs over `subject` before a stage consumes it
  /// (cached by `stageKey` + rule-pack version). Throws std::runtime_error
  /// on error-severity findings in LintMode::kError; prints a one-line
  /// summary to stderr in kWarn (and for warning-only reports in kError);
  /// no-op in kOff.
  void lintGate(std::string_view stageName, const artifact::Digest& stageKey,
                const lint::LintSubject& subject, lint::RulePackMask packs);

  FlowConfig config_;
  charlib::Characterizer characterizer_;
  lint::LintEngine linter_;
  std::unique_ptr<artifact::ArtifactStore> ownedStore_;
  std::unique_ptr<artifact::MemoryArtifactCache> ownedMem_;
  artifact::ArtifactStore* store_ = nullptr;  ///< owned or shared
  artifact::MemoryArtifactCache* mem_ = nullptr;
  std::unique_ptr<liberty::Library> nominal_;
  std::unique_ptr<statlib::StatLibrary> stat_;
  std::unique_ptr<netlist::Design> subject_;
};

}  // namespace sct::core
