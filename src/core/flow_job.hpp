#pragma once
// One self-contained flow request and its deterministic rendering — the
// canonical unit shared by the CLI `flow` command and the sctuned daemon
// (DESIGN.md §14). Both paths build the FlowConfig through makeFlowConfig
// and render the result through runFlowJob, so a daemon response is
// byte-identical to the CLI's --report file for the same job by
// construction, not by convention.

#include <cstdint>
#include <string>

#include "core/flow.hpp"
#include "tuning/methods.hpp"

namespace sct::core {

struct FlowJob {
  std::string profile = "full";  ///< "small" | "full" stage presets
  std::string workload = "mcu";  ///< subject design: mcu|dsp|noc|big
  double period = 0.0;           ///< clock period [ns]
  std::string method;  ///< tuning method name; empty = baseline synthesis
  double value = 0.0;  ///< tuning method parameter
  std::uint64_t mcCount = 0;     ///< MC library instances; 0 = profile default
  std::uint64_t mcSeed = 2014;   ///< paper's seed
  std::string lintMode = "error";  ///< "error" | "warn" | "off"
};

/// CLI method-name dictionary (strength-load, strength-slew, cell-load,
/// cell-slew, sigma-ceiling); throws std::runtime_error on unknown names.
[[nodiscard]] tuning::TuningMethod tuningMethodByName(const std::string& name);

/// Flow configuration for a job: profile presets, MC count/seed, lint mode.
/// Cache wiring (cacheDir / shared tiers / memCacheBytes) is left at the
/// defaults for the caller to fill in — it never affects results.
[[nodiscard]] FlowConfig makeFlowConfig(const FlowJob& job);

struct FlowJobResult {
  bool success = false;
  std::string summary;  ///< the one-line human summary the CLI prints
  std::string report;   ///< deterministic "flow-report v1" text (%.17g)
};

/// Runs the job on an already-constructed flow and renders both outputs.
/// The report bytes depend only on the job inputs — never on cache state,
/// thread count, or observability settings.
[[nodiscard]] FlowJobResult runFlowJob(TuningFlow& flow, const FlowJob& job);

}  // namespace sct::core
