#pragma once
// Portable Clang Thread Safety Analysis annotations (DESIGN.md §16). Under
// clang the macros expand to the `capability` attribute family, so
// `-Wthread-safety` proves at compile time that every access to a
// SCT_GUARDED_BY member happens with its mutex held, for every possible
// interleaving; under any other compiler they expand to nothing and the
// annotated code is ordinary C++.
//
// Convention: annotate the *data* (SCT_GUARDED_BY on members), not the call
// sites; functions that take a lock for the caller are SCT_ACQUIRE/RELEASE,
// functions that expect it already held are SCT_REQUIRES. The annotated
// sct::Mutex / sct::CondVar / sct::LockGuard wrappers live in core/sync.hpp;
// the std:: primitives carry no capability attributes, so annotated state
// must be locked through the wrappers for the analysis to see it.
//
// The CI `thread-safety` job compiles the whole tree with
//   clang++ -Werror=thread-safety -Wthread-safety-beta
// and tests/negative_compile proves the wall actually fires.

#if defined(__clang__) && !defined(SCT_NO_THREAD_SAFETY_ANNOTATIONS)
#define SCT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SCT_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define SCT_CAPABILITY(x) SCT_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor (the destructor still needs SCT_RELEASE()).
#define SCT_SCOPED_CAPABILITY SCT_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define SCT_GUARDED_BY(x) SCT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define SCT_PT_GUARDED_BY(x) SCT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define SCT_ACQUIRE(...) \
  SCT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define SCT_RELEASE(...) \
  SCT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define SCT_TRY_ACQUIRE(...) \
  SCT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function requires the capability already held by the caller.
#define SCT_REQUIRES(...) \
  SCT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard for
/// self-locking public entry points).
#define SCT_EXCLUDES(...) SCT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis a
/// fact it cannot see, e.g. across an opaque callback boundary).
#define SCT_ASSERT_CAPABILITY(x) \
  SCT_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define SCT_RETURN_CAPABILITY(x) SCT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis inside one function body. Used only
/// in the sync-primitive implementations themselves (CondVar::wait must
/// juggle the native handle) — never in subsystem code.
#define SCT_NO_THREAD_SAFETY_ANALYSIS \
  SCT_THREAD_ANNOTATION_(no_thread_safety_analysis)
