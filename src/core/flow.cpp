#include "core/flow.hpp"

#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "artifact/codecs.hpp"
#include "core/stage_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "power/power_stats.hpp"

namespace sct::core {

namespace {

// ---- canonical stage-input hashing (DESIGN.md §10) -----------------------
// Every field that can influence a stage result is fed through the typed,
// length-prefixed Hasher interface; adding a field to any of these structs
// must be mirrored here (or bump artifact::kSchemaVersion, which is always
// part of the key via TuningFlow::flowHasher).

void hashCharacterization(artifact::Hasher& h,
                          const charlib::CharacterizationConfig& config) {
  const charlib::TechnologyParams& t = config.tech;
  h.f64(t.rUnit)
      .f64(t.cInUnit)
      .f64(t.tau)
      .f64(t.slewSens)
      .f64(t.slewSensLoadBoost)
      .f64(t.slewSensLoadKnee)
      .f64(t.overload)
      .f64(t.transIntrinsic)
      .f64(t.transDrive)
      .f64(t.transLeak)
      .f64(t.maxLoadPerStrength)
      .f64(t.areaUnit)
      .f64(t.personalitySpread);
  const charlib::VariationParams& v = config.variation;
  h.f64(v.pelgrom)
      .f64(v.intrinsicFraction)
      .f64(v.slewFraction)
      .f64(v.globalSigma);
  h.f64span(config.slewAxis).f64span(config.loadFractions);
}

void hashCorner(artifact::Hasher& h, const charlib::ProcessCorner& corner) {
  h.str(corner.process)
      .f64(corner.voltage)
      .f64(corner.temperature)
      .f64(corner.delayFactor);
}

void hashMcu(artifact::Hasher& h, const netlist::McuConfig& mcu) {
  h.u64(mcu.width)
      .u64(mcu.registers)
      .u64(mcu.readPorts)
      .u64(mcu.bankedRegisters)
      .u64(mcu.macWidth)
      .u64(mcu.macUnits)
      .u64(mcu.timers)
      .u64(mcu.dmaChannels)
      .u64(mcu.gpioWidth)
      .u64(mcu.cacheTagEntries)
      .u64(mcu.cacheTagBits)
      .u64(mcu.decodeOutputs)
      .u64(mcu.decodeDepth)
      .u64(mcu.interruptSources)
      .u64(mcu.seed);
}

void hashClock(artifact::Hasher& h, const sta::ClockSpec& clock) {
  h.f64(clock.period)
      .f64(clock.uncertainty)
      .f64(clock.clockSlew)
      .f64(clock.inputSlew)
      .f64(clock.inputDelay)
      .f64(clock.outputLoad)
      .f64(clock.wireLoad.capBase)
      .f64(clock.wireLoad.capPerFanout)
      .f64(clock.wireLoad.capQuadratic)
      .f64(clock.derateLate)
      .f64(clock.derateEarly);
}

void hashSynthesisOptions(artifact::Hasher& h,
                          const synth::SynthesisOptions& options) {
  h.u64(options.maxPasses)
      .u64(options.maxFanout)
      .f64(options.maxSlew)
      .f64(options.areaRecoveryMargin);
  // incrementalSta is bit-identical to the full analysis by contract, so it
  // does not enter the key: either setting may serve the other's artifact.
}

void hashTuning(artifact::Hasher& h, const tuning::TuningConfig& config) {
  h.u8(static_cast<std::uint8_t>(config.method))
      .f64(config.loadSlopeBound)
      .f64(config.slewSlopeBound)
      .f64(config.sigmaCeiling);
}

/// Subject identity: the workload selector plus the selected generator's
/// config (and only that one — switching workloads must change the key even
/// when the inactive configs differ).
void hashSubject(artifact::Hasher& h, const FlowConfig& config) {
  h.str("subject").str(config.workload);
  if (config.workload == "dsp") {
    const netlist::DspConfig& d = config.dsp;
    h.u64(d.dataWidth)
        .u64(d.taps)
        .u64(d.accWidth)
        .u64(d.channels)
        .u8(d.useKoggeStone ? 1 : 0)
        .u64(d.seed);
  } else if (config.workload == "noc") {
    const netlist::NocConfig& n = config.noc;
    h.u64(n.ports).u64(n.flitWidth).u64(n.vcs).u64(n.bufferDepth).u64(n.seed);
  } else if (config.workload == "big") {
    const netlist::RandomDagConfig& r = config.big;
    h.u64(r.primaryInputs)
        .u64(r.gates)
        .u64(r.flipFlops)
        .u64(r.primaryOutputs)
        .u64(r.scale)
        .u64(r.seed);
  } else {
    hashMcu(h, config.mcu);
  }
}

netlist::Design generateSubject(const FlowConfig& config) {
  if (config.workload == "dsp") return netlist::generateDsp(config.dsp);
  if (config.workload == "noc") return netlist::buildNocRouter(config.noc);
  if (config.workload == "big") return netlist::generateRandomDag(config.big);
  if (config.workload == "mcu" || config.workload.empty()) {
    return netlist::generateMcu(config.mcu);
  }
  throw std::invalid_argument("unknown workload '" + config.workload +
                              "' (expected mcu|dsp|noc|big)");
}

}  // namespace

TuningFlow::TuningFlow(FlowConfig config)
    : config_(std::move(config)),
      characterizer_(config_.characterization),
      linter_(lint::LintEngine::withAllRules()) {
  if (config_.threads >= 0) {
    parallel::setThreadCount(static_cast<std::size_t>(config_.threads));
  }
  if (config_.sharedStore != nullptr) {
    store_ = config_.sharedStore;
  } else if (!config_.cacheDir.empty()) {
    try {
      ownedStore_ = std::make_unique<artifact::ArtifactStore>(config_.cacheDir);
      store_ = ownedStore_.get();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "sct: artifact cache disabled: %s\n", error.what());
    }
  }
  if (config_.sharedMemCache != nullptr) {
    mem_ = config_.sharedMemCache;
  } else if (config_.memCacheBytes > 0 && store_ != nullptr) {
    // Private memory tier: repeated probes of the same stage inside one
    // invocation (tune for the report digest, lint gates, sweeps) decode
    // from the shared reader instead of re-reading the cache file.
    ownedMem_ =
        std::make_unique<artifact::MemoryArtifactCache>(config_.memCacheBytes);
    mem_ = ownedMem_.get();
  }
}

artifact::Hasher TuningFlow::flowHasher() const {
  artifact::Hasher h;
  h.str("sct-flow").u32(artifact::kSchemaVersion);
  hashCharacterization(h, config_.characterization);
  hashCorner(h, charlib::ProcessCorner::typical());
  return h;
}

artifact::Digest TuningFlow::nominalKey() const {
  artifact::Hasher h = flowHasher();
  h.str("stage:nominal");
  return h.digest();
}

artifact::Digest TuningFlow::statKey() const {
  artifact::Hasher h = flowHasher();
  h.str("stage:stat").u64(config_.mcLibraryCount).u64(config_.mcSeed);
  return h.digest();
}

artifact::Digest TuningFlow::tuneKey(const tuning::TuningConfig& config) const {
  artifact::Hasher h = flowHasher();
  h.str("stage:tune").u64(config_.mcLibraryCount).u64(config_.mcSeed);
  hashTuning(h, config);
  return h.digest();
}

artifact::Digest TuningFlow::synthKey(double period,
                                      const tuning::TuningConfig* config) const {
  artifact::Hasher h = flowHasher();
  h.str("stage:synth");
  hashSubject(h, config_);
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  hashClock(h, clock);
  hashSynthesisOptions(h, config_.synthesis);
  if (config != nullptr) {
    h.u8(1).u64(config_.mcLibraryCount).u64(config_.mcSeed);
    hashTuning(h, *config);
  } else {
    h.u8(0);
  }
  return h.digest();
}

artifact::Digest TuningFlow::measurementContextDigest(double period) const {
  artifact::Hasher h = flowHasher();
  h.str("measure-context").u64(config_.mcLibraryCount).u64(config_.mcSeed);
  hashSubject(h, config_);
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  hashClock(h, clock);
  hashSynthesisOptions(h, config_.synthesis);
  h.f64(config_.rho)
      .f64(config_.powerActivity)
      .u64(config_.powerSamples)
      .u64(config_.powerSeed);
  return h.digest();
}

const liberty::Library& TuningFlow::nominalLibrary() {
  if (!nominal_) {
    auto library = std::make_unique<liberty::Library>(
        cachedStage<liberty::Library>(
            store_, mem_, "flow.stage.nominal", nominalKey(),
            [&] {
              return characterizer_.characterizeNominal(
                  charlib::ProcessCorner::typical());
            },
            [](artifact::SctbWriter& writer, const liberty::Library& lib) {
              artifact::encodeLibrary(writer, lib);
            },
            [](const artifact::SctbReader& reader) {
              return artifact::decodeLibrary(reader);
            }));
    // Gate before the member is set: a failed gate leaves the flow without a
    // nominal library, so a retried call re-lints instead of serving the
    // tainted artifact.
    lint::LintSubject subject;
    subject.library = library.get();
    lintGate("nominal", nominalKey(), subject,
             lint::packBit(lint::RulePack::kLiberty));
    nominal_ = std::move(library);
  }
  return *nominal_;
}

const statlib::StatLibrary& TuningFlow::statLibrary() {
  if (!stat_) {
    auto library = std::make_unique<statlib::StatLibrary>(
        cachedStage<statlib::StatLibrary>(
            store_, mem_, "flow.stage.stat", statKey(),
            [&] {
              const std::vector<liberty::Library> instances =
                  characterizer_.characterizeMonteCarlo(
                      charlib::ProcessCorner::typical(),
                      config_.mcLibraryCount, config_.mcSeed);
              return statlib::buildStatLibrary(instances);
            },
            [](artifact::SctbWriter& writer,
               const statlib::StatLibrary& lib) {
              artifact::encodeStatLibrary(writer, lib);
            },
            [](const artifact::SctbReader& reader) {
              return artifact::decodeStatLibrary(reader);
            }));
    if (config_.lintMode != LintMode::kOff) {
      lint::LintSubject subject;
      subject.statLibrary = library.get();
      // Grid cross-checks need the nominal library; resolving it here keeps
      // the gate's reference consistent with what synthesis will use.
      subject.referenceLibrary = &nominalLibrary();
      lintGate("stat", statKey(), subject,
               lint::packBit(lint::RulePack::kStatLib));
    }
    stat_ = std::move(library);
  }
  return *stat_;
}

const netlist::Design& TuningFlow::subject() {
  if (!subject_) {
    SCT_TRACE_SPAN("flow.stage.subject");
    auto design =
        std::make_unique<netlist::Design>(generateSubject(config_));
    artifact::Hasher h = flowHasher();
    h.str("stage:subject");
    hashSubject(h, config_);
    lint::LintSubject subject;
    subject.design = design.get();
    lintGate("subject", h.digest(), subject,
             lint::packBit(lint::RulePack::kNetlist));
    subject_ = std::move(design);
  }
  return *subject_;
}

tuning::LibraryConstraints TuningFlow::tune(const tuning::TuningConfig& config) {
  tuning::LibraryConstraints constraints =
      cachedStage<tuning::LibraryConstraints>(
          store_, mem_, "flow.stage.tune", tuneKey(config),
          [&] { return tuning::tuneLibrary(statLibrary(), config); },
          [](artifact::SctbWriter& writer,
             const tuning::LibraryConstraints& value) {
            artifact::encodeConstraints(writer, value);
          },
          [](const artifact::SctbReader& reader) {
            return artifact::decodeConstraints(reader);
          });
  if (config_.lintMode != LintMode::kOff) {
    lint::LintSubject subject;
    subject.constraints = &constraints;
    subject.referenceLibrary = &nominalLibrary();
    lintGate("tune", tuneKey(config), subject,
             lint::packBit(lint::RulePack::kConstraints));
  }
  return constraints;
}

void TuningFlow::lintGate(std::string_view stageName,
                          const artifact::Digest& stageKey,
                          const lint::LintSubject& subject,
                          lint::RulePackMask packs) {
  if (config_.lintMode == LintMode::kOff) return;
  // Lint-result cache key: subject identity (the stage's own artifact key)
  // + rule-pack version, so a rule change invalidates every cached report.
  artifact::Hasher h;
  h.str("sct-lint")
      .u32(artifact::kSchemaVersion)
      .u32(lint::kRulePackVersion)
      .str(stageName)
      .u64(stageKey.hi)
      .u64(stageKey.lo)
      .u8(packs);
  const lint::LintReport report = cachedStage<lint::LintReport>(
      store_, mem_, "flow.stage.lint", h.digest(),
      [&] { return linter_.run(subject, packs); },
      [](artifact::SctbWriter& writer, const lint::LintReport& value) {
        artifact::encodeLintReport(writer, value);
      },
      [](const artifact::SctbReader& reader) {
        return artifact::decodeLintReport(reader);
      });
  if (report.empty()) return;
  if (report.hasErrors() && config_.lintMode == LintMode::kError) {
    constexpr std::size_t kMaxShown = 10;
    std::ostringstream message;
    message << "lint gate failed at stage '" << stageName
            << "': " << report.summary();
    std::size_t shown = 0;
    for (const lint::Diagnostic& d : report.diagnostics()) {
      if (d.severity != lint::Severity::kError) continue;
      if (shown == kMaxShown) {
        message << "\n  ... (" << (report.errorCount() - shown) << " more)";
        break;
      }
      ++shown;
      message << "\n  [" << d.ruleId << "] " << d.objectPath << ": "
              << d.message;
    }
    throw std::runtime_error(message.str());
  }
  std::fprintf(stderr, "sct: lint[%.*s]: %s\n",
               static_cast<int>(stageName.size()), stageName.data(),
               report.summary().c_str());
}

synth::SynthesisResult TuningFlow::synthesizeCached(
    double period, const tuning::TuningConfig* config) {
  const liberty::Library& library = nominalLibrary();
  return cachedStage<synth::SynthesisResult>(
      store_, mem_, "flow.stage.synth", synthKey(period, config),
      [&] {
        std::optional<tuning::LibraryConstraints> constraints;
        if (config != nullptr) constraints.emplace(tune(*config));
        synth::Synthesizer synthesizer(
            library, constraints ? &*constraints : nullptr);
        sta::ClockSpec clock = config_.clock;
        clock.period = period;
        return synthesizer.run(subject(), clock, config_.synthesis);
      },
      [](artifact::SctbWriter& writer, const synth::SynthesisResult& result) {
        artifact::encodeSynthesisResult(writer, result);
      },
      [&library](const artifact::SctbReader& reader) {
        return artifact::decodeSynthesisResult(reader, &library);
      });
}

DesignMeasurement TuningFlow::synthesizeBaseline(double period) {
  return measure(synthesizeCached(period, nullptr), period);
}

DesignMeasurement TuningFlow::synthesizeTuned(
    double period, const tuning::TuningConfig& config) {
  return measure(synthesizeCached(period, &config), period);
}

std::vector<sta::TimingPath> TuningFlow::tracePaths(
    const synth::SynthesisResult& result, double period) const {
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  sta::TimingAnalyzer analyzer(result.design, *nominal_, clock);
  if (!analyzer.analyze()) return {};
  return analyzer.endpointWorstPaths();
}

DesignMeasurement TuningFlow::measure(synth::SynthesisResult result,
                                      double period) {
  SCT_TRACE_SPAN("flow.measure");
  DesignMeasurement out;
  out.clockPeriod = period;
  out.synthesis = std::move(result);

  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  sta::TimingAnalyzer analyzer(out.synthesis.design, nominalLibrary(), clock);
  if (!analyzer.analyze()) return out;

  const std::vector<sta::TimingPath> paths = analyzer.endpointWorstPaths();
  const variation::PathStatistics stats(statLibrary(), config_.rho);
  out.design = stats.designStats(paths);
  out.paths.reserve(paths.size());
  for (const sta::TimingPath& path : paths) {
    const variation::PathStats ps = stats.pathStats(path);
    PathRecord record;
    record.depth = ps.depth;
    record.mean = ps.mean;
    record.sigma = ps.sigma;
    record.arrival = path.endpoint.arrival;
    record.slack = path.endpoint.slack;
    record.endpoint = analyzer.endpointName(path.endpoint);
    out.paths.push_back(std::move(record));
  }
  // Dynamic-power totals at the measured operating points (satellite of the
  // scenario work: the report and trade-off output carry power alongside
  // sigma/area). Deterministic per-instance streams from powerSeed.
  const power::PowerModel powerModel(characterizer_.model());
  out.power = power::analyzeDesignPower(
      out.synthesis.design, analyzer, characterizer_, powerModel,
      config_.powerActivity, config_.powerSamples, config_.powerSeed);
  return out;
}

std::optional<double> TuningFlow::findMinPeriod(double lo, double hi,
                                                double tolerance) {
  synth::Synthesizer synthesizer(nominalLibrary());
  return synthesizer.findMinPeriod(subject(), config_.clock, lo, hi, tolerance,
                                   config_.synthesis);
}

std::vector<TuningFlow::SweepPoint> TuningFlow::sweepMethod(
    tuning::TuningMethod method, double period,
    const DesignMeasurement& baseline) {
  std::vector<SweepPoint> points;
  for (double value : tuning::sweepValues(method)) {
    SweepPoint point;
    point.method = method;
    point.parameter = value;
    point.measurement =
        synthesizeTuned(period, tuning::TuningConfig::forMethod(method, value));
    if (baseline.sigma() > 0.0) {
      point.sigmaReductionPct =
          100.0 * (baseline.sigma() - point.measurement.sigma()) /
          baseline.sigma();
    }
    if (baseline.area() > 0.0) {
      point.areaIncreasePct =
          100.0 * (point.measurement.area() - baseline.area()) /
          baseline.area();
    }
    points.push_back(std::move(point));
  }
  return points;
}

const TuningFlow::SweepPoint* TuningFlow::bestUnderAreaCap(
    std::span<const SweepPoint> points, double maxAreaIncreasePct) {
  const SweepPoint* best = nullptr;
  for (const SweepPoint& point : points) {
    if (!point.measurement.success()) continue;
    if (point.areaIncreasePct >= maxAreaIncreasePct) continue;
    if (best == nullptr ||
        point.sigmaReductionPct > best->sigmaReductionPct) {
      best = &point;
    }
  }
  return best;
}

}  // namespace sct::core
