#include "core/flow.hpp"

#include <utility>

#include "parallel/thread_pool.hpp"

namespace sct::core {

TuningFlow::TuningFlow(FlowConfig config)
    : config_(std::move(config)), characterizer_(config_.characterization) {
  if (config_.threads >= 0) {
    parallel::setThreadCount(static_cast<std::size_t>(config_.threads));
  }
}

const liberty::Library& TuningFlow::nominalLibrary() {
  if (!nominal_) {
    nominal_ = std::make_unique<liberty::Library>(
        characterizer_.characterizeNominal(charlib::ProcessCorner::typical()));
  }
  return *nominal_;
}

const statlib::StatLibrary& TuningFlow::statLibrary() {
  if (!stat_) {
    const std::vector<liberty::Library> instances =
        characterizer_.characterizeMonteCarlo(charlib::ProcessCorner::typical(),
                                              config_.mcLibraryCount,
                                              config_.mcSeed);
    stat_ = std::make_unique<statlib::StatLibrary>(
        statlib::buildStatLibrary(instances));
  }
  return *stat_;
}

const netlist::Design& TuningFlow::subject() {
  if (!subject_) {
    subject_ = std::make_unique<netlist::Design>(
        netlist::generateMcu(config_.mcu));
  }
  return *subject_;
}

tuning::LibraryConstraints TuningFlow::tune(const tuning::TuningConfig& config) {
  return tuning::tuneLibrary(statLibrary(), config);
}

DesignMeasurement TuningFlow::synthesizeBaseline(double period) {
  synth::Synthesizer synthesizer(nominalLibrary());
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  return measure(synthesizer.run(subject(), clock, config_.synthesis), period);
}

DesignMeasurement TuningFlow::synthesizeTuned(
    double period, const tuning::TuningConfig& config) {
  const tuning::LibraryConstraints constraints = tune(config);
  synth::Synthesizer synthesizer(nominalLibrary(), &constraints);
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  return measure(synthesizer.run(subject(), clock, config_.synthesis), period);
}

std::vector<sta::TimingPath> TuningFlow::tracePaths(
    const synth::SynthesisResult& result, double period) const {
  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  sta::TimingAnalyzer analyzer(result.design, *nominal_, clock);
  if (!analyzer.analyze()) return {};
  return analyzer.endpointWorstPaths();
}

DesignMeasurement TuningFlow::measure(synth::SynthesisResult result,
                                      double period) {
  DesignMeasurement out;
  out.clockPeriod = period;
  out.synthesis = std::move(result);

  sta::ClockSpec clock = config_.clock;
  clock.period = period;
  sta::TimingAnalyzer analyzer(out.synthesis.design, nominalLibrary(), clock);
  if (!analyzer.analyze()) return out;

  const std::vector<sta::TimingPath> paths = analyzer.endpointWorstPaths();
  const variation::PathStatistics stats(statLibrary(), config_.rho);
  out.design = stats.designStats(paths);
  out.paths.reserve(paths.size());
  for (const sta::TimingPath& path : paths) {
    const variation::PathStats ps = stats.pathStats(path);
    PathRecord record;
    record.depth = ps.depth;
    record.mean = ps.mean;
    record.sigma = ps.sigma;
    record.arrival = path.endpoint.arrival;
    record.slack = path.endpoint.slack;
    record.endpoint = analyzer.endpointName(path.endpoint);
    out.paths.push_back(std::move(record));
  }
  return out;
}

std::optional<double> TuningFlow::findMinPeriod(double lo, double hi,
                                                double tolerance) {
  synth::Synthesizer synthesizer(nominalLibrary());
  return synthesizer.findMinPeriod(subject(), config_.clock, lo, hi, tolerance,
                                   config_.synthesis);
}

std::vector<TuningFlow::SweepPoint> TuningFlow::sweepMethod(
    tuning::TuningMethod method, double period,
    const DesignMeasurement& baseline) {
  std::vector<SweepPoint> points;
  for (double value : tuning::sweepValues(method)) {
    SweepPoint point;
    point.method = method;
    point.parameter = value;
    point.measurement =
        synthesizeTuned(period, tuning::TuningConfig::forMethod(method, value));
    if (baseline.sigma() > 0.0) {
      point.sigmaReductionPct =
          100.0 * (baseline.sigma() - point.measurement.sigma()) /
          baseline.sigma();
    }
    if (baseline.area() > 0.0) {
      point.areaIncreasePct =
          100.0 * (point.measurement.area() - baseline.area()) /
          baseline.area();
    }
    points.push_back(std::move(point));
  }
  return points;
}

const TuningFlow::SweepPoint* TuningFlow::bestUnderAreaCap(
    std::span<const SweepPoint> points, double maxAreaIncreasePct) {
  const SweepPoint* best = nullptr;
  for (const SweepPoint& point : points) {
    if (!point.measurement.success()) continue;
    if (point.areaIncreasePct >= maxAreaIncreasePct) continue;
    if (best == nullptr ||
        point.sigmaReductionPct > best->sigmaReductionPct) {
      best = &point;
    }
  }
  return best;
}

}  // namespace sct::core
