#pragma once
// Consult-then-compute wrapper shared by every cache-keyed pipeline stage
// (DESIGN.md §10/§14): the flow's characterize/stat/tune/synth stages and
// the post-silicon scenario runner all funnel through cachedStage so a
// validated hit — from the in-memory tier first, then the on-disk store —
// short-circuits the computation, misses coalesce through one process-wide
// single-flight group, and published bytes serve warm runs bit-identically.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "artifact/binary_format.hpp"
#include "artifact/hash.hpp"
#include "artifact/mem_cache.hpp"
#include "artifact/single_flight.hpp"
#include "artifact/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sct::core {

/// Process-wide single-flight group over stage digests (DESIGN.md §14):
/// concurrent flows sharing cache tiers (the daemon's sessions) coalesce
/// onto one computation per key instead of racing to recompute.
inline artifact::SingleFlight& stageSingleFlight() {
  static artifact::SingleFlight instance;
  return instance;
}

/// Consult-then-compute wrapper around one pipeline stage: a validated cache
/// hit — from the in-memory tier first, then the on-disk store — short-
/// circuits `compute`; a decode failure (checksums fine but the payload is
/// semantically unusable, e.g. a stale cell name) falls through to
/// recompute-and-republish, never to wrong data. A miss takes the per-key
/// single-flight lock: whoever acquires it first computes and publishes,
/// late arrivals re-probe under the lock and decode the freshly published
/// bytes instead of recomputing.
///
/// `stageName` must be a string literal (e.g. "flow.stage.nominal"): it names
/// the trace span and prefixes the per-stage instruments
/// `<stage>.{probes,hits,mem_hits,misses,stores,ns}` that the CLI's
/// per-stage table reads back out of the metrics snapshot.
template <class T, class ComputeFn, class EncodeFn, class DecodeFn>
T cachedStage(artifact::ArtifactStore* store, artifact::MemoryArtifactCache* mem,
              const char* stageName, const artifact::Digest& key,
              ComputeFn&& compute, EncodeFn&& encode, DecodeFn&& decode) {
  obs::TraceSpan span(stageName);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::string prefix(stageName);
  obs::Counter& durationNs = registry.counter(prefix + ".ns");
  const bool timed = obs::metricsEnabled();
  const std::uint64_t start = timed ? obs::monotonicNanos() : 0;
  const auto finish = [&](T value) {
    if (timed) durationNs.add(obs::monotonicNanos() - start);
    return value;
  };
  const auto probe = [&]() -> std::optional<T> {
    if (mem != nullptr) {
      if (std::shared_ptr<const artifact::SctbReader> reader = mem->get(key)) {
        try {
          T value = decode(*reader);
          registry.counter(prefix + ".hits").inc();
          registry.counter(prefix + ".mem_hits").inc();
          return value;
        } catch (const artifact::FormatError&) {
          mem->erase(key);  // unusable for these inputs: recompute below
        }
      }
    }
    if (store != nullptr) {
      if (std::optional<artifact::SctbReader> reader = store->open(key)) {
        try {
          T value = decode(*reader);
          if (mem != nullptr) {
            mem->put(key, std::make_shared<const artifact::SctbReader>(
                              std::move(*reader)));
          }
          registry.counter(prefix + ".hits").inc();
          return value;
        } catch (const artifact::FormatError&) {
        }
      }
    }
    return std::nullopt;
  };

  if (store == nullptr && mem == nullptr) return finish(compute());

  registry.counter(prefix + ".probes").inc();
  if (std::optional<T> value = probe()) return finish(std::move(*value));
  // lock() without a deadline always yields a guard.
  const std::optional<artifact::SingleFlight::Guard> guard =
      stageSingleFlight().lock(key);
  if (guard->waited()) {
    // Another thread was computing this key; its publication should now be
    // visible. When it failed (no publication), we inherit leadership.
    if (std::optional<T> value = probe()) {
      registry.counter("flow.singleflight.coalesced").inc();
      return finish(std::move(*value));
    }
  }
  registry.counter(prefix + ".misses").inc();
  registry.counter("flow.singleflight.leader").inc();
  T value = compute();
  artifact::SctbWriter writer;
  encode(writer, value);
  const std::vector<std::byte> bytes = writer.finish();
  if (store != nullptr) store->publishBytes(key, bytes);
  if (mem != nullptr) {
    mem->put(key, std::make_shared<const artifact::SctbReader>(
                      artifact::SctbReader::fromBytes(bytes)));
  }
  registry.counter(prefix + ".stores").inc();
  return finish(std::move(value));
}

}  // namespace sct::core
