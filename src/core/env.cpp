#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>

namespace sct::env {

std::optional<std::string> get(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::optional<std::string>(value) : std::nullopt;
}

std::size_t parseSize(std::string_view what, std::string_view value,
                      std::size_t fallback, std::size_t max) noexcept {
  if (value.empty()) return fallback;
  std::size_t parsed = 0;
  for (const char ch : value) {
    if (ch < '0' || ch > '9') {
      std::fprintf(stderr,
                   "sct: ignoring invalid %.*s '%.*s' "
                   "(want a non-negative count); using %zu\n",
                   static_cast<int>(what.size()), what.data(),
                   static_cast<int>(value.size()), value.data(), fallback);
      return fallback;
    }
    const std::size_t digit = static_cast<std::size_t>(ch - '0');
    // Overflow-safe accumulate: reject before the multiply can wrap.
    if (parsed > max / 10 || parsed * 10 > max - digit) {
      std::fprintf(stderr,
                   "sct: %.*s '%.*s' out of range (max %zu); using %zu\n",
                   static_cast<int>(what.size()), what.data(),
                   static_cast<int>(value.size()), value.data(), max,
                   fallback);
      return fallback;
    }
    parsed = parsed * 10 + digit;
  }
  return parsed;
}

bool parseFlag(std::string_view what, std::string_view value,
               bool fallback) noexcept {
  if (value.empty()) return fallback;
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    return false;
  }
  std::fprintf(stderr,
               "sct: ignoring invalid %.*s '%.*s' (want 1/0, true/false, "
               "on/off or yes/no); using %s\n",
               static_cast<int>(what.size()), what.data(),
               static_cast<int>(value.size()), value.data(),
               fallback ? "true" : "false");
  return fallback;
}

}  // namespace sct::env
