#include "core/flow_job.hpp"

#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "artifact/hash.hpp"
#include "tuning/constraints_io.hpp"

namespace sct::core {
namespace {

/// Full-precision round-trippable double rendering for the deterministic
/// flow report (compared byte-for-byte between CLI and daemon runs).
std::string fmt17(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", v);
  return buffer;
}

}  // namespace

tuning::TuningMethod tuningMethodByName(const std::string& name) {
  if (name == "strength-load") return tuning::TuningMethod::kCellStrengthLoadSlope;
  if (name == "strength-slew") return tuning::TuningMethod::kCellStrengthSlewSlope;
  if (name == "cell-load") return tuning::TuningMethod::kCellLoadSlope;
  if (name == "cell-slew") return tuning::TuningMethod::kCellSlewSlope;
  if (name == "sigma-ceiling") return tuning::TuningMethod::kSigmaCeiling;
  throw std::runtime_error("unknown method '" + name + "'");
}

FlowConfig makeFlowConfig(const FlowJob& job) {
  FlowConfig config;
  if (job.profile == "small") {
    // Shrunk grid/subject for smoke runs; same shape as the full pipeline.
    config.characterization.slewAxis = {0.002, 0.05, 0.2, 0.6};
    config.characterization.loadFractions = {0.01, 0.1, 0.4, 1.0};
    config.mcLibraryCount = 10;
    config.mcu.registers = 8;
    config.mcu.readPorts = 2;
    config.mcu.bankedRegisters = 1;
    config.mcu.macUnits = 1;
    config.mcu.macWidth = 8;
    config.mcu.timers = 1;
    config.mcu.dmaChannels = 1;
    config.mcu.gpioWidth = 16;
    config.mcu.cacheTagEntries = 16;
    config.mcu.decodeOutputs = 64;
    config.mcu.interruptSources = 8;
    config.dsp.dataWidth = 8;
    config.dsp.taps = 4;
    config.dsp.accWidth = 18;
    config.dsp.channels = 1;
    config.noc.ports = 4;
    config.noc.flitWidth = 8;
    config.noc.vcs = 2;
    config.noc.bufferDepth = 1;
    config.big.primaryInputs = 16;
    config.big.primaryOutputs = 16;
    config.big.scale = 4;  // ~800 gates: the shape, not the size
  } else if (job.profile != "full") {
    throw std::runtime_error("unknown profile '" + job.profile +
                             "' (small/full)");
  }
  if (!job.workload.empty()) config.workload = job.workload;
  if (job.mcCount != 0) config.mcLibraryCount = job.mcCount;
  config.mcSeed = job.mcSeed;
  if (job.lintMode == "error") {
    config.lintMode = LintMode::kError;
  } else if (job.lintMode == "warn") {
    config.lintMode = LintMode::kWarn;
  } else if (job.lintMode == "off") {
    config.lintMode = LintMode::kOff;
  } else {
    throw std::runtime_error("unknown lint mode '" + job.lintMode +
                             "' (error/warn/off)");
  }
  return config;
}

FlowJobResult runFlowJob(TuningFlow& flow, const FlowJob& job) {
  std::optional<tuning::TuningConfig> tuningConfig;
  if (!job.method.empty()) {
    tuningConfig = tuning::TuningConfig::forMethod(
        tuningMethodByName(job.method), job.value);
  }
  const DesignMeasurement m = tuningConfig
                                  ? flow.synthesizeTuned(job.period, *tuningConfig)
                                  : flow.synthesizeBaseline(job.period);

  FlowJobResult result;
  result.success = m.success();

  char summary[256];
  std::snprintf(summary, sizeof summary,
                "flow: %s | wns %+.4f ns | area %.0f um^2 | %zu gates | "
                "design sigma %.4f ns over %zu paths",
                m.success() ? "MET" : "FAILED", m.synthesis.worstSlack,
                m.area(), m.synthesis.design.gateCount(), m.sigma(),
                m.paths.size());
  result.summary = summary;

  std::ostringstream report;
  report << "flow-report v1\n";
  report << "design " << m.synthesis.design.name() << " period "
         << fmt17(job.period) << "\n";
  report << "synthesis met " << m.synthesis.timingMet << " legal "
         << m.synthesis.legal << " wns " << fmt17(m.synthesis.worstSlack)
         << " tns " << fmt17(m.synthesis.tns) << " area "
         << fmt17(m.synthesis.area) << "\n";
  report << "gates " << m.synthesis.design.gateCount() << " buffers "
         << m.synthesis.buffersInserted << " resizes " << m.synthesis.resizes
         << " decomposed " << m.synthesis.decomposed << "\n";
  report << "design-sigma " << fmt17(m.sigma()) << " paths " << m.paths.size()
         << "\n";
  report << "power mean " << fmt17(m.power.meanPower) << " sigma "
         << fmt17(m.power.sigmaPower) << " cells " << m.power.cells << "\n";
  if (tuningConfig) {
    const tuning::LibraryConstraints constraints = flow.tune(*tuningConfig);
    artifact::Hasher hasher;
    hasher.str(tuning::writeConstraintsToString(constraints));
    report << "constraints " << constraints.size() << " unusable "
           << constraints.unusableCellCount() << " digest "
           << hasher.digest().hex() << "\n";
  }
  for (const PathRecord& p : m.paths) {
    report << "path " << p.endpoint << " depth " << p.depth << " mean "
           << fmt17(p.mean) << " sigma " << fmt17(p.sigma) << " arrival "
           << fmt17(p.arrival) << " slack " << fmt17(p.slack) << "\n";
  }
  result.report = report.str();
  return result;
}

}  // namespace sct::core
