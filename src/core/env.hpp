#pragma once
// Shared environment-variable parsing with warn-and-fallback semantics.
// Every SCT_* variable goes through these helpers (SCT_THREADS via
// parallel::parseThreadSpec, SCT_STA_CHECK, SCT_CACHE_DIR, SCT_TRACE,
// SCT_METRICS), so garbage input degrades the same way everywhere: one
// stderr warning naming the setting, then the documented fallback —
// never an exception, never silent acceptance.
//
// Lives in src/core but builds as its own dependency-free target
// (sct_env), so low layers like src/parallel can use it without pulling
// in the flow facade.

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <string_view>

namespace sct::env {

/// Raw environment lookup; nullopt when the variable is unset.
[[nodiscard]] std::optional<std::string> get(const char* name);

/// Parses a non-negative base-10 count. Strict: digits only (no sign,
/// whitespace, hex or suffixes). Empty falls back silently; garbage or a
/// value above `max` (including u64 overflow) warns on stderr — naming
/// `what`, e.g. "SCT_THREADS" or "thread spec" — and returns `fallback`.
[[nodiscard]] std::size_t parseSize(
    std::string_view what, std::string_view value, std::size_t fallback,
    std::size_t max = std::numeric_limits<std::size_t>::max()) noexcept;

/// Parses a boolean flag: "1"/"true"/"on"/"yes" and "0"/"false"/"off"/"no"
/// (case-sensitive, the spellings users actually type). Empty falls back
/// silently; anything else warns on stderr and returns `fallback`.
[[nodiscard]] bool parseFlag(std::string_view what, std::string_view value,
                             bool fallback) noexcept;

}  // namespace sct::env
