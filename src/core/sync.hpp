#pragma once
// Thin annotated wrappers over the std synchronization primitives
// (DESIGN.md §16). std::mutex carries no capability attributes, so Clang's
// Thread Safety Analysis cannot connect a std::lock_guard to the
// SCT_GUARDED_BY members it protects. Every subsystem with shared mutable
// state locks through these instead:
//
//   sct::Mutex      annotated capability; same cost as std::mutex
//   sct::LockGuard  scoped acquire/release (std::lock_guard equivalent)
//   sct::CondVar    waits on an sct::Mutex the caller already holds —
//                   SCT_REQUIRES(mu) makes a wait outside the lock a
//                   compile error, and forces wait predicates into explicit
//                   `while (!cond) cv.wait(mu);` loops in the function body
//                   where the analysis can see the guarded reads (a lambda
//                   predicate would hide them behind an unannotated call)
//
// The wrappers are header-only and zero-overhead: each method is a direct
// forward to the std primitive, and the attributes vanish off-clang
// (core/thread_annotations.hpp).

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace sct {

/// Annotated exclusive mutex. `native()` exposes the underlying std::mutex
/// for CondVar's wait implementation only.
class SCT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCT_ACQUIRE() { mutex_.lock(); }
  void unlock() SCT_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() SCT_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
class SCT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) SCT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() SCT_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to sct::Mutex. Waits atomically release and
/// re-acquire the mutex; the SCT_REQUIRES annotations make the analysis
/// treat the capability as held continuously across the wait, which is
/// exactly the guarantee the caller observes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups are possible — always wait in
  /// a `while (!condition)` loop.
  void wait(Mutex& mutex) SCT_REQUIRES(mutex) SCT_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-acquired mutex
  }

  /// Blocks until notified or `deadline`; std::cv_status::timeout when the
  /// deadline passed (the mutex is re-held either way).
  template <typename Clock, typename Duration>
  std::cv_status waitUntil(Mutex& mutex,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) SCT_REQUIRES(mutex)
      SCT_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sct
