#pragma once
// SCTB — the repository's versioned binary artifact container. Text formats
// (Liberty dialect, stat library, constraints, Verilog) stay the
// human-facing interchange; SCTB is the *cache* format: what the flow
// persists between runs and bulk-loads on a warm start.
//
// File layout (all integers little-endian):
//
//   offset 0   char[4]  magic "SCTB"
//          4   u32      schema version (kSchemaVersion)
//          8   u32      section count
//         12   u32      reserved (0)
//         16   section table, one entry per section:
//                {char name[16] zero-padded; u64 offset; u64 size; u64 fnv1a}
//         ...  section payloads, each starting on an 8-byte boundary
//
// Every section carries its own FNV-1a checksum, verified on load; any
// mismatch, truncation, bad magic or version skew raises FormatError, which
// the artifact store treats as "not cached" (graceful recompute, never a
// wrong answer). Payloads are plain byte streams with typed accessors; bulk
// double data (LUT grids, axes) is 8-byte aligned in the file so a reader —
// which slurps the file with a single read into 8-byte-aligned storage —
// can hand out zero-copy spans or memcpy whole grids at once.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sct::artifact {

/// Bumped whenever any codec's byte layout changes; part of both the file
/// header and the content-address, so stale-layout artifacts are never read.
inline constexpr std::uint32_t kSchemaVersion = 1;

inline constexpr char kMagic[4] = {'S', 'C', 'T', 'B'};
inline constexpr std::size_t kSectionNameBytes = 16;

/// Raised on any malformed, truncated, corrupt or version-skewed input.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& message)
      : std::runtime_error("SCTB: " + message) {}
};

/// Accumulates named sections in memory and serializes the container.
class SctbWriter {
 public:
  explicit SctbWriter(std::uint32_t schemaVersion = kSchemaVersion)
      : schema_version_(schemaVersion) {}

  /// Starts a new section; all subsequent puts go into it. Names are at
  /// most kSectionNameBytes bytes and unique per file.
  void beginSection(std::string_view name);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);  ///< u64 length + raw bytes
  /// Pads the current section with zeros to the next 8-byte boundary;
  /// call before f64span so readers can return aligned zero-copy views.
  void align8();
  /// u64 count, zero-padding to 8-byte alignment, then the raw doubles.
  void f64span(std::span<const double> values);

  /// Serialized container bytes (header + table + payloads).
  [[nodiscard]] std::vector<std::byte> finish() const;

 private:
  struct Section {
    std::string name;
    std::vector<std::byte> data;
  };
  Section& current();

  std::uint32_t schema_version_;
  std::vector<Section> sections_;
};

/// Parses and validates a container; hands out per-section read cursors.
/// The whole file is loaded with one read into 8-byte-aligned storage.
class SctbReader {
 public:
  /// Throws FormatError on any structural problem (bad magic, version skew,
  /// truncated table/payload, checksum mismatch).
  static SctbReader fromBytes(std::span<const std::byte> bytes);
  static SctbReader fromFile(const std::string& path);

  [[nodiscard]] std::uint32_t schemaVersion() const noexcept {
    return schema_version_;
  }
  [[nodiscard]] std::size_t sectionCount() const noexcept {
    return sections_.size();
  }
  [[nodiscard]] bool hasSection(std::string_view name) const noexcept;

  /// Sequential read cursor over one section's payload. Reads past the end
  /// of the section throw FormatError.
  class Cursor {
   public:
    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] double f64();
    [[nodiscard]] bool boolean() { return u8() != 0; }
    [[nodiscard]] std::string str();
    /// Skips alignment padding written by SctbWriter::align8().
    void align8();
    /// Zero-copy view of `count` doubles backed by the reader's buffer
    /// (valid for the reader's lifetime). Includes the count prefix and
    /// alignment skip matching SctbWriter::f64span.
    [[nodiscard]] std::span<const double> f64span();
    /// Bulk copy of an f64span payload into caller storage (one memcpy).
    void readDoubles(std::span<double> out);
    [[nodiscard]] std::size_t remaining() const noexcept { return end_ - pos_; }

   private:
    friend class SctbReader;
    Cursor(const SctbReader* reader, std::size_t begin, std::size_t end)
        : reader_(reader), pos_(begin), end_(end) {}
    void need(std::size_t n) const;
    [[nodiscard]] const std::byte* raw() const noexcept;

    const SctbReader* reader_;
    std::size_t pos_;  ///< absolute offset into the file buffer
    std::size_t end_;
  };

  /// Cursor over a named section; throws FormatError when absent.
  [[nodiscard]] Cursor section(std::string_view name) const;

  [[nodiscard]] std::size_t fileSize() const noexcept { return size_; }

  /// The validated container bytes, exactly as stored on disk / on the
  /// wire. Lets a cache of readers re-serve the original payload (daemon
  /// response cache) without keeping a second copy.
  [[nodiscard]] std::span<const std::byte> rawBytes() const noexcept {
    return {data(), size_};
  }

 private:
  struct SectionEntry {
    std::string name;
    std::size_t offset = 0;
    std::size_t size = 0;
  };

  SctbReader() = default;
  void parse();
  [[nodiscard]] const std::byte* data() const noexcept {
    return reinterpret_cast<const std::byte*>(buffer_.data());
  }

  // 8-byte-aligned backing storage: doubles so aligned f64 payload offsets
  // may be reinterpreted as double objects for zero-copy spans.
  std::vector<double> buffer_;
  std::size_t size_ = 0;  ///< valid bytes in buffer_
  std::uint32_t schema_version_ = 0;
  std::vector<SectionEntry> sections_;
};

}  // namespace sct::artifact
