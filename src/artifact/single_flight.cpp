#include "artifact/single_flight.hpp"

namespace sct::artifact {

std::optional<SingleFlight::Guard> SingleFlight::lock(
    const Digest& key, std::chrono::steady_clock::time_point deadline) {
  const LockGuard lock(mutex_);
  bool waited = false;
  while (held_.contains(key)) {
    waited = true;
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(mutex_);
    } else if (cv_.waitUntil(mutex_, deadline) == std::cv_status::timeout &&
               held_.contains(key)) {
      return std::nullopt;
    }
  }
  held_.insert(key);
  return Guard(this, key, waited);
}

std::size_t SingleFlight::inFlight() const {
  const LockGuard lock(mutex_);
  return held_.size();
}

void SingleFlight::release(const Digest& key) {
  {
    const LockGuard lock(mutex_);
    held_.erase(key);
  }
  // Notify outside the lock: waiters re-acquire immediately on wake, so
  // signalling under the mutex would only add a futex round-trip (benign
  // pattern, documented in DESIGN.md §16).
  cv_.notifyAll();
}

}  // namespace sct::artifact
