#include "artifact/single_flight.hpp"

namespace sct::artifact {

std::optional<SingleFlight::Guard> SingleFlight::lock(
    const Digest& key, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool waited = false;
  while (held_.contains(key)) {
    waited = true;
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
               held_.contains(key)) {
      return std::nullopt;
    }
  }
  held_.insert(key);
  return Guard(this, key, waited);
}

std::size_t SingleFlight::inFlight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return held_.size();
}

void SingleFlight::release(const Digest& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    held_.erase(key);
  }
  cv_.notify_all();
}

}  // namespace sct::artifact
