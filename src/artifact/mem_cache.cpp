#include "artifact/mem_cache.hpp"

#include "obs/metrics.hpp"

namespace sct::artifact {

namespace {

/// Process-wide mirror of the per-cache MemCacheStats, aggregated over every
/// cache the process created (same pattern as the store's StoreMetrics).
struct MemCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Counter& evictedBytes;

  static MemCacheMetrics& get() {
    static MemCacheMetrics instance{
        obs::MetricsRegistry::global().counter("memcache.hits"),
        obs::MetricsRegistry::global().counter("memcache.misses"),
        obs::MetricsRegistry::global().counter("memcache.insertions"),
        obs::MetricsRegistry::global().counter("memcache.evictions"),
        obs::MetricsRegistry::global().counter("memcache.evicted_bytes")};
    return instance;
  }
};

}  // namespace

MemoryArtifactCache::MemoryArtifactCache(std::uint64_t maxBytes)
    : max_bytes_(maxBytes) {
  stats_.capacity = maxBytes;
}

std::shared_ptr<const SctbReader> MemoryArtifactCache::get(const Digest& key) {
  const LockGuard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    MemCacheMetrics::get().misses.inc();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  MemCacheMetrics::get().hits.inc();
  return it->second->reader;
}

void MemoryArtifactCache::put(const Digest& key,
                              std::shared_ptr<const SctbReader> reader) {
  if (!reader) return;
  const std::uint64_t bytes = reader->fileSize();
  const LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    bytes_ += bytes;
    it->second->reader = std::move(reader);
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(reader), bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++stats_.insertions;
    MemCacheMetrics::get().insertions.inc();
  }
  evictUntilFitsLocked();
}

void MemoryArtifactCache::erase(const Digest& key) {
  const LockGuard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

MemCacheStats MemoryArtifactCache::stats() const {
  const LockGuard lock(mutex_);
  MemCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = lru_.size();
  return out;
}

void MemoryArtifactCache::evictUntilFitsLocked() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    ++stats_.evictions;
    MemCacheMetrics::get().evictions.inc();
    MemCacheMetrics::get().evictedBytes.add(victim.bytes);
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace sct::artifact
