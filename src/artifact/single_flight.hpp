#pragma once
// Single-flight dedup for stage computations (DESIGN.md §14): a keyed
// exclusive lock over the 128-bit stage digests. When several threads miss
// the cache on the same key concurrently, the first becomes the *leader*
// and computes; the rest block in lock() until the leader releases, then
// re-probe the cache and find the freshly published artifact — the stage
// runs exactly once and every caller sees byte-identical bytes.
//
// The lock is deliberately not a future/promise of the computed value:
// results flow through the artifact cache tiers, which already guarantee
// byte-stable publication, and a leader that *fails* simply releases the
// key so the next waiter retries the computation instead of inheriting a
// stale exception.

#include <chrono>
#include <optional>
#include <unordered_set>

#include "artifact/hash.hpp"
#include "core/sync.hpp"

namespace sct::artifact {

class SingleFlight {
 public:
  /// Exclusive hold on one key; releasing (destruction) wakes all waiters.
  class Guard {
   public:
    Guard(Guard&& other) noexcept
        : owner_(other.owner_), key_(other.key_), waited_(other.waited_) {
      other.owner_ = nullptr;
    }
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() {
      if (owner_ != nullptr) owner_->release(key_);
    }

    /// True when another thread held the key when lock() was called — the
    /// caller coalesced onto an in-flight computation and should expect its
    /// re-probe to hit.
    [[nodiscard]] bool waited() const noexcept { return waited_; }

   private:
    friend class SingleFlight;
    Guard(SingleFlight* owner, const Digest& key, bool waited) noexcept
        : owner_(owner), key_(key), waited_(waited) {}

    SingleFlight* owner_;
    Digest key_;
    bool waited_;
  };

  /// Blocks until no other thread holds `key`, then acquires it. Returns
  /// nullopt when `deadline` passes first (the default never expires).
  /// Not reentrant: a thread must not lock a key it already holds.
  [[nodiscard]] std::optional<Guard> lock(
      const Digest& key,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max()) SCT_EXCLUDES(mutex_);

  /// Number of keys currently held (diagnostic).
  [[nodiscard]] std::size_t inFlight() const SCT_EXCLUDES(mutex_);

 private:
  void release(const Digest& key) SCT_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar cv_;
  /// Held keys. Lookup-only unordered set — membership tests and erase,
  /// never iterated for output.
  std::unordered_set<Digest, DigestHash> held_ SCT_GUARDED_BY(mutex_);
};

}  // namespace sct::artifact
