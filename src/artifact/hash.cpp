#include "artifact/hash.hpp"

#include <bit>
#include <cstring>

namespace sct::artifact {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void appendHex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(v >> shift) & 0xF]);
  }
}

int hexValue(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest::hex() const {
  std::string out;
  out.reserve(32);
  appendHex64(out, hi);
  appendHex64(out, lo);
  return out;
}

std::optional<Digest> Digest::fromHex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  Digest d;
  for (std::size_t i = 0; i < 32; ++i) {
    const int v = hexValue(text[i]);
    if (v < 0) return std::nullopt;
    std::uint64_t& word = i < 16 ? d.hi : d.lo;
    word = (word << 4) | static_cast<std::uint64_t>(v);
  }
  return d;
}

Hasher& Hasher::bytes(std::span<const std::byte> data) noexcept {
  for (std::byte b : data) {
    state_ ^= static_cast<unsigned char>(b);
    state_ *= kPrime;
  }
  return *this;
}

namespace {

// One distinct tag byte per feeder: a u32 can never hash equal to four u8s,
// independent of the values fed.
enum FeedTag : std::uint8_t {
  kTagU8 = 0xA1,
  kTagU32 = 0xA2,
  kTagU64 = 0xA3,
  kTagF64 = 0xA4,
  kTagStr = 0xA5,
  kTagF64Span = 0xA6,
};

}  // namespace

Hasher& Hasher::u8(std::uint8_t v) noexcept {
  const std::byte buf[2] = {std::byte{kTagU8}, std::byte{v}};
  return bytes(buf);
}

Hasher& Hasher::u32(std::uint32_t v) noexcept {
  std::byte buf[5] = {std::byte{kTagU32}};
  for (int i = 0; i < 4; ++i) buf[i + 1] = std::byte((v >> (8 * i)) & 0xFF);
  return bytes(buf);
}

Hasher& Hasher::u64(std::uint64_t v) noexcept {
  std::byte buf[9] = {std::byte{kTagU64}};
  for (int i = 0; i < 8; ++i) buf[i + 1] = std::byte((v >> (8 * i)) & 0xFF);
  return bytes(buf);
}

Hasher& Hasher::f64(double v) noexcept {
  const std::byte tag{kTagF64};
  bytes({&tag, 1});
  return u64(std::bit_cast<std::uint64_t>(v));
}

Hasher& Hasher::str(std::string_view s) noexcept {
  const std::byte tag{kTagStr};
  bytes({&tag, 1});
  u64(s.size());
  return bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

Hasher& Hasher::f64span(std::span<const double> values) noexcept {
  const std::byte tag{kTagF64Span};
  bytes({&tag, 1});
  u64(values.size());
  for (double v : values) f64(v);
  return *this;
}

Digest Hasher::digest() const noexcept {
  return Digest{static_cast<std::uint64_t>(state_ >> 64),
                static_cast<std::uint64_t>(state_)};
}

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<unsigned char>(b);
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

}  // namespace sct::artifact
