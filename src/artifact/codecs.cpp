#include "artifact/codecs.hpp"

#include <cstring>
#include <utility>
#include <vector>

namespace sct::artifact {
namespace {

// ------------------------------------------------- shared grid plumbing --
// Encoders append every axis/grid into one vector<double>; the block is
// written as a single aligned f64span. Decoders slice the span back in the
// same traversal order.

void appendLut(std::vector<double>& grids, const liberty::Lut& lut) {
  grids.insert(grids.end(), lut.slewAxis().begin(), lut.slewAxis().end());
  grids.insert(grids.end(), lut.loadAxis().begin(), lut.loadAxis().end());
  const std::span<const double> flat = lut.values().flat();
  grids.insert(grids.end(), flat.begin(), flat.end());
}

/// Sequential slicer over the artifact's f64 block.
class GridCursor {
 public:
  explicit GridCursor(std::span<const double> data) : data_(data) {}

  std::span<const double> take(std::size_t n) {
    if (data_.size() - pos_ < n) throw FormatError("grid block exhausted");
    const std::span<const double> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  numeric::Axis axis(std::size_t n) {
    const auto s = take(n);
    return numeric::Axis(s.begin(), s.end());
  }

  numeric::Grid2d grid(std::size_t rows, std::size_t cols) {
    const auto s = take(rows * cols);
    numeric::Grid2d grid(rows, cols);
    std::memcpy(grid.flat().data(), s.data(), s.size() * sizeof(double));
    return grid;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const double> data_;
  std::size_t pos_ = 0;
};

void putLutShape(SctbWriter& writer, const liberty::Lut& lut) {
  writer.u32(static_cast<std::uint32_t>(lut.rows()));
  writer.u32(static_cast<std::uint32_t>(lut.cols()));
}

liberty::Lut takeLut(SctbReader::Cursor& cursor, GridCursor& grids) {
  const std::uint32_t rows = cursor.u32();
  const std::uint32_t cols = cursor.u32();
  numeric::Axis slew = grids.axis(rows);
  numeric::Axis load = grids.axis(cols);
  numeric::Grid2d values = grids.grid(rows, cols);
  return liberty::Lut(std::move(slew), std::move(load), std::move(values));
}

liberty::CellFunction takeFunction(SctbReader::Cursor& cursor) {
  const std::uint32_t raw = cursor.u32();
  if (raw >= liberty::kNumCellFunctions) {
    throw FormatError("cell function out of range");
  }
  return static_cast<liberty::CellFunction>(raw);
}

}  // namespace

// --------------------------------------------------------------- library --

void encodeLibrary(SctbWriter& writer, const liberty::Library& library) {
  std::vector<double> grids;

  writer.beginSection("lib.meta");
  writer.str(library.name());
  writer.str(library.conditions().processName);
  writer.f64(library.conditions().voltage);
  writer.f64(library.conditions().temperature);

  writer.beginSection("lib.cells");
  const std::vector<const liberty::Cell*> cells = library.cells();
  writer.u64(cells.size());
  for (const liberty::Cell* cell : cells) {
    writer.str(cell->name());
    writer.u32(static_cast<std::uint32_t>(cell->function()));
    writer.f64(cell->driveStrength());
    writer.f64(cell->area());
    writer.f64(cell->setupTime());
    writer.f64(cell->holdTime());
    writer.boolean(!cell->setupLut().empty());
    if (!cell->setupLut().empty()) {
      putLutShape(writer, cell->setupLut());
      appendLut(grids, cell->setupLut());
    }
    writer.u64(cell->pins().size());
    for (const liberty::Pin& pin : cell->pins()) {
      writer.str(pin.name);
      writer.u8(pin.direction == liberty::PinDirection::kOutput ? 1 : 0);
      writer.f64(pin.capacitance);
      writer.f64(pin.maxCapacitance);
      writer.boolean(pin.isClock);
    }
    writer.u64(cell->arcs().size());
    for (const liberty::TimingArc& arc : cell->arcs()) {
      writer.str(arc.relatedPin);
      writer.str(arc.outputPin);
      for (const liberty::Lut* lut :
           {&arc.riseDelay, &arc.fallDelay, &arc.riseTransition,
            &arc.fallTransition}) {
        putLutShape(writer, *lut);
        appendLut(grids, *lut);
      }
    }
  }

  writer.beginSection("lib.grids");
  writer.f64span(grids);
}

liberty::Library decodeLibrary(const SctbReader& reader) {
  SctbReader::Cursor meta = reader.section("lib.meta");
  const std::string name = meta.str();
  liberty::OperatingConditions conditions;
  conditions.processName = meta.str();
  conditions.voltage = meta.f64();
  conditions.temperature = meta.f64();
  liberty::Library library(name, std::move(conditions));

  SctbReader::Cursor cursor = reader.section("lib.cells");
  GridCursor grids(reader.section("lib.grids").f64span());
  const std::uint64_t cellCount = cursor.u64();
  for (std::uint64_t i = 0; i < cellCount; ++i) {
    const std::string cellName = cursor.str();
    const liberty::CellFunction function = takeFunction(cursor);
    const double strength = cursor.f64();
    const double area = cursor.f64();
    liberty::Cell cell(cellName, function, strength, area);
    cell.setSetupTime(cursor.f64());
    cell.setHoldTime(cursor.f64());
    if (cursor.boolean()) cell.setSetupLut(takeLut(cursor, grids));
    const std::uint64_t pinCount = cursor.u64();
    for (std::uint64_t p = 0; p < pinCount; ++p) {
      liberty::Pin pin;
      pin.name = cursor.str();
      pin.direction = cursor.u8() != 0 ? liberty::PinDirection::kOutput
                                       : liberty::PinDirection::kInput;
      pin.capacitance = cursor.f64();
      pin.maxCapacitance = cursor.f64();
      pin.isClock = cursor.boolean();
      cell.addPin(std::move(pin));
    }
    const std::uint64_t arcCount = cursor.u64();
    for (std::uint64_t a = 0; a < arcCount; ++a) {
      liberty::TimingArc arc;
      arc.relatedPin = cursor.str();
      arc.outputPin = cursor.str();
      arc.riseDelay = takeLut(cursor, grids);
      arc.fallDelay = takeLut(cursor, grids);
      arc.riseTransition = takeLut(cursor, grids);
      arc.fallTransition = takeLut(cursor, grids);
      cell.addArc(std::move(arc));
    }
    library.addCell(std::move(cell));
  }
  if (!grids.exhausted()) throw FormatError("trailing grid data");
  return library;
}

// ---------------------------------------------------------- stat library --

namespace {

void appendStatLut(std::vector<double>& grids, const statlib::StatLut& lut) {
  grids.insert(grids.end(), lut.slewAxis().begin(), lut.slewAxis().end());
  grids.insert(grids.end(), lut.loadAxis().begin(), lut.loadAxis().end());
  const std::span<const double> mean = lut.mean().flat();
  grids.insert(grids.end(), mean.begin(), mean.end());
  const std::span<const double> sigma = lut.sigma().flat();
  grids.insert(grids.end(), sigma.begin(), sigma.end());
}

statlib::StatLut takeStatLut(SctbReader::Cursor& cursor, GridCursor& grids) {
  const std::uint32_t rows = cursor.u32();
  const std::uint32_t cols = cursor.u32();
  // Sequenced statements: argument evaluation order would be unspecified.
  numeric::Axis slew = grids.axis(rows);
  numeric::Axis load = grids.axis(cols);
  statlib::StatLut lut(std::move(slew), std::move(load));
  lut.mean() = grids.grid(rows, cols);
  lut.sigma() = grids.grid(rows, cols);
  return lut;
}

}  // namespace

void encodeStatLibrary(SctbWriter& writer,
                       const statlib::StatLibrary& library) {
  std::vector<double> grids;

  writer.beginSection("stat.meta");
  writer.str(library.name());
  writer.u64(library.sampleCount());

  writer.beginSection("stat.cells");
  const std::vector<const statlib::StatCell*> cells = library.cells();
  writer.u64(cells.size());
  for (const statlib::StatCell* cell : cells) {
    writer.str(cell->name());
    writer.u32(static_cast<std::uint32_t>(cell->function()));
    writer.f64(cell->driveStrength());
    writer.f64(cell->area());
    writer.u64(cell->arcs().size());
    for (const statlib::StatArc& arc : cell->arcs()) {
      writer.str(arc.relatedPin);
      writer.str(arc.outputPin);
      for (const statlib::StatLut* lut : {&arc.rise, &arc.fall}) {
        writer.u32(static_cast<std::uint32_t>(lut->rows()));
        writer.u32(static_cast<std::uint32_t>(lut->cols()));
        appendStatLut(grids, *lut);
      }
    }
  }

  writer.beginSection("stat.grids");
  writer.f64span(grids);
}

statlib::StatLibrary decodeStatLibrary(const SctbReader& reader) {
  SctbReader::Cursor meta = reader.section("stat.meta");
  statlib::StatLibrary library(meta.str());
  library.setSampleCount(meta.u64());

  SctbReader::Cursor cursor = reader.section("stat.cells");
  GridCursor grids(reader.section("stat.grids").f64span());
  const std::uint64_t cellCount = cursor.u64();
  for (std::uint64_t i = 0; i < cellCount; ++i) {
    const std::string cellName = cursor.str();
    const liberty::CellFunction function = takeFunction(cursor);
    const double strength = cursor.f64();
    const double area = cursor.f64();
    statlib::StatCell cell(cellName, function, strength, area);
    const std::uint64_t arcCount = cursor.u64();
    for (std::uint64_t a = 0; a < arcCount; ++a) {
      statlib::StatArc arc;
      arc.relatedPin = cursor.str();
      arc.outputPin = cursor.str();
      arc.rise = takeStatLut(cursor, grids);
      arc.fall = takeStatLut(cursor, grids);
      cell.addArc(std::move(arc));
    }
    library.addCell(std::move(cell));
  }
  if (!grids.exhausted()) throw FormatError("trailing grid data");
  return library;
}

// ------------------------------------------------------------ constraints --

void encodeConstraints(SctbWriter& writer,
                       const tuning::LibraryConstraints& constraints) {
  writer.beginSection("cons.cells");
  writer.u64(constraints.cells().size());
  for (const auto& [cellName, constraint] : constraints.cells()) {
    writer.str(cellName);
    writer.f64(constraint.sigmaThreshold);
    writer.u64(constraint.pinWindows.size());
    for (const auto& [pinName, window] : constraint.pinWindows) {
      writer.str(pinName);
      writer.f64(window.minSlew);
      writer.f64(window.maxSlew);
      writer.f64(window.minLoad);
      writer.f64(window.maxLoad);
    }
  }
}

tuning::LibraryConstraints decodeConstraints(const SctbReader& reader) {
  SctbReader::Cursor cursor = reader.section("cons.cells");
  tuning::LibraryConstraints constraints;
  const std::uint64_t cellCount = cursor.u64();
  for (std::uint64_t i = 0; i < cellCount; ++i) {
    const std::string cellName = cursor.str();
    tuning::CellConstraint constraint;
    constraint.sigmaThreshold = cursor.f64();
    const std::uint64_t pinCount = cursor.u64();
    for (std::uint64_t p = 0; p < pinCount; ++p) {
      const std::string pinName = cursor.str();
      tuning::PinWindow window;
      window.minSlew = cursor.f64();
      window.maxSlew = cursor.f64();
      window.minLoad = cursor.f64();
      window.maxLoad = cursor.f64();
      constraint.pinWindows.emplace(pinName, window);
    }
    constraints.setCell(cellName, std::move(constraint));
  }
  return constraints;
}

// ---------------------------------------------------------------- design --

void encodeDesign(SctbWriter& writer, const netlist::Design& design) {
  writer.beginSection("net.meta");
  writer.str(design.name());
  writer.u64(design.nameCounter());
  writer.u64(design.netCount());
  writer.u64(design.instanceCount());
  writer.u64(design.ports().size());

  writer.beginSection("net.nets");
  for (const netlist::Net& net : design.nets()) {
    writer.str(net.name);
    writer.u32(net.driver);
    writer.u32(net.driverSlot);
    writer.u64(net.sinks.size());
    for (const netlist::SinkRef& sink : net.sinks) {
      writer.u32(sink.instance);
      writer.u32(sink.inputSlot);
    }
    writer.boolean(net.isPrimaryOutput);
  }

  writer.beginSection("net.insts");
  for (const netlist::Instance& inst : design.instances()) {
    writer.str(inst.name);
    writer.u8(static_cast<std::uint8_t>(inst.op));
    writer.str(inst.cell != nullptr ? inst.cell->name() : std::string());
    writer.u64(inst.inputs.size());
    for (netlist::NetIndex net : inst.inputs) writer.u32(net);
    writer.u64(inst.outputs.size());
    for (netlist::NetIndex net : inst.outputs) writer.u32(net);
    writer.boolean(inst.alive);
  }

  writer.beginSection("net.ports");
  for (const netlist::Port& port : design.ports()) {
    writer.str(port.name);
    writer.u8(port.direction == netlist::PortDirection::kOutput ? 1 : 0);
    writer.u32(port.net);
  }
}

netlist::Design decodeDesign(const SctbReader& reader,
                             const liberty::Library* library) {
  SctbReader::Cursor meta = reader.section("net.meta");
  netlist::Design design(meta.str());
  const std::uint64_t nameCounter = meta.u64();
  const std::uint64_t netCount = meta.u64();
  const std::uint64_t instCount = meta.u64();
  const std::uint64_t portCount = meta.u64();

  SctbReader::Cursor nets = reader.section("net.nets");
  for (std::uint64_t i = 0; i < netCount; ++i) {
    const netlist::NetIndex index = design.addNet(nets.str());
    netlist::Net& net = design.net(index);
    net.driver = nets.u32();
    net.driverSlot = nets.u32();
    const std::uint64_t sinkCount = nets.u64();
    net.sinks.reserve(sinkCount);
    for (std::uint64_t s = 0; s < sinkCount; ++s) {
      netlist::SinkRef sink;
      sink.instance = nets.u32();
      sink.inputSlot = nets.u32();
      net.sinks.push_back(sink);
    }
    net.isPrimaryOutput = nets.boolean();
  }

  SctbReader::Cursor insts = reader.section("net.insts");
  for (std::uint64_t i = 0; i < instCount; ++i) {
    netlist::Instance inst;
    inst.name = insts.str();
    const std::uint8_t rawOp = insts.u8();
    if (rawOp > static_cast<std::uint8_t>(netlist::PrimOp::kDffE)) {
      throw FormatError("primitive op out of range");
    }
    inst.op = static_cast<netlist::PrimOp>(rawOp);
    const std::string cellName = insts.str();
    if (!cellName.empty()) {
      if (library == nullptr) {
        throw FormatError("mapped design needs a library to rebind '" +
                          cellName + "'");
      }
      inst.cell = library->findCell(cellName);
      if (inst.cell == nullptr) {
        throw FormatError("cell '" + cellName + "' not in library '" +
                          library->name() + "'");
      }
    }
    const std::uint64_t inCount = insts.u64();
    inst.inputs.reserve(inCount);
    for (std::uint64_t s = 0; s < inCount; ++s) inst.inputs.push_back(insts.u32());
    const std::uint64_t outCount = insts.u64();
    inst.outputs.reserve(outCount);
    for (std::uint64_t s = 0; s < outCount; ++s) {
      inst.outputs.push_back(insts.u32());
    }
    inst.alive = insts.boolean();
    design.addInstanceRaw(std::move(inst));
  }

  SctbReader::Cursor ports = reader.section("net.ports");
  for (std::uint64_t i = 0; i < portCount; ++i) {
    const std::string portName = ports.str();
    const netlist::PortDirection direction =
        ports.u8() != 0 ? netlist::PortDirection::kOutput
                        : netlist::PortDirection::kInput;
    const netlist::NetIndex net = ports.u32();
    if (net >= design.netCount()) throw FormatError("port net out of range");
    design.addPort(portName, direction, net);
  }

  design.setNameCounter(nameCounter);
  const std::string problem = design.validate();
  if (!problem.empty()) throw FormatError("decoded design invalid: " + problem);
  return design;
}

// ------------------------------------------------------- synthesis result --

void encodeSynthesisResult(SctbWriter& writer,
                           const synth::SynthesisResult& result) {
  writer.beginSection("synth.meta");
  writer.boolean(result.timingMet);
  writer.boolean(result.legal);
  writer.f64(result.worstSlack);
  writer.f64(result.tns);
  writer.f64(result.area);
  writer.u64(result.passes);
  writer.u64(result.buffersInserted);
  writer.u64(result.decomposed);
  writer.u64(result.patternRewrites);
  writer.u64(result.resizes);
  writer.u64(result.violations);
  encodeDesign(writer, result.design);
}

synth::SynthesisResult decodeSynthesisResult(const SctbReader& reader,
                                             const liberty::Library* library) {
  SctbReader::Cursor meta = reader.section("synth.meta");
  synth::SynthesisResult result;
  result.timingMet = meta.boolean();
  result.legal = meta.boolean();
  result.worstSlack = meta.f64();
  result.tns = meta.f64();
  result.area = meta.f64();
  result.passes = meta.u64();
  result.buffersInserted = meta.u64();
  result.decomposed = meta.u64();
  result.patternRewrites = meta.u64();
  result.resizes = meta.u64();
  result.violations = meta.u64();
  result.design = decodeDesign(reader, library);
  return result;
}

// ----------------------------------------------------------- lint report --

void encodeLintReport(SctbWriter& writer, const lint::LintReport& report) {
  writer.beginSection("lintreport");
  writer.u64(report.size());
  for (const lint::Diagnostic& d : report.diagnostics()) {
    writer.str(d.ruleId);
    writer.u8(static_cast<std::uint8_t>(d.severity));
    writer.str(d.objectPath);
    writer.str(d.message);
  }
}

lint::LintReport decodeLintReport(const SctbReader& reader) {
  SctbReader::Cursor cursor = reader.section("lintreport");
  const std::uint64_t count = cursor.u64();
  lint::LintReport report;
  for (std::uint64_t i = 0; i < count; ++i) {
    lint::Diagnostic d;
    d.ruleId = cursor.str();
    const std::uint8_t severity = cursor.u8();
    if (severity > 2) throw FormatError("lint severity out of range");
    d.severity = static_cast<lint::Severity>(severity);
    d.objectPath = cursor.str();
    d.message = cursor.str();
    report.add(std::move(d));
  }
  return report;
}

}  // namespace sct::artifact
