#pragma once
// Canonical content hashing for the artifact store. Stage artifacts are
// addressed by a digest of their *inputs* (library/process configuration,
// seeds, tuning parameters, schema version), so a cache entry can never be
// served for inputs that differ in any bit. The hash is a 128-bit FNV-1a
// over an explicitly little-endian byte encoding: digests are stable across
// runs, processes and machines, which is what makes the on-disk store
// shareable.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace sct::artifact {

/// 128-bit content digest, printed as 32 lowercase hex characters.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] std::string hex() const;
  /// Parses a 32-char hex digest (the store's file stem); nullopt when
  /// malformed.
  [[nodiscard]] static std::optional<Digest> fromHex(std::string_view text);

  friend bool operator==(const Digest&, const Digest&) = default;
};

/// Hash functor for unordered containers keyed by Digest (the in-memory
/// cache tier, single-flight tables). The digest is already uniform, so
/// mixing the halves is enough.
struct DigestHash {
  [[nodiscard]] std::size_t operator()(const Digest& d) const noexcept {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental FNV-1a/128 hasher with typed, length-prefixed feeders so
/// adjacent fields can never alias each other ("ab"+"c" != "a"+"bc").
class Hasher {
 public:
  Hasher& bytes(std::span<const std::byte> data) noexcept;
  Hasher& u8(std::uint8_t v) noexcept;
  Hasher& u32(std::uint32_t v) noexcept;
  Hasher& u64(std::uint64_t v) noexcept;
  /// Exact bit pattern of the double (canonical: -0.0 and NaN payloads are
  /// preserved, two values hash equal iff they are bit-identical).
  Hasher& f64(double v) noexcept;
  Hasher& str(std::string_view s) noexcept;  ///< length-prefixed
  Hasher& f64span(std::span<const double> values) noexcept;  ///< length-prefixed

  [[nodiscard]] Digest digest() const noexcept;

 private:
  unsigned __int128 state_ = kOffsetBasis;

  // FNV-1a 128-bit parameters.
  static constexpr unsigned __int128 kOffsetBasis =
      (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
      0x62b821756295c58dULL;
  static constexpr unsigned __int128 kPrime =
      (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) | 0x13bULL;
};

/// One-shot convenience: 64-bit FNV-1a over a byte range (the per-section
/// checksum of the SCTB container).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;

}  // namespace sct::artifact
