#pragma once
// Bounded in-memory artifact tier in front of the on-disk ArtifactStore
// (DESIGN.md §14). Entries are validated SCTB containers held as shared,
// immutable readers keyed by the same 128-bit stage digests the disk store
// uses, evicted least-recently-used by payload bytes. A hit hands back the
// shared reader — zero disk I/O, zero checksum re-validation — and the
// caller decodes from it exactly as it would from a disk load, so memory
// hits are byte-identical to disk hits by construction.
//
// Thread-safe: the daemon shares one instance across every concurrent
// session; the single-shot CLI flow keeps a private one per invocation so
// repeated stage probes (tune for the report digest, lint gates, sweeps)
// skip the disk decode.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "artifact/binary_format.hpp"
#include "artifact/hash.hpp"

namespace sct::artifact {

/// Lifetime counters of one cache (also mirrored into the obs metrics
/// registry as memcache.{hits,misses,insertions,evictions}).
struct MemCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::uint64_t bytes = 0;     ///< resident payload bytes
  std::uint64_t capacity = 0;  ///< configured bound
  std::size_t entries = 0;
};

class MemoryArtifactCache {
 public:
  /// `maxBytes` bounds the resident payload total; an artifact larger than
  /// the whole bound is served but never retained.
  explicit MemoryArtifactCache(std::uint64_t maxBytes);

  /// Shared reader on a hit (refreshes LRU recency); nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const SctbReader> get(const Digest& key);

  /// Inserts or refreshes an entry, evicting least-recently-used entries
  /// until the byte bound holds again. Null readers are ignored.
  void put(const Digest& key, std::shared_ptr<const SctbReader> reader);

  /// Drops one entry if present (used when a decode proves an entry
  /// semantically unusable, mirroring the disk store's corrupt eviction).
  void erase(const Digest& key);

  [[nodiscard]] MemCacheStats stats() const;

 private:
  struct Entry {
    Digest key;
    std::shared_ptr<const SctbReader> reader;
    std::uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void evictUntilFitsLocked();

  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<Digest, LruList::iterator, DigestHash> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t max_bytes_;
  MemCacheStats stats_;
};

}  // namespace sct::artifact
