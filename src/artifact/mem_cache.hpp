#pragma once
// Bounded in-memory artifact tier in front of the on-disk ArtifactStore
// (DESIGN.md §14). Entries are validated SCTB containers held as shared,
// immutable readers keyed by the same 128-bit stage digests the disk store
// uses, evicted least-recently-used by payload bytes. A hit hands back the
// shared reader — zero disk I/O, zero checksum re-validation — and the
// caller decodes from it exactly as it would from a disk load, so memory
// hits are byte-identical to disk hits by construction.
//
// Thread-safe: the daemon shares one instance across every concurrent
// session; the single-shot CLI flow keeps a private one per invocation so
// repeated stage probes (tune for the report digest, lint gates, sweeps)
// skip the disk decode.

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "artifact/binary_format.hpp"
#include "artifact/hash.hpp"
#include "core/sync.hpp"

namespace sct::artifact {

/// Lifetime counters of one cache (also mirrored into the obs metrics
/// registry as memcache.{hits,misses,insertions,evictions}).
struct MemCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::uint64_t bytes = 0;     ///< resident payload bytes
  std::uint64_t capacity = 0;  ///< configured bound
  std::size_t entries = 0;
};

class MemoryArtifactCache {
 public:
  /// `maxBytes` bounds the resident payload total; an artifact larger than
  /// the whole bound is served but never retained.
  explicit MemoryArtifactCache(std::uint64_t maxBytes);

  /// Shared reader on a hit (refreshes LRU recency); nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const SctbReader> get(const Digest& key)
      SCT_EXCLUDES(mutex_);

  /// Inserts or refreshes an entry, evicting least-recently-used entries
  /// until the byte bound holds again. Null readers are ignored.
  void put(const Digest& key, std::shared_ptr<const SctbReader> reader)
      SCT_EXCLUDES(mutex_);

  /// Drops one entry if present (used when a decode proves an entry
  /// semantically unusable, mirroring the disk store's corrupt eviction).
  void erase(const Digest& key) SCT_EXCLUDES(mutex_);

  [[nodiscard]] MemCacheStats stats() const SCT_EXCLUDES(mutex_);

 private:
  struct Entry {
    Digest key;
    std::shared_ptr<const SctbReader> reader;
    std::uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void evictUntilFitsLocked() SCT_REQUIRES(mutex_);

  // One leaf mutex guards the whole cache: LRU order, index, byte total and
  // stats move together, and the obs registry mutex acquired by the metric
  // mirrors is itself a leaf (DESIGN.md §16 lock ordering).
  mutable Mutex mutex_;
  LruList lru_ SCT_GUARDED_BY(mutex_);  ///< front = most recently used
  /// Lookup-only unordered index (never iterated for output; dumps go
  /// through the LRU list order).
  std::unordered_map<Digest, LruList::iterator, DigestHash> index_
      SCT_GUARDED_BY(mutex_);
  std::uint64_t bytes_ SCT_GUARDED_BY(mutex_) = 0;
  std::uint64_t max_bytes_;  ///< immutable after construction
  MemCacheStats stats_ SCT_GUARDED_BY(mutex_);
};

}  // namespace sct::artifact
