#pragma once
// SCTB codecs for the flow's stage artifacts: characterized libraries,
// statistical libraries, tuned constraint sets, and synthesized netlists
// (plus the synthesis-result wrapper the flow caches). Encoders are
// verbatim: every field that can influence downstream results — including
// net sink *order* and dead instances, which steer STA tie-breaking — is
// preserved bit-for-bit, so a warm-loaded artifact behaves identically to
// the freshly computed object. All LUT/axis payloads live in one aligned
// f64 block per artifact for bulk loading.

#include "artifact/binary_format.hpp"
#include "liberty/library.hpp"
#include "lint/diagnostic.hpp"
#include "netlist/netlist.hpp"
#include "statlib/stat_library.hpp"
#include "synth/synthesis.hpp"
#include "tuning/restriction.hpp"

namespace sct::artifact {

void encodeLibrary(SctbWriter& writer, const liberty::Library& library);
[[nodiscard]] liberty::Library decodeLibrary(const SctbReader& reader);

void encodeStatLibrary(SctbWriter& writer, const statlib::StatLibrary& library);
[[nodiscard]] statlib::StatLibrary decodeStatLibrary(const SctbReader& reader);

void encodeConstraints(SctbWriter& writer,
                       const tuning::LibraryConstraints& constraints);
[[nodiscard]] tuning::LibraryConstraints decodeConstraints(
    const SctbReader& reader);

/// Mapped instances are stored by cell *name*; decode rebinds them against
/// `library` (may be null for technology-independent designs). A name that
/// does not resolve, or a decoded design failing Design::validate(), raises
/// FormatError.
void encodeDesign(SctbWriter& writer, const netlist::Design& design);
[[nodiscard]] netlist::Design decodeDesign(const SctbReader& reader,
                                           const liberty::Library* library);

void encodeSynthesisResult(SctbWriter& writer,
                           const synth::SynthesisResult& result);
[[nodiscard]] synth::SynthesisResult decodeSynthesisResult(
    const SctbReader& reader, const liberty::Library* library);

/// Lint reports are cached keyed by subject digest + rule-pack version, so
/// warm flows skip re-linting unchanged stage inputs (DESIGN.md §11).
void encodeLintReport(SctbWriter& writer, const lint::LintReport& report);
[[nodiscard]] lint::LintReport decodeLintReport(const SctbReader& reader);

}  // namespace sct::artifact
