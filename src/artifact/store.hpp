#pragma once
// Content-addressed on-disk artifact store. Entries are SCTB containers
// named by the digest of their stage *inputs* (root/ab/<digest>.sctb, the
// two-char fan-out keeps directories small). Publication is atomic
// (temp-file-then-rename), so concurrent producers and readers only ever
// observe absent or complete entries; a corrupt or truncated entry is
// detected by the SCTB checksums, evicted, and reported as a miss — the
// flow then recomputes, it never returns wrong data.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "artifact/binary_format.hpp"
#include "artifact/hash.hpp"

namespace sct::artifact {

/// Counters of one store's lifetime (per process; persisted nowhere).
/// Relaxed atomics: a store may be shared by many daemon sessions, and the
/// counters are monotone tallies with no cross-field invariant to keep.
struct StoreStats {
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
  std::atomic<std::size_t> corrupt{0};  ///< evicted after failing validation
  std::atomic<std::size_t> stores{0};   ///< successful publish() calls
  std::atomic<std::uint64_t> bytesRead{0};
  std::atomic<std::uint64_t> bytesWritten{0};
};

/// Eviction policy for gc(): 0 means "no bound" for either field.
struct GcPolicy {
  std::uint64_t maxBytes = 0;     ///< keep newest entries under this total
  std::uint64_t maxAgeSeconds = 0;  ///< drop entries older than this
};

struct GcResult {
  std::size_t filesRemoved = 0;
  std::size_t filesKept = 0;
  std::uint64_t bytesRemoved = 0;
  std::uint64_t bytesKept = 0;
  /// Entries the sweep re-checked and spared because their mtime advanced
  /// past the scan snapshot (a concurrent reader/publisher touched them).
  std::size_t filesSpared = 0;
  /// True when another gc held the cross-process lock: nothing was scanned
  /// or removed; the caller may retry later.
  bool lockBusy = false;
};

class ArtifactStore {
 public:
  /// Creates the root directory when absent; throws std::runtime_error
  /// when the path exists but is not a directory or cannot be created.
  explicit ArtifactStore(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }
  [[nodiscard]] std::filesystem::path pathFor(const Digest& key) const;

  /// Validated reader for a cached entry; nullopt on miss. A file that
  /// fails validation is removed and counted as corrupt (also a miss).
  /// Hits refresh the entry's mtime, which gc() uses as its LRU clock.
  [[nodiscard]] std::optional<SctbReader> open(const Digest& key);

  /// Atomically publishes a finished artifact under its key. Overwrites any
  /// existing entry (same key => same contents by construction).
  void publish(const Digest& key, const SctbWriter& writer);
  /// Same, from already-serialized container bytes (avoids re-serializing
  /// when the caller also feeds the in-memory tier).
  void publishBytes(const Digest& key, std::span<const std::byte> bytes);

  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }

  /// Number of entries and total payload bytes currently on disk.
  [[nodiscard]] std::pair<std::size_t, std::uint64_t> diskUsage() const;

  /// Evicts entries per policy: age bound first, then oldest-first until
  /// the byte bound holds. Safe against concurrent readers and publishers
  /// sharing the cache directory (daemon + CLI): a lock file under the
  /// root serializes whole gc runs across processes (a busy lock returns
  /// immediately with lockBusy set), and each candidate is re-checked
  /// immediately before removal — an entry whose mtime advanced past the
  /// scan snapshot was touched by a concurrent open()/publish() and is
  /// spared instead of evicted. `betweenScanAndSweep` is a test seam that
  /// runs after the scan snapshot and before the sweep; production callers
  /// leave it null.
  GcResult gc(const GcPolicy& policy,
              const std::function<void()>& betweenScanAndSweep = {});

 private:
  // Thread-safety (DESIGN.md §16): the store holds no in-process locks.
  // Shared mutable state is either atomic (stats_, temp_counter_) or lives
  // in the filesystem, where atomic rename gives publication ordering and
  // gc()'s cross-process flock + per-file mtime epoch re-check replace a
  // mutex — Clang's thread-safety analysis cannot model either, so the
  // invariants here are covered by store_concurrency_test under TSan and
  // the daemon-smoke CI job instead of annotations.
  std::filesystem::path root_;  ///< immutable after construction
  StoreStats stats_;            ///< relaxed atomics, no cross-field invariant
  std::atomic<std::uint64_t> temp_counter_{0};  ///< unique temp-file suffix
};

}  // namespace sct::artifact
