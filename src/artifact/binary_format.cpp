#include "artifact/binary_format.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "artifact/hash.hpp"

namespace sct::artifact {
namespace {

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kTableEntryBytes = kSectionNameBytes + 8 + 8 + 8;

void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

std::uint32_t getU32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | std::to_integer<std::uint32_t>(p[i]);
  return v;
}

std::uint64_t getU64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | std::to_integer<std::uint64_t>(p[i]);
  return v;
}

}  // namespace

// ---------------------------------------------------------------- writer --

SctbWriter::Section& SctbWriter::current() {
  if (sections_.empty()) {
    throw FormatError("write before beginSection()");
  }
  return sections_.back();
}

void SctbWriter::beginSection(std::string_view name) {
  if (name.empty() || name.size() > kSectionNameBytes) {
    throw FormatError("section name '" + std::string(name) +
                      "' must be 1..16 bytes");
  }
  for (const Section& s : sections_) {
    if (s.name == name) {
      throw FormatError("duplicate section '" + std::string(name) + "'");
    }
  }
  sections_.push_back(Section{std::string(name), {}});
}

void SctbWriter::u8(std::uint8_t v) { current().data.push_back(std::byte{v}); }

void SctbWriter::u32(std::uint32_t v) { putU32(current().data, v); }

void SctbWriter::u64(std::uint64_t v) { putU64(current().data, v); }

void SctbWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SctbWriter::str(std::string_view s) {
  Section& section = current();
  putU64(section.data, s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  section.data.insert(section.data.end(), p, p + s.size());
}

void SctbWriter::align8() {
  Section& section = current();
  while (section.data.size() % 8 != 0) section.data.push_back(std::byte{0});
}

void SctbWriter::f64span(std::span<const double> values) {
  u64(values.size());
  align8();
  Section& section = current();
  const auto* p = reinterpret_cast<const std::byte*>(values.data());
  section.data.insert(section.data.end(), p, p + values.size() * sizeof(double));
}

std::vector<std::byte> SctbWriter::finish() const {
  const std::size_t tableBytes = sections_.size() * kTableEntryBytes;
  // Header and table entry sizes are multiples of 8, so the first payload
  // is naturally aligned; later payloads are padded up to the boundary.
  std::size_t offset = kHeaderBytes + tableBytes;
  std::vector<std::size_t> offsets;
  offsets.reserve(sections_.size());
  for (const Section& s : sections_) {
    offset = (offset + 7) & ~std::size_t{7};
    offsets.push_back(offset);
    offset += s.data.size();
  }

  std::vector<std::byte> out;
  out.reserve(offset);
  const auto* magic = reinterpret_cast<const std::byte*>(kMagic);
  out.insert(out.end(), magic, magic + 4);
  putU32(out, schema_version_);
  putU32(out, static_cast<std::uint32_t>(sections_.size()));
  putU32(out, 0);  // reserved
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    for (std::size_t c = 0; c < kSectionNameBytes; ++c) {
      out.push_back(c < s.name.size() ? std::byte(s.name[c]) : std::byte{0});
    }
    putU64(out, offsets[i]);
    putU64(out, s.data.size());
    putU64(out, fnv1a64(s.data));
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    out.resize(offsets[i], std::byte{0});  // alignment padding
    out.insert(out.end(), sections_[i].data.begin(), sections_[i].data.end());
  }
  return out;
}

// ---------------------------------------------------------------- reader --

SctbReader SctbReader::fromBytes(std::span<const std::byte> bytes) {
  SctbReader reader;
  reader.buffer_.resize((bytes.size() + 7) / 8, 0.0);
  std::memcpy(reader.buffer_.data(), bytes.data(), bytes.size());
  reader.size_ = bytes.size();
  reader.parse();
  return reader;
}

SctbReader SctbReader::fromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw FormatError("cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long tell = std::ftell(file);
  if (tell < 0) {
    std::fclose(file);
    throw FormatError("cannot size " + path);
  }
  const auto size = static_cast<std::size_t>(tell);
  std::rewind(file);

  SctbReader reader;
  reader.buffer_.resize((size + 7) / 8, 0.0);
  // The whole artifact in one read: the warm-start path does no per-entry
  // parsing at all.
  const std::size_t got = std::fread(reader.buffer_.data(), 1, size, file);
  std::fclose(file);
  if (got != size) throw FormatError("short read on " + path);
  reader.size_ = size;
  reader.parse();
  return reader;
}

void SctbReader::parse() {
  if (size_ < kHeaderBytes) throw FormatError("file shorter than header");
  if (std::memcmp(data(), kMagic, 4) != 0) throw FormatError("bad magic");
  schema_version_ = getU32(data() + 4);
  if (schema_version_ != kSchemaVersion) {
    throw FormatError("schema version " + std::to_string(schema_version_) +
                      " != expected " + std::to_string(kSchemaVersion));
  }
  const std::uint32_t count = getU32(data() + 8);
  const std::size_t tableEnd = kHeaderBytes + count * kTableEntryBytes;
  if (tableEnd > size_) throw FormatError("truncated section table");

  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::byte* entry = data() + kHeaderBytes + i * kTableEntryBytes;
    SectionEntry section;
    std::size_t nameLen = 0;
    while (nameLen < kSectionNameBytes &&
           entry[nameLen] != std::byte{0}) {
      ++nameLen;
    }
    section.name.assign(reinterpret_cast<const char*>(entry), nameLen);
    section.offset = getU64(entry + kSectionNameBytes);
    section.size = getU64(entry + kSectionNameBytes + 8);
    const std::uint64_t checksum = getU64(entry + kSectionNameBytes + 16);
    if (section.offset < tableEnd || section.offset > size_ ||
        section.size > size_ - section.offset) {
      throw FormatError("section '" + section.name + "' out of bounds");
    }
    const std::uint64_t actual =
        fnv1a64({data() + section.offset, section.size});
    if (actual != checksum) {
      throw FormatError("section '" + section.name + "' checksum mismatch");
    }
    sections_.push_back(std::move(section));
  }
}

bool SctbReader::hasSection(std::string_view name) const noexcept {
  for (const SectionEntry& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

SctbReader::Cursor SctbReader::section(std::string_view name) const {
  for (const SectionEntry& s : sections_) {
    if (s.name == name) return Cursor(this, s.offset, s.offset + s.size);
  }
  throw FormatError("missing section '" + std::string(name) + "'");
}

// ---------------------------------------------------------------- cursor --

const std::byte* SctbReader::Cursor::raw() const noexcept {
  return reader_->data() + pos_;
}

void SctbReader::Cursor::need(std::size_t n) const {
  if (end_ - pos_ < n) throw FormatError("read past end of section");
}

std::uint8_t SctbReader::Cursor::u8() {
  need(1);
  const auto v = std::to_integer<std::uint8_t>(*raw());
  ++pos_;
  return v;
}

std::uint32_t SctbReader::Cursor::u32() {
  need(4);
  const std::uint32_t v = getU32(raw());
  pos_ += 4;
  return v;
}

std::uint64_t SctbReader::Cursor::u64() {
  need(8);
  const std::uint64_t v = getU64(raw());
  pos_ += 8;
  return v;
}

double SctbReader::Cursor::f64() { return std::bit_cast<double>(u64()); }

std::string SctbReader::Cursor::str() {
  const std::uint64_t len = u64();
  need(len);
  std::string s(reinterpret_cast<const char*>(raw()), len);
  pos_ += len;
  return s;
}

void SctbReader::Cursor::align8() {
  while (pos_ % 8 != 0) {
    need(1);
    ++pos_;
  }
}

std::span<const double> SctbReader::Cursor::f64span() {
  const std::uint64_t count = u64();
  align8();
  need(count * sizeof(double));
  // pos_ is 8-byte aligned and the backing storage is an array of doubles,
  // so this view aliases real double objects: genuinely zero-copy.
  const auto* p = reinterpret_cast<const double*>(raw());
  pos_ += count * sizeof(double);
  return {p, count};
}

void SctbReader::Cursor::readDoubles(std::span<double> out) {
  const std::span<const double> view = f64span();
  if (view.size() != out.size()) {
    throw FormatError("double block size mismatch");
  }
  std::memcpy(out.data(), view.data(), view.size() * sizeof(double));
}

}  // namespace sct::artifact
