#include "artifact/store.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifdef _WIN32
#include <process.h>
#define SCT_GETPID _getpid
#else
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define SCT_GETPID getpid
#define SCT_HAVE_FLOCK 1
#endif

namespace sct::artifact {
namespace fs = std::filesystem;

namespace {

bool isEntryFile(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".sctb" &&
         Digest::fromHex(entry.path().stem().string()).has_value();
}

/// Process-wide mirror of the per-store StoreStats (DESIGN.md §12): the
/// metrics snapshot aggregates over every store the process opened.
struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& corrupt;
  obs::Counter& stores;
  obs::Counter& bytesRead;
  obs::Counter& bytesWritten;
  obs::Counter& gcFilesEvicted;
  obs::Counter& gcBytesEvicted;

  static StoreMetrics& get() {
    static StoreMetrics instance{
        obs::MetricsRegistry::global().counter("artifact.hits"),
        obs::MetricsRegistry::global().counter("artifact.misses"),
        obs::MetricsRegistry::global().counter("artifact.corrupt"),
        obs::MetricsRegistry::global().counter("artifact.stores"),
        obs::MetricsRegistry::global().counter("artifact.bytes_read"),
        obs::MetricsRegistry::global().counter("artifact.bytes_written"),
        obs::MetricsRegistry::global().counter("artifact.gc.files_evicted"),
        obs::MetricsRegistry::global().counter("artifact.gc.bytes_evicted")};
    return instance;
  }
};

/// Cross-process gc serialization: an advisory exclusive lock on a file
/// under the store root. Destruction releases; `held()` is false when
/// another process already holds it (the gc run backs off) or the platform
/// has no flock (single-process semantics are then the caller's problem).
class GcLock {
 public:
  explicit GcLock(const fs::path& root) {
#ifdef SCT_HAVE_FLOCK
    const fs::path path = root / ".gc.lock";
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
      held_ = true;
    } else {
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)root;
    held_ = true;
#endif
  }
  GcLock(const GcLock&) = delete;
  GcLock& operator=(const GcLock&) = delete;
  ~GcLock() {
#ifdef SCT_HAVE_FLOCK
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
#endif
  }
  [[nodiscard]] bool held() const noexcept { return held_; }

 private:
  int fd_ = -1;
  bool held_ = false;
};

}  // namespace

ArtifactStore::ArtifactStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw std::runtime_error("artifact store: cannot use directory '" +
                             root_.string() + "'");
  }
}

fs::path ArtifactStore::pathFor(const Digest& key) const {
  const std::string hex = key.hex();
  return root_ / hex.substr(0, 2) / (hex + ".sctb");
}

std::optional<SctbReader> ArtifactStore::open(const Digest& key) {
  SCT_TRACE_SPAN("artifact.open");
  const fs::path path = pathFor(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    ++stats_.misses;
    StoreMetrics::get().misses.inc();
    return std::nullopt;
  }
  try {
    SctbReader reader = SctbReader::fromFile(path.string());
    ++stats_.hits;
    stats_.bytesRead += reader.fileSize();
    StoreMetrics::get().hits.inc();
    StoreMetrics::get().bytesRead.add(reader.fileSize());
    // LRU clock for gc(): a hit makes the entry "recently used".
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return reader;
  } catch (const FormatError&) {
    // A file that vanished between the existence probe and the read (a
    // concurrent gc evicted it) is a plain miss, not corruption.
    if (!fs::exists(path, ec) || ec) {
      ++stats_.misses;
      StoreMetrics::get().misses.inc();
      return std::nullopt;
    }
    // Cannot trust the entry: evict it and fall back to recompute.
    fs::remove(path, ec);
    ++stats_.corrupt;
    ++stats_.misses;
    StoreMetrics::get().corrupt.inc();
    StoreMetrics::get().misses.inc();
    return std::nullopt;
  }
}

void ArtifactStore::publish(const Digest& key, const SctbWriter& writer) {
  const std::vector<std::byte> bytes = writer.finish();
  publishBytes(key, bytes);
}

void ArtifactStore::publishBytes(const Digest& key,
                                 std::span<const std::byte> bytes) {
  SCT_TRACE_SPAN("artifact.publish");
  const fs::path path = pathFor(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw std::runtime_error("artifact store: cannot create '" +
                             path.parent_path().string() + "'");
  }
  const fs::path temp =
      path.parent_path() /
      (".tmp-" + std::to_string(SCT_GETPID()) + "-" +
       std::to_string(temp_counter_++) + ".sctb");
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("artifact store: cannot write '" +
                               temp.string() + "'");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("artifact store: short write on '" +
                               temp.string() + "'");
    }
  }
  // rename() within one directory is atomic: readers see the old entry,
  // no entry, or the complete new entry — never a partial file.
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    throw std::runtime_error("artifact store: cannot publish '" +
                             path.string() + "'");
  }
  ++stats_.stores;
  stats_.bytesWritten += bytes.size();
  StoreMetrics::get().stores.inc();
  StoreMetrics::get().bytesWritten.add(bytes.size());
}

std::pair<std::size_t, std::uint64_t> ArtifactStore::diskUsage() const {
  std::size_t files = 0;
  std::uint64_t bytes = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (isEntryFile(*it)) {
      ++files;
      bytes += it->file_size(ec);
    }
  }
  return {files, bytes};
}

GcResult ArtifactStore::gc(const GcPolicy& policy,
                           const std::function<void()>& betweenScanAndSweep) {
  SCT_TRACE_SPAN("artifact.gc");
  GcResult result;
  // One gc at a time per cache directory: a daemon and a CLI sharing the
  // root must not sweep concurrently (their snapshots would double-remove
  // and mis-count each other's evictions).
  const GcLock lock(root_);
  if (!lock.held()) {
    result.lockBusy = true;
    return result;
  }

  struct Entry {
    fs::path path;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!isEntryFile(*it)) continue;
    Entry entry;
    entry.path = it->path();
    entry.bytes = it->file_size(ec);
    entry.mtime = it->last_write_time(ec);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });

  const auto now = fs::file_time_type::clock::now();
  std::uint64_t totalBytes = 0;
  for (const Entry& entry : entries) totalBytes += entry.bytes;

  if (betweenScanAndSweep) betweenScanAndSweep();

  for (const Entry& entry : entries) {
    const auto age = std::chrono::duration_cast<std::chrono::seconds>(
        now - entry.mtime);
    const bool tooOld =
        policy.maxAgeSeconds > 0 &&
        age.count() > static_cast<std::int64_t>(policy.maxAgeSeconds);
    // Oldest-first eviction until everything still on disk fits the budget.
    const bool overBudget = policy.maxBytes > 0 &&
                            totalBytes - result.bytesRemoved > policy.maxBytes;
    if (tooOld || overBudget) {
      // Epoch guard: re-stat immediately before removal. An mtime that
      // advanced past the scan snapshot means a concurrent open() refreshed
      // the LRU clock or a publisher replaced the entry — it is in use, so
      // spare it (the next gc sees the honest recency).
      const fs::file_time_type current = fs::last_write_time(entry.path, ec);
      if (ec) continue;  // already gone: someone else removed it
      if (current > entry.mtime) {
        ++result.filesSpared;
        ++result.filesKept;
        result.bytesKept += entry.bytes;
        continue;
      }
      if (fs::remove(entry.path, ec) && !ec) {
        ++result.filesRemoved;
        result.bytesRemoved += entry.bytes;
      }
    } else {
      ++result.filesKept;
      result.bytesKept += entry.bytes;
    }
  }
  StoreMetrics::get().gcFilesEvicted.add(result.filesRemoved);
  StoreMetrics::get().gcBytesEvicted.add(result.bytesRemoved);
  return result;
}

}  // namespace sct::artifact
