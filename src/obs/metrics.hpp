#pragma once
// Process-wide metrics registry (DESIGN.md §12). Instruments come in three
// shapes — monotonic counters, last-value gauges, and fixed-bucket
// histograms — all updated with lock-free atomics on the hot path and
// gated behind one relaxed atomic flag, so a disabled registry costs one
// predictable branch per update. Reads are snapshot-on-read: snapshot()
// copies every instrument under the registration mutex into a plain value
// struct sorted by name, and writeMetricsJson() renders that snapshot as
// one deterministic JSON document (fixed key order, %.17g doubles).
//
// Registration (counter()/gauge()/histogram()) takes a mutex and returns a
// reference that stays valid for the process lifetime; hot call sites
// register once (function-local static) and then only touch atomics.
// Metrics may never change results: instruments are write-only state that
// nothing in the flow reads back.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sct::obs {

namespace detail {
extern std::atomic<bool> g_metrics;
}  // namespace detail

/// Hot-path check, inlined in every instrument update.
[[nodiscard]] inline bool metricsEnabled() noexcept {
  return detail::g_metrics.load(std::memory_order_relaxed);
}
void setMetricsEnabled(bool on) noexcept;

/// Monotonic event count (hits, tasks, bytes, nanoseconds, ...).
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    if (metricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (convergence estimates, configuration echoes, ...).
/// set() records even while metrics are disabled: gauges are written from
/// cold paths that already decided to expose the value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with
/// one implicit overflow bucket above the last bound. Bounds are fixed at
/// registration; counts/sum are atomics (C++20 atomic<double>::fetch_add).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double x) noexcept {
    if (!metricsEnabled()) return;
    std::size_t i = 0;
    while (i < bounds_.size() && x > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; the final entry is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Plain-value copy of the registry, sorted by name within each kind.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name; 0 when absent (convenience for tests and
  /// report tables).
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;
  [[nodiscard]] bool hasCounter(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented call site uses.
  [[nodiscard]] static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name; the reference stays valid for the registry's
  /// lifetime. Registering the same name with a different kind (or a
  /// histogram with different bounds) throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  /// Test/bench helper; instruments stay registered.
  void resetValues() noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

/// Renders a snapshot as one deterministic JSON document.
void writeMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace sct::obs
