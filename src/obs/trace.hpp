#pragma once
// Low-overhead span tracer (DESIGN.md §12). Instrumented code opens spans
// with the SCT_TRACE_SPAN(name) RAII macro; each thread records completed
// spans into its own fixed-capacity ring buffer, so the hot path is one
// relaxed atomic load when tracing is off and two steady_clock reads plus
// one (uncontended) buffer append when it is on. Span *names must be
// string literals* (the buffer stores the pointer, never a copy).
//
// Nesting is explicit: every span carries the depth at which it opened on
// its thread, and spans on one thread are strictly LIFO, so the exported
// intervals are always well-formed (asserted by tests/obs_test.cpp).
// writeChromeTrace() renders a snapshot as Chrome "X" complete events —
// loadable directly in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing may never change results: spans only read clocks and write to
// trace-private buffers, and everything here is a no-op branch when
// disabled (the default).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sct::obs {

/// One completed span. `name` points at the static string the span was
/// opened with; times are nanoseconds since the process trace epoch.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;    ///< stable per-thread id (registration order)
  std::uint32_t depth = 0;  ///< nesting depth at open, 0 = top level
};

/// Spans each thread retains; older spans are overwritten ring-style and
/// counted as dropped. 64Ki events * 32 B = 2 MiB per traced thread.
inline constexpr std::size_t kTraceRingCapacity = 1u << 16;

namespace detail {
extern std::atomic<bool> g_tracing;
/// Nanoseconds since the process trace epoch (steady clock).
[[nodiscard]] std::uint64_t nowNs() noexcept;
/// Opens a span on this thread: returns its depth and bumps the counter.
[[nodiscard]] std::uint32_t enterSpan() noexcept;
/// Records a completed span on this thread's ring and closes the nesting
/// level opened by the matching enterSpan().
void exitSpan(const char* name, std::uint64_t startNs,
              std::uint32_t depth) noexcept;
}  // namespace detail

/// Hot-path check, inlined everywhere a span opens.
[[nodiscard]] inline bool tracingEnabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Nanoseconds since the process trace epoch, for call sites that time an
/// interval into a metrics counter/histogram without opening a span.
[[nodiscard]] inline std::uint64_t monotonicNanos() noexcept {
  return detail::nowNs();
}
void setTracingEnabled(bool on) noexcept;

/// All completed spans currently retained, plus how many were overwritten.
struct TraceSnapshot {
  std::vector<TraceEvent> events;  ///< sorted by (tid, startNs, depth)
  std::uint64_t dropped = 0;
};

/// Copies every thread's retained spans. Safe to call while other threads
/// keep tracing; spans still open when the snapshot is taken are absent.
[[nodiscard]] TraceSnapshot traceSnapshot();

/// Discards all retained spans and the dropped count (open spans on other
/// threads still record on close). Test/bench helper.
void clearTrace() noexcept;

/// Renders a snapshot as a Chrome-trace / Perfetto JSON document ("X"
/// complete events, microsecond timestamps). Deterministic given the same
/// snapshot: events are emitted in snapshot order with fixed formatting.
void writeChromeTrace(std::ostream& out, const TraceSnapshot& snapshot);

/// RAII span. Opening captures the enabled flag, so a span records if and
/// only if tracing was on when it opened.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept {
    if (tracingEnabled()) {
      name_ = name;
      depth_ = detail::enterSpan();
      start_ = detail::nowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::exitSpan(name_, start_, depth_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
};

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define SCT_OBS_CONCAT2(a, b) a##b
#define SCT_OBS_CONCAT(a, b) SCT_OBS_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal (or otherwise outlive the tracer).
#define SCT_TRACE_SPAN(name) \
  ::sct::obs::TraceSpan SCT_OBS_CONCAT(sctTraceSpan_, __LINE__)(name)
// NOLINTEND(cppcoreguidelines-macro-usage)

}  // namespace sct::obs
